// algcompare reproduces the core of the paper's evaluation in miniature:
// every snooping algorithm on one workload from each class (SPLASH-2-like
// sharing-heavy, SPECjbb-like memory-bound, SPECweb-like mixed), printing
// the four dimensions of Section 6.1 — snoop operations, ring messages,
// execution time and snoop energy.
//
//	go run ./examples/algcompare
package main

import (
	"fmt"
	"log"

	"flexsnoop"
	"flexsnoop/internal/stats"
)

func main() {
	workloads := []string{"barnes", "specjbb", "specweb"}
	const ops = 2500

	for _, wl := range workloads {
		t := stats.NewTable("workload: "+wl,
			"Algorithm", "Snoops/req", "Segments/req", "Cycles (norm)", "Energy (norm)")
		var lazyCycles, lazyEnergy float64
		for _, alg := range flexsnoop.Algorithms() {
			res, err := flexsnoop.Run(alg, wl, flexsnoop.Options{OpsPerCore: ops})
			if err != nil {
				log.Fatal(err)
			}
			if alg == flexsnoop.Lazy {
				lazyCycles = float64(res.Cycles)
				lazyEnergy = res.EnergyNJ
			}
			t.AddRowf(alg.String(),
				res.Stats.SnoopsPerReadRequest(),
				res.Stats.ReadSegmentsPerRequest(),
				float64(res.Cycles)/lazyCycles,
				res.EnergyNJ/lazyEnergy)
		}
		fmt.Println(t)
	}
	fmt.Println("Expected shape (paper, Figures 6-9): Eager snoops all 7 CMPs and")
	fmt.Println("costs ~1.8x Lazy's energy; SupersetAgg is the fastest at a fraction")
	fmt.Println("of Eager's energy; SupersetCon matches Lazy's message count with far")
	fmt.Println("fewer snoops; Exact snoops least but pays for downgrades.")
}
