// Quickstart: simulate one snooping algorithm on one workload and print
// the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flexsnoop"
)

func main() {
	// Simulate the paper's choice high-performance algorithm (SupersetAgg
	// with the 7.3-KByte per-node predictor) on a SPLASH-2-like workload.
	res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "barnes", flexsnoop.Options{
		OpsPerCore: 3000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm:            %v (predictor %s)\n", res.Algorithm, res.Predictor)
	fmt.Printf("workload:             %s\n", res.Workload)
	fmt.Printf("execution time:       %d cycles\n", res.Cycles)
	fmt.Printf("snoops/read request:  %.2f\n", res.Stats.SnoopsPerReadRequest())
	fmt.Printf("ring segments/req:    %.2f\n", res.Stats.ReadSegmentsPerRequest())
	fmt.Printf("snoop energy:         %.1f uJ\n", res.EnergyNJ/1000)
	fmt.Printf("supplies (local/cache/memory): %d / %d / %d\n",
		res.Stats.LocalSupplies, res.Stats.CacheSupplies, res.Stats.MemorySupplies)

	// Compare against the Lazy baseline on the same streams.
	lazy, err := flexsnoop.Run(flexsnoop.Lazy, "barnes", flexsnoop.Options{OpsPerCore: 3000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvs Lazy: %.1f%% faster, %.1f%% of Lazy's snoop energy\n",
		(1-float64(res.Cycles)/float64(lazy.Cycles))*100,
		res.EnergyNJ/lazy.EnergyNJ*100)
}
