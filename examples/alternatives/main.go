// alternatives measures the Section 2.1 trade-offs the paper argues
// qualitatively: the embedded ring against a directory protocol (an
// indirection in every transaction) and a shared broadcast bus (one
// transaction per arbitration slot, every cache snooping everything).
//
//	go run ./examples/alternatives
package main

import (
	"fmt"
	"log"

	"flexsnoop"
	"flexsnoop/internal/altproto"
	"flexsnoop/internal/config"
	"flexsnoop/internal/cpu"
	"flexsnoop/internal/sim"
	"flexsnoop/internal/stats"
	"flexsnoop/internal/workload"
)

const ops = 2500

func main() {
	prof, err := workload.ByName("barnes")
	if err != nil {
		log.Fatal(err)
	}
	t := stats.NewTable("coherence approaches on a barnes-like workload (32 cores)",
		"Approach", "Cycles", "Avg read-miss latency", "Coherence tag lookups", "Notes")

	// Embedded ring with the paper's choice algorithm.
	ring, err := flexsnoop.Run(flexsnoop.SupersetAgg, "barnes", flexsnoop.Options{OpsPerCore: ops})
	if err != nil {
		log.Fatal(err)
	}
	t.AddRowf("embedded ring (SupersetAgg)", fmt.Sprintf("%d", ring.Cycles),
		ring.Stats.AvgReadMissLatency(),
		fmt.Sprintf("%d", ring.Stats.ReadSnoopOps+ring.Stats.WriteSnoopOps),
		"snoops filtered by supplier predictor")

	lazy, err := flexsnoop.Run(flexsnoop.Lazy, "barnes", flexsnoop.Options{OpsPerCore: ops})
	if err != nil {
		log.Fatal(err)
	}
	t.AddRowf("embedded ring (Lazy)", fmt.Sprintf("%d", lazy.Cycles),
		lazy.Stats.AvgReadMissLatency(),
		fmt.Sprintf("%d", lazy.Stats.ReadSnoopOps+lazy.Stats.WriteSnoopOps),
		"serial snoop per hop")

	// Directory.
	dcy, dst := runAlt(prof, func(k *sim.Kernel, cfg config.MachineConfig) alt {
		d, err := altproto.NewDirectory(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return d
	})
	t.AddRowf("directory (full map)", fmt.Sprintf("%d", dcy), dst.AvgReadMissLatency(),
		fmt.Sprintf("%d", dst.SnoopOps),
		fmt.Sprintf("%d 3-hop indirections", dst.Indirections))

	// Broadcast bus.
	bcy, bst := runAlt(prof, func(k *sim.Kernel, cfg config.MachineConfig) alt {
		b, err := altproto.NewBroadcastBus(k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return b
	})
	t.AddRowf("broadcast bus", fmt.Sprintf("%d", bcy), bst.AvgReadMissLatency(),
		fmt.Sprintf("%d", bst.SnoopOps),
		fmt.Sprintf("%d cycles queued on the bus", bst.BusWaitCycles))

	fmt.Println(t)
	fmt.Println("The paper's Section 2.1 claims, measured: the directory pays an")
	fmt.Println("indirection through the home on cache-to-cache transfers; the bus")
	fmt.Println("makes every cache snoop every transaction and queues under load;")
	fmt.Println("the embedded ring with adaptive filtering snoops a fraction of the")
	fmt.Println("caches with no directory state and no global arbitration.")
}

// alt is the common surface of the two alternative engines.
type alt interface {
	cpu.Memory
	Stats() altproto.Stats
}

// runAlt drives one alternative engine with the same cores and workload.
func runAlt(prof workload.Profile, mk func(*sim.Kernel, config.MachineConfig) alt) (sim.Time, altproto.Stats) {
	kern := sim.NewKernel()
	cfg := config.DefaultMachine()
	e := mk(kern, cfg)
	var cores []*cpu.Core
	for n := 0; n < cfg.NumCMPs; n++ {
		for c := 0; c < cfg.CoresPerCMP; c++ {
			g := n*cfg.CoresPerCMP + c
			src := workload.NewGenerator(prof, g, ops, 1)
			cores = append(cores, cpu.NewMLP(kern, e, n, c, cfg.WriteBufferEntries, cfg.MaxOutstandingLoads, src, nil))
		}
	}
	for _, c := range cores {
		c.Start()
	}
	kern.RunAll()
	var finish sim.Time
	for _, c := range cores {
		if !c.Finished() {
			log.Fatal("core never finished")
		}
		if c.FinishedAt > finish {
			finish = c.FinishedAt
		}
	}
	return finish, e.Stats()
}
