// adaptive demonstrates the dynamic system the paper envisions in Section
// 6.1.5: SupersetAgg and SupersetCon share the same supplier predictor and
// differ only in the action taken on a positive prediction, so a machine
// can switch between them at run time — aggressive for performance,
// conservative when it must save energy.
//
// This example runs the same workload under a range of energy budgets and
// shows the governor trading speed for energy.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"flexsnoop"
	"flexsnoop/internal/stats"
)

func main() {
	const wl = "radiosity"
	const ops = 2500

	// Endpoints: the two static algorithms.
	agg, err := flexsnoop.Run(flexsnoop.SupersetAgg, wl, flexsnoop.Options{OpsPerCore: ops})
	if err != nil {
		log.Fatal(err)
	}
	con, err := flexsnoop.Run(flexsnoop.SupersetCon, wl, flexsnoop.Options{OpsPerCore: ops})
	if err != nil {
		log.Fatal(err)
	}

	t := stats.NewTable("dynamic SupersetAgg<->SupersetCon ("+wl+")",
		"Configuration", "Cycles", "Energy (uJ)", "Aggressive fraction")
	t.AddRowf("static SupersetAgg", fmt.Sprintf("%d", agg.Cycles), agg.EnergyNJ/1000, 1.0)

	// The interesting budgets lie between the two static algorithms'
	// energy rates (nJ per 1000 cycles): above the aggressive rate the
	// governor never throttles; below the conservative rate it always
	// does; in between it oscillates, trading speed for energy.
	conRate := con.EnergyNJ / float64(con.Cycles) * 1000
	aggRate := agg.EnergyNJ / float64(agg.Cycles) * 1000
	budgets := []float64{
		aggRate * 1.2,
		aggRate * 0.95,
		(aggRate + conRate) / 2,
		conRate * 1.05,
		conRate * 0.8,
	}
	for _, budget := range budgets {
		res, err := flexsnoop.Run(flexsnoop.DynamicSuperset, wl, flexsnoop.Options{
			OpsPerCore:                ops,
			GovernorBudgetNJPerKCycle: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRowf(fmt.Sprintf("dynamic, budget %.1f nJ/kcycle", budget),
			fmt.Sprintf("%d", res.Cycles), res.EnergyNJ/1000, res.GovernorAggFrac)
	}
	t.AddRowf("static SupersetCon", fmt.Sprintf("%d", con.Cycles), con.EnergyNJ/1000, 0.0)
	fmt.Println(t)

	fmt.Println("Tighter budgets push the governor toward the SupersetCon action:")
	fmt.Println("execution time drifts up a few percent while snoop energy drops —")
	fmt.Println("the trade the paper quantifies as 3-6% slower for 36-42% less energy.")
}
