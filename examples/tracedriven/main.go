// tracedriven demonstrates the paper's trace-driven methodology for the
// SPEC workloads (Section 5.1): record a workload's per-core reference
// streams once, then replay the identical trace under different snooping
// algorithms so the comparison is exact ("we compare the different
// snooping algorithms with exactly the same traces").
//
//	go run ./examples/tracedriven
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"flexsnoop"
	"flexsnoop/internal/stats"
)

func main() {
	dir, err := os.MkdirTemp("", "flexsnoop-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "specjbb.trace")

	// Record once.
	if err := flexsnoop.WriteTraceFile(path, "specjbb", 3000, 42); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("recorded %s (%d KiB)\n\n", path, info.Size()>>10)

	// Replay under each algorithm: identical reference streams, so the
	// differences are purely the snooping algorithm's.
	t := stats.NewTable("trace-driven replay (specjbb-like, 8 cores)",
		"Algorithm", "Cycles", "Snoops/req", "Prefetch hits", "Energy (uJ)")
	for _, alg := range []flexsnoop.Algorithm{
		flexsnoop.Lazy, flexsnoop.Eager, flexsnoop.SupersetCon, flexsnoop.SupersetAgg,
	} {
		res, err := flexsnoop.RunTraceFile(alg, path, flexsnoop.Options{})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRowf(alg.String(), fmt.Sprintf("%d", res.Cycles),
			res.Stats.SnoopsPerReadRequest(),
			fmt.Sprintf("%d", res.Stats.PrefetchHits),
			res.EnergyNJ/1000)
	}
	fmt.Println(t)
	fmt.Println("SPECjbb-like behaviour: threads share little, so most ring requests")
	fmt.Println("find no supplier and fall through to memory — Lazy snoops nearly all")
	fmt.Println("7 CMPs per request while the Superset algorithms filter almost all of")
	fmt.Println("them, and the prefetch-on-snoop heuristic hides most of the DRAM trip.")
}
