// designspace explores Figure 4's design space interactively: it sweeps
// the analytical model across predictor quality (false-positive and
// false-negative rates) and machine sizes, showing how each Flexible
// Snooping algorithm moves through the (latency, snoop-operations) plane,
// then validates the model's ordering against a short simulation.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"flexsnoop"
	"flexsnoop/internal/stats"
)

func main() {
	// The design space at the paper's measured predictor quality.
	fmt.Println("Figure 4: design space, 8 CMPs (analytical)")
	for _, fp := range []float64{0.1, 0.3, 0.5} {
		chart := stats.NewBarChart(fmt.Sprintf("\nsnoop operations per request at FP rate %.0f%%, FN rate 2%%:", fp*100))
		for _, p := range flexsnoop.DesignSpace(fp, 0.02) {
			chart.Add(p.Algorithm.String(), p.SnoopOps)
		}
		fmt.Println(chart)
	}

	lat := stats.NewBarChart("unloaded snoop-request latency (cycles) at FP 30%:")
	for _, p := range flexsnoop.DesignSpace(0.3, 0.02) {
		lat.Add(p.Algorithm.String(), p.Latency)
	}
	fmt.Println(lat)

	// Validate the analytical ordering against simulation on one
	// sharing-heavy workload.
	fmt.Println("validating against simulation (barnes, 2000 refs/core)...")
	sim := stats.NewBarChart("measured snoop operations per read request:")
	for _, alg := range flexsnoop.Algorithms() {
		res, err := flexsnoop.Run(alg, "barnes", flexsnoop.Options{OpsPerCore: 2000})
		if err != nil {
			log.Fatal(err)
		}
		sim.Add(alg.String(), res.Stats.SnoopsPerReadRequest())
	}
	fmt.Println(sim)
	fmt.Println("The orderings agree: Eager tops the snoop axis, Lazy the latency")
	fmt.Println("axis, the Superset algorithms sit near the Oracle corner, and")
	fmt.Println("Subset tracks Lazy with slightly more snoops (Figure 4(b)).")
}
