package flexsnoop

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"

	"flexsnoop/internal/config"
	"flexsnoop/internal/core"
	"flexsnoop/internal/predictor"
	"flexsnoop/internal/stats"
	"flexsnoop/internal/workload"
)

// FigureOptions scales the experiment drivers. The defaults keep a full
// figure regeneration in the minutes range; raise OpsPerCore for smoother
// curves.
type FigureOptions struct {
	// OpsPerCore bounds each core's reference stream (default 2000).
	OpsPerCore uint64
	// Seed selects the workload streams (default 1).
	Seed int64
	// Apps restricts the SPLASH-2 applications simulated (default: all
	// 11). SPECjbb and SPECweb are always included.
	Apps []string
	// Algorithms restricts the algorithms (default: all seven).
	Algorithms []Algorithm
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	// Each simulation is an independent single-threaded event kernel, so
	// the matrix parallelises perfectly.
	Parallelism int
	// Progress, when non-nil, receives a line per completed run; it may
	// be called from multiple goroutines.
	Progress func(string)
	// TelemetryFor, when non-nil, is consulted once per (algorithm,
	// workload) cell of a matrix run; a non-nil return enables telemetry
	// for that cell's simulation. It is called sequentially while jobs
	// are being created, so it may open files without synchronisation.
	// Not consulted when Runner is set.
	TelemetryFor func(alg Algorithm, workload string) *TelemetryOptions
	// Runner, when non-nil, replaces the in-process simulator for every
	// cell the matrix and sensitivity drivers run: it receives the cell's
	// exact configuration and must return its Result. `sweep -remote`
	// uses this to farm a sweep out to a ringsimd server; because the
	// simulator is deterministic, a remote Result is bit-identical to the
	// in-process one, so derived figures are unchanged. When Runner is
	// set, TelemetryFor is ignored (telemetry belongs to the executing
	// side — stream it from the server instead).
	Runner func(ctx context.Context, alg Algorithm, workload string, opts Options) (Result, error)
	// Context, when non-nil, cancels the whole driver: in-flight
	// simulations stop between events, and no further jobs launch. A nil
	// or Background context costs nothing.
	Context context.Context
	// ShardRings enables Options.ShardRings for every simulation the
	// driver runs (cycle-identical results; see Options.ShardRings).
	ShardRings bool
	// Faults arms deterministic fault injection for every simulation the
	// driver runs (see Options.Faults). Figures regenerated under faults
	// measure the hardened protocol, not the paper's fault-free numbers.
	Faults *FaultPlan
	// CheckEvery arms the continuous invariant checker for every
	// simulation the driver runs (see Options.CheckEvery).
	CheckEvery uint64
}

// runCell dispatches one driver cell to the Runner override or the
// in-process simulator. Profiles handed to the drivers are always the
// canonical named workloads, so dispatching by name is faithful.
func (o FigureOptions) runCell(ctx context.Context, alg Algorithm, prof Profile, opts Options) (Result, error) {
	if o.Runner != nil {
		return o.Runner(ctx, alg, prof.Name, opts)
	}
	return Simulate(ctx, alg, FromProfile(prof), opts)
}

// ctx returns the driver's context, defaulting to Background.
func (o FigureOptions) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o FigureOptions) withDefaults() FigureOptions {
	if o.OpsPerCore == 0 {
		o.OpsPerCore = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = Algorithms()
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// poolJob is one unit of work for runPoolContext. A non-empty label is
// attached to the job's goroutine as a pprof label (under labelKey,
// "scenario" when empty), so a CPU profile of a figure driver attributes
// time per simulated cell — and fault-injection jobs, which carry their
// own key, separate from plain figure cells in the same profile.
type poolJob struct {
	label    string
	labelKey string
	run      func() error
}

// plainJobs wraps bare functions as unlabelled pool jobs.
func plainJobs(fns []func() error) []poolJob {
	jobs := make([]poolJob, len(fns))
	for i, fn := range fns {
		jobs[i] = poolJob{run: fn}
	}
	return jobs
}

// runPool executes independent simulation jobs with bounded parallelism.
// After the first failure no further jobs are launched (already-running
// jobs finish); every failure is reported, joined with errors.Join.
func runPool(parallelism int, jobs []func() error) error {
	return runPoolContext(context.Background(), parallelism, plainJobs(jobs))
}

// runPoolContext is runPool with cancellation: once ctx is done, no
// further jobs launch (in-flight jobs observe ctx themselves) and the
// context's error joins the result. Cancellation wins deterministically:
// whenever ctx is done by the time the pool drains, the returned error
// matches errors.Is(err, ctx.Err()), even if a job error raced it.
func runPoolContext(ctx context.Context, parallelism int, jobs []poolJob) error {
	if parallelism < 1 {
		parallelism = 1
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	ctxJoined := false
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(errs) > 0
	}
	for _, job := range jobs {
		// Acquire the semaphore before deciding to stop: any failure
		// recorded while we waited is then guaranteed visible, so at
		// most parallelism-1 extra jobs start after the first error.
		sem <- struct{}{}
		if err := ctx.Err(); err != nil {
			<-sem
			mu.Lock()
			errs = append(errs, err)
			ctxJoined = true
			mu.Unlock()
			break
		}
		if failed() {
			<-sem
			break
		}
		job := job
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			run := func() {
				if err := job.run(); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				}
			}
			if job.label == "" {
				run()
				return
			}
			key := job.labelKey
			if key == "" {
				key = "scenario"
			}
			pprof.Do(ctx, pprof.Labels(key, job.label), func(context.Context) { run() })
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil && !ctxJoined {
		// The context was cancelled after the launch loop had already
		// finished (or a job error raced the cancellation): join the
		// context error so callers observe it deterministically.
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func (o FigureOptions) splashProfiles() ([]Profile, error) {
	all := workload.Splash2Profiles()
	if len(o.Apps) == 0 {
		return all, nil
	}
	var out []Profile
	for _, name := range o.Apps {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		if p.Class != workload.Splash2 {
			return nil, fmt.Errorf("flexsnoop: %q is not a SPLASH-2 application", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// ClassValues carries one figure's bars for one workload class: a value
// per algorithm name.
type ClassValues struct {
	Class  string
	Values map[string]float64
}

// Matrix holds the full (algorithm x workload) result grid behind Figures
// 6-9: run it once, derive every figure from it.
type Matrix struct {
	opts FigureOptions
	// results[alg][workloadName]
	results map[Algorithm]map[string]Result
	splash  []string // SPLASH-2 app names simulated
}

// RunMatrix simulates every requested algorithm on every workload.
func RunMatrix(opts FigureOptions) (*Matrix, error) {
	o := opts.withDefaults()
	splash, err := o.splashProfiles()
	if err != nil {
		return nil, err
	}
	profiles := append(append([]Profile{}, splash...),
		workload.SPECjbbProfile(), workload.SPECwebProfile())

	m := &Matrix{opts: o, results: map[Algorithm]map[string]Result{}}
	for _, p := range splash {
		m.splash = append(m.splash, p.Name)
	}
	var mu sync.Mutex
	var jobs []poolJob
	for _, alg := range o.Algorithms {
		m.results[alg] = map[string]Result{}
		for _, prof := range profiles {
			alg, prof := alg, prof
			var tel *TelemetryOptions
			if o.TelemetryFor != nil && o.Runner == nil {
				tel = o.TelemetryFor(alg, prof.Name)
			}
			jobs = append(jobs, poolJob{label: fmt.Sprintf("%v/%s", alg, prof.Name), run: func() error {
				res, err := o.runCell(o.ctx(), alg, prof, Options{OpsPerCore: o.OpsPerCore, Seed: o.Seed, Telemetry: tel, ShardRings: o.ShardRings, Faults: o.Faults, CheckEvery: o.CheckEvery})
				if err != nil {
					return fmt.Errorf("flexsnoop: %v on %s: %w", alg, prof.Name, err)
				}
				mu.Lock()
				m.results[alg][prof.Name] = res
				mu.Unlock()
				if o.Progress != nil {
					o.Progress(fmt.Sprintf("%v/%s: %d cycles, %.2f snoops/req",
						alg, prof.Name, res.Cycles, res.Stats.SnoopsPerReadRequest()))
				}
				return nil
			}})
		}
	}
	if err := runPoolContext(o.ctx(), o.Parallelism, jobs); err != nil {
		return nil, err
	}
	return m, nil
}

// Result returns one cell of the matrix.
func (m *Matrix) Result(alg Algorithm, workloadName string) (Result, bool) {
	r, ok := m.results[alg][workloadName]
	return r, ok
}

// Classes returns the reporting classes in paper order.
func (m *Matrix) Classes() []string { return []string{"SPLASH-2", "SPECjbb", "SPECweb"} }

// metric extracts one per-run quantity.
type metric func(Result) float64

// absolute aggregates a metric per class with an arithmetic mean over the
// SPLASH-2 applications (as Figure 6 does for absolute counts).
func (m *Matrix) absolute(f metric) []ClassValues {
	out := []ClassValues{
		{Class: "SPLASH-2", Values: map[string]float64{}},
		{Class: "SPECjbb", Values: map[string]float64{}},
		{Class: "SPECweb", Values: map[string]float64{}},
	}
	for alg, byWl := range m.results {
		var splash []float64
		for _, app := range m.splash {
			splash = append(splash, f(byWl[app]))
		}
		out[0].Values[alg.String()] = stats.ArithMean(splash)
		out[1].Values[alg.String()] = f(byWl["specjbb"])
		out[2].Values[alg.String()] = f(byWl["specweb"])
	}
	return out
}

// normalized aggregates a metric normalised to Lazy per workload, with a
// geometric mean over the SPLASH-2 applications (Figures 7-9).
func (m *Matrix) normalized(f metric) ([]ClassValues, error) {
	base, ok := m.results[Lazy]
	if !ok {
		return nil, fmt.Errorf("flexsnoop: normalised figures need a Lazy baseline in the matrix")
	}
	out := []ClassValues{
		{Class: "SPLASH-2", Values: map[string]float64{}},
		{Class: "SPECjbb", Values: map[string]float64{}},
		{Class: "SPECweb", Values: map[string]float64{}},
	}
	for alg, byWl := range m.results {
		var splash []float64
		for _, app := range m.splash {
			b := f(base[app])
			if b <= 0 {
				return nil, fmt.Errorf("flexsnoop: zero Lazy baseline on %s", app)
			}
			splash = append(splash, f(byWl[app])/b)
		}
		out[0].Values[alg.String()] = stats.GeoMean(splash)
		out[1].Values[alg.String()] = f(byWl["specjbb"]) / f(base["specjbb"])
		out[2].Values[alg.String()] = f(byWl["specweb"]) / f(base["specweb"])
	}
	return out, nil
}

// Figure6 returns the average number of snoop operations per read snoop
// request, per class and algorithm (absolute values, Figure 6).
func (m *Matrix) Figure6() []ClassValues {
	return m.absolute(func(r Result) float64 { return r.Stats.SnoopsPerReadRequest() })
}

// Figure7 returns the total read snoop requests and replies in the ring
// (segment transmissions), normalised to Lazy (Figure 7).
func (m *Matrix) Figure7() ([]ClassValues, error) {
	return m.normalized(func(r Result) float64 { return float64(r.Stats.ReadRingSegments) })
}

// Figure8 returns execution time normalised to Lazy (Figure 8).
func (m *Matrix) Figure8() ([]ClassValues, error) {
	return m.normalized(func(r Result) float64 { return float64(r.Cycles) })
}

// Figure9 returns the snoop-servicing energy of Section 6.1.4 normalised
// to Lazy (Figure 9).
func (m *Matrix) Figure9() ([]ClassValues, error) {
	return m.normalized(func(r Result) float64 { return r.EnergyNJ })
}

// Table1 returns the analytical comparison of the baseline algorithms
// (Table 1) for the default 8-node machine.
func Table1() []core.Table1Row {
	return core.DefaultModel(config.DefaultMachine().NumCMPs).Table1()
}

// Table3 returns the analytical Flexible Snooping rows of Table 3, using
// the supplied predictor false-positive/false-negative rates (e.g. the
// measured rates from a Matrix run).
func Table3(fpRate, fnRate float64) []core.Table3Row {
	m := core.DefaultModel(config.DefaultMachine().NumCMPs)
	m.FPRate = fpRate
	m.FNRate = fnRate
	return m.Table3()
}

// DesignSpace returns the Figure 4 placement of every algorithm in the
// (unloaded latency, snoop operations) plane.
func DesignSpace(fpRate, fnRate float64) []core.DesignPoint {
	m := core.DefaultModel(config.DefaultMachine().NumCMPs)
	m.FPRate = fpRate
	m.FNRate = fnRate
	return m.DesignSpace()
}

// MeasuredRates extracts the aggregate predictor false-positive and
// false-negative rates measured across the matrix (feeds Table3 and
// DesignSpace with simulation-grounded inputs).
func (m *Matrix) MeasuredRates() (fpRate, fnRate float64) {
	var acc predictor.Accuracy
	for _, byWl := range m.results {
		for _, r := range byWl {
			acc.Add(r.Stats.Accuracy)
		}
	}
	if acc.Total() == 0 {
		return 0, 0
	}
	_, _, fp, fn := acc.Fractions()
	return fp, fn
}

// EnergySavingsVsEager reports, per class, how much less energy an
// algorithm consumes than Eager (the paper's headline: SupersetAgg saves
// 9-17%, SupersetCon 47-48%).
func (m *Matrix) EnergySavingsVsEager(alg Algorithm) (map[string]float64, error) {
	fig9, err := m.Figure9()
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, cv := range fig9 {
		eager, ok1 := cv.Values[Eager.String()]
		target, ok2 := cv.Values[alg.String()]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("flexsnoop: matrix lacks %v or Eager", alg)
		}
		out[cv.Class] = 1 - target/eager
	}
	return out, nil
}

// SensitivityResult is one cell of the Figure 10/11 sweep.
type SensitivityResult struct {
	Algorithm Algorithm
	Predictor string
	Class     string
	// CyclesNorm is execution time normalised to the class's middle
	// (Section 6.1) predictor configuration, as Figure 10 plots.
	CyclesNorm float64
	// Accuracy fractions (Figure 11).
	TruePos, TrueNeg, FalsePos, FalseNeg float64
}

// sensitivitySpecs lists Figure 10's predictor variants per algorithm, in
// (small, main, large) order.
func sensitivitySpecs() map[Algorithm][3]PredictorConfig {
	return map[Algorithm][3]PredictorConfig{
		Subset:      {config.Sub512(), config.Sub2k(), config.Sub8k()},
		SupersetCon: {config.SupY512(), config.SupY2k(), config.SupN2k()},
		SupersetAgg: {config.SupY512(), config.SupY2k(), config.SupN2k()},
		Exact:       {config.Exa512(), config.Exa2k(), config.Exa8k()},
	}
}

// Sensitivity holds the Figure 10/11 sweep results.
type Sensitivity struct {
	Cells []SensitivityResult
	// Perfect is the Figure 11 perfect-predictor breakdown per class.
	Perfect map[string][4]float64 // TP, TN, FP, FN
}

// RunSensitivity sweeps the supplier-predictor sizes and organisations of
// Section 6.2 (Figures 10 and 11).
func RunSensitivity(opts FigureOptions) (*Sensitivity, error) {
	o := opts.withDefaults()
	splash, err := o.splashProfiles()
	if err != nil {
		return nil, err
	}
	classes := []struct {
		name     string
		profiles []Profile
	}{
		{"SPLASH-2", splash},
		{"SPECjbb", []Profile{workload.SPECjbbProfile()}},
		{"SPECweb", []Profile{workload.SPECwebProfile()}},
	}

	// Run every (algorithm, predictor, profile) cell in parallel, then
	// aggregate per class sequentially.
	type cellKey struct {
		alg     Algorithm
		class   string
		predIdx int
		profIdx int
	}
	results := map[cellKey]Result{}
	var mu sync.Mutex
	var jobs []poolJob
	for alg, preds := range sensitivitySpecs() {
		for _, cl := range classes {
			for pi, pc := range preds {
				for fi, prof := range cl.profiles {
					alg, cl, pi, pc, fi, prof := alg, cl, pi, pc, fi, prof
					jobs = append(jobs, poolJob{label: fmt.Sprintf("%v/%s/%s", alg, pc.Name, prof.Name), run: func() error {
						pc := pc
						res, err := o.runCell(o.ctx(), alg, prof, Options{
							OpsPerCore: o.OpsPerCore, Seed: o.Seed, Predictor: &pc,
							Faults: o.Faults, CheckEvery: o.CheckEvery,
						})
						if err != nil {
							return fmt.Errorf("flexsnoop: sensitivity %v/%s/%s: %w",
								alg, pc.Name, prof.Name, err)
						}
						mu.Lock()
						results[cellKey{alg, cl.name, pi, fi}] = res
						mu.Unlock()
						if o.Progress != nil {
							o.Progress(fmt.Sprintf("%v/%s/%s: %d cycles", alg, pc.Name, prof.Name, res.Cycles))
						}
						return nil
					}})
				}
			}
		}
	}
	if err := runPoolContext(o.ctx(), o.Parallelism, jobs); err != nil {
		return nil, err
	}

	// Aggregate in sorted algorithm order: Perfect is filled from the
	// first algorithm with oracle accuracy data per class, so map-order
	// iteration would make Figure 11 nondeterministic run to run.
	specs := sensitivitySpecs()
	specAlgs := make([]Algorithm, 0, len(specs))
	for alg := range specs {
		specAlgs = append(specAlgs, alg)
	}
	sort.Slice(specAlgs, func(i, j int) bool { return specAlgs[i] < specAlgs[j] })

	out := &Sensitivity{Perfect: map[string][4]float64{}}
	for _, alg := range specAlgs {
		preds := specs[alg]
		for _, cl := range classes {
			var cycles [3]float64
			var accs [3]predictor.Accuracy
			for pi := range preds {
				var clCycles []float64
				var acc predictor.Accuracy
				var perfect predictor.Accuracy
				for fi := range cl.profiles {
					res := results[cellKey{alg, cl.name, pi, fi}]
					clCycles = append(clCycles, float64(res.Cycles))
					acc.Add(res.Stats.Accuracy)
					perfect.Add(res.Stats.PerfectAccuracy)
				}
				cycles[pi] = stats.GeoMean(clCycles)
				accs[pi] = acc
				if _, ok := out.Perfect[cl.name]; !ok && perfect.Total() > 0 {
					tp, tn, fp, fn := perfect.Fractions()
					out.Perfect[cl.name] = [4]float64{tp, tn, fp, fn}
				}
			}
			for pi, pc := range preds {
				tp, tn, fp, fn := accs[pi].Fractions()
				out.Cells = append(out.Cells, SensitivityResult{
					Algorithm: alg, Predictor: pc.Name, Class: cl.name,
					CyclesNorm: cycles[pi] / cycles[1],
					TruePos:    tp, TrueNeg: tn, FalsePos: fp, FalseNeg: fn,
				})
			}
		}
	}
	return out, nil
}

// FaultScenario names one fault plan for RunFaultMatrix.
type FaultScenario struct {
	Name string
	Plan *FaultPlan
}

// FaultCell is one completed cell of a fault-matrix run.
type FaultCell struct {
	Scenario  string
	Algorithm Algorithm
	Workload  string
	Result    Result
}

// RunFaultMatrix runs every (fault scenario, algorithm) pair on one
// workload with the continuous invariant checker armed, in parallel.
// It is the robustness analogue of RunMatrix: each cell must complete —
// a hang trips the watchdog, a coherence violation trips the checker —
// so a green matrix certifies the timeout/retransmit path end to end.
// Jobs carry the pprof label key "fault-inject" instead of "scenario",
// so a CPU profile separates fault-hardened runs from plain figure
// cells.
func RunFaultMatrix(workloadName string, scenarios []FaultScenario, opts FigureOptions) ([]FaultCell, error) {
	o := opts.withDefaults()
	prof, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	checkEvery := o.CheckEvery
	if checkEvery == 0 {
		checkEvery = 5000
	}
	cells := make([]FaultCell, len(scenarios)*len(o.Algorithms))
	var jobs []poolJob
	for si, sc := range scenarios {
		for ai, alg := range o.Algorithms {
			si, sc, ai, alg := si, sc, ai, alg
			jobs = append(jobs, poolJob{
				label:    fmt.Sprintf("%s/%v", sc.Name, alg),
				labelKey: "fault-inject",
				run: func() error {
					res, err := Simulate(o.ctx(), alg, FromProfile(prof), Options{
						OpsPerCore: o.OpsPerCore, Seed: o.Seed,
						Faults: sc.Plan, CheckEvery: checkEvery,
						ShardRings: o.ShardRings,
					})
					if err != nil {
						return fmt.Errorf("flexsnoop: fault matrix %s/%v on %s: %w",
							sc.Name, alg, prof.Name, err)
					}
					cells[si*len(o.Algorithms)+ai] = FaultCell{
						Scenario: sc.Name, Algorithm: alg, Workload: prof.Name, Result: res,
					}
					if o.Progress != nil {
						o.Progress(fmt.Sprintf("%s/%v: %d cycles, %d timeouts, %d drops",
							sc.Name, alg, res.Cycles, res.Stats.SnoopTimeouts, res.Stats.FaultDrops))
					}
					return nil
				},
			})
		}
	}
	if err := runPoolContext(o.ctx(), o.Parallelism, jobs); err != nil {
		return nil, err
	}
	return cells, nil
}

// ScalingPoint is one machine size in the ring-scaling study.
type ScalingPoint struct {
	NumCMPs int
	// CyclesNorm is execution time normalised to the 8-CMP machine for
	// the same algorithm.
	CyclesNorm float64
	// SnoopsPerRequest and AvgReadMissLatency are absolute.
	SnoopsPerRequest   float64
	AvgReadMissLatency float64
}

// ScalingStudy measures how an algorithm's behaviour scales with ring
// size. The paper positions embedded-ring snooping as appropriate for
// medium machines (8-16 nodes, Section 1): Lazy's request latency grows
// with every added hop-plus-snoop, while the adaptive algorithms grow
// only by the hop.
func ScalingStudy(alg Algorithm, workloadName string, opts FigureOptions) ([]ScalingPoint, error) {
	o := opts.withDefaults()
	prof, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	sizes := []struct{ n, w, h int }{{4, 2, 2}, {8, 4, 2}, {16, 4, 4}}
	var out []ScalingPoint
	var base float64
	for _, sz := range sizes {
		sz := sz
		res, err := Simulate(o.ctx(), alg, FromProfile(prof), Options{
			OpsPerCore: o.OpsPerCore, Seed: o.Seed,
			Tweak: func(m *MachineConfig) {
				m.NumCMPs = sz.n
				m.TorusWidth, m.TorusHeight = sz.w, sz.h
			},
		})
		if err != nil {
			return nil, fmt.Errorf("flexsnoop: scaling %v at %d CMPs: %w", alg, sz.n, err)
		}
		if sz.n == 8 {
			base = float64(res.Cycles)
		}
		out = append(out, ScalingPoint{
			NumCMPs:            sz.n,
			CyclesNorm:         float64(res.Cycles),
			SnoopsPerRequest:   res.Stats.SnoopsPerReadRequest(),
			AvgReadMissLatency: res.Stats.AvgReadMissLatency(),
		})
		if o.Progress != nil {
			o.Progress(fmt.Sprintf("%v @ %d CMPs: %d cycles", alg, sz.n, res.Cycles))
		}
	}
	for i := range out {
		out[i].CyclesNorm /= base
	}
	return out, nil
}
