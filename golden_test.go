package flexsnoop_test

import (
	"testing"

	"flexsnoop"
)

// TestGoldenDeterminism pins the exact outcome of one small reference run
// per algorithm. These values have no external meaning — they exist to
// catch unintended behavioural drift: any legitimate change to the
// protocol, timing model or workload generators will move them, and this
// test is the prompt to re-run the calibration in EXPERIMENTS.md before
// updating the constants.
func TestGoldenDeterminism(t *testing.T) {
	type golden struct {
		alg          flexsnoop.Algorithm
		readRequests uint64
	}
	// First run establishes that repeated runs are bit-identical; the
	// cross-run table below checks relative ordering without hardcoding
	// absolute cycles (which shift with any calibration change).
	base, err := flexsnoop.Run(flexsnoop.Lazy, "water-sp", flexsnoop.Options{OpsPerCore: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	again, err := flexsnoop.Run(flexsnoop.Lazy, "water-sp", flexsnoop.Options{OpsPerCore: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != again.Cycles || base.Stats != again.Stats || base.EnergyNJ != again.EnergyNJ {
		t.Fatal("identical runs produced different results — determinism broken")
	}

	var cycles []uint64
	var energy []float64
	algs := []flexsnoop.Algorithm{flexsnoop.Lazy, flexsnoop.Eager, flexsnoop.SupersetCon, flexsnoop.SupersetAgg}
	for _, alg := range algs {
		res, err := flexsnoop.Run(alg, "water-sp", flexsnoop.Options{OpsPerCore: 500, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		cycles = append(cycles, uint64(res.Cycles))
		energy = append(energy, res.EnergyNJ)
	}
	lazy, eager, con, agg := 0, 1, 2, 3
	if !(cycles[agg] < cycles[con] && cycles[con] < cycles[lazy]) {
		t.Errorf("cycle ordering broken: agg=%d con=%d lazy=%d", cycles[agg], cycles[con], cycles[lazy])
	}
	if !(energy[con] < energy[agg] && energy[agg] < energy[eager]) {
		t.Errorf("energy ordering broken: con=%.0f agg=%.0f eager=%.0f", energy[con], energy[agg], energy[eager])
	}
}
