package flexsnoop_test

// Tests for the context-aware entry points and the typed error sentinels:
// every sentinel must be reachable through errors.Is across the public
// API, and cancellation must be prompt without perturbing uncancelled
// runs.

import (
	"compress/gzip"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flexsnoop"
	"flexsnoop/internal/trace"
	"flexsnoop/internal/workload"
)

func TestErrUnknownWorkloadIs(t *testing.T) {
	_, err := flexsnoop.Run(flexsnoop.Lazy, "no-such-app", flexsnoop.Options{OpsPerCore: 10})
	if !errors.Is(err, flexsnoop.ErrUnknownWorkload) {
		t.Errorf("Run(unknown workload) = %v, want ErrUnknownWorkload", err)
	}
	if _, err := flexsnoop.WorkloadByName("no-such-app"); !errors.Is(err, flexsnoop.ErrUnknownWorkload) {
		t.Errorf("WorkloadByName = %v, want ErrUnknownWorkload", err)
	}
	if err := flexsnoop.WriteTraceFile(filepath.Join(t.TempDir(), "x"), "no-such-app", 10, 1); !errors.Is(err, flexsnoop.ErrUnknownWorkload) {
		t.Errorf("WriteTraceFile(unknown workload) = %v, want ErrUnknownWorkload", err)
	}
}

func TestErrUnknownAlgorithmIs(t *testing.T) {
	_, err := flexsnoop.ParseAlgorithm("Zippy")
	if !errors.Is(err, flexsnoop.ErrUnknownAlgorithm) {
		t.Errorf("ParseAlgorithm = %v, want ErrUnknownAlgorithm", err)
	}
}

func TestErrBadConfigIs(t *testing.T) {
	// Governor budget on a non-adaptive algorithm is a configuration
	// error, caught before any simulation runs.
	_, err := flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{
		OpsPerCore: 10, GovernorBudgetNJPerKCycle: 5,
	})
	if !errors.Is(err, flexsnoop.ErrBadConfig) {
		t.Errorf("governor on Lazy = %v, want ErrBadConfig", err)
	}
	// Wrong AlgorithmsPerNode length.
	_, err = flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{
		OpsPerCore:        10,
		AlgorithmsPerNode: []flexsnoop.Algorithm{flexsnoop.Lazy, flexsnoop.Eager},
	})
	if !errors.Is(err, flexsnoop.ErrBadConfig) {
		t.Errorf("wrong per-node length = %v, want ErrBadConfig", err)
	}
	// Options.Validate rejects impossible values directly.
	if err := (flexsnoop.Options{NumRings: -1}).Validate(); !errors.Is(err, flexsnoop.ErrBadConfig) {
		t.Errorf("Validate(NumRings: -1) = %v, want ErrBadConfig", err)
	}
	if err := (flexsnoop.Options{GovernorBudgetNJPerKCycle: -2}).Validate(); !errors.Is(err, flexsnoop.ErrBadConfig) {
		t.Errorf("Validate(negative budget) = %v, want ErrBadConfig", err)
	}
}

func TestErrBadTraceIs(t *testing.T) {
	dir := t.TempDir()

	// Corrupt contents.
	corrupt := filepath.Join(dir, "corrupt.trace")
	if err := os.WriteFile(corrupt, []byte("definitely not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := flexsnoop.RunTraceFile(flexsnoop.Lazy, corrupt, flexsnoop.Options{}); !errors.Is(err, flexsnoop.ErrBadTrace) {
		t.Errorf("corrupt trace = %v, want ErrBadTrace", err)
	}

	// Bad gzip envelope: a .gz path whose contents are not gzip.
	badGz := filepath.Join(dir, "bad.trace.gz")
	if err := os.WriteFile(badGz, []byte("not gzip either"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := flexsnoop.RunTraceFile(flexsnoop.Lazy, badGz, flexsnoop.Options{}); !errors.Is(err, flexsnoop.ErrBadTrace) {
		t.Errorf("bad gzip envelope = %v, want ErrBadTrace", err)
	}

	// Truncated but well-formed prefix: gzip of a valid header cut short.
	truncated := filepath.Join(dir, "trunc.trace.gz")
	full := filepath.Join(dir, "full.trace")
	if err := flexsnoop.WriteTraceFile(full, "fft", 50, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(truncated)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write(data[:len(data)/3]); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := flexsnoop.RunTraceFile(flexsnoop.Lazy, truncated, flexsnoop.Options{}); !errors.Is(err, flexsnoop.ErrBadTrace) {
		t.Errorf("truncated trace = %v, want ErrBadTrace", err)
	}

	// A stream count that does not map onto the machine's CMPs.
	mismatch := filepath.Join(dir, "mismatch.trace")
	prof, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	streams := make([][]workload.Op, 3) // default machine has 8 CMPs
	for g := range streams {
		streams[g] = trace.Record(workload.NewGenerator(prof, g, 20, 1))
	}
	mf, err := os.Create(mismatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(mf, streams); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := flexsnoop.RunTraceFile(flexsnoop.Lazy, mismatch, flexsnoop.Options{}); !errors.Is(err, flexsnoop.ErrBadTrace) {
		t.Errorf("3-stream trace on 8-CMP machine = %v, want ErrBadTrace", err)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := flexsnoop.RunContext(ctx, flexsnoop.Lazy, "fft", flexsnoop.Options{OpsPerCore: 200})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(cancelled) = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelIsPrompt(t *testing.T) {
	// Cancel mid-run and require a prompt return: the kernel polls the
	// context between events, so even a large simulation must stop in
	// well under a second of wall time once the context is done.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := make(chan struct{})
	go func() {
		close(start)
		_, err := flexsnoop.RunContext(ctx, flexsnoop.Eager, "specjbb", flexsnoop.Options{OpsPerCore: 200_000})
		errc <- err
	}()
	<-start
	time.Sleep(20 * time.Millisecond) // let the simulation get going
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return promptly")
	}
}

func TestRunContextDoesNotPerturbDeterminism(t *testing.T) {
	// A run under a live-but-never-cancelled context, and a run after an
	// aborted run, must both be cycle-identical to a plain Run.
	opts := flexsnoop.Options{OpsPerCore: 400, Seed: 9}
	base, err := flexsnoop.Run(flexsnoop.SupersetAgg, "barnes", opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := flexsnoop.RunContext(ctx, flexsnoop.SupersetAgg, "barnes", opts)
	if err != nil {
		t.Fatal(err)
	}
	if withCtx.Cycles != base.Cycles || withCtx.Stats.SnoopsPerReadRequest() != base.Stats.SnoopsPerReadRequest() {
		t.Fatalf("context-bearing run diverged: %d vs %d cycles", withCtx.Cycles, base.Cycles)
	}

	// Abort one run, then check a fresh run still matches.
	aborted, abort := context.WithCancel(context.Background())
	abort()
	if _, err := flexsnoop.RunContext(aborted, flexsnoop.SupersetAgg, "barnes", opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted run returned %v", err)
	}
	again, err := flexsnoop.Run(flexsnoop.SupersetAgg, "barnes", opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cycles != base.Cycles {
		t.Fatalf("run after an aborted run diverged: %d vs %d cycles", again.Cycles, base.Cycles)
	}
}

func TestFigureOptionsContextStopsMatrix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := flexsnoop.RunMatrix(flexsnoop.FigureOptions{
		OpsPerCore: 100, Apps: []string{"fft"}, Context: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunMatrix(cancelled ctx) = %v, want context.Canceled", err)
	}
}

func TestRunBenchSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench suite is slow")
	}
	s, err := flexsnoop.RunBenchSuite(flexsnoop.BenchConfig{
		Short: true, Scenarios: []string{"trace-replay"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := s.Result("trace-replay")
	if !ok {
		t.Fatal("trace-replay result missing")
	}
	if r.Iterations == 0 || r.NsPerOp <= 0 || r.SimCycles == 0 || r.CyclesPerSec <= 0 {
		t.Errorf("implausible bench result: %+v", r)
	}
	if r.AllocsPerOp <= 0 {
		t.Errorf("allocs/op = %d; memory accounting missing", r.AllocsPerOp)
	}
	// 4 scenarios plus the matrix-subset-shard and scaling-16cmp-shard
	// variant rows.
	if len(flexsnoop.BenchScenarios()) != 6 {
		t.Errorf("scenario set = %v, want 6 rows", flexsnoop.BenchScenarios())
	}
}
