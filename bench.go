package flexsnoop

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// This file is the continuous-benchmark harness behind cmd/bench and the
// ci.sh bench step. It runs a fixed scenario set through testing.Benchmark
// so every PR records comparable wall-time and allocation numbers in a
// BENCH_<pr>.json artifact at the repository root.

// BenchConfig selects what RunBenchSuite measures.
type BenchConfig struct {
	// Short halves the per-scenario reference counts, for CI. The
	// matrix-subset scenario keeps its full size either way so its
	// allocs/op stay comparable across BENCH_*.json generations.
	Short bool
	// Scenarios, when non-empty, restricts the run to the named
	// scenarios (see BenchScenarios). Shard variants are selected by
	// their own row names ("matrix-subset-shard").
	Scenarios []string
	// ShardRings forces Options.ShardRings on for every row, including
	// the ones that would normally run serial. The default suite already
	// contains dedicated "-shard" rows, so this is only useful for
	// ad-hoc comparisons.
	ShardRings bool
	// ProfileDir, when non-empty, writes per-scenario CPU and heap
	// profiles (<dir>/<scenario>.cpu.prof, <dir>/<scenario>.mem.prof)
	// covering each scenario's measured region.
	ProfileDir string
	// GitCommit, when non-empty, is recorded in the artifact (cmd/bench
	// fills it from `git rev-parse`).
	GitCommit string
}

// BenchResult records one scenario's measurement. Allocation numbers come
// from testing.Benchmark's memory accounting (the -benchmem counters);
// SimCycles is the simulated time covered by one iteration, so
// CyclesPerSec is the simulator's throughput in simulated cycles per
// wall-clock second.
type BenchResult struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	// ShardRings and GoMaxProcs record the configuration of THIS row —
	// they live per-result (not per-suite) so one BENCH file can hold
	// serial and sharded rows side by side without lying about either.
	ShardRings   bool    `json:"shard_rings"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SimCycles    uint64  `json:"sim_cycles"`
	CyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// BenchSuite is the BENCH_<pr>.json document: the full scenario set from
// one RunBenchSuite call, plus the environment that produced it, so
// artifacts from different PRs are compared like for like. Per-row
// configuration (ShardRings, GOMAXPROCS) lives on each BenchResult.
type BenchSuite struct {
	GoVersion   string        `json:"go_version"`
	GitCommit   string        `json:"git_commit,omitempty"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Short       bool          `json:"short"`
	GeneratedAt string        `json:"generated_at"`
	Results     []BenchResult `json:"results"`
}

// Result returns the named scenario's measurement.
func (s *BenchSuite) Result(name string) (BenchResult, bool) {
	for _, r := range s.Results {
		if r.Name == name {
			return r, true
		}
	}
	return BenchResult{}, false
}

// benchScenario is one fixed workload of the suite. setup runs once,
// outside the measured region, and returns the per-iteration body; the
// body returns the simulated cycles it covered.
type benchScenario struct {
	name      string
	ops       uint64 // reference count per core at full size
	fixed     bool   // ops not halved in Short mode
	shardable bool   // also run a "<name>-shard" row with ShardRings on
	setup     func(ops uint64, shard bool) (func() (uint64, error), func(), error)
}

// benchScenarios returns the fixed scenario set, in run order.
func benchScenarios() []benchScenario {
	return []benchScenario{
		{
			// The figure-6..9 matrix restricted to two SPLASH-2 apps:
			// every algorithm over barnes, fft, SPECjbb and SPECweb.
			// This is the suite's headline allocs/op number, so its
			// size is fixed across Short and full runs.
			name: "matrix-subset", ops: 800, fixed: true, shardable: true,
			setup: func(ops uint64, shard bool) (func() (uint64, error), func(), error) {
				opts := FigureOptions{OpsPerCore: ops, Seed: 1, Apps: []string{"barnes", "fft"}, ShardRings: shard}
				return func() (uint64, error) {
					m, err := RunMatrix(opts)
					if err != nil {
						return 0, err
					}
					var cycles uint64
					for _, byWl := range m.results {
						for _, res := range byWl {
							cycles += uint64(res.Cycles)
						}
					}
					return cycles, nil
				}, nil, nil
			},
		},
		{
			// The largest machine of the scaling study: one 16-CMP run.
			name: "scaling-16cmp", ops: 600, shardable: true,
			setup: func(ops uint64, shard bool) (func() (uint64, error), func(), error) {
				opts := Options{
					OpsPerCore: ops, Seed: 1, ShardRings: shard,
					Tweak: func(m *MachineConfig) {
						m.NumCMPs = 16
						m.TorusWidth, m.TorusHeight = 4, 4
					},
				}
				return func() (uint64, error) {
					res, err := Run(SupersetAgg, "barnes", opts)
					if err != nil {
						return 0, err
					}
					return uint64(res.Cycles), nil
				}, nil, nil
			},
		},
		{
			// Trace-driven mode: replay a recorded SPECjbb trace. The
			// trace is written once, outside the measured region.
			name: "trace-replay", ops: 1000,
			setup: func(ops uint64, shard bool) (func() (uint64, error), func(), error) {
				dir, err := os.MkdirTemp("", "flexsnoop-bench")
				if err != nil {
					return nil, nil, err
				}
				path := filepath.Join(dir, "specjbb.trace")
				if err := WriteTraceFile(path, "specjbb", ops, 1); err != nil {
					os.RemoveAll(dir)
					return nil, nil, err
				}
				body := func() (uint64, error) {
					res, err := RunTraceFile(Eager, path, Options{ShardRings: shard})
					if err != nil {
						return 0, err
					}
					return uint64(res.Cycles), nil
				}
				return body, func() { os.RemoveAll(dir) }, nil
			},
		},
		{
			// The hardened hot path: a run with fault injection, snoop
			// deadlines, the watchdog and the continuous checker all
			// armed, so the retransmit/timeout machinery shows up in the
			// throughput record. Drop and delay rates are kept low enough
			// that every transaction still completes.
			name: "fault-injected", ops: 800,
			setup: func(ops uint64, shard bool) (func() (uint64, error), func(), error) {
				plan, err := ParseFaultPlan("kind=drop,rate=0.02,seed=7;kind=delay,rate=0.05,delay=80,seed=11")
				if err != nil {
					return nil, nil, err
				}
				opts := Options{
					OpsPerCore: ops, Seed: 1, ShardRings: shard,
					Faults: plan, CheckEvery: 5000,
				}
				return func() (uint64, error) {
					res, err := Run(SupersetAgg, "barnes", opts)
					if err != nil {
						return 0, err
					}
					return uint64(res.Cycles), nil
				}, nil, nil
			},
		},
	}
}

// benchRow is one measured row of the suite: a scenario plus the ring
// execution mode it runs under.
type benchRow struct {
	sc    benchScenario
	name  string
	shard bool
}

// benchRows expands the scenario set into the suite's row list: every
// scenario once in its default mode, plus a "<name>-shard" row for the
// shardable simulation scenarios. With cfg.ShardRings every row is
// sharded already, so the dedicated variants would be duplicates and are
// skipped.
func benchRows(cfg BenchConfig) []benchRow {
	var rows []benchRow
	for _, sc := range benchScenarios() {
		rows = append(rows, benchRow{sc: sc, name: sc.name, shard: cfg.ShardRings})
		if sc.shardable && !cfg.ShardRings {
			rows = append(rows, benchRow{sc: sc, name: sc.name + "-shard", shard: true})
		}
	}
	return rows
}

// BenchScenarios lists the row names RunBenchSuite produces by default,
// in run order (shard variants included).
func BenchScenarios() []string {
	var names []string
	for _, row := range benchRows(BenchConfig{}) {
		names = append(names, row.name)
	}
	return names
}

// RunBenchSuite measures every row (or the cfg.Scenarios subset, matched
// by row name) with testing.Benchmark and returns the suite document for
// BENCH_*.json.
func RunBenchSuite(cfg BenchConfig) (*BenchSuite, error) {
	want := map[string]bool{}
	for _, n := range cfg.Scenarios {
		want[n] = true
	}
	suite := &BenchSuite{
		GoVersion:   runtime.Version(),
		GitCommit:   cfg.GitCommit,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Short:       cfg.Short,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, row := range benchRows(cfg) {
		if len(want) > 0 && !want[row.name] {
			continue
		}
		sc := row.sc
		ops := sc.ops
		if cfg.Short && !sc.fixed {
			ops /= 2
		}
		body, cleanup, err := sc.setup(ops, row.shard)
		if err != nil {
			return nil, fmt.Errorf("flexsnoop: bench %s setup: %w", row.name, err)
		}
		res, err := measureRow(cfg, row, body)
		if cleanup != nil {
			cleanup()
		}
		if err != nil {
			return nil, err
		}
		suite.Results = append(suite.Results, res)
	}
	return suite, nil
}

// measureRow runs one row's testing.Benchmark, bracketed by the optional
// per-row CPU profile (heap profile written after the measured region).
func measureRow(cfg BenchConfig, row benchRow, body func() (uint64, error)) (BenchResult, error) {
	var cpuFile *os.File
	if cfg.ProfileDir != "" {
		if err := os.MkdirAll(cfg.ProfileDir, 0o755); err != nil {
			return BenchResult{}, fmt.Errorf("flexsnoop: bench profile dir: %w", err)
		}
		f, err := os.Create(filepath.Join(cfg.ProfileDir, row.name+".cpu.prof"))
		if err != nil {
			return BenchResult{}, fmt.Errorf("flexsnoop: bench %s: %w", row.name, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return BenchResult{}, fmt.Errorf("flexsnoop: bench %s: %w", row.name, err)
		}
		cpuFile = f
	}
	// Shard rows measure the parallel dispatch path, which needs more
	// than one P to overlap ring workers; on a single-CPU host the row
	// runs with GOMAXPROCS=2 (time-sliced) rather than silently
	// degenerating to serial scheduling.
	procs := runtime.GOMAXPROCS(0)
	if row.shard && procs < 2 {
		procs = 2
		prev := runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
	}
	var cycles uint64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := body()
			if err != nil {
				runErr = err
				b.StopTimer()
				return
			}
			cycles = c
		}
	})
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
		if err := writeHeapProfile(filepath.Join(cfg.ProfileDir, row.name+".mem.prof")); err != nil {
			return BenchResult{}, fmt.Errorf("flexsnoop: bench %s: %w", row.name, err)
		}
	}
	if runErr != nil {
		return BenchResult{}, fmt.Errorf("flexsnoop: bench %s: %w", row.name, runErr)
	}
	nsOp := r.NsPerOp()
	res := BenchResult{
		Name:        row.name,
		Iterations:  r.N,
		ShardRings:  row.shard,
		GoMaxProcs:  procs,
		NsPerOp:     nsOp,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SimCycles:   cycles,
	}
	if nsOp > 0 {
		res.CyclesPerSec = float64(cycles) / (float64(nsOp) / 1e9)
	}
	return res, nil
}

// writeHeapProfile records an up-to-date allocation profile so the
// alloc_objects/alloc_space views cover the whole measured region.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.Lookup("allocs").WriteTo(f, 0)
}
