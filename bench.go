package flexsnoop

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// This file is the continuous-benchmark harness behind cmd/bench and the
// ci.sh bench step. It runs a fixed scenario set through testing.Benchmark
// so every PR records comparable wall-time and allocation numbers in a
// BENCH_<pr>.json artifact at the repository root.

// BenchConfig selects what RunBenchSuite measures.
type BenchConfig struct {
	// Short halves the per-scenario reference counts, for CI. The
	// matrix-subset scenario keeps its full size either way so its
	// allocs/op stay comparable across BENCH_*.json generations.
	Short bool
	// Scenarios, when non-empty, restricts the run to the named
	// scenarios (see BenchScenarios).
	Scenarios []string
	// ShardRings enables Options.ShardRings for the simulation scenarios
	// (recorded in the artifact so numbers are compared like for like).
	ShardRings bool
	// GitCommit, when non-empty, is recorded in the artifact (cmd/bench
	// fills it from `git rev-parse`).
	GitCommit string
}

// BenchResult records one scenario's measurement. Allocation numbers come
// from testing.Benchmark's memory accounting (the -benchmem counters);
// SimCycles is the simulated time covered by one iteration, so
// CyclesPerSec is the simulator's throughput in simulated cycles per
// wall-clock second.
type BenchResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SimCycles    uint64  `json:"sim_cycles"`
	CyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// BenchSuite is the BENCH_<pr>.json document: the full scenario set from
// one RunBenchSuite call, plus the environment that produced it (git
// commit, GOMAXPROCS and the ShardRings mode), so artifacts from
// different PRs are compared like for like.
type BenchSuite struct {
	GoVersion   string        `json:"go_version"`
	GitCommit   string        `json:"git_commit,omitempty"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	ShardRings  bool          `json:"shard_rings"`
	Short       bool          `json:"short"`
	GeneratedAt string        `json:"generated_at"`
	Results     []BenchResult `json:"results"`
}

// Result returns the named scenario's measurement.
func (s *BenchSuite) Result(name string) (BenchResult, bool) {
	for _, r := range s.Results {
		if r.Name == name {
			return r, true
		}
	}
	return BenchResult{}, false
}

// benchScenario is one fixed workload of the suite. setup runs once,
// outside the measured region, and returns the per-iteration body; the
// body returns the simulated cycles it covered.
type benchScenario struct {
	name  string
	ops   uint64 // reference count per core at full size
	fixed bool   // ops not halved in Short mode
	setup func(ops uint64, shard bool) (func() (uint64, error), func(), error)
}

// benchScenarios returns the fixed scenario set, in run order.
func benchScenarios() []benchScenario {
	return []benchScenario{
		{
			// The figure-6..9 matrix restricted to two SPLASH-2 apps:
			// every algorithm over barnes, fft, SPECjbb and SPECweb.
			// This is the suite's headline allocs/op number, so its
			// size is fixed across Short and full runs.
			name: "matrix-subset", ops: 800, fixed: true,
			setup: func(ops uint64, shard bool) (func() (uint64, error), func(), error) {
				opts := FigureOptions{OpsPerCore: ops, Seed: 1, Apps: []string{"barnes", "fft"}, ShardRings: shard}
				return func() (uint64, error) {
					m, err := RunMatrix(opts)
					if err != nil {
						return 0, err
					}
					var cycles uint64
					for _, byWl := range m.results {
						for _, res := range byWl {
							cycles += uint64(res.Cycles)
						}
					}
					return cycles, nil
				}, nil, nil
			},
		},
		{
			// The largest machine of the scaling study: one 16-CMP run.
			name: "scaling-16cmp", ops: 600,
			setup: func(ops uint64, shard bool) (func() (uint64, error), func(), error) {
				opts := Options{
					OpsPerCore: ops, Seed: 1, ShardRings: shard,
					Tweak: func(m *MachineConfig) {
						m.NumCMPs = 16
						m.TorusWidth, m.TorusHeight = 4, 4
					},
				}
				return func() (uint64, error) {
					res, err := Run(SupersetAgg, "barnes", opts)
					if err != nil {
						return 0, err
					}
					return uint64(res.Cycles), nil
				}, nil, nil
			},
		},
		{
			// Trace-driven mode: replay a recorded SPECjbb trace. The
			// trace is written once, outside the measured region.
			name: "trace-replay", ops: 1000,
			setup: func(ops uint64, shard bool) (func() (uint64, error), func(), error) {
				dir, err := os.MkdirTemp("", "flexsnoop-bench")
				if err != nil {
					return nil, nil, err
				}
				path := filepath.Join(dir, "specjbb.trace")
				if err := WriteTraceFile(path, "specjbb", ops, 1); err != nil {
					os.RemoveAll(dir)
					return nil, nil, err
				}
				body := func() (uint64, error) {
					res, err := RunTraceFile(Eager, path, Options{ShardRings: shard})
					if err != nil {
						return 0, err
					}
					return uint64(res.Cycles), nil
				}
				return body, func() { os.RemoveAll(dir) }, nil
			},
		},
		{
			// The hardened hot path: a run with fault injection, snoop
			// deadlines, the watchdog and the continuous checker all
			// armed, so the retransmit/timeout machinery shows up in the
			// throughput record. Drop and delay rates are kept low enough
			// that every transaction still completes.
			name: "fault-injected", ops: 800,
			setup: func(ops uint64, shard bool) (func() (uint64, error), func(), error) {
				plan, err := ParseFaultPlan("kind=drop,rate=0.02,seed=7;kind=delay,rate=0.05,delay=80,seed=11")
				if err != nil {
					return nil, nil, err
				}
				opts := Options{
					OpsPerCore: ops, Seed: 1, ShardRings: shard,
					Faults: plan, CheckEvery: 5000,
				}
				return func() (uint64, error) {
					res, err := Run(SupersetAgg, "barnes", opts)
					if err != nil {
						return 0, err
					}
					return uint64(res.Cycles), nil
				}, nil, nil
			},
		},
	}
}

// BenchScenarios lists the scenario names RunBenchSuite knows, in run
// order.
func BenchScenarios() []string {
	var names []string
	for _, sc := range benchScenarios() {
		names = append(names, sc.name)
	}
	return names
}

// RunBenchSuite measures every scenario (or the cfg.Scenarios subset)
// with testing.Benchmark and returns the suite document for BENCH_*.json.
func RunBenchSuite(cfg BenchConfig) (*BenchSuite, error) {
	want := map[string]bool{}
	for _, n := range cfg.Scenarios {
		want[n] = true
	}
	suite := &BenchSuite{
		GoVersion:   runtime.Version(),
		GitCommit:   cfg.GitCommit,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		ShardRings:  cfg.ShardRings,
		Short:       cfg.Short,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, sc := range benchScenarios() {
		if len(want) > 0 && !want[sc.name] {
			continue
		}
		ops := sc.ops
		if cfg.Short && !sc.fixed {
			ops /= 2
		}
		body, cleanup, err := sc.setup(ops, cfg.ShardRings)
		if err != nil {
			return nil, fmt.Errorf("flexsnoop: bench %s setup: %w", sc.name, err)
		}
		var cycles uint64
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := body()
				if err != nil {
					runErr = err
					b.StopTimer()
					return
				}
				cycles = c
			}
		})
		if cleanup != nil {
			cleanup()
		}
		if runErr != nil {
			return nil, fmt.Errorf("flexsnoop: bench %s: %w", sc.name, runErr)
		}
		nsOp := r.NsPerOp()
		res := BenchResult{
			Name:        sc.name,
			Iterations:  r.N,
			NsPerOp:     nsOp,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			SimCycles:   cycles,
		}
		if nsOp > 0 {
			res.CyclesPerSec = float64(cycles) / (float64(nsOp) / 1e9)
		}
		suite.Results = append(suite.Results, res)
	}
	return suite, nil
}
