// Command ringsim runs one simulation of the embedded-ring multiprocessor
// under a chosen snooping algorithm and workload, printing the run's
// metrics.
//
// Usage:
//
//	ringsim [-alg SupersetAgg] [-workload barnes] [-ops 3000] [-seed 1]
//	        [-predictor Sub2k|Supy2k|...] [-rings 2] [-noprefetch]
//	        [-check] [-replay file]
//	        [-faults "kind=drop,rate=0.05,seed=1;kind=delay,rate=0.1,delay=80"]
//	        [-checkevery N] [-watchdog N] [-degrade]
//	        [-trace out.json] [-traceformat chrome|jsonl] [-tracehops]
//	        [-metrics out.csv] [-interval N] [-chart out.svg]
//	        [-cpuprofile out.pprof] [-memprofile out.pprof]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"flexsnoop"
	"flexsnoop/internal/cli"
	"flexsnoop/internal/energy"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/stats"
)

// protocolHistLabel names a read-miss latency bucket.
func protocolHistLabel(i int) string { return protocol.HistBucketLabel(i) }

var (
	algFlag    = flag.String("alg", "SupersetAgg", "snooping algorithm (Lazy, Eager, Oracle, Subset, SupersetCon, SupersetAgg, Exact, DynamicSuperset)")
	wlFlag     = flag.String("workload", "barnes", "workload name (see -list)")
	opsFlag    = flag.Uint64("ops", 3000, "memory references per core")
	seedFlag   = flag.Int64("seed", 1, "workload seed")
	predFlag   = flag.String("predictor", "", "supplier predictor override (Sub512..Exa8k)")
	ringsFlag  = flag.Int("rings", 0, "number of embedded rings (0 = default 2)")
	noPrefetch = flag.Bool("noprefetch", false, "disable the prefetch-on-snoop heuristic")
	checkFlag  = flag.Bool("check", false, "run the coherence invariant checker")
	replayFlag = flag.String("replay", "", "replay a trace file instead of a synthetic workload")
	budgetFlag = flag.Float64("budget", 0, "DynamicSuperset energy budget (nJ per 1000 cycles)")
	shardFlag  = flag.Bool("shard", false, "arbitrate per-ring transmit batches on worker goroutines (cycle-identical results)")
	listFlag   = flag.Bool("list", false, "list workloads and predictors, then exit")
	jsonFlag   = flag.Bool("json", false, "emit the result as JSON instead of a table")

	// Robustness: deterministic fault injection and the layers that make
	// injected faults survivable (see DESIGN.md §8).
	faultsFlag = flag.String("faults", "", "fault plan, e.g. \"kind=drop,rate=0.05,seed=1;kind=delay,rate=0.1,delay=80,seed=2\"")
	checkEvery = flag.Uint64("checkevery", 0, "run the full invariant checker every N cycles (0 = off)")
	watchdog   = flag.Uint64("watchdog", 0, "watchdog window in cycles (0 = default; armed automatically under -faults)")
	degrade    = flag.Bool("degrade", false, "degrade gracefully on a watchdog verdict (force Eager forwarding) instead of failing fast")

	// Telemetry outputs (the run is cycle-identical with or without them).
	traceOut   = flag.String("trace", "", "write a per-transaction event trace to this file")
	traceFmt   = flag.String("traceformat", "chrome", "trace format: chrome (Perfetto-loadable) or jsonl")
	traceHops  = flag.Bool("tracehops", false, "include per-ring-hop instants in the trace (verbose)")
	metricsOut = flag.String("metrics", "", "write interval time-series metrics CSV to this file")
	interval   = flag.Uint64("interval", 0, "metrics sampling interval in cycles (0 = default 5000)")
	chartOut   = flag.String("chart", "", "write an SVG chart of the interval metrics to this file")

	// Profiling of the simulator itself.
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
	memProfile = flag.String("memprofile", "", "write a heap profile of the simulator to this file")
)

func main() {
	flag.Parse()
	if *listFlag {
		fmt.Println("workloads:")
		for _, w := range flexsnoop.Workloads() {
			fmt.Println("  " + w)
		}
		fmt.Println("predictors:")
		for name := range flexsnoop.Predictors() {
			fmt.Println("  " + name)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(cli.ExitCode(err))
	}
}

func run() error {
	alg, err := flexsnoop.ParseAlgorithm(*algFlag)
	if err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := cli.CreateFile(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	opts := flexsnoop.Options{
		OpsPerCore:                *opsFlag,
		Seed:                      *seedFlag,
		CheckInvariants:           *checkFlag,
		DisablePrefetch:           *noPrefetch,
		NumRings:                  *ringsFlag,
		GovernorBudgetNJPerKCycle: *budgetFlag,
		ShardRings:                *shardFlag,
		CheckEvery:                *checkEvery,
		WatchdogWindow:            *watchdog,
		WatchdogDegrade:           *degrade,
	}
	if *faultsFlag != "" {
		plan, err := flexsnoop.ParseFaultPlan(*faultsFlag)
		if err != nil {
			return err
		}
		opts.Faults = plan
	}
	if *predFlag != "" {
		p, ok := flexsnoop.Predictors()[*predFlag]
		if !ok {
			return fmt.Errorf("unknown predictor %q (try -list)", *predFlag)
		}
		opts.Predictor = &p
	}
	tel, closeTel, err := telemetryFromFlags()
	if err != nil {
		closeTel()
		return err
	}
	opts.Telemetry = tel

	var res flexsnoop.Result
	src := flexsnoop.FromWorkload(*wlFlag)
	if *replayFlag != "" {
		src = flexsnoop.FromTraceFile(*replayFlag)
	}
	res, err = flexsnoop.Simulate(context.Background(), alg, src, opts)
	if cerr := closeTel(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if *memProfile != "" {
		f, err := cli.CreateFile(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if *jsonFlag {
		return printJSON(res)
	}
	print(res)
	return nil
}

// telemetryFromFlags builds the telemetry configuration from the -trace,
// -metrics, -interval and -chart flags, returning nil options when no
// output is requested. The returned func closes every opened file.
func telemetryFromFlags() (*flexsnoop.TelemetryOptions, func() error, error) {
	noop := func() error { return nil }
	if *traceOut == "" && *metricsOut == "" && *chartOut == "" {
		return nil, noop, nil
	}
	switch *traceFmt {
	case flexsnoop.TraceFormatChrome, flexsnoop.TraceFormatJSONL:
	default:
		return nil, noop, fmt.Errorf("unknown -traceformat %q (want %s or %s)",
			*traceFmt, flexsnoop.TraceFormatChrome, flexsnoop.TraceFormatJSONL)
	}
	tel := &flexsnoop.TelemetryOptions{
		TraceFormat:    *traceFmt,
		TraceHops:      *traceHops,
		IntervalCycles: *interval,
	}
	var files []*os.File
	open := func(path string, dst *io.Writer) error {
		if path == "" {
			return nil
		}
		f, err := cli.CreateFile(path)
		if err != nil {
			return err
		}
		files = append(files, f)
		*dst = f
		return nil
	}
	closeAll := func() error {
		var err error
		for _, f := range files {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}
	if err := open(*traceOut, &tel.Trace); err != nil {
		return nil, closeAll, err
	}
	if err := open(*metricsOut, &tel.Metrics); err != nil {
		return nil, closeAll, err
	}
	if err := open(*chartOut, &tel.Chart); err != nil {
		return nil, closeAll, err
	}
	return tel, closeAll, nil
}

// jsonReport is the machine-readable result shape.
type jsonReport struct {
	Algorithm              string             `json:"algorithm"`
	Workload               string             `json:"workload"`
	Predictor              string             `json:"predictor"`
	Cycles                 uint64             `json:"cycles"`
	Instructions           uint64             `json:"instructions"`
	IPC                    float64            `json:"ipc"`
	SnoopsPerReadRequest   float64            `json:"snoops_per_read_request"`
	SegmentsPerReadRequest float64            `json:"ring_segments_per_read_request"`
	AvgReadMissLatency     float64            `json:"avg_read_miss_latency_cycles"`
	ReadRequests           uint64             `json:"read_requests"`
	WriteRequests          uint64             `json:"write_requests"`
	LocalSupplies          uint64             `json:"local_supplies"`
	CacheSupplies          uint64             `json:"cache_supplies"`
	MemorySupplies         uint64             `json:"memory_supplies"`
	Squashes               uint64             `json:"squashes"`
	Retries                uint64             `json:"retries"`
	UseOnceReads           uint64             `json:"use_once_reads"`
	Downgrades             uint64             `json:"downgrades"`
	PrefetchHits           uint64             `json:"prefetch_hits"`
	EnergyNJ               float64            `json:"energy_nj"`
	EnergyBreakdownNJ      map[string]float64 `json:"energy_breakdown_nj"`
	PredictorTP            float64            `json:"predictor_tp"`
	PredictorTN            float64            `json:"predictor_tn"`
	PredictorFP            float64            `json:"predictor_fp"`
	PredictorFN            float64            `json:"predictor_fn"`
	GovernorAggressiveFrac float64            `json:"governor_aggressive_frac,omitempty"`

	// Fault-injection counters (only populated under -faults).
	FaultDrops    uint64 `json:"fault_drops,omitempty"`
	FaultDups     uint64 `json:"fault_dups,omitempty"`
	FaultDelays   uint64 `json:"fault_delays,omitempty"`
	FaultStalls   uint64 `json:"fault_stalls,omitempty"`
	SnoopTimeouts uint64 `json:"snoop_timeouts,omitempty"`
	DegradedLines uint64 `json:"degraded_lines,omitempty"`
}

func printJSON(r flexsnoop.Result) error {
	s := r.Stats
	tp, tn, fp, fn := s.Accuracy.Fractions()
	breakdown := map[string]float64{}
	for c, v := range r.EnergyBreakdown {
		breakdown[c.String()] = v
	}
	rep := jsonReport{
		Algorithm: r.Algorithm.String(), Workload: r.Workload, Predictor: r.Predictor,
		Cycles: uint64(r.Cycles), Instructions: r.Instructions, IPC: r.IPC,
		SnoopsPerReadRequest:   s.SnoopsPerReadRequest(),
		SegmentsPerReadRequest: s.ReadSegmentsPerRequest(),
		AvgReadMissLatency:     s.AvgReadMissLatency(),
		ReadRequests:           s.ReadRequests, WriteRequests: s.WriteRequests,
		LocalSupplies: s.LocalSupplies, CacheSupplies: s.CacheSupplies,
		MemorySupplies: s.MemorySupplies,
		Squashes:       s.Squashes, Retries: s.Retries, UseOnceReads: s.UseOnceReads,
		Downgrades: s.Downgrades, PrefetchHits: s.PrefetchHits,
		EnergyNJ: r.EnergyNJ, EnergyBreakdownNJ: breakdown,
		PredictorTP: tp, PredictorTN: tn, PredictorFP: fp, PredictorFN: fn,
		GovernorAggressiveFrac: r.GovernorAggFrac,
		FaultDrops:             s.FaultDrops, FaultDups: s.FaultDups,
		FaultDelays: s.FaultDelays, FaultStalls: s.FaultStalls,
		SnoopTimeouts: s.SnoopTimeouts, DegradedLines: s.DegradedLines,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func print(r flexsnoop.Result) {
	t := stats.NewTable(fmt.Sprintf("%v on %s (predictor %s)", r.Algorithm, r.Workload, r.Predictor),
		"Metric", "Value")
	t.AddRowf("Execution time (cycles)", fmt.Sprintf("%d", r.Cycles))
	t.AddRowf("Instructions", fmt.Sprintf("%d", r.Instructions))
	t.AddRowf("Aggregate IPC", r.IPC)
	s := r.Stats
	t.AddRowf("Ring read requests", fmt.Sprintf("%d", s.ReadRequests))
	t.AddRowf("Ring write requests", fmt.Sprintf("%d", s.WriteRequests))
	t.AddRowf("Snoops per read request", s.SnoopsPerReadRequest())
	t.AddRowf("Ring segments per read request", s.ReadSegmentsPerRequest())
	t.AddRowf("Avg off-chip read-miss latency (cycles)", s.AvgReadMissLatency())
	t.AddRowf("Supply: local / cache / memory",
		fmt.Sprintf("%d / %d / %d", s.LocalSupplies, s.CacheSupplies, s.MemorySupplies))
	t.AddRowf("Squashes / retries", fmt.Sprintf("%d / %d", s.Squashes, s.Retries))
	if s.FaultDrops+s.FaultDups+s.FaultDelays+s.FaultStalls > 0 {
		t.AddRowf("Faults: drop / dup / delay / stall",
			fmt.Sprintf("%d / %d / %d / %d", s.FaultDrops, s.FaultDups, s.FaultDelays, s.FaultStalls))
		t.AddRowf("Snoop timeouts / degraded lines",
			fmt.Sprintf("%d / %d", s.SnoopTimeouts, s.DegradedLines))
	}
	t.AddRowf("Prefetch hits / prefetches", fmt.Sprintf("%d / %d", s.PrefetchHits, s.Prefetches))
	t.AddRowf("Downgrades (Exact)", fmt.Sprintf("%d", s.Downgrades))
	if s.Accuracy.Total() > 0 {
		tp, tn, fp, fn := s.Accuracy.Fractions()
		t.AddRowf("Predictor TP/TN/FP/FN", fmt.Sprintf("%.3f/%.3f/%.3f/%.3f", tp, tn, fp, fn))
	}
	// Read-miss latency histogram (off-chip misses).
	for i, n := range s.ReadMissHist {
		if n > 0 {
			t.AddRowf("  miss latency "+protocolHistLabel(i)+" cyc", fmt.Sprintf("%d", n))
		}
	}
	t.AddRowf("Snoop energy (nJ)", r.EnergyNJ)
	for _, c := range energy.Categories() {
		if v := r.EnergyBreakdown[c]; v > 0 {
			t.AddRowf("  "+c.String()+" (nJ)", v)
		}
	}
	if r.GovernorAggFrac > 0 {
		t.AddRowf("Governor aggressive fraction", r.GovernorAggFrac)
	}
	fmt.Println(t)
}
