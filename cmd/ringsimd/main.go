// Command ringsimd serves the simulator as a daemon: a JSON job API with
// a bounded priority queue, a content-addressed result cache, NDJSON
// streaming of interval telemetry, and graceful SIGTERM drain. See
// internal/service for the API surface and DESIGN.md §9 for the design.
//
// Usage:
//
//	ringsimd [-addr 127.0.0.1:8080] [-workers N] [-queue N] [-cache N]
//	         [-drain 30s] [-quiet] [-maxbody BYTES]
//	         [-wal DIR] [-walsync always|none] [-cachedir DIR]
//	         [-coordinator] [-backends URL,URL,...] [-hedge 0s]
//	         [-register http://COORDINATOR] [-heartbeat 5s]
//	         [-sojourn 0s] [-brownout 0s] [-ratelimit 0] [-rateburst 0]
//	         [-breaker 0] [-breakercooldown 5s] [-breakerlatency 0s]
//
// Overload resilience (DESIGN.md §12), all default-off: -sojourn enables
// CoDel-style queue aging (sustained head-of-line sojourn above the
// target sheds one low-priority job per interval); -brownout suspends
// hedging and sheds negative-priority work while sojourn exceeds the
// threshold; -ratelimit caps per-client_id admissions per second (burst
// -rateburst); -breaker opens a per-backend circuit after that many
// consecutive dispatch failures (cooldown -breakercooldown, then one
// half-open probe; -breakerlatency additionally counts slow successes as
// failures). Submissions may carry deadline_ms — an end-to-end budget the
// daemon enforces in the queue, on workers, and across federation.
//
// Durability (DESIGN.md §11): -wal journals every job state transition
// before it is acknowledged and replays the journal on startup —
// completed jobs resolve from the -cachedir result store, incomplete
// jobs are requeued with their original priority and order, so a
// restarted sweep produces byte-identical output. -cachedir persists
// results as checksummed content-addressed files. Both default off
// (the volatile pre-durability behavior).
//
// Federation (DESIGN.md §9): with -backends (static fleet) or
// -coordinator (workers join via -register), the daemon becomes a
// coordinator — queued jobs are dispatched least-loaded-first across its
// local worker pool and every healthy backend, failed backends are
// probed, failed over and retried, and the result cache fronts the whole
// fleet. `-workers -1` disables local execution (pure dispatcher). On a
// worker, `-register URL` keeps it registered with a coordinator
// (heartbeat every -heartbeat, exponential backoff while unreachable).
//
// On startup the daemon prints exactly one line to stdout:
//
//	ringsimd listening on http://HOST:PORT
//
// so scripts can bind to port 0 and discover the address. On SIGTERM or
// SIGINT it stops accepting jobs (/readyz turns 503), cancels queued
// jobs, lets running simulations finish within the -drain deadline, then
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"flexsnoop/internal/service"
)

var (
	addrFlag    = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workersFlag = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queueFlag   = flag.Int("queue", 0, "pending-job queue capacity (0 = default 64)")
	cacheFlag   = flag.Int("cache", 0, "result cache entries (0 = default 256, negative disables)")
	drainFlag   = flag.Duration("drain", 30*time.Second, "graceful-drain deadline for running jobs on shutdown")
	quietFlag   = flag.Bool("quiet", false, "suppress per-job log lines")
	maxBodyFlag = flag.Int64("maxbody", 0, "maximum HTTP request body bytes (0 = default 1 MiB)")

	walFlag      = flag.String("wal", "", "write-ahead journal directory (empty disables crash durability)")
	walSyncFlag  = flag.String("walsync", "always", "journal fsync policy: always (power-loss safe) or none (kill -9 safe)")
	cacheDirFlag = flag.String("cachedir", "", "disk result-cache directory (empty keeps the cache memory-only)")

	coordFlag     = flag.Bool("coordinator", false, "accept worker registrations on POST /v1/backends and dispatch across them")
	backendsFlag  = flag.String("backends", "", "comma-separated worker base URLs to dispatch to (implies coordinator mode)")
	hedgeFlag     = flag.Duration("hedge", 0, "coordinator hedged-dispatch delay (0 disables): re-dispatch a still-running job to a second backend after this long")
	registerFlag  = flag.String("register", "", "coordinator base URL to register this worker with (and heartbeat)")
	heartbeatFlag = flag.Duration("heartbeat", 5*time.Second, "registration heartbeat interval when -register is set")

	sojournFlag         = flag.Duration("sojourn", 0, "CoDel-style queue-sojourn target: shed low-priority jobs while head-of-line wait stays above it (0 disables)")
	brownoutFlag        = flag.Duration("brownout", 0, "queue-sojourn threshold past which hedging stops and negative-priority work is shed (0 disables)")
	rateLimitFlag       = flag.Float64("ratelimit", 0, "per-client_id admissions per second (0 disables rate limiting)")
	rateBurstFlag       = flag.Int("rateburst", 0, "token-bucket burst for -ratelimit (0 = ceil(ratelimit))")
	breakerFlag         = flag.Int("breaker", 0, "consecutive dispatch failures that open a backend's circuit breaker (0 disables breakers)")
	breakerCooldownFlag = flag.Duration("breakercooldown", 0, "open-breaker cooldown before the half-open probe (0 = default 5s)")
	breakerLatencyFlag  = flag.Duration("breakerlatency", 0, "count successful dispatches slower than this as breaker failures (0 disables)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringsimd:", err)
		os.Exit(1)
	}
}

func run() error {
	logger := log.New(os.Stderr, "ringsimd: ", log.LstdFlags)
	cfg := service.Config{
		Workers:         *workersFlag,
		QueueCapacity:   *queueFlag,
		CacheEntries:    *cacheFlag,
		Coordinator:     *coordFlag,
		HedgeDelay:      *hedgeFlag,
		WALDir:          *walFlag,
		WALSync:         *walSyncFlag,
		CacheDir:        *cacheDirFlag,
		MaxRequestBytes: *maxBodyFlag,
		SojournTarget:   *sojournFlag,
		BrownoutSojourn: *brownoutFlag,
		RateLimit:       *rateLimitFlag,
		RateBurst:       *rateBurstFlag,
		BreakerFailures: *breakerFlag,
		BreakerCooldown: *breakerCooldownFlag,
		BreakerLatency:  *breakerLatencyFlag,
	}
	for _, u := range strings.Split(*backendsFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			cfg.Backends = append(cfg.Backends, u)
		}
	}
	if !*quietFlag {
		cfg.Logf = logger.Printf
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		return err
	}
	// The discovery line scripts parse; everything else goes to stderr.
	fmt.Printf("ringsimd listening on http://%s\n", ln.Addr())
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 0 {
		workers = 0
	}
	role := ""
	if *coordFlag || len(cfg.Backends) > 0 {
		role = ", coordinator"
	}
	logger.Printf("serving on %s (%d local workers%s)", ln.Addr(), workers, role)

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	regCtx, regCancel := context.WithCancel(context.Background())
	defer regCancel()
	if *registerFlag != "" {
		reg := service.BackendRegistration{
			URL:     "http://" + ln.Addr().String(),
			Workers: workers,
		}
		go service.RegisterLoop(regCtx, *registerFlag, reg, *heartbeatFlag, logger.Printf)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		logger.Printf("%s: draining (deadline %s)", sig, *drainFlag)
		// Stop heartbeating first so the coordinator stops dispatching
		// here, then drain with the API still up so clients can poll the
		// jobs they already own; then stop the listener.
		regCancel()
		svc.Drain(*drainFlag)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("http shutdown: %w", err)
		}
		logger.Printf("drained, exiting")
		return nil
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
