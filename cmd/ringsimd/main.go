// Command ringsimd serves the simulator as a daemon: a JSON job API with
// a bounded priority queue, a content-addressed result cache, NDJSON
// streaming of interval telemetry, and graceful SIGTERM drain. See
// internal/service for the API surface and DESIGN.md §9 for the design.
//
// Usage:
//
//	ringsimd [-addr 127.0.0.1:8080] [-workers N] [-queue N] [-cache N]
//	         [-drain 30s] [-quiet]
//
// On startup the daemon prints exactly one line to stdout:
//
//	ringsimd listening on http://HOST:PORT
//
// so scripts can bind to port 0 and discover the address. On SIGTERM or
// SIGINT it stops accepting jobs (/readyz turns 503), cancels queued
// jobs, lets running simulations finish within the -drain deadline, then
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"flexsnoop/internal/service"
)

var (
	addrFlag    = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workersFlag = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queueFlag   = flag.Int("queue", 0, "pending-job queue capacity (0 = default 64)")
	cacheFlag   = flag.Int("cache", 0, "result cache entries (0 = default 256, negative disables)")
	drainFlag   = flag.Duration("drain", 30*time.Second, "graceful-drain deadline for running jobs on shutdown")
	quietFlag   = flag.Bool("quiet", false, "suppress per-job log lines")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringsimd:", err)
		os.Exit(1)
	}
}

func run() error {
	logger := log.New(os.Stderr, "ringsimd: ", log.LstdFlags)
	cfg := service.Config{
		Workers:       *workersFlag,
		QueueCapacity: *queueFlag,
		CacheEntries:  *cacheFlag,
	}
	if !*quietFlag {
		cfg.Logf = logger.Printf
	}
	svc := service.New(cfg)

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		return err
	}
	// The discovery line scripts parse; everything else goes to stderr.
	fmt.Printf("ringsimd listening on http://%s\n", ln.Addr())
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	logger.Printf("serving on %s (%d workers)", ln.Addr(), workers)

	httpSrv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigCh:
		logger.Printf("%s: draining (deadline %s)", sig, *drainFlag)
		// Drain first, with the API still up so clients can poll the jobs
		// they already own; then stop the listener.
		svc.Drain(*drainFlag)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("http shutdown: %w", err)
		}
		logger.Printf("drained, exiting")
		return nil
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
