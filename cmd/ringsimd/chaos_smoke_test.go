package main

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"flexsnoop/internal/service"
)

// TestRingsimdChaosKill9 is the crash-durability acceptance smoke: a
// race-built daemon running with -wal and -cachedir is SIGKILLed in the
// middle of a remote sweep and restarted on the same address against the
// same directories. The sweep — whose client retries transient transport
// errors — must ride through the crash and produce output byte-identical
// to the serial (in-process) sweep: no acknowledged job is lost, and
// recovered jobs re-run to the same results. ci.sh runs this as the
// chaos smoke test.
func TestRingsimdChaosKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke builds and execs the daemon twice plus the sweep")
	}

	dir := t.TempDir()
	daemon := filepath.Join(dir, "ringsimd")
	sweep := filepath.Join(dir, "sweep")
	// The daemon is built with the race detector: the crash window and the
	// recovery path both run under it.
	build := exec.Command("go", "build", "-race", "-o", daemon, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	build = exec.Command("go", "build", "-o", sweep, "flexsnoop/cmd/sweep")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build sweep: %v\n%s", err, out)
	}

	// Serial baseline. Sized like the federation smoke: enough cells and
	// enough work per cell that the kill reliably lands mid-sweep.
	sweepArgs := []string{"-ops", "3000", "-apps", "fft", "-seed", "1"}
	var serial bytes.Buffer
	serialCmd := exec.Command(sweep, sweepArgs...)
	serialCmd.Stdout = &serial
	serialCmd.Stderr = os.Stderr
	if err := serialCmd.Run(); err != nil {
		t.Fatalf("serial sweep: %v", err)
	}

	// The daemon must come back on the SAME address for the sweep's
	// retrying client to reconnect, so reserve a fixed port up front
	// (listen-then-close; Go listeners set SO_REUSEADDR).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr
	walDir := filepath.Join(dir, "wal")
	cacheDir := filepath.Join(dir, "cache")

	start := func() *exec.Cmd {
		t.Helper()
		cmd := exec.Command(daemon, "-addr", addr, "-workers", "2", "-quiet",
			"-wal", walDir, "-cachedir", cacheDir)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start daemon: %v", err)
		}
		// Wait for /readyz: the restarted daemon reports ready only after
		// WAL replay has finished.
		for deadline := time.Now().Add(30 * time.Second); ; {
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd
				}
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				t.Fatalf("daemon never became ready on %s: %v", base, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	d1 := start()
	defer func() { d1.Process.Kill(); d1.Wait() }()

	var fed bytes.Buffer
	fedCmd := exec.Command(sweep, append(sweepArgs, "-remote", base)...)
	fedCmd.Stdout = &fed
	fedCmd.Stderr = os.Stderr
	if err := fedCmd.Start(); err != nil {
		t.Fatalf("federated sweep: %v", err)
	}
	fedDone := make(chan error, 1)
	go func() { fedDone <- fedCmd.Wait() }()

	// SIGKILL the daemon once it has made some progress but provably has
	// acknowledged-but-incomplete jobs (busy workers or a backlog).
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()
	cc := &service.Client{BaseURL: base, PollInterval: 5 * time.Millisecond}
	for deadline := time.Now().Add(120 * time.Second); ; {
		select {
		case err := <-fedDone:
			t.Fatalf("sweep finished before the kill landed (size it up): %v", err)
		default:
		}
		st, err := cc.Stats(ctx)
		if err == nil && st.RunsCompleted >= 2 && (st.BusyWorkers > 0 || st.QueueDepth > 0) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reached a mid-sweep state: %+v, %v", st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9 daemon: %v", err)
	}
	d1.Wait()

	// Restart against the same journal and cache. The sweep's client is
	// mid-retry; the replacement must be up before its budget runs out.
	d2 := start()
	defer func() { d2.Process.Kill(); d2.Wait() }()

	select {
	case err := <-fedDone:
		if err != nil {
			t.Fatalf("sweep failed across the kill -9: %v\n%s", err, fed.String())
		}
	case <-time.After(240 * time.Second):
		fedCmd.Process.Kill()
		t.Fatal("sweep hung across the kill -9")
	}

	if !bytes.Equal(serial.Bytes(), fed.Bytes()) {
		t.Errorf("sweep output across kill -9 differs from serial sweep:\n-- serial --\n%s\n-- crashed+recovered --\n%s",
			serial.String(), fed.String())
	}

	st, err := cc.Stats(ctx)
	if err != nil {
		t.Fatalf("statsz after recovery: %v", err)
	}
	if st.WALReplayed == 0 {
		t.Error("restarted daemon replayed no journal records")
	}
	if st.WALRequeued == 0 {
		t.Error("daemon was killed with incomplete jobs, but none were requeued on restart")
	}
	if st.WALErrors != 0 {
		t.Errorf("WALErrors = %d after recovery, want 0", st.WALErrors)
	}

	// Graceful drain still works after a recovery.
	if err := d2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- d2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("recovered daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("recovered daemon did not drain within 30s of SIGTERM")
	}
}
