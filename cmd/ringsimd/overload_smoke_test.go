package main

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"flexsnoop/internal/service"
)

// TestRingsimdOverloadSmoke floods a small built daemon well past its
// queue capacity with mixed priorities and deadlines, with the overload
// flags armed: every admitted job must reach a terminal state, the
// daemon must not leak goroutines under the flood, and SIGTERM must
// still drain cleanly afterwards. ci.sh runs this as the overload smoke
// test.
func TestRingsimdOverloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and execs the daemon")
	}

	bin := filepath.Join(t.TempDir(), "ringsimd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "20s", "-quiet",
		"-workers", "2", "-queue", "8",
		"-sojourn", "50ms", "-brownout", "150ms", "-ratelimit", "1000")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no stdout line from daemon: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := strings.TrimSpace(line[i+len(marker):])

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c := &service.Client{BaseURL: base, PollInterval: 5 * time.Millisecond}

	baseline, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("statsz before flood: %v", err)
	}

	// Flood: 8x the queue capacity, mixed priorities and deadlines, no
	// client-side pacing — raw Submit so 429s surface instead of being
	// retried away.
	var admitted []string
	var rejected int
	for i := 0; i < 64; i++ {
		spec := service.JobSpec{
			Algorithm: "Subset",
			Workload:  "fft",
			ClientID:  "overload-smoke",
			Options:   service.SpecOptions{OpsPerCore: 200, Seed: int64(9000 + i), Predictor: "Sub2k"},
		}
		switch i % 3 {
		case 0:
			spec.Priority = 2
		case 2:
			spec.Priority = -1
		}
		if i%4 == 1 {
			spec.DeadlineMS = 1 // doomed by design: must be shed, never mis-served
		}
		st, err := c.Submit(ctx, spec)
		if err != nil {
			rejected++
			if !strings.Contains(err.Error(), "429") && !strings.Contains(err.Error(), "queue full") &&
				!strings.Contains(err.Error(), "brownout") && !strings.Contains(err.Error(), "rate limit") {
				t.Fatalf("flood submit %d: unexpected error %v", i, err)
			}
			continue
		}
		admitted = append(admitted, st.ID)
	}
	if len(admitted) == 0 {
		t.Fatal("nothing admitted during the flood")
	}

	// Every admitted job settles; expired ones must carry the expiry error.
	var done, failed int
	for _, id := range admitted {
		st, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		switch st.State {
		case service.StateDone:
			done++
		case service.StateFailed:
			failed++
			if !strings.Contains(st.Error, "deadline expired") && !strings.Contains(st.Error, "shed") {
				t.Errorf("job %s failed outside the overload contract: %q", id, st.Error)
			}
		default:
			t.Errorf("job %s: terminal state %q", id, st.State)
		}
	}
	t.Logf("flood: %d admitted (%d done, %d shed/expired), %d rejected",
		len(admitted), done, failed, rejected)

	// No goroutine leak: once the flood has settled, the daemon is back
	// to about its idle complement (slack for HTTP keep-alives and the
	// maintenance loop).
	leakDeadline := time.Now().Add(15 * time.Second)
	for {
		stats, err := c.Stats(ctx)
		if err != nil {
			t.Fatalf("statsz after flood: %v", err)
		}
		if stats.Goroutines <= baseline.Goroutines+8 {
			break
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines: %d before flood, %d after it settled", baseline.Goroutines, stats.Goroutines)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// SIGTERM still drains cleanly after the flood.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s of SIGTERM")
	}
}
