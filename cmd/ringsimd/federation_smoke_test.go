package main

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flexsnoop/internal/service"
)

// startDaemon execs a built ringsimd with the given flags and returns
// the process and the base URL parsed from its discovery line.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %v: %v", args, err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no discovery line from daemon %v: %v", args, sc.Err())
	}
	const marker = "listening on "
	line := sc.Text()
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	return cmd, strings.TrimSpace(line[i+len(marker):])
}

// TestRingsimdFederation is the federation acceptance smoke: a
// coordinator fronting one statically-listed worker and one worker that
// joins via -register runs a full `sweep -remote` — and keeps running it
// when the first worker is SIGKILLed mid-sweep. The sweep must complete,
// its stdout must be byte-identical to the serial (in-process) sweep,
// and the coordinator's /statsz must count the failover. ci.sh runs this
// as the federation smoke test.
func TestRingsimdFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("federation smoke builds and execs three daemons and the sweep")
	}

	dir := t.TempDir()
	daemon := filepath.Join(dir, "ringsimd")
	sweep := filepath.Join(dir, "sweep")
	for bin, pkg := range map[string]string{daemon: ".", sweep: "flexsnoop/cmd/sweep"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// The sweep is sized so it cannot finish before the kill lands: ~13
	// cells across two 2-slot workers, each cell thousands of simulated
	// references.
	sweepArgs := []string{"-ops", "3000", "-apps", "fft", "-seed", "1"}
	var serial bytes.Buffer
	serialCmd := exec.Command(sweep, sweepArgs...)
	serialCmd.Stdout = &serial
	serialCmd.Stderr = os.Stderr
	if err := serialCmd.Run(); err != nil {
		t.Fatalf("serial sweep: %v", err)
	}

	w1Cmd, w1 := startDaemon(t, daemon, "-workers", "2")
	_, coord := startDaemon(t, daemon, "-workers=-1", "-coordinator", "-backends", w1)
	startDaemon(t, daemon, "-workers", "2", "-register", coord, "-heartbeat", "200ms")

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cc := &service.Client{BaseURL: coord, PollInterval: 5 * time.Millisecond}

	// Both backends must be in the registry (the second arrives via
	// -register) before the sweep starts, or the kill could leave a
	// one-worker window with nothing to fail over to.
	for deadline := time.Now().Add(30 * time.Second); ; {
		st, err := cc.Stats(ctx)
		if err == nil && len(st.Backends) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered with coordinator: %+v, %v", st.Backends, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var fed bytes.Buffer
	fedCmd := exec.Command(sweep, append(sweepArgs, "-remote", coord)...)
	fedCmd.Stdout = &fed
	fedCmd.Stderr = os.Stderr
	if err := fedCmd.Start(); err != nil {
		t.Fatalf("federated sweep: %v", err)
	}
	fedDone := make(chan error, 1)
	go func() { fedDone <- fedCmd.Wait() }()

	// SIGKILL the static worker the moment the coordinator has jobs in
	// flight on it: those jobs must fail over to the registered worker.
	killed := false
kill:
	for deadline := time.Now().Add(60 * time.Second); ; {
		select {
		case err := <-fedDone:
			t.Fatalf("sweep finished before the kill landed (size it up): %v", err)
		default:
		}
		st, err := cc.Stats(ctx)
		if err == nil {
			for _, b := range st.Backends {
				if b.Name == strings.TrimRight(w1, "/") && b.Inflight > 0 {
					if err := w1Cmd.Process.Kill(); err != nil {
						t.Fatalf("kill worker: %v", err)
					}
					killed = true
					break kill
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never dispatched to the static worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	select {
	case err := <-fedDone:
		if err != nil {
			t.Fatalf("federated sweep failed after worker kill: %v\n%s", err, fed.String())
		}
	case <-time.After(120 * time.Second):
		fedCmd.Process.Kill()
		t.Fatal("federated sweep hung after worker kill")
	}

	if !bytes.Equal(serial.Bytes(), fed.Bytes()) {
		t.Errorf("federated sweep output differs from serial sweep:\n-- serial --\n%s\n-- federated --\n%s",
			serial.String(), fed.String())
	}

	st, err := cc.Stats(ctx)
	if err != nil {
		t.Fatalf("statsz after sweep: %v", err)
	}
	if killed && st.Failovers == 0 {
		t.Error("worker SIGKILLed with jobs in flight, but /statsz counts no failovers")
	}
	for _, b := range st.Backends {
		if b.Name == strings.TrimRight(w1, "/") && b.Healthy {
			t.Error("killed worker still marked healthy in /statsz")
		}
	}
}
