package main

import (
	"bufio"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"flexsnoop/internal/service"
)

// TestRingsimdSmoke exercises the built daemon end to end: start on an
// ephemeral loopback port, submit the same job twice (second must be a
// cache hit, with one simulation run visible in /statsz), then SIGTERM
// and require a clean drain within the deadline. ci.sh runs this as the
// service smoke test.
func TestRingsimdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and execs the daemon")
	}

	bin := filepath.Join(t.TempDir(), "ringsimd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "20s", "-quiet")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill()

	// Discover the address from the single stdout line.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no stdout line from daemon: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := strings.TrimSpace(line[i+len(marker):])

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c := &service.Client{BaseURL: base, PollInterval: 5 * time.Millisecond}

	spec := service.JobSpec{
		Algorithm: "SupersetAgg",
		Workload:  "fft",
		Options:   service.SpecOptions{OpsPerCore: 300, Seed: 42},
	}

	first, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("first submission: %v", err)
	}
	if first.State != service.StateDone || first.Cached {
		t.Fatalf("first submission: state=%s cached=%v, want done/uncached", first.State, first.Cached)
	}

	second, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("second submission: %v", err)
	}
	if !second.Cached || second.State != service.StateDone || second.Result == nil {
		t.Fatalf("second submission not a cache hit: %+v", second)
	}
	if second.Result.Cycles != first.Result.Cycles {
		t.Errorf("cached cycles %d != computed cycles %d", second.Result.Cycles, first.Result.Cycles)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if stats.CacheHits < 1 || stats.RunsCompleted != 1 {
		t.Errorf("statsz: hits=%d runs=%d, want >=1 hit and exactly 1 run",
			stats.CacheHits, stats.RunsCompleted)
	}

	// Graceful drain: SIGTERM must exit 0 within the deadline.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s of SIGTERM")
	}
}
