// Command paperfigs regenerates every table and figure of the paper's
// evaluation section (Tables 1 and 3, Figures 4, 6, 7, 8, 9, 10 and 11)
// from simulation, printing the same rows/series the paper reports.
//
// Usage:
//
//	paperfigs [-exp all|table1|table3|table4|fig4|fig6|fig7|fig8|fig9|fig10|fig11|summary]
//	          [-ops N] [-seed N] [-apps a,b,c] [-csv dir] [-svg dir] [-v]
//	          [-tracedir dir] [-metricsdir dir] [-interval N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"flexsnoop"
	"flexsnoop/internal/cli"
	"flexsnoop/internal/config"
	"flexsnoop/internal/stats"
)

var (
	expFlag  = flag.String("exp", "all", "experiment to regenerate")
	opsFlag  = flag.Uint64("ops", 2000, "memory references per core")
	seedFlag = flag.Int64("seed", 1, "workload seed")
	appsFlag = flag.String("apps", "", "comma-separated SPLASH-2 subset (default: all 11)")
	verbose  = flag.Bool("v", false, "print per-run progress")
	csvDir   = flag.String("csv", "", "also write <dir>/figN.csv files")
	svgDir   = flag.String("svg", "", "also write <dir>/figN.svg bar charts")

	// Per-run telemetry for matrix experiments (one file per
	// algorithm/workload cell; never perturbs the simulations).
	traceDir   = flag.String("tracedir", "", "write per-run Chrome trace JSON files into this directory")
	metricsDir = flag.String("metricsdir", "", "write per-run interval metrics CSV files into this directory")
	interval   = flag.Uint64("interval", 0, "metrics sampling interval in cycles (0 = default 5000)")
)

// validExps lists every -exp value, in the order run/emit accept them.
var validExps = []string{"all", "table1", "table3", "table4", "fig4",
	"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "summary"}

func main() {
	flag.Parse()
	if err := run(*expFlag); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(cli.ExitCode(err))
	}
}

func figOpts() flexsnoop.FigureOptions {
	o := flexsnoop.FigureOptions{OpsPerCore: *opsFlag, Seed: *seedFlag}
	if *appsFlag != "" {
		o.Apps = strings.Split(*appsFlag, ",")
	}
	if *verbose {
		o.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}
	return o
}

// telemetrySink opens per-cell telemetry files for a matrix run and
// remembers them for closing once the matrix completes.
type telemetrySink struct {
	files []*os.File
}

// forCell implements FigureOptions.TelemetryFor. It is called from the
// sequential job-creation loop, so appending to s.files needs no lock.
func (s *telemetrySink) forCell(alg flexsnoop.Algorithm, workload string) *flexsnoop.TelemetryOptions {
	tel := &flexsnoop.TelemetryOptions{
		TraceFormat:    flexsnoop.TraceFormatChrome,
		IntervalCycles: *interval,
	}
	open := func(dir, suffix string) *os.File {
		if dir == "" {
			return nil
		}
		path := fmt.Sprintf("%s/%s_%s%s", dir, strings.ToLower(alg.String()), workload, suffix)
		f, err := cli.CreateFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs: telemetry:", err)
			return nil
		}
		s.files = append(s.files, f)
		return f
	}
	if f := open(*traceDir, ".trace.json"); f != nil {
		tel.Trace = f
	}
	if f := open(*metricsDir, ".metrics.csv"); f != nil {
		tel.Metrics = f
	}
	if !tel.Enabled() {
		return nil
	}
	return tel
}

func (s *telemetrySink) close() {
	for _, f := range s.files {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs: telemetry:", err)
		}
	}
	s.files = nil
}

func run(exp string) error {
	valid := false
	for _, e := range validExps {
		if exp == e {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("unknown experiment %q (valid: %s)", exp, strings.Join(validExps, ", "))
	}
	// Validate every output directory before simulating anything: a typo'd
	// -csv should fail in milliseconds, not after the whole matrix ran.
	for _, dir := range []string{*csvDir, *svgDir, *traceDir, *metricsDir} {
		if err := cli.EnsureDir(dir); err != nil {
			return err
		}
	}

	needMatrix := map[string]bool{"all": true, "fig4": true, "fig6": true,
		"fig7": true, "fig8": true, "fig9": true, "table3": true, "summary": true}
	var m *flexsnoop.Matrix
	if needMatrix[exp] {
		o := figOpts()
		var sink telemetrySink
		if *traceDir != "" || *metricsDir != "" {
			o.TelemetryFor = sink.forCell
		}
		var err error
		fmt.Fprintln(os.Stderr, "running algorithm x workload matrix...")
		m, err = flexsnoop.RunMatrix(o)
		sink.close()
		if err != nil {
			return err
		}
	}

	switch exp {
	case "all":
		for _, e := range []string{"table4", "table1", "table3", "fig4", "fig6", "fig7", "fig8", "fig9", "summary"} {
			if err := emit(e, m); err != nil {
				return err
			}
		}
		fmt.Fprintln(os.Stderr, "running predictor sensitivity sweep...")
		return sensitivity()
	case "fig10", "fig11":
		return sensitivity()
	default:
		return emit(exp, m)
	}
}

func emit(exp string, m *flexsnoop.Matrix) error {
	switch exp {
	case "table1":
		t := stats.NewTable("Table 1: baseline snooping algorithms (analytical, N=8)",
			"Algorithm", "Unloaded latency (cycles)", "Snoop ops/request", "Messages/request")
		for _, r := range flexsnoop.Table1() {
			t.AddRowf(r.Algorithm.String(), r.Latency, r.SnoopOps, r.Messages)
		}
		fmt.Println(t)
	case "table3":
		fp, fn := 0.3, 0.02
		if m != nil {
			fp, fn = m.MeasuredRates()
		}
		t := stats.NewTable(
			fmt.Sprintf("Table 3: Flexible Snooping algorithms (FP=%.3f, FN=%.3f measured)", fp, fn),
			"Algorithm", "FalsePos?", "FalseNeg?", "On positive", "On negative",
			"Latency", "Snoops/req", "Msgs/req")
		for _, r := range flexsnoop.Table3(fp, fn) {
			t.AddRowf(r.Algorithm.String(), r.FalsePositives, r.FalseNegatives,
				r.OnPositive.String(), r.OnNegative.String(), r.Latency, r.SnoopOps, r.Messages)
		}
		fmt.Println(t)
	case "table4":
		mc := config.DefaultMachine()
		t := stats.NewTable("Table 4: architectural parameters (defaults)", "Parameter", "Value")
		t.AddRowf("CMPs", mc.NumCMPs)
		t.AddRowf("Cores/CMP (SPLASH-2)", mc.CoresPerCMP)
		t.AddRowf("L1", fmt.Sprintf("%dKB/%d-way/%dB, RT %d cyc", mc.L1.SizeBytes>>10, mc.L1.Assoc, mc.L1.LineBytes, mc.L1.RoundTripCycles))
		t.AddRowf("L2", fmt.Sprintf("%dKB/%d-way/%dB, RT %d cyc", mc.L2.SizeBytes>>10, mc.L2.Assoc, mc.L2.LineBytes, mc.L2.RoundTripCycles))
		t.AddRowf("Embedded rings", mc.NumRings)
		t.AddRowf("Ring link latency", fmt.Sprintf("%d cyc", mc.RingLinkCycles))
		t.AddRowf("CMP bus access + snoop", fmt.Sprintf("%d cyc", mc.CMPSnoopCycles))
		t.AddRowf("Memory RT local / remote+pf / remote", fmt.Sprintf("%d / %d / %d cyc",
			mc.MemLocalRTCycles, mc.MemRemoteRTPrefetchCycles, mc.MemRemoteRTNoPrefetchCycle))
		fmt.Println(t)
	case "fig4":
		fp, fn := m.MeasuredRates()
		t := stats.NewTable(
			fmt.Sprintf("Figure 4: design space (FP=%.3f, FN=%.3f measured)", fp, fn),
			"Algorithm", "Unloaded latency (cycles)", "Snoop ops/request")
		for _, p := range flexsnoop.DesignSpace(fp, fn) {
			t.AddRowf(p.Algorithm.String(), p.Latency, p.SnoopOps)
		}
		fmt.Println(t)
	case "fig6":
		cv := m.Figure6()
		printClassValues("Figure 6: snoop operations per read snoop request (absolute)", cv)
		writeCSV("fig6", cv)
		writeSVG("fig6", "Figure 6: snoop operations per read snoop request", "snooped CMPs", cv)
	case "fig7":
		cv, err := m.Figure7()
		if err != nil {
			return err
		}
		printClassValues("Figure 7: read snoop requests+replies in the ring (normalised to Lazy)", cv)
		writeCSV("fig7", cv)
		writeSVG("fig7", "Figure 7: read snoop messages in the ring", "normalised to Lazy", cv)
	case "fig8":
		cv, err := m.Figure8()
		if err != nil {
			return err
		}
		printClassValues("Figure 8: execution time (normalised to Lazy)", cv)
		writeCSV("fig8", cv)
		writeSVG("fig8", "Figure 8: execution time", "normalised to Lazy", cv)
	case "fig9":
		cv, err := m.Figure9()
		if err != nil {
			return err
		}
		printClassValues("Figure 9: snoop energy (normalised to Lazy)", cv)
		writeCSV("fig9", cv)
		writeSVG("fig9", "Figure 9: snoop energy", "normalised to Lazy", cv)
	case "summary":
		return summary(m)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// writeCSV exports one figure's values when -csv is set.
func writeCSV(name string, cvs []flexsnoop.ClassValues) {
	if *csvDir == "" {
		return
	}
	rows := map[string]map[string]float64{}
	for _, cv := range cvs {
		for alg, v := range cv.Values {
			if rows[alg] == nil {
				rows[alg] = map[string]float64{}
			}
			rows[alg][cv.Class] = v
		}
	}
	path := fmt.Sprintf("%s/%s.csv", *csvDir, name)
	if err := os.WriteFile(path, []byte(stats.CSV("algorithm", rows)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs: csv:", err)
		return
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
}

// writeSVG exports one figure as a grouped bar chart when -svg is set.
func writeSVG(name, title, ylabel string, cvs []flexsnoop.ClassValues) {
	if *svgDir == "" {
		return
	}
	c := stats.NewSVGBarChart(title, ylabel)
	for _, cv := range cvs {
		for _, alg := range flexsnoop.Algorithms() {
			if v, ok := cv.Values[alg.String()]; ok {
				c.Set(cv.Class, alg.String(), v)
			}
		}
	}
	path := fmt.Sprintf("%s/%s.svg", *svgDir, name)
	if err := os.WriteFile(path, []byte(c.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs: svg:", err)
		return
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
}

// printClassValues renders one figure: rows = algorithms, cols = classes.
func printClassValues(title string, cvs []flexsnoop.ClassValues) {
	cols := []string{"Algorithm"}
	for _, cv := range cvs {
		cols = append(cols, cv.Class)
	}
	t := stats.NewTable(title, cols...)
	for _, alg := range flexsnoop.Algorithms() {
		row := []any{alg.String()}
		for _, cv := range cvs {
			if v, ok := cv.Values[alg.String()]; ok {
				row = append(row, v)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRowf(row...)
	}
	fmt.Println(t)
}

// summary prints the paper's headline claims against measured values.
func summary(m *flexsnoop.Matrix) error {
	fig8, err := m.Figure8()
	if err != nil {
		return err
	}
	aggSave, err := m.EnergySavingsVsEager(flexsnoop.SupersetAgg)
	if err != nil {
		return err
	}
	conVsAgg := map[string]float64{}
	fig9, err := m.Figure9()
	if err != nil {
		return err
	}
	slowdown := map[string]float64{}
	for i, cv := range fig9 {
		agg := cv.Values[flexsnoop.SupersetAgg.String()]
		con := cv.Values[flexsnoop.SupersetCon.String()]
		if agg > 0 {
			conVsAgg[cv.Class] = 1 - con/agg
		}
		e8 := fig8[i].Values
		if a := e8[flexsnoop.SupersetAgg.String()]; a > 0 {
			slowdown[cv.Class] = e8[flexsnoop.SupersetCon.String()]/a - 1
		}
	}

	t := stats.NewTable("Headline claims (paper -> measured)", "Claim", "Paper", "SPLASH-2", "SPECjbb", "SPECweb")
	addClaim := func(name, paper string, vals map[string]float64, pct bool) {
		row := []any{name, paper}
		for _, c := range []string{"SPLASH-2", "SPECjbb", "SPECweb"} {
			v := vals[c]
			if pct {
				row = append(row, fmt.Sprintf("%.1f%%", v*100))
			} else {
				row = append(row, fmt.Sprintf("%.3f", v))
			}
		}
		t.AddRowf(row...)
	}
	speedup := map[string]float64{}
	for _, cv := range fig8 {
		speedup[cv.Class] = 1 - cv.Values[flexsnoop.SupersetAgg.String()]
	}
	addClaim("SupersetAgg speedup vs Lazy", "14% / 13% / 6%", speedup, true)
	addClaim("SupersetAgg energy saving vs Eager", "14% / 17% / 9%", aggSave, true)
	addClaim("SupersetCon energy saving vs SupersetAgg", "36-42%", conVsAgg, true)
	addClaim("SupersetCon slowdown vs SupersetAgg", "3-6%", slowdown, true)
	fmt.Println(t)
	return nil
}

// sensitivity prints Figures 10 and 11.
func sensitivity() error {
	s, err := flexsnoop.RunSensitivity(figOpts())
	if err != nil {
		return err
	}
	t := stats.NewTable("Figure 10: execution time vs predictor size (normalised to the middle configuration)",
		"Algorithm", "Predictor", "SPLASH-2", "SPECjbb", "SPECweb")
	type key struct{ alg, pred string }
	cells := map[key]map[string]float64{}
	var order []key
	for _, c := range s.Cells {
		k := key{c.Algorithm.String(), c.Predictor}
		if cells[k] == nil {
			cells[k] = map[string]float64{}
			order = append(order, k)
		}
		cells[k][c.Class] = c.CyclesNorm
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].alg != order[j].alg {
			return order[i].alg < order[j].alg
		}
		return order[i].pred < order[j].pred
	})
	for _, k := range order {
		t.AddRowf(k.alg, k.pred, cells[k]["SPLASH-2"], cells[k]["SPECjbb"], cells[k]["SPECweb"])
	}
	fmt.Println(t)

	t11 := stats.NewTable("Figure 11: supplier predictor accuracy (fractions of read-snoop predictions)",
		"Predictor", "Class", "TruePos", "TrueNeg", "FalsePos", "FalseNeg")
	for _, cl := range []string{"SPLASH-2", "SPECjbb", "SPECweb"} {
		if p, ok := s.Perfect[cl]; ok {
			t11.AddRowf("Perfect", cl, p[0], p[1], p[2], p[3])
		}
	}
	seen := map[string]bool{}
	for _, c := range s.Cells {
		id := c.Predictor + "/" + c.Class + "/" + c.Algorithm.String()
		if seen[id] {
			continue
		}
		seen[id] = true
		t11.AddRowf(fmt.Sprintf("%s(%s)", c.Predictor, c.Algorithm), c.Class,
			c.TruePos, c.TrueNeg, c.FalsePos, c.FalseNeg)
	}
	fmt.Println(t11)
	return nil
}
