// Command sweep runs the supplier-predictor sensitivity study of Section
// 6.2 (Figures 10 and 11): every predictive algorithm with each of its
// three predictor sizes/organisations, reporting execution time normalised
// to the main (Section 6.1) configuration and the prediction accuracy
// breakdown.
//
// Usage:
//
//	sweep [-ops 2000] [-seed 1] [-apps a,b,c] [-v]
//	      [-faults "kind=drop,rate=0.05,seed=1"]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"flexsnoop"
	"flexsnoop/internal/cli"
	"flexsnoop/internal/stats"
)

var (
	opsFlag    = flag.Uint64("ops", 2000, "memory references per core")
	seedFlag   = flag.Int64("seed", 1, "workload seed")
	appsFlag   = flag.String("apps", "", "comma-separated SPLASH-2 subset")
	verbose    = flag.Bool("v", false, "per-run progress")
	faultsFlag = flag.String("faults", "", "fault plan applied to every run (see ringsim -faults)")
)

func main() {
	flag.Parse()
	opts := flexsnoop.FigureOptions{OpsPerCore: *opsFlag, Seed: *seedFlag}
	if *appsFlag != "" {
		opts.Apps = strings.Split(*appsFlag, ",")
	}
	if *faultsFlag != "" {
		plan, err := flexsnoop.ParseFaultPlan(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(cli.ExitCode(err))
		}
		opts.Faults = plan
	}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}
	s, err := flexsnoop.RunSensitivity(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(cli.ExitCode(err))
	}

	sort.Slice(s.Cells, func(i, j int) bool {
		a, b := s.Cells[i], s.Cells[j]
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Predictor < b.Predictor
	})
	t := stats.NewTable("Figure 10: predictor sensitivity (execution time, normalised to the Section 6.1 configuration)",
		"Algorithm", "Class", "Predictor", "Normalised time", "TP", "TN", "FP", "FN")
	for _, c := range s.Cells {
		t.AddRowf(c.Algorithm.String(), c.Class, c.Predictor, c.CyclesNorm,
			c.TruePos, c.TrueNeg, c.FalsePos, c.FalseNeg)
	}
	fmt.Println(t)

	t2 := stats.NewTable("Figure 11: perfect predictor", "Class", "TP", "TN", "FP", "FN")
	for _, cl := range []string{"SPLASH-2", "SPECjbb", "SPECweb"} {
		if p, ok := s.Perfect[cl]; ok {
			t2.AddRowf(cl, p[0], p[1], p[2], p[3])
		}
	}
	fmt.Println(t2)
}
