// Command sweep runs the supplier-predictor sensitivity study of Section
// 6.2 (Figures 10 and 11): every predictive algorithm with each of its
// three predictor sizes/organisations, reporting execution time normalised
// to the main (Section 6.1) configuration and the prediction accuracy
// breakdown.
//
// Usage:
//
//	sweep [-ops 2000] [-seed 1] [-apps a,b,c] [-v]
//	      [-faults "kind=drop,rate=0.05,seed=1"]
//	      [-remote http://HOST:PORT[,http://HOST:PORT...]] [-parallel N]
//	      [-deadline 0s] [-clientid NAME]
//
// With -remote, every cell of the sweep is submitted to a running
// ringsimd server (see cmd/ringsimd) instead of simulating in-process.
// -deadline stamps each submitted cell with an end-to-end budget
// (deadline_ms) the server enforces even across federation; -clientid
// names this sweep for the server's per-client admission control. Both
// are transport attributes: they never change what an admitted cell
// computes.
// The simulator is deterministic, so remote results are bit-identical
// and the reported figures are unchanged; the server's queue provides
// the backpressure, and its cache collapses repeated sweeps. -remote
// accepts a comma-separated list of servers (cells are round-robined
// across them) — or, better, a single ringsimd coordinator URL, which
// fans out across its registered fleet with health checks and failover
// (see ringsimd -coordinator).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"

	"flexsnoop"
	"flexsnoop/internal/cli"
	"flexsnoop/internal/service"
	"flexsnoop/internal/stats"
)

var (
	opsFlag      = flag.Uint64("ops", 2000, "memory references per core")
	seedFlag     = flag.Int64("seed", 1, "workload seed")
	appsFlag     = flag.String("apps", "", "comma-separated SPLASH-2 subset")
	verbose      = flag.Bool("v", false, "per-run progress")
	faultsFlag   = flag.String("faults", "", "fault plan applied to every run (see ringsim -faults)")
	remoteFlag   = flag.String("remote", "", "comma-separated ringsimd base URLs (or one coordinator URL) to submit runs to instead of simulating in-process")
	parFlag      = flag.Int("parallel", 0, "concurrent cells (default GOMAXPROCS; with -remote, in-flight submissions)")
	deadlineFlag = flag.Duration("deadline", 0, "per-cell end-to-end deadline submitted with each remote run (0 = none; requires -remote)")
	clientIDFlag = flag.String("clientid", "", "client_id submitted with each remote run, for server-side rate limiting (requires -remote)")
)

func main() {
	flag.Parse()
	opts := flexsnoop.FigureOptions{OpsPerCore: *opsFlag, Seed: *seedFlag}
	if *appsFlag != "" {
		opts.Apps = strings.Split(*appsFlag, ",")
	}
	if *faultsFlag != "" {
		plan, err := flexsnoop.ParseFaultPlan(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(cli.ExitCode(err))
		}
		opts.Faults = plan
	}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}
	opts.Parallelism = *parFlag
	if *remoteFlag != "" {
		var clients []*service.Client
		for _, u := range strings.Split(*remoteFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				clients = append(clients, &service.Client{BaseURL: strings.TrimRight(u, "/")})
			}
		}
		if len(clients) == 0 {
			fmt.Fprintln(os.Stderr, "sweep: -remote has no usable URLs")
			os.Exit(2)
		}
		// Round-robin cells across the listed servers. Which server runs a
		// cell does not affect its result (the simulator is deterministic),
		// so the figures stay bit-identical regardless of the fan-out.
		var next atomic.Uint64
		opts.Runner = func(ctx context.Context, alg flexsnoop.Algorithm, workload string, o flexsnoop.Options) (flexsnoop.Result, error) {
			spec, err := service.SpecFor(alg, workload, o)
			if err != nil {
				return flexsnoop.Result{}, err
			}
			spec.DeadlineMS = deadlineFlag.Milliseconds()
			spec.ClientID = *clientIDFlag
			c := clients[int(next.Add(1)-1)%len(clients)]
			return c.Run(ctx, spec)
		}
	} else if *deadlineFlag != 0 || *clientIDFlag != "" {
		fmt.Fprintln(os.Stderr, "sweep: -deadline and -clientid require -remote")
		os.Exit(2)
	}
	s, err := flexsnoop.RunSensitivity(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(cli.ExitCode(err))
	}

	sort.Slice(s.Cells, func(i, j int) bool {
		a, b := s.Cells[i], s.Cells[j]
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Predictor < b.Predictor
	})
	t := stats.NewTable("Figure 10: predictor sensitivity (execution time, normalised to the Section 6.1 configuration)",
		"Algorithm", "Class", "Predictor", "Normalised time", "TP", "TN", "FP", "FN")
	for _, c := range s.Cells {
		t.AddRowf(c.Algorithm.String(), c.Class, c.Predictor, c.CyclesNorm,
			c.TruePos, c.TrueNeg, c.FalsePos, c.FalseNeg)
	}
	fmt.Println(t)

	t2 := stats.NewTable("Figure 11: perfect predictor", "Class", "TP", "TN", "FP", "FN")
	for _, cl := range []string{"SPLASH-2", "SPECjbb", "SPECweb"} {
		if p, ok := s.Perfect[cl]; ok {
			t2.AddRowf(cl, p[0], p[1], p[2], p[3])
		}
	}
	fmt.Println(t2)
}
