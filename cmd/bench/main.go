// Command bench runs the repository's continuous benchmark suite (see
// RunBenchSuite) and writes the result as a BENCH_<pr>.json document,
// printing a comparison against the newest prior BENCH_*.json it can find
// next to the output file.
//
// Usage:
//
//	bench [-out BENCH_2.json] [-short] [-run matrix-subset,...] [-list]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"flexsnoop"
	"flexsnoop/internal/cli"
	"flexsnoop/internal/stats"
)

var (
	outFlag   = flag.String("out", "", "output JSON file (default: print to stdout)")
	shortFlag = flag.Bool("short", false, "short mode: smaller scenarios (matrix-subset stays full size)")
	runFlag   = flag.String("run", "", "comma-separated scenario subset (default: all)")
	listFlag  = flag.Bool("list", false, "list scenarios, then exit")
)

func main() {
	flag.Parse()
	if *listFlag {
		for _, n := range flexsnoop.BenchScenarios() {
			fmt.Println(n)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(cli.ExitCode(err))
	}
}

func run() error {
	cfg := flexsnoop.BenchConfig{Short: *shortFlag}
	if *runFlag != "" {
		cfg.Scenarios = strings.Split(*runFlag, ",")
	}
	suite, err := flexsnoop.RunBenchSuite(cfg)
	if err != nil {
		return err
	}
	printSuite(suite)

	if *outFlag == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(suite)
	}
	if prior, name := newestPrior(*outFlag); prior != nil {
		printComparison(name, prior, suite)
	}
	data, err := json.MarshalIndent(suite, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *outFlag)
	return nil
}

func printSuite(s *flexsnoop.BenchSuite) {
	t := stats.NewTable(fmt.Sprintf("Benchmark suite (%s, short=%v)", s.GoVersion, s.Short),
		"Scenario", "ns/op", "allocs/op", "B/op", "sim cycles", "Mcycles/s")
	for _, r := range s.Results {
		t.AddRowf(r.Name, fmt.Sprintf("%d", r.NsPerOp), fmt.Sprintf("%d", r.AllocsPerOp),
			fmt.Sprintf("%d", r.BytesPerOp), fmt.Sprintf("%d", r.SimCycles),
			r.CyclesPerSec/1e6)
	}
	fmt.Println(t)
}

// newestPrior finds the lexically newest BENCH_*.json in out's directory,
// excluding out itself. BENCH file names embed the PR number, so the
// lexical order is the PR order for single-digit PRs and close enough
// beyond; ties in real repositories are broken by reviewing the diff.
func newestPrior(out string) (*flexsnoop.BenchSuite, string) {
	dir := filepath.Dir(out)
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, ""
	}
	outAbs, _ := filepath.Abs(out)
	var names []string
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); abs == outAbs {
			continue
		}
		names = append(names, m)
	}
	if len(names) == 0 {
		return nil, ""
	}
	sort.Strings(names)
	name := names[len(names)-1]
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, ""
	}
	var s flexsnoop.BenchSuite
	if err := json.Unmarshal(data, &s); err != nil {
		fmt.Fprintf(os.Stderr, "bench: ignoring unreadable %s: %v\n", name, err)
		return nil, ""
	}
	return &s, name
}

func printComparison(priorName string, prior, cur *flexsnoop.BenchSuite) {
	t := stats.NewTable("Comparison vs "+filepath.Base(priorName),
		"Scenario", "ns/op delta", "allocs/op delta", "B/op delta")
	for _, r := range cur.Results {
		p, ok := prior.Result(r.Name)
		if !ok {
			t.AddRowf(r.Name, "new", "new", "new")
			continue
		}
		t.AddRowf(r.Name, delta(r.NsPerOp, p.NsPerOp), delta(r.AllocsPerOp, p.AllocsPerOp),
			delta(r.BytesPerOp, p.BytesPerOp))
	}
	fmt.Println(t)
}

// delta formats the relative change from prior to cur.
func delta(cur, prior int64) string {
	if prior == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(cur-prior)/float64(prior))
}
