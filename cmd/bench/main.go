// Command bench runs the repository's continuous benchmark suite (see
// RunBenchSuite) and writes the result as a BENCH_<pr>.json document,
// printing a comparison against every prior BENCH_*.json it can find
// next to the output file.
//
// Usage:
//
//	bench [-out BENCH_3.json] [-short] [-shard] [-run matrix-subset,...]
//	      [-maxregress 25] [-profiledir prof/] [-list]
//
// With -maxregress N, bench exits non-zero when any scenario's simulated
// cycles-per-second throughput drops more than N percent against the
// newest prior artifact — the ci.sh regression gate. The default suite
// already includes "-shard" rows for the shardable scenarios, so one
// gated run covers serial and sharded execution.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"flexsnoop"
	"flexsnoop/internal/cli"
	"flexsnoop/internal/stats"
)

var (
	outFlag    = flag.String("out", "", "output JSON file (default: print to stdout)")
	shortFlag  = flag.Bool("short", false, "short mode: smaller scenarios (matrix-subset stays full size)")
	shardFlag  = flag.Bool("shard", false, "force ShardRings on for every row (the default suite already has dedicated -shard rows)")
	runFlag    = flag.String("run", "", "comma-separated row subset (default: all; shard variants are named <scenario>-shard)")
	listFlag   = flag.Bool("list", false, "list scenario rows, then exit")
	maxRegress = flag.Float64("maxregress", 0, "fail when sim_cycles_per_sec drops more than this percent vs the newest prior artifact (0 = off)")
	profileDir = flag.String("profiledir", "", "write per-row CPU and heap profiles (<dir>/<row>.cpu.prof, <dir>/<row>.mem.prof)")
)

func main() {
	flag.Parse()
	if *listFlag {
		for _, n := range flexsnoop.BenchScenarios() {
			fmt.Println(n)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(cli.ExitCode(err))
	}
}

func run() error {
	cfg := flexsnoop.BenchConfig{
		Short:      *shortFlag,
		ShardRings: *shardFlag,
		ProfileDir: *profileDir,
		GitCommit:  gitCommit(),
	}
	if *runFlag != "" {
		cfg.Scenarios = strings.Split(*runFlag, ",")
	}
	suite, err := flexsnoop.RunBenchSuite(cfg)
	if err != nil {
		return err
	}
	printSuite(suite)

	if *outFlag == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(suite)
	}
	priors := priorSuites(*outFlag)
	for _, p := range priors {
		printComparison(p.name, p.suite, suite)
	}
	data, err := json.MarshalIndent(suite, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", *outFlag)
	if *maxRegress > 0 && len(priors) > 0 {
		newest := priors[len(priors)-1]
		if err := checkRegression(newest.name, newest.suite, suite, *maxRegress); err != nil {
			return err
		}
	}
	return nil
}

// gitCommit returns the working tree's HEAD commit, or "" when the
// repository state cannot be read (bench artifacts stay usable without
// git).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func printSuite(s *flexsnoop.BenchSuite) {
	t := stats.NewTable(
		fmt.Sprintf("Benchmark suite (%s, short=%v, gomaxprocs=%d)",
			s.GoVersion, s.Short, s.GoMaxProcs),
		"Scenario", "shard", "ns/op", "allocs/op", "B/op", "sim cycles", "Mcycles/s")
	for _, r := range s.Results {
		t.AddRowf(r.Name, fmt.Sprintf("%v", r.ShardRings),
			fmt.Sprintf("%d", r.NsPerOp), fmt.Sprintf("%d", r.AllocsPerOp),
			fmt.Sprintf("%d", r.BytesPerOp), fmt.Sprintf("%d", r.SimCycles),
			r.CyclesPerSec/1e6)
	}
	fmt.Println(t)
}

// priorSuite is one readable prior BENCH_*.json artifact.
type priorSuite struct {
	name  string
	suite *flexsnoop.BenchSuite
}

// priorSuites loads every BENCH_*.json in out's directory except out
// itself, oldest first. BENCH file names embed the PR number, so the
// lexical order is the PR order for single-digit PRs and close enough
// beyond.
func priorSuites(out string) []priorSuite {
	dir := filepath.Dir(out)
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil
	}
	outAbs, _ := filepath.Abs(out)
	var names []string
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); abs == outAbs {
			continue
		}
		names = append(names, m)
	}
	sort.Strings(names)
	var priors []priorSuite
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		var s flexsnoop.BenchSuite
		if err := json.Unmarshal(data, &s); err != nil {
			fmt.Fprintf(os.Stderr, "bench: ignoring unreadable %s: %v\n", name, err)
			continue
		}
		priors = append(priors, priorSuite{name: name, suite: &s})
	}
	return priors
}

func printComparison(priorName string, prior, cur *flexsnoop.BenchSuite) {
	t := stats.NewTable("Comparison vs "+filepath.Base(priorName),
		"Scenario", "ns/op delta", "allocs/op delta", "B/op delta", "cycles/s delta")
	for _, r := range cur.Results {
		p, ok := prior.Result(r.Name)
		if !ok {
			t.AddRowf(r.Name, "new", "new", "new", "new")
			continue
		}
		t.AddRowf(r.Name, delta(r.NsPerOp, p.NsPerOp), delta(r.AllocsPerOp, p.AllocsPerOp),
			delta(r.BytesPerOp, p.BytesPerOp), deltaF(r.CyclesPerSec, p.CyclesPerSec))
	}
	fmt.Println(t)
}

// checkRegression fails when any scenario's throughput dropped more than
// maxPct percent against the prior suite.
func checkRegression(priorName string, prior, cur *flexsnoop.BenchSuite, maxPct float64) error {
	var bad []string
	for _, r := range cur.Results {
		p, ok := prior.Result(r.Name)
		if !ok || p.CyclesPerSec <= 0 {
			continue
		}
		drop := 100 * (p.CyclesPerSec - r.CyclesPerSec) / p.CyclesPerSec
		if drop > maxPct {
			bad = append(bad, fmt.Sprintf("%s: sim_cycles_per_sec %.0f -> %.0f (-%.1f%%)",
				r.Name, p.CyclesPerSec, r.CyclesPerSec, drop))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("regression over %.0f%% vs %s:\n  %s",
			maxPct, filepath.Base(priorName), strings.Join(bad, "\n  "))
	}
	return nil
}

// delta formats the relative change from prior to cur.
func delta(cur, prior int64) string {
	if prior == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(cur-prior)/float64(prior))
}

// deltaF is delta for float metrics.
func deltaF(cur, prior float64) string {
	if prior == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur-prior)/prior)
}
