// Command tracegen records a synthetic workload's per-core memory
// reference streams into a binary trace file, enabling the trace-driven
// simulation mode the paper used for its SPEC workloads: the identical
// streams replayed under every snooping algorithm.
//
// Usage:
//
//	tracegen -workload specjbb -ops 5000 -seed 1 -out specjbb.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"flexsnoop"
	"flexsnoop/internal/cli"
)

var (
	wlFlag   = flag.String("workload", "specjbb", "workload name")
	opsFlag  = flag.Uint64("ops", 5000, "memory references per core")
	seedFlag = flag.Int64("seed", 1, "workload seed")
	outFlag  = flag.String("out", "", "output trace file (required)")
)

func main() {
	flag.Parse()
	if *outFlag == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -out is required")
		os.Exit(2)
	}
	if err := flexsnoop.WriteTraceFile(*outFlag, *wlFlag, *opsFlag, *seedFlag); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(cli.ExitCode(err))
	}
	fmt.Printf("wrote %s: %s, %d refs/core, seed %d\n", *outFlag, *wlFlag, *opsFlag, *seedFlag)
}
