package flexsnoop_test

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"flexsnoop"
)

// telemetryRun executes one fixed reference run with every telemetry
// output enabled, returning the result and the captured outputs.
func telemetryRun(t *testing.T, format string) (flexsnoop.Result, string, string) {
	t.Helper()
	var trace, metrics bytes.Buffer
	res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "water-sp", flexsnoop.Options{
		OpsPerCore: 500, Seed: 7,
		Telemetry: &flexsnoop.TelemetryOptions{
			Trace: &trace, TraceFormat: format,
			Metrics: &metrics, IntervalCycles: 2000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, trace.String(), metrics.String()
}

// TestTelemetryZeroPerturbation checks the subsystem's core contract:
// enabling telemetry must not change the simulation at all.
func TestTelemetryZeroPerturbation(t *testing.T) {
	plain, err := flexsnoop.Run(flexsnoop.SupersetAgg, "water-sp", flexsnoop.Options{
		OpsPerCore: 500, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	traced, _, _ := telemetryRun(t, flexsnoop.TraceFormatChrome)
	if plain.Cycles != traced.Cycles || plain.Stats != traced.Stats ||
		plain.EnergyNJ != traced.EnergyNJ || plain.Instructions != traced.Instructions {
		t.Fatalf("telemetry perturbed the run: plain %d cycles, traced %d cycles",
			plain.Cycles, traced.Cycles)
	}
}

// TestTelemetryDeterminism runs the same telemetry-enabled configuration
// twice and requires byte-identical trace and metrics outputs.
func TestTelemetryDeterminism(t *testing.T) {
	res1, trace1, metrics1 := telemetryRun(t, flexsnoop.TraceFormatChrome)
	res2, trace2, metrics2 := telemetryRun(t, flexsnoop.TraceFormatChrome)
	if res1.Cycles != res2.Cycles || res1.Stats != res2.Stats {
		t.Fatal("identical telemetry runs produced different results")
	}
	if trace1 != trace2 {
		t.Error("trace output is not deterministic")
	}
	if metrics1 != metrics2 {
		t.Error("metrics output is not deterministic")
	}
}

// TestTelemetryChromeTrace validates the Chrome trace-event export: a
// well-formed JSON object whose async begin/end events pair up per
// transaction id, covering every ring request of the run.
func TestTelemetryChromeTrace(t *testing.T) {
	res, trace, _ := telemetryRun(t, flexsnoop.TraceFormatChrome)
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
			ID    uint64 `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(trace), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	open := map[uint64]bool{}
	var begins, lastTS uint64
	for _, e := range doc.TraceEvents {
		if e.Phase != "M" && e.TS < lastTS {
			t.Fatalf("trace timestamps not monotonic: %d after %d", e.TS, lastTS)
		}
		if e.Phase != "M" {
			lastTS = e.TS
		}
		switch e.Phase {
		case "b":
			if open[e.ID] {
				t.Fatalf("transaction %d begun twice", e.ID)
			}
			open[e.ID] = true
			begins++
		case "e":
			if !open[e.ID] {
				t.Fatalf("end without begin for transaction %d", e.ID)
			}
			delete(open, e.ID)
		}
	}
	if len(open) != 0 {
		t.Errorf("%d transactions never completed in the trace", len(open))
	}
	// Every ring request (including squashed attempts that retried with a
	// fresh transaction id) opened exactly one span.
	want := res.Stats.ReadRequests + res.Stats.WriteRequests
	if begins != want {
		t.Errorf("trace has %d transaction spans, stats report %d ring requests", begins, want)
	}
}

// TestTelemetryMetricsCSV validates the interval time-series export.
func TestTelemetryMetricsCSV(t *testing.T) {
	res, _, metrics := telemetryRun(t, flexsnoop.TraceFormatJSONL)
	lines := strings.Split(strings.TrimSuffix(metrics, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("metrics CSV has no data rows:\n%s", metrics)
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "cycle" || len(header) < 10 {
		t.Fatalf("unexpected CSV header %q", lines[0])
	}
	var prevCycle uint64
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			t.Fatalf("row %q has %d fields, header has %d", line, len(fields), len(header))
		}
		cycle, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			t.Fatalf("bad cycle %q: %v", fields[0], err)
		}
		if cycle <= prevCycle {
			t.Fatalf("cycle column not increasing: %d after %d", cycle, prevCycle)
		}
		prevCycle = cycle
	}
	// The last row's boundary is the kernel's final cycle, which can lag
	// the retirement of the last core by in-flight drain but never
	// precede it by more than one interval.
	if prevCycle+2000 < uint64(res.Cycles) {
		t.Errorf("final sample at cycle %d, run retired at %d", prevCycle, res.Cycles)
	}
}

// TestTelemetryJSONLTrace checks the JSONL export parses line by line.
func TestTelemetryJSONLTrace(t *testing.T) {
	_, trace, _ := telemetryRun(t, flexsnoop.TraceFormatJSONL)
	lines := strings.Split(strings.TrimSuffix(trace, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty JSONL trace")
	}
	for i, line := range lines {
		var e struct {
			Cycle uint64 `json:"cycle"`
			Event string `json:"event"`
			Txn   uint64 `json:"txn"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		if e.Event == "" {
			t.Fatalf("line %d has no event name: %q", i, line)
		}
	}
}
