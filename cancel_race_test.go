package flexsnoop_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"flexsnoop"
)

// TestConcurrentCancellation hammers RunContext from many goroutines
// while cancelling a random subset mid-flight, under -race in CI. It
// checks the three properties cancellation must preserve:
//
//  1. a cancelled run reports context.Canceled (never a corrupt result),
//  2. no goroutines leak, whichever way a run ends,
//  3. pooled hot-path objects are not corrupted across runs — completed
//     runs after the storm are still bit-identical to a quiet baseline.
func TestConcurrentCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation storm is not short")
	}

	type cfg struct {
		alg  flexsnoop.Algorithm
		opts flexsnoop.Options
	}
	configs := []cfg{
		{flexsnoop.SupersetAgg, flexsnoop.Options{OpsPerCore: 1500, Seed: 11}},
		{flexsnoop.Subset, flexsnoop.Options{OpsPerCore: 1500, Seed: 12}},
		{flexsnoop.Lazy, flexsnoop.Options{OpsPerCore: 1500, Seed: 13, ShardRings: true}},
		{flexsnoop.Exact, flexsnoop.Options{OpsPerCore: 1500, Seed: 14, ShardRings: true}},
	}
	baseline := make([]flexsnoop.Result, len(configs))
	for i, c := range configs {
		res, err := flexsnoop.Run(c.alg, "fft", c.opts)
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		baseline[i] = res
	}

	before := runtime.NumGoroutine()

	const (
		waves      = 4
		perWave    = 16
		cancelFrac = 2 // every second run gets cancelled mid-flight
	)
	rng := rand.New(rand.NewSource(1))
	delays := make([][]time.Duration, waves)
	for w := range delays {
		delays[w] = make([]time.Duration, perWave)
		for g := range delays[w] {
			delays[w][g] = time.Duration(rng.Intn(2000)) * time.Microsecond
		}
	}

	for w := 0; w < waves; w++ {
		var wg sync.WaitGroup
		for g := 0; g < perWave; g++ {
			wg.Add(1)
			go func(w, g int) {
				defer wg.Done()
				c := configs[g%len(configs)]
				ctx := context.Background()
				cancelled := g%cancelFrac == 0
				if cancelled {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					timer := time.AfterFunc(delays[w][g], cancel)
					defer timer.Stop()
					defer cancel()
				}
				res, err := flexsnoop.RunContext(ctx, c.alg, "fft", c.opts)
				switch {
				case err == nil:
					// The cancel may have fired after completion; either
					// way a returned result must be the deterministic one.
					if !reflect.DeepEqual(res, baseline[g%len(configs)]) {
						t.Errorf("wave %d goroutine %d: completed result differs from baseline", w, g)
					}
				case errors.Is(err, context.Canceled):
					if !cancelled {
						t.Errorf("wave %d goroutine %d: spurious cancellation", w, g)
					}
				default:
					t.Errorf("wave %d goroutine %d: unexpected error %v", w, g, err)
				}
			}(w, g)
		}
		wg.Wait()
	}

	// After the storm, quiet reruns must still be bit-identical: a
	// cancelled run that returned corrupted objects to the hot-path pools
	// would poison later runs.
	for i, c := range configs {
		res, err := flexsnoop.Run(c.alg, "fft", c.opts)
		if err != nil {
			t.Fatalf("post-storm rerun %d: %v", i, err)
		}
		if !reflect.DeepEqual(res, baseline[i]) {
			t.Errorf("post-storm rerun %d differs from baseline (pooled-object corruption?)", i)
		}
	}

	// No goroutine leaks: cancelled runs must unwind their workers
	// (sharded arbitration included).
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
