#!/bin/sh
# ci.sh — the repository's tier-1 gate. Every PR must keep this green.
#
#   ./ci.sh        vet + build + full test suite + race-detector pass
#
# The race pass re-runs the library and root tests (including the
# telemetry determinism tests) under -race, catching any data race a
# future parallel driver or telemetry probe might introduce.
set -eu
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./internal/... .

echo "== bench (short) =="
# Record this PR's benchmark numbers; cmd/bench prints a comparison
# against the newest prior BENCH_*.json when one exists.
go run ./cmd/bench -short -out BENCH_2.json

echo "CI OK"
