#!/bin/sh
# ci.sh — the repository's tier-1 gate. Every PR must keep this green.
#
#   ./ci.sh        vet + build + full test suite + race-detector passes
#
# The race passes re-run the library and root tests (including the
# telemetry determinism tests) under -race, plus a short-mode pass over
# the sharded-ring determinism tests, catching any data race a parallel
# driver, shard worker or telemetry probe might introduce.
set -eu
cd "$(dirname "$0")"

echo "== gofmt =="
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test (shuffled) =="
# -shuffle=on randomises test order within each package, so tests that
# silently depend on a predecessor's side effects fail here rather than
# in a future refactor.
go test -shuffle=on ./...

echo "== go test -race =="
go test -race ./internal/... .

echo "== go test -race -run Shard (short) =="
go test -race -short -run Shard ./internal/...

echo "== fault-matrix smoke =="
# Three documented fault plans x two algorithms, each with the continuous
# invariant checker armed: every run must complete with zero violations.
for plan in \
    "kind=drop,rate=0.05,seed=1" \
    "kind=delay,rate=0.1,delay=120,seed=2" \
    "kind=drop,rate=0.03,seed=3;kind=dup,rate=0.03,seed=4;kind=delay,rate=0.05,delay=80,seed=5"; do
    for alg in Lazy SupersetAgg; do
        echo "  $alg faults=\"$plan\""
        go run ./cmd/ringsim -alg "$alg" -workload fft -ops 300 \
            -faults "$plan" -checkevery 5000 -json > /dev/null
    done
done

echo "== service smoke =="
# End-to-end daemon check: build ringsimd, serve on loopback, submit the
# same job twice (second must hit the result cache), SIGTERM must drain
# cleanly within the deadline. The test execs the built binary.
go test -run TestRingsimdSmoke -count=1 ./cmd/ringsimd

echo "== federation smoke =="
# Coordinator + one static worker + one worker joining via -register;
# the static worker is SIGKILLed mid-sweep. The sweep must complete via
# failover and its output must be byte-identical to the serial sweep.
go test -run TestRingsimdFederation -count=1 ./cmd/ringsimd

echo "== overload smoke =="
# Overload resilience: flood a 2-worker daemon (sojourn aging, brownout
# and rate limiting armed) with 8x its queue capacity in mixed
# priorities and deadlines. Every admitted job must settle inside the
# overload contract (done, expired, or shed — nothing else), the daemon
# must not leak goroutines, and SIGTERM must still drain cleanly.
go test -run TestRingsimdOverloadSmoke -count=1 ./cmd/ringsimd

echo "== chaos smoke =="
# Crash durability: a race-built daemon running with -wal and -cachedir
# is SIGKILLed mid-sweep and restarted on the same address against the
# same directories. The sweep must ride through on client transport
# retries and stay byte-identical to the serial sweep; the restarted
# daemon must replay and requeue from the journal. -race here covers the
# test harness; the daemon itself is built with -race by the test.
go test -race -run TestRingsimdChaosKill9 -count=1 -timeout 10m ./cmd/ringsimd

echo "== bench (short) =="
# Record this PR's benchmark numbers; cmd/bench prints comparisons
# against every prior BENCH_*.json and fails on a >25% throughput
# regression versus the newest one. The default suite includes the
# matrix-subset-shard and scaling-16cmp-shard rows, so this single
# invocation gates both serial and ShardRings throughput.
go run ./cmd/bench -short -maxregress 25 -out BENCH_9.json

echo "CI OK"
