#!/bin/sh
# ci.sh — the repository's tier-1 gate. Every PR must keep this green.
#
#   ./ci.sh        vet + build + full test suite + race-detector passes
#
# The race passes re-run the library and root tests (including the
# telemetry determinism tests) under -race, plus a short-mode pass over
# the sharded-ring determinism tests, catching any data race a parallel
# driver, shard worker or telemetry probe might introduce.
set -eu
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./internal/... .

echo "== go test -race -run Shard (short) =="
go test -race -short -run Shard ./internal/...

echo "== bench (short) =="
# Record this PR's benchmark numbers; cmd/bench prints comparisons
# against every prior BENCH_*.json and fails on a >25% throughput
# regression versus the newest one.
go run ./cmd/bench -short -maxregress 25 -out BENCH_3.json

echo "CI OK"
