package flexsnoop_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"flexsnoop"
)

// The analytical Table 1 is exact and stable: Lazy snoops half the ring,
// Eager all of it, Oracle exactly the supplier.
func ExampleTable1() {
	for _, row := range flexsnoop.Table1() {
		fmt.Printf("%-6s snoops=%.1f messages=%.3f\n", row.Algorithm, row.SnoopOps, row.Messages)
	}
	// Output:
	// Lazy   snoops=3.5 messages=1.000
	// Eager  snoops=7.0 messages=1.875
	// Oracle snoops=1.0 messages=1.000
}

func ExampleParseAlgorithm() {
	alg, err := flexsnoop.ParseAlgorithm("SupersetAgg")
	fmt.Println(alg, err)
	_, err = flexsnoop.ParseAlgorithm("Sloppy")
	fmt.Println(err != nil)
	// Output:
	// SupersetAgg <nil>
	// true
}

func ExampleWorkloads() {
	names := flexsnoop.Workloads()
	fmt.Println(len(names), "workloads; first:", names[0], "last:", names[len(names)-1])
	// Output:
	// 13 workloads; first: barnes last: specweb
}

// Running a simulation returns the execution time and the Figure 6-9
// metrics for that algorithm/workload pair.
func ExampleRun() {
	res, err := flexsnoop.Run(flexsnoop.Eager, "water-sp", flexsnoop.Options{
		OpsPerCore: 300, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// Eager always snoops every other CMP.
	fmt.Printf("snoops/request=%.0f segments/request=%.0f\n",
		res.Stats.SnoopsPerReadRequest(), res.Stats.ReadSegmentsPerRequest())
	// Output:
	// snoops/request=7 segments/request=15
}

// RunContext bounds a simulation with a context: the run stops between
// events as soon as the context is done, and the returned error wraps the
// context's error. A run whose context never fires is cycle-identical to
// a plain Run.
func ExampleRunContext() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	res, err := flexsnoop.RunContext(ctx, flexsnoop.Eager, "water-sp", flexsnoop.Options{
		OpsPerCore: 300, Seed: 1,
	})
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("ran out of time")
		return
	}
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("snoops/request=%.0f\n", res.Stats.SnoopsPerReadRequest())
	// Output:
	// snoops/request=7
}
