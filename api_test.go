package flexsnoop_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flexsnoop"
)

func TestRunBasic(t *testing.T) {
	res, err := flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{
		OpsPerCore: 400, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Stats.ReadRequests == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Workload != "fft" || res.Algorithm != flexsnoop.Lazy {
		t.Errorf("result labels wrong: %s/%v", res.Workload, res.Algorithm)
	}
}

// TestSimulateSources: the unified entry point accepts every Source
// kind, matches the deprecated wrappers bit-for-bit, and rejects the
// zero Source with ErrBadConfig instead of guessing.
func TestSimulateSources(t *testing.T) {
	opts := flexsnoop.Options{OpsPerCore: 400}
	want, err := flexsnoop.Run(flexsnoop.Lazy, "fft", opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := flexsnoop.Simulate(context.Background(), flexsnoop.Lazy, flexsnoop.FromWorkload("fft"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("Simulate(FromWorkload) differs from the deprecated Run wrapper")
	}

	prof, err := flexsnoop.WorkloadByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	got, err = flexsnoop.Simulate(nil, flexsnoop.Lazy, flexsnoop.FromProfile(prof), opts) //lint:ignore SA1012 nil ctx is documented to mean Background
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("Simulate(FromProfile) differs from Simulate(FromWorkload)")
	}

	if _, err := flexsnoop.Simulate(context.Background(), flexsnoop.Lazy, flexsnoop.Source{}, opts); !errors.Is(err, flexsnoop.ErrBadConfig) {
		t.Errorf("zero Source: got %v, want ErrBadConfig", err)
	}
	if s := flexsnoop.FromWorkload("fft").String(); s != "workload:fft" {
		t.Errorf("Source.String() = %q", s)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := flexsnoop.Run(flexsnoop.Lazy, "nope", flexsnoop.Options{OpsPerCore: 10}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWorkloadsList(t *testing.T) {
	wls := flexsnoop.Workloads()
	if len(wls) != 13 {
		t.Fatalf("got %d workloads, want 13", len(wls))
	}
	for _, name := range wls {
		if _, err := flexsnoop.WorkloadByName(name); err != nil {
			t.Errorf("listed workload %q not resolvable: %v", name, err)
		}
	}
}

func TestPredictorsList(t *testing.T) {
	ps := flexsnoop.Predictors()
	for _, name := range []string{"Sub512", "Sub2k", "Sub8k", "Supy512", "Supy2k", "Supn2k", "Exa512", "Exa2k", "Exa8k"} {
		if _, ok := ps[name]; !ok {
			t.Errorf("predictor %q missing from registry", name)
		}
	}
	if len(ps) != 9 {
		t.Errorf("got %d predictors, want 9 (Section 5.2)", len(ps))
	}
}

func TestPredictorOverride(t *testing.T) {
	p := flexsnoop.Predictors()["Sub512"]
	res, err := flexsnoop.Run(flexsnoop.Subset, "lu", flexsnoop.Options{
		OpsPerCore: 400, Predictor: &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predictor != "Sub512" {
		t.Errorf("predictor = %s, want Sub512", res.Predictor)
	}
}

func TestOptionsTweak(t *testing.T) {
	tweaked := false
	_, err := flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{
		OpsPerCore: 200,
		Tweak: func(m *flexsnoop.MachineConfig) {
			tweaked = true
			m.RingLinkCycles = 10
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tweaked {
		t.Error("Tweak never called")
	}
	// An invalid tweak is rejected before simulation.
	_, err = flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{
		OpsPerCore: 200,
		Tweak:      func(m *flexsnoop.MachineConfig) { m.RingLinkCycles = 0 },
	})
	if err == nil {
		t.Error("invalid tweak accepted")
	}
}

func TestFasterRingIsFaster(t *testing.T) {
	slow, err := flexsnoop.Run(flexsnoop.Lazy, "barnes", flexsnoop.Options{OpsPerCore: 500})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := flexsnoop.Run(flexsnoop.Lazy, "barnes", flexsnoop.Options{
		OpsPerCore: 500,
		Tweak:      func(m *flexsnoop.MachineConfig) { m.RingLinkCycles = 5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= slow.Cycles {
		t.Errorf("5-cycle links (%d cycles) not faster than 39-cycle links (%d)",
			fast.Cycles, slow.Cycles)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "web.trace")
	if err := flexsnoop.WriteTraceFile(path, "specweb", 300, 7); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}
	// Replay equals generator-driven run.
	fromTrace, err := flexsnoop.RunTraceFile(flexsnoop.SupersetCon, path, flexsnoop.Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	fromGen, err := flexsnoop.Run(flexsnoop.SupersetCon, "specweb", flexsnoop.Options{OpsPerCore: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if fromTrace.Cycles != fromGen.Cycles {
		t.Errorf("trace replay %d cycles, generator %d", fromTrace.Cycles, fromGen.Cycles)
	}
}

func TestRunTraceFileErrors(t *testing.T) {
	if _, err := flexsnoop.RunTraceFile(flexsnoop.Lazy, "/nonexistent", flexsnoop.Options{}); err == nil {
		t.Error("missing trace file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := flexsnoop.RunTraceFile(flexsnoop.Lazy, bad, flexsnoop.Options{}); err == nil {
		t.Error("corrupt trace accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	a, err := flexsnoop.ParseAlgorithm("SupersetAgg")
	if err != nil || a != flexsnoop.SupersetAgg {
		t.Errorf("ParseAlgorithm = %v, %v", a, err)
	}
	if _, err := flexsnoop.ParseAlgorithm("Zippy"); err == nil {
		t.Error("bad algorithm name accepted")
	}
}

func TestDefaultMachineExported(t *testing.T) {
	m := flexsnoop.DefaultMachine()
	if m.NumCMPs != 8 || m.RingLinkCycles != 39 {
		t.Errorf("DefaultMachine = %+v", m)
	}
}

func TestHeterogeneousRing(t *testing.T) {
	// A ring where nodes run different primitives: messages split and
	// recombine multiple times (the paper's Table 2 general case).
	mixed := []flexsnoop.Algorithm{
		flexsnoop.Lazy, flexsnoop.Eager, flexsnoop.SupersetAgg, flexsnoop.SupersetCon,
		flexsnoop.Subset, flexsnoop.Eager, flexsnoop.Lazy, flexsnoop.SupersetAgg,
	}
	p := flexsnoop.Predictors()["Supy2k"]
	res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "barnes", flexsnoop.Options{
		OpsPerCore:        600,
		CheckInvariants:   true,
		AlgorithmsPerNode: mixed,
		Predictor:         &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Stats.ReadRequests == 0 {
		t.Fatal("heterogeneous run produced nothing")
	}
	// Snoop counts land between the homogeneous extremes.
	s := res.Stats.SnoopsPerReadRequest()
	if s <= 1 || s >= 7 {
		t.Errorf("mixed-ring snoops/request = %.2f, want strictly between 1 and 7", s)
	}
}

func TestHeterogeneousRingWrongLength(t *testing.T) {
	_, err := flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{
		OpsPerCore:        100,
		AlgorithmsPerNode: []flexsnoop.Algorithm{flexsnoop.Lazy, flexsnoop.Eager},
	})
	if err == nil {
		t.Error("wrong per-node algorithm count accepted")
	}
}

func TestGzipTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "jbb.trace")
	gzipped := filepath.Join(dir, "jbb.trace.gz")
	if err := flexsnoop.WriteTraceFile(plain, "specjbb", 400, 3); err != nil {
		t.Fatal(err)
	}
	if err := flexsnoop.WriteTraceFile(gzipped, "specjbb", 400, 3); err != nil {
		t.Fatal(err)
	}
	fp, _ := os.Stat(plain)
	fg, _ := os.Stat(gzipped)
	if fg.Size() >= fp.Size() {
		t.Errorf("gzip trace (%d B) not smaller than plain (%d B)", fg.Size(), fp.Size())
	}
	a, err := flexsnoop.RunTraceFile(flexsnoop.Lazy, plain, flexsnoop.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := flexsnoop.RunTraceFile(flexsnoop.Lazy, gzipped, flexsnoop.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("gzip replay diverged: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}
