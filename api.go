// Package flexsnoop is a simulator for Flexible Snooping — the adaptive
// forwarding and filtering snoop algorithms for embedded-ring
// multiprocessors of Strauss, Shen and Torrellas (ISCA 2006).
//
// The package simulates a multi-CMP shared-memory machine whose coherence
// transactions travel on unidirectional rings logically embedded in the
// network (Table 4's 8-CMP, 32-core system by default), under any of the
// paper's snooping algorithms: the Lazy, Eager and Oracle baselines and
// the adaptive Subset, SupersetCon, SupersetAgg and Exact algorithms, plus
// the dynamic Agg/Con switcher the paper envisions.
//
// Quick start:
//
//	res, err := flexsnoop.Simulate(ctx, flexsnoop.SupersetAgg,
//		flexsnoop.FromWorkload("barnes"), flexsnoop.Options{})
//	fmt.Println(res.Cycles, res.Stats.SnoopsPerReadRequest(), res.EnergyNJ)
//
// Simulate is the single entry point: the Source selects what to simulate
// (a named workload via FromWorkload, a custom profile via FromProfile, or
// a recorded trace via FromTraceFile) and the context cancels the run
// between simulated events. The older Run/RunProfile/RunTraceFile names
// (and their *Context variants) remain as thin deprecated wrappers.
//
// The experiment drivers in this package regenerate every table and figure
// of the paper's evaluation; see RunMatrix, RunSensitivity, Table1 and
// DesignSpace.
package flexsnoop

import (
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"flexsnoop/internal/config"
	"flexsnoop/internal/fault"
	"flexsnoop/internal/machine"
	"flexsnoop/internal/sim"
	"flexsnoop/internal/telemetry"
	"flexsnoop/internal/trace"
	"flexsnoop/internal/workload"
)

// Algorithm identifies a snooping algorithm.
type Algorithm = config.Algorithm

// The snooping algorithms of the paper (Sections 3-4) plus the dynamic
// extension of Section 6.1.5.
const (
	Lazy            = config.Lazy
	Eager           = config.Eager
	Oracle          = config.Oracle
	Subset          = config.Subset
	SupersetCon     = config.SupersetCon
	SupersetAgg     = config.SupersetAgg
	Exact           = config.Exact
	DynamicSuperset = config.DynamicSuperset
)

// Algorithms returns the seven static algorithms in paper order.
func Algorithms() []Algorithm { return config.Algorithms() }

// Sentinel errors. Every failure the package reports for a bad input wraps
// one of these, so callers can branch with errors.Is instead of matching
// message text:
//
//	res, err := flexsnoop.Run(alg, name, opts)
//	if errors.Is(err, flexsnoop.ErrUnknownWorkload) { ... }
var (
	// ErrUnknownWorkload: a workload name no profile matches.
	ErrUnknownWorkload = workload.ErrUnknown
	// ErrUnknownAlgorithm: an algorithm name ParseAlgorithm rejects.
	ErrUnknownAlgorithm = config.ErrUnknownAlgorithm
	// ErrBadTrace: a malformed, truncated or unsupported trace file.
	ErrBadTrace = trace.ErrBadTrace
	// ErrBadConfig: an invalid machine configuration or option combination.
	ErrBadConfig = config.ErrBadConfig
	// ErrFaultPlan: a malformed fault-injection plan or spec string.
	ErrFaultPlan = fault.ErrPlan
)

// ParseAlgorithm maps an algorithm name to its identifier.
func ParseAlgorithm(name string) (Algorithm, error) { return config.ParseAlgorithm(name) }

// FaultPlan is a deterministic fault-injection plan: a list of rules
// applied to ring link-segment transmissions, plus a retransmit budget.
// See internal/fault for the field documentation.
type FaultPlan = fault.Plan

// FaultRule is one fault-injection rule of a FaultPlan.
type FaultRule = fault.Rule

// Fault kinds for FaultRule.Kind.
const (
	// FaultDrop loses the segment; the requester squashes and the
	// snoop-response deadline drives a bounded retransmit.
	FaultDrop = fault.Drop
	// FaultDup delivers a redundant copy one occupancy slot behind; the
	// receiver discards it (sequence-check analogue).
	FaultDup = fault.Dup
	// FaultDelay adds deterministic jitter to the segment's arrival.
	FaultDelay = fault.Delay
	// FaultStall parks the segment until the rule's window closes.
	FaultStall = fault.Stall
)

// ParseFaultPlan parses the command-line fault-plan syntax
// ("kind=drop,rate=0.05,ring=0;kind=delay,delay=80" — rules separated
// by ';', key=value fields by ','). Errors wrap ErrFaultPlan.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.ParsePlan(spec) }

// PredictorConfig sizes a supplier predictor; the Sub512...Exa8k presets of
// Section 5.2 are exposed via Predictors.
type PredictorConfig = config.PredictorConfig

// Predictors returns the named Section 5.2 predictor configurations.
func Predictors() map[string]PredictorConfig {
	out := map[string]PredictorConfig{}
	for _, p := range []PredictorConfig{
		config.Sub512(), config.Sub2k(), config.Sub8k(),
		config.SupY512(), config.SupY2k(), config.SupN2k(),
		config.Exa512(), config.Exa2k(), config.Exa8k(),
	} {
		out[p.Name] = p
	}
	return out
}

// Result is the outcome of one simulation.
type Result = machine.Result

// Profile is a synthetic workload description.
type Profile = workload.Profile

// Workloads lists the evaluation's workload names: the 11 SPLASH-2
// applications, "specjbb" and "specweb".
func Workloads() []string {
	var names []string
	for _, p := range workload.Profiles() {
		names = append(names, p.Name)
	}
	return names
}

// WorkloadByName returns a named workload profile.
func WorkloadByName(name string) (Profile, error) { return workload.ByName(name) }

// Options tunes one simulation run.
type Options struct {
	// OpsPerCore bounds each core's memory-reference stream (default
	// 3000).
	OpsPerCore uint64
	// Seed selects the deterministic workload streams (default 1).
	Seed int64
	// Predictor overrides the algorithm's default (Section 6.1)
	// supplier predictor.
	Predictor *PredictorConfig
	// CheckInvariants arms the coherence checker during the run.
	CheckInvariants bool
	// DisablePrefetch turns off the prefetch-on-snoop heuristic.
	DisablePrefetch bool
	// NumRings overrides the number of embedded rings (default 2).
	NumRings int
	// GovernorBudgetNJPerKCycle enables the dynamic Agg/Con governor
	// (DynamicSuperset runs only).
	GovernorBudgetNJPerKCycle float64
	// WarmupCycles discards statistics and energy accumulated before
	// this cycle, so results cover only the steady-state window.
	WarmupCycles uint64
	// AlgorithmsPerNode gives each CMP node its own snooping policy — a
	// heterogeneous ring (the paper's Table 2 machinery explicitly
	// supports messages split and recombined multiple times as nodes
	// choose different primitives). Must have one entry per CMP. All
	// nodes share the predictor configuration of the labelled algorithm.
	AlgorithmsPerNode []Algorithm
	// Telemetry, when non-nil and requesting at least one output,
	// enables the observability layer for this run: per-transaction
	// event traces (Chrome trace-event JSON for Perfetto, or JSONL) and
	// interval time-series metrics (CSV, optional SVG chart). Telemetry
	// never perturbs the simulation: results are cycle-identical with it
	// on or off.
	Telemetry *TelemetryOptions
	// Faults, when non-nil with at least one rule, arms deterministic
	// fault injection on the ring's link segments. Faulty runs exercise
	// the protocol's timeout/retransmit path; a nil (or empty) plan is
	// cycle-identical to a build without the fault layer.
	Faults *FaultPlan
	// CheckEvery, when positive, runs the full coherence invariant
	// checker every CheckEvery cycles and fails the run at the first
	// violation (continuous mode; CheckInvariants remains the cheaper
	// per-transition spot check).
	CheckEvery uint64
	// WatchdogWindow, when positive, arms the no-forward-progress
	// watchdog with the given window in cycles. Zero picks an automatic
	// window from the snoop-response deadline when Faults is set, and
	// leaves the watchdog off otherwise.
	WatchdogWindow uint64
	// WatchdogDegrade makes the watchdog degrade gracefully — force
	// Eager forwarding for the lines of live transactions — before
	// failing fast.
	WatchdogDegrade bool
	// ShardRings arbitrates the per-ring transmit batches of each cycle
	// on worker goroutines instead of inline. Results are cycle-identical
	// with it on or off: side effects merge in a fixed ring-index order.
	// It only helps on machines embedding more than one ring.
	ShardRings bool
	// Tweak, when non-nil, receives the machine configuration for
	// arbitrary adjustments before the run.
	Tweak func(*MachineConfig)
}

// Validate reports whether the options are internally consistent,
// wrapping ErrBadConfig on failure. Run and friends call it (plus the
// algorithm-dependent combination checks) before building the machine, so
// bad inputs fail fast instead of deep inside the simulator.
func (o Options) Validate() error {
	if o.GovernorBudgetNJPerKCycle < 0 {
		return fmt.Errorf("%w: negative governor budget %g", ErrBadConfig, o.GovernorBudgetNJPerKCycle)
	}
	if o.NumRings < 0 {
		return fmt.Errorf("%w: negative ring count %d", ErrBadConfig, o.NumRings)
	}
	if err := o.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// TelemetryOptions selects the observability outputs of a run; see
// internal/telemetry for the field documentation.
type TelemetryOptions = telemetry.Config

// Trace output formats for TelemetryOptions.TraceFormat.
const (
	TraceFormatChrome = telemetry.FormatChrome
	TraceFormatJSONL  = telemetry.FormatJSONL
)

// MachineConfig is the full architectural parameter set (Table 4).
type MachineConfig = config.MachineConfig

// DefaultMachine returns the Table 4 machine configuration.
func DefaultMachine() MachineConfig { return config.DefaultMachine() }

// Source selects what a simulation runs on: a named workload, a custom
// synthetic profile, or a recorded trace file. Build one with
// FromWorkload, FromProfile or FromTraceFile; the zero Source is invalid
// and Simulate rejects it with ErrBadConfig.
//
// Source is a closed sum type: the three constructors are the only ways
// to obtain a useful value, which keeps Simulate's dispatch exhaustive.
type Source struct {
	kind     sourceKind
	workload string
	profile  Profile
	path     string
}

type sourceKind int

const (
	sourceNone sourceKind = iota
	sourceWorkload
	sourceProfile
	sourceTraceFile
)

// FromWorkload selects one of the named evaluation workloads (see
// Workloads). Resolution happens inside Simulate, so an unknown name
// fails there with ErrUnknownWorkload.
func FromWorkload(name string) Source {
	return Source{kind: sourceWorkload, workload: name}
}

// FromProfile selects a custom synthetic workload profile.
func FromProfile(p Profile) Source {
	return Source{kind: sourceProfile, profile: p}
}

// FromTraceFile selects a recorded binary trace file (see WriteTraceFile;
// a ".gz" suffix enables gzip). The per-CMP core count is inferred from
// the trace's stream count; malformed inputs fail with ErrBadTrace.
func FromTraceFile(path string) Source {
	return Source{kind: sourceTraceFile, path: path}
}

// String names the source for logs and error messages.
func (s Source) String() string {
	switch s.kind {
	case sourceWorkload:
		return "workload:" + s.workload
	case sourceProfile:
		return "profile:" + s.profile.Name
	case sourceTraceFile:
		return "trace:" + s.path
	}
	return "invalid"
}

// Simulate runs one simulation: algorithm alg on the workload, profile or
// trace the Source selects, under opts. It is the package's single
// context-first entry point; every other Run* name delegates here.
//
// The simulation stops between events once ctx is cancelled, returning an
// error that wraps ctx's error (errors.Is(err, context.Canceled)
// matches). A partial, cancelled run never corrupts shared state — every
// run builds its own machine — and passing a nil or Background context
// costs nothing on the hot path.
func Simulate(ctx context.Context, alg Algorithm, src Source, opts Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch src.kind {
	case sourceWorkload:
		prof, err := workload.ByName(src.workload)
		if err != nil {
			return Result{}, err
		}
		return simulateProfile(ctx, alg, prof, opts)
	case sourceProfile:
		return simulateProfile(ctx, alg, src.profile, opts)
	case sourceTraceFile:
		return simulateTraceFile(ctx, alg, src.path, opts)
	}
	return Result{}, fmt.Errorf("%w: empty simulation source (use FromWorkload, FromProfile or FromTraceFile)", ErrBadConfig)
}

// simulateProfile is the profile-backed execution path behind Simulate.
func simulateProfile(ctx context.Context, alg Algorithm, prof Profile, opts Options) (Result, error) {
	exp, err := buildExperiment(alg, prof, opts)
	if err != nil {
		return Result{}, err
	}
	exp.Context = ctx
	return machine.Run(exp)
}

// Run simulates one (algorithm, workload) pair.
//
// Deprecated: use Simulate with FromWorkload.
func Run(alg Algorithm, workloadName string, opts Options) (Result, error) {
	return Simulate(context.Background(), alg, FromWorkload(workloadName), opts)
}

// RunContext is Run with cancellation.
//
// Deprecated: use Simulate with FromWorkload.
func RunContext(ctx context.Context, alg Algorithm, workloadName string, opts Options) (Result, error) {
	return Simulate(ctx, alg, FromWorkload(workloadName), opts)
}

// RunProfile simulates one algorithm on a custom workload profile.
//
// Deprecated: use Simulate with FromProfile.
func RunProfile(alg Algorithm, prof Profile, opts Options) (Result, error) {
	return Simulate(context.Background(), alg, FromProfile(prof), opts)
}

// RunProfileContext is RunProfile with cancellation.
//
// Deprecated: use Simulate with FromProfile.
func RunProfileContext(ctx context.Context, alg Algorithm, prof Profile, opts Options) (Result, error) {
	return Simulate(ctx, alg, FromProfile(prof), opts)
}

// buildExperiment is the single validated construction path shared by
// Run/RunProfile/RunTraceFile (and their Context variants): options are
// validated, applied to a Table 4 default machine, and the final
// configuration re-validated after the Tweak hook has run.
func buildExperiment(alg Algorithm, prof Profile, opts Options) (machine.Experiment, error) {
	if err := opts.Validate(); err != nil {
		return machine.Experiment{}, err
	}
	if opts.GovernorBudgetNJPerKCycle > 0 && !usesDynamic(alg, opts.AlgorithmsPerNode) {
		return machine.Experiment{}, fmt.Errorf(
			"%w: GovernorBudgetNJPerKCycle set but no node runs DynamicSuperset", ErrBadConfig)
	}
	exp := machine.New(alg, prof)
	if opts.OpsPerCore > 0 {
		exp.OpsPerCore = opts.OpsPerCore
	}
	if opts.Seed != 0 {
		exp.Seed = opts.Seed
	}
	if opts.Predictor != nil {
		exp.Predictor = *opts.Predictor
	}
	exp.CheckInvariants = opts.CheckInvariants
	if opts.DisablePrefetch {
		exp.Machine.PrefetchOnSnoop = false
	}
	if opts.NumRings > 0 {
		exp.Machine.NumRings = opts.NumRings
	}
	if opts.GovernorBudgetNJPerKCycle > 0 {
		exp.Governor = machine.DefaultGovernor(opts.GovernorBudgetNJPerKCycle)
	}
	if len(opts.AlgorithmsPerNode) > 0 {
		exp.AlgorithmPerNode = opts.AlgorithmsPerNode
	}
	if opts.WarmupCycles > 0 {
		exp.WarmupCycles = sim.Time(opts.WarmupCycles)
	}
	exp.Telemetry = opts.Telemetry
	exp.ShardRings = opts.ShardRings
	exp.Faults = opts.Faults
	exp.CheckEveryCycles = sim.Time(opts.CheckEvery)
	exp.WatchdogWindow = sim.Time(opts.WatchdogWindow)
	exp.WatchdogDegrade = opts.WatchdogDegrade
	if opts.Tweak != nil {
		opts.Tweak(&exp.Machine)
	}
	// Checked after Tweak: the hook may legitimately change NumCMPs.
	if n := len(opts.AlgorithmsPerNode); n > 0 && n != exp.Machine.NumCMPs {
		return machine.Experiment{}, fmt.Errorf("%w: %d per-node algorithms for %d CMPs",
			ErrBadConfig, n, exp.Machine.NumCMPs)
	}
	if err := exp.Machine.Validate(); err != nil {
		return machine.Experiment{}, err
	}
	return exp, nil
}

// usesDynamic reports whether any node of the run executes the
// DynamicSuperset algorithm.
func usesDynamic(alg Algorithm, perNode []Algorithm) bool {
	if len(perNode) == 0 {
		return alg == DynamicSuperset
	}
	for _, a := range perNode {
		if a == DynamicSuperset {
			return true
		}
	}
	return false
}

// WriteTraceFile records a workload's per-core reference streams to a
// binary trace file (the paper's trace-driven mode for SPEC workloads).
// A ".gz" suffix enables gzip compression.
func WriteTraceFile(path, workloadName string, opsPerCore uint64, seed int64) error {
	prof, err := workload.ByName(workloadName)
	if err != nil {
		return err
	}
	cores := config.DefaultMachine().NumCMPs * prof.Class.CoresPerCMP()
	streams := make([][]workload.Op, cores)
	for g := 0; g < cores; g++ {
		streams[g] = trace.Record(workload.NewGenerator(prof, g, opsPerCore, seed))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := trace.Write(w, streams); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

// RunTraceFile replays a trace file under an algorithm.
//
// Deprecated: use Simulate with FromTraceFile.
func RunTraceFile(alg Algorithm, path string, opts Options) (Result, error) {
	return Simulate(context.Background(), alg, FromTraceFile(path), opts)
}

// RunTraceFileContext is RunTraceFile with cancellation.
//
// Deprecated: use Simulate with FromTraceFile.
func RunTraceFileContext(ctx context.Context, alg Algorithm, path string, opts Options) (Result, error) {
	return Simulate(ctx, alg, FromTraceFile(path), opts)
}

// simulateTraceFile is the trace-backed execution path behind Simulate:
// the per-CMP core count is inferred from the trace's stream count.
// Malformed inputs — corrupt data, a bad gzip envelope, or a stream count
// that does not map onto the machine's CMPs — fail with an error wrapping
// ErrBadTrace.
func simulateTraceFile(ctx context.Context, alg Algorithm, path string, opts Options) (Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return Result{}, fmt.Errorf("%w: %s: %v", ErrBadTrace, path, err)
		}
		defer gz.Close()
		r = gz
	}
	streams, err := trace.Read(r)
	if err != nil {
		return Result{}, err
	}
	m := config.DefaultMachine()
	if len(streams)%m.NumCMPs != 0 || len(streams) == 0 {
		return Result{}, fmt.Errorf("%w: %d trace streams do not map onto %d CMPs",
			ErrBadTrace, len(streams), m.NumCMPs)
	}
	prof := workload.Profile{Name: "trace:" + path, PrivateLines: 1}
	exp, err := buildExperiment(alg, prof, opts)
	if err != nil {
		return Result{}, err
	}
	exp.Machine.CoresPerCMP = len(streams) / m.NumCMPs
	exp.Traces = streams
	exp.OpsPerCore = 0
	exp.Context = ctx
	return machine.Run(exp)
}
