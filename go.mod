module flexsnoop

go 1.22
