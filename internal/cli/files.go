package cli

import (
	"fmt"
	"os"
	"path/filepath"

	"flexsnoop/internal/config"
)

// EnsureDir makes sure dir exists, creating missing parents. Failures
// wrap config.ErrBadConfig — an unwritable output directory is an
// operator mistake, so tools exit with ExitUsage, and validating up
// front means a typo'd -csv/-tracedir fails before a long matrix run
// rather than after it.
func EnsureDir(dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("%w: output directory %q: %v", config.ErrBadConfig, dir, err)
	}
	return nil
}

// CreateFile creates (truncates) an output file, first creating any
// missing parent directories, so `-metrics out/run1/metrics.csv` works
// without a prior mkdir. Failures wrap config.ErrBadConfig.
func CreateFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := EnsureDir(dir); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("%w: output file %q: %v", config.ErrBadConfig, path, err)
	}
	return f, nil
}
