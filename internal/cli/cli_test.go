package cli

import (
	"errors"
	"fmt"
	"testing"

	"flexsnoop/internal/config"
	"flexsnoop/internal/trace"
	"flexsnoop/internal/workload"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("boom"), ExitFailure},
		{fmt.Errorf("outer: %w", config.ErrUnknownAlgorithm), ExitUsage},
		{fmt.Errorf("outer: %w", config.ErrBadConfig), ExitUsage},
		{fmt.Errorf("outer: %w", workload.ErrUnknown), ExitUsage},
		{fmt.Errorf("outer: %w", trace.ErrBadTrace), ExitBadTrace},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
