// Package cli holds behaviour shared by the command-line tools.
package cli

import (
	"errors"

	"flexsnoop/internal/config"
	"flexsnoop/internal/fault"
	"flexsnoop/internal/trace"
	"flexsnoop/internal/workload"
)

// Exit codes shared by every tool, keyed off the root package's error
// sentinels so scripts can distinguish operator mistakes from runtime
// failures.
const (
	ExitOK       = 0 // success
	ExitFailure  = 1 // simulation or I/O failure
	ExitUsage    = 2 // bad flags or configuration (ErrUnknown*/ErrBadConfig)
	ExitBadTrace = 3 // unreadable or corrupt trace file (ErrBadTrace)
)

// ExitCode maps an error to the tool exit code via errors.Is on the
// flexsnoop sentinels, so a wrapped cause anywhere in the chain counts.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, trace.ErrBadTrace):
		return ExitBadTrace
	case errors.Is(err, workload.ErrUnknown),
		errors.Is(err, config.ErrUnknownAlgorithm),
		errors.Is(err, config.ErrBadConfig),
		errors.Is(err, fault.ErrPlan):
		return ExitUsage
	default:
		return ExitFailure
	}
}
