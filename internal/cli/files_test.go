package cli

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"flexsnoop/internal/config"
)

func TestEnsureDirCreatesParents(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "c")
	if err := EnsureDir(dir); err != nil {
		t.Fatalf("EnsureDir: %v", err)
	}
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		t.Fatalf("stat %s: %v, %v", dir, st, err)
	}
	// Idempotent on an existing directory; a no-op on "".
	if err := EnsureDir(dir); err != nil {
		t.Errorf("EnsureDir existing: %v", err)
	}
	if err := EnsureDir(""); err != nil {
		t.Errorf("EnsureDir empty: %v", err)
	}
}

func TestEnsureDirUnwritable(t *testing.T) {
	base := t.TempDir()
	// A regular file where a path component should be a directory.
	blocker := filepath.Join(base, "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	err := EnsureDir(filepath.Join(blocker, "sub"))
	if !errors.Is(err, config.ErrBadConfig) {
		t.Errorf("EnsureDir under a file = %v, want ErrBadConfig (ExitUsage)", err)
	}
	if ExitCode(err) != ExitUsage {
		t.Errorf("ExitCode = %d, want %d", ExitCode(err), ExitUsage)
	}
}

func TestCreateFileMakesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out", "run1", "metrics.csv")
	f, err := CreateFile(path)
	if err != nil {
		t.Fatalf("CreateFile: %v", err)
	}
	if _, err := f.WriteString("cycle\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("stat: %v", err)
	}
	// Bare filenames (no directory component) work in the cwd.
	if f, err := CreateFile(filepath.Join(t.TempDir(), "bare.csv")); err != nil {
		t.Errorf("CreateFile bare: %v", err)
	} else {
		f.Close()
	}
}

func TestCreateFileUnwritable(t *testing.T) {
	base := t.TempDir()
	blocker := filepath.Join(base, "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := CreateFile(filepath.Join(blocker, "out.csv"))
	if !errors.Is(err, config.ErrBadConfig) {
		t.Errorf("CreateFile under a file = %v, want ErrBadConfig", err)
	}
	// Creating the directory itself as a file also fails cleanly.
	if _, err := CreateFile(base); err == nil {
		t.Error("CreateFile over an existing directory succeeded")
	}
}
