package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// These tests pin down the timing-wheel internals that the generic kernel
// tests in sim_test.go cannot reach: spill-list cancellation, handle
// generations across wheel rotations, FIFO order when same-cycle events
// migrate in from different wheel levels, the EndCycle batch hook, and a
// randomized cross-check against a reference sorted-list scheduler.

// TestCancelSpilledFarFutureEvent cancels events that live in the sorted
// spill (beyond the 65,536-cycle wheel horizon) and checks the remaining
// spill events still fire in order.
func TestCancelSpilledFarFutureEvent(t *testing.T) {
	k := NewKernel()
	var fired []Time
	var handles []Handle
	// Five spill residents, far past the wheel horizon.
	for i := 0; i < 5; i++ {
		at := Time(wheelSpan*2 + i*wheelSpan/2)
		handles = append(handles, k.Schedule(at, func() { fired = append(fired, k.Now()) }))
	}
	// Cancel the first, middle and last while they are still spilled.
	for _, i := range []int{0, 2, 4} {
		k.Cancel(handles[i])
		if handles[i].Pending() {
			t.Fatalf("handle %d still pending after Cancel", i)
		}
	}
	if got := k.Pending(); got != 2 {
		t.Fatalf("Pending = %d after cancelling 3 of 5 spilled events, want 2", got)
	}
	k.RunAll()
	want := []Time{wheelSpan*2 + wheelSpan/2, wheelSpan*2 + 3*wheelSpan/2}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	// Cancelling the survivors' now-stale handles must be a no-op.
	for _, h := range handles {
		k.Cancel(h)
	}
}

// TestCancelSpilledThenScheduleNearer checks that a cancelled spill event
// does not block the spill refill when the wheel re-bases onto the spill.
func TestCancelSpilledThenScheduleNearer(t *testing.T) {
	k := NewKernel()
	ran := false
	dead := k.Schedule(Time(wheelSpan*3), func() { t.Fatal("cancelled event ran") })
	live := k.Schedule(Time(wheelSpan*3+7), func() { ran = true })
	k.Cancel(dead)
	end := k.RunAll()
	if !ran {
		t.Fatal("live spill event never ran")
	}
	if end != Time(wheelSpan*3+7) {
		t.Fatalf("RunAll returned %d, want %d", end, wheelSpan*3+7)
	}
	_ = live
}

// TestHandleGenerationAcrossRotation drives the wheel through full
// rotations while recycling event storage, and checks that a handle from
// an earlier occupant can never cancel a later one.
func TestHandleGenerationAcrossRotation(t *testing.T) {
	k := NewKernel()
	var stale []Handle
	fired := 0
	// Fire one event per near-wheel rotation for eight rotations. With a
	// single event in flight, every Schedule reuses the same slab slot, so
	// each retained handle points at recycled storage.
	var step func()
	step = func() {
		fired++
		if fired < 8 {
			stale = append(stale, k.After(Time(nearSlots), step))
		}
	}
	stale = append(stale, k.Schedule(0, step))
	k.RunAll()
	if fired != 8 {
		t.Fatalf("fired %d events, want 8", fired)
	}
	for i, h := range stale {
		if h.Pending() {
			t.Fatalf("handle %d from rotation %d still pending after firing", i, i)
		}
	}
	// A stale handle must not cancel the storage's next occupant.
	h := k.Schedule(k.Now()+Time(wheelSpan)+5, func() { fired++ })
	for _, s := range stale {
		k.Cancel(s)
	}
	if !h.Pending() {
		t.Fatal("stale handles cancelled a live event in recycled storage")
	}
	k.RunAll()
	if fired != 9 {
		t.Fatalf("live event lost: fired %d, want 9", fired)
	}
}

// TestSameCycleFIFOAcrossMigrations schedules events for one target cycle
// from three distances — direct near-wheel, overflow-wheel, and spill — so
// they converge on the same slot via different migration paths (cascade
// and spill refill). Execution order must still be schedule order.
func TestSameCycleFIFOAcrossMigrations(t *testing.T) {
	k := NewKernel()
	// 200 past a rotation boundary, so the final schedule below lands in
	// the near window rather than one slot past it.
	target := Time(wheelSpan + wheelSpan/2 + 200)
	var order []int
	log := func(i int) func() { return func() { order = append(order, i) } }

	// seq 0: spill resident (target is past the wheel horizon at schedule
	// time).
	k.Schedule(target, log(0))
	// Walk the clock close enough that the next schedule lands in the
	// overflow wheel, then the near wheel.
	k.Schedule(target-Time(wheelSpan/2), func() {
		// Now = target - wheelSpan/2: target is inside the horizon but past
		// the near window, so this lands in the overflow wheel.
		k.Schedule(target, log(1))
		k.Schedule(target-100, func() {
			// Now = target - 100, same near window as target: direct near
			// append.
			k.Schedule(target, log(2))
		})
	})
	k.RunAll()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("same-cycle events ran out of schedule order: %v", order)
	}
}

// TestEndCycleBatching pins the EndCycle contract: it runs once per
// executed cycle after the cycle's events drain, same-cycle events it
// schedules are drained (and the hook re-fired) before the clock moves,
// and Step never invokes it.
func TestEndCycleBatching(t *testing.T) {
	k := NewKernel()
	var trace []string
	k.EndCycle = func(now Time) {
		trace = append(trace, "end")
		if now == 10 && len(trace) == 3 { // first EndCycle at cycle 10
			k.Schedule(10, func() { trace = append(trace, "late") })
		}
	}
	k.Schedule(10, func() { trace = append(trace, "a") })
	k.Schedule(10, func() { trace = append(trace, "b") })
	k.Schedule(12, func() { trace = append(trace, "c") })
	k.Run(12)
	// Cycle 10: a, b, end, late (added by the hook), end again; cycle 12:
	// c, end; then one drain-time end.
	want := []string{"a", "b", "end", "late", "end", "c", "end", "end"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}

	// Step must not fire the hook.
	k2 := NewKernel()
	called := false
	k2.EndCycle = func(Time) { called = true }
	k2.Schedule(5, func() {})
	if !k2.Step() {
		t.Fatal("Step found no event")
	}
	if called {
		t.Fatal("Step fired the EndCycle hook")
	}
}

// refEvent is one entry of the reference scheduler used by the
// cross-check tests.
type refEvent struct {
	when      Time
	seq       int
	cancelled bool
}

// TestWheelMatchesReferenceScheduler drives the kernel with randomized
// schedules and cancellations spanning all three wheel regions, and
// checks the execution order against a trivial sorted-list reference.
func TestWheelMatchesReferenceScheduler(t *testing.T) {
	// Offsets are drawn across the near band, overflow band, spill band
	// and the exact region boundaries.
	offsets := []Time{
		0, 1, 2, 38, 39, 55, 100,
		nearSlots - 1, nearSlots, nearSlots + 1,
		wheelSpan - 1, wheelSpan, wheelSpan + 1,
		wheelSpan * 3,
	}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var ref []*refEvent
		var got []int
		var handles []Handle
		schedule := func(now Time) {
			off := offsets[rng.Intn(len(offsets))]
			if rng.Intn(2) == 0 {
				off = Time(rng.Intn(1000))
			}
			re := &refEvent{when: now + off, seq: len(ref)}
			ref = append(ref, re)
			i := re.seq
			handles = append(handles, k.Schedule(re.when, func() { got = append(got, i) }))
		}
		for i := 0; i < 40; i++ {
			schedule(0)
		}
		// Random cancellations before the run starts.
		for i := 0; i < 10; i++ {
			j := rng.Intn(len(ref))
			k.Cancel(handles[j])
			ref[j].cancelled = true
		}
		// More work scheduled from inside the run, at random points.
		for i := 0; i < 10; i++ {
			at := Time(rng.Intn(2 * wheelSpan))
			k.Schedule(at, func() {
				schedule(k.Now())
				// Occasionally cancel a still-pending earlier event.
				if j := rng.Intn(len(handles)); handles[j].Pending() {
					k.Cancel(handles[j])
					ref[j].cancelled = true
				}
			})
		}
		k.RunAll()

		var want []int
		live := make([]*refEvent, 0, len(ref))
		for _, re := range ref {
			if !re.cancelled {
				live = append(live, re)
			}
		}
		sort.SliceStable(live, func(a, b int) bool {
			if live[a].when != live[b].when {
				return live[a].when < live[b].when
			}
			return live[a].seq < live[b].seq
		})
		for _, re := range live {
			want = append(want, re.seq)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: executed %d events, reference says %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: order diverges at %d: got %v..., want %v...",
					seed, i, got[max(0, i-2):min(len(got), i+3)], want[max(0, i-2):min(len(want), i+3)])
			}
		}
		if k.Pending() != 0 {
			t.Fatalf("seed %d: %d events still pending after RunAll", seed, k.Pending())
		}
	}
}

// FuzzWheelVsReference is the fuzzing entry for the same cross-check: the
// fuzz input is interpreted as a schedule/cancel opcode stream.
func FuzzWheelVsReference(f *testing.F) {
	f.Add([]byte{0, 1, 2, 200, 255, 3, 9})
	f.Add([]byte{255, 255, 255, 0, 0, 128, 64, 32})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		k := NewKernel()
		var ref []*refEvent
		var got []int
		var handles []Handle
		for _, op := range ops {
			if op < 200 || len(handles) == 0 {
				// Schedule: spread the byte across all three regions.
				off := Time(op) * Time(op) * 37 // up to ~1.46M cycles
				re := &refEvent{when: off, seq: len(ref)}
				ref = append(ref, re)
				i := re.seq
				handles = append(handles, k.Schedule(re.when, func() { got = append(got, i) }))
			} else {
				j := int(op) % len(handles)
				if handles[j].Pending() {
					k.Cancel(handles[j])
					ref[j].cancelled = true
				}
			}
		}
		k.RunAll()
		live := make([]*refEvent, 0, len(ref))
		for _, re := range ref {
			if !re.cancelled {
				live = append(live, re)
			}
		}
		sort.SliceStable(live, func(a, b int) bool {
			if live[a].when != live[b].when {
				return live[a].when < live[b].when
			}
			return live[a].seq < live[b].seq
		})
		if len(got) != len(live) {
			t.Fatalf("executed %d events, reference says %d", len(got), len(live))
		}
		for i, re := range live {
			if got[i] != re.seq {
				t.Fatalf("order diverges at %d: got %d, want %d", i, got[i], re.seq)
			}
		}
	})
}
