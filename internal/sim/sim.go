// Package sim provides the discrete-event simulation kernel used by the
// flexible-snooping machine model.
//
// The kernel is a single-threaded event queue keyed by (cycle, sequence
// number). Events scheduled for the same cycle execute in the order they
// were scheduled, which makes every simulation fully deterministic for a
// fixed configuration and seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, measured in processor cycles.
type Time uint64

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxUint64)

// Event is a scheduled callback.
type Event struct {
	when  Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
	dead  bool
}

// When returns the cycle at which the event fires.
func (e *Event) When() Time { return e.when }

// eventQueue implements heap.Interface over pending events.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator.
//
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool

	// Executed counts events that have run to completion.
	Executed uint64

	// MaxPending is the event queue's high-water mark.
	MaxPending int

	// Probe, when non-nil, observes the kernel after every executed
	// event — the telemetry layer's hook for interval sampling. A nil
	// check per event is the only cost when telemetry is disabled. The
	// probe must not schedule events or otherwise perturb the run.
	Probe func(now Time)
}

// NewKernel returns an empty kernel at cycle zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Schedule runs fn at the given absolute cycle. Scheduling in the past
// (before Now) panics: it would silently corrupt causality.
func (k *Kernel) Schedule(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{when: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	if len(k.queue) > k.MaxPending {
		k.MaxPending = len(k.queue)
	}
	return e
}

// After runs fn delay cycles from now.
func (k *Kernel) After(delay Time, fn func()) *Event {
	return k.Schedule(k.now+delay, fn)
}

// Cancel prevents a pending event from running. Cancelling an event that
// already ran (or was already cancelled) is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.index >= 0 {
		heap.Remove(&k.queue, e.index)
	}
}

// Pending reports the number of events waiting to run.
func (k *Kernel) Pending() int { return k.queue.Len() }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, if any, and reports whether one ran.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.dead {
			continue
		}
		e.dead = true
		k.now = e.when
		e.fn()
		k.Executed++
		if k.Probe != nil {
			k.Probe(k.now)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or the
// simulated clock passes limit. It returns the time of the last executed
// event.
func (k *Kernel) Run(limit Time) Time {
	k.stopped = false
	for !k.stopped && k.queue.Len() > 0 {
		if next := k.queue[0].when; next > limit {
			break
		}
		k.Step()
	}
	return k.now
}

// RunAll executes events until the queue drains or Stop is called.
func (k *Kernel) RunAll() Time { return k.Run(MaxTime) }
