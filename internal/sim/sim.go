// Package sim provides the discrete-event simulation kernel used by the
// flexible-snooping machine model.
//
// The kernel is a single-threaded event scheduler keyed by (cycle,
// sequence number). Events scheduled for the same cycle execute in the
// order they were scheduled, which makes every simulation fully
// deterministic for a fixed configuration and seed.
//
// Pending events live in a hierarchical timing wheel rather than a binary
// heap: a near wheel of 256 one-cycle slots covers the 39-cycle ring-link
// latency band (plus the 55-cycle snoop/bus band) where virtually all
// events land, an overflow wheel of 256 slots × 256 cycles covers
// mid-range timers such as DRAM accesses and retry backoffs, and a small
// sorted spill list holds anything beyond 65,536 cycles. Schedule and the
// per-event dequeue are O(1) in the steady state, replacing the O(log n)
// sift of a heap.
//
// Events are slab-allocated and recycled through a kernel-owned free list:
// steady-state simulation schedules millions of events without growing the
// heap. Because a fired event's storage is reused, Schedule returns a
// Handle (pointer + generation) rather than a raw pointer; cancelling a
// stale handle is a safe no-op.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Time is a point in simulated time, measured in processor cycles.
type Time uint64

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxUint64)

// eventState tracks where an event's storage is in its lifecycle.
type eventState uint8

const (
	evFree      eventState = iota // on the free list
	evScheduled                   // linked into a wheel slot or the spill
	evDead                        // cancelled; storage reclaimed lazily
)

// Event is a scheduled callback. Its storage is owned by the kernel and
// recycled after the event fires; hold a Handle, not an *Event.
type Event struct {
	when Time
	seq  uint64

	// Exactly one of fn / argFn is set. The argFn+arg form lets hot
	// callers schedule a package-level function with a pooled argument,
	// avoiding a closure allocation per event.
	fn    func()
	argFn func(any)
	arg   any

	next  *Event // intrusive slot/spill chain
	state eventState
	gen   uint32 // bumped on recycle; validates Handles
}

// When returns the cycle at which the event fires.
func (e *Event) When() Time { return e.when }

// Handle identifies one scheduled firing of an event. The zero Handle is
// valid and refers to nothing. A Handle goes stale once its event fires,
// is cancelled, or the kernel recycles the storage; Cancel on a stale
// handle is a no-op.
type Handle struct {
	e   *Event
	gen uint32
}

// Pending reports whether the handle still refers to a scheduled event.
func (h Handle) Pending() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.state == evScheduled
}

// When returns the firing cycle of a pending handle, or 0 for a stale one.
func (h Handle) When() Time {
	if !h.Pending() {
		return 0
	}
	return h.e.when
}

// Wheel geometry. The near wheel resolves single cycles; each overflow
// slot covers one full near-wheel rotation. Together they span 65,536
// cycles ahead of nearBase; events beyond that go to the sorted spill.
const (
	nearSlotBits = 8
	nearSlots    = 1 << nearSlotBits // 256 slots × 1 cycle
	nearMask     = nearSlots - 1
	overSlots    = 256 // × nearSlots cycles each
	overMask     = overSlots - 1
	wheelSpan    = nearSlots * overSlots
)

// slotList is a FIFO chain of events threaded through Event.next.
type slotList struct {
	head, tail *Event
}

func (l *slotList) append(e *Event) {
	e.next = nil
	if l.tail == nil {
		l.head = e
	} else {
		l.tail.next = e
	}
	l.tail = e
}

func (l *slotList) reset() { l.head, l.tail = nil, nil }

// eventSlabSize is how many events one slab allocation provides. Slabs
// amortize allocator and GC pressure: a draining simulation reaches a
// steady state where every Schedule is served from the free list.
const eventSlabSize = 256

// interruptStride is how many executed events pass between Interrupt
// polls: rare enough to cost nothing, frequent enough that cancellation
// latency stays in the microsecond range.
const interruptStride = 64

// Kernel is a discrete-event simulator.
//
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now Time
	seq uint64

	// Timing wheel. nearBase/overBase are the wheels' window origins:
	// near covers [nearBase, nearBase+256), overflow covers
	// [nearBase+256, overBase+65536), spill everything beyond. Boundary
	// advances cascade the next overflow slot into the near wheel and
	// refill the wheels from the spill, so an event is always reachable
	// from the slot its current when maps to.
	near     [nearSlots]slotList
	nearOcc  [nearSlots / 64]uint64 // bitmap of (possibly dead-only) occupied near slots
	nearCnt  [nearSlots]int32       // live events per near slot
	over     [overSlots]slotList
	overOcc  [overSlots / 64]uint64
	spill    []*Event // sorted by (when, seq); spillHead is the live prefix start
	spillOff int
	nearBase Time
	overBase Time

	// Live-event counts per region (cancelled events are excluded the
	// moment Cancel runs, even though their storage is reclaimed lazily).
	live      int
	nearLive  int
	overLive  int
	spillLive int

	batch      []*Event // per-cycle dispatch scratch
	free       []*Event
	stopped    bool
	intErr     error
	sinceCheck uint64

	// Executed counts events that have run to completion.
	Executed uint64

	// MaxPending is the pending-event high-water mark.
	MaxPending int

	// Probe, when non-nil, observes the kernel after every executed
	// event — the telemetry layer's hook for interval sampling. A nil
	// check per event is the only cost when telemetry is disabled. The
	// probe must not schedule events or otherwise perturb the run.
	Probe func(now Time)

	// Interrupt, when non-nil, is polled between events (every
	// interruptStride executions). A non-nil return makes Run stop
	// before the next event; the error is kept and reported by Err.
	// The poll never perturbs simulated time, so a run that is not
	// interrupted is cycle-identical to one with no Interrupt installed.
	Interrupt func() error

	// EndCycle, when non-nil, runs once per executed cycle during Run,
	// after every event at that cycle has fired — the hook the protocol
	// engine uses to flush per-ring transmit batches. It may schedule
	// events at the current cycle or later; events it adds at the
	// current cycle are drained (and EndCycle re-fires) before the clock
	// advances. Run also fires it when the queue drains, so deferred
	// work buffered by single-stepped events is not lost; the hook must
	// therefore tolerate back-to-back calls at the same cycle. Step does
	// not invoke it.
	EndCycle func(now Time)
}

// NewKernel returns an empty kernel at cycle zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Err returns the error that interrupted Run, if any.
func (k *Kernel) Err() error { return k.intErr }

// alloc takes an event from the free list, growing it by one slab when
// empty.
func (k *Kernel) alloc() *Event {
	if len(k.free) == 0 {
		slab := make([]Event, eventSlabSize)
		for i := range slab {
			k.free = append(k.free, &slab[i])
		}
	}
	e := k.free[len(k.free)-1]
	k.free = k.free[:len(k.free)-1]
	return e
}

// recycleFired returns a fired event to the free list, bumping its
// generation so stale Handles cannot reach the next occupant.
func (k *Kernel) recycleFired(e *Event) {
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	e.next = nil
	e.state = evFree
	e.gen++
	k.free = append(k.free, e)
}

// recycleDead reclaims a cancelled event's storage. Cancel already bumped
// the generation and dropped the callback references.
func (k *Kernel) recycleDead(e *Event) {
	e.next = nil
	e.state = evFree
	k.free = append(k.free, e)
}

// place links a scheduled event into the region its when maps to. Counts
// for the target region are updated; the caller accounts for the region
// the event left, if any.
func (k *Kernel) place(e *Event) {
	switch {
	case e.when < k.nearBase+nearSlots:
		i := int(e.when) & nearMask
		k.near[i].append(e)
		k.nearOcc[i>>6] |= 1 << (uint(i) & 63)
		k.nearCnt[i]++
		k.nearLive++
	case e.when < k.overBase+wheelSpan:
		i := int(e.when>>nearSlotBits) & overMask
		k.over[i].append(e)
		k.overOcc[i>>6] |= 1 << (uint(i) & 63)
		k.overLive++
	default:
		k.spillInsert(e)
		k.spillLive++
	}
}

// spillInsert adds e to the sorted spill, keeping (when, seq) order.
func (k *Kernel) spillInsert(e *Event) {
	s := k.spill[k.spillOff:]
	i := sort.Search(len(s), func(i int) bool {
		if s[i].when != e.when {
			return s[i].when > e.when
		}
		return s[i].seq > e.seq
	})
	k.spill = append(k.spill, nil)
	s = k.spill[k.spillOff:]
	copy(s[i+1:], s[i:])
	s[i] = e
}

func (k *Kernel) push(e *Event, at Time) Handle {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, k.now))
	}
	e.when = at
	e.seq = k.seq
	k.seq++
	e.state = evScheduled
	k.place(e)
	k.live++
	if k.live > k.MaxPending {
		k.MaxPending = k.live
	}
	return Handle{e: e, gen: e.gen}
}

// Schedule runs fn at the given absolute cycle. Scheduling in the past
// (before Now) panics: it would silently corrupt causality.
func (k *Kernel) Schedule(at Time, fn func()) Handle {
	if fn == nil {
		panic("sim: nil event function")
	}
	e := k.alloc()
	e.fn = fn
	return k.push(e, at)
}

// ScheduleArg runs fn(arg) at the given absolute cycle. When fn is a
// package-level function value and arg is a pooled pointer, the call
// allocates nothing: this is the hot-path alternative to wrapping both in
// a fresh closure per event.
func (k *Kernel) ScheduleArg(at Time, fn func(any), arg any) Handle {
	if fn == nil {
		panic("sim: nil event function")
	}
	e := k.alloc()
	e.argFn = fn
	e.arg = arg
	return k.push(e, at)
}

// After runs fn delay cycles from now.
func (k *Kernel) After(delay Time, fn func()) Handle {
	return k.Schedule(k.now+delay, fn)
}

// AfterArg runs fn(arg) delay cycles from now (see ScheduleArg).
func (k *Kernel) AfterArg(delay Time, fn func(any), arg any) Handle {
	return k.ScheduleArg(k.now+delay, fn, arg)
}

// Cancel prevents a pending event from running. Cancelling a stale handle
// (already fired, already cancelled, or zero) is a no-op. The event's
// storage is reclaimed lazily the next time the kernel walks the slot or
// spill entry holding it.
func (k *Kernel) Cancel(h Handle) {
	if !h.Pending() {
		return
	}
	e := h.e
	e.state = evDead
	e.gen++ // stale immediately; the slot walk reclaims storage later
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	k.live--
	switch {
	case e.when < k.nearBase+nearSlots:
		k.nearCnt[int(e.when)&nearMask]--
		k.nearLive--
	case e.when < k.overBase+wheelSpan:
		k.overLive--
	default:
		k.spillLive--
	}
}

// Pending reports the number of events waiting to run.
func (k *Kernel) Pending() int { return k.live }

// FreeEvents reports the free-list depth (observability for the slab
// allocator; steady-state simulations stop growing it).
func (k *Kernel) FreeEvents() int { return len(k.free) }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// advanceBoundary moves the near window forward one rotation and cascades
// the overflow slot now covering [nearBase, nearBase+256) into the near
// wheel. Boundaries advance one at a time, so every overflow slot is
// cascaded exactly when the near window reaches it.
func (k *Kernel) advanceBoundary() {
	k.nearBase += nearSlots
	if k.nearBase >= k.overBase+wheelSpan {
		k.overBase += wheelSpan
		k.refillSpill()
	}
	i := int(k.nearBase>>nearSlotBits) & overMask
	if k.overOcc[i>>6]&(1<<(uint(i)&63)) == 0 {
		return
	}
	head := k.over[i].head
	k.over[i].reset()
	k.overOcc[i>>6] &^= 1 << (uint(i) & 63)
	for e := head; e != nil; {
		next := e.next
		if e.state == evDead {
			k.recycleDead(e)
		} else {
			k.overLive--
			k.place(e)
		}
		e = next
	}
}

// refillSpill moves every spill event now inside the wheel horizon into
// the wheels. The spill is sorted, so only a prefix moves.
func (k *Kernel) refillSpill() {
	horizon := k.overBase + wheelSpan
	for k.spillOff < len(k.spill) {
		e := k.spill[k.spillOff]
		if e.state != evDead && e.when >= horizon {
			break
		}
		k.spill[k.spillOff] = nil
		k.spillOff++
		if e.state == evDead {
			k.recycleDead(e)
			continue
		}
		k.spillLive--
		k.place(e)
	}
	if k.spillOff == len(k.spill) {
		k.spill = k.spill[:0]
		k.spillOff = 0
	} else if k.spillOff > 64 && k.spillOff > len(k.spill)/2 {
		n := copy(k.spill, k.spill[k.spillOff:])
		for i := n; i < len(k.spill); i++ {
			k.spill[i] = nil
		}
		k.spill = k.spill[:n]
		k.spillOff = 0
	}
}

// jumpToSpill re-bases the wheels at the earliest spill event. Only legal
// when both wheels are empty of live events, so no boundary cascades are
// skipped for wheel-resident work.
func (k *Kernel) jumpToSpill() {
	for k.spillOff < len(k.spill) && k.spill[k.spillOff].state == evDead {
		k.recycleDead(k.spill[k.spillOff])
		k.spill[k.spillOff] = nil
		k.spillOff++
	}
	if k.spillOff >= len(k.spill) {
		return
	}
	t := k.spill[k.spillOff].when
	k.overBase = t &^ Time(wheelSpan-1)
	k.nearBase = t &^ Time(nearMask)
	k.refillSpill()
}

// slotNext returns the earliest live when in near slot i, or false when
// the slot holds no live events (in which case its dead chain is
// reclaimed and the occupancy bit cleared).
func (k *Kernel) slotNext(i int) (Time, bool) {
	best := MaxTime
	found := false
	for e := k.near[i].head; e != nil; e = e.next {
		if e.state == evScheduled && e.when < best {
			best = e.when
			found = true
		}
	}
	if !found {
		for e := k.near[i].head; e != nil; {
			next := e.next
			k.recycleDead(e)
			e = next
		}
		k.near[i].reset()
		k.nearOcc[i>>6] &^= 1 << (uint(i) & 63)
	}
	return best, found
}

// peek returns the time of the earliest live event, advancing wheel
// boundaries (but never the clock) as needed to find it.
func (k *Kernel) peek() (Time, bool) {
	for k.live > 0 {
		if k.nearLive > 0 {
			if k.nearBase > k.now {
				// Abnormal regime: a previous peek advanced the bases past
				// the clock, so the near window [now, nearBase+256) is wider
				// than one rotation and slots may mix cycles. Full scan.
				best := MaxTime
				for i := range k.near {
					if k.nearOcc[i>>6]&(1<<(uint(i)&63)) == 0 {
						continue
					}
					if t, ok := k.slotNext(i); ok && t < best {
						best = t
					}
				}
				if best != MaxTime {
					return best, true
				}
			} else {
				// Normal regime: every slot in [now, nearBase+256) holds a
				// single cycle; the first occupied slot with a live event is
				// the earliest. Bitmap scan with word skips.
				end := k.nearBase + nearSlots
				for c := k.now; c < end; {
					i := int(c) & nearMask
					word := k.nearOcc[i>>6] >> (uint(i) & 63)
					if word == 0 {
						c += Time(64 - (i & 63))
						continue
					}
					if tz := bits.TrailingZeros64(word); tz > 0 {
						c += Time(tz)
						continue
					}
					// The slot's cycle is c; the live counter says whether
					// anything here still fires without walking the chain.
					if k.nearCnt[i] > 0 {
						return c, true
					}
					k.slotNext(i) // dead-only slot: reclaim and clear the bit
					c++
				}
			}
		}
		if k.overLive > 0 {
			k.advanceBoundary()
			continue
		}
		if k.spillLive > 0 {
			k.jumpToSpill()
			continue
		}
		// Live counters said events exist but none were found: impossible
		// unless counters are corrupted.
		panic("sim: live-event accounting out of sync")
	}
	return 0, false
}

// extractBatch unlinks every live event at cycle `now` from its near slot
// into k.batch, ordered by seq. Dead events are reclaimed; live events at
// other cycles (abnormal-regime slot sharing) are kept in place.
func (k *Kernel) extractBatch() {
	i := int(k.now) & nearMask
	var keep slotList
	k.batch = k.batch[:0]
	for e := k.near[i].head; e != nil; {
		next := e.next
		switch {
		case e.state == evDead:
			k.recycleDead(e)
		case e.when == k.now:
			k.batch = append(k.batch, e)
		default:
			keep.append(e)
		}
		e = next
	}
	k.near[i] = keep
	if keep.head == nil {
		k.nearOcc[i>>6] &^= 1 << (uint(i) & 63)
	}
	k.nearCnt[i] -= int32(len(k.batch))
	k.nearLive -= len(k.batch)
	// Cross-level migrations (cascade, spill refill) can interleave
	// lower-seq events behind direct appends; restore FIFO order. The
	// common case is already sorted, so insertion sort is near-free.
	for a := 1; a < len(k.batch); a++ {
		e := k.batch[a]
		b := a
		for b > 0 && k.batch[b-1].seq > e.seq {
			k.batch[b] = k.batch[b-1]
			b--
		}
		k.batch[b] = e
	}
}

// requeueBatch returns unexecuted batch events to their slot after a Stop
// or Interrupt mid-batch.
func (k *Kernel) requeueBatch(from int) {
	for _, e := range k.batch[from:] {
		k.place(e)
	}
	k.batch = k.batch[:0]
}

// execBatch extracts and runs one batch of events at the current cycle.
// It reports whether the run should continue (false after Stop or an
// Interrupt error) and whether any event ran.
func (k *Kernel) execBatch() (cont, ran bool) {
	k.extractBatch()
	if len(k.batch) == 0 {
		return true, false
	}
	for bi, e := range k.batch {
		if k.Interrupt != nil {
			if k.sinceCheck++; k.sinceCheck >= interruptStride {
				k.sinceCheck = 0
				if err := k.Interrupt(); err != nil {
					k.intErr = err
					k.requeueBatch(bi)
					return false, true
				}
			}
		}
		fn, argFn, arg := e.fn, e.argFn, e.arg
		k.live--
		k.recycleFired(e)
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		k.Executed++
		if k.Probe != nil {
			k.Probe(k.now)
		}
		if k.stopped {
			k.requeueBatch(bi + 1)
			return false, true
		}
	}
	k.batch = k.batch[:0]
	return true, true
}

// hasLiveNow reports whether any live event remains at the current cycle.
func (k *Kernel) hasLiveNow() bool {
	i := int(k.now) & nearMask
	if k.nearBase <= k.now {
		// Normal regime: the slot holds only cycle now, so the live
		// counter answers without a chain walk.
		return k.nearCnt[i] > 0
	}
	for e := k.near[i].head; e != nil; e = e.next {
		if e.state == evScheduled && e.when == k.now {
			return true
		}
	}
	return false
}

// runCycle drains every event at the current cycle (including events they
// schedule at the same cycle), then fires EndCycle. It reports whether
// the run should continue and whether any event executed.
func (k *Kernel) runCycle() (cont, any bool) {
	for {
		cont, ran := k.execBatch()
		any = any || ran
		if !cont {
			return false, any
		}
		if ran && k.hasLiveNow() {
			continue
		}
		if k.EndCycle != nil {
			k.EndCycle(k.now)
			if k.hasLiveNow() {
				continue
			}
		}
		return true, any
	}
}

// popMinNow unlinks and returns the lowest-seq live event at the current
// cycle. The caller guarantees one exists.
func (k *Kernel) popMinNow() *Event {
	i := int(k.now) & nearMask
	var best, bestPrev *Event
	var prev *Event
	for e := k.near[i].head; e != nil; e = e.next {
		if e.state == evScheduled && e.when == k.now && (best == nil || e.seq < best.seq) {
			best, bestPrev = e, prev
		}
		prev = e
	}
	if best == nil {
		panic("sim: popMinNow on empty cycle")
	}
	if bestPrev == nil {
		k.near[i].head = best.next
	} else {
		bestPrev.next = best.next
	}
	if k.near[i].tail == best {
		k.near[i].tail = bestPrev
	}
	if k.near[i].head == nil {
		k.nearOcc[i>>6] &^= 1 << (uint(i) & 63)
	}
	k.nearCnt[i]--
	k.nearLive--
	return best
}

// Step executes the single next event, if any, and reports whether one
// ran. Step does not fire the EndCycle hook: single-stepping interleaves
// events within a cycle, so there is no batch boundary to flush at.
func (k *Kernel) Step() bool {
	t, ok := k.peek()
	if !ok {
		return false
	}
	k.now = t
	e := k.popMinNow()
	fn, argFn, arg := e.fn, e.argFn, e.arg
	k.live--
	k.recycleFired(e)
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
	k.Executed++
	if k.Probe != nil {
		k.Probe(k.now)
	}
	return true
}

// Run executes events until the queue drains, Stop is called, the
// simulated clock passes limit, or the Interrupt hook reports an error. It
// returns the time of the last executed event. Each cycle's events run as
// one batch, followed by the EndCycle hook (if installed).
func (k *Kernel) Run(limit Time) Time {
	k.stopped = false
	k.sinceCheck = 0
	for {
		t, ok := k.peek()
		if !ok && k.EndCycle != nil {
			// The queue drained, but the EndCycle hook may hold deferred
			// work (e.g. transmits buffered by single-stepped events).
			// Give it one chance to schedule before concluding.
			k.EndCycle(k.now)
			t, ok = k.peek()
		}
		if !ok || t > limit {
			break
		}
		prev := k.now
		k.now = t
		cont, any := k.runCycle()
		if !any {
			// An interrupt fired before the cycle's first event: report
			// the time of the last event that actually executed.
			k.now = prev
		}
		if !cont {
			break
		}
	}
	return k.now
}

// RunAll executes events until the queue drains or Stop is called.
func (k *Kernel) RunAll() Time { return k.Run(MaxTime) }
