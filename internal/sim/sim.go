// Package sim provides the discrete-event simulation kernel used by the
// flexible-snooping machine model.
//
// The kernel is a single-threaded event queue keyed by (cycle, sequence
// number). Events scheduled for the same cycle execute in the order they
// were scheduled, which makes every simulation fully deterministic for a
// fixed configuration and seed.
//
// Events are slab-allocated and recycled through a kernel-owned free list:
// steady-state simulation schedules millions of events without growing the
// heap. Because a fired event's storage is reused, Schedule returns a
// Handle (pointer + generation) rather than a raw pointer; cancelling a
// stale handle is a safe no-op.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, measured in processor cycles.
type Time uint64

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxUint64)

// Event is a scheduled callback. Its storage is owned by the kernel and
// recycled after the event fires; hold a Handle, not an *Event.
type Event struct {
	when Time
	seq  uint64

	// Exactly one of fn / argFn is set. The argFn+arg form lets hot
	// callers schedule a package-level function with a pooled argument,
	// avoiding a closure allocation per event.
	fn    func()
	argFn func(any)
	arg   any

	index int    // heap index; -1 once popped or cancelled
	gen   uint32 // bumped on recycle; validates Handles
}

// When returns the cycle at which the event fires.
func (e *Event) When() Time { return e.when }

// Handle identifies one scheduled firing of an event. The zero Handle is
// valid and refers to nothing. A Handle goes stale once its event fires,
// is cancelled, or the kernel recycles the storage; Cancel on a stale
// handle is a no-op.
type Handle struct {
	e   *Event
	gen uint32
}

// Pending reports whether the handle still refers to a scheduled event.
func (h Handle) Pending() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.index >= 0
}

// When returns the firing cycle of a pending handle, or 0 for a stale one.
func (h Handle) When() Time {
	if !h.Pending() {
		return 0
	}
	return h.e.when
}

// eventQueue implements heap.Interface over pending events.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// eventSlabSize is how many events one slab allocation provides. Slabs
// amortize allocator and GC pressure: a draining simulation reaches a
// steady state where every Schedule is served from the free list.
const eventSlabSize = 256

// interruptStride is how many executed events pass between Interrupt
// polls: rare enough to cost nothing, frequent enough that cancellation
// latency stays in the microsecond range.
const interruptStride = 64

// Kernel is a discrete-event simulator.
//
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventQueue
	free    []*Event
	stopped bool
	intErr  error

	// Executed counts events that have run to completion.
	Executed uint64

	// MaxPending is the event queue's high-water mark.
	MaxPending int

	// Probe, when non-nil, observes the kernel after every executed
	// event — the telemetry layer's hook for interval sampling. A nil
	// check per event is the only cost when telemetry is disabled. The
	// probe must not schedule events or otherwise perturb the run.
	Probe func(now Time)

	// Interrupt, when non-nil, is polled between events (every
	// interruptStride executions). A non-nil return makes Run stop
	// before the next event; the error is kept and reported by Err.
	// The poll never perturbs simulated time, so a run that is not
	// interrupted is cycle-identical to one with no Interrupt installed.
	Interrupt func() error
}

// NewKernel returns an empty kernel at cycle zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Err returns the error that interrupted Run, if any.
func (k *Kernel) Err() error { return k.intErr }

// alloc takes an event from the free list, growing it by one slab when
// empty.
func (k *Kernel) alloc() *Event {
	if len(k.free) == 0 {
		slab := make([]Event, eventSlabSize)
		for i := range slab {
			k.free = append(k.free, &slab[i])
		}
	}
	e := k.free[len(k.free)-1]
	k.free = k.free[:len(k.free)-1]
	return e
}

// recycle returns a fired or cancelled event to the free list, bumping its
// generation so stale Handles cannot reach the next occupant.
func (k *Kernel) recycle(e *Event) {
	e.fn = nil
	e.argFn = nil
	e.arg = nil
	e.gen++
	k.free = append(k.free, e)
}

func (k *Kernel) push(e *Event, at Time) Handle {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, k.now))
	}
	e.when = at
	e.seq = k.seq
	k.seq++
	heap.Push(&k.queue, e)
	if len(k.queue) > k.MaxPending {
		k.MaxPending = len(k.queue)
	}
	return Handle{e: e, gen: e.gen}
}

// Schedule runs fn at the given absolute cycle. Scheduling in the past
// (before Now) panics: it would silently corrupt causality.
func (k *Kernel) Schedule(at Time, fn func()) Handle {
	if fn == nil {
		panic("sim: nil event function")
	}
	e := k.alloc()
	e.fn = fn
	return k.push(e, at)
}

// ScheduleArg runs fn(arg) at the given absolute cycle. When fn is a
// package-level function value and arg is a pooled pointer, the call
// allocates nothing: this is the hot-path alternative to wrapping both in
// a fresh closure per event.
func (k *Kernel) ScheduleArg(at Time, fn func(any), arg any) Handle {
	if fn == nil {
		panic("sim: nil event function")
	}
	e := k.alloc()
	e.argFn = fn
	e.arg = arg
	return k.push(e, at)
}

// After runs fn delay cycles from now.
func (k *Kernel) After(delay Time, fn func()) Handle {
	return k.Schedule(k.now+delay, fn)
}

// AfterArg runs fn(arg) delay cycles from now (see ScheduleArg).
func (k *Kernel) AfterArg(delay Time, fn func(any), arg any) Handle {
	return k.ScheduleArg(k.now+delay, fn, arg)
}

// Cancel prevents a pending event from running. Cancelling a stale handle
// (already fired, already cancelled, or zero) is a no-op.
func (k *Kernel) Cancel(h Handle) {
	if !h.Pending() {
		return
	}
	heap.Remove(&k.queue, h.e.index)
	k.recycle(h.e)
}

// Pending reports the number of events waiting to run.
func (k *Kernel) Pending() int { return k.queue.Len() }

// FreeEvents reports the free-list depth (observability for the slab
// allocator; steady-state simulations stop growing it).
func (k *Kernel) FreeEvents() int { return len(k.free) }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, if any, and reports whether one ran.
func (k *Kernel) Step() bool {
	if k.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	k.now = e.when
	fn, argFn, arg := e.fn, e.argFn, e.arg
	k.recycle(e)
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
	k.Executed++
	if k.Probe != nil {
		k.Probe(k.now)
	}
	return true
}

// Run executes events until the queue drains, Stop is called, the
// simulated clock passes limit, or the Interrupt hook reports an error. It
// returns the time of the last executed event.
func (k *Kernel) Run(limit Time) Time {
	k.stopped = false
	sinceCheck := uint64(0)
	for !k.stopped && k.queue.Len() > 0 {
		if next := k.queue[0].when; next > limit {
			break
		}
		if k.Interrupt != nil {
			if sinceCheck++; sinceCheck >= interruptStride {
				sinceCheck = 0
				if err := k.Interrupt(); err != nil {
					k.intErr = err
					break
				}
			}
		}
		k.Step()
	}
	return k.now
}

// RunAll executes events until the queue drains or Stop is called.
func (k *Kernel) RunAll() Time { return k.Run(MaxTime) }
