package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunInOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		k.Schedule(at, func() { got = append(got, at) })
	}
	k.RunAll()
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSameCycleFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events ran out of order: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	k := NewKernel()
	var fired Time
	k.Schedule(100, func() {
		k.After(50, func() { fired = k.Now() })
	})
	k.RunAll()
	if fired != 150 {
		t.Errorf("After(50) from t=100 fired at %d, want 150", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.Schedule(50, func() {})
	})
	k.RunAll()
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event function did not panic")
		}
	}()
	NewKernel().Schedule(0, nil)
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	e := k.Schedule(10, func() { ran = true })
	k.Cancel(e)
	k.RunAll()
	if ran {
		t.Error("cancelled event still ran")
	}
	// Double-cancel and cancel-after-run must be no-ops.
	k.Cancel(e)
	e2 := k.Schedule(k.Now()+1, func() {})
	k.RunAll()
	k.Cancel(e2)
}

func TestCancelZeroHandle(t *testing.T) {
	NewKernel().Cancel(Handle{}) // must not panic
}

func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	// After an event fires, its storage is recycled; a stale handle must
	// not be able to cancel the next occupant.
	k := NewKernel()
	h := k.Schedule(1, func() {})
	k.RunAll()
	if h.Pending() {
		t.Fatal("handle still pending after its event ran")
	}
	ran := false
	h2 := k.Schedule(k.Now()+1, func() { ran = true })
	k.Cancel(h) // stale: must not touch the recycled slot
	k.RunAll()
	if !ran {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if h2.Pending() {
		t.Fatal("fired event's handle still pending")
	}
}

func TestEventStorageIsRecycled(t *testing.T) {
	// A schedule/run steady state must stop allocating: the free list
	// serves every request once primed.
	k := NewKernel()
	for i := 0; i < 10_000; i++ {
		k.Schedule(k.Now(), func() {})
		k.Step()
	}
	if free := k.FreeEvents(); free > 2*eventSlabSize {
		t.Errorf("free list grew to %d events; recycling is not steady-state", free)
	}
}

func TestScheduleArg(t *testing.T) {
	k := NewKernel()
	var got []int
	fn := func(a any) { got = append(got, a.(int)) }
	k.ScheduleArg(5, fn, 1)
	k.AfterArg(2, fn, 2)
	k.RunAll()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("ScheduleArg order/args wrong: %v", got)
	}
}

func TestInterruptStopsRun(t *testing.T) {
	k := NewKernel()
	stop := false
	stopErr := errTest("interrupted")
	k.Interrupt = func() error {
		if stop {
			return stopErr
		}
		return nil
	}
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 1000 {
			stop = true
		}
		k.After(1, tick)
	}
	k.Schedule(0, tick)
	k.RunAll()
	if k.Err() != stopErr {
		t.Fatalf("Err = %v, want %v", k.Err(), stopErr)
	}
	// The interrupt is polled every interruptStride events, so the run
	// must stop promptly after the flag flips.
	if count < 1000 || count > 1000+interruptStride {
		t.Fatalf("interrupt was not prompt: %d events ran", count)
	}
	if k.Pending() == 0 {
		t.Fatal("interrupted run drained the queue")
	}
}

func TestNilInterruptIdenticalSchedule(t *testing.T) {
	// An installed-but-never-firing Interrupt must not change what runs.
	run := func(withInterrupt bool) (times []Time, executed uint64) {
		k := NewKernel()
		if withInterrupt {
			k.Interrupt = func() error { return nil }
		}
		for i := 0; i < 300; i++ {
			k.Schedule(Time(i*3%71), func() { times = append(times, k.Now()) })
		}
		k.RunAll()
		return times, k.Executed
	}
	a, ea := run(false)
	b, eb := run(true)
	if ea != eb || len(a) != len(b) {
		t.Fatalf("interrupt perturbed execution: %d/%d events", ea, eb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d at %d vs %d", i, a[i], b[i])
		}
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestRunLimit(t *testing.T) {
	k := NewKernel()
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.Schedule(at, func() { ran = append(ran, at) })
	}
	k.Run(25)
	if len(ran) != 2 {
		t.Fatalf("Run(25) executed %d events, want 2", len(ran))
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	k.RunAll()
	if len(ran) != 4 {
		t.Fatalf("RunAll left events behind: ran %d", len(ran))
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 0; i < 10; i++ {
		k.Schedule(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run(MaxTime)
	if count != 3 {
		t.Errorf("Stop did not halt run: executed %d events", count)
	}
	if k.Pending() != 7 {
		t.Errorf("Pending = %d after Stop, want 7", k.Pending())
	}
}

func TestExecutedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 5; i++ {
		k.Schedule(Time(i), func() {})
	}
	k.RunAll()
	if k.Executed != 5 {
		t.Errorf("Executed = %d, want 5", k.Executed)
	}
}

func TestCascadingEvents(t *testing.T) {
	// Events scheduled by events must run, including chains.
	k := NewKernel()
	depth := 0
	var descend func()
	descend = func() {
		depth++
		if depth < 100 {
			k.After(1, descend)
		}
	}
	k.Schedule(0, descend)
	end := k.RunAll()
	if depth != 100 {
		t.Errorf("chain depth = %d, want 100", depth)
	}
	if end != 99 {
		t.Errorf("final time = %d, want 99", end)
	}
}

// TestPropertyOrdering checks, for random event sets, that execution order
// is exactly the (time, insertion) sort of the input.
func TestPropertyOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) > 200 {
			times = times[:200]
		}
		k := NewKernel()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, raw := range times {
			at := Time(raw)
			i := i
			k.Schedule(at, func() { got = append(got, rec{at, i}) })
		}
		k.RunAll()
		want := make([]rec, 0, len(times))
		for i, raw := range times {
			want = append(want, rec{Time(raw), i})
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	k := NewKernel()
	var events []Handle
	ran := map[int]bool{}
	for i := 0; i < 500; i++ {
		i := i
		events = append(events, k.Schedule(Time(rng.Intn(1000)), func() { ran[i] = true }))
	}
	cancelled := map[int]bool{}
	for i := 0; i < 250; i++ {
		j := rng.Intn(len(events))
		k.Cancel(events[j])
		cancelled[j] = true
	}
	k.RunAll()
	for i := range events {
		if cancelled[i] && ran[i] {
			t.Fatalf("event %d ran despite cancellation", i)
		}
		if !cancelled[i] && !ran[i] {
			t.Fatalf("event %d never ran", i)
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 1000; j++ {
			k.Schedule(Time(j%97), func() {})
		}
		k.RunAll()
	}
}
