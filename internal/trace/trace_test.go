package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	streams := [][]workload.Op{
		{{Compute: 3, Addr: 0x100}, {Compute: 0, Addr: 0x200, Store: true}},
		{},
		{{Compute: 7, Addr: 1<<40 + 5, Store: true}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, streams); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(streams) {
		t.Fatalf("got %d streams, want %d", len(got), len(streams))
	}
	for i := range streams {
		if len(got[i]) != len(streams[i]) {
			t.Fatalf("stream %d: %d ops, want %d", i, len(got[i]), len(streams[i]))
		}
		for j := range streams[i] {
			if got[i][j] != streams[i][j] {
				t.Errorf("stream %d op %d: %+v, want %+v", i, j, got[i][j], streams[i][j])
			}
		}
	}
}

func TestRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, [][]workload.Op{{{Addr: 1}, {Addr: 2}}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{2, 7, 9, len(data) - 3} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestRejectsStoreBitCollision(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, [][]workload.Op{{{Addr: cache.LineAddr(1) << 63}}})
	if err == nil {
		t.Error("address colliding with store flag accepted")
	}
}

func TestRecordMaterializesGenerator(t *testing.T) {
	p, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	ops := Record(workload.NewGenerator(p, 0, 100, 1))
	if len(ops) != 100 {
		t.Fatalf("recorded %d ops, want 100", len(ops))
	}
	// Recording is repeatable.
	again := Record(workload.NewGenerator(p, 0, 100, 1))
	for i := range ops {
		if ops[i] != again[i] {
			t.Fatalf("op %d differs between recordings", i)
		}
	}
}

func TestTraceDrivenEquivalence(t *testing.T) {
	// A trace written from a generator and replayed via SliceSource must
	// deliver the identical stream.
	p, _ := workload.ByName("lu")
	ops := Record(workload.NewGenerator(p, 2, 250, 7))
	var buf bytes.Buffer
	if err := Write(&buf, [][]workload.Op{ops}); err != nil {
		t.Fatal(err)
	}
	streams, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := workload.NewSliceSource(streams[0])
	gen := workload.NewGenerator(p, 2, 250, 7)
	for i := 0; ; i++ {
		a, okA := replay.Next()
		b, okB := gen.Next()
		if okA != okB {
			t.Fatalf("stream lengths diverge at %d", i)
		}
		if !okA {
			break
		}
		if a != b {
			t.Fatalf("op %d: replay %+v vs generator %+v", i, a, b)
		}
	}
}

// Property: arbitrary op slices round-trip exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw []uint64, computes []uint32) bool {
		var ops []workload.Op
		for i, r := range raw {
			c := uint32(0)
			if i < len(computes) {
				c = computes[i]
			}
			ops = append(ops, workload.Op{
				Compute: c,
				Addr:    cache.LineAddr(r &^ (1 << 63)),
				Store:   r&1 == 1,
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, [][]workload.Op{ops}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != 1 || len(got[0]) != len(ops) {
			return false
		}
		for i := range ops {
			if got[0][i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// FuzzRead exercises the trace parser with arbitrary bytes: it must never
// panic, and anything it accepts must round-trip through Write/Read.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	_ = Write(&seed, [][]workload.Op{
		{{Compute: 3, Addr: 0x100}, {Compute: 0, Addr: 0x200, Store: true}},
		{},
	})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("FSTR junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		streams, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, streams); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", err)
		}
		if len(again) != len(streams) {
			t.Fatalf("round trip changed stream count: %d -> %d", len(streams), len(again))
		}
		for i := range streams {
			if len(again[i]) != len(streams[i]) {
				t.Fatalf("round trip changed stream %d length", i)
			}
		}
	})
}
