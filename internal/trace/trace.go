// Package trace serializes per-core memory reference streams to a compact
// binary format, enabling the trace-driven simulation mode the paper used
// for the SPEC workloads (Section 5.1): the same trace is replayed under
// every snooping algorithm, so comparisons are exact.
//
// Format (little-endian):
//
//	magic   uint32  "FSTR"
//	version uint16
//	streams uint16
//	per stream: count uint64, then count records of
//	    compute uint32
//	    addr    uint64   (bit 63: store flag)
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/workload"
)

// ErrBadTrace is returned (wrapped) by Read for any malformed, truncated
// or unsupported trace; match it with errors.Is.
var ErrBadTrace = errors.New("trace: bad trace")

const (
	magic   = uint32(0x46535452) // "FSTR"
	version = uint16(1)
	// storeBit marks store references in the packed address word.
	storeBit = uint64(1) << 63
)

// Write serializes one stream per core.
func Write(w io.Writer, streams [][]workload.Op) error {
	if len(streams) > 0xFFFF {
		return fmt.Errorf("trace: %d streams exceed the format limit", len(streams))
	}
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(streams))); err != nil {
		return err
	}
	for _, ops := range streams {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(ops))); err != nil {
			return err
		}
		for _, op := range ops {
			packed := uint64(op.Addr)
			if packed&storeBit != 0 {
				return fmt.Errorf("trace: address %#x collides with the store flag", op.Addr)
			}
			if op.Store {
				packed |= storeBit
			}
			if err := binary.Write(bw, binary.LittleEndian, op.Compute); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, packed); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([][]workload.Op, error) {
	br := bufio.NewReader(r)
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadTrace, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadTrace, m)
	}
	var v uint16
	if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrBadTrace, err)
	}
	if v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	var nstreams uint16
	if err := binary.Read(br, binary.LittleEndian, &nstreams); err != nil {
		return nil, fmt.Errorf("%w: reading stream count: %v", ErrBadTrace, err)
	}
	streams := make([][]workload.Op, nstreams)
	for i := range streams {
		var count uint64
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("%w: stream %d count: %v", ErrBadTrace, i, err)
		}
		const sane = 1 << 32
		if count > sane {
			return nil, fmt.Errorf("%w: stream %d claims %d ops", ErrBadTrace, i, count)
		}
		// Never preallocate by the untrusted count: a hostile header
		// could demand gigabytes. Seed a small capacity and let append
		// grow as records actually parse.
		prealloc := count
		if prealloc > 4096 {
			prealloc = 4096
		}
		ops := make([]workload.Op, 0, prealloc)
		for j := uint64(0); j < count; j++ {
			var compute uint32
			var packed uint64
			if err := binary.Read(br, binary.LittleEndian, &compute); err != nil {
				return nil, fmt.Errorf("%w: stream %d op %d: %v", ErrBadTrace, i, j, err)
			}
			if err := binary.Read(br, binary.LittleEndian, &packed); err != nil {
				return nil, fmt.Errorf("%w: stream %d op %d: %v", ErrBadTrace, i, j, err)
			}
			ops = append(ops, workload.Op{
				Compute: compute,
				Addr:    cache.LineAddr(packed &^ storeBit),
				Store:   packed&storeBit != 0,
			})
		}
		streams[i] = ops
	}
	return streams, nil
}

// Record materializes a generator's stream (for writing a trace).
func Record(src workload.Source) []workload.Op {
	var ops []workload.Op
	for {
		op, ok := src.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}
