// Package workload synthesizes the memory reference streams the paper's
// evaluation runs: the 11 SPLASH-2 applications, SPECjbb 2000 and SPECweb
// 2005 (Section 5.1).
//
// The real benchmarks (and the Simics traces the paper used for the SPEC
// workloads) are unavailable, so each workload is modelled by a generator
// whose knobs are the properties that actually drive the snooping
// algorithms' behaviour: how often a read miss finds a cache supplier, how
// far away it is (uniform around the ring, as the requesting core is
// arbitrary), the read/write mix, and the working-set pressure on caches
// and predictors. The per-application profiles are calibrated to the
// paper's own measurements (Figure 11: SPLASH-2/SPECweb find a supplier
// about once per four misses; SPECjbb almost never does).
package workload

import (
	"fmt"
	"math/rand"

	"flexsnoop/internal/cache"
)

// Op is one step of a core's instruction stream: Compute non-memory
// instructions followed by one memory reference.
type Op struct {
	Compute uint32
	Addr    cache.LineAddr
	Store   bool
}

// Source produces a core's reference stream.
type Source interface {
	// Next returns the next operation; ok=false ends the stream.
	Next() (op Op, ok bool)
}

// Class groups profiles the way the paper reports them.
type Class int

const (
	// Splash2 is the scientific shared-memory suite (32 threads).
	Splash2 Class = iota
	// SPECjbb is the Java middleware workload (little sharing).
	SPECjbb
	// SPECweb is the web-server workload (moderate sharing).
	SPECweb
)

func (c Class) String() string {
	switch c {
	case Splash2:
		return "SPLASH-2"
	case SPECjbb:
		return "SPECjbb"
	case SPECweb:
		return "SPECweb"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Profile parameterizes a synthetic workload.
type Profile struct {
	Name  string
	Class Class

	// ComputeMean is the mean number of non-memory instructions between
	// memory references (geometric).
	ComputeMean float64
	// StoreFrac is the fraction of references that are stores.
	StoreFrac float64

	// PrivateLines is each core's private working set, in cache lines.
	PrivateLines int
	// PrivateHotFrac of private references hit the first PrivateHotLines
	// of the region (temporal locality; real programs re-touch a small
	// hot set, so the cold-miss tail decays quickly).
	PrivateHotLines int
	PrivateHotFrac  float64
	// SharedLines is the size of the globally shared region.
	SharedLines int
	// SharedFrac is the probability a reference targets the shared
	// region; shared data is what creates cache-to-cache transfers.
	SharedFrac float64
	// HotFrac of shared references hit a small hot subset (HotLines),
	// concentrating producer-consumer and lock traffic.
	HotLines int
	HotFrac  float64
	// MigratorySeq makes shared accesses arrive in read-modify-write
	// bursts (migratory sharing) with the given expected burst length;
	// zero disables.
	MigratorySeq int
}

// Validate reports the first profile error.
func (p Profile) Validate() error {
	switch {
	case p.ComputeMean < 0:
		return fmt.Errorf("workload %s: negative compute mean", p.Name)
	case p.PrivateLines < 1:
		return fmt.Errorf("workload %s: need a private working set", p.Name)
	case p.SharedFrac < 0 || p.SharedFrac > 1:
		return fmt.Errorf("workload %s: shared fraction %v out of range", p.Name, p.SharedFrac)
	case p.SharedFrac > 0 && p.SharedLines < 1:
		return fmt.Errorf("workload %s: shared accesses but no shared lines", p.Name)
	case p.StoreFrac < 0 || p.StoreFrac > 1:
		return fmt.Errorf("workload %s: store fraction %v out of range", p.Name, p.StoreFrac)
	case p.HotFrac < 0 || p.HotFrac > 1:
		return fmt.Errorf("workload %s: hot fraction %v out of range", p.Name, p.HotFrac)
	case p.HotFrac > 0 && p.HotLines < 1:
		return fmt.Errorf("workload %s: hot accesses but no hot lines", p.Name)
	case p.PrivateHotFrac < 0 || p.PrivateHotFrac > 1:
		return fmt.Errorf("workload %s: private hot fraction %v out of range", p.Name, p.PrivateHotFrac)
	case p.PrivateHotFrac > 0 && (p.PrivateHotLines < 1 || p.PrivateHotLines > p.PrivateLines):
		return fmt.Errorf("workload %s: private hot lines %d out of range", p.Name, p.PrivateHotLines)
	}
	return nil
}

// Address-space layout: each core's private region and the shared region
// occupy disjoint line-address ranges. Within a region, line indices are
// scattered across a 21-bit span by a Fibonacci hash: real applications
// touch lines spread over many pages, and a dense contiguous layout would
// artificially collapse the upper index fields of the Bloom-filter
// predictors (which consume line-address bits 0-20).
const (
	privateStride = cache.LineAddr(1) << 24
	sharedBase    = cache.LineAddr(1) << 40
	hotBase       = cache.LineAddr(1) << 44

	spreadMult = 2654435761 // Knuth's multiplicative hash constant
	spreadMask = 1<<21 - 1
)

// spread maps a dense line index to a scattered 21-bit line offset. It is
// injective for idx < 2^21 (the multiplier is odd).
func spread(idx int) cache.LineAddr {
	return cache.LineAddr(uint64(idx)*spreadMult) & spreadMask
}

// Generator is a deterministic Source for one core.
type Generator struct {
	p     Profile
	rng   *rand.Rand
	left  uint64
	burst int            // remaining ops of a migratory burst
	baddr cache.LineAddr // burst target
	priv  cache.LineAddr // this core's private region base
}

// NewGenerator builds the stream for one global core index. ops bounds the
// stream length. Streams with the same (profile, core, seed) are
// identical.
func NewGenerator(p Profile, globalCore int, ops uint64, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Generator{
		p:    p,
		rng:  rand.New(rand.NewSource(seed ^ int64(globalCore+1)*0x5851F42D4C957F2D)),
		left: ops,
		priv: privateStride * cache.LineAddr(globalCore+1),
	}
}

// Next produces the next operation.
func (g *Generator) Next() (Op, bool) {
	if g.left == 0 {
		return Op{}, false
	}
	g.left--

	compute := uint32(0)
	if g.p.ComputeMean > 0 {
		// Geometric gap with the configured mean.
		pStop := 1 / (g.p.ComputeMean + 1)
		for g.rng.Float64() >= pStop && compute < 10*uint32(g.p.ComputeMean)+10 {
			compute++
		}
	}

	// Continue a migratory burst: a read-modify-write sequence on one
	// shared line.
	if g.burst > 0 {
		g.burst--
		store := g.burst == 0 // final access of the burst writes
		return Op{Compute: compute, Addr: g.baddr, Store: store}, true
	}

	if g.rng.Float64() < g.p.SharedFrac {
		addr := g.sharedAddr()
		if g.p.MigratorySeq > 1 && g.rng.Float64() < 0.5 {
			g.burst = 1 + g.rng.Intn(g.p.MigratorySeq)
			g.baddr = addr
			return Op{Compute: compute, Addr: addr, Store: false}, true
		}
		return Op{Compute: compute, Addr: addr, Store: g.rng.Float64() < g.p.StoreFrac}, true
	}

	span := g.p.PrivateLines
	if g.p.PrivateHotFrac > 0 && g.rng.Float64() < g.p.PrivateHotFrac {
		span = g.p.PrivateHotLines
	}
	addr := g.priv + spread(g.rng.Intn(span))
	return Op{Compute: compute, Addr: addr, Store: g.rng.Float64() < g.p.StoreFrac}, true
}

func (g *Generator) sharedAddr() cache.LineAddr {
	if g.p.HotFrac > 0 && g.rng.Float64() < g.p.HotFrac {
		return hotBase + spread(g.rng.Intn(g.p.HotLines))
	}
	return sharedBase + spread(g.rng.Intn(g.p.SharedLines))
}

// SliceSource replays a fixed slice of operations (trace-driven mode).
type SliceSource struct {
	ops []Op
	i   int
}

// NewSliceSource wraps a recorded operation list.
func NewSliceSource(ops []Op) *SliceSource { return &SliceSource{ops: ops} }

// Next returns the next recorded operation.
func (s *SliceSource) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		return Op{}, false
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}
