package workload

import (
	"errors"
	"fmt"
)

// Profiles returns every named workload of the evaluation: the 11 SPLASH-2
// applications run in Section 5.1 (all except Volrend), SPECjbb and
// SPECweb.
//
// Calibration targets, from the paper's own measurements:
//   - SPLASH-2: read misses that reach the ring usually find a cache
//     supplier (Figure 11's perfect predictor sees ~4 true negatives per
//     true positive, i.e. the supplier sits ~5 nodes away), so Lazy snoops
//     ~4-5 CMPs per request (Figure 6).
//   - SPECjbb: threads share little; most ring requests find no supplier
//     and go to memory, so Lazy's snoop count approaches 7 (Figure 6).
//   - SPECweb: in between, with substantial sharing but also significant
//     memory traffic.
func Profiles() []Profile {
	var all []Profile
	all = append(all, Splash2Profiles()...)
	all = append(all, SPECjbbProfile(), SPECwebProfile())
	return all
}

// Splash2Profiles returns the 11 SPLASH-2 application profiles.
func Splash2Profiles() []Profile {
	return []Profile{
		{Name: "barnes", Class: Splash2, ComputeMean: 70, StoreFrac: 0.28,
			PrivateLines: 260, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 700, SharedFrac: 0.203,
			HotLines: 64, HotFrac: 0.10, MigratorySeq: 3},
		{Name: "cholesky", Class: Splash2, ComputeMean: 80, StoreFrac: 0.25,
			PrivateLines: 420, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 1000, SharedFrac: 0.162,
			HotLines: 32, HotFrac: 0.08, MigratorySeq: 2},
		{Name: "fft", Class: Splash2, ComputeMean: 60, StoreFrac: 0.32,
			PrivateLines: 1100, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 1500, SharedFrac: 0.229,
			HotLines: 16, HotFrac: 0.04},
		{Name: "fmm", Class: Splash2, ComputeMean: 90, StoreFrac: 0.24,
			PrivateLines: 300, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 800, SharedFrac: 0.162,
			HotLines: 48, HotFrac: 0.10, MigratorySeq: 3},
		{Name: "lu", Class: Splash2, ComputeMean: 65, StoreFrac: 0.30,
			PrivateLines: 280, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 1100, SharedFrac: 0.203,
			HotLines: 64, HotFrac: 0.18},
		{Name: "ocean", Class: Splash2, ComputeMean: 55, StoreFrac: 0.33,
			PrivateLines: 1300, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 1400, SharedFrac: 0.229,
			HotLines: 32, HotFrac: 0.06},
		{Name: "radiosity", Class: Splash2, ComputeMean: 85, StoreFrac: 0.26,
			PrivateLines: 320, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 900, SharedFrac: 0.189,
			HotLines: 96, HotFrac: 0.16, MigratorySeq: 3},
		{Name: "radix", Class: Splash2, ComputeMean: 50, StoreFrac: 0.36,
			PrivateLines: 1150, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 1600, SharedFrac: 0.257,
			HotLines: 16, HotFrac: 0.05},
		{Name: "raytrace", Class: Splash2, ComputeMean: 95, StoreFrac: 0.12,
			PrivateLines: 380, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 1000, SharedFrac: 0.176,
			HotLines: 64, HotFrac: 0.12},
		{Name: "water-ns", Class: Splash2, ComputeMean: 100, StoreFrac: 0.24,
			PrivateLines: 180, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 650, SharedFrac: 0.135,
			HotLines: 48, HotFrac: 0.10, MigratorySeq: 4},
		{Name: "water-sp", Class: Splash2, ComputeMean: 105, StoreFrac: 0.23,
			PrivateLines: 170, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 600, SharedFrac: 0.121,
			HotLines: 48, HotFrac: 0.09, MigratorySeq: 4},
	}
}

// SPECjbbProfile returns the SPECjbb 2000 profile: a large per-warehouse
// private working set that overwhelms the L2, and almost no sharing — the
// paper observes "threads do not share much data, and many requests go to
// memory".
func SPECjbbProfile() Profile {
	return Profile{
		Name: "specjbb", Class: SPECjbb, ComputeMean: 90, StoreFrac: 0.30,
		PrivateLines: 40000, PrivateHotLines: 512, PrivateHotFrac: 0.3, SharedLines: 2500, SharedFrac: 0.03,
		HotLines: 32, HotFrac: 0.20,
	}
}

// SPECwebProfile returns the SPECweb 2005 e-commerce profile: moderate
// sharing (session and cache structures) over a sizeable private set.
func SPECwebProfile() Profile {
	return Profile{
		Name: "specweb", Class: SPECweb, ComputeMean: 80, StoreFrac: 0.25,
		PrivateLines: 6500, PrivateHotLines: 96, PrivateHotFrac: 0.75, SharedLines: 1200, SharedFrac: 0.108,
		HotLines: 64, HotFrac: 0.25, MigratorySeq: 2,
	}
}

// ErrUnknown is returned (wrapped) by ByName for unrecognized profile
// names; match it with errors.Is.
var ErrUnknown = errors.New("workload: unknown profile")

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("%w %q", ErrUnknown, name)
}

// ClassProfiles returns the profiles of one reporting class.
func ClassProfiles(c Class) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Class == c {
			out = append(out, p)
		}
	}
	return out
}

// CoresPerCMP returns the per-CMP core count the paper uses for this
// workload class (Section 5.1: 4 for SPLASH-2, 1 for the SPEC workloads).
func (c Class) CoresPerCMP() int {
	if c == Splash2 {
		return 4
	}
	return 1
}
