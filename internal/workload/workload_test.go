package workload

import (
	"errors"
	"testing"
	"testing/quick"

	"flexsnoop/internal/cache"
)

func TestAllProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 13 {
		t.Fatalf("got %d profiles, want 13 (11 SPLASH-2 + 2 SPEC)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if got := len(Splash2Profiles()); got != 11 {
		t.Errorf("SPLASH-2 profiles = %d, want 11", got)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("fft")
	if err != nil || p.Name != "fft" {
		t.Errorf("ByName(fft) = %v, %v", p.Name, err)
	}
	if _, err := ByName("volrend"); err == nil {
		t.Error("ByName must reject volrend (excluded in Section 5.1)")
	}
}

func TestClassPartitions(t *testing.T) {
	if got := len(ClassProfiles(Splash2)); got != 11 {
		t.Errorf("SPLASH-2 class has %d profiles, want 11", got)
	}
	if got := len(ClassProfiles(SPECjbb)); got != 1 {
		t.Errorf("SPECjbb class has %d profiles, want 1", got)
	}
	if got := len(ClassProfiles(SPECweb)); got != 1 {
		t.Errorf("SPECweb class has %d profiles, want 1", got)
	}
	// Section 5.1: 4 cores/CMP for SPLASH-2, 1 for SPEC.
	if Splash2.CoresPerCMP() != 4 || SPECjbb.CoresPerCMP() != 1 || SPECweb.CoresPerCMP() != 1 {
		t.Error("CoresPerCMP does not match Section 5.1")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ByName("barnes")
	a := NewGenerator(p, 3, 500, 42)
	b := NewGenerator(p, 3, 500, 42)
	for i := 0; i < 500; i++ {
		opA, okA := a.Next()
		opB, okB := b.Next()
		if okA != okB || opA != opB {
			t.Fatalf("op %d diverged: %+v vs %+v", i, opA, opB)
		}
	}
	if _, ok := a.Next(); ok {
		t.Error("stream did not end at the requested length")
	}
}

func TestGeneratorSeedsAndCoresDiffer(t *testing.T) {
	p, _ := ByName("fft")
	same := 0
	a := NewGenerator(p, 0, 200, 1)
	b := NewGenerator(p, 1, 200, 1)
	for i := 0; i < 200; i++ {
		opA, _ := a.Next()
		opB, _ := b.Next()
		if opA.Addr == opB.Addr {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different cores produced %d/200 identical addresses", same)
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	p, _ := ByName("lu")
	gens := []*Generator{NewGenerator(p, 0, 2000, 5), NewGenerator(p, 1, 2000, 5)}
	priv := map[int]map[cache.LineAddr]bool{0: {}, 1: {}}
	for gi, g := range gens {
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			if op.Addr < sharedBase {
				priv[gi][op.Addr] = true
			}
		}
	}
	for a := range priv[0] {
		if priv[1][a] {
			t.Fatalf("private address %#x produced by both cores", a)
		}
	}
}

func TestSharedFractionRoughlyHonoured(t *testing.T) {
	p, _ := ByName("radix") // SharedFrac 0.38
	g := NewGenerator(p, 2, 20000, 9)
	shared, total := 0, 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		total++
		if op.Addr >= sharedBase {
			shared++
		}
	}
	frac := float64(shared) / float64(total)
	// Migratory bursts shift the exact rate; accept a generous band.
	if frac < 0.25 || frac < p.SharedFrac*0.5 || frac > p.SharedFrac*1.8 {
		t.Errorf("shared fraction = %.3f, profile asks %.3f", frac, p.SharedFrac)
	}
}

func TestStoreFractionRoughlyHonoured(t *testing.T) {
	p := SPECjbbProfile() // no migratory bursts: store fraction is direct
	g := NewGenerator(p, 0, 20000, 3)
	stores, total := 0, 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		total++
		if op.Store {
			stores++
		}
	}
	frac := float64(stores) / float64(total)
	if frac < p.StoreFrac*0.8 || frac > p.StoreFrac*1.2 {
		t.Errorf("store fraction = %.3f, profile asks %.3f", frac, p.StoreFrac)
	}
}

func TestComputeGapMean(t *testing.T) {
	p, _ := ByName("water-sp") // ComputeMean 21
	g := NewGenerator(p, 0, 30000, 17)
	var sum, n float64
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		sum += float64(op.Compute)
		n++
	}
	mean := sum / n
	if mean < p.ComputeMean*0.85 || mean > p.ComputeMean*1.15 {
		t.Errorf("compute mean = %.2f, profile asks %.2f", mean, p.ComputeMean)
	}
}

func TestMigratoryBurstsEndWithStore(t *testing.T) {
	p, _ := ByName("water-ns")
	g := NewGenerator(p, 1, 50000, 23)
	// Track consecutive same-address runs in the shared region; every
	// multi-access run must end with a store (read-modify-write).
	var prev Op
	runLen := 0
	checked := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Addr == prev.Addr && op.Addr >= sharedBase {
			runLen++
		} else {
			if runLen >= 2 && !prev.Store {
				t.Fatalf("migratory burst on %#x ended with a load", prev.Addr)
			}
			if runLen >= 2 {
				checked++
			}
			runLen = 1
		}
		prev = op
	}
	if checked == 0 {
		t.Error("no migratory bursts observed in a migratory profile")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "a", ComputeMean: -1, PrivateLines: 10},
		{Name: "b", PrivateLines: 0},
		{Name: "c", PrivateLines: 10, SharedFrac: 1.5},
		{Name: "d", PrivateLines: 10, SharedFrac: 0.5, SharedLines: 0},
		{Name: "e", PrivateLines: 10, StoreFrac: -0.1},
		{Name: "f", PrivateLines: 10, HotFrac: 0.5, HotLines: 0},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("profile %s accepted despite being invalid", p.Name)
		}
	}
}

func TestSliceSourceReplaysExactly(t *testing.T) {
	ops := []Op{{Compute: 1, Addr: 5}, {Compute: 2, Addr: 9, Store: true}}
	s := NewSliceSource(ops)
	for i, want := range ops {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("op %d: got %+v,%v", i, got, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("slice source did not end")
	}
}

// Property: the generator never emits an address outside its declared
// regions, and always terminates at the requested length.
func TestPropertyGeneratorBounds(t *testing.T) {
	prof := SPECwebProfile()
	f := func(core uint8, seed int64) bool {
		g := NewGenerator(prof, int(core%32), 300, seed)
		n := 0
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			n++
			switch {
			case op.Addr >= hotBase:
				if op.Addr-hotBase > spreadMask {
					return false
				}
			case op.Addr >= sharedBase:
				if op.Addr-sharedBase > spreadMask {
					return false
				}
			default:
				base := privateStride * cache.LineAddr(int(core%32)+1)
				if op.Addr < base || op.Addr-base > spreadMask {
					return false
				}
			}
		}
		return n == 300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorNextIsAllocFree(t *testing.T) {
	// The generator runs once per instruction on the simulation hot path:
	// it must not allocate per op.
	for _, p := range Profiles() {
		g := NewGenerator(p, 0, 1<<20, 42)
		allocs := testing.AllocsPerRun(5000, func() {
			if _, ok := g.Next(); !ok {
				t.Fatal("generator ran dry mid-measurement")
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Next allocates %.1f per op; want 0", p.Name, allocs)
		}
	}
}

func TestByNameUnknownIsSentinel(t *testing.T) {
	_, err := ByName("no-such-workload")
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("ByName error %v is not ErrUnknown", err)
	}
}
