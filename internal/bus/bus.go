// Package bus models the shared intra-CMP bus as a serially-occupied
// resource: one snoop or transfer holds the bus at a time, and later
// requests queue behind it (Table 4: 55-cycle CMP bus access + L2 snoop).
package bus

import "flexsnoop/internal/sim"

// Bus is a single serially-reusable resource. The zero value is ready to
// use.
type Bus struct {
	busyUntil sim.Time

	// Grants counts successful reservations; WaitCycles accumulates the
	// cycles requests spent queued behind earlier occupants.
	Grants     uint64
	WaitCycles uint64
	BusyCycles uint64
}

// Reserve books the bus for an operation of the given duration, starting
// no earlier than now. It returns the cycle at which the operation starts;
// the operation completes at start+duration.
func (b *Bus) Reserve(now sim.Time, duration sim.Time) (start sim.Time) {
	start = now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.WaitCycles += uint64(start - now)
	b.BusyCycles += uint64(duration)
	b.busyUntil = start + duration
	b.Grants++
	return start
}

// FreeAt returns the earliest cycle a new reservation could start.
func (b *Bus) FreeAt() sim.Time { return b.busyUntil }
