package bus

import (
	"testing"
	"testing/quick"

	"flexsnoop/internal/sim"
)

func TestReserveIdle(t *testing.T) {
	var b Bus
	if start := b.Reserve(100, 55); start != 100 {
		t.Errorf("idle bus start = %d, want 100", start)
	}
	if b.FreeAt() != 155 {
		t.Errorf("FreeAt = %d, want 155", b.FreeAt())
	}
}

func TestReserveQueues(t *testing.T) {
	var b Bus
	b.Reserve(0, 55)
	start := b.Reserve(10, 55)
	if start != 55 {
		t.Errorf("queued start = %d, want 55", start)
	}
	if b.WaitCycles != 45 {
		t.Errorf("WaitCycles = %d, want 45", b.WaitCycles)
	}
	// A request after the bus frees starts immediately.
	if start := b.Reserve(200, 55); start != 200 {
		t.Errorf("late start = %d, want 200", start)
	}
}

func TestStats(t *testing.T) {
	var b Bus
	b.Reserve(0, 10)
	b.Reserve(0, 10)
	b.Reserve(0, 10)
	if b.Grants != 3 {
		t.Errorf("Grants = %d, want 3", b.Grants)
	}
	if b.BusyCycles != 30 {
		t.Errorf("BusyCycles = %d, want 30", b.BusyCycles)
	}
	if b.WaitCycles != 10+20 {
		t.Errorf("WaitCycles = %d, want 30", b.WaitCycles)
	}
}

// Property: reservations never overlap and never start before requested.
func TestPropertyNoOverlap(t *testing.T) {
	f := func(reqs []uint8) bool {
		var b Bus
		now := sim.Time(0)
		var lastEnd sim.Time
		for _, r := range reqs {
			now += sim.Time(r % 16)
			dur := sim.Time(r%7 + 1)
			start := b.Reserve(now, dur)
			if start < now || start < lastEnd {
				return false
			}
			lastEnd = start + dur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
