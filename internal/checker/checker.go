// Package checker verifies the coherence invariants of a running protocol
// engine: the Figure 2(b) state-compatibility matrix, global supplier
// uniqueness, gateway supplier-index consistency, and the data-value
// invariant that every cached copy of a line carries the latest committed
// write generation.
//
// The checker is test/debug infrastructure: it inspects global state the
// hardware never sees at once.
package checker

import (
	"fmt"
	"slices"
	"sync"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/hotmap"
	"flexsnoop/internal/protocol"
)

// copyInfo locates one cached copy.
type copyInfo struct {
	node, core int
	line       cache.Line
}

// copyScratch keeps the gather slice across Check calls: the continuous
// checker sweeps every cached line repeatedly, and regrowing the slice
// each sweep was a measurable share of simulation allocations. A plain
// mutex-guarded slice (not a sync.Pool) survives GC cycles, so the
// grown capacity is paid once per process; serializing concurrent Check
// calls is fine — the continuous checker runs on a single-threaded
// simulation loop.
var (
	scratchMu   sync.Mutex
	copyScratch []copyInfo
	// copyIndex maps an address to the start of its run in the sorted
	// gather slice, built during the per-line pass so the supplier-index
	// sweep does a table lookup instead of a binary search per entry.
	copyIndex hotmap.Table[int32]
)

// Check runs every invariant against the engine, returning the first
// violation found. The continuous checker runs this on the simulation hot
// path, so copies are gathered into one flat slice and grouped by sorting
// — one allocation per sweep instead of a map of per-line slices — which
// also makes the reported violation deterministic (lowest address wins)
// where map iteration order would have been random.
func Check(e *protocol.Engine) error {
	scratchMu.Lock()
	all := copyScratch[:0]
	defer func() { copyScratch = all[:0]; scratchMu.Unlock() }()
	e.ForEachLine(func(node, core int, l cache.Line) {
		all = append(all, copyInfo{node, core, l})
	})
	slices.SortFunc(all, func(a, b copyInfo) int {
		if a.line.Addr != b.line.Addr {
			if a.line.Addr < b.line.Addr {
				return -1
			}
			return 1
		}
		if a.node != b.node {
			return a.node - b.node
		}
		return a.core - b.core
	})

	copyIndex.Reset()
	for i := 0; i < len(all); {
		j := i + 1
		for j < len(all) && all[j].line.Addr == all[i].line.Addr {
			j++
		}
		copyIndex.Put(uint64(all[i].line.Addr), int32(i))
		if err := checkLine(e, all[i].line.Addr, all[i:j]); err != nil {
			return err
		}
		i = j
	}

	// Gateway supplier indexes must not list lines with no supplier copy.
	var idxErr error
	e.ForEachSupplierIndex(func(n int, addr cache.LineAddr) {
		if idxErr == nil && !hasSupplierAt(copiesOf(all, addr), n) {
			idxErr = fmt.Errorf("node %d indexes %#x as supplier but holds no supplier copy", n, addr)
		}
	})
	return idxErr
}

// copiesOf returns the sorted slice's run of copies for one address,
// located via the index built during the per-line pass.
func copiesOf(all []copyInfo, addr cache.LineAddr) []copyInfo {
	start, ok := copyIndex.Get(uint64(addr))
	if !ok {
		return nil
	}
	i := int(start)
	j := i
	for j < len(all) && all[j].line.Addr == addr {
		j++
	}
	return all[i:j]
}

func hasSupplierAt(copies []copyInfo, node int) bool {
	for _, c := range copies {
		if c.node == node && c.line.State.GlobalSupplier() {
			return true
		}
	}
	return false
}

func checkLine(e *protocol.Engine, addr cache.LineAddr, copies []copyInfo) error {
	// Pairwise state compatibility (Figure 2(b)).
	for i := 0; i < len(copies); i++ {
		for j := i + 1; j < len(copies); j++ {
			a, b := copies[i], copies[j]
			if !cache.Compatible(a.line.State, b.line.State, a.node == b.node) {
				return fmt.Errorf("line %#x: incompatible states %v@(n%d,c%d) and %v@(n%d,c%d)",
					addr, a.line.State, a.node, a.core, b.line.State, b.node, b.core)
			}
		}
	}

	// Global supplier uniqueness and index consistency.
	suppliers := 0
	for _, c := range copies {
		if c.line.State.GlobalSupplier() {
			suppliers++
			if !e.SupplierIndexed(c.node, addr) {
				return fmt.Errorf("line %#x: supplier %v@(n%d,c%d) missing from gateway index",
					addr, c.line.State, c.node, c.core)
			}
		}
	}
	if suppliers > 1 {
		return fmt.Errorf("line %#x: %d global suppliers", addr, suppliers)
	}

	// Data-value invariant: every coexisting copy carries the same write
	// generation, and it is the latest committed one.
	latest := e.LatestVersion(addr)
	for _, c := range copies {
		if c.line.Version != copies[0].line.Version {
			return fmt.Errorf("line %#x: divergent versions %v/%d@(n%d,c%d) vs %v/%d@(n%d,c%d), latest=%d, inflight=%v",
				addr, c.line.State, c.line.Version, c.node, c.core,
				copies[0].line.State, copies[0].line.Version, copies[0].node, copies[0].core,
				latest, e.HasActiveTxn(addr))
		}
	}
	if len(copies) > 0 && copies[0].line.Version != latest {
		return fmt.Errorf("line %#x: cached version %d but latest committed write is %d",
			addr, copies[0].line.Version, latest)
	}

	// With no cached copy and no transaction in flight, memory must hold
	// the latest data (no writes may be lost).
	if len(copies) == 0 && !e.HasActiveTxn(addr) {
		if mv := e.MemVersion(addr); mv != latest {
			return fmt.Errorf("line %#x: uncached, memory at version %d but latest write is %d (lost write)",
				addr, mv, latest)
		}
	}
	return nil
}

// CheckDrained verifies post-run cleanliness: no live transactions, no
// leaked per-node message state, and all line invariants.
func CheckDrained(e *protocol.Engine) error {
	if n := e.OutstandingTxns(); n != 0 {
		return fmt.Errorf("%d transactions still outstanding after drain", n)
	}
	if n := e.RingStateCount(); n != 0 {
		return fmt.Errorf("%d ring states leaked after drain", n)
	}
	return Check(e)
}
