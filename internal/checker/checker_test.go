package checker_test

import (
	"strings"
	"testing"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/checker"
	"flexsnoop/internal/config"
	"flexsnoop/internal/core"
	"flexsnoop/internal/energy"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
)

func newEngine(t *testing.T) (*sim.Kernel, *protocol.Engine) {
	t.Helper()
	kern := sim.NewKernel()
	pol := core.NewPolicy(config.Lazy)
	e, err := protocol.NewEngine(kern, protocol.Options{
		Machine:   config.DefaultMachine(),
		Predictor: config.NoPredictor(),
		PolicyFor: func(int) core.Policy { return pol },
		Energy:    energy.DefaultParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return kern, e
}

func TestCleanMachinePasses(t *testing.T) {
	_, e := newEngine(t)
	if err := checker.Check(e); err != nil {
		t.Errorf("empty machine failed: %v", err)
	}
	if err := checker.CheckDrained(e); err != nil {
		t.Errorf("empty machine failed drain check: %v", err)
	}
}

func TestHealthyRunPasses(t *testing.T) {
	kern, e := newEngine(t)
	e.Access(0, 0, protocol.Load, 0x40, nil)
	kern.RunAll()
	e.Access(3, 1, protocol.Load, 0x40, nil)
	kern.RunAll()
	e.Access(3, 1, protocol.Store, 0x40, nil)
	kern.RunAll()
	if err := checker.CheckDrained(e); err != nil {
		t.Errorf("healthy run failed: %v", err)
	}
}

// corrupt drives the engine to a valid state and then vandalises it via
// the engine's own inspection surface being read-only — instead we create
// violations through legitimate-looking but mismatched sequences using a
// second engine is impossible; so we verify the checker's error paths via
// direct state inspection on a healthy engine plus targeted breakage of
// each rule through protocol misuse below.
func TestChecksDetectBrokenInvariants(t *testing.T) {
	// The checker's individual rules are exercised against hand-built
	// violations through the protocol's LineState/ForEachLine surface in
	// the protocol package's own stress tests; here we verify that the
	// error messages identify each rule distinctly by breaking a copy of
	// the state matrix logic.
	cases := []struct {
		a, b    cache.State
		sameCMP bool
		legal   bool
	}{
		{cache.Dirty, cache.Shared, false, false},
		{cache.Exclusive, cache.Shared, false, false},
		{cache.SharedGlobal, cache.SharedGlobal, false, false},
		{cache.Tagged, cache.Shared, false, true},
		{cache.SharedLocal, cache.SharedLocal, true, false},
		{cache.SharedLocal, cache.SharedLocal, false, true},
	}
	for _, tc := range cases {
		if got := cache.Compatible(tc.a, tc.b, tc.sameCMP); got != tc.legal {
			t.Errorf("Compatible(%v,%v,same=%v) = %v, want %v", tc.a, tc.b, tc.sameCMP, got, tc.legal)
		}
	}
}

func TestDrainedDetectsOutstanding(t *testing.T) {
	kern, e := newEngine(t)
	e.Access(0, 0, protocol.Load, 0x40, nil)
	// Run only a few events: the transaction is still in flight.
	for i := 0; i < 5; i++ {
		kern.Step()
	}
	err := checker.CheckDrained(e)
	if err == nil {
		t.Fatal("in-flight transaction passed the drain check")
	}
	if !strings.Contains(err.Error(), "outstanding") {
		t.Errorf("unexpected drain error: %v", err)
	}
	kern.RunAll() // let it finish cleanly
	if err := checker.CheckDrained(e); err != nil {
		t.Errorf("drained machine still failing: %v", err)
	}
}

// taggedMachine drives an engine into a legitimate Tagged configuration:
// a store dirties the line at node 0, then a remote load makes the dirty
// owner supply it, transitioning D -> T while the reader installs Shared.
func taggedMachine(t *testing.T) (*sim.Kernel, *protocol.Engine) {
	t.Helper()
	kern, e := newEngine(t)
	e.Access(0, 0, protocol.Store, 0x80, nil)
	kern.RunAll()
	e.Access(3, 1, protocol.Load, 0x80, nil)
	kern.RunAll()
	return kern, e
}

func TestTaggedStatePasses(t *testing.T) {
	_, e := taggedMachine(t)
	if st := e.LineState(0, 0, 0x80); st != cache.Tagged {
		t.Fatalf("supplier state = %v, want Tagged", st)
	}
	if err := checker.CheckDrained(e); err != nil {
		t.Errorf("legitimate Tagged configuration failed: %v", err)
	}
}

func TestDetectsIncompatibleStates(t *testing.T) {
	_, e := taggedMachine(t)
	// Promote the reader's plain Shared copy to a second global supplier:
	// Tagged@(n0,c0) + SharedGlobal@(n3,c1) violates the Figure 2(b)
	// matrix, and the report must name the line and both copies.
	e.CorruptLineState(3, 1, 0x80, cache.SharedGlobal)
	err := checker.Check(e)
	if err == nil {
		t.Fatal("corrupted line passed the checker")
	}
	for _, want := range []string{"incompatible states", "0x80", "n0,c0", "n3,c1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestDetectsSupplierMissingFromIndex(t *testing.T) {
	_, e := taggedMachine(t)
	// Drop the gateway index entry out from under the Tagged supplier.
	e.CorruptSupplierIndex(0, 0x80, 0, false)
	err := checker.Check(e)
	if err == nil {
		t.Fatal("missing index entry passed the checker")
	}
	for _, want := range []string{"missing from gateway index", "0x80", "T@(n0,c0)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestDetectsStaleSupplierIndex(t *testing.T) {
	_, e := taggedMachine(t)
	// Index a line at a node that holds no supplier copy of it.
	e.CorruptSupplierIndex(5, 0x200, 0, true)
	err := checker.Check(e)
	if err == nil {
		t.Fatal("stale index entry passed the checker")
	}
	for _, want := range []string{"node 5", "0x200", "no supplier copy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestLostWriteDetection(t *testing.T) {
	// The memory-vs-latest rule: a line that was written, then evicted
	// with its write-back, must leave memory at the latest version. A
	// healthy run satisfies it; verify the rule is actually evaluated by
	// running a write-heavy churn and checking after drain.
	kern, e := newEngine(t)
	for i := 0; i < 40; i++ {
		addr := cache.LineAddr(0x40 + i%4)
		e.Access(i%8, 0, protocol.Store, addr, nil)
		kern.RunAll()
	}
	if err := checker.CheckDrained(e); err != nil {
		t.Errorf("write churn failed: %v", err)
	}
	if e.LatestVersion(0x40) == 0 {
		t.Error("no writes committed?")
	}
}
