// Package memory models the distributed main memory of the machine: each
// CMP node owns the slice of physical memory it is home for, and serves
// line reads and write-backs over the data network.
//
// It implements the paper's prefetch-on-snoop heuristic (Section 2.2):
// when a read snoop request passes its home node, the home may start a
// DRAM prefetch so the eventual memory read completes with the shorter
// remote round trip of Table 4 (312 vs 710 cycles).
package memory

import (
	"flexsnoop/internal/bus"
	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/sim"
)

// Controller is one node's memory controller.
type Controller struct {
	node int
	cfg  config.MachineConfig

	// versions records the last written-back data generation per line,
	// for coherence-value checking. Lines never written back are at
	// generation 0.
	versions map[cache.LineAddr]uint64

	// prefetch maps line -> cycle at which the prefetched data is ready.
	prefetch      map[cache.LineAddr]sim.Time
	prefetchOrder []cache.LineAddr // FIFO for bounded-buffer eviction

	// channel models DRAM channel occupancy: accesses queue behind one
	// another (Table 4: 10.7 GB/s DRAM bandwidth).
	channel bus.Bus

	// sharedMark is the home's sticky "masterless sharers may exist" bit
	// per line: set when read-only copies can survive without any global
	// supplier (a demoted concurrent-read grant, or the eviction or
	// downgrade of a shared-capable supplier). While set, memory must
	// not grant Exclusive — a silent write to an E copy could leave
	// those sharers stale. The next completed write clears it: its
	// invalidation sweep removed every copy.
	sharedMark map[cache.LineAddr]bool

	// Stats.
	Reads         uint64
	Writes        uint64
	Prefetches    uint64
	PrefetchHits  uint64
	PrefetchMiss  uint64 // reads that found no prefetched entry
	PrefetchEvict uint64
}

// NewController builds the controller for one home node.
func NewController(node int, cfg config.MachineConfig) *Controller {
	return &Controller{
		node:       node,
		cfg:        cfg,
		versions:   make(map[cache.LineAddr]uint64),
		prefetch:   make(map[cache.LineAddr]sim.Time),
		sharedMark: make(map[cache.LineAddr]bool),
	}
}

// HomeNode returns the home node of a line under the machine's address
// interleaving.
func HomeNode(addr cache.LineAddr, numCMPs int) int {
	return int(addr % cache.LineAddr(numCMPs))
}

// Node returns this controller's node id.
func (c *Controller) Node() int { return c.node }

// NotifySnoop implements the prefetch heuristic: called when a read snoop
// for a line homed here passes this node. The line's data becomes ready
// after the DRAM access time. The buffer is bounded; the oldest entry is
// dropped when full.
func (c *Controller) NotifySnoop(now sim.Time, addr cache.LineAddr) {
	if !c.cfg.PrefetchOnSnoop {
		return
	}
	if _, ok := c.prefetch[addr]; ok {
		return // already prefetched or in flight
	}
	if len(c.prefetchOrder) >= c.cfg.PrefetchBufferEntries {
		old := c.prefetchOrder[0]
		c.prefetchOrder = c.prefetchOrder[1:]
		delete(c.prefetch, old)
		c.PrefetchEvict++
	}
	c.prefetch[addr] = now + sim.Time(c.cfg.DRAMAccessCycles)
	c.prefetchOrder = append(c.prefetchOrder, addr)
	c.Prefetches++
}

// ReadLatency returns the full round-trip latency a requester at the given
// node observes for a memory read of a line homed here, consuming any
// prefetch-buffer entry for the line. The Table 4 constants are used
// directly — 350 cycles locally, 312 remotely with a completed prefetch,
// 710 remotely without — plus any queueing behind earlier accesses on
// this controller's DRAM channel.
func (c *Controller) ReadLatency(now sim.Time, addr cache.LineAddr, requester int) sim.Time {
	c.Reads++
	queue := c.channel.Reserve(now, sim.Time(c.cfg.DRAMOccupancyCycles)) - now
	ready, prefetched := c.prefetch[addr]
	if prefetched {
		delete(c.prefetch, addr)
		for i, a := range c.prefetchOrder {
			if a == addr {
				c.prefetchOrder = append(c.prefetchOrder[:i], c.prefetchOrder[i+1:]...)
				break
			}
		}
	}
	if requester == c.node {
		return sim.Time(c.cfg.MemLocalRTCycles) + queue
	}
	if prefetched {
		c.PrefetchHits++
		rt := sim.Time(c.cfg.MemRemoteRTPrefetchCycles) + queue
		// If the prefetch has not finished yet, the residual DRAM time
		// adds to the round trip.
		if ready > now {
			rt += ready - now
		}
		return rt
	}
	c.PrefetchMiss++
	return sim.Time(c.cfg.MemRemoteRTNoPrefetchCycle) + queue
}

// QueueCycles reports total cycles accesses waited for the DRAM channel.
func (c *Controller) QueueCycles() uint64 { return c.channel.WaitCycles }

// BusyCycles reports total cycles the DRAM channel was reserved — the
// numerator of this controller's occupancy fraction over a window.
func (c *Controller) BusyCycles() uint64 { return c.channel.BusyCycles }

// MarkShared sets the line's masterless-sharers bit: memory may not grant
// Exclusive until a write's invalidation sweep clears it.
func (c *Controller) MarkShared(addr cache.LineAddr) { c.sharedMark[addr] = true }

// ClearShared clears the bit after a completed write made the writer the
// line's only holder.
func (c *Controller) ClearShared(addr cache.LineAddr) { delete(c.sharedMark, addr) }

// SharedMarked reports whether masterless sharers may exist.
func (c *Controller) SharedMarked(addr cache.LineAddr) bool { return c.sharedMark[addr] }

// Version returns the line's last written-back data generation.
func (c *Controller) Version(addr cache.LineAddr) uint64 { return c.versions[addr] }

// WriteBack records a dirty-line write-back of the given data generation.
// Write-backs are posted (no one waits on them) but still occupy the DRAM
// channel.
func (c *Controller) WriteBack(addr cache.LineAddr, version uint64) {
	c.Writes++
	if version > c.versions[addr] {
		c.versions[addr] = version
	}
}
