// Package memory models the distributed main memory of the machine: each
// CMP node owns the slice of physical memory it is home for, and serves
// line reads and write-backs over the data network.
//
// It implements the paper's prefetch-on-snoop heuristic (Section 2.2):
// when a read snoop request passes its home node, the home may start a
// DRAM prefetch so the eventual memory read completes with the shorter
// remote round trip of Table 4 (312 vs 710 cycles).
package memory

import (
	"flexsnoop/internal/bus"
	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/hotmap"
	"flexsnoop/internal/sim"
)

// Per-line flag bits (Controller.flags).
const (
	// memShared is the home's sticky "masterless sharers may exist" bit:
	// set when read-only copies can survive without any global supplier
	// (a demoted concurrent-read grant, or the eviction or downgrade of a
	// shared-capable supplier). While set, memory must not grant
	// Exclusive — a silent write to an E copy could leave those sharers
	// stale. The next completed write clears it: its invalidation sweep
	// removed every copy.
	memShared uint8 = 1 << iota
	// memPrefetch marks a line with a live prefetch-buffer entry; its
	// ready time is in prefReady.
	memPrefetch
)

// Controller is one node's memory controller. Its per-line state lives in
// a struct-of-arrays layout (DESIGN.md §10): one open-addressed index
// from line address to a stable slot, and parallel arrays for the
// written-back version, the prefetch ready time and the flag bits, so the
// read path resolves one hash instead of three map lookups.
type Controller struct {
	node int
	cfg  config.MachineConfig

	// idx maps a line homed here to its slot+1 (0 = never touched).
	idx hotmap.Table[int32]
	// version records the last written-back data generation per line,
	// for coherence-value checking. Lines never written back are at
	// generation 0.
	version []uint64
	// prefReady is the cycle at which a prefetched line's data is ready
	// (valid only while memPrefetch is set).
	prefReady []sim.Time
	flags     []uint8

	prefetchOrder []cache.LineAddr // FIFO for bounded-buffer eviction

	// channel models DRAM channel occupancy: accesses queue behind one
	// another (Table 4: 10.7 GB/s DRAM bandwidth).
	channel bus.Bus

	// Stats.
	Reads         uint64
	Writes        uint64
	Prefetches    uint64
	PrefetchHits  uint64
	PrefetchMiss  uint64 // reads that found no prefetched entry
	PrefetchEvict uint64
}

// NewController builds the controller for one home node.
func NewController(node int, cfg config.MachineConfig) *Controller {
	return &Controller{
		node: node,
		cfg:  cfg,
		idx:  *hotmap.New[int32](1024),
	}
}

// slot returns the line's slot, allocating one on first touch.
func (c *Controller) slot(addr cache.LineAddr) int {
	p := c.idx.Upsert(uint64(addr))
	if *p == 0 {
		c.version = append(c.version, 0)
		c.prefReady = append(c.prefReady, 0)
		c.flags = append(c.flags, 0)
		*p = int32(len(c.version))
	}
	return int(*p) - 1
}

// find returns the line's slot without allocating one.
func (c *Controller) find(addr cache.LineAddr) (int, bool) {
	s, ok := c.idx.Get(uint64(addr))
	return int(s) - 1, ok
}

// HomeNode returns the home node of a line under the machine's address
// interleaving.
func HomeNode(addr cache.LineAddr, numCMPs int) int {
	return int(addr % cache.LineAddr(numCMPs))
}

// Node returns this controller's node id.
func (c *Controller) Node() int { return c.node }

// NotifySnoop implements the prefetch heuristic: called when a read snoop
// for a line homed here passes this node. The line's data becomes ready
// after the DRAM access time. The buffer is bounded; the oldest entry is
// dropped when full.
func (c *Controller) NotifySnoop(now sim.Time, addr cache.LineAddr) {
	if !c.cfg.PrefetchOnSnoop {
		return
	}
	s := c.slot(addr)
	if c.flags[s]&memPrefetch != 0 {
		return // already prefetched or in flight
	}
	if len(c.prefetchOrder) >= c.cfg.PrefetchBufferEntries {
		old := c.prefetchOrder[0]
		c.prefetchOrder = c.prefetchOrder[1:]
		if os, ok := c.find(old); ok {
			c.flags[os] &^= memPrefetch
		}
		c.PrefetchEvict++
	}
	c.flags[s] |= memPrefetch
	c.prefReady[s] = now + sim.Time(c.cfg.DRAMAccessCycles)
	c.prefetchOrder = append(c.prefetchOrder, addr)
	c.Prefetches++
}

// ReadLatency returns the full round-trip latency a requester at the given
// node observes for a memory read of a line homed here, consuming any
// prefetch-buffer entry for the line. The Table 4 constants are used
// directly — 350 cycles locally, 312 remotely with a completed prefetch,
// 710 remotely without — plus any queueing behind earlier accesses on
// this controller's DRAM channel.
func (c *Controller) ReadLatency(now sim.Time, addr cache.LineAddr, requester int) sim.Time {
	c.Reads++
	queue := c.channel.Reserve(now, sim.Time(c.cfg.DRAMOccupancyCycles)) - now
	var ready sim.Time
	prefetched := false
	if s, ok := c.find(addr); ok && c.flags[s]&memPrefetch != 0 {
		prefetched = true
		ready = c.prefReady[s]
		c.flags[s] &^= memPrefetch
		for i, a := range c.prefetchOrder {
			if a == addr {
				c.prefetchOrder = append(c.prefetchOrder[:i], c.prefetchOrder[i+1:]...)
				break
			}
		}
	}
	if requester == c.node {
		return sim.Time(c.cfg.MemLocalRTCycles) + queue
	}
	if prefetched {
		c.PrefetchHits++
		rt := sim.Time(c.cfg.MemRemoteRTPrefetchCycles) + queue
		// If the prefetch has not finished yet, the residual DRAM time
		// adds to the round trip.
		if ready > now {
			rt += ready - now
		}
		return rt
	}
	c.PrefetchMiss++
	return sim.Time(c.cfg.MemRemoteRTNoPrefetchCycle) + queue
}

// QueueCycles reports total cycles accesses waited for the DRAM channel.
func (c *Controller) QueueCycles() uint64 { return c.channel.WaitCycles }

// BusyCycles reports total cycles the DRAM channel was reserved — the
// numerator of this controller's occupancy fraction over a window.
func (c *Controller) BusyCycles() uint64 { return c.channel.BusyCycles }

// MarkShared sets the line's masterless-sharers bit: memory may not grant
// Exclusive until a write's invalidation sweep clears it.
func (c *Controller) MarkShared(addr cache.LineAddr) { c.flags[c.slot(addr)] |= memShared }

// ClearShared clears the bit after a completed write made the writer the
// line's only holder.
func (c *Controller) ClearShared(addr cache.LineAddr) {
	if s, ok := c.find(addr); ok {
		c.flags[s] &^= memShared
	}
}

// SharedMarked reports whether masterless sharers may exist.
func (c *Controller) SharedMarked(addr cache.LineAddr) bool {
	s, ok := c.find(addr)
	return ok && c.flags[s]&memShared != 0
}

// Version returns the line's last written-back data generation.
func (c *Controller) Version(addr cache.LineAddr) uint64 {
	if s, ok := c.find(addr); ok {
		return c.version[s]
	}
	return 0
}

// WriteBack records a dirty-line write-back of the given data generation.
// Write-backs are posted (no one waits on them) but still occupy the DRAM
// channel.
func (c *Controller) WriteBack(addr cache.LineAddr, version uint64) {
	c.Writes++
	if s := c.slot(addr); version > c.version[s] {
		c.version[s] = version
	}
}
