package memory

import (
	"testing"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
)

func newCtrl(node int) *Controller {
	return NewController(node, config.DefaultMachine())
}

func TestHomeNodeInterleaving(t *testing.T) {
	for a := cache.LineAddr(0); a < 32; a++ {
		if got := HomeNode(a, 8); got != int(a%8) {
			t.Errorf("HomeNode(%d) = %d", a, got)
		}
	}
}

func TestLocalReadLatency(t *testing.T) {
	c := newCtrl(3)
	if got := c.ReadLatency(0, 3, 3); got != 350 {
		t.Errorf("local RT = %d, want 350 (Table 4)", got)
	}
}

func TestRemoteReadWithoutPrefetch(t *testing.T) {
	c := newCtrl(0)
	if got := c.ReadLatency(0, 8, 5); got != 710 {
		t.Errorf("remote RT without prefetch = %d, want 710", got)
	}
	if c.PrefetchMiss != 1 {
		t.Errorf("PrefetchMiss = %d, want 1", c.PrefetchMiss)
	}
}

func TestRemoteReadWithPrefetch(t *testing.T) {
	c := newCtrl(0)
	c.NotifySnoop(1000, 8)
	// Request arrives well after the 300-cycle DRAM prefetch completes.
	if got := c.ReadLatency(2000, 8, 5); got != 312 {
		t.Errorf("prefetched remote RT = %d, want 312", got)
	}
	if c.PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d, want 1", c.PrefetchHits)
	}
	// The entry is consumed: a second read misses.
	if got := c.ReadLatency(3000, 8, 5); got != 710 {
		t.Errorf("second read RT = %d, want 710", got)
	}
}

func TestPrefetchStillInFlight(t *testing.T) {
	c := newCtrl(0)
	c.NotifySnoop(1000, 8) // ready at 1300
	got := c.ReadLatency(1100, 8, 5)
	if got != 312+200 {
		t.Errorf("in-flight prefetch RT = %d, want 512 (312 + 200 residual)", got)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	cfg := config.DefaultMachine()
	cfg.PrefetchOnSnoop = false
	c := NewController(0, cfg)
	c.NotifySnoop(0, 8)
	if c.Prefetches != 0 {
		t.Error("disabled prefetch still buffered")
	}
	if got := c.ReadLatency(100, 8, 5); got != 710 {
		t.Errorf("RT = %d, want 710 with prefetch off", got)
	}
}

func TestPrefetchBufferBounded(t *testing.T) {
	cfg := config.DefaultMachine()
	cfg.PrefetchBufferEntries = 2
	c := NewController(0, cfg)
	c.NotifySnoop(0, 8)
	c.NotifySnoop(0, 16)
	c.NotifySnoop(0, 24) // evicts 8
	if c.PrefetchEvict != 1 {
		t.Errorf("PrefetchEvict = %d, want 1", c.PrefetchEvict)
	}
	if got := c.ReadLatency(5000, 8, 5); got != 710 {
		t.Errorf("evicted line RT = %d, want 710", got)
	}
	// Well after the first access drained the DRAM channel.
	if got := c.ReadLatency(9000, 16, 5); got != 312 {
		t.Errorf("retained line RT = %d, want 312", got)
	}
}

func TestDuplicateSnoopKeepsOneEntry(t *testing.T) {
	c := newCtrl(0)
	c.NotifySnoop(0, 8)
	c.NotifySnoop(50, 8)
	if c.Prefetches != 1 {
		t.Errorf("Prefetches = %d, want 1 (dedup)", c.Prefetches)
	}
}

func TestDRAMChannelQueueing(t *testing.T) {
	c := newCtrl(0)
	// Back-to-back reads at the same instant queue on the DRAM channel
	// (36-cycle line occupancy at 10.7 GB/s).
	if got := c.ReadLatency(0, 8, 5); got != 710 {
		t.Fatalf("first RT = %d, want 710", got)
	}
	if got := c.ReadLatency(0, 16, 5); got != 710+36 {
		t.Errorf("second RT = %d, want 746 (one occupancy of queueing)", got)
	}
	if got := c.ReadLatency(0, 24, 5); got != 710+72 {
		t.Errorf("third RT = %d, want 782", got)
	}
	if c.QueueCycles() != 36+72 {
		t.Errorf("QueueCycles = %d, want 108", c.QueueCycles())
	}
}

func TestWriteBackVersions(t *testing.T) {
	c := newCtrl(0)
	if c.Version(8) != 0 {
		t.Error("fresh line should be at version 0")
	}
	c.WriteBack(8, 5)
	if c.Version(8) != 5 {
		t.Errorf("Version = %d, want 5", c.Version(8))
	}
	// Stale (out-of-order) write-backs never regress the version.
	c.WriteBack(8, 3)
	if c.Version(8) != 5 {
		t.Errorf("stale write-back regressed version to %d", c.Version(8))
	}
	if c.Writes != 2 {
		t.Errorf("Writes = %d, want 2", c.Writes)
	}
}
