// Package fault implements deterministic, seed-driven fault injection
// for the embedded-ring interconnect: dropping, duplicating, delaying
// and stalling snoop-message segments according to a declarative plan.
//
// Faults model a lossy or congested ring, not memory or torus errors:
// every injected fault hits a ring link segment between two gateways.
// Decisions are a pure function of the plan and a sequential segment
// counter, so a run with a fixed plan is bit-identical across repeats
// and across the serial and sharded transmit stages (the injector is
// only consulted from the serial merge stage, whose order is fixed).
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrPlan is the sentinel wrapped by every fault-plan validation and
// parse failure, matchable with errors.Is.
var ErrPlan = errors.New("fault: bad fault plan")

// Kind is a fault class.
type Kind int

const (
	// Drop loses the message segment on the link. The requester is
	// NACKed through the link-level CRC model and squashes-and-retries;
	// the per-transaction deadline covers the case where even the NACK
	// context is gone.
	Drop Kind = iota
	// Dup delivers a redundant copy of the segment one occupancy slot
	// behind the original; receivers discard it by sequence check, so
	// it costs link bandwidth and delivery work only.
	Dup
	// Delay adds jitter to the segment's arrival: 1..Delay extra cycles,
	// which can reorder split request/reply halves when it exceeds the
	// inter-segment spacing.
	Delay
	// Stall models a stalled gateway: every matched segment arriving at
	// the target node inside [From, Until) is held until cycle Until.
	Stall

	numKinds
)

// String returns the plan-spec keyword for the kind.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Dup:
		return "dup"
	case Delay:
		return "delay"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// parseKind maps a spec keyword to its Kind.
func parseKind(s string) (Kind, error) {
	switch s {
	case "drop":
		return Drop, nil
	case "dup":
		return Dup, nil
	case "delay":
		return Delay, nil
	case "stall":
		return Stall, nil
	default:
		return 0, fmt.Errorf("%w: unknown kind %q", ErrPlan, s)
	}
}

// Rule is one fault source. Zero values of the targeting fields mean
// "any": Ring and Node use -1 for any (ParsePlan defaults them), and an
// Until of zero leaves the window open-ended.
type Rule struct {
	Kind Kind
	// Ring restricts the rule to one embedded ring (-1: all rings).
	Ring int
	// Node targets a link or gateway (-1: all). For Drop/Dup/Delay it is
	// the link's upstream (sending) node; for Stall it is the receiving
	// node whose gateway stalls.
	Node int
	// Rate is the per-segment fault probability in [0, 1].
	Rate float64
	// From and Until bound the active window in cycles, matched against
	// the segment's departure (Drop/Dup/Delay) or arrival (Stall). An
	// Until of zero means "until the end of the run"; Stall requires a
	// bounded window or it could hold segments forever.
	From, Until uint64
	// Seed decorrelates this rule's coin flips from other rules'.
	Seed uint64
	// Delay is the maximum jitter in cycles (Delay kind only).
	Delay uint64
}

// matches reports whether the rule applies to a segment. when is the
// departure cycle for Drop/Dup/Delay and the arrival cycle for Stall;
// node follows the same convention (sender vs receiver).
func (r *Rule) matches(when uint64, ringIdx, node int) bool {
	if r.Ring >= 0 && r.Ring != ringIdx {
		return false
	}
	if r.Node >= 0 && r.Node != node {
		return false
	}
	if when < r.From {
		return false
	}
	if r.Until > 0 && when >= r.Until {
		return false
	}
	return true
}

// Plan is a complete fault-injection configuration.
type Plan struct {
	Rules []Rule
	// MaxRetries bounds timeout-driven retransmit attempts per access
	// before the engine fails the run (0: the default, 100).
	MaxRetries int
}

// DefaultMaxRetries is the retransmit bound applied when a plan leaves
// MaxRetries zero. It is sized for the documented 10%-drop envelope: an
// attempt whose round trip crosses ~16 faulted segments survives with
// probability ~0.18 there, so ~60 consecutive losses is already a
// once-per-million-transactions event; 100 keeps completion certain
// while still bounding a genuinely dead link to a finite failure.
const DefaultMaxRetries = 100

// RetryLimit returns the effective retransmit bound.
func (p *Plan) RetryLimit() int {
	if p == nil || p.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return p.MaxRetries
}

// Enabled reports whether the plan injects anything.
func (p *Plan) Enabled() bool { return p != nil && len(p.Rules) > 0 }

// Validate checks the plan, wrapping ErrPlan on failure.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("%w: negative MaxRetries %d", ErrPlan, p.MaxRetries)
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Kind < 0 || r.Kind >= numKinds {
			return fmt.Errorf("%w: rule %d: unknown kind %d", ErrPlan, i, int(r.Kind))
		}
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("%w: rule %d: rate %g outside [0,1]", ErrPlan, i, r.Rate)
		}
		if r.Ring < -1 || r.Node < -1 {
			return fmt.Errorf("%w: rule %d: negative target (ring %d, node %d)", ErrPlan, i, r.Ring, r.Node)
		}
		if r.Until > 0 && r.Until <= r.From {
			return fmt.Errorf("%w: rule %d: empty window [%d,%d)", ErrPlan, i, r.From, r.Until)
		}
		switch r.Kind {
		case Delay:
			if r.Delay == 0 {
				return fmt.Errorf("%w: rule %d: delay kind needs delay > 0", ErrPlan, i)
			}
		case Stall:
			if r.Until == 0 {
				return fmt.Errorf("%w: rule %d: stall needs a bounded window (until > 0)", ErrPlan, i)
			}
		}
	}
	return nil
}

// ParsePlan parses the -faults command-line syntax: rules separated by
// ';', each rule a comma-separated list of key=value fields:
//
//	kind=drop,rate=0.05,ring=0,node=2,from=1000,until=90000,seed=3
//	kind=delay,rate=0.1,delay=80;kind=stall,node=1,from=0,until=50000
//
// kind is required. rate defaults to 1. ring and node default to -1
// (any). Unset seed leaves rules decorrelated by their index. The
// returned plan is validated.
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("%w: empty spec", ErrPlan)
	}
	p := &Plan{}
	for ri, ruleSpec := range strings.Split(spec, ";") {
		ruleSpec = strings.TrimSpace(ruleSpec)
		if ruleSpec == "" {
			return nil, fmt.Errorf("%w: rule %d is empty", ErrPlan, ri)
		}
		r := Rule{Ring: -1, Node: -1, Rate: 1}
		haveKind := false
		for _, field := range strings.Split(ruleSpec, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("%w: rule %d: field %q is not key=value", ErrPlan, ri, field)
			}
			var err error
			switch key {
			case "kind":
				r.Kind, err = parseKind(val)
				haveKind = err == nil
			case "rate":
				r.Rate, err = strconv.ParseFloat(val, 64)
			case "ring":
				r.Ring, err = strconv.Atoi(val)
			case "node":
				r.Node, err = strconv.Atoi(val)
			case "from":
				r.From, err = strconv.ParseUint(val, 10, 64)
			case "until":
				r.Until, err = strconv.ParseUint(val, 10, 64)
			case "seed":
				r.Seed, err = strconv.ParseUint(val, 10, 64)
			case "delay":
				r.Delay, err = strconv.ParseUint(val, 10, 64)
			default:
				return nil, fmt.Errorf("%w: rule %d: unknown field %q", ErrPlan, ri, key)
			}
			if err != nil {
				if errors.Is(err, ErrPlan) {
					return nil, err
				}
				return nil, fmt.Errorf("%w: rule %d: bad %s value %q", ErrPlan, ri, key, val)
			}
		}
		if !haveKind {
			return nil, fmt.Errorf("%w: rule %d: missing kind", ErrPlan, ri)
		}
		p.Rules = append(p.Rules, r)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Action is the injector's verdict for one segment. Delay and Stall
// cycles both stretch the arrival; they are reported separately so the
// engine can count them apart.
type Action struct {
	Drop  bool
	Dup   bool
	Delay uint64
	Stall uint64
}

// Injector evaluates a validated plan against transmitted segments. It
// keeps one sequential counter; callers must consult it from exactly one
// goroutine in a deterministic order.
type Injector struct {
	rules []Rule
	seeds []uint64 // per-rule pre-mixed seed bases
	seq   uint64
}

// NewInjector builds an injector for a plan (which must have passed
// Validate).
func NewInjector(p *Plan) *Injector {
	inj := &Injector{rules: append([]Rule(nil), p.Rules...)}
	inj.seeds = make([]uint64, len(inj.rules))
	for i := range inj.rules {
		// Mix the rule index in so identical rules with the zero seed
		// still flip independent coins.
		inj.seeds[i] = mix64(inj.rules[i].Seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15))
	}
	return inj
}

// Inspect evaluates every rule against one arbitrated segment and
// advances the injection sequence. depart/arrive are the segment's link
// occupancy window; from/to are the link's endpoints.
func (inj *Injector) Inspect(depart, arrive uint64, ringIdx, from, to int) Action {
	s := inj.seq
	inj.seq++
	var act Action
	for i := range inj.rules {
		r := &inj.rules[i]
		when, node := depart, from
		if r.Kind == Stall {
			when, node = arrive, to
		}
		if !r.matches(when, ringIdx, node) {
			continue
		}
		h := mix64(inj.seeds[i] ^ mix64(s))
		if !roll(h, r.Rate) {
			continue
		}
		switch r.Kind {
		case Drop:
			act.Drop = true
		case Dup:
			act.Dup = true
		case Delay:
			act.Delay += 1 + mix64(h)%r.Delay
		case Stall:
			if arrive < r.Until {
				act.Stall += r.Until - arrive
			}
		}
	}
	return act
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed stateless
// hash, the standard choice for reproducible simulation randomness.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll reports whether a hash falls below the rate threshold. The top 53
// bits map to [0, 1) exactly in a float64, so the comparison is
// bit-reproducible across platforms.
func roll(h uint64, rate float64) bool {
	if rate >= 1 {
		return true
	}
	return float64(h>>11)*(1.0/(1<<53)) < rate
}
