package fault

import (
	"errors"
	"math"
	"testing"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("kind=drop,rate=0.05,ring=0,node=2,from=1000,until=90000,seed=3;kind=delay,rate=0.1,delay=80")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Kind != Drop || r.Rate != 0.05 || r.Ring != 0 || r.Node != 2 || r.From != 1000 || r.Until != 90000 || r.Seed != 3 {
		t.Errorf("rule 0 parsed wrong: %+v", r)
	}
	d := p.Rules[1]
	if d.Kind != Delay || d.Rate != 0.1 || d.Delay != 80 || d.Ring != -1 || d.Node != -1 {
		t.Errorf("rule 1 parsed wrong: %+v", d)
	}
}

func TestParsePlanDefaultsRateToOne(t *testing.T) {
	p, err := ParsePlan("kind=stall,node=1,until=5000")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Rate != 1 {
		t.Errorf("rate = %g, want default 1", p.Rules[0].Rate)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"kind=explode",
		"rate=0.5",                    // missing kind
		"kind=drop,rate=1.5",          // rate out of range
		"kind=drop,rate=abc",          // unparsable value
		"kind=drop,bogus=1",           // unknown field
		"kind=drop;;kind=dup",         // empty rule
		"kind=delay,rate=0.1",         // delay kind without delay
		"kind=stall,node=1",           // stall without bounded window
		"kind=drop,from=100,until=50", // empty window
		"kind=drop,ring=-2",           // bad target
		"kind=drop rate=0.5",          // not key=value
	} {
		if _, err := ParsePlan(spec); !errors.Is(err, ErrPlan) {
			t.Errorf("ParsePlan(%q) = %v, want ErrPlan", spec, err)
		}
	}
}

func TestValidateMaxRetries(t *testing.T) {
	p := &Plan{Rules: []Rule{{Kind: Drop, Rate: 0.1, Ring: -1, Node: -1}}, MaxRetries: -1}
	if err := p.Validate(); !errors.Is(err, ErrPlan) {
		t.Errorf("negative MaxRetries validated: %v", err)
	}
	p.MaxRetries = 0
	if err := p.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if got := p.RetryLimit(); got != DefaultMaxRetries {
		t.Errorf("RetryLimit() = %d, want default %d", got, DefaultMaxRetries)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
	if nilPlan.Enabled() {
		t.Error("nil plan reports enabled")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	p, err := ParsePlan("kind=drop,rate=0.3,seed=7;kind=delay,rate=0.5,delay=40;kind=dup,rate=0.2")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewInjector(p), NewInjector(p)
	for i := 0; i < 10000; i++ {
		dep := uint64(i * 3)
		got := a.Inspect(dep, dep+39, i%2, i%8, (i+1)%8)
		want := b.Inspect(dep, dep+39, i%2, i%8, (i+1)%8)
		if got != want {
			t.Fatalf("segment %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestInjectorRates(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Kind: Drop, Rate: 0.1, Ring: -1, Node: -1, Seed: 1},
		{Kind: Delay, Rate: 0.25, Ring: -1, Node: -1, Seed: 2, Delay: 80},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(p)
	const n = 200000
	drops, delays := 0, 0
	var maxDelay uint64
	for i := 0; i < n; i++ {
		act := inj.Inspect(uint64(i), uint64(i)+39, 0, 0, 1)
		if act.Drop {
			drops++
		}
		if act.Delay > 0 {
			delays++
			if act.Delay > maxDelay {
				maxDelay = act.Delay
			}
		}
	}
	if f := float64(drops) / n; math.Abs(f-0.1) > 0.01 {
		t.Errorf("drop rate %g, want ~0.1", f)
	}
	if f := float64(delays) / n; math.Abs(f-0.25) > 0.01 {
		t.Errorf("delay rate %g, want ~0.25", f)
	}
	if maxDelay == 0 || maxDelay > 80 {
		t.Errorf("max jitter %d, want in (0,80]", maxDelay)
	}
}

func TestInjectorTargeting(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Kind: Drop, Rate: 1, Ring: 1, Node: 3, From: 100, Until: 200},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(p)
	cases := []struct {
		dep  uint64
		ring int
		from int
		want bool
	}{
		{150, 1, 3, true},
		{150, 0, 3, false}, // wrong ring
		{150, 1, 4, false}, // wrong node
		{50, 1, 3, false},  // before window
		{200, 1, 3, false}, // at window end (exclusive)
	}
	for _, c := range cases {
		act := inj.Inspect(c.dep, c.dep+39, c.ring, c.from, (c.from+1)%8)
		if act.Drop != c.want {
			t.Errorf("Inspect(dep=%d ring=%d from=%d).Drop = %v, want %v", c.dep, c.ring, c.from, act.Drop, c.want)
		}
	}
}

func TestStallHoldsUntilWindowEnd(t *testing.T) {
	p := &Plan{Rules: []Rule{{Kind: Stall, Rate: 1, Ring: -1, Node: 2, From: 0, Until: 5000}}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(p)
	// Arrival at the stalled node inside the window is held to its end.
	act := inj.Inspect(1000, 1039, 0, 1, 2)
	if act.Stall != 5000-1039 {
		t.Errorf("stall = %d, want %d", act.Stall, 5000-1039)
	}
	// A different receiving node passes untouched.
	if act := inj.Inspect(1000, 1039, 0, 2, 3); act.Stall != 0 {
		t.Errorf("unmatched node stalled: %+v", act)
	}
	// After the window nothing stalls.
	if act := inj.Inspect(6000, 6039, 0, 1, 2); act.Stall != 0 {
		t.Errorf("post-window stall: %+v", act)
	}
}
