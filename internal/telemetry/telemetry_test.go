package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"flexsnoop/internal/sim"
)

func TestNilCollectorProbesAreSafe(t *testing.T) {
	var c *Collector
	c.TxnIssue(0, 1, "read", 0x40, 0, 0, 0)
	c.TxnEvent(5, 1, "snoop", 2)
	c.TxnComplete(9, 1)
	c.RingHop(3, 0, 1, 2, 1)
	c.InstallKernelProbe(sim.NewKernel(), nil)
	if c.Tracing() || c.TraceHops() {
		t.Error("nil collector reports tracing enabled")
	}
	if err := c.Close(100); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestConfigEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config enabled")
	}
	if (&Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	if !(&Config{Metrics: &bytes.Buffer{}}).Enabled() {
		t.Error("metrics-only config disabled")
	}
	if New(Config{}) != nil {
		t.Error("New on disabled config should return nil")
	}
}

func TestSamplerDifferencesSnapshots(t *testing.T) {
	// Cumulative counters advance each snapshot; the sampler must emit
	// per-interval deltas and occupancy fractions.
	calls := 0
	snap := func() Sample {
		s := Sample{
			EventsExecuted:  uint64(10 * calls),
			ReadRequests:    uint64(4 * calls),
			WriteRequests:   uint64(1 * calls),
			Squashes:        uint64(calls),
			RingBusyCycles:  uint64(500 * calls), // 2 links x 1000 cycles => 0.25/interval
			RingLinks:       2,
			PredTP:          uint64(3 * calls),
			PredFP:          uint64(1 * calls),
			OutstandingTxns: calls,
		}
		calls++
		return s
	}
	s := newSampler(1000, nil)
	s.arm(snap) // baseline: calls=0 snapshot
	s.observe(999)
	if len(s.rows) != 0 {
		t.Fatalf("row emitted before the boundary: %+v", s.rows)
	}
	s.observe(1000)
	s.observe(2500)
	s.finish(2600)
	if len(s.rows) != 3 {
		t.Fatalf("want 3 rows (1000, 2000, final 2600), got %d: %+v", len(s.rows), s.rows)
	}
	r := s.rows[0]
	if r.Cycle != 1000 || r.Events != 10 || r.Reads != 4 || r.Writes != 1 {
		t.Errorf("first row deltas wrong: %+v", r)
	}
	if r.RingOcc != 0.25 {
		t.Errorf("ring occupancy: want 0.25, got %g", r.RingOcc)
	}
	if r.SquashRate != 1.0/5.0 {
		t.Errorf("squash rate: want 0.2, got %g", r.SquashRate)
	}
	if r.TP != 0.75 || r.FP != 0.25 || r.FN != 0 {
		t.Errorf("predictor fractions: %+v", r)
	}
	if last := s.rows[2]; last.Cycle != 2600 {
		t.Errorf("final partial row at %d, want 2600", last.Cycle)
	}
	csv := s.csv()
	if !strings.HasPrefix(csv, csvHeader+"\n") {
		t.Error("csv missing header")
	}
	if got := strings.Count(csv, "\n"); got != 4 {
		t.Errorf("csv line count: want 4, got %d", got)
	}
}

func TestSamplerUniformBoundaries(t *testing.T) {
	s := newSampler(100, nil)
	s.arm(func() Sample { return Sample{} })
	s.observe(350) // long event gap: must emit 100, 200, 300
	if len(s.rows) != 3 {
		t.Fatalf("want one row per crossed boundary, got %d", len(s.rows))
	}
	for i, want := range []uint64{100, 200, 300} {
		if s.rows[i].Cycle != want {
			t.Errorf("row %d at cycle %d, want %d", i, s.rows[i].Cycle, want)
		}
	}
}

func TestTracerJSONL(t *testing.T) {
	tr := newTracer(true)
	tr.issue(10, 1, "read", 0x1240, 3, 2, 0)
	tr.hop(12, 1, 0, 3, 4)
	tr.point(15, 1, "snoop", 4)
	tr.point(20, 1, "supply", 4)
	tr.complete(30, 1)

	var buf bytes.Buffer
	if err := tr.writeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var events []jsonlEvent
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e jsonlEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 5 {
		t.Fatalf("want 5 events, got %d", len(events))
	}
	if e := events[0]; e.Event != "issue" || e.Kind != "read" || e.Addr != "0x1240" || *e.Core != 2 {
		t.Errorf("issue event: %+v", e)
	}
	if e := events[1]; e.Event != "hop" || *e.Ring != 0 || e.Node != 3 || *e.To != 4 {
		t.Errorf("hop event: %+v", e)
	}
	if e := events[4]; e.Event != "complete" || e.Cycle != 30 {
		t.Errorf("complete event: %+v", e)
	}
}

func TestTracerChromeFormat(t *testing.T) {
	tr := newTracer(false)
	tr.issue(10, 7, "write", 0x80, 1, 0, 2)
	tr.point(15, 7, "snoop", 2)
	tr.complete(40, 7)

	var buf bytes.Buffer
	if err := tr.writeChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
			PID   int    `json:"pid"`
			TID   int    `json:"tid"`
			ID    uint64 `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// Expect: metadata for CMP 1 and 2, begin, instant, end.
	var begins, ends, metas int
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "b":
			begins++
			if e.PID != 1 || e.TID != 0 || e.TS != 10 || e.ID != 7 {
				t.Errorf("begin event: %+v", e)
			}
		case "e":
			ends++
			// The end mirrors the begin's pid/tid even though complete
			// was recorded with the span's stored provenance.
			if e.PID != 1 || e.TID != 0 || e.TS != 40 || e.ID != 7 {
				t.Errorf("end event: %+v", e)
			}
		case "M":
			metas++
		}
	}
	if begins != 1 || ends != 1 {
		t.Errorf("want one begin and one end, got b=%d e=%d", begins, ends)
	}
	if metas != 2 {
		t.Errorf("want process metadata for CMPs 1 and 2, got %d", metas)
	}
}

func TestCollectorCloseWritesAllOutputs(t *testing.T) {
	var trace, metrics, chart bytes.Buffer
	c := New(Config{Trace: &trace, TraceFormat: FormatChrome,
		Metrics: &metrics, Chart: &chart, IntervalCycles: 50})
	if c == nil {
		t.Fatal("collector disabled")
	}
	kern := sim.NewKernel()
	c.InstallKernelProbe(kern, func() Sample { return Sample{EventsExecuted: kern.Executed} })
	c.TxnIssue(0, 1, "read", 0x40, 0, 0, 0)
	for i := 0; i < 10; i++ {
		kern.After(sim.Time(20*i+1), func() {})
	}
	kern.Run(1000)
	c.TxnComplete(kern.Now(), 1)
	if err := c.Close(kern.Now()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(trace.Bytes()) {
		t.Error("chrome trace is not valid JSON")
	}
	if !strings.HasPrefix(metrics.String(), csvHeader) {
		t.Error("metrics CSV missing header")
	}
	if c.SampleCount() == 0 {
		t.Error("no interval rows sampled")
	}
	if !strings.Contains(chart.String(), "<svg") {
		t.Error("chart output is not SVG")
	}
}
