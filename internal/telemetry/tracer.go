package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// event is one recorded trace event. Events are buffered in kernel
// execution order (deterministic for a fixed configuration and seed) and
// encoded only at Close, keeping the in-run cost to an append.
type event struct {
	Cycle uint64
	Txn   uint64
	// Name: "issue", "snoop", "supply", "squash", "retry", "memread",
	// "data", "complete", "hop".
	Name string
	// Issue-only provenance.
	Kind    string
	Addr    uint64
	Retries int
	// Node where the event happened; the requesting core for issue.
	Node int
	Core int
	// Hop-only: ring index and destination node.
	Ring int
	To   int
	// Note carries free text for diagnostic instants (watchdog dumps).
	Note string
}

// span remembers an open transaction's issue provenance so its Chrome
// end-event can carry matching name/pid/tid.
type span struct {
	kind    string
	addr    uint64
	node    int
	core    int
	retries int
}

type tracer struct {
	events []event
	open   map[uint64]span
	hops   bool
}

func newTracer(hops bool) *tracer {
	return &tracer{open: map[uint64]span{}, hops: hops}
}

func (t *tracer) issue(cycle, txn uint64, kind string, addr uint64, node, core, retries int) {
	t.events = append(t.events, event{Cycle: cycle, Txn: txn, Name: "issue",
		Kind: kind, Addr: addr, Node: node, Core: core, Retries: retries})
	t.open[txn] = span{kind: kind, addr: addr, node: node, core: core, retries: retries}
}

func (t *tracer) point(cycle, txn uint64, name string, node int) {
	t.events = append(t.events, event{Cycle: cycle, Txn: txn, Name: name, Node: node})
}

func (t *tracer) complete(cycle, txn uint64) {
	sp := t.open[txn]
	t.events = append(t.events, event{Cycle: cycle, Txn: txn, Name: "complete",
		Kind: sp.kind, Addr: sp.addr, Node: sp.node, Core: sp.core, Retries: sp.retries})
	delete(t.open, txn)
}

func (t *tracer) hop(cycle, txn uint64, ringIdx, from, to int) {
	t.events = append(t.events, event{Cycle: cycle, Txn: txn, Name: "hop",
		Ring: ringIdx, Node: from, To: to})
}

// note records a diagnostic instant with free text (watchdog dumps).
func (t *tracer) note(cycle uint64, name, note string) {
	t.events = append(t.events, event{Cycle: cycle, Name: name, Note: note})
}

// jsonlEvent is the JSONL wire shape.
type jsonlEvent struct {
	Cycle   uint64 `json:"cycle"`
	Event   string `json:"event"`
	Txn     uint64 `json:"txn"`
	Kind    string `json:"kind,omitempty"`
	Addr    string `json:"addr,omitempty"`
	Node    int    `json:"node"`
	Core    *int   `json:"core,omitempty"`
	Retries int    `json:"retries,omitempty"`
	Ring    *int   `json:"ring,omitempty"`
	To      *int   `json:"to,omitempty"`
	Note    string `json:"note,omitempty"`
}

// writeJSONL encodes one event per line.
func (t *tracer) writeJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.events {
		e := &t.events[i]
		je := jsonlEvent{Cycle: e.Cycle, Event: e.Name, Txn: e.Txn, Node: e.Node}
		switch e.Name {
		case "issue", "complete":
			je.Kind = e.Kind
			je.Addr = fmt.Sprintf("%#x", e.Addr)
			je.Core = intp(e.Core)
			je.Retries = e.Retries
		case "hop":
			je.Ring = intp(e.Ring)
			je.To = intp(e.To)
		default:
			je.Note = e.Note
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func intp(v int) *int { return &v }

// chromeEvent is the Chrome trace-event wire shape. Timestamps are in
// microseconds; we map one simulated cycle to one microsecond, so
// Perfetto's time axis reads directly in cycles.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    uint64         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// writeChrome encodes the Chrome trace-event JSON object format:
// transactions as async begin/end pairs (id = transaction id, pid = the
// requesting CMP, tid = the requesting core), lifecycle points as
// thread-scoped instants at the node where they happened, ring hops as
// instants on the link's source node.
func (t *tracer) writeChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		raw, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		_, err = bw.Write(raw)
		return err
	}

	// Process-naming metadata so Perfetto shows "CMP n" tracks.
	pidSet := map[int]bool{}
	for i := range t.events {
		pidSet[t.events[i].Node] = true
		if t.events[i].Name == "hop" {
			pidSet[t.events[i].To] = true
		}
	}
	pids := make([]int, 0, len(pidSet))
	for pid := range pidSet {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		if err := emit(chromeEvent{Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": fmt.Sprintf("CMP %d", pid)}}); err != nil {
			return err
		}
	}

	// Track open spans so end events mirror their begin's identity.
	type openSpan struct {
		name string
		pid  int
		tid  int
	}
	spans := map[uint64]openSpan{}
	for i := range t.events {
		e := &t.events[i]
		var ce chromeEvent
		switch e.Name {
		case "issue":
			name := fmt.Sprintf("%s %#x", e.Kind, e.Addr)
			spans[e.Txn] = openSpan{name: name, pid: e.Node, tid: e.Core}
			ce = chromeEvent{Name: name, Cat: "txn", Phase: "b", TS: e.Cycle,
				PID: e.Node, TID: e.Core, ID: e.Txn,
				Args: map[string]any{"addr": fmt.Sprintf("%#x", e.Addr), "retries": e.Retries}}
		case "complete":
			sp, ok := spans[e.Txn]
			if !ok {
				sp = openSpan{name: fmt.Sprintf("%s %#x", e.Kind, e.Addr), pid: e.Node, tid: e.Core}
			}
			delete(spans, e.Txn)
			ce = chromeEvent{Name: sp.name, Cat: "txn", Phase: "e", TS: e.Cycle,
				PID: sp.pid, TID: sp.tid, ID: e.Txn}
		case "hop":
			ce = chromeEvent{Name: fmt.Sprintf("hop r%d %d->%d", e.Ring, e.Node, e.To),
				Cat: "ring", Phase: "i", Scope: "p", TS: e.Cycle, PID: e.Node, ID: e.Txn}
		default:
			ce = chromeEvent{Name: e.Name, Cat: "txn", Phase: "i", Scope: "p",
				TS: e.Cycle, PID: e.Node, ID: e.Txn}
			if e.Note != "" {
				ce.Args = map[string]any{"note": e.Note}
			}
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
