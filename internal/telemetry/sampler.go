package telemetry

import (
	"fmt"
	"strings"

	"flexsnoop/internal/stats"
)

// Row is one emitted interval of the time-series. The JSON tags match the
// metrics CSV column names, so the NDJSON stream a job server exposes and
// the CSV file a batch run writes describe the same schema.
type Row struct {
	Cycle uint64 `json:"cycle"` // end of the interval
	// Per-interval deltas.
	Events   uint64  `json:"events"`
	Reads    uint64  `json:"read_reqs"`
	Writes   uint64  `json:"write_reqs"`
	SnoopOps uint64  `json:"snoop_ops"`
	Squashes uint64  `json:"squashes"`
	Retries  uint64  `json:"retries"`
	EnergyNJ float64 `json:"energy_nj"`
	// Instantaneous gauges at the boundary.
	Outstanding int `json:"outstanding_txns"`
	QueueDepth  int `json:"queue_depth"`
	// Derived occupancy fractions (reserved cycles per resource-cycle in
	// the interval; can transiently exceed 1 because reservations book
	// their full duration up front).
	RingOcc float64 `json:"ring_occupancy"`
	BusOcc  float64 `json:"bus_occupancy"`
	DRAMOcc float64 `json:"dram_occupancy"`
	// SquashRate is squashes per ring request issued this interval.
	SquashRate float64 `json:"squash_rate"`
	// Predictor accuracy fractions over this interval's classifications.
	TP float64 `json:"pred_tp"`
	FP float64 `json:"pred_fp"`
	FN float64 `json:"pred_fn"`
}

// sampler turns cumulative Sample snapshots into interval rows. It is
// driven by the kernel probe: observe runs after every executed event
// and emits a row each time simulated time crosses an interval boundary.
type sampler struct {
	interval uint64
	snapshot func() Sample
	onRow    func(Row)

	last      Sample
	lastCycle uint64
	next      uint64
	rows      []Row
}

func newSampler(interval uint64, onRow func(Row)) *sampler {
	return &sampler{interval: interval, onRow: onRow}
}

// arm installs the snapshot source and takes the cycle-zero baseline.
func (s *sampler) arm(snapshot func() Sample) {
	s.snapshot = snapshot
	s.last = snapshot()
	s.next = s.interval
}

// observe emits rows for every interval boundary now has crossed. Long
// event gaps emit one row per crossed boundary (the later ones all-zero),
// keeping the time axis uniform.
func (s *sampler) observe(now uint64) {
	if s.snapshot == nil {
		return
	}
	for now >= s.next {
		s.emit(s.next)
		s.next += s.interval
	}
}

// finish emits the final partial interval at the run's last cycle.
func (s *sampler) finish(final uint64) {
	if s.snapshot == nil {
		return
	}
	s.observe(final)
	if final > s.lastCycle {
		s.emit(final)
	}
}

// emit appends the row covering (lastCycle, boundary].
func (s *sampler) emit(boundary uint64) {
	cur := s.snapshot()
	dt := boundary - s.lastCycle
	r := Row{
		Cycle:       boundary,
		Events:      cur.EventsExecuted - s.last.EventsExecuted,
		Reads:       cur.ReadRequests - s.last.ReadRequests,
		Writes:      cur.WriteRequests - s.last.WriteRequests,
		SnoopOps:    cur.SnoopOps - s.last.SnoopOps,
		Squashes:    cur.Squashes - s.last.Squashes,
		Retries:     cur.Retries - s.last.Retries,
		EnergyNJ:    cur.EnergyNJ - s.last.EnergyNJ,
		Outstanding: cur.OutstandingTxns,
		QueueDepth:  cur.QueueDepth,
	}
	if dt > 0 {
		r.RingOcc = occupancy(cur.RingBusyCycles-s.last.RingBusyCycles, cur.RingLinks, dt)
		r.BusOcc = occupancy(cur.BusBusyCycles-s.last.BusBusyCycles, cur.Buses, dt)
		r.DRAMOcc = occupancy(cur.DRAMBusyCycles-s.last.DRAMBusyCycles, cur.DRAMChannels, dt)
	}
	if reqs := r.Reads + r.Writes; reqs > 0 {
		r.SquashRate = float64(r.Squashes) / float64(reqs)
	}
	dTP := cur.PredTP - s.last.PredTP
	dTN := cur.PredTN - s.last.PredTN
	dFP := cur.PredFP - s.last.PredFP
	dFN := cur.PredFN - s.last.PredFN
	if total := dTP + dTN + dFP + dFN; total > 0 {
		r.TP = float64(dTP) / float64(total)
		r.FP = float64(dFP) / float64(total)
		r.FN = float64(dFN) / float64(total)
	}
	s.rows = append(s.rows, r)
	s.last = cur
	s.lastCycle = boundary
	if s.onRow != nil {
		s.onRow(r)
	}
}

func occupancy(busy uint64, resources int, dt uint64) float64 {
	if resources <= 0 {
		return 0
	}
	return float64(busy) / (float64(resources) * float64(dt))
}

// csvHeader lists the metrics CSV columns, one row per interval.
const csvHeader = "cycle,events,outstanding_txns,queue_depth," +
	"ring_occupancy,bus_occupancy,dram_occupancy," +
	"read_reqs,write_reqs,snoop_ops,squashes,retries,squash_rate," +
	"pred_tp,pred_fp,pred_fn,energy_nj"

// csv renders the time-series.
func (s *sampler) csv() string {
	var b strings.Builder
	b.WriteString(csvHeader + "\n")
	for _, r := range s.rows {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%.6g,%.6g,%.6g,%d,%d,%d,%d,%d,%.6g,%.6g,%.6g,%.6g,%.6g\n",
			r.Cycle, r.Events, r.Outstanding, r.QueueDepth,
			r.RingOcc, r.BusOcc, r.DRAMOcc,
			r.Reads, r.Writes, r.SnoopOps, r.Squashes, r.Retries, r.SquashRate,
			r.TP, r.FP, r.FN, r.EnergyNJ)
	}
	return b.String()
}

// chartSVG renders the occupancy and squash-rate series as a line chart.
func (s *sampler) chartSVG() string {
	c := stats.NewSVGLineChart("Interval telemetry", "cycle", "fraction")
	for _, r := range s.rows {
		x := float64(r.Cycle)
		c.Add("ring occupancy", x, r.RingOcc)
		c.Add("bus occupancy", x, r.BusOcc)
		c.Add("dram occupancy", x, r.DRAMOcc)
		c.Add("squash rate", x, r.SquashRate)
	}
	return c.String()
}
