// Package telemetry is the simulator's observability layer: structured
// per-transaction event tracing, interval time-series metrics, and the
// probe hooks the rest of the stack reports into.
//
// The layer is built for two properties:
//
//   - Zero perturbation. Probes never schedule kernel events, reserve
//     buses or touch protocol state, so a run with telemetry enabled is
//     cycle-for-cycle identical to the same run without it. The interval
//     sampler piggybacks on the kernel's per-event probe instead of
//     injecting its own ticker events.
//
//   - Near-zero cost when disabled. Every hook is a nil func or nil
//     pointer check at the call site; no allocation, no formatting.
//
// Two exports are produced. The tracer records each coherence
// transaction's lifecycle (issue → snoops → supply/squash/retry →
// data → completion) and writes either Chrome trace-event JSON — load
// it in Perfetto (https://ui.perfetto.dev) or chrome://tracing — or a
// JSONL stream for ad-hoc processing. The sampler snapshots cumulative
// resource counters every IntervalCycles and emits per-interval
// ring/bus/DRAM occupancy, outstanding transactions, squash rate and
// predictor accuracy as CSV, optionally rendered as an SVG line chart.
package telemetry

import (
	"fmt"
	"io"

	"flexsnoop/internal/sim"
)

// Trace output formats.
const (
	// FormatChrome is the Chrome trace-event JSON object format
	// ({"traceEvents": [...]}), loadable in Perfetto.
	FormatChrome = "chrome"
	// FormatJSONL is one JSON object per line, one line per event.
	FormatJSONL = "jsonl"
)

// DefaultIntervalCycles is the sampling period when Config leaves
// IntervalCycles zero.
const DefaultIntervalCycles = 5000

// Config selects the telemetry outputs for one run. The zero value (and
// a nil *Config) disables everything.
type Config struct {
	// Trace receives the transaction event stream; nil disables tracing.
	Trace io.Writer
	// TraceFormat is FormatChrome (the default) or FormatJSONL.
	TraceFormat string
	// TraceHops additionally records every ring link-segment
	// transmission as a trace event. Off by default: hops multiply the
	// event volume by roughly the ring size.
	TraceHops bool

	// Metrics receives the interval time-series as CSV; nil disables
	// sampling (unless Chart or OnRow is set).
	Metrics io.Writer
	// IntervalCycles is the sampling period (default
	// DefaultIntervalCycles).
	IntervalCycles uint64
	// Chart receives an SVG line chart of the sampled occupancies and
	// rates; nil disables it.
	Chart io.Writer
	// OnRow, when non-nil, receives every interval row the moment it is
	// emitted, in cycle order, called on the simulation goroutine. It is
	// the streaming analogue of Metrics: a job server taps it to serve
	// live NDJSON metrics from a running simulation. The callback must
	// not block for long — the simulation waits on it — and must not
	// call back into the collector.
	OnRow func(Row)
}

// Enabled reports whether any output is requested.
func (c *Config) Enabled() bool {
	return c != nil && (c.Trace != nil || c.Metrics != nil || c.Chart != nil || c.OnRow != nil)
}

// Collector is one run's telemetry sink. All probe methods are safe on a
// nil receiver, so instrumented code may call them unconditionally; the
// simulator's hot paths additionally guard with their own nil checks.
//
// A Collector is single-run and single-goroutine, like the simulation
// kernel it observes.
type Collector struct {
	cfg     Config
	tracer  *tracer
	sampler *sampler
}

// New builds a collector for a configuration. It returns nil when the
// configuration requests no output, so callers can wire the result
// directly into the nil-checked probe fields.
func New(cfg Config) *Collector {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.IntervalCycles == 0 {
		cfg.IntervalCycles = DefaultIntervalCycles
	}
	if cfg.TraceFormat == "" {
		cfg.TraceFormat = FormatChrome
	}
	c := &Collector{cfg: cfg}
	if cfg.Trace != nil {
		c.tracer = newTracer(cfg.TraceHops)
	}
	if cfg.Metrics != nil || cfg.Chart != nil || cfg.OnRow != nil {
		c.sampler = newSampler(cfg.IntervalCycles, cfg.OnRow)
	}
	return c
}

// TraceHops reports whether link-hop tracing is requested (the engine
// only installs ring probes when it is).
func (c *Collector) TraceHops() bool { return c != nil && c.tracer != nil && c.cfg.TraceHops }

// Tracing reports whether transaction events are being recorded.
func (c *Collector) Tracing() bool { return c != nil && c.tracer != nil }

// --- Transaction lifecycle probes (tracer) ---

// TxnIssue records a transaction entering the ring. kind is "read" or
// "write"; retries counts earlier squashed attempts of the same access.
func (c *Collector) TxnIssue(now sim.Time, txn uint64, kind string, addr uint64, node, core, retries int) {
	if c == nil || c.tracer == nil {
		return
	}
	c.tracer.issue(uint64(now), txn, kind, addr, node, core, retries)
}

// TxnEvent records a lifecycle point of an in-flight transaction at a
// node: "snoop", "supply", "squash", "retry", "memread", "data".
func (c *Collector) TxnEvent(now sim.Time, txn uint64, event string, node int) {
	if c == nil || c.tracer == nil {
		return
	}
	c.tracer.point(uint64(now), txn, event, node)
}

// TxnComplete records a transaction retiring.
func (c *Collector) TxnComplete(now sim.Time, txn uint64) {
	if c == nil || c.tracer == nil {
		return
	}
	c.tracer.complete(uint64(now), txn)
}

// WatchdogEvent records a watchdog action (a degradation or a verdict)
// as an instant trace event with free-text detail.
func (c *Collector) WatchdogEvent(now sim.Time, event, detail string) {
	if c == nil || c.tracer == nil {
		return
	}
	c.tracer.note(uint64(now), event, detail)
}

// WatchdogDump records the watchdog's transaction-graph dump: a verdict
// instant followed by one "watchdog-dump" instant per line, preserved in
// both trace output formats.
func (c *Collector) WatchdogDump(now sim.Time, verdict string, lines []string) {
	if c == nil || c.tracer == nil {
		return
	}
	c.tracer.note(uint64(now), "watchdog", verdict)
	for _, l := range lines {
		c.tracer.note(uint64(now), "watchdog-dump", l)
	}
}

// RingHop records one link-segment transmission (TraceHops only).
func (c *Collector) RingHop(depart sim.Time, ringIdx, from, to int, txn uint64) {
	if c == nil || c.tracer == nil || !c.cfg.TraceHops {
		return
	}
	c.tracer.hop(uint64(depart), txn, ringIdx, from, to)
}

// --- Interval sampling ---

// Sample is a cumulative snapshot of the machine's counters, taken at
// interval boundaries. The sampler differences consecutive snapshots to
// produce per-interval rates and occupancies.
type Sample struct {
	// Kernel.
	EventsExecuted uint64
	QueueDepth     int

	// Protocol.
	OutstandingTxns int
	ReadRequests    uint64
	WriteRequests   uint64
	SnoopOps        uint64
	Squashes        uint64
	Retries         uint64

	// Resources: total reserved-busy cycles and resource counts, so the
	// sampler can turn deltas into per-resource occupancy fractions.
	RingBusyCycles uint64
	RingLinks      int
	BusBusyCycles  uint64
	Buses          int
	DRAMBusyCycles uint64
	DRAMChannels   int

	// Supplier-predictor accuracy (cumulative classification counts).
	PredTP, PredTN, PredFP, PredFN uint64

	// Snoop-servicing energy so far.
	EnergyNJ float64
}

// InstallKernelProbe arms interval sampling: snapshot() is called at
// every IntervalCycles boundary the simulation crosses (and once more at
// Close). It chains onto any probe already installed on the kernel.
// No-op without a sampler.
func (c *Collector) InstallKernelProbe(kern *sim.Kernel, snapshot func() Sample) {
	if c == nil || c.sampler == nil {
		return
	}
	c.sampler.arm(snapshot)
	prev := kern.Probe
	kern.Probe = func(now sim.Time) {
		if prev != nil {
			prev(now)
		}
		c.sampler.observe(uint64(now))
	}
}

// Close takes the final partial sample at the run's last cycle and
// writes every configured output. It must be called exactly once, after
// the kernel drains.
func (c *Collector) Close(final sim.Time) error {
	if c == nil {
		return nil
	}
	if c.sampler != nil {
		c.sampler.finish(uint64(final))
		if c.cfg.Metrics != nil {
			if _, err := io.WriteString(c.cfg.Metrics, c.sampler.csv()); err != nil {
				return fmt.Errorf("telemetry: metrics: %w", err)
			}
		}
		if c.cfg.Chart != nil {
			if _, err := io.WriteString(c.cfg.Chart, c.sampler.chartSVG()); err != nil {
				return fmt.Errorf("telemetry: chart: %w", err)
			}
		}
	}
	if c.tracer != nil {
		var err error
		switch c.cfg.TraceFormat {
		case FormatJSONL:
			err = c.tracer.writeJSONL(c.cfg.Trace)
		case FormatChrome:
			err = c.tracer.writeChrome(c.cfg.Trace)
		default:
			err = fmt.Errorf("unknown trace format %q (want %q or %q)",
				c.cfg.TraceFormat, FormatChrome, FormatJSONL)
		}
		if err != nil {
			return fmt.Errorf("telemetry: trace: %w", err)
		}
	}
	return nil
}

// EventCount reports the number of recorded trace events (tests).
func (c *Collector) EventCount() int {
	if c == nil || c.tracer == nil {
		return 0
	}
	return len(c.tracer.events)
}

// SampleCount reports the number of emitted interval rows (tests).
func (c *Collector) SampleCount() int {
	if c == nil || c.sampler == nil {
		return 0
	}
	return len(c.sampler.rows)
}
