// Package predictor implements the Supplier Predictors of Section 4.3: the
// structures each CMP gateway consults to decide whether the CMP holds the
// requested line in a supplier state (S_G, E, D or T).
//
// Three families are provided, mirroring the paper's taxonomy:
//
//   - Subset (Section 4.3.1): a set-associative cache of supplier-line
//     addresses. No false positives; conflict evictions cause false
//     negatives.
//   - Superset (Section 4.3.2): a counting Bloom filter, optionally
//     augmented with a JETTY-style exclude cache. No false negatives;
//     aliasing causes false positives.
//   - Exact (Section 4.3.3): the Subset structure made exact by
//     downgrading the CMP line whenever its predictor entry is evicted.
//
// A Perfect predictor (used to model Oracle) peeks at actual cache state.
package predictor

import (
	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
)

// Predictor is the gateway-side supplier predictor interface.
//
// Insert is called when a line enters a supplier state in the CMP; Remove
// when a supplier line is evicted, invalidated or downgraded. For the
// Exact predictor, Insert may demand that the caller downgrade a victim
// line to keep the predictor exact.
type Predictor interface {
	// Predict reports whether the CMP is predicted to hold addr in a
	// supplier state.
	Predict(addr cache.LineAddr) bool

	// Insert trains the predictor with a new supplier line. When
	// mustDowngrade is true the caller must downgrade victim's supplier
	// state in the CMP (Exact only).
	Insert(addr cache.LineAddr) (victim cache.LineAddr, mustDowngrade bool)

	// Remove untrains the predictor when a line leaves supplier state.
	Remove(addr cache.LineAddr)

	// NoteFalsePositive tells the predictor one of its positive
	// predictions was wrong; the Superset predictor uses this to train
	// its exclude cache. Others ignore it.
	NoteFalsePositive(addr cache.LineAddr)

	// Kind identifies the predictor family (for energy accounting and
	// reporting).
	Kind() config.PredictorKind

	// Stats returns cumulative operation counts.
	Stats() Stats
}

// Stats counts predictor operations.
type Stats struct {
	Lookups uint64
	Inserts uint64
	Removes uint64
	// Downgrades counts Exact-predictor conflict evictions that forced a
	// line downgrade.
	Downgrades uint64
	// ExcludeHits counts negative predictions produced by the exclude
	// cache overriding a positive Bloom response.
	ExcludeHits uint64
}

// New builds a predictor from its configuration. PredictorPerfect requires
// the actual supplier-state oracle; pass it as isSupplier. PredictorNone
// returns nil: algorithms that never predict hold no predictor.
func New(cfg config.PredictorConfig, isSupplier func(cache.LineAddr) bool) Predictor {
	switch cfg.Kind {
	case config.PredictorNone:
		return nil
	case config.PredictorSubset:
		return NewSubset(cfg.Entries, cfg.Assoc)
	case config.PredictorSuperset:
		return NewSuperset(cfg.BloomFieldBits, cfg.Entries, cfg.Assoc, cfg.ExcludeCache)
	case config.PredictorExact:
		return NewExact(cfg.Entries, cfg.Assoc)
	case config.PredictorPerfect:
		return NewPerfect(isSupplier)
	default:
		panic("predictor: unknown predictor kind")
	}
}

// Accuracy classifies predictions against ground truth, producing the
// true/false positive/negative fractions of Figure 11.
type Accuracy struct {
	TruePos  uint64
	TrueNeg  uint64
	FalsePos uint64
	FalseNeg uint64
}

// Classify records one (prediction, actual) pair.
func (a *Accuracy) Classify(predicted, actual bool) {
	switch {
	case predicted && actual:
		a.TruePos++
	case predicted && !actual:
		a.FalsePos++
	case !predicted && actual:
		a.FalseNeg++
	default:
		a.TrueNeg++
	}
}

// Total returns the number of classified predictions.
func (a *Accuracy) Total() uint64 {
	return a.TruePos + a.TrueNeg + a.FalsePos + a.FalseNeg
}

// Fractions returns (TP, TN, FP, FN) as fractions of the total, or zeros
// when nothing was recorded.
func (a *Accuracy) Fractions() (tp, tn, fp, fn float64) {
	t := float64(a.Total())
	if t == 0 {
		return 0, 0, 0, 0
	}
	return float64(a.TruePos) / t, float64(a.TrueNeg) / t,
		float64(a.FalsePos) / t, float64(a.FalseNeg) / t
}

// Add accumulates another accuracy record into this one.
func (a *Accuracy) Add(b Accuracy) {
	a.TruePos += b.TruePos
	a.TrueNeg += b.TrueNeg
	a.FalsePos += b.FalsePos
	a.FalseNeg += b.FalseNeg
}
