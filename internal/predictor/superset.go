package predictor

import (
	"fmt"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/hotmap"
)

// BloomFilter is the counting Bloom filter of Figure 5(b): the line
// address is split into fields, each field indexes a separate table of
// counters. An address is possibly present iff every indexed counter is
// non-zero. Counting (rather than bit) entries allow removal.
type BloomFilter struct {
	fieldBits []uint
	shifts    []uint
	tables    [][]uint16
	// idx is the per-lookup index scratch buffer; the filter is used from
	// a single simulation goroutine, so reusing it is safe and keeps
	// MayContain/Add/Del allocation-free.
	idx []int
}

// NewBloomFilter builds a filter from per-field bit widths. Fields consume
// consecutive bit ranges of the line address starting at bit 0 (the line
// offset is already stripped from LineAddr).
func NewBloomFilter(fieldBits []uint) *BloomFilter {
	if len(fieldBits) == 0 {
		panic("predictor: bloom filter needs at least one field")
	}
	f := &BloomFilter{fieldBits: append([]uint(nil), fieldBits...)}
	shift := uint(0)
	for _, bits := range fieldBits {
		if bits == 0 || bits > 20 {
			panic(fmt.Sprintf("predictor: bloom field width %d out of range", bits))
		}
		f.shifts = append(f.shifts, shift)
		f.tables = append(f.tables, make([]uint16, 1<<bits))
		shift += bits
	}
	return f
}

func (f *BloomFilter) indices(addr cache.LineAddr) []int {
	if f.idx == nil {
		f.idx = make([]int, len(f.tables))
	}
	for i, bits := range f.fieldBits {
		f.idx[i] = int((addr >> f.shifts[i]) & cache.LineAddr(1<<bits-1))
	}
	return f.idx
}

// MayContain reports whether the address could be in the tracked set.
func (f *BloomFilter) MayContain(addr cache.LineAddr) bool {
	for i, idx := range f.indices(addr) {
		if f.tables[i][idx] == 0 {
			return false
		}
	}
	return true
}

// Add increments the address's counters.
func (f *BloomFilter) Add(addr cache.LineAddr) {
	for i, idx := range f.indices(addr) {
		if f.tables[i][idx] == ^uint16(0) {
			panic("predictor: bloom counter overflow")
		}
		f.tables[i][idx]++
	}
}

// Del decrements the address's counters. Deleting an address that was
// never added corrupts the filter, so it panics.
func (f *BloomFilter) Del(addr cache.LineAddr) {
	for i, idx := range f.indices(addr) {
		if f.tables[i][idx] == 0 {
			panic("predictor: bloom counter underflow — removal without insertion")
		}
		f.tables[i][idx]--
	}
}

// SizeBits returns the total number of counter entries (for reporting).
func (f *BloomFilter) SizeBits() int {
	n := 0
	for _, t := range f.tables {
		n += len(t)
	}
	return n
}

// SupersetPredictor tracks a strict superset of the CMP's supplier lines
// with a counting Bloom filter, optionally refined by a JETTY-style
// exclude cache of addresses known not to be supplier lines (Section
// 4.3.2). It never produces false negatives.
type SupersetPredictor struct {
	bloom   *BloomFilter
	exclude *cache.TagArray // nil when disabled
	stats   Stats

	// tracked mirrors the true inserted multiset so Remove can be
	// validated in tests; it holds reference counts.
	tracked hotmap.Table[int32]
}

// NewSuperset builds a superset predictor. excludeEntries/excludeAssoc
// size the exclude cache; useExclude disables it entirely when false.
func NewSuperset(fieldBits []uint, excludeEntries, excludeAssoc int, useExclude bool) *SupersetPredictor {
	p := &SupersetPredictor{
		bloom:   NewBloomFilter(fieldBits),
		tracked: *hotmap.New[int32](256),
	}
	if useExclude {
		if excludeEntries <= 0 || excludeAssoc <= 0 || excludeEntries%excludeAssoc != 0 {
			panic(fmt.Sprintf("predictor: bad exclude-cache geometry %d/%d", excludeEntries, excludeAssoc))
		}
		p.exclude = cache.NewTagArray(excludeEntries/excludeAssoc, excludeAssoc)
	}
	return p
}

// Predict is positive iff the Bloom filter may contain the address and the
// exclude cache does not list it as a known non-supplier.
func (p *SupersetPredictor) Predict(addr cache.LineAddr) bool {
	p.stats.Lookups++
	if !p.bloom.MayContain(addr) {
		return false
	}
	if p.exclude != nil && p.exclude.Access(addr) {
		p.stats.ExcludeHits++
		return false
	}
	return true
}

// Insert adds the line to the filter and clears any stale exclude-cache
// entry (the line is now genuinely a supplier line, so a cached "not
// present" verdict would be a false negative — forbidden).
func (p *SupersetPredictor) Insert(addr cache.LineAddr) (cache.LineAddr, bool) {
	p.stats.Inserts++
	p.bloom.Add(addr)
	*p.tracked.Upsert(uint64(addr))++
	if p.exclude != nil {
		p.exclude.Invalidate(addr)
	}
	return 0, false
}

// Remove decrements the filter when the line leaves supplier state.
func (p *SupersetPredictor) Remove(addr cache.LineAddr) {
	p.stats.Removes++
	c, _ := p.tracked.Get(uint64(addr))
	if c == 0 {
		panic("predictor: superset Remove without matching Insert")
	}
	if c > 1 {
		p.tracked.Put(uint64(addr), c-1)
	} else {
		p.tracked.Delete(uint64(addr))
	}
	p.bloom.Del(addr)
}

// NoteFalsePositive trains the exclude cache with an address the Bloom
// filter wrongly reported (JETTY's refinement).
func (p *SupersetPredictor) NoteFalsePositive(addr cache.LineAddr) {
	if p.exclude == nil {
		return
	}
	// Guard against a racing Insert: never exclude a genuinely tracked
	// address, which would create a false negative.
	if p.tracked.Has(uint64(addr)) {
		return
	}
	p.exclude.Insert(addr)
}

// Kind returns config.PredictorSuperset.
func (p *SupersetPredictor) Kind() config.PredictorKind { return config.PredictorSuperset }

// Stats returns operation counts.
func (p *SupersetPredictor) Stats() Stats { return p.stats }

// TrackedLen reports the number of genuinely inserted addresses (tests).
func (p *SupersetPredictor) TrackedLen() int { return p.tracked.Len() }
