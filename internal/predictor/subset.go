package predictor

import (
	"fmt"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
)

// SubsetPredictor keeps a strict subset of the CMP's supplier lines in a
// set-associative address cache (Section 4.3.1, Figure 5(a)). Conflict
// evictions silently drop entries, producing false negatives; Remove on
// eviction/invalidation guarantees there are never false positives.
type SubsetPredictor struct {
	table *cache.TagArray
	stats Stats
}

// NewSubset builds a subset predictor with the given entry count and
// associativity (Table 4: 512/2K/8K entries, 8-way).
func NewSubset(entries, assoc int) *SubsetPredictor {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic(fmt.Sprintf("predictor: bad subset geometry %d entries / %d ways", entries, assoc))
	}
	return &SubsetPredictor{table: cache.NewTagArray(entries/assoc, assoc)}
}

// Predict reports presence in the table, touching a hit to MRU.
func (p *SubsetPredictor) Predict(addr cache.LineAddr) bool {
	p.stats.Lookups++
	return p.table.Access(addr)
}

// Insert records a new supplier line, possibly silently evicting an LRU
// entry (which becomes a future false negative, never an incorrectness).
func (p *SubsetPredictor) Insert(addr cache.LineAddr) (cache.LineAddr, bool) {
	p.stats.Inserts++
	p.table.Insert(addr)
	return 0, false
}

// Remove drops the entry when the line leaves supplier state, preventing
// false positives.
func (p *SubsetPredictor) Remove(addr cache.LineAddr) {
	p.stats.Removes++
	p.table.Invalidate(addr)
}

// NoteFalsePositive is impossible for a subset predictor by construction;
// it is a no-op (and reaching it indicates a protocol bug upstream).
func (p *SubsetPredictor) NoteFalsePositive(cache.LineAddr) {}

// Kind returns config.PredictorSubset.
func (p *SubsetPredictor) Kind() config.PredictorKind { return config.PredictorSubset }

// Stats returns operation counts.
func (p *SubsetPredictor) Stats() Stats { return p.stats }

// Len reports the number of tracked addresses (for tests).
func (p *SubsetPredictor) Len() int { return p.table.Len() }

// ExactPredictor keeps exactly the set of supplier lines (Section 4.3.3).
// It reuses the Subset structure, but a conflict eviction returns the
// victim address with mustDowngrade=true: the protocol must downgrade that
// line's supplier state in the CMP so the predictor stays exact.
type ExactPredictor struct {
	table *cache.TagArray
	stats Stats
}

// NewExact builds an exact predictor.
func NewExact(entries, assoc int) *ExactPredictor {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic(fmt.Sprintf("predictor: bad exact geometry %d entries / %d ways", entries, assoc))
	}
	return &ExactPredictor{table: cache.NewTagArray(entries/assoc, assoc)}
}

// Predict reports presence in the table, touching a hit to MRU.
func (p *ExactPredictor) Predict(addr cache.LineAddr) bool {
	p.stats.Lookups++
	return p.table.Access(addr)
}

// Insert records a new supplier line. If the set was full, the evicted
// entry's line must be downgraded by the caller.
func (p *ExactPredictor) Insert(addr cache.LineAddr) (cache.LineAddr, bool) {
	p.stats.Inserts++
	victim, evicted := p.table.Insert(addr)
	if evicted {
		p.stats.Downgrades++
		return victim, true
	}
	return 0, false
}

// Remove drops the entry when the line leaves supplier state.
func (p *ExactPredictor) Remove(addr cache.LineAddr) {
	p.stats.Removes++
	p.table.Invalidate(addr)
}

// NoteFalsePositive is impossible for an exact predictor; no-op.
func (p *ExactPredictor) NoteFalsePositive(cache.LineAddr) {}

// Kind returns config.PredictorExact.
func (p *ExactPredictor) Kind() config.PredictorKind { return config.PredictorExact }

// Stats returns operation counts.
func (p *ExactPredictor) Stats() Stats { return p.stats }

// Len reports the number of tracked addresses (for tests).
func (p *ExactPredictor) Len() int { return p.table.Len() }

// PerfectPredictor consults the actual CMP cache state; it models the
// Oracle algorithm's perfect knowledge.
type PerfectPredictor struct {
	isSupplier func(cache.LineAddr) bool
	stats      Stats
}

// NewPerfect wraps a supplier-state oracle.
func NewPerfect(isSupplier func(cache.LineAddr) bool) *PerfectPredictor {
	if isSupplier == nil {
		panic("predictor: perfect predictor needs a supplier oracle")
	}
	return &PerfectPredictor{isSupplier: isSupplier}
}

// Predict returns the true supplier status.
func (p *PerfectPredictor) Predict(addr cache.LineAddr) bool {
	p.stats.Lookups++
	return p.isSupplier(addr)
}

// Insert is a no-op: the oracle already sees the caches.
func (p *PerfectPredictor) Insert(cache.LineAddr) (cache.LineAddr, bool) { return 0, false }

// Remove is a no-op.
func (p *PerfectPredictor) Remove(cache.LineAddr) {}

// NoteFalsePositive is impossible; no-op.
func (p *PerfectPredictor) NoteFalsePositive(cache.LineAddr) {}

// Kind returns config.PredictorPerfect.
func (p *PerfectPredictor) Kind() config.PredictorKind { return config.PredictorPerfect }

// Stats returns operation counts.
func (p *PerfectPredictor) Stats() Stats { return p.stats }
