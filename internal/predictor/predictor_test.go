package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
)

func TestNewFromConfig(t *testing.T) {
	oracle := func(cache.LineAddr) bool { return false }
	cases := []struct {
		cfg  config.PredictorConfig
		kind config.PredictorKind
	}{
		{config.Sub2k(), config.PredictorSubset},
		{config.SupY2k(), config.PredictorSuperset},
		{config.Exa2k(), config.PredictorExact},
		{config.Perfect(), config.PredictorPerfect},
	}
	for _, tc := range cases {
		p := New(tc.cfg, oracle)
		if p == nil {
			t.Fatalf("New(%s) returned nil", tc.cfg.Name)
		}
		if p.Kind() != tc.kind {
			t.Errorf("New(%s).Kind = %v, want %v", tc.cfg.Name, p.Kind(), tc.kind)
		}
	}
	if New(config.NoPredictor(), oracle) != nil {
		t.Error("New(NoPredictor) should return nil")
	}
}

func TestSubsetBasic(t *testing.T) {
	p := NewSubset(16, 4)
	if p.Predict(1) {
		t.Error("empty predictor predicted positive")
	}
	p.Insert(1)
	if !p.Predict(1) {
		t.Error("inserted address predicted negative")
	}
	p.Remove(1)
	if p.Predict(1) {
		t.Error("removed address predicted positive")
	}
}

// TestSubsetNoFalsePositives is the defining property of Section 4.2: for
// any insert/remove sequence, a positive prediction implies the address is
// genuinely in the reference supplier set.
func TestSubsetNoFalsePositives(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewSubset(8, 2) // tiny: force conflict evictions
		ref := map[cache.LineAddr]bool{}
		for _, op := range ops {
			addr := cache.LineAddr(op % 256)
			if op&0x8000 != 0 {
				if ref[addr] {
					p.Remove(addr)
					delete(ref, addr)
				}
			} else if !ref[addr] {
				p.Insert(addr)
				ref[addr] = true
			}
			if p.Predict(addr) && !ref[addr] {
				return false // false positive
			}
		}
		// Check over the whole universe too.
		for a := cache.LineAddr(0); a < 256; a++ {
			if p.Predict(a) && !ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSubsetFalseNegativesUnderPressure(t *testing.T) {
	p := NewSubset(8, 2)
	// Insert far more supplier lines than the table holds.
	for a := cache.LineAddr(0); a < 64; a++ {
		p.Insert(a)
	}
	neg := 0
	for a := cache.LineAddr(0); a < 64; a++ {
		if !p.Predict(a) {
			neg++
		}
	}
	if neg == 0 {
		t.Error("overfull subset predictor produced no false negatives")
	}
	if p.Len() > 8 {
		t.Errorf("predictor holds %d entries, capacity 8", p.Len())
	}
}

// TestSupersetNoFalseNegatives is the defining property of Section 4.3.2:
// any genuinely tracked address must predict positive, for any
// insert/remove/false-positive-training sequence.
func TestSupersetNoFalseNegatives(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewSuperset([]uint{4, 3}, 8, 2, true) // tiny: force aliasing
		ref := map[cache.LineAddr]bool{}
		for _, op := range ops {
			addr := cache.LineAddr(op % 512)
			switch {
			case op&0x8000 != 0:
				if ref[addr] {
					p.Remove(addr)
					delete(ref, addr)
				}
			case op&0x4000 != 0:
				// Adversarial exclude-cache training attempts.
				if !ref[addr] {
					p.NoteFalsePositive(addr)
				}
			default:
				if !ref[addr] {
					p.Insert(addr)
					ref[addr] = true
				}
			}
		}
		for a := range ref {
			if !p.Predict(a) {
				return false // false negative: incorrect execution
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSupersetFalsePositivesFromAliasing(t *testing.T) {
	p := NewSuperset([]uint{3, 3}, 8, 2, false)
	// 0x41 aliases with {0x01, 0x40}: field0 = addr&7, field1 = (addr>>3)&7.
	p.Insert(0x01) // fields (1, 0)
	p.Insert(0x40) // fields (0, 8&7=0) -> (0,0)... choose clean aliases:
	p.Remove(0x40)
	p.Remove(0x01)
	p.Insert(0x09) // fields (1,1)
	p.Insert(0x0A) // fields (2,1)
	if !p.Predict(0x0A) || !p.Predict(0x09) {
		t.Fatal("tracked addresses predicted negative")
	}
	// 0x0? with field0=2,field1=1 is 0x0A itself; alias needs distinct
	// address with both counters set: 0x11 -> fields (1, 2): counter(2)
	// of field1 is 0, so negative. Construct a true alias: insert (1,1)
	// and (2,2); then (1,2) and (2,1) are false positives.
	p2 := NewSuperset([]uint{3, 3}, 8, 2, false)
	p2.Insert(0x09)        // (1,1)
	p2.Insert(0x12)        // (2,2)
	if !p2.Predict(0x0A) { // (2,1): aliased
		t.Error("expected aliasing false positive at 0x0A")
	}
	if !p2.Predict(0x11) { // (1,2): aliased
		t.Error("expected aliasing false positive at 0x11")
	}
}

func TestExcludeCacheSuppressesFalsePositives(t *testing.T) {
	p := NewSuperset([]uint{3, 3}, 8, 2, true)
	p.Insert(0x09) // (1,1)
	p.Insert(0x12) // (2,2)
	if !p.Predict(0x0A) {
		t.Fatal("expected aliasing false positive before training")
	}
	p.NoteFalsePositive(0x0A)
	if p.Predict(0x0A) {
		t.Error("exclude cache did not suppress trained false positive")
	}
	if p.Stats().ExcludeHits == 0 {
		t.Error("exclude hit not counted")
	}
	// The genuinely tracked addresses must still predict positive.
	if !p.Predict(0x09) || !p.Predict(0x12) {
		t.Error("exclude cache broke true positives")
	}
	// Inserting the excluded address must clear the exclusion.
	p.Insert(0x0A)
	if !p.Predict(0x0A) {
		t.Error("insert did not clear exclude-cache entry (false negative!)")
	}
}

func TestNoteFalsePositiveOnTrackedAddressIgnored(t *testing.T) {
	p := NewSuperset([]uint{3, 3}, 8, 2, true)
	p.Insert(0x09)
	p.NoteFalsePositive(0x09) // bogus: it IS tracked
	if !p.Predict(0x09) {
		t.Error("bogus false-positive training created a false negative")
	}
}

func TestSupersetRemoveWithoutInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unmatched Remove did not panic")
		}
	}()
	NewSuperset([]uint{3, 3}, 8, 2, false).Remove(5)
}

func TestBloomCounterUnderflowPanics(t *testing.T) {
	f := NewBloomFilter([]uint{4})
	f.Add(1)
	f.Del(1)
	defer func() {
		if recover() == nil {
			t.Error("bloom underflow did not panic")
		}
	}()
	f.Del(1)
}

func TestBloomFieldPartitioning(t *testing.T) {
	// Table 4 "y" filter: fields 10,4,7 bits → tables of 1024, 16, 128.
	f := NewBloomFilter([]uint{10, 4, 7})
	if got := f.SizeBits(); got != 1024+16+128 {
		t.Errorf("y-filter entries = %d, want 1168", got)
	}
	// Two addresses differing only above bit 21 share all counters.
	f.Add(0)
	if !f.MayContain(1 << 21) {
		t.Error("addresses identical in indexed bits should alias")
	}
	// Addresses differing in bit 0 use different field-0 counters.
	if f.MayContain(1) {
		t.Error("address differing in field 0 should not alias")
	}
}

func TestExactForcesDowngrades(t *testing.T) {
	p := NewExact(8, 2)
	downgraded := map[cache.LineAddr]bool{}
	inPred := map[cache.LineAddr]bool{}
	for a := cache.LineAddr(0); a < 32; a++ {
		victim, must := p.Insert(a)
		inPred[a] = true
		if must {
			downgraded[victim] = true
			delete(inPred, victim)
		}
	}
	if len(downgraded) == 0 {
		t.Fatal("overfull exact predictor forced no downgrades")
	}
	if p.Stats().Downgrades != uint64(len(downgraded)) {
		t.Errorf("Downgrades stat = %d, want %d", p.Stats().Downgrades, len(downgraded))
	}
	// Exactness: predict(a) == (a in predictor set after downgrades).
	for a := cache.LineAddr(0); a < 32; a++ {
		if p.Predict(a) != inPred[a] {
			t.Errorf("exactness violated at %#x: predict=%v, in set=%v", a, p.Predict(a), inPred[a])
		}
	}
}

// TestExactIsExact: under random ops, with the caller honouring downgrade
// demands, Predict always equals reference membership — no false
// positives and no false negatives.
func TestExactIsExact(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewExact(8, 2)
		ref := map[cache.LineAddr]bool{}
		for _, op := range ops {
			addr := cache.LineAddr(op % 128)
			if op&0x8000 != 0 {
				if ref[addr] {
					p.Remove(addr)
					delete(ref, addr)
				}
			} else if !ref[addr] {
				victim, must := p.Insert(addr)
				ref[addr] = true
				if must {
					// Protocol downgrades the victim: it leaves the
					// supplier set.
					delete(ref, victim)
				}
			}
		}
		for a := cache.LineAddr(0); a < 128; a++ {
			if p.Predict(a) != ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPerfectPredictor(t *testing.T) {
	truth := map[cache.LineAddr]bool{7: true}
	p := NewPerfect(func(a cache.LineAddr) bool { return truth[a] })
	if !p.Predict(7) || p.Predict(8) {
		t.Error("perfect predictor disagreed with oracle")
	}
	truth[8] = true
	if !p.Predict(8) {
		t.Error("perfect predictor did not track oracle mutation")
	}
	if p.Stats().Lookups != 3 {
		t.Errorf("lookups = %d, want 3", p.Stats().Lookups)
	}
}

func TestAccuracyClassification(t *testing.T) {
	var a Accuracy
	a.Classify(true, true)   // TP
	a.Classify(true, false)  // FP
	a.Classify(false, true)  // FN
	a.Classify(false, false) // TN
	a.Classify(false, false) // TN
	if a.TruePos != 1 || a.FalsePos != 1 || a.FalseNeg != 1 || a.TrueNeg != 2 {
		t.Errorf("classification counts wrong: %+v", a)
	}
	tp, tn, fp, fn := a.Fractions()
	if tp != 0.2 || tn != 0.4 || fp != 0.2 || fn != 0.2 {
		t.Errorf("fractions = %v %v %v %v", tp, tn, fp, fn)
	}
	var b Accuracy
	b.Add(a)
	b.Add(a)
	if b.Total() != 10 {
		t.Errorf("Add: total = %d, want 10", b.Total())
	}
	var empty Accuracy
	if tp, tn, fp, fn := empty.Fractions(); tp+tn+fp+fn != 0 {
		t.Error("empty accuracy fractions should be zero")
	}
}

func TestPredictorStatsCount(t *testing.T) {
	p := NewSubset(16, 4)
	p.Predict(1)
	p.Insert(1)
	p.Predict(1)
	p.Remove(1)
	s := p.Stats()
	if s.Lookups != 2 || s.Inserts != 1 || s.Removes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSupersetStress(t *testing.T) {
	// Long random churn with the real Table 4 geometry: no panics, no
	// false negatives, bounded tracked set.
	p := NewSuperset([]uint{10, 4, 7}, 2048, 8, true)
	rng := rand.New(rand.NewSource(3))
	live := map[cache.LineAddr]bool{}
	var liveList []cache.LineAddr
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 || len(liveList) == 0 {
			addr := cache.LineAddr(rng.Intn(1 << 18))
			if !live[addr] {
				p.Insert(addr)
				live[addr] = true
				liveList = append(liveList, addr)
			}
		} else {
			j := rng.Intn(len(liveList))
			addr := liveList[j]
			p.Remove(addr)
			delete(live, addr)
			liveList[j] = liveList[len(liveList)-1]
			liveList = liveList[:len(liveList)-1]
		}
		if rng.Intn(4) == 0 {
			probe := cache.LineAddr(rng.Intn(1 << 18))
			got := p.Predict(probe)
			if live[probe] && !got {
				t.Fatalf("false negative at %#x after %d ops", probe, i)
			}
			if got && !live[probe] {
				p.NoteFalsePositive(probe)
			}
		}
	}
	if p.TrackedLen() != len(live) {
		t.Errorf("tracked %d, want %d", p.TrackedLen(), len(live))
	}
}

func TestBadGeometriesPanic(t *testing.T) {
	cases := []func(){
		func() { NewSubset(0, 4) },
		func() { NewSubset(10, 4) }, // not divisible
		func() { NewExact(0, 1) },
		func() { NewSuperset(nil, 8, 2, false) },
		func() { NewSuperset([]uint{0}, 8, 2, false) },
		func() { NewSuperset([]uint{4}, 7, 2, true) },
		func() { NewPerfect(nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad geometry did not panic", i)
				}
			}()
			fn()
		}()
	}
}
