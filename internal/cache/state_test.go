package cache

import (
	"testing"
	"testing/quick"
)

func TestStateClassification(t *testing.T) {
	globals := map[State]bool{
		Invalid: false, Shared: false, SharedLocal: false,
		SharedGlobal: true, Exclusive: true, Dirty: true, Tagged: true,
	}
	for s, want := range globals {
		if got := s.GlobalSupplier(); got != want {
			t.Errorf("%v.GlobalSupplier = %v, want %v", s, got, want)
		}
	}
	locals := map[State]bool{
		Invalid: false, Shared: false, SharedLocal: true,
		SharedGlobal: true, Exclusive: true, Dirty: true, Tagged: true,
	}
	for s, want := range locals {
		if got := s.LocalSupplier(); got != want {
			t.Errorf("%v.LocalSupplier = %v, want %v", s, got, want)
		}
	}
	dirty := map[State]bool{
		Invalid: false, Shared: false, SharedLocal: false,
		SharedGlobal: false, Exclusive: false, Dirty: true, Tagged: true,
	}
	for s, want := range dirty {
		if got := s.DirtyData(); got != want {
			t.Errorf("%v.DirtyData = %v, want %v", s, got, want)
		}
	}
}

// TestCompatibilityMatrix transcribes Figure 2(b) row by row.
// diff = compatible only in different CMPs ("*" in the paper),
// yes = compatible anywhere, no = never.
func TestCompatibilityMatrix(t *testing.T) {
	type compat int
	const (
		no compat = iota
		yes
		diff
	)
	matrix := map[State]map[State]compat{
		Shared: {
			Shared: yes, SharedLocal: yes, SharedGlobal: yes,
			Exclusive: no, Dirty: no, Tagged: yes,
		},
		SharedLocal: {
			Shared: yes, SharedLocal: diff, SharedGlobal: diff,
			Exclusive: no, Dirty: no, Tagged: diff,
		},
		SharedGlobal: {
			Shared: yes, SharedLocal: diff, SharedGlobal: no,
			Exclusive: no, Dirty: no, Tagged: no,
		},
		Exclusive: {
			Shared: no, SharedLocal: no, SharedGlobal: no,
			Exclusive: no, Dirty: no, Tagged: no,
		},
		Dirty: {
			Shared: no, SharedLocal: no, SharedGlobal: no,
			Exclusive: no, Dirty: no, Tagged: no,
		},
		Tagged: {
			Shared: yes, SharedLocal: diff, SharedGlobal: no,
			Exclusive: no, Dirty: no, Tagged: no,
		},
	}
	for a, row := range matrix {
		for b, want := range row {
			gotSame := Compatible(a, b, true)
			gotDiff := Compatible(a, b, false)
			wantSame := want == yes
			wantDiff := want == yes || want == diff
			if gotSame != wantSame {
				t.Errorf("Compatible(%v,%v,sameCMP) = %v, want %v", a, b, gotSame, wantSame)
			}
			if gotDiff != wantDiff {
				t.Errorf("Compatible(%v,%v,diffCMP) = %v, want %v", a, b, gotDiff, wantDiff)
			}
		}
	}
}

func TestCompatibilityWithInvalid(t *testing.T) {
	for _, s := range States() {
		for _, same := range []bool{true, false} {
			if !Compatible(Invalid, s, same) || !Compatible(s, Invalid, same) {
				t.Errorf("Invalid must be compatible with %v", s)
			}
		}
	}
}

// TestCompatibilitySymmetric is the property-based check that the matrix
// is symmetric for arbitrary state pairs.
func TestCompatibilitySymmetric(t *testing.T) {
	f := func(ra, rb uint8, same bool) bool {
		a := State(ra % uint8(numStates))
		b := State(rb % uint8(numStates))
		return Compatible(a, b, same) == Compatible(b, a, same)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSupplierUniquenessDerivable: no two global-supplier states are ever
// compatible, which is what makes "at most one cache can supply" hold.
func TestSupplierUniquenessDerivable(t *testing.T) {
	for _, a := range States() {
		for _, b := range States() {
			if a.GlobalSupplier() && b.GlobalSupplier() {
				if Compatible(a, b, true) || Compatible(a, b, false) {
					t.Errorf("two global suppliers %v+%v reported compatible", a, b)
				}
			}
		}
	}
}

func TestSupplyTransition(t *testing.T) {
	want := map[State]State{
		Exclusive:    SharedGlobal,
		Dirty:        Tagged,
		SharedGlobal: SharedGlobal,
		Tagged:       Tagged,
	}
	for from, to := range want {
		if got := SupplyTransition(from); got != to {
			t.Errorf("SupplyTransition(%v) = %v, want %v", from, got, to)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SupplyTransition(Shared) did not panic")
		}
	}()
	SupplyTransition(Shared)
}

func TestDowngradeTransition(t *testing.T) {
	for _, s := range []State{SharedGlobal, Exclusive, Dirty, Tagged} {
		if got := DowngradeTransition(s); got != SharedLocal {
			t.Errorf("DowngradeTransition(%v) = %v, want SL", s, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("DowngradeTransition(S) did not panic")
		}
	}()
	DowngradeTransition(Shared)
}

func TestStateStringsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range States() {
		str := s.String()
		if str == "" || seen[str] {
			t.Errorf("state %d has empty/duplicate name %q", s, str)
		}
		seen[str] = true
	}
}
