package cache

import "fmt"

// TagArray is a set-associative, true-LRU array of bare line addresses —
// the tag-only counterpart of Array for structures that track presence
// without per-line coherence state (the supplier predictors' address
// tables, Section 4.3). An 8-way set is one cache line of 8-byte tags, so
// the predict-path scan touches a third of the memory an Array of Lines
// would, and the MRU rotation moves 8-byte words instead of 24-byte
// structs.
type TagArray struct {
	sets    [][]LineAddr // each set ordered MRU-first; nil until first insert
	arena   []LineAddr   // chunked backing store for touched sets
	assoc   int
	setMask LineAddr
	count   int
}

// NewTagArray builds a tag array from (sets, assoc). The set index is the
// low bits of the line address, matching Array.
func NewTagArray(sets, assoc int) *TagArray {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", sets))
	}
	return &TagArray{
		sets:    make([][]LineAddr, sets),
		assoc:   assoc,
		setMask: LineAddr(sets - 1),
	}
}

// setStorage carves fixed-capacity (cap == assoc) set backing out of a
// chunked arena on first insert, like Array.setStorage: predictor tables
// are built per node in every machine, and most sets stay untouched.
func (a *TagArray) setStorage(si int) []LineAddr {
	if set := a.sets[si]; set != nil {
		return set
	}
	if len(a.arena) < a.assoc {
		a.arena = make([]LineAddr, setArenaChunk*a.assoc)
	}
	set := a.arena[:0:a.assoc]
	a.arena = a.arena[a.assoc:]
	a.sets[si] = set
	return set
}

func (a *TagArray) setFor(addr LineAddr) int { return int(addr & a.setMask) }

// Len returns the number of addresses currently held.
func (a *TagArray) Len() int { return a.count }

// Capacity returns sets*assoc.
func (a *TagArray) Capacity() int { return len(a.sets) * a.assoc }

// Access reports presence and moves a hit to MRU position — the
// predict-path operation, one scan for find and rotate together.
func (a *TagArray) Access(addr LineAddr) bool {
	set := a.sets[a.setFor(addr)]
	for i, t := range set {
		if t == addr {
			if i > 0 {
				copy(set[1:i+1], set[0:i])
				set[0] = addr
			}
			return true
		}
	}
	return false
}

// Insert places the address at MRU position. If it is already present it
// is just rotated to MRU. If the set is full, the LRU address is evicted
// and returned with evicted=true.
func (a *TagArray) Insert(addr LineAddr) (victim LineAddr, evicted bool) {
	si := a.setFor(addr)
	set := a.sets[si]
	for i, t := range set {
		if t == addr {
			if i > 0 {
				copy(set[1:i+1], set[0:i])
				set[0] = addr
			}
			return 0, false
		}
	}
	if len(set) < a.assoc {
		set = a.setStorage(si)
		set = set[:len(set)+1]
		copy(set[1:], set[0:len(set)-1])
		set[0] = addr
		a.sets[si] = set
		a.count++
		return 0, false
	}
	victim = set[len(set)-1]
	copy(set[1:], set[0:len(set)-1])
	set[0] = addr
	return victim, true
}

// Invalidate removes the address, reporting whether it was present.
func (a *TagArray) Invalidate(addr LineAddr) bool {
	si := a.setFor(addr)
	set := a.sets[si]
	for i, t := range set {
		if t == addr {
			a.sets[si] = append(set[:i], set[i+1:]...)
			a.count--
			return true
		}
	}
	return false
}
