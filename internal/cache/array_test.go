package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexsnoop/internal/config"
)

func smallArray() *Array {
	// 4 sets x 2 ways = 8 lines of 64B.
	return NewArray(config.CacheConfig{SizeBytes: 8 * 64, Assoc: 2, LineBytes: 64})
}

func TestInsertLookup(t *testing.T) {
	a := smallArray()
	a.Insert(0x100, Exclusive, 7)
	l := a.Lookup(0x100)
	if l == nil {
		t.Fatal("inserted line not found")
	}
	if l.State != Exclusive || l.Version != 7 {
		t.Errorf("line = %+v, want E/v7", *l)
	}
	if a.Lookup(0x101) != nil {
		t.Error("found a line that was never inserted")
	}
	if a.Len() != 1 {
		t.Errorf("Len = %d, want 1", a.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	a := smallArray()
	// Addresses 0, 4, 8 share set 0 (4 sets).
	a.Insert(0, Shared, 0)
	a.Insert(4, Shared, 0)
	// Touch 0 so 4 becomes LRU.
	a.Touch(0)
	victim, evicted := a.Insert(8, Shared, 0)
	if !evicted {
		t.Fatal("full set did not evict")
	}
	if victim.Addr != 4 {
		t.Errorf("evicted %#x, want 0x4 (the LRU line)", victim.Addr)
	}
	if a.Lookup(0) == nil || a.Lookup(8) == nil {
		t.Error("surviving lines missing after eviction")
	}
	if a.Lookup(4) != nil {
		t.Error("evicted line still present")
	}
}

func TestInsertExistingUpdatesInPlace(t *testing.T) {
	a := smallArray()
	a.Insert(0, Shared, 1)
	victim, evicted := a.Insert(0, Dirty, 2)
	if evicted {
		t.Errorf("re-insert evicted %+v", victim)
	}
	l := a.Lookup(0)
	if l.State != Dirty || l.Version != 2 {
		t.Errorf("line = %+v, want D/v2", *l)
	}
	if a.Len() != 1 {
		t.Errorf("Len = %d, want 1", a.Len())
	}
}

func TestInvalidate(t *testing.T) {
	a := smallArray()
	a.Insert(0, Tagged, 3)
	l, ok := a.Invalidate(0)
	if !ok || l.State != Tagged || l.Version != 3 {
		t.Errorf("Invalidate = %+v,%v", l, ok)
	}
	if a.Len() != 0 || a.Lookup(0) != nil {
		t.Error("line still present after invalidate")
	}
	if _, ok := a.Invalidate(0); ok {
		t.Error("double invalidate reported success")
	}
}

func TestSetState(t *testing.T) {
	a := smallArray()
	a.Insert(0, Exclusive, 0)
	if !a.SetState(0, SharedGlobal) {
		t.Fatal("SetState missed a present line")
	}
	if a.Lookup(0).State != SharedGlobal {
		t.Error("state not rewritten")
	}
	if a.SetState(99, Shared) {
		t.Error("SetState hit an absent line")
	}
	defer func() {
		if recover() == nil {
			t.Error("SetState(Invalid) did not panic")
		}
	}()
	a.SetState(0, Invalid)
}

func TestInsertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert(Invalid) did not panic")
		}
	}()
	smallArray().Insert(0, Invalid, 0)
}

func TestAccessStats(t *testing.T) {
	a := smallArray()
	a.Insert(0, Shared, 0)
	if a.Access(0) == nil {
		t.Error("Access missed present line")
	}
	if a.Access(16) != nil {
		t.Error("Access hit absent line")
	}
	if a.Hits != 1 || a.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", a.Hits, a.Misses)
	}
}

func TestLRUVictim(t *testing.T) {
	a := smallArray()
	if _, full := a.LRUVictim(0); full {
		t.Error("empty set reported a victim")
	}
	a.Insert(0, Shared, 0)
	a.Insert(4, Shared, 0)
	v, full := a.LRUVictim(8)
	if !full || v.Addr != 0 {
		t.Errorf("LRUVictim = %+v,%v, want addr 0", v, full)
	}
	if _, full := a.LRUVictim(0); full {
		t.Error("hit reported a victim")
	}
}

func TestForEach(t *testing.T) {
	a := smallArray()
	want := map[LineAddr]bool{1: true, 2: true, 3: true}
	for addr := range want {
		a.Insert(addr, Shared, 0)
	}
	got := map[LineAddr]bool{}
	a.ForEach(func(l Line) { got[l.Addr] = true })
	if len(got) != len(want) {
		t.Fatalf("visited %d lines, want %d", len(got), len(want))
	}
	for addr := range want {
		if !got[addr] {
			t.Errorf("ForEach missed %#x", addr)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets did not panic")
		}
	}()
	NewArrayGeometry(3, 2)
}

// TestPropertyNeverExceedsCapacity: arbitrary insert/invalidate sequences
// never exceed set capacity, and Len always equals the visited line count.
func TestPropertyNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		a := NewArrayGeometry(8, 2)
		for _, op := range ops {
			addr := LineAddr(op % 64)
			if op&0x8000 != 0 {
				a.Invalidate(addr)
			} else {
				a.Insert(addr, Shared, 0)
			}
		}
		n := 0
		a.ForEach(func(Line) { n++ })
		return n == a.Len() && a.Len() <= a.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestLRUMatchesReference cross-checks the array against a straightforward
// per-set reference model under a random workload.
func TestLRUMatchesReference(t *testing.T) {
	const sets, assoc = 4, 4
	a := NewArrayGeometry(sets, assoc)
	ref := make([][]LineAddr, sets) // MRU-first
	rng := rand.New(rand.NewSource(1))

	refInsert := func(addr LineAddr) {
		si := int(addr % sets)
		set := ref[si]
		for i, x := range set {
			if x == addr {
				set = append(set[:i], set[i+1:]...)
				ref[si] = append([]LineAddr{addr}, set...)
				return
			}
		}
		set = append([]LineAddr{addr}, set...)
		if len(set) > assoc {
			set = set[:assoc]
		}
		ref[si] = set
	}
	refTouch := func(addr LineAddr) {
		si := int(addr % sets)
		for i, x := range ref[si] {
			if x == addr {
				set := append(ref[si][:i], ref[si][i+1:]...)
				ref[si] = append([]LineAddr{addr}, set...)
				return
			}
		}
	}

	for i := 0; i < 5000; i++ {
		addr := LineAddr(rng.Intn(40))
		switch rng.Intn(3) {
		case 0:
			a.Insert(addr, Shared, 0)
			refInsert(addr)
		case 1:
			a.Touch(addr)
			refTouch(addr)
		case 2:
			a.Invalidate(addr)
			si := int(addr % sets)
			for j, x := range ref[si] {
				if x == addr {
					ref[si] = append(ref[si][:j], ref[si][j+1:]...)
					break
				}
			}
		}
		// Compare set contents as sets (order checked via victim below).
		for si := 0; si < sets; si++ {
			inRef := map[LineAddr]bool{}
			for _, x := range ref[si] {
				inRef[x] = true
			}
			got := 0
			a.ForEach(func(l Line) {
				if int(l.Addr%sets) == si {
					got++
					if !inRef[l.Addr] {
						t.Fatalf("iter %d: array holds %#x not in reference", i, l.Addr)
					}
				}
			})
			if got != len(ref[si]) {
				t.Fatalf("iter %d set %d: array has %d lines, reference %d", i, si, got, len(ref[si]))
			}
		}
	}
}
