package cache

import (
	"fmt"

	"flexsnoop/internal/config"
)

// Array is a set-associative cache tag array with true-LRU replacement.
// It tracks coherence state per line; data values are abstracted into the
// per-line Version counter.
type Array struct {
	sets     [][]Line // each set ordered MRU-first; nil until first insert
	arena    []Line   // chunked backing store for touched sets
	assoc    int
	setMask  LineAddr
	setShift uint
	count    int

	// Stats
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// NewArray builds an array from a cache geometry. The set index is taken
// from the low bits of the line address (the line offset is already
// stripped from LineAddr).
func NewArray(cfg config.CacheConfig) *Array {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", sets))
	}
	return newArray(sets, cfg.Assoc)
}

// NewArrayGeometry builds an array directly from (sets, assoc); used by
// predictors whose geometry is given in entries rather than bytes.
func NewArrayGeometry(sets, assoc int) *Array {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", sets))
	}
	return newArray(sets, assoc)
}

// newArray allocates only the set-header table up front. Set backing is
// carved lazily out of a chunked arena on first insert (setStorage): a
// machine builds thousands of arrays, and in a typical run most sets of
// the large L2 arrays are never touched, so eager sets*assoc slabs
// dominated the whole simulation's allocated bytes.
func newArray(sets, assoc int) *Array {
	return &Array{
		sets:    make([][]Line, sets),
		assoc:   assoc,
		setMask: LineAddr(sets - 1),
	}
}

// setArenaChunk is the number of sets worth of lines allocated per arena
// refill — big enough to amortise allocation, small enough that a
// sparsely-touched array stays cheap.
const setArenaChunk = 64

// setStorage returns the set's backing slice, allocating fixed-capacity
// storage (cap == assoc, so in-place appends never reallocate and line
// pointers stay stable per set) from the arena on first touch.
func (a *Array) setStorage(si int) []Line {
	if set := a.sets[si]; set != nil {
		return set
	}
	if len(a.arena) < a.assoc {
		a.arena = make([]Line, setArenaChunk*a.assoc)
	}
	set := a.arena[:0:a.assoc]
	a.arena = a.arena[a.assoc:]
	a.sets[si] = set
	return set
}

func (a *Array) setFor(addr LineAddr) int { return int(addr & a.setMask) }

// Len returns the number of valid lines currently held.
func (a *Array) Len() int { return a.count }

// Capacity returns sets*assoc.
func (a *Array) Capacity() int { return len(a.sets) * a.assoc }

// Lookup returns a pointer to the line's entry, or nil on a miss. The
// returned pointer stays valid until the next mutation of the same set.
// Lookup does not update LRU order; pair it with Touch for an access.
func (a *Array) Lookup(addr LineAddr) *Line {
	set := a.sets[a.setFor(addr)]
	for i := range set {
		if set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Contains reports presence without touching LRU state or stats.
func (a *Array) Contains(addr LineAddr) bool { return a.Lookup(addr) != nil }

// Touch moves the line to MRU position. No-op if absent.
func (a *Array) Touch(addr LineAddr) {
	si := a.setFor(addr)
	set := a.sets[si]
	for i := range set {
		if set[i].Addr == addr {
			if i > 0 {
				l := set[i]
				copy(set[1:i+1], set[0:i])
				set[0] = l
			}
			return
		}
	}
}

// Access combines Lookup and Touch, updating hit/miss stats. The hit
// path is a single scan of the set: find, rotate to MRU, return the
// front entry.
func (a *Array) Access(addr LineAddr) *Line {
	set := a.sets[a.setFor(addr)]
	for i := range set {
		if set[i].Addr == addr {
			a.Hits++
			if i > 0 {
				l := set[i]
				copy(set[1:i+1], set[0:i])
				set[0] = l
			}
			return &set[0]
		}
	}
	a.Misses++
	return nil
}

// Insert places the line at MRU position with the given state and version.
// If the line is already present it is overwritten and touched. If the set
// is full, the LRU entry is evicted and returned with evicted=true.
func (a *Array) Insert(addr LineAddr, st State, version uint64) (victim Line, evicted bool) {
	if !st.Valid() {
		panic("cache: inserting an invalid line")
	}
	si := a.setFor(addr)
	set := a.sets[si]
	for i := range set {
		if set[i].Addr == addr {
			l := set[i]
			l.State = st
			l.Version = version
			if i > 0 {
				copy(set[1:i+1], set[0:i])
			}
			set[0] = l
			return Line{}, false
		}
	}
	l := Line{Addr: addr, State: st, Version: version}
	if len(set) < a.assoc {
		set = a.setStorage(si)
		set = set[:len(set)+1]
		copy(set[1:], set[0:len(set)-1])
		set[0] = l
		a.sets[si] = set
		a.count++
		return Line{}, false
	}
	victim = set[len(set)-1]
	copy(set[1:], set[0:len(set)-1])
	set[0] = l
	a.Evictions++
	return victim, true
}

// Invalidate removes the line, returning its final contents.
func (a *Array) Invalidate(addr LineAddr) (Line, bool) {
	si := a.setFor(addr)
	set := a.sets[si]
	for i := range set {
		if set[i].Addr == addr {
			l := set[i]
			a.sets[si] = append(set[:i], set[i+1:]...)
			a.count--
			return l, true
		}
	}
	return Line{}, false
}

// SetState rewrites the line's coherence state in place, reporting whether
// the line was present.
func (a *Array) SetState(addr LineAddr, st State) bool {
	if l := a.Lookup(addr); l != nil {
		if !st.Valid() {
			panic("cache: SetState to Invalid; use Invalidate")
		}
		l.State = st
		return true
	}
	return false
}

// ForEach visits every valid line. The visited Line is a copy; mutate via
// the other methods.
func (a *Array) ForEach(visit func(Line)) {
	for _, set := range a.sets {
		for _, l := range set {
			visit(l)
		}
	}
}

// LRUVictim returns the line that Insert would evict for this address, if
// the set is full. Used by the Exact predictor to downgrade ahead of a
// conflict.
func (a *Array) LRUVictim(addr LineAddr) (Line, bool) {
	set := a.sets[a.setFor(addr)]
	if len(set) < a.assoc {
		return Line{}, false
	}
	for i := range set {
		if set[i].Addr == addr {
			return Line{}, false // hit: no eviction would occur
		}
	}
	return set[len(set)-1], true
}
