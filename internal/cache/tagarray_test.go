package cache

import "testing"

func TestTagArrayAccessLRU(t *testing.T) {
	a := NewTagArray(1, 2)
	if a.Access(5) {
		t.Fatal("Access on empty array reported a hit")
	}
	if _, ev := a.Insert(5); ev {
		t.Fatal("insert into empty set evicted")
	}
	if _, ev := a.Insert(7); ev {
		t.Fatal("second insert evicted")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
	// 5 is LRU; touching it makes 7 the victim of the next insert.
	if !a.Access(5) {
		t.Fatal("Access(5) missed")
	}
	victim, ev := a.Insert(9)
	if !ev || victim != 7 {
		t.Fatalf("Insert(9) evicted (%v, %v), want (7, true)", victim, ev)
	}
	if a.Access(7) {
		t.Fatal("evicted address still present")
	}
}

func TestTagArrayInsertExistingRotates(t *testing.T) {
	a := NewTagArray(1, 2)
	a.Insert(1)
	a.Insert(2)
	if _, ev := a.Insert(1); ev {
		t.Fatal("re-insert of present address evicted")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d after duplicate insert, want 2", a.Len())
	}
	// 1 was rotated to MRU, so 2 is now the victim.
	if victim, ev := a.Insert(3); !ev || victim != 2 {
		t.Fatalf("Insert(3) evicted (%v, %v), want (2, true)", victim, ev)
	}
}

func TestTagArrayInvalidate(t *testing.T) {
	a := NewTagArray(2, 2)
	a.Insert(4) // set 0
	a.Insert(5) // set 1
	if !a.Invalidate(4) {
		t.Fatal("Invalidate(4) missed")
	}
	if a.Invalidate(4) {
		t.Fatal("double Invalidate reported present")
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1", a.Len())
	}
	if !a.Access(5) {
		t.Fatal("unrelated address lost")
	}
	if a.Capacity() != 4 {
		t.Fatalf("Capacity = %d, want 4", a.Capacity())
	}
}

func TestTagArraySetIndexing(t *testing.T) {
	a := NewTagArray(4, 1)
	// Addresses 0..3 land in distinct sets; no evictions.
	for addr := LineAddr(0); addr < 4; addr++ {
		if _, ev := a.Insert(addr); ev {
			t.Fatalf("Insert(%d) evicted across sets", addr)
		}
	}
	// Address 4 conflicts with 0 (4 & 3 == 0) in a 1-way set.
	if victim, ev := a.Insert(4); !ev || victim != 0 {
		t.Fatalf("Insert(4) evicted (%v, %v), want (0, true)", victim, ev)
	}
}
