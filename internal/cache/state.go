// Package cache models the coherence line states and set-associative cache
// arrays of the embedded-ring multiprocessor.
//
// The protocol is MESI enhanced with Local/Global Master qualifiers on the
// Shared state (S_L and S_G) and a Tagged (T) state for sharing dirty data
// (paper Section 2.2, Figure 2(b)).
package cache

import "fmt"

// LineAddr is a cache-line-granular physical address (byte address shifted
// right by the line-size shift).
type LineAddr uint64

// State is a coherence state for one cache line in one cache.
type State uint8

const (
	// Invalid: the cache does not hold the line.
	Invalid State = iota
	// Shared: read-only copy, neither local nor global master.
	Shared
	// SharedLocal (S_L): read-only copy, local master — the cache that
	// brought the line into this CMP and may supply it to CMP-local
	// readers.
	SharedLocal
	// SharedGlobal (S_G): read-only copy, global master — the cache that
	// brought the line from memory and supplies it to remote readers.
	SharedGlobal
	// Exclusive: the only cached copy, clean.
	Exclusive
	// Dirty: the only cached copy, modified.
	Dirty
	// Tagged: modified, but coherent read-only copies may exist in other
	// caches; written back to memory on eviction.
	Tagged

	numStates
)

// String returns the paper's abbreviation for the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case SharedLocal:
		return "SL"
	case SharedGlobal:
		return "SG"
	case Exclusive:
		return "E"
	case Dirty:
		return "D"
	case Tagged:
		return "T"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// States lists every state including Invalid.
func States() []State {
	return []State{Invalid, Shared, SharedLocal, SharedGlobal, Exclusive, Dirty, Tagged}
}

// Valid reports whether the line is present.
func (s State) Valid() bool { return s != Invalid }

// GlobalSupplier reports whether this copy can supply a remote (other-CMP)
// read: the supplier states S_G, E, D, T checked by the ring snoop
// (Section 2.2).
func (s State) GlobalSupplier() bool {
	switch s {
	case SharedGlobal, Exclusive, Dirty, Tagged:
		return true
	default:
		return false
	}
}

// LocalSupplier reports whether this copy can supply a read from another
// core in the same CMP: S_L plus all global supplier states.
func (s State) LocalSupplier() bool {
	return s == SharedLocal || s.GlobalSupplier()
}

// DirtyData reports whether the copy differs from memory (D or T).
func (s State) DirtyData() bool { return s == Dirty || s == Tagged }

// Compatible implements the compatibility matrix of Figure 2(b): whether
// two caches may simultaneously hold the same line in states a and b.
// Entries marked "*" in the paper are allowed only when the two caches are
// in different CMPs; sameCMP selects that restriction.
func Compatible(a, b State, sameCMP bool) bool {
	if a == Invalid || b == Invalid {
		return true
	}
	// Normalise so a <= b in enum order; the matrix is symmetric.
	if a > b {
		a, b = b, a
	}
	switch a {
	case Shared:
		// S is compatible with S, SL, SG, T anywhere, but not E or D.
		return b == Shared || b == SharedLocal || b == SharedGlobal || b == Tagged
	case SharedLocal:
		switch b {
		case SharedLocal, SharedGlobal, Tagged:
			// SL*, SG*, T*: only in a different CMP (one local master
			// per CMP; the global master is also its CMP's master).
			return !sameCMP
		default:
			return false
		}
	case SharedGlobal, Exclusive, Dirty, Tagged:
		// Two global-supplier states can never coexist; E and D allow no
		// other copies at all. (Pairs with S/SL already handled above.)
		return false
	default:
		return false
	}
}

// Line is one cache line's tag-array entry. Version is the generation
// number of the last write observed for the line; the coherence checker
// uses it to verify that reads return the latest serialized data.
type Line struct {
	Addr    LineAddr
	State   State
	Version uint64
}

// Present reports whether the entry holds a valid line.
func (l Line) Present() bool { return l.State.Valid() }

// SupplyTransition returns the supplier's next state after it supplies the
// line to a remote reader: E->S_G (it stays global master, now shared),
// D->T (dirty shared), S_G and T unchanged. Calling it on a non-supplier
// state panics: that is a protocol bug, not an input error.
func SupplyTransition(s State) State {
	switch s {
	case Exclusive:
		return SharedGlobal
	case Dirty:
		return Tagged
	case SharedGlobal:
		return SharedGlobal
	case Tagged:
		return Tagged
	default:
		panic(fmt.Sprintf("cache: supply from non-supplier state %v", s))
	}
}

// DowngradeTransition returns the state after an Exact-predictor downgrade
// (Section 4.3.3): S_G/E silently become S_L; D/T are written back and kept
// in S_L. The caller is responsible for issuing the write-back when
// NeedsWriteback reports true.
func DowngradeTransition(s State) State {
	switch s {
	case SharedGlobal, Exclusive, Dirty, Tagged:
		return SharedLocal
	default:
		panic(fmt.Sprintf("cache: downgrade from non-supplier state %v", s))
	}
}
