package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func rec(kind, job string, seq uint64) Record {
	return Record{Kind: kind, JobID: job, Seq: seq, Fingerprint: "fsn1:abc"}
}

func openT(t *testing.T, opt Options) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(opt)
	if err != nil {
		t.Fatalf("Open(%+v): %v", opt, err)
	}
	return j, recs
}

// TestRoundTrip: appended records come back in order, across reopens.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := openT(t, Options{Dir: dir})
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Kind: KindSubmitted, JobID: "j-000001", Seq: 1, Fingerprint: "fsn1:aa",
			Priority: 3, Spec: json.RawMessage(`{"algorithm":"Lazy","workload":"fft"}`)},
		rec(KindStarted, "", 1),
		{Kind: KindDone, Fingerprint: "fsn1:aa"},
		{Kind: KindCancelled, JobID: "j-000002"},
		{Kind: KindDone, Fingerprint: "fsn1:bb", Error: "simulation failed"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := j.Appended(); got != uint64(len(want)) {
		t.Errorf("Appended = %d, want %d", got, len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got := openT(t, Options{Dir: dir})
	defer j2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if j2.Dropped() != 0 {
		t.Errorf("Dropped = %d on a clean journal", j2.Dropped())
	}
}

// TestTornTail: a partial final record (torn frame, torn payload, or
// flipped payload byte) is truncated on open; the records before it
// survive and the journal accepts new appends at the truncation point.
func TestTornTail(t *testing.T) {
	tears := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"partial frame", func(t *testing.T, path string) {
			appendRaw(t, path, "0000")
		}},
		{"partial payload", func(t *testing.T, path string) {
			appendRaw(t, path, "000000ff deadbeef {\"kind\":\"done\"")
		}},
		{"crc mismatch", func(t *testing.T, path string) {
			// Flip one payload byte of the final valid record.
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-2] ^= 0x20
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range tears {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := openT(t, Options{Dir: dir})
			want := []Record{rec(KindSubmitted, "j-000001", 1), rec(KindSubmitted, "j-000002", 2)}
			for _, r := range append(want, rec(KindSubmitted, "j-000003", 3)) {
				if err := j.Append(r); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			j.Close()

			// Damage the single segment's tail. The crc case corrupts the
			// last record in place; the torn cases append garbage after it,
			// so record 3 survives there.
			path := filepath.Join(dir, segName(1))
			tc.tear(t, path)

			j2, got := openT(t, Options{Dir: dir})
			if j2.Dropped() != 1 {
				t.Errorf("Dropped = %d, want 1", j2.Dropped())
			}
			if tc.name == "crc mismatch" {
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("replay after tear = %+v, want %+v", got, want)
				}
			} else if len(got) != 3 {
				t.Fatalf("replay after appended garbage = %d records, want 3", len(got))
			}

			// The truncation must leave a valid appendable tail.
			if err := j2.Append(rec(KindDone, "", 0)); err != nil {
				t.Fatalf("Append after truncation: %v", err)
			}
			j2.Close()
			j3, got3 := openT(t, Options{Dir: dir})
			defer j3.Close()
			if got3[len(got3)-1].Kind != KindDone {
				t.Errorf("append after truncation did not survive reopen: %+v", got3)
			}
			if j3.Dropped() != 0 {
				t.Errorf("second open dropped %d records; truncation was not durable", j3.Dropped())
			}
		})
	}
}

func appendRaw(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestEmptyAndMissing: an empty directory and an empty segment both
// replay to zero records.
func TestEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	j, recs := openT(t, Options{Dir: filepath.Join(dir, "does", "not", "exist", "yet")})
	if len(recs) != 0 {
		t.Errorf("missing dir replayed %d records", len(recs))
	}
	j.Close()

	// Empty existing segment file.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, segName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs2 := openT(t, Options{Dir: dir2})
	defer j2.Close()
	if len(recs2) != 0 || j2.Dropped() != 0 {
		t.Errorf("empty segment: %d records, %d dropped", len(recs2), j2.Dropped())
	}
}

// TestRotationAndCompaction: appends beyond SegmentBytes rotate into
// new segments; replay spans them in order; Compact collapses
// everything into one fresh segment and removes the rest.
func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, Options{Dir: dir, SegmentBytes: 128}) // tiny: rotate every couple of records
	const n = 50
	for i := 1; i <= n; i++ {
		if err := j.Append(rec(KindSubmitted, "j-"+strings.Repeat("0", 6), uint64(i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after %d appends with 128-byte rotation", len(segs), n)
	}
	j.Close()

	j2, recs := openT(t, Options{Dir: dir, SegmentBytes: 128})
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: segment order lost", i, r.Seq)
		}
	}

	live := recs[n-5:]
	if err := j2.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	segs, err = listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("%d segments after Compact, want 1", len(segs))
	}
	if err := j2.Append(rec(KindDone, "", 0)); err != nil {
		t.Fatalf("Append after Compact: %v", err)
	}
	j2.Close()

	j3, recs3 := openT(t, Options{Dir: dir})
	defer j3.Close()
	if len(recs3) != len(live)+1 {
		t.Fatalf("replayed %d records after compaction, want %d", len(recs3), len(live)+1)
	}
	if !reflect.DeepEqual(recs3[:len(live)], live) {
		t.Errorf("compacted records mismatch")
	}

	// A stray .tmp (compaction that died pre-rename) is ignored and removed.
	tmp := filepath.Join(dir, segName(99)+".tmp")
	if err := os.WriteFile(tmp, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	j4, recs4 := openT(t, Options{Dir: dir})
	defer j4.Close()
	if len(recs4) != len(recs3) {
		t.Errorf("stray .tmp changed replay: %d vs %d records", len(recs4), len(recs3))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("stray .tmp not removed on open")
	}
}

// TestSyncPolicyParse covers the flag surface.
func TestSyncPolicyParse(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "none": SyncNone} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %q, %v; want %q", s, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
}
