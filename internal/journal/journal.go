// Package journal is an append-only write-ahead log for the job server:
// the durability substrate that makes ringsimd crash-only. Every job
// state transition (submitted, started, done, cancelled) is appended —
// and fsynced, under the default policy — before the transition is
// acknowledged to a client, so a SIGKILL at any instant loses nothing
// that was promised. On reopen the log is replayed in order; because the
// simulator is deterministic and results are content-addressed by
// fingerprint, recovery is exactly "re-execute whatever is not already
// in the result cache", with no two-phase commit anywhere.
//
// On-disk format: one record per line, length-prefixed JSONL with a
// per-record CRC32 —
//
//	LLLLLLLL CCCCCCCC {"kind":"submitted",...}\n
//
// where L is the hex length of the JSON payload and C the hex CRC32
// (IEEE) of it. The prefix makes torn tails unambiguous (a record is
// only accepted when exactly L payload bytes and the trailing newline
// are present), and the CRC rejects bit rot and half-written payloads.
// A torn or corrupt tail is truncated on open — never parsed, never
// fatal — which is exactly the crash-recovery contract: the only record
// that can be torn is one whose append was never acknowledged.
//
// Segments rotate at SegmentBytes so no single file grows without
// bound; Compact rewrites the live state into a fresh segment (via an
// invisible .tmp file and an atomic rename) and deletes the old ones.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Record kinds, in lifecycle order.
const (
	// KindSubmitted: a job was admitted. Carries the job ID, its
	// admission sequence and priority (so a replayed queue pops in the
	// original order), the fingerprint, and — for the first job of an
	// execution — the raw wire spec to re-execute from.
	KindSubmitted = "submitted"
	// KindStarted: an execution was dispatched to a backend. Purely
	// informational: a started-but-not-done job is requeued on replay.
	KindStarted = "started"
	// KindDone: an execution finished. With an empty Error the result is
	// in the disk cache under the fingerprint; a non-empty Error records
	// a deterministic simulation failure (re-running would reproduce it).
	KindDone = "done"
	// KindCancelled: one job (by ID) was cancelled.
	KindCancelled = "cancelled"
)

// Record is one journal entry. Fields are omitted when irrelevant to
// the kind.
type Record struct {
	Kind        string          `json:"kind"`
	JobID       string          `json:"job,omitempty"`
	Seq         uint64          `json:"seq,omitempty"`
	Fingerprint string          `json:"fp,omitempty"`
	Priority    int             `json:"priority,omitempty"`
	Spec        json.RawMessage `json:"spec,omitempty"`
	Error       string          `json:"error,omitempty"`
}

// SyncPolicy says when appends reach stable storage.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives power loss. The default.
	SyncAlways SyncPolicy = "always"
	// SyncNone leaves flushing to the OS: an acknowledged record
	// survives a process crash (the write hit the kernel) but not
	// necessarily power loss. Cheaper; fine when the threat model is
	// kill -9, not a yanked cord.
	SyncNone SyncPolicy = "none"
)

// ParseSyncPolicy parses a -walsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "", SyncAlways:
		return SyncAlways, nil
	case SyncNone:
		return SyncNone, nil
	}
	return "", fmt.Errorf("journal: unknown sync policy %q (want %q or %q)", s, SyncAlways, SyncNone)
}

// Options configures Open. The zero value of everything but Dir is
// defaulted.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rotates the active segment beyond this size
	// (default 4 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
}

const defaultSegmentBytes = 4 << 20

// Journal is an open write-ahead log. It is safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	opt  Options
	f    *os.File // active segment
	w    *bufio.Writer
	size int64
	seg  int // active segment number

	appended uint64
	dropped  int // torn/corrupt records discarded during Open
}

const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

func segName(n int) string { return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix) }

// Open opens (creating if needed) the journal in opt.Dir, replays every
// segment in order, truncates any torn or corrupt tail, and returns the
// surviving records oldest-first. The journal is positioned to append.
func Open(opt Options) (*Journal, []Record, error) {
	if opt.Dir == "" {
		return nil, nil, errors.New("journal: no directory")
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegmentBytes
	}
	if opt.Sync == "" {
		opt.Sync = SyncAlways
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := listSegments(opt.Dir)
	if err != nil {
		return nil, nil, err
	}

	j := &Journal{opt: opt}
	var records []Record
	for _, n := range segs {
		recs, dropped, err := replaySegment(filepath.Join(opt.Dir, segName(n)))
		if err != nil {
			return nil, nil, err
		}
		records = append(records, recs...)
		j.dropped += dropped
	}

	if len(segs) == 0 {
		if err := j.createSegment(1); err != nil {
			return nil, nil, err
		}
	} else {
		last := segs[len(segs)-1]
		f, err := os.OpenFile(filepath.Join(opt.Dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		j.f, j.w, j.size, j.seg = f, bufio.NewWriter(f), st.Size(), last
	}
	return j, records, nil
}

// listSegments returns the segment numbers present in dir, ascending.
// Stray .tmp files (a compaction that died before its rename) are
// removed: they were never part of the durable state.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if len(name) != len(segPrefix)+8+len(segSuffix) ||
			name[:len(segPrefix)] != segPrefix || filepath.Ext(name) != segSuffix {
			continue
		}
		n, err := strconv.Atoi(name[len(segPrefix) : len(segPrefix)+8])
		if err != nil || n <= 0 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// prefixLen is the fixed framing ahead of each payload:
// 8 hex length digits, space, 8 hex CRC digits, space.
const prefixLen = 8 + 1 + 8 + 1

// replaySegment reads one segment, truncating it at the first torn or
// corrupt record, and reports how many trailing bytes' worth of records
// were dropped (0 or 1 in practice: only the tail can tear).
func replaySegment(path string) (records []Record, dropped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	var good int64 // offset just past the last valid record
	for {
		rec, n, ok := readRecord(r)
		if !ok {
			break
		}
		good += int64(n)
		records = append(records, rec)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if st.Size() > good {
		dropped = 1
		if err := os.Truncate(path, good); err != nil {
			return nil, 0, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
	}
	return records, dropped, nil
}

// readRecord decodes one framed record; ok is false on EOF, a torn
// frame, a CRC mismatch, or undecodable JSON (the caller truncates
// there).
func readRecord(r *bufio.Reader) (rec Record, n int, ok bool) {
	prefix := make([]byte, prefixLen)
	if _, err := io.ReadFull(r, prefix); err != nil {
		return rec, 0, false
	}
	if prefix[8] != ' ' || prefix[17] != ' ' {
		return rec, 0, false
	}
	plen, err := strconv.ParseUint(string(prefix[:8]), 16, 32)
	if err != nil {
		return rec, 0, false
	}
	crc, err := strconv.ParseUint(string(prefix[9:17]), 16, 32)
	if err != nil {
		return rec, 0, false
	}
	payload := make([]byte, plen+1) // +1 for the trailing newline
	if _, err := io.ReadFull(r, payload); err != nil {
		return rec, 0, false
	}
	if payload[plen] != '\n' {
		return rec, 0, false
	}
	payload = payload[:plen]
	if crc32.ChecksumIEEE(payload) != uint32(crc) {
		return rec, 0, false
	}
	if json.Unmarshal(payload, &rec) != nil {
		return rec, 0, false
	}
	return rec, prefixLen + int(plen) + 1, true
}

// Append durably appends one record (fsynced under SyncAlways),
// rotating to a new segment beyond SegmentBytes. An error means the
// record may not be durable: callers must not acknowledge the
// transition it records.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if j.size >= j.opt.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	frame := fmt.Sprintf("%08x %08x %s\n", len(payload), crc32.ChecksumIEEE(payload), payload)
	if _, err := j.w.WriteString(frame); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.opt.Sync == SyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	j.size += int64(len(frame))
	j.appended++
	return nil
}

// rotateLocked closes the active segment and opens the next one.
func (j *Journal) rotateLocked() error {
	if err := j.closeSegmentLocked(); err != nil {
		return err
	}
	return j.createSegment(j.seg + 1)
}

func (j *Journal) closeSegmentLocked() error {
	if j.f == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	err := j.f.Close()
	j.f, j.w = nil, nil
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// createSegment opens segment n fresh and fsyncs the directory so the
// new name itself is durable.
func (j *Journal) createSegment(n int) error {
	f, err := os.OpenFile(filepath.Join(j.opt.Dir, segName(n)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f, j.w, j.size, j.seg = f, bufio.NewWriter(f), 0, n
	return syncDir(j.opt.Dir)
}

// Compact atomically replaces the whole journal with just the live
// records: they are written to a .tmp file, fsynced, renamed into place
// as the next segment, and only then are the old segments deleted. A
// crash at any point leaves either the old segments (rename not yet
// durable) or old+new — which is why replay must be idempotent (it is:
// the server skips records for job IDs it already knows).
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	oldLow, oldHigh, next := 1, j.seg, j.seg+1
	tmpPath := filepath.Join(j.opt.Dir, segName(next)+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	var size int64
	for _, rec := range live {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
		n, err := fmt.Fprintf(w, "%08x %08x %s\n", len(payload), crc32.ChecksumIEEE(payload), payload)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
		size += int64(n)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(j.opt.Dir, segName(next))); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.opt.Dir); err != nil {
		return err
	}

	// The new segment is durable; retire the old ones and append to it.
	if err := j.closeSegmentLocked(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(j.opt.Dir, segName(next)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f, j.w, j.size, j.seg = f, bufio.NewWriter(f), size, next
	for n := oldLow; n <= oldHigh; n++ {
		_ = os.Remove(filepath.Join(j.opt.Dir, segName(n)))
	}
	return syncDir(j.opt.Dir)
}

// Appended reports how many records this process has appended.
func (j *Journal) Appended() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Dropped reports how many torn or corrupt tails Open truncated.
func (j *Journal) Dropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Close flushes, fsyncs and closes the active segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closeSegmentLocked()
}

// syncDir fsyncs a directory so metadata operations (create, rename,
// remove) in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// Some filesystems refuse directory fsync; that only weakens
	// durability to what SyncNone already promises, so don't fail on it.
	_ = d.Sync()
	return d.Close()
}
