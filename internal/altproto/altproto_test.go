package altproto

import (
	"math/rand"
	"testing"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
)

// engine abstracts the two alternatives for shared tests.
type engine interface {
	Access(node, core int, kind protocol.AccessKind, addr cache.LineAddr, done func())
	CheckSWMR() error
	LineState(g int, addr cache.LineAddr) cache.State
	LatestVersion(addr cache.LineAddr) uint64
}

func engines(t *testing.T) map[string]func(*sim.Kernel) engine {
	t.Helper()
	return map[string]func(*sim.Kernel) engine{
		"directory": func(k *sim.Kernel) engine {
			d, err := NewDirectory(k, config.DefaultMachine())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"bus": func(k *sim.Kernel) engine {
			b, err := NewBroadcastBus(k, config.DefaultMachine())
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
	}
}

func TestReadThenRemoteRead(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			kern := sim.NewKernel()
			e := mk(kern)
			done := 0
			e.Access(0, 0, protocol.Load, 0x10, func() { done++ })
			kern.RunAll()
			e.Access(5, 0, protocol.Load, 0x10, func() { done++ })
			kern.RunAll()
			if done != 2 {
				t.Fatalf("completed %d/2", done)
			}
			// First reader got E (sole copy), then both share.
			if st := e.LineState(0, 0x10); st != cache.Shared {
				t.Errorf("first reader = %v, want S after second read", st)
			}
			if st := e.LineState(20, 0x10); st != cache.Shared { // node5 core0 = global 20
				t.Errorf("second reader = %v, want S", st)
			}
			if err := e.CheckSWMR(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWriteInvalidatesEverywhere(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			kern := sim.NewKernel()
			e := mk(kern)
			e.Access(0, 0, protocol.Load, 0x10, nil)
			kern.RunAll()
			e.Access(3, 0, protocol.Load, 0x10, nil)
			kern.RunAll()
			e.Access(6, 0, protocol.Store, 0x10, nil)
			kern.RunAll()
			if st := e.LineState(24, 0x10); st != cache.Dirty { // node6 core0
				t.Errorf("writer = %v, want D", st)
			}
			for _, g := range []int{0, 12} {
				if st := e.LineState(g, 0x10); st != cache.Invalid {
					t.Errorf("old sharer g%d = %v, want I", g, st)
				}
			}
			if v := e.LatestVersion(0x10); v != 1 {
				t.Errorf("version = %d, want 1", v)
			}
			if err := e.CheckSWMR(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDirtyTransfer(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			kern := sim.NewKernel()
			e := mk(kern)
			e.Access(1, 0, protocol.Store, 0x20, nil)
			kern.RunAll()
			// Remote read of a dirty line: owner downgrades and supplies.
			e.Access(7, 0, protocol.Load, 0x20, nil)
			kern.RunAll()
			if st := e.LineState(4, 0x20); st != cache.Shared { // node1 core0
				t.Errorf("old owner = %v, want S", st)
			}
			if st := e.LineState(28, 0x20); st != cache.Shared {
				t.Errorf("reader = %v, want S", st)
			}
			// Remote write then claims it.
			e.Access(2, 0, protocol.Store, 0x20, nil)
			kern.RunAll()
			if v := e.LatestVersion(0x20); v != 2 {
				t.Errorf("version = %d, want 2", v)
			}
			if err := e.CheckSWMR(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDirectoryIndirectionCounted(t *testing.T) {
	kern := sim.NewKernel()
	d, err := NewDirectory(kern, config.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	d.Access(0, 0, protocol.Store, 0x30, nil)
	kern.RunAll()
	if d.Stats().Indirections != 0 {
		t.Fatalf("unexpected early indirections")
	}
	// Reading a dirty remote line needs the 3-hop forward.
	d.Access(4, 0, protocol.Load, 0x30, nil)
	kern.RunAll()
	if d.Stats().Indirections != 1 {
		t.Errorf("Indirections = %d, want 1", d.Stats().Indirections)
	}
}

func TestBusSnoopsEveryCore(t *testing.T) {
	kern := sim.NewKernel()
	b, err := NewBroadcastBus(kern, config.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	b.Access(0, 0, protocol.Load, 0x40, nil)
	kern.RunAll()
	if got := b.Stats().SnoopOps; got != 31 {
		t.Errorf("SnoopOps = %d, want 31 (every other core)", got)
	}
	if got := b.Stats().BusTransactions; got != 1 {
		t.Errorf("BusTransactions = %d, want 1", got)
	}
}

func TestBusSaturationShowsInWaits(t *testing.T) {
	kern := sim.NewKernel()
	b, err := NewBroadcastBus(kern, config.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	// A burst of misses from every core must queue on the single bus.
	for n := 0; n < 8; n++ {
		for c := 0; c < 4; c++ {
			addr := cache.LineAddr(0x1000 + n*64 + c*8)
			b.Access(n, c, protocol.Load, addr, nil)
		}
	}
	kern.RunAll()
	if b.Stats().BusWaitCycles == 0 {
		t.Error("simultaneous misses produced no bus queueing")
	}
}

func TestStressBothEngines(t *testing.T) {
	for name, mk := range engines(t) {
		t.Run(name, func(t *testing.T) {
			kern := sim.NewKernel()
			e := mk(kern)
			rng := rand.New(rand.NewSource(5))
			issued, completed := 0, 0
			for i := 0; i < 1500; i++ {
				node, c := rng.Intn(8), rng.Intn(4)
				addr := cache.LineAddr(rng.Intn(64))
				kind := protocol.Load
				if rng.Intn(3) == 0 {
					kind = protocol.Store
				}
				issued++
				e.Access(node, c, kind, addr, func() { completed++ })
				if rng.Intn(6) == 0 {
					kern.RunAll()
					if err := e.CheckSWMR(); err != nil {
						t.Fatalf("iter %d: %v", i, err)
					}
				}
			}
			kern.RunAll()
			if completed != issued {
				t.Fatalf("completed %d/%d", completed, issued)
			}
			if err := e.CheckSWMR(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDirectoryRejectsTooManyCores(t *testing.T) {
	cfg := config.DefaultMachine()
	cfg.CoresPerCMP = 16 // 128 cores > 64-bit sharer mask
	cfg.TorusWidth, cfg.TorusHeight = 4, 2
	if _, err := NewDirectory(sim.NewKernel(), cfg); err == nil {
		t.Error("oversized machine accepted by full-map directory")
	}
}
