package altproto

import (
	"flexsnoop/internal/bus"
	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
)

// BroadcastBus is a snoopy protocol over one shared broadcast link
// (Section 2.1.1): every transaction arbitrates for the bus, every cache
// snoops it, and the bus's serialization is the coherence order. Simple,
// but the bus admits one transaction per arbitration slot — with 32 cores
// it saturates, which is exactly the scalability ceiling the paper cites.
type BroadcastBus struct {
	*base

	// link is the shared snoop bus: occupancy is the arbitration +
	// address slot; the snoop outcome lands snoopCycles later.
	link bus.Bus
	// arbCycles is the per-transaction bus occupancy.
	arbCycles sim.Time

	// lines serializes same-line transactions end to end: the bus slot
	// orders them, but a transaction's data transfer completes after its
	// slot, and a second transaction must not snoop the line while the
	// first's data is in flight.
	lines map[cache.LineAddr]*lineSerial
}

type lineSerial struct {
	busy    bool
	waiters []func()
}

// NewBroadcastBus builds the bus engine.
func NewBroadcastBus(kern *sim.Kernel, cfg config.MachineConfig) (*BroadcastBus, error) {
	b, err := newBase(kern, cfg)
	if err != nil {
		return nil, err
	}
	return &BroadcastBus{
		base:      b,
		arbCycles: sim.Time(cfg.BusOccupancyCycles),
		lines:     map[cache.LineAddr]*lineSerial{},
	}, nil
}

// Stats returns the accumulated counters.
func (bb *BroadcastBus) Stats() Stats {
	s := bb.stats
	s.BusWaitCycles = bb.link.WaitCycles
	s.BusTransactions = bb.link.Grants
	return s
}

// Access implements the processor-side interface (cpu.Memory).
func (bb *BroadcastBus) Access(node, core int, kind protocol.AccessKind, addr cache.LineAddr, done func()) {
	g := bb.global(node, core)
	if kind == protocol.Load {
		bb.stats.Loads++
	} else {
		bb.stats.Stores++
	}
	line, l1hit := bb.l2Hit(g, kind, addr)
	if l1hit {
		bb.kern.After(sim.Time(bb.cfg.L1.RoundTripCycles), func() { bb.done(done) })
		return
	}
	l2RT := sim.Time(bb.cfg.L2.RoundTripCycles)
	if kind == protocol.Load && line != nil {
		bb.clients[g].l1.Insert(addr, cache.Shared, line.Version)
		bb.kern.After(l2RT, func() { bb.done(done) })
		return
	}
	if kind == protocol.Store && line != nil && (line.State == cache.Exclusive || line.State == cache.Dirty) {
		line.State = cache.Dirty
		line.Version = bb.nextVersion(addr)
		bb.clients[g].l1.Insert(addr, cache.Shared, line.Version)
		bb.kern.After(l2RT, func() { bb.done(done) })
		return
	}
	if kind == protocol.Load {
		bb.stats.ReadRequests++
	} else {
		bb.stats.WriteRequests++
	}
	start := bb.kern.Now()
	bb.kern.After(l2RT, func() {
		bb.transact(g, kind, addr, func() {
			if kind == protocol.Load {
				bb.stats.ReadMissCycles += uint64(bb.kern.Now() - start)
				bb.stats.ReadMissCount++
			}
			bb.done(done)
		})
	})
}

func (bb *BroadcastBus) done(done func()) {
	if done != nil {
		done()
	}
}

// transact serializes same-line transactions, arbitrates for the bus, and
// lands the snoop result snoopCycles after the grant.
func (bb *BroadcastBus) transact(g int, kind protocol.AccessKind, addr cache.LineAddr, done func()) {
	ls, ok := bb.lines[addr]
	if !ok {
		ls = &lineSerial{}
		bb.lines[addr] = ls
	}
	if ls.busy {
		ls.waiters = append(ls.waiters, func() { bb.transact(g, kind, addr, done) })
		return
	}
	ls.busy = true
	release := func() {
		ls.busy = false
		if len(ls.waiters) > 0 {
			next := ls.waiters[0]
			ls.waiters = ls.waiters[1:]
			bb.kern.After(1, next)
		} else {
			delete(bb.lines, addr)
		}
	}
	grant := bb.link.Reserve(bb.kern.Now(), bb.arbCycles)
	settle := grant + sim.Time(bb.cfg.CMPSnoopCycles)
	wrapped := func() {
		done()
		release()
	}
	bb.kern.Schedule(settle, func() {
		// Every other core snooped the transaction.
		bb.stats.SnoopOps += uint64(bb.cfg.TotalCores() - 1)
		if kind == protocol.Load {
			bb.busRead(g, addr, wrapped)
		} else {
			bb.busWrite(g, addr, wrapped)
		}
	})
}

// busRead: a dirty/exclusive holder supplies (and downgrades); otherwise
// memory supplies.
func (bb *BroadcastBus) busRead(g int, addr cache.LineAddr, done func()) {
	// A queued transaction may have been satisfied by this core's own
	// earlier transaction on the line (e.g. a store issued just before):
	// the miss has become a hit.
	if l := bb.clients[g].l2.Lookup(addr); l != nil {
		bb.clients[g].l1.Insert(addr, cache.Shared, l.Version)
		done()
		return
	}
	supplier := -1
	sharers := false
	for s := range bb.clients {
		if s == g {
			continue
		}
		if l := bb.clients[s].l2.Lookup(addr); l != nil {
			sharers = true
			if l.State.DirtyData() || l.State == cache.Exclusive {
				supplier = s
			}
		}
	}
	if supplier >= 0 {
		l := bb.clients[supplier].l2.Lookup(addr)
		version := l.Version
		if l.State.DirtyData() {
			bb.mems[bb.homeOf(addr)].WriteBack(addr, version)
			bb.stats.MemWrites++
		}
		bb.clients[supplier].l2.SetState(addr, cache.Shared)
		arrive := bb.send(bb.nodeOf(supplier), bb.nodeOf(g))
		bb.kern.Schedule(arrive, func() {
			bb.install(g, addr, cache.Shared, version)
			done()
		})
		return
	}
	home := bb.homeOf(addr)
	rt := bb.mems[home].ReadLatency(bb.kern.Now(), addr, bb.nodeOf(g))
	bb.stats.MemReads++
	bb.stats.NOCMessages++
	st := cache.Shared
	if !sharers {
		st = cache.Exclusive
	}
	bb.kern.After(rt, func() {
		bb.install(g, addr, st, bb.mems[home].Version(addr))
		done()
	})
}

// busWrite invalidates every other copy in the snoop slot and takes
// ownership; a dirty holder supplies the data, else memory (or the
// requester's own copy on an upgrade).
func (bb *BroadcastBus) busWrite(g int, addr cache.LineAddr, done func()) {
	supplier := -1
	var supplied cache.Line
	for s := range bb.clients {
		if s == g {
			continue
		}
		if l, ok := bb.invalidate(s, addr); ok {
			if l.State.DirtyData() || l.State == cache.Exclusive {
				supplier = s
				supplied = l
			}
		}
	}
	own := bb.clients[g].l2.Lookup(addr)
	switch {
	case own != nil:
		// Upgrade: write performs in the snoop slot.
		own.State = cache.Dirty
		own.Version = bb.nextVersion(addr)
		bb.clients[g].l1.Insert(addr, cache.Shared, own.Version)
		done()
	case supplier >= 0:
		if supplied.State.DirtyData() {
			bb.mems[bb.homeOf(addr)].WriteBack(addr, supplied.Version)
			bb.stats.MemWrites++
		}
		arrive := bb.send(bb.nodeOf(supplier), bb.nodeOf(g))
		bb.kern.Schedule(arrive, func() {
			bb.install(g, addr, cache.Dirty, bb.nextVersion(addr))
			done()
		})
	default:
		home := bb.homeOf(addr)
		rt := bb.mems[home].ReadLatency(bb.kern.Now(), addr, bb.nodeOf(g))
		bb.stats.MemReads++
		bb.stats.NOCMessages++
		bb.kern.After(rt, func() {
			bb.install(g, addr, cache.Dirty, bb.nextVersion(addr))
			done()
		})
	}
}

// CheckSWMR verifies the single-writer invariant (tests).
func (bb *BroadcastBus) CheckSWMR() error { return bb.checkSWMR() }
