package altproto

import (
	"fmt"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
)

// Directory is a full-map directory protocol (Section 2.1.2): every
// transaction is sent to the line's home node, whose directory serializes
// it — forwarding to the owner, invalidating sharers, or reading memory.
// The directory's cost is the indirection: a cache-to-cache transfer takes
// three network hops (requester -> home -> owner -> requester) where the
// ring's snoop takes one transit plus a direct data hop.
type Directory struct {
	*base

	// entries holds per-line directory state at the home (modelled as one
	// map; the home split is implicit in homeOf for latency purposes).
	entries map[cache.LineAddr]*dirEntry

	// dirAccessCycles is the directory lookup/update cost at the home.
	dirAccessCycles sim.Time
}

// dirEntry is one line's directory record.
type dirEntry struct {
	// sharers is a bitmask over global cores holding the line.
	sharers uint64
	// owner is the global core with the exclusive/dirty copy, or -1.
	owner int
	// busy serializes transactions on the line: the directory bounces
	// nothing, it queues (Section 2.1.2 mentions bouncing or buffering;
	// buffering is kinder and simpler).
	busy    bool
	waiters []func()
}

// NewDirectory builds the directory engine.
func NewDirectory(kern *sim.Kernel, cfg config.MachineConfig) (*Directory, error) {
	if cfg.TotalCores() > 64 {
		return nil, fmt.Errorf("altproto: full-map directory limited to 64 cores, got %d", cfg.TotalCores())
	}
	b, err := newBase(kern, cfg)
	if err != nil {
		return nil, err
	}
	return &Directory{base: b, entries: map[cache.LineAddr]*dirEntry{}, dirAccessCycles: 10}, nil
}

// Stats returns the accumulated counters.
func (d *Directory) Stats() Stats { return d.stats }

func (d *Directory) entry(addr cache.LineAddr) *dirEntry {
	e, ok := d.entries[addr]
	if !ok {
		e = &dirEntry{owner: -1}
		d.entries[addr] = e
	}
	return e
}

// Access implements the processor-side interface (cpu.Memory).
func (d *Directory) Access(node, core int, kind protocol.AccessKind, addr cache.LineAddr, done func()) {
	g := d.global(node, core)
	if kind == protocol.Load {
		d.stats.Loads++
	} else {
		d.stats.Stores++
	}
	line, l1hit := d.l2Hit(g, kind, addr)
	if l1hit {
		d.complete(sim.Time(d.cfg.L1.RoundTripCycles), done)
		return
	}
	l2RT := sim.Time(d.cfg.L2.RoundTripCycles)
	if kind == protocol.Load && line != nil {
		d.clients[g].l1.Insert(addr, cache.Shared, line.Version)
		d.complete(l2RT, done)
		return
	}
	if kind == protocol.Store && line != nil && (line.State == cache.Exclusive || line.State == cache.Dirty) {
		// Silent upgrade: the directory already records us as owner.
		line.State = cache.Dirty
		line.Version = d.nextVersion(addr)
		d.clients[g].l1.Insert(addr, cache.Shared, line.Version)
		d.complete(l2RT, done)
		return
	}
	// Miss (or S-upgrade): go to the home directory.
	if kind == protocol.Load {
		d.stats.ReadRequests++
	} else {
		d.stats.WriteRequests++
	}
	start := d.kern.Now()
	d.kern.After(l2RT, func() {
		d.toHome(g, kind, addr, func() {
			if kind == protocol.Load {
				d.stats.ReadMissCycles += uint64(d.kern.Now() - start)
				d.stats.ReadMissCount++
			}
			if done != nil {
				done()
			}
		})
	})
}

func (d *Directory) complete(after sim.Time, done func()) {
	d.kern.After(after, func() {
		if done != nil {
			done()
		}
	})
}

// toHome sends the request to the home node and runs the directory
// transaction when it arrives (queueing behind a busy line).
func (d *Directory) toHome(g int, kind protocol.AccessKind, addr cache.LineAddr, done func()) {
	home := d.homeOf(addr)
	arrive := d.send(d.nodeOf(g), home)
	d.kern.Schedule(arrive+d.dirAccessCycles, func() {
		d.atHome(g, kind, addr, done)
	})
}

func (d *Directory) atHome(g int, kind protocol.AccessKind, addr cache.LineAddr, done func()) {
	e := d.entry(addr)
	if e.busy {
		e.waiters = append(e.waiters, func() { d.atHome(g, kind, addr, done) })
		return
	}
	e.busy = true
	release := func() {
		e.busy = false
		if len(e.waiters) > 0 {
			next := e.waiters[0]
			e.waiters = e.waiters[1:]
			d.kern.After(1, next)
		}
	}
	if kind == protocol.Load {
		d.homeRead(g, addr, e, done, release)
	} else {
		d.homeWrite(g, addr, e, done, release)
	}
}

// homeRead serves a read at the directory.
func (d *Directory) homeRead(g int, addr cache.LineAddr, e *dirEntry, done, release func()) {
	home := d.homeOf(addr)
	// A queued request may have been satisfied by the requester's own
	// earlier transaction (store then load on the same line): reply with
	// a simple grant.
	if l := d.clients[g].l2.Lookup(addr); l != nil {
		d.clients[g].l1.Insert(addr, cache.Shared, l.Version)
		d.kern.Schedule(d.send(home, d.nodeOf(g)), func() {
			done()
		})
		release()
		return
	}
	if e.owner >= 0 {
		// 3-hop: forward to the owner, which downgrades, writes back,
		// and supplies the requester directly.
		d.stats.Indirections++
		owner := e.owner
		fwd := d.send(home, d.nodeOf(owner))
		d.kern.Schedule(fwd, func() {
			d.stats.SnoopOps++
			l := d.clients[owner].l2.Lookup(addr)
			version := d.versions[addr]
			if l != nil {
				version = l.Version
				l.State = cache.Shared
				d.mems[home].WriteBack(addr, l.Version)
				d.stats.MemWrites++
			}
			arrive := d.send(d.nodeOf(owner), d.nodeOf(g))
			d.kern.Schedule(arrive, func() {
				d.install(g, addr, cache.Shared, version)
				e.sharers |= 1<<uint(owner) | 1<<uint(g)
				e.owner = -1
				done()
				release()
			})
		})
		return
	}
	// Memory supplies; grant Exclusive when no sharer is recorded.
	rt := d.mems[home].ReadLatency(d.kern.Now(), addr, d.nodeOf(g))
	d.stats.MemReads++
	d.stats.NOCMessages++ // data reply
	d.kern.After(rt, func() {
		st := cache.Shared
		if e.sharers == 0 {
			st = cache.Exclusive
			e.owner = g
		}
		version := d.mems[home].Version(addr)
		d.install(g, addr, st, version)
		e.sharers |= 1 << uint(g)
		done()
		release()
	})
}

// homeWrite serves a write at the directory: invalidate every other copy,
// transfer data from the owner or memory, grant ownership.
func (d *Directory) homeWrite(g int, addr cache.LineAddr, e *dirEntry, done, release func()) {
	home := d.homeOf(addr)
	// Already the exclusive owner (an earlier queued write won): perform
	// the write locally after a grant hop.
	if l := d.clients[g].l2.Lookup(addr); l != nil && (l.State == cache.Exclusive || l.State == cache.Dirty) {
		l.State = cache.Dirty
		l.Version = d.nextVersion(addr)
		d.clients[g].l1.Insert(addr, cache.Shared, l.Version)
		d.kern.Schedule(d.send(home, d.nodeOf(g)), func() {
			done()
		})
		release()
		return
	}
	finish := func(version uint64, arrival sim.Time) {
		d.kern.Schedule(arrival, func() {
			d.install(g, addr, cache.Dirty, d.nextVersion(addr))
			_ = version
			e.sharers = 1 << uint(g)
			e.owner = g
			done()
			release()
		})
	}

	if e.owner >= 0 && e.owner != g {
		// Forward-invalidate: the owner sends its data to the requester
		// and invalidates itself.
		d.stats.Indirections++
		owner := e.owner
		fwd := d.send(home, d.nodeOf(owner))
		d.kern.Schedule(fwd, func() {
			d.stats.SnoopOps++
			version := d.versions[addr]
			if l, ok := d.invalidate(owner, addr); ok {
				version = l.Version
			}
			finish(version, d.send(d.nodeOf(owner), d.nodeOf(g)))
		})
		return
	}

	// Invalidate all sharers (other than the requester) in parallel; the
	// grant waits for the slowest ack at the home, then travels to the
	// requester. Directory sharer bits may be stale (silent evictions):
	// those invalidations are wasted messages, as in real systems.
	slowest := d.kern.Now()
	for s := 0; s < d.cfg.TotalCores(); s++ {
		if e.sharers&(1<<uint(s)) == 0 || s == g {
			continue
		}
		inv := d.send(home, d.nodeOf(s))
		d.stats.SnoopOps++
		sNode := d.nodeOf(s)
		d.invalidate(s, addr)
		ack := inv + d.torus.Latency(inv, sNode, home)
		d.stats.NOCMessages++
		if ack > slowest {
			slowest = ack
		}
	}

	version := d.versions[addr]
	if l := d.clients[g].l2.Lookup(addr); l != nil {
		// Upgrade: we already hold the data.
		d.invalidate(g, addr) // re-installed dirty below
		delay := slowest
		if grant := d.send(home, d.nodeOf(g)); grant > delay {
			delay = grant
		}
		finish(version, delay)
		return
	}
	// Write miss with no owner: memory supplies.
	rt := d.mems[home].ReadLatency(d.kern.Now(), addr, d.nodeOf(g))
	d.stats.MemReads++
	d.stats.NOCMessages++
	delay := d.kern.Now() + rt
	if slowest > delay {
		delay = slowest
	}
	finish(d.mems[home].Version(addr), delay)
}

// CheckSWMR verifies the single-writer invariant (tests).
func (d *Directory) CheckSWMR() error { return d.checkSWMR() }
