// Package altproto implements the two alternative coherence approaches the
// paper positions embedded-ring snooping against (Section 2.1): a
// directory-based protocol and a snoopy protocol over a shared broadcast
// bus. They exist so the paper's qualitative comparisons — the directory's
// "time-consuming indirection in all transactions" and the bus's limited
// scalability — can be measured rather than asserted.
//
// Both engines implement the same processor-facing interface as the ring
// engine (package protocol), so the same timing cores and workload
// generators drive all three. The protocols are deliberately simpler than
// the ring's (plain MESI at core granularity, no local-master refinement):
// they are baselines, not contributions.
package altproto

import (
	"fmt"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/interconnect"
	"flexsnoop/internal/memory"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
)

// Stats are the counters shared by both alternative engines, kept
// comparable with the ring engine's.
type Stats struct {
	Loads  uint64
	Stores uint64

	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64

	// Transactions that left the core's caches.
	ReadRequests  uint64
	WriteRequests uint64

	// Messages on the data network (directory: every hop of the
	// request/forward/invalidate/ack/data protocol; bus: data transfers).
	NOCMessages uint64
	// BusTransactions and BusWaitCycles measure broadcast-bus pressure.
	BusTransactions uint64
	BusWaitCycles   uint64
	// SnoopOps: cache tag lookups caused by coherence actions at other
	// cores (bus: every core on every transaction; directory: owners and
	// invalidated sharers only).
	SnoopOps uint64
	// Indirections: transactions that needed a third hop through the
	// directory (home -> owner forwarding).
	Indirections uint64

	MemReads  uint64
	MemWrites uint64

	ReadMissCycles uint64
	ReadMissCount  uint64
}

// AvgReadMissLatency returns the mean off-cache read-miss latency.
func (s Stats) AvgReadMissLatency() float64 {
	if s.ReadMissCount == 0 {
		return 0
	}
	return float64(s.ReadMissCycles) / float64(s.ReadMissCount)
}

// client is one core's private cache hierarchy, shared by both engines.
type client struct {
	l1, l2 *cache.Array
}

// base carries the machinery common to both engines.
type base struct {
	cfg     config.MachineConfig
	kern    *sim.Kernel
	torus   *interconnect.Torus
	mems    []*memory.Controller
	clients []client
	stats   Stats

	// versions is the global write-generation counter (validation).
	versions map[cache.LineAddr]uint64
}

func newBase(kern *sim.Kernel, cfg config.MachineConfig) (*base, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &base{
		cfg:  cfg,
		kern: kern,
		torus: interconnect.NewTorus(cfg.TorusWidth, cfg.TorusHeight,
			cfg.TorusHopCycles, cfg.DataSerializationCycles, cfg.NumCMPs),
		versions: make(map[cache.LineAddr]uint64),
	}
	for n := 0; n < cfg.NumCMPs; n++ {
		b.mems = append(b.mems, memory.NewController(n, cfg))
	}
	for i := 0; i < cfg.TotalCores(); i++ {
		b.clients = append(b.clients, client{
			l1: cache.NewArray(cfg.L1),
			l2: cache.NewArray(cfg.L2),
		})
	}
	return b, nil
}

// core indexing: global core g lives on node g / CoresPerCMP.
func (b *base) nodeOf(g int) int { return g / b.cfg.CoresPerCMP }

func (b *base) global(node, core int) int { return node*b.cfg.CoresPerCMP + core }

func (b *base) homeOf(addr cache.LineAddr) int {
	return memory.HomeNode(addr, b.cfg.NumCMPs)
}

func (b *base) nextVersion(addr cache.LineAddr) uint64 {
	b.versions[addr]++
	return b.versions[addr]
}

// send models one message on the data network and returns its arrival.
func (b *base) send(from, to int) sim.Time {
	b.stats.NOCMessages++
	return b.kern.Now() + b.torus.Latency(b.kern.Now(), from, to)
}

// l2Hit performs the common L1/L2 hit path; returns nil when the reference
// must go to the protocol.
func (b *base) l2Hit(g int, kind protocol.AccessKind, addr cache.LineAddr) (line *cache.Line, hitL1 bool) {
	c := b.clients[g]
	if kind == protocol.Load {
		if c.l1.Access(addr) != nil {
			return nil, true
		}
	} else {
		c.l1.Access(addr)
	}
	return c.l2.Access(addr), false
}

// install puts a line into a client's caches, writing back dirty victims.
func (b *base) install(g int, addr cache.LineAddr, st cache.State, version uint64) {
	c := b.clients[g]
	victim, evicted := c.l2.Insert(addr, st, version)
	if evicted {
		c.l1.Invalidate(victim.Addr)
		if victim.State.DirtyData() {
			b.mems[b.homeOf(victim.Addr)].WriteBack(victim.Addr, victim.Version)
			b.stats.MemWrites++
		}
	}
	c.l1.Insert(addr, cache.Shared, version)
}

// invalidate removes a line from a client, returning what was held.
func (b *base) invalidate(g int, addr cache.LineAddr) (cache.Line, bool) {
	c := b.clients[g]
	c.l1.Invalidate(addr)
	return c.l2.Invalidate(addr)
}

// LineState exposes a client's state for a line (tests).
func (b *base) LineState(g int, addr cache.LineAddr) cache.State {
	if l := b.clients[g].l2.Lookup(addr); l != nil {
		return l.State
	}
	return cache.Invalid
}

// LatestVersion returns the last committed write generation (tests).
func (b *base) LatestVersion(addr cache.LineAddr) uint64 { return b.versions[addr] }

// checkSWMR verifies the single-writer/multi-reader invariant and version
// agreement across all clients (tests).
func (b *base) checkSWMR() error {
	type holder struct {
		g int
		l cache.Line
	}
	byAddr := map[cache.LineAddr][]holder{}
	for g := range b.clients {
		b.clients[g].l2.ForEach(func(l cache.Line) {
			byAddr[l.Addr] = append(byAddr[l.Addr], holder{g, l})
		})
	}
	for addr, hs := range byAddr {
		dirty := 0
		for _, h := range hs {
			if h.l.State.DirtyData() || h.l.State == cache.Exclusive {
				dirty++
			}
			if h.l.Version != hs[0].l.Version {
				return fmt.Errorf("altproto: line %#x version split %d vs %d",
					addr, h.l.Version, hs[0].l.Version)
			}
		}
		if dirty > 0 && len(hs) > 1 {
			return fmt.Errorf("altproto: line %#x has %d exclusive holders among %d copies",
				addr, dirty, len(hs))
		}
		if hs[0].l.Version != b.versions[addr] {
			return fmt.Errorf("altproto: line %#x cached at v%d, latest v%d",
				addr, hs[0].l.Version, b.versions[addr])
		}
	}
	return nil
}
