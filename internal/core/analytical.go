package core

import (
	"fmt"

	"flexsnoop/internal/config"
	"flexsnoop/internal/energy"
)

// Model is the closed-form analytical model behind Tables 1 and 3 and the
// design-space chart of Figure 4. It assumes a perfectly uniform
// distribution of accesses; SupplierProb scales between "one of the nodes
// can supply the data" (1.0, the tables' assumption) and memory-bound
// workloads.
type Model struct {
	// N is the number of CMP nodes on the ring.
	N int
	// LinkCycles, SnoopCycles, PredictorCycles are the unloaded costs of
	// one ring hop, one CMP snoop, and one predictor check.
	LinkCycles      float64
	SnoopCycles     float64
	PredictorCycles float64
	// SupplierProb is the probability a read snoop finds any supplier.
	SupplierProb float64
	// FNRate / FPRate are the supplier predictor's false-negative /
	// false-positive rates per predictor check.
	FNRate float64
	FPRate float64
}

// DefaultModel returns the Table 4 cost model with the Table 1 assumption
// that a supplier always exists.
func DefaultModel(n int) Model {
	return Model{
		N: n, LinkCycles: 39, SnoopCycles: 55, PredictorCycles: 2,
		SupplierProb: 1.0,
	}
}

// meanDistance is the expected ring distance to the supplier under a
// uniform distribution over the other N-1 nodes: E[d] = N/2.
func (m Model) meanDistance() float64 { return float64(m.N) / 2 }

// ExpectedSnoops returns the average number of snoop operations per read
// snoop request (Table 1 column 3, Table 3 column "Avg # Snoop
// Operations").
func (m Model) ExpectedSnoops(a config.Algorithm) float64 {
	n := float64(m.N)
	d := m.meanDistance()
	p := m.SupplierProb
	// When no supplier exists the request circles the whole ring; every
	// snooping algorithm that snoops on negative predictions pays N-1.
	switch a {
	case config.Lazy:
		// Snoop every node until the supplier: E[d] with a supplier,
		// N-1 without. The paper's Table 1 quotes (N-1)/2 for the
		// supplier case.
		return p*((n-1)/2) + (1-p)*(n-1)
	case config.Eager:
		return n - 1
	case config.Oracle:
		return p * 1
	case config.Subset:
		// Snoops every node up to the supplier (both predictions snoop
		// before it); a false negative at the supplier lets the request
		// race on, snooping the remaining nodes too:
		// Lazy + alpha*FN (Table 3), alpha = nodes past the supplier.
		alpha := n - 1 - d
		return p*((n-1)/2+m.FNRate*alpha) + (1-p)*(n-1)
	case config.SupersetCon:
		// 1 (the supplier) + false positives among the d-1 nodes before
		// it; with no supplier, false positives across all N-1 nodes.
		return p*(1+m.FPRate*(d-1)) + (1-p)*(m.FPRate*(n-1))
	case config.SupersetAgg:
		// The request passes every node (it races past the supplier),
		// so false positives across all N-1 nodes are snooped.
		return p*(1+m.FPRate*(n-2)) + (1-p)*(m.FPRate*(n-1))
	case config.Exact:
		return p * 1
	case config.DynamicSuperset:
		return m.ExpectedSnoops(config.SupersetAgg)
	default:
		panic(fmt.Sprintf("core: no analytical model for %v", a))
	}
}

// ExpectedMessages returns the average number of simultaneous messages per
// snoop request (Table 1 column 4 and Table 3's "Avg # Msgs"): 1 when the
// request and reply always travel combined, approaching 2 when they split
// for most of the ring.
func (m Model) ExpectedMessages(a config.Algorithm) float64 {
	n := float64(m.N)
	d := m.meanDistance()
	switch a {
	case config.Lazy, config.Oracle, config.SupersetCon, config.Exact:
		return 1
	case config.Eager:
		// Split from the first node on: 2N-1 segment transmissions over
		// N segments ("not exactly twice": the first segment is shared).
		return (2*n - 1) / n
	case config.Subset:
		// Splits at the first negative prediction (almost immediately),
		// merges at the supplier's positive prediction, then travels
		// combined. Splits again past the supplier on a false negative.
		split := (d - 1) + m.FNRate*(n-d)
		return (n + split) / n
	case config.SupersetAgg:
		// Travels combined until the first positive prediction; the
		// expected first false positive among d-1 nodes, else the
		// supplier itself, then split for the rest of the ring.
		before := (d - 1) * m.FPRate // expected FPs before supplier
		splitAt := d
		if before >= 1 {
			splitAt = 1 / m.FPRate
		}
		return (n + (n - splitAt)) / n
	case config.DynamicSuperset:
		return m.ExpectedMessages(config.SupersetAgg)
	default:
		panic(fmt.Sprintf("core: no analytical model for %v", a))
	}
}

// UnloadedLatency returns the expected unloaded snoop-request latency
// until the supplier's snoop completes (Figure 4's X axis), in cycles.
func (m Model) UnloadedLatency(a config.Algorithm) float64 {
	d := m.meanDistance()
	l, s, pc := m.LinkCycles, m.SnoopCycles, m.PredictorCycles
	switch a {
	case config.Lazy:
		// Snoop at each of the d nodes is on the critical path.
		return d * (l + s)
	case config.Eager:
		return d*l + s
	case config.Oracle:
		return d*l + s
	case config.Subset:
		// Predictor check precedes each forward; a supplier false
		// negative does not delay the data (the snoop still runs).
		return d*(l+pc) + s
	case config.SupersetCon:
		// False positives put snoops on the critical path.
		return d*(l+pc) + m.FPRate*(d-1)*s + s
	case config.SupersetAgg, config.Exact, config.DynamicSuperset:
		return d*(l+pc) + s
	default:
		panic(fmt.Sprintf("core: no analytical model for %v", a))
	}
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Algorithm config.Algorithm
	Latency   float64
	SnoopOps  float64
	Messages  float64
}

// Table1 returns the three baseline rows of Table 1 (Lazy, Eager, Oracle)
// under the table's assumptions.
func (m Model) Table1() []Table1Row {
	var rows []Table1Row
	for _, a := range []config.Algorithm{config.Lazy, config.Eager, config.Oracle} {
		rows = append(rows, Table1Row{
			Algorithm: a,
			Latency:   m.UnloadedLatency(a),
			SnoopOps:  m.ExpectedSnoops(a),
			Messages:  m.ExpectedMessages(a),
		})
	}
	return rows
}

// Table3Row is one row of Table 3 for a Flexible Snooping algorithm.
type Table3Row struct {
	Algorithm      config.Algorithm
	FalsePositives bool
	FalseNegatives bool
	OnPositive     Primitive
	OnNegative     Primitive
	Latency        float64
	SnoopOps       float64
	Messages       float64
}

// Table3 returns the four Flexible Snooping rows of Table 3.
func (m Model) Table3() []Table3Row {
	specs := []struct {
		alg    config.Algorithm
		fp, fn bool
		pos    Primitive
		neg    Primitive
	}{
		{config.Subset, false, true, SnoopThenForward, ForwardThenSnoop},
		{config.SupersetCon, true, false, SnoopThenForward, Forward},
		{config.SupersetAgg, true, false, ForwardThenSnoop, Forward},
		{config.Exact, false, false, SnoopThenForward, Forward},
	}
	var rows []Table3Row
	for _, s := range specs {
		rows = append(rows, Table3Row{
			Algorithm:      s.alg,
			FalsePositives: s.fp,
			FalseNegatives: s.fn,
			OnPositive:     s.pos,
			OnNegative:     s.neg,
			Latency:        m.UnloadedLatency(s.alg),
			SnoopOps:       m.ExpectedSnoops(s.alg),
			Messages:       m.ExpectedMessages(s.alg),
		})
	}
	return rows
}

// DesignPoint is one algorithm's placement in the Figure 4 design space.
type DesignPoint struct {
	Algorithm config.Algorithm
	Latency   float64 // X: unloaded snoop request latency until supplier found
	SnoopOps  float64 // Y: snoop operations per snoop request
}

// DesignSpace places every algorithm in the Figure 4 chart.
func (m Model) DesignSpace() []DesignPoint {
	var pts []DesignPoint
	for _, a := range config.Algorithms() {
		pts = append(pts, DesignPoint{
			Algorithm: a,
			Latency:   m.UnloadedLatency(a),
			SnoopOps:  m.ExpectedSnoops(a),
		})
	}
	return pts
}

// ExpectedPredictorChecks returns how many supplier-predictor lookups one
// read snoop request performs: nodes up to the supplier for algorithms
// that hold the message there, every node for those whose request races
// past it.
func (m Model) ExpectedPredictorChecks(a config.Algorithm) float64 {
	n := float64(m.N)
	d := m.meanDistance()
	p := m.SupplierProb
	switch a {
	case config.Lazy, config.Eager:
		return 0
	case config.Oracle, config.SupersetCon, config.Exact:
		// The message stops splitting/searching at the supplier.
		return p*d + (1-p)*(n-1)
	case config.Subset, config.SupersetAgg, config.DynamicSuperset:
		// The request component races the whole ring.
		return n - 1
	default:
		panic(fmt.Sprintf("core: no analytical model for %v", a))
	}
}

// ExpectedEnergyNJ estimates the snoop-servicing energy of one read snoop
// request under the Section 6.1.4 per-operation costs: ring-link message
// transmissions, CMP snoops, and predictor lookups. (Exact's downgrade
// write-backs depend on working-set pressure and are outside the
// closed-form model.)
func (m Model) ExpectedEnergyNJ(a config.Algorithm, p energy.Params) float64 {
	segments := m.ExpectedMessages(a) * float64(m.N)
	e := segments * p.RingLinkMsgNJ
	e += m.ExpectedSnoops(a) * p.SnoopOpNJ
	lookup := p.SubsetLookupNJ
	switch a {
	case config.SupersetCon, config.SupersetAgg, config.DynamicSuperset:
		lookup = p.SupersetLookupNJ
	}
	e += m.ExpectedPredictorChecks(a) * lookup
	return e
}
