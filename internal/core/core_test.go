package core

import (
	"testing"

	"flexsnoop/internal/config"
	"flexsnoop/internal/energy"
)

func TestPolicyTable3Actions(t *testing.T) {
	// Table 3, transcribed: (algorithm, on positive, on negative).
	cases := []struct {
		alg      config.Algorithm
		positive Primitive
		negative Primitive
	}{
		{config.Oracle, SnoopThenForward, Forward},
		{config.Subset, SnoopThenForward, ForwardThenSnoop},
		{config.SupersetCon, SnoopThenForward, Forward},
		{config.SupersetAgg, ForwardThenSnoop, Forward},
		{config.Exact, SnoopThenForward, Forward},
	}
	for _, tc := range cases {
		p := NewPolicy(tc.alg)
		if got := p.DecideRead(func() bool { return true }); got.Primitive != tc.positive || !got.CheckedPredictor || !got.Predicted {
			t.Errorf("%v positive -> %+v, want %v", tc.alg, got, tc.positive)
		}
		if got := p.DecideRead(func() bool { return false }); got.Primitive != tc.negative || !got.CheckedPredictor || got.Predicted {
			t.Errorf("%v negative -> %+v, want %v", tc.alg, got, tc.negative)
		}
	}
}

func TestFixedPolicies(t *testing.T) {
	lazy := NewPolicy(config.Lazy)
	if got := lazy.DecideRead(nil); got.Primitive != SnoopThenForward || got.CheckedPredictor {
		t.Errorf("Lazy -> %+v", got)
	}
	eager := NewPolicy(config.Eager)
	if got := eager.DecideRead(nil); got.Primitive != ForwardThenSnoop || got.CheckedPredictor {
		t.Errorf("Eager -> %+v", got)
	}
}

func TestPredictedPolicyNeedsPredictor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Subset without predictor did not panic")
		}
	}()
	NewPolicy(config.Subset).DecideRead(nil)
}

func TestWriteDecouplingMatchesClass(t *testing.T) {
	for _, a := range config.Algorithms() {
		p := NewPolicy(a)
		if p.DecoupleWrites() != a.DecouplesWrites() {
			t.Errorf("%v policy decoupling disagrees with config", a)
		}
	}
}

func TestDynamicSupersetSwitches(t *testing.T) {
	d := NewDynamicSuperset()
	if !d.Aggressive() {
		t.Error("dynamic policy should start aggressive")
	}
	if got := d.DecideRead(func() bool { return true }); got.Primitive != ForwardThenSnoop {
		t.Errorf("agg positive -> %v, want ForwardThenSnoop", got.Primitive)
	}
	d.SetAggressive(false)
	if got := d.DecideRead(func() bool { return true }); got.Primitive != SnoopThenForward {
		t.Errorf("con positive -> %v, want SnoopThenForward", got.Primitive)
	}
	// Negative predictions always Forward, either mode.
	for _, mode := range []bool{true, false} {
		d.SetAggressive(mode)
		if got := d.DecideRead(func() bool { return false }); got.Primitive != Forward {
			t.Errorf("mode=%v negative -> %v, want Forward", mode, got.Primitive)
		}
	}
	if d.AggDecisions == 0 || d.ConDecisions == 0 {
		t.Error("mode decision counters not advancing")
	}
}

func TestPrimitiveSnoops(t *testing.T) {
	if !ForwardThenSnoop.Snoops() || !SnoopThenForward.Snoops() {
		t.Error("snooping primitives misclassified")
	}
	if Forward.Snoops() {
		t.Error("Forward must not snoop")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	m := DefaultModel(8)
	rows := m.Table1()
	byAlg := map[config.Algorithm]Table1Row{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
	}
	// Table 1: Lazy (N-1)/2 snoops, Eager N-1, Oracle 1.
	if got := byAlg[config.Lazy].SnoopOps; got != 3.5 {
		t.Errorf("Lazy snoops = %v, want (N-1)/2 = 3.5", got)
	}
	if got := byAlg[config.Eager].SnoopOps; got != 7 {
		t.Errorf("Eager snoops = %v, want N-1 = 7", got)
	}
	if got := byAlg[config.Oracle].SnoopOps; got != 1 {
		t.Errorf("Oracle snoops = %v, want 1", got)
	}
	// Messages: 1, ~2, 1.
	if got := byAlg[config.Lazy].Messages; got != 1 {
		t.Errorf("Lazy messages = %v, want 1", got)
	}
	if got := byAlg[config.Eager].Messages; got <= 1.8 || got >= 2 {
		t.Errorf("Eager messages = %v, want just under 2", got)
	}
	if got := byAlg[config.Oracle].Messages; got != 1 {
		t.Errorf("Oracle messages = %v, want 1", got)
	}
	// Latency: Lazy high, Eager and Oracle low (Table 1 column 2).
	if byAlg[config.Lazy].Latency <= byAlg[config.Eager].Latency {
		t.Error("Lazy must have higher latency than Eager")
	}
	if byAlg[config.Eager].Latency != byAlg[config.Oracle].Latency {
		t.Error("Eager and Oracle share the same unloaded latency")
	}
}

func TestTable3Properties(t *testing.T) {
	m := DefaultModel(8)
	m.FNRate = 0.05
	m.FPRate = 0.3
	rows := m.Table3()
	if len(rows) != 4 {
		t.Fatalf("Table 3 has %d rows, want 4", len(rows))
	}
	byAlg := map[config.Algorithm]Table3Row{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
	}
	// FP/FN flags per Table 3.
	if byAlg[config.Subset].FalsePositives || !byAlg[config.Subset].FalseNegatives {
		t.Error("Subset: no false positives, yes false negatives")
	}
	if !byAlg[config.SupersetCon].FalsePositives || byAlg[config.SupersetCon].FalseNegatives {
		t.Error("SupersetCon: yes false positives, no false negatives")
	}
	if byAlg[config.Exact].FalsePositives || byAlg[config.Exact].FalseNegatives {
		t.Error("Exact: neither false positives nor false negatives")
	}
	// Snoop counts: Subset above Lazy; SupersetCon below SupersetAgg;
	// Exact exactly 1.
	lazy := m.ExpectedSnoops(config.Lazy)
	if byAlg[config.Subset].SnoopOps <= lazy {
		t.Errorf("Subset snoops %v should exceed Lazy %v", byAlg[config.Subset].SnoopOps, lazy)
	}
	if byAlg[config.SupersetCon].SnoopOps >= byAlg[config.SupersetAgg].SnoopOps {
		t.Error("SupersetCon should snoop less than SupersetAgg")
	}
	if byAlg[config.Exact].SnoopOps != 1 {
		t.Errorf("Exact snoops = %v, want 1", byAlg[config.Exact].SnoopOps)
	}
	// Messages: SupersetCon and Exact have 1 (like Lazy); Subset and
	// SupersetAgg between 1 and 2.
	if byAlg[config.SupersetCon].Messages != 1 || byAlg[config.Exact].Messages != 1 {
		t.Error("SupersetCon/Exact should use a single combined message")
	}
	for _, a := range []config.Algorithm{config.Subset, config.SupersetAgg} {
		msgs := byAlg[a].Messages
		if msgs <= 1 || msgs >= 2 {
			t.Errorf("%v messages = %v, want in (1,2)", a, msgs)
		}
	}
	// Latency: SupersetCon medium (above Agg), others low.
	if byAlg[config.SupersetCon].Latency <= byAlg[config.SupersetAgg].Latency {
		t.Error("SupersetCon latency should exceed SupersetAgg (false positives on path)")
	}
}

func TestDesignSpaceOrdering(t *testing.T) {
	// Figure 4(b): Oracle and Exact at the origin region; Eager top-left
	// (low latency, max snoops); Lazy bottom-right (high latency, medium
	// snoops); Subset above Lazy; Superset variants near the origin.
	m := DefaultModel(8)
	m.FNRate = 0.05
	m.FPRate = 0.3
	pts := map[config.Algorithm]DesignPoint{}
	for _, p := range m.DesignSpace() {
		pts[p.Algorithm] = p
	}
	if len(pts) != 7 {
		t.Fatalf("design space has %d points, want 7", len(pts))
	}
	if !(pts[config.Eager].SnoopOps > pts[config.Lazy].SnoopOps) {
		t.Error("Eager should snoop more than Lazy")
	}
	if !(pts[config.Subset].SnoopOps > pts[config.Lazy].SnoopOps) {
		t.Error("Subset sits above Lazy on the snoop axis (Figure 4b)")
	}
	if !(pts[config.Lazy].Latency > pts[config.Eager].Latency) {
		t.Error("Lazy is the high-latency extreme")
	}
	for _, a := range []config.Algorithm{config.SupersetCon, config.SupersetAgg} {
		if !(pts[a].SnoopOps < pts[config.Lazy].SnoopOps) {
			t.Errorf("%v should snoop less than Lazy", a)
		}
	}
	if pts[config.Exact].SnoopOps != pts[config.Oracle].SnoopOps {
		t.Error("Exact and Oracle share the origin (1 snoop)")
	}
}

func TestSupplierProbScalesSnoops(t *testing.T) {
	// SPECjbb-like: rarely a supplier. Lazy approaches N-1 (Figure 6's
	// "close to 7" observation), Oracle approaches 0.
	m := DefaultModel(8)
	m.SupplierProb = 0.1
	if got := m.ExpectedSnoops(config.Lazy); got <= 6 {
		t.Errorf("memory-bound Lazy snoops = %v, want near 7", got)
	}
	if got := m.ExpectedSnoops(config.Oracle); got >= 0.2 {
		t.Errorf("memory-bound Oracle snoops = %v, want near 0", got)
	}
}

func TestModelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown algorithm did not panic")
		}
	}()
	DefaultModel(8).ExpectedSnoops(config.Algorithm(99))
}

func TestPrimitiveStrings(t *testing.T) {
	names := map[Primitive]string{
		ForwardThenSnoop: "ForwardThenSnoop",
		SnoopThenForward: "SnoopThenForward",
		Forward:          "Forward",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestExpectedEnergyOrdering(t *testing.T) {
	// The analytical energy per read request must reproduce the Figure 9
	// ordering: Eager most expensive, SupersetCon at or below Lazy,
	// SupersetAgg between them, Oracle cheap.
	m := DefaultModel(8)
	m.FNRate = 0.02
	m.FPRate = 0.3
	p := energy.DefaultParams()
	e := map[config.Algorithm]float64{}
	for _, a := range config.Algorithms() {
		e[a] = m.ExpectedEnergyNJ(a, p)
	}
	if !(e[config.Eager] > e[config.SupersetAgg]) {
		t.Errorf("Eager %.2f <= SupersetAgg %.2f", e[config.Eager], e[config.SupersetAgg])
	}
	if !(e[config.SupersetAgg] > e[config.Lazy]) {
		t.Errorf("SupersetAgg %.2f <= Lazy %.2f", e[config.SupersetAgg], e[config.Lazy])
	}
	if e[config.SupersetCon] > e[config.Lazy] {
		t.Errorf("SupersetCon %.2f above Lazy %.2f (paper: slightly below)", e[config.SupersetCon], e[config.Lazy])
	}
	if !(e[config.Oracle] < e[config.Lazy]) {
		t.Errorf("Oracle %.2f >= Lazy %.2f", e[config.Oracle], e[config.Lazy])
	}
	// Eager ~1.8x Lazy at full supplier probability mirrors Figure 9.
	ratio := e[config.Eager] / e[config.Lazy]
	if ratio < 1.4 || ratio > 2.2 {
		t.Errorf("Eager/Lazy energy ratio = %.2f, want ~1.8", ratio)
	}
}

func TestExpectedPredictorChecks(t *testing.T) {
	m := DefaultModel(8)
	if m.ExpectedPredictorChecks(config.Lazy) != 0 || m.ExpectedPredictorChecks(config.Eager) != 0 {
		t.Error("non-predicting algorithms must not check predictors")
	}
	// Racing algorithms check every node; holding algorithms only up to
	// the supplier.
	if got := m.ExpectedPredictorChecks(config.SupersetAgg); got != 7 {
		t.Errorf("SupersetAgg checks = %v, want 7", got)
	}
	con := m.ExpectedPredictorChecks(config.SupersetCon)
	if con >= 7 || con <= 0 {
		t.Errorf("SupersetCon checks = %v, want in (0,7)", con)
	}
}
