// Package core implements the paper's primary contribution: the Flexible
// Snooping taxonomy (Sections 3 and 4).
//
// A node receiving a snoop request executes one of three primitive
// operations (Table 2):
//
//   - ForwardThenSnoop: forward the request immediately, snoop in
//     parallel, and send/merge a trailing reply when the local snoop and
//     all predecessors' outcomes are known.
//   - SnoopThenForward: hold the message, snoop, and forward a single
//     combined request/reply when the snoop completes.
//   - Forward: pass the message through untouched, skipping the snoop.
//
// An algorithm is a policy choosing a primitive from the supplier
// predictor's output. The package also provides the closed-form analytical
// model behind Tables 1 and 3 and the design-space placement of Figure 4.
package core

import (
	"fmt"

	"flexsnoop/internal/config"
)

// Primitive is one of the three per-node actions of Table 2.
type Primitive int

const (
	// ForwardThenSnoop forwards first, snoops in parallel.
	ForwardThenSnoop Primitive = iota
	// SnoopThenForward snoops first, forwards a combined R/R after.
	SnoopThenForward
	// Forward skips the snoop entirely (adaptive filtering).
	Forward
)

func (p Primitive) String() string {
	switch p {
	case ForwardThenSnoop:
		return "ForwardThenSnoop"
	case SnoopThenForward:
		return "SnoopThenForward"
	case Forward:
		return "Forward"
	default:
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
}

// Snoops reports whether the primitive performs a snoop operation.
func (p Primitive) Snoops() bool { return p != Forward }

// Decision is a policy's choice for one arriving snoop request.
type Decision struct {
	Primitive Primitive
	// CheckedPredictor is true when the supplier predictor was consulted
	// (it costs energy and, for some primitives, latency).
	CheckedPredictor bool
	// Predicted is the predictor's output when consulted.
	Predicted bool
}

// Policy maps predictor outcomes to primitives for one algorithm.
//
// DecideRead is called with a thunk that consults the node's supplier
// predictor; policies that never predict (Lazy, Eager) must not call it.
type Policy interface {
	// Algorithm identifies the policy.
	Algorithm() config.Algorithm
	// DecideRead picks the primitive for an arriving read snoop request.
	DecideRead(predict func() bool) Decision
	// DecoupleWrites reports whether write snoops split into request +
	// reply for parallel invalidation (Section 5.3).
	DecoupleWrites() bool
}

// NewPolicy constructs the policy for an algorithm. Table 3, rows in
// paper order:
//
//	Subset:      positive -> SnoopThenForward, negative -> ForwardThenSnoop
//	SupersetCon: positive -> SnoopThenForward, negative -> Forward
//	SupersetAgg: positive -> ForwardThenSnoop, negative -> Forward
//	Exact:       positive -> SnoopThenForward, negative -> Forward
//
// Lazy always SnoopThenForward, Eager always ForwardThenSnoop, Oracle
// snoops only at the (perfectly predicted) supplier.
func NewPolicy(a config.Algorithm) Policy {
	switch a {
	case config.Lazy:
		return fixedPolicy{alg: a, prim: SnoopThenForward}
	case config.Eager:
		return fixedPolicy{alg: a, prim: ForwardThenSnoop}
	case config.Oracle:
		return predictedPolicy{alg: a, onPositive: SnoopThenForward, onNegative: Forward}
	case config.Subset:
		return predictedPolicy{alg: a, onPositive: SnoopThenForward, onNegative: ForwardThenSnoop}
	case config.SupersetCon:
		return predictedPolicy{alg: a, onPositive: SnoopThenForward, onNegative: Forward}
	case config.SupersetAgg:
		return predictedPolicy{alg: a, onPositive: ForwardThenSnoop, onNegative: Forward}
	case config.Exact:
		return predictedPolicy{alg: a, onPositive: SnoopThenForward, onNegative: Forward}
	case config.DynamicSuperset:
		return NewDynamicSuperset()
	default:
		panic(fmt.Sprintf("core: no policy for algorithm %v", a))
	}
}

// fixedPolicy always executes the same primitive (Lazy, Eager).
type fixedPolicy struct {
	alg  config.Algorithm
	prim Primitive
}

func (p fixedPolicy) Algorithm() config.Algorithm { return p.alg }

func (p fixedPolicy) DecideRead(func() bool) Decision {
	return Decision{Primitive: p.prim}
}

func (p fixedPolicy) DecoupleWrites() bool { return p.alg.DecouplesWrites() }

// predictedPolicy consults the supplier predictor and maps each outcome to
// a primitive (Table 3).
type predictedPolicy struct {
	alg        config.Algorithm
	onPositive Primitive
	onNegative Primitive
}

func (p predictedPolicy) Algorithm() config.Algorithm { return p.alg }

func (p predictedPolicy) DecideRead(predict func() bool) Decision {
	if predict == nil {
		panic(fmt.Sprintf("core: %v requires a supplier predictor", p.alg))
	}
	if predict() {
		return Decision{Primitive: p.onPositive, CheckedPredictor: true, Predicted: true}
	}
	return Decision{Primitive: p.onNegative, CheckedPredictor: true, Predicted: false}
}

func (p predictedPolicy) DecoupleWrites() bool { return p.alg.DecouplesWrites() }

// DynamicSuperset is the adaptive system the paper envisions in Section
// 6.1.5: it uses a superset predictor and switches the positive-prediction
// action between the SupersetAgg behaviour (ForwardThenSnoop; fastest) and
// the SupersetCon behaviour (SnoopThenForward; most energy-efficient) at
// run time, e.g. under an energy budget.
type DynamicSuperset struct {
	aggressive bool

	// AggDecisions / ConDecisions count decisions taken in each mode.
	AggDecisions uint64
	ConDecisions uint64
}

// NewDynamicSuperset starts in aggressive (high-performance) mode.
func NewDynamicSuperset() *DynamicSuperset { return &DynamicSuperset{aggressive: true} }

// Algorithm returns config.DynamicSuperset.
func (p *DynamicSuperset) Algorithm() config.Algorithm { return config.DynamicSuperset }

// SetAggressive switches between the Agg (true) and Con (false) actions.
func (p *DynamicSuperset) SetAggressive(agg bool) { p.aggressive = agg }

// Aggressive reports the current mode.
func (p *DynamicSuperset) Aggressive() bool { return p.aggressive }

// DecideRead behaves as SupersetAgg or SupersetCon depending on the mode.
func (p *DynamicSuperset) DecideRead(predict func() bool) Decision {
	if predict == nil {
		panic("core: DynamicSuperset requires a supplier predictor")
	}
	if p.aggressive {
		p.AggDecisions++
	} else {
		p.ConDecisions++
	}
	if predict() {
		prim := SnoopThenForward
		if p.aggressive {
			prim = ForwardThenSnoop
		}
		return Decision{Primitive: prim, CheckedPredictor: true, Predicted: true}
	}
	return Decision{Primitive: Forward, CheckedPredictor: true, Predicted: false}
}

// DecoupleWrites: the dynamic policy keeps the Eager-class write path.
func (p *DynamicSuperset) DecoupleWrites() bool { return true }
