// Package ring models the unidirectional ring(s) logically embedded in the
// machine's network to carry snoop messages (Section 2.1.4). Data-transfer
// messages never use the ring; they travel on the torus (package
// interconnect).
//
// When more than one ring is embedded, snoop requests are mapped to rings
// by their memory address (Section 2.2), balancing load on the underlying
// physical network.
package ring

import (
	"fmt"

	"flexsnoop/internal/bus"
	"flexsnoop/internal/cache"
	"flexsnoop/internal/sim"
)

// Kind distinguishes read from write snoop transactions.
type Kind int

const (
	// ReadSnoop looks for a supplier of the line.
	ReadSnoop Kind = iota
	// WriteSnoop invalidates every cached copy (and fetches data on a
	// write miss).
	WriteSnoop
)

func (k Kind) String() string {
	if k == ReadSnoop {
		return "read"
	}
	return "write"
}

// TxnID uniquely identifies a coherence transaction machine-wide. Retries
// of a squashed transaction get a fresh TxnID but keep their age.
type TxnID uint64

// Message is a snoop message on the embedded ring. A message may carry a
// request component, a reply component, or both (the paper's "combined
// Request/Reply"). ForwardThenSnoop splits a combined message; reply
// merging recombines the halves (Table 2).
type Message struct {
	Txn       TxnID
	Kind      Kind
	Addr      cache.LineAddr
	Requester int // CMP node id

	// Age orders transactions for collision resolution: the cycle the
	// original transaction was issued (retries keep it).
	Age sim.Time

	// HasRequest / HasReply select which components this message carries.
	HasRequest bool
	HasReply   bool

	// NeedsData marks a write-miss snoop: the supplier must transfer the
	// line (and ownership) to the requester, not just invalidate.
	NeedsData bool

	// Reply-side aggregate state. On a combined message it reflects the
	// nodes visited so far.
	Found    bool // a supplier was located (read) or data claimed (write)
	Supplier int  // the supplying node, valid when Found

	// SharerSeen: some snooped node held a non-supplier copy. Together
	// with SnoopedMask it decides whether memory may grant E.
	SharerSeen bool
	// SnoopedMask has bit i set when node i performed the snoop
	// operation for this transaction.
	SnoopedMask uint64

	// Squashed transactions perform no further snoops; the requester
	// retries when the message returns (Section 2.1.4).
	Squashed bool

	// SharedGrant demotes the requester's memory grant to plain Shared:
	// set when the request crosses another in-flight read of the same
	// line, so that two concurrent memory reads cannot both install
	// master states.
	SharedGrant bool

	// InvAcks counts nodes that completed invalidation (write snoops).
	InvAcks int

	// Dup marks a fault-injected duplicate of an already-delivered
	// segment; receivers discard it on arrival (the sequence-number
	// check of a real link), so it costs bandwidth and delivery only.
	Dup bool
}

// Clone returns a copy of the message (for splitting).
func (m *Message) Clone() *Message {
	c := *m
	return &c
}

// AllSnooped reports whether every node except the requester snooped.
func (m *Message) AllSnooped(numNodes int) bool {
	want := uint64(1)<<uint(numNodes) - 1
	want &^= uint64(1) << uint(m.Requester)
	return m.SnoopedMask&want == want
}

// MergeReply folds reply information from another message half into m.
func (m *Message) MergeReply(other *Message) {
	if other.Found {
		m.Found = true
		m.Supplier = other.Supplier
	}
	m.SharerSeen = m.SharerSeen || other.SharerSeen
	m.SnoopedMask |= other.SnoopedMask
	m.Squashed = m.Squashed || other.Squashed
	m.SharedGrant = m.SharedGrant || other.SharedGrant
	m.InvAcks += other.InvAcks
}

// Ring is one embedded unidirectional ring over n nodes: node i forwards
// to node (i+1) mod n. Links are FIFO with a fixed latency and a short
// serialization occupancy, modelled per link.
type Ring struct {
	n            int
	linkCycles   sim.Time
	occupancy    sim.Time
	links        []bus.Bus // links[i]: i -> (i+1)%n
	Transmitted  uint64    // message-segment transmissions (Figure 7 metric)
	ReadSegments uint64    // subset of Transmitted for read snoops

	// OnSend, when non-nil, observes every message-segment transmission
	// (the telemetry layer's link probe): the segment departs node from
	// at depart and arrives at the successor at arrive. The nil check is
	// the only cost when telemetry is disabled.
	OnSend func(depart, arrive sim.Time, from int, m *Message)
}

// NewRing builds a ring over n nodes with the given link latency and
// per-message link occupancy (serialization time).
func NewRing(n int, linkCycles, occupancyCycles int) *Ring {
	if n < 2 {
		panic(fmt.Sprintf("ring: need at least 2 nodes, got %d", n))
	}
	if linkCycles <= 0 {
		panic("ring: link latency must be positive")
	}
	return &Ring{
		n:          n,
		linkCycles: sim.Time(linkCycles),
		occupancy:  sim.Time(occupancyCycles),
		links:      make([]bus.Bus, n),
	}
}

// Nodes returns the node count.
func (r *Ring) Nodes() int { return r.n }

// Next returns the ring successor of node i.
func (r *Ring) Next(i int) int { return (i + 1) % r.n }

// Distance returns the number of links from 'from' to 'to' travelling in
// ring direction.
func (r *Ring) Distance(from, to int) int {
	return ((to-from)%r.n + r.n) % r.n
}

// Arbitrate reserves the outgoing link of node 'from' for one message
// segment departing no earlier than 'depart', returning the granted start
// and arrival times. The link serializes back-to-back messages. It
// touches only this ring's state (links and counters) and never fires the
// OnSend probe, so arbitration for distinct rings may run concurrently;
// the caller fires OnSend afterwards, in a deterministic order.
func (r *Ring) Arbitrate(depart sim.Time, from int, m *Message) (start, arrive sim.Time) {
	start = r.links[from].Reserve(depart, r.occupancy)
	r.Transmitted++
	if m.Kind == ReadSnoop {
		r.ReadSegments++
	}
	return start, start + r.linkCycles
}

// Send transmits one message segment from node 'from' to its successor,
// returning the arrival time: Arbitrate plus the OnSend probe.
func (r *Ring) Send(now sim.Time, from int, m *Message) (arrive sim.Time) {
	start, arrive := r.Arbitrate(now, from, m)
	if r.OnSend != nil {
		r.OnSend(start, arrive, from, m)
	}
	return arrive
}

// BusyCycles returns total link-occupancy cycles reserved across all
// links — the numerator of the ring's occupancy fraction over a window.
func (r *Ring) BusyCycles() uint64 {
	var t uint64
	for i := range r.links {
		t += r.links[i].BusyCycles
	}
	return t
}

// LinkWaits returns total cycles messages spent waiting for busy links.
func (r *Ring) LinkWaits() uint64 {
	var t uint64
	for i := range r.links {
		t += r.links[i].WaitCycles
	}
	return t
}

// Select maps a line address to a ring index among nrings (Section 2.2:
// snoop requests are assigned to rings by address).
func Select(addr cache.LineAddr, nrings int) int {
	if nrings <= 1 {
		return 0
	}
	return int(addr % cache.LineAddr(nrings))
}

// Pool recycles Message records so the protocol engine's steady state
// allocates no messages. Ownership rule: exactly one party owns a message
// at any moment — whoever holds it last (the node that consumes, merges,
// or drops it) must Put it back; a message that has been forwarded or
// parked as protocol state belongs to its new holder and must not be
// recycled by the sender. Get zeroes the record, so stale handles can
// never leak reply state into a new transaction.
type Pool struct {
	free []*Message
}

// Get returns a zeroed message, reusing recycled storage when available.
func (p *Pool) Get() *Message {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		*m = Message{}
		return m
	}
	slab := make([]Message, 64)
	for i := 1; i < len(slab); i++ {
		p.free = append(p.free, &slab[i])
	}
	return &slab[0]
}

// Put returns a message to the pool. The caller must hold the only live
// reference; nil is ignored.
func (p *Pool) Put(m *Message) {
	if m == nil {
		return
	}
	p.free = append(p.free, m)
}

// CloneFrom returns a pooled copy of m (the allocation-free Clone).
func (p *Pool) CloneFrom(m *Message) *Message {
	c := p.Get()
	*c = *m
	return c
}

// Free reports the pool's free-list depth (observability for tests).
func (p *Pool) Free() int { return len(p.free) }
