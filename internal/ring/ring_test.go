package ring

import (
	"testing"
	"testing/quick"

	"flexsnoop/internal/cache"
)

func TestNextWrapsAround(t *testing.T) {
	r := NewRing(8, 39, 6)
	for i := 0; i < 7; i++ {
		if r.Next(i) != i+1 {
			t.Errorf("Next(%d) = %d", i, r.Next(i))
		}
	}
	if r.Next(7) != 0 {
		t.Errorf("Next(7) = %d, want 0", r.Next(7))
	}
}

func TestDistance(t *testing.T) {
	r := NewRing(8, 39, 6)
	cases := []struct{ from, to, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 7, 7}, {7, 0, 1}, {5, 3, 6}, {3, 5, 2},
	}
	for _, tc := range cases {
		if got := r.Distance(tc.from, tc.to); got != tc.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestDistanceProperty(t *testing.T) {
	r := NewRing(8, 39, 6)
	f := func(a, b uint8) bool {
		from, to := int(a%8), int(b%8)
		d := r.Distance(from, to)
		if d < 0 || d > 7 {
			return false
		}
		// Walking d links from 'from' lands on 'to'.
		n := from
		for i := 0; i < d; i++ {
			n = r.Next(n)
		}
		return n == to
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSendLatencyAndSerialization(t *testing.T) {
	r := NewRing(4, 39, 6)
	m := &Message{Kind: ReadSnoop}
	if got := r.Send(100, 0, m); got != 100+39 {
		t.Errorf("first send arrives at %d, want 139", got)
	}
	// Back-to-back on the same link serializes by the occupancy.
	if got := r.Send(100, 0, m); got != 106+39 {
		t.Errorf("second send arrives at %d, want 145", got)
	}
	// A different link is independent.
	if got := r.Send(100, 1, m); got != 139 {
		t.Errorf("other-link send arrives at %d, want 139", got)
	}
	if r.Transmitted != 3 || r.ReadSegments != 3 {
		t.Errorf("segments = %d/%d, want 3/3", r.Transmitted, r.ReadSegments)
	}
	w := &Message{Kind: WriteSnoop}
	r.Send(200, 2, w)
	if r.Transmitted != 4 || r.ReadSegments != 3 {
		t.Errorf("write segment miscounted: %d/%d", r.Transmitted, r.ReadSegments)
	}
}

func TestAllSnooped(t *testing.T) {
	m := &Message{Requester: 2}
	if m.AllSnooped(4) {
		t.Error("empty mask reported all-snooped")
	}
	m.SnoopedMask = 0b1011 // nodes 0,1,3 — all but requester 2
	if !m.AllSnooped(4) {
		t.Error("complete mask not reported all-snooped")
	}
	m.SnoopedMask = 0b1111 // requester bit set too: still fine
	if !m.AllSnooped(4) {
		t.Error("requester bit should not matter")
	}
	m.SnoopedMask = 0b0011
	if m.AllSnooped(4) {
		t.Error("missing node 3 reported all-snooped")
	}
}

func TestMergeReply(t *testing.T) {
	a := &Message{SnoopedMask: 0b0001, InvAcks: 1}
	b := &Message{Found: true, Supplier: 3, SharerSeen: true, SnoopedMask: 0b0100, InvAcks: 2}
	a.MergeReply(b)
	if !a.Found || a.Supplier != 3 {
		t.Error("found/supplier not merged")
	}
	if !a.SharerSeen {
		t.Error("sharer flag not merged")
	}
	if a.SnoopedMask != 0b0101 {
		t.Errorf("mask = %b, want 0b0101", a.SnoopedMask)
	}
	if a.InvAcks != 3 {
		t.Errorf("InvAcks = %d, want 3", a.InvAcks)
	}
	// Merging a non-found half must not clear Found.
	a.MergeReply(&Message{})
	if !a.Found {
		t.Error("merge cleared Found")
	}
	// Squash propagates.
	a.MergeReply(&Message{Squashed: true})
	if !a.Squashed {
		t.Error("merge lost squash flag")
	}
}

func TestClone(t *testing.T) {
	m := &Message{Txn: 7, Found: true, SnoopedMask: 5}
	c := m.Clone()
	c.SnoopedMask = 9
	c.Found = false
	if m.SnoopedMask != 5 || !m.Found {
		t.Error("clone aliases the original")
	}
}

func TestSelect(t *testing.T) {
	if Select(5, 1) != 0 {
		t.Error("single ring must map everything to 0")
	}
	// With two rings, consecutive lines alternate (load balancing).
	if Select(4, 2) != 0 || Select(5, 2) != 1 {
		t.Error("two-ring interleave wrong")
	}
	counts := [2]int{}
	for a := cache.LineAddr(0); a < 1000; a++ {
		counts[Select(a, 2)]++
	}
	if counts[0] != 500 || counts[1] != 500 {
		t.Errorf("ring balance = %v, want even", counts)
	}
}

func TestBadRingPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewRing(1, 39, 6) },
		func() { NewRing(8, 0, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
