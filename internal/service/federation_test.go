package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"flexsnoop"
)

// newWorker starts a worker server and returns it with its base URL.
func newWorker(t *testing.T, workers int) (*Server, string) {
	t.Helper()
	s := mustNew(t, Config{Workers: workers})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts.URL
}

// coordCfg is a coordinator config tuned for tests: no local execution,
// fast polls and probes.
func coordCfg(backends ...string) Config {
	return Config{
		Workers:        -1,
		Backends:       backends,
		RemotePoll:     2 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
	}
}

// TestFederationMatchesInProcess is the tentpole acceptance test: a
// 16-cell matrix dispatched by a coordinator across two worker backends
// is bit-identical to running every cell in-process. Determinism makes
// the federation an invisible implementation detail.
func TestFederationMatchesInProcess(t *testing.T) {
	configs := make([]JobSpec, 16)
	baseline := make([]flexsnoop.Result, 16)
	algs := []string{"Eager", "Lazy", "Subset", "SupersetCon", "SupersetAgg", "Exact"}
	for i := range configs {
		configs[i] = JobSpec{
			Algorithm: algs[i%len(algs)],
			Workload:  "fft",
			Options:   SpecOptions{OpsPerCore: 200, Seed: int64(2000 + i/len(algs))},
		}
		fj, err := configs[i].Job()
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		baseline[i], err = flexsnoop.RunJob(fj)
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
	}

	_, w1 := newWorker(t, 2)
	_, w2 := newWorker(t, 2)
	coord := mustNew(t, coordCfg(w1, w2))
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, PollInterval: 2 * time.Millisecond}

	results := make([]flexsnoop.Result, len(configs))
	errs := make([]error, len(configs))
	done := make(chan int)
	for i := range configs {
		go func(i int) {
			results[i], errs[i] = c.Run(context.Background(), configs[i])
			done <- i
		}(i)
	}
	for range configs {
		<-done
	}
	for i := range configs {
		if errs[i] != nil {
			t.Fatalf("cell %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], baseline[i]) {
			t.Errorf("cell %d: federated result differs from in-process baseline", i)
		}
	}

	stats := coord.Stats()
	if stats.BusyWorkers != 0 || stats.Workers != 0 {
		t.Errorf("coordinator reports local workers %d busy %d, want 0/0", stats.Workers, stats.BusyWorkers)
	}
	if len(stats.Backends) != 2 {
		t.Fatalf("coordinator reports %d backends, want 2", len(stats.Backends))
	}
	var dispatched uint64
	for _, b := range stats.Backends {
		if b.Local {
			t.Errorf("backend %s claims to be local", b.Name)
		}
		if b.Dispatched == 0 {
			t.Errorf("backend %s got no dispatches: the fan-out did not spread", b.Name)
		}
		dispatched += b.Dispatched
	}
	if dispatched != uint64(len(configs)) {
		t.Errorf("total dispatched = %d, want %d", dispatched, len(configs))
	}

	// The coordinator's cache fronts the fleet: resubmitting any cell is
	// answered locally, without another dispatch.
	st, err := coord.Submit(configs[0])
	if err != nil || !st.Cached {
		t.Fatalf("resubmission not served from coordinator cache: %+v, %v", st, err)
	}
	if got := coord.Stats().Backends[0].Dispatched + coord.Stats().Backends[1].Dispatched; got != dispatched {
		t.Errorf("cache hit still dispatched: %d -> %d", dispatched, got)
	}
}

// TestFederationFailover: a job dispatched to a dead backend is not
// failed — it is re-queued and retried on a healthy one, the dead
// backend is marked unhealthy, and /statsz counts the failover.
func TestFederationFailover(t *testing.T) {
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	_, live := newWorker(t, 2)
	// The dead backend is listed first: the first dispatch deterministically
	// picks it (least-loaded ties go to the earlier backend) and fails over.
	coord := mustNew(t, coordCfg(deadURL, live))
	defer coord.Close()

	st, err := coord.Submit(smallSpec(500))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitTerminal(t, coord, st.ID)
	if got.State != StateDone {
		t.Fatalf("job after failover = %q (error %q), want done", got.State, got.Error)
	}

	want, err := flexsnoop.RunJob(mustJob(t, smallSpec(500)))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if !reflect.DeepEqual(*got.Result, want) {
		t.Error("failed-over result differs from in-process baseline")
	}

	stats := coord.Stats()
	if stats.Failovers == 0 {
		t.Error("Failovers = 0 after a dispatch to a dead backend")
	}
	for _, b := range stats.Backends {
		switch b.Name {
		case strings.TrimRight(deadURL, "/"):
			if b.Healthy {
				t.Error("dead backend still marked healthy")
			}
			if b.Failovers == 0 {
				t.Error("dead backend counts no failovers")
			}
			if b.LastError == "" {
				t.Error("dead backend has no last error")
			}
		default:
			if b.Completed == 0 {
				t.Errorf("live backend %s completed nothing", b.Name)
			}
		}
	}
}

// TestFederationAllBackendsDead: with every backend down, a job fails
// fast with the last backend error instead of parking forever.
func TestFederationAllBackendsDead(t *testing.T) {
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	coord := mustNew(t, coordCfg(deadURL))
	defer coord.Close()

	st, err := coord.Submit(smallSpec(600))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	got := waitTerminal(t, coord, st.ID)
	if got.State != StateFailed {
		t.Fatalf("job with all backends dead = %q, want failed", got.State)
	}
	if !strings.Contains(got.Error, "gave up") {
		t.Errorf("error %q does not report giving up on backends", got.Error)
	}
	if coord.Stats().RunsFailed != 1 {
		t.Errorf("RunsFailed = %d, want 1", coord.Stats().RunsFailed)
	}
}

// TestFederationRegistration: a coordinator with no static backends
// accepts a worker registration over HTTP and dispatches to it; plain
// servers refuse registrations (403); bad URLs are 400s.
func TestFederationRegistration(t *testing.T) {
	worker, workerURL := newWorker(t, 2)

	coord := mustNew(t, Config{Workers: -1, Coordinator: true, RemotePoll: 2 * time.Millisecond})
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, PollInterval: 2 * time.Millisecond}

	if err := c.Register(context.Background(), BackendRegistration{URL: workerURL, Workers: 2}); err != nil {
		t.Fatalf("register: %v", err)
	}
	// Re-registration is a heartbeat, not a duplicate backend.
	if err := c.Register(context.Background(), BackendRegistration{URL: workerURL + "/", Workers: 2}); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if n := len(coord.Stats().Backends); n != 1 {
		t.Fatalf("backends after re-registration = %d, want 1", n)
	}
	if !coord.Stats().Backends[0].Registered {
		t.Error("registered backend not flagged Registered")
	}

	res, err := c.Run(context.Background(), smallSpec(700))
	if err != nil {
		t.Fatalf("run via registered worker: %v", err)
	}
	want, err := flexsnoop.RunJob(mustJob(t, smallSpec(700)))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("result via registered worker differs from in-process baseline")
	}
	if worker.Stats().RunsCompleted != 1 {
		t.Errorf("worker RunsCompleted = %d, want 1", worker.Stats().RunsCompleted)
	}

	if err := c.Register(context.Background(), BackendRegistration{URL: "not a url"}); err == nil {
		t.Error("bad registration URL accepted")
	}

	// A plain (non-coordinator) server refuses registrations.
	if err := worker.RegisterBackend(BackendRegistration{URL: ts.URL}); !errors.Is(err, ErrNotCoordinator) {
		t.Errorf("RegisterBackend on plain server = %v, want ErrNotCoordinator", err)
	}
	wc := &Client{BaseURL: workerURL}
	err = wc.Register(context.Background(), BackendRegistration{URL: ts.URL})
	var re *remoteError
	if !errors.As(err, &re) || re.StatusCode != 403 {
		t.Errorf("HTTP register on plain server = %v, want 403", err)
	}
}

// TestFederationProbeRecovery: a backend that comes back up is
// re-admitted by the health prober and jobs flow to it again.
func TestFederationProbeRecovery(t *testing.T) {
	worker, workerURL := newWorker(t, 2)

	coord := mustNew(t, coordCfg(workerURL))
	defer coord.Close()

	// Knock the backend unhealthy by hand (as a failed dispatch would).
	coord.mu.Lock()
	coord.backends[0].healthy = false
	coord.backends[0].lastErr = "induced for test"
	coord.mu.Unlock()

	// The prober (50ms interval) must mark it healthy again and pick up
	// its real pool size from /statsz.
	deadline := time.Now().Add(30 * time.Second)
	for {
		b := coord.Stats().Backends[0]
		if b.Healthy && b.Slots == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend never recovered: %+v", b)
		}
		time.Sleep(5 * time.Millisecond)
	}

	st, err := coord.Submit(smallSpec(800))
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	if got := waitTerminal(t, coord, st.ID); got.State != StateDone {
		t.Fatalf("job after recovery = %q, want done", got.State)
	}
	if worker.Stats().RunsCompleted != 1 {
		t.Errorf("worker RunsCompleted = %d, want 1", worker.Stats().RunsCompleted)
	}
}

// TestSpecVersionRejected: a spec from a future protocol version is
// refused with ErrSpecVersion (HTTP 400), never silently misread;
// version 0 (field absent on the wire) means version 1 and is accepted.
func TestSpecVersionRejected(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Close()

	bad := smallSpec(900)
	bad.Version = SpecVersion + 1
	if _, err := s.Submit(bad); !errors.Is(err, ErrSpecVersion) {
		t.Errorf("Submit version %d = %v, want ErrSpecVersion", bad.Version, err)
	}
	bad.Version = -1
	if _, err := s.Submit(bad); !errors.Is(err, ErrSpecVersion) {
		t.Errorf("Submit version -1 = %v, want ErrSpecVersion", err)
	}

	ok := smallSpec(900)
	ok.Version = SpecVersion
	if _, err := s.Submit(ok); err != nil {
		t.Errorf("Submit version %d = %v, want accepted", SpecVersion, err)
	}
	ok.Version = 0
	if _, err := s.Submit(ok); err != nil {
		t.Errorf("Submit version 0 = %v, want accepted (0 means 1)", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	future := smallSpec(901)
	future.Version = 99
	_, err := c.Submit(context.Background(), future)
	var re *remoteError
	if !errors.As(err, &re) || re.StatusCode != 400 {
		t.Errorf("HTTP submit of version 99 = %v, want 400", err)
	}
}

func mustJob(t *testing.T, spec JobSpec) flexsnoop.Job {
	t.Helper()
	fj, err := spec.Job()
	if err != nil {
		t.Fatalf("spec.Job: %v", err)
	}
	return fj
}
