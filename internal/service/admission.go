package service

import (
	"errors"
	"fmt"
	"math"
	"time"

	"flexsnoop"
)

// This file is the overload-resilience layer (DESIGN.md §12): end-to-end
// deadlines, CoDel-style queue aging, per-client token-bucket rate
// limiting, honest Retry-After hints, and brownout mode. Everything here
// is opt-in — a Config with the zero values behaves exactly like the
// pre-overload server — and none of it touches what an admitted job
// computes: shedding changes *which* jobs run, never their results.

// Overload sentinels the HTTP layer maps onto 429 + Retry-After.
var (
	// ErrRateLimited: the per-client token bucket refused the submission
	// (HTTP 429). The Retry-After hint is the time until the next token.
	ErrRateLimited = errors.New("service: client rate limit exceeded")
	// ErrExpired: the job's end-to-end deadline passed before it
	// completed — shed from the queue before dispatch, or interrupted
	// while running. The job reports state "failed" with this error.
	ErrExpired = errors.New("service: job deadline expired")
	// errShed: the admission controller dropped the job to keep queue
	// sojourn bounded (CoDel aging or brownout). Not exported: callers
	// observe it as a failed state with a descriptive message and should
	// treat it like backpressure, not like a spec error.
	errShed = errors.New("service: job shed under overload")
)

// overloadError wraps a 429-class sentinel with the server's honest
// retry hint, computed from the measured drain rate. The HTTP layer
// surfaces it as the Retry-After header.
type overloadError struct {
	err        error
	retryAfter time.Duration
}

func (e *overloadError) Error() string { return e.err.Error() }
func (e *overloadError) Unwrap() error { return e.err }

// retryAfterSeconds is the honest Retry-After for a queue of the given
// depth draining at perSec executions per second: the time until the
// submitter's job would plausibly find a slot, at least 1 (the header's
// resolution), at most 60 (beyond that the estimate is noise). With no
// drain observed yet the depth alone scales the hint. Monotone
// non-decreasing in depth for a fixed rate — a deeper queue never
// promises an earlier retry.
func retryAfterSeconds(depth int, perSec float64) int {
	if depth < 0 {
		depth = 0
	}
	var secs int
	if perSec > 0 {
		secs = int(math.Ceil(float64(depth+1) / perSec))
	} else {
		secs = 1 + depth/8
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// retryAfterLocked is the server's current Retry-After hint.
func (s *Server) retryAfterLocked() time.Duration {
	return time.Duration(retryAfterSeconds(s.queue.Len(), s.drainPerSec)) * time.Second
}

// observeDrainLocked updates the EWMA drain rate on every execution
// leaving the system (completed, failed, cancelled or shed) — the rate
// Retry-After promises are computed from.
func (s *Server) observeDrainLocked(now time.Time) {
	if !s.lastDrain.IsZero() {
		dt := now.Sub(s.lastDrain).Seconds()
		if dt < 1e-4 {
			dt = 1e-4
		}
		inst := 1 / dt
		if inst > 1e4 {
			inst = 1e4
		}
		if s.drainPerSec == 0 {
			s.drainPerSec = inst
		} else {
			s.drainPerSec = 0.7*s.drainPerSec + 0.3*inst
		}
	}
	s.lastDrain = now
}

// tokenBucket is one client's admission budget: RateLimit tokens per
// second with RateBurst capacity.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxRateClients bounds the limiter map; beyond it, buckets that have
// refilled to capacity (i.e. carry no throttling state) are pruned.
const maxRateClients = 4096

// takeTokenLocked charges one admission to the client's bucket. It
// returns zero when admitted, otherwise the wait until the next token —
// the honest Retry-After for this client.
func (s *Server) takeTokenLocked(clientID string, now time.Time) time.Duration {
	rate, burst := s.cfg.RateLimit, float64(s.cfg.RateBurst)
	if s.limiter == nil {
		s.limiter = make(map[string]*tokenBucket)
	}
	b := s.limiter[clientID]
	if b == nil {
		if len(s.limiter) >= maxRateClients {
			s.pruneLimiterLocked(now)
		}
		b = &tokenBucket{tokens: burst, last: now}
		s.limiter[clientID] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rate
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// pruneLimiterLocked drops buckets that have refilled to capacity (their
// state is indistinguishable from a fresh bucket), then — if every
// client is mid-refill — an arbitrary one, keeping the map bounded even
// against adversarial client_id churn.
func (s *Server) pruneLimiterLocked(now time.Time) {
	rate, burst := s.cfg.RateLimit, float64(s.cfg.RateBurst)
	for id, b := range s.limiter {
		if b.tokens+now.Sub(b.last).Seconds()*rate >= burst {
			delete(s.limiter, id)
		}
	}
	for id := range s.limiter {
		if len(s.limiter) < maxRateClients {
			break
		}
		delete(s.limiter, id)
	}
}

// ensureMaintLocked starts the maintenance goroutine that ages the
// queue, sheds expired work, drives brownout transitions and wakes the
// dispatcher when a circuit breaker's cooldown elapses. Started lazily —
// when the Config enables an overload feature, or on the first admitted
// job with a deadline — so a default-configured server runs exactly the
// goroutines it always did.
func (s *Server) ensureMaintLocked() {
	if s.maintOn || s.draining {
		return
	}
	s.maintOn = true
	s.wg.Add(1)
	go s.maintLoop()
}

// maintTick paces the maintenance scan. 20ms bounds how stale an expiry
// or brownout decision can be; the scan itself is O(queue) over a
// bounded queue.
const maintTick = 20 * time.Millisecond

func (s *Server) maintLoop() {
	defer s.wg.Done()
	t := time.NewTicker(maintTick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		if !s.draining {
			s.overloadScanLocked(time.Now())
		}
		s.mu.Unlock()
	}
}

// overloadScanLocked is one admission-control pass: shed queued work
// whose deadline has passed, apply the CoDel-style sojourn control law,
// update brownout state, and wake the dispatcher if a breaker cooldown
// has elapsed. Called from the maintenance loop; harmless to call more
// often.
func (s *Server) overloadScanLocked(now time.Time) {
	// Expired-in-queue work is shed before it can ever reach a worker.
	for _, ex := range s.queue.TakeExpired(now) {
		s.finalizeLocked(ex, flexsnoop.Result{}, fmt.Errorf(
			"%w: spent %s queued, past its %s budget", ErrExpired,
			now.Sub(ex.enqueuedAt).Round(time.Millisecond),
			time.Duration(ex.spec.DeadlineMS)*time.Millisecond))
	}

	oldest := s.queue.OldestEnqueue()
	var sojourn time.Duration
	if !oldest.IsZero() {
		sojourn = now.Sub(oldest)
	}

	// CoDel-style aging: sustained head-of-line sojourn above the target
	// sheds one low-priority execution per target interval — small,
	// steady corrections instead of a cliff. Positive-priority work is
	// never aged out (ShedLowest skips it): a standing all-high-priority
	// queue stays standing rather than losing the work the queue exists
	// for.
	if target := s.cfg.SojournTarget; target > 0 {
		switch {
		case sojourn <= target:
			s.aboveSince = time.Time{}
		case s.aboveSince.IsZero():
			s.aboveSince = now
		case now.Sub(s.aboveSince) >= target:
			if ex := s.queue.ShedLowest(); ex != nil {
				s.finalizeLocked(ex, flexsnoop.Result{}, fmt.Errorf(
					"%w: queue sojourn %s over the %s target", errShed,
					sojourn.Round(time.Millisecond), target))
			}
			s.aboveSince = now
		}
	}

	// Brownout: sojourn beyond the threshold means the queue is past
	// what shedding alone corrects — stop spending capacity on optional
	// work (negative priority) and on hedged re-execution. Hysteresis at
	// half the threshold avoids flapping.
	if threshold := s.cfg.BrownoutSojourn; threshold > 0 {
		switch {
		case !s.brownout && sojourn > threshold:
			s.brownout = true
			s.brownouts++
			s.logf("brownout: queue sojourn %s exceeds %s (hedging off, optional work shed)",
				sojourn.Round(time.Millisecond), threshold)
		case s.brownout && sojourn < threshold/2:
			s.brownout = false
			s.logf("brownout over (queue sojourn %s)", sojourn.Round(time.Millisecond))
		}
	}

	// A breaker whose cooldown elapsed makes its backend dispatchable
	// again (half-open probe), but nothing else signals the dispatcher.
	if s.cfg.BreakerFailures > 0 {
		for _, b := range s.backends {
			if b.client != nil && b.breaker == breakerOpen && !now.Before(b.openUntil) {
				s.cond.Broadcast()
				break
			}
		}
	}
}
