package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs              submit a JobSpec; 202 (queued/deduped) or
//	                             200 (cache hit), 400 on a bad spec, 429 +
//	                             Retry-After when the queue is full, 503
//	                             while draining
//	GET    /v1/jobs/{id}         job status; Result inline once done
//	DELETE /v1/jobs/{id}         cancel; idempotent on finished jobs
//	GET    /v1/jobs/{id}/metrics NDJSON interval-telemetry stream: full
//	                             replay, then live rows until the run ends
//	GET    /healthz              liveness (always 200 while serving)
//	GET    /readyz               readiness (503 once draining)
//	GET    /statsz               Stats snapshot as JSON
//
// Coordinators additionally serve the backend registry:
//
//	POST   /v1/backends          register (or heartbeat) a worker; 400 on
//	                             a bad URL, 403 on a non-coordinator
//	GET    /v1/backends          the per-backend stats slice as JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/backends", s.handleRegister)
	mux.HandleFunc("GET /v1/backends", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats().Backends)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		if !s.Ready() {
			// Journal replay still reconstructing the queue: don't route
			// jobs here yet (the server would accept them, but recovery
			// ordering guarantees are only meaningful once replay is done).
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// retryAfterHeader renders a 429's Retry-After: the server's honest
// estimate when the error carries one (overloadError), in whole seconds
// rounded up (the header's resolution), with "1" as the floor and the
// pre-overload fallback.
func retryAfterHeader(err error) string {
	var oe *overloadError
	if errors.As(err, &oe) && oe.retryAfter > 0 {
		secs := int(math.Ceil(oe.retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		return strconv.Itoa(secs)
	}
	return "1"
}

// decodeBody decodes a JSON request body into v with the request-size
// cap applied and unknown fields rejected. The status code distinguishes
// an oversized body (413) from a malformed one (400).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxRequestBytes)
		}
		return http.StatusBadRequest, err
	}
	return 0, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if code, err := s.decodeBody(w, r, &spec); err != nil {
		writeError(w, code, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	st, err := s.Submit(spec)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
		w.Header().Set("Retry-After", retryAfterHeader(err))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrDurability):
		writeError(w, http.StatusInternalServerError, err)
		return
	default:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if st.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var reg BackendRegistration
	if code, err := s.decodeBody(w, r, &reg); err != nil {
		writeError(w, code, fmt.Errorf("decoding registration: %w", err))
		return
	}
	switch err := s.RegisterBackend(reg); {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"status": "registered"})
	case errors.Is(err, ErrNotCoordinator):
		writeError(w, http.StatusForbidden, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, st)
	case errors.Is(err, ErrDurability):
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusNotFound, err)
	}
}

// handleMetrics streams a job's interval telemetry as NDJSON: one
// telemetry.Row object per line, flushed as produced. Subscribers that
// attach mid-run (or after completion) first replay the retained series,
// then tail live rows until the execution finishes or the client goes
// away. A cache-hit job has no execution and yields an empty stream.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hub, err := s.Stream(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if hub == nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for from := 0; ; {
		rows, done := hub.next(r.Context(), from)
		for _, row := range rows {
			if err := enc.Encode(row); err != nil {
				return // client went away
			}
		}
		from += len(rows)
		if flusher != nil && len(rows) > 0 {
			flusher.Flush()
		}
		if done && len(rows) == 0 {
			return
		}
		if done {
			// Drain any rows published between next and here, then stop.
			continue
		}
	}
}
