package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"flexsnoop"
)

// Client is a minimal stdlib client for a ringsimd server, used by
// `sweep -remote` and the smoke tests. The zero HTTPClient and poll
// interval get sensible defaults.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces Wait's status polls (default 50ms).
	PollInterval time.Duration
	// MaxTransportRetries bounds per-call retries of transient transport
	// errors — connection refused or reset, an unexpected EOF, a dropped
	// proxy — on a capped exponential schedule (see retrySchedule).
	// Zero means the default (10); -1 disables transport retries. HTTP
	// responses are never retried here: a 4xx or a reported simulation
	// failure is permanent, and 429 backpressure has its own loop in
	// submitBackoff. The coordinator's per-backend clients run with -1 so
	// a dead worker surfaces immediately and failover — the coordinator's
	// own retry mechanism — takes over.
	MaxTransportRetries int
}

const defaultTransportRetries = 10

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 50 * time.Millisecond
}

// remoteError is a non-2xx API response surfaced as a Go error.
type remoteError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Message)
}

// do issues one request and decodes a JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var ae apiError
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		re := &remoteError{StatusCode: resp.StatusCode, Message: msg}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				re.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return re
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// transportRetries resolves the MaxTransportRetries knob.
func (c *Client) transportRetries() int {
	switch {
	case c.MaxTransportRetries < 0:
		return 0
	case c.MaxTransportRetries == 0:
		return defaultTransportRetries
	default:
		return c.MaxTransportRetries
	}
}

// transientTransport reports whether an error is a transport-level
// failure worth retrying against the same server: the request may never
// have arrived (refused, reset) or the response was cut off (EOF). Any
// HTTP response the server actually produced — including 5xx — is a
// *remoteError and is not retried here, and a cancelled or expired
// context is the caller's decision, not a network fault.
func transientTransport(err error) bool {
	if err == nil {
		return false
	}
	var re *remoteError
	if errors.As(err, &re) {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// retrySchedule is the wait before transport-retry attempt n (1-based):
// base, doubling per attempt, capped. Pure, so the schedule itself is
// unit-testable.
func retrySchedule(attempt int, base, limit time.Duration) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if limit <= 0 {
		limit = time.Second
	}
	wait := base
	for i := 1; i < attempt; i++ {
		wait *= 2
		if wait >= limit {
			return limit
		}
	}
	if wait > limit {
		return limit
	}
	return wait
}

// doRetry is do with transport-error retries. Retrying a submit is safe
// even if the lost response had actually been processed: submissions are
// deduplicated by fingerprint server-side, so the retry lands on the
// same execution.
func (c *Client) doRetry(ctx context.Context, method, path string, body, out any) error {
	budget := c.transportRetries()
	for attempt := 0; ; attempt++ {
		err := c.do(ctx, method, path, body, out)
		if !transientTransport(err) || attempt >= budget {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(retrySchedule(attempt+1, c.poll(), time.Second)):
		}
	}
}

// Submit submits a job once (modulo transport retries). A full queue
// comes back as a *remoteError with StatusCode 429; SubmitWait retries
// that case.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.doRetry(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// SubmitWait submits with bounded-backoff retries on queue-full
// backpressure (429 + Retry-After), then polls until the job reaches a
// terminal state.
func (c *Client) SubmitWait(ctx context.Context, spec JobSpec) (JobStatus, error) {
	st, err := c.submitBackoff(ctx, spec)
	if err != nil {
		return JobStatus{}, err
	}
	switch st.State {
	case StateDone, StateFailed, StateCanceled:
		return st, nil // cache hit (or instant terminal): nothing to poll
	}
	return c.Wait(ctx, st.ID)
}

// maxRetryAfter caps how long a server-sent Retry-After is honored — a
// confused (or hostile) server must not park the client for minutes.
const maxRetryAfter = 30 * time.Second

// submitBackoff submits until the job is admitted, retrying 429
// backpressure. When the server sends Retry-After, that is the wait: the
// server computes it from its measured drain rate, so it beats any
// client-side guess in both directions — no hammering a deeply backed-up
// queue, no idling in front of one about to clear (capped at
// maxRetryAfter in case the server's estimate is wild). Without the
// header the client falls back to exponential backoff from the poll
// interval up to one second. Every other error — including ctx expiring
// mid-backoff — returns immediately.
func (c *Client) submitBackoff(ctx context.Context, spec JobSpec) (JobStatus, error) {
	backoff := c.poll()
	for {
		st, err := c.Submit(ctx, spec)
		if err == nil {
			return st, nil
		}
		re, ok := err.(*remoteError)
		if !ok || re.StatusCode != http.StatusTooManyRequests {
			return JobStatus{}, err
		}
		wait := backoff
		if backoff < time.Second {
			backoff *= 2
		}
		if re.RetryAfter > 0 {
			wait = re.RetryAfter
			if wait > maxRetryAfter {
				wait = maxRetryAfter
			}
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// Status fetches one job's status (with transport retries: a status
// poll is idempotent).
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel cancels one job (with transport retries: cancellation is
// idempotent).
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.doRetry(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it is done, failed, or canceled.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-time.After(c.poll()):
		}
	}
}

// Run submits (with backpressure retry), waits, and returns the Result —
// the remote analogue of flexsnoop.RunContext. The Result is
// bit-identical to an in-process run of the same configuration.
func (c *Client) Run(ctx context.Context, spec JobSpec) (flexsnoop.Result, error) {
	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		return flexsnoop.Result{}, err
	}
	switch st.State {
	case StateDone:
		return *st.Result, nil
	case StateCanceled:
		return flexsnoop.Result{}, context.Canceled
	default:
		return flexsnoop.Result{}, fmt.Errorf("service: job %s failed: %s", st.ID, st.Error)
	}
}

// Stats fetches the server's /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/statsz", nil, &st)
	return st, err
}

// Ready probes the server's /readyz endpoint: nil means the server is
// accepting jobs; a draining or unreachable server errors. The
// coordinator's health checker calls this against every remote backend.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Register announces a worker to a coordinator (POST /v1/backends): the
// coordinator adds (or refreshes) the worker in its backend registry and
// starts dispatching jobs to it. Registration doubles as a heartbeat —
// re-registering an already-known URL just updates its capacity and marks
// it healthy.
func (c *Client) Register(ctx context.Context, reg BackendRegistration) error {
	return c.do(ctx, http.MethodPost, "/v1/backends", reg, nil)
}

// RegisterLoop keeps a worker registered with a coordinator until ctx is
// done: it registers immediately, then re-registers every interval as a
// heartbeat. While the coordinator is unreachable it retries with
// exponential backoff (starting at interval/4, doubling up to 8×interval),
// so a coordinator restart picks the worker back up without operator
// action. Interval defaults to 5s when zero; logf may be nil.
func RegisterLoop(ctx context.Context, coordinatorURL string, reg BackendRegistration, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Client{BaseURL: coordinatorURL}
	backoff := interval / 4
	registered := false
	for {
		err := c.Register(ctx, reg)
		var wait time.Duration
		switch {
		case err == nil:
			if !registered {
				logf("registered with coordinator %s as %s", coordinatorURL, reg.URL)
			}
			registered = true
			backoff = interval / 4
			wait = interval
		case ctx.Err() != nil:
			return
		default:
			logf("registration with %s failed (retry in %s): %v", coordinatorURL, backoff, err)
			registered = false
			wait = backoff
			if backoff < 8*interval {
				backoff *= 2
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}
