package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"flexsnoop"
	"flexsnoop/internal/telemetry"
)

// mustNew builds a started Server or fails the test.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// smallSpec is a fast-to-simulate job; vary seed to make distinct jobs.
func smallSpec(seed int64) JobSpec {
	return JobSpec{
		Algorithm: "Subset",
		Workload:  "fft",
		Options:   SpecOptions{OpsPerCore: 200, Seed: seed, Predictor: "Sub2k"},
	}
}

func waitState(t *testing.T, s *Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State == StateFailed || st.State == StateDone || st.State == StateCanceled {
			t.Fatalf("job %s reached terminal state %q (error %q), want %q", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitMatchesInProcess: a job run through the full HTTP round trip
// (JSON spec in, JSON Result out) is bit-identical to calling the
// simulator in-process with the same configuration.
func TestSubmitMatchesInProcess(t *testing.T) {
	spec := smallSpec(7)
	fj, err := spec.Job()
	if err != nil {
		t.Fatalf("spec.Job: %v", err)
	}
	want, err := flexsnoop.RunJob(fj)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	s := mustNew(t, Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, PollInterval: 2 * time.Millisecond}

	got, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote result differs from in-process run:\nremote: %+v\nlocal:  %+v", got, want)
	}
}

// TestCacheHit: the second identical submission is answered from the
// content-addressed cache without a second simulation.
func TestCacheHit(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Close()

	st1, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if st1.Cached {
		t.Fatal("first submission reported cached")
	}
	done1 := waitState(t, s, st1.ID, StateDone)

	st2, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if !st2.Cached || st2.State != StateDone || st2.Result == nil {
		t.Fatalf("second submission not served from cache: %+v", st2)
	}
	if !reflect.DeepEqual(*st2.Result, *done1.Result) {
		t.Error("cached result differs from computed result")
	}
	if st2.Fingerprint != st1.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", st1.Fingerprint, st2.Fingerprint)
	}

	stats := s.Stats()
	if stats.RunsCompleted != 1 {
		t.Errorf("RunsCompleted = %d, want 1 (cache must prevent the rerun)", stats.RunsCompleted)
	}
	if stats.CacheHits != 1 || stats.CacheEntries != 1 {
		t.Errorf("cache hits=%d entries=%d, want 1/1", stats.CacheHits, stats.CacheEntries)
	}
}

// TestInFlightDedup: identical submissions that arrive while the first is
// still pending share one execution (singleflight), and both observe the
// same result.
func TestInFlightDedup(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueCapacity: 8})
	defer s.Close()

	// Occupy the single worker so the deduped pair stays queued.
	blocker, err := s.Submit(smallSpec(100))
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	a, err := s.Submit(smallSpec(2))
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	b, err := s.Submit(smallSpec(2))
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if a.ID == b.ID {
		t.Fatal("dedup must still mint distinct job IDs")
	}
	if got := s.Stats().JobsDeduped; got != 1 {
		t.Errorf("JobsDeduped = %d, want 1", got)
	}

	ra := waitState(t, s, a.ID, StateDone)
	rb := waitState(t, s, b.ID, StateDone)
	if !reflect.DeepEqual(*ra.Result, *rb.Result) {
		t.Error("deduped jobs observed different results")
	}
	waitState(t, s, blocker.ID, StateDone)
	if got := s.Stats().RunsCompleted; got != 2 {
		t.Errorf("RunsCompleted = %d, want 2 (blocker + one shared run)", got)
	}
}

// TestQueueFullBackpressure: beyond the queue capacity, submissions fail
// with ErrQueueFull, and the HTTP layer turns that into 429 + Retry-After.
func TestQueueFullBackpressure(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueCapacity: 1})
	defer s.Close()

	// Long jobs with distinct seeds: no dedup, and neither the running nor
	// the queued one finishes during the test, so the queue stays full.
	long := func(seed int64) JobSpec {
		sp := smallSpec(seed)
		sp.Options.OpsPerCore = 500000
		return sp
	}
	// Fill until the worker is busy and the queue is at capacity; only then
	// is rejection guaranteed rather than racing the worker's pop.
	seed := int64(10)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.BusyWorkers == 1 && st.QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never filled: busy=%d depth=%d", st.BusyWorkers, st.QueueDepth)
		}
		_, err := s.Submit(long(seed))
		if err != nil && !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		seed++
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(long(seed)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit with full queue = %v, want ErrQueueFull", err)
	}
	if got := s.Stats().JobsRejected; got == 0 {
		t.Error("JobsRejected = 0 after a rejection")
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(long(99))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
}

// TestCancelQueuedAndRunning covers both cancellation paths: a queued job
// is dequeued without ever running; a running job's context interrupts
// the simulation.
func TestCancelQueuedAndRunning(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueCapacity: 8})
	defer s.Close()

	running, err := s.Submit(JobSpec{
		Algorithm: "SupersetCon",
		Workload:  "lu",
		Options:   SpecOptions{OpsPerCore: 200000, Seed: 5},
	})
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	queued, err := s.Submit(smallSpec(6))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued job state after cancel = %q, want canceled", st.State)
	}

	waitState(t, s, running.ID, StateRunning)
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	got := waitTerminal(t, s, running.ID)
	if got.State != StateCanceled {
		t.Fatalf("running job state after cancel = %q, want canceled", got.State)
	}

	// Cancel is idempotent on finished jobs.
	again, err := s.Cancel(running.ID)
	if err != nil || again.State != StateCanceled {
		t.Fatalf("re-cancel: %+v, %v", again, err)
	}

	// The job reports canceled as soon as Cancel returns; the execution
	// finalises (and counts) when the worker observes the context. Poll.
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().RunsCanceled != 2 {
		if time.Now().After(deadline) {
			st := s.Stats()
			t.Fatalf("RunsCanceled = %d (completed %d), want 2", st.RunsCanceled, st.RunsCompleted)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Stats().RunsCompleted; got != 0 {
		t.Errorf("RunsCompleted = %d, want 0", got)
	}
}

func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatalf("Status(%s): %v", id, err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached a terminal state (last %q)", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMetricsStream: the NDJSON endpoint replays the full interval series
// for a completed run, rows parse as telemetry.Row, and cycles ascend.
// A live subscriber that attached before completion sees the same series.
func TestMetricsStream(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := smallSpec(3)
	spec.Options.OpsPerCore = 2000
	spec.Options.IntervalCycles = 500
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Live subscriber: attach immediately, read to EOF.
	liveRows := make(chan int, 1)
	go func() {
		n, _ := readMetrics(ts.URL, st.ID)
		liveRows <- n
	}()

	waitState(t, s, st.ID, StateDone)

	// Replay subscriber: attach after completion.
	n, rows := readMetrics(ts.URL, st.ID)
	if n == 0 {
		t.Fatal("no metrics rows streamed")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Cycle <= rows[i-1].Cycle {
			t.Fatalf("row %d cycle %d not after row %d cycle %d", i, rows[i].Cycle, i-1, rows[i-1].Cycle)
		}
	}
	select {
	case live := <-liveRows:
		if live != n {
			t.Errorf("live subscriber saw %d rows, replay saw %d", live, n)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("live subscriber never finished")
	}

	// A cache-hit job has no execution: its stream is empty, not a 404.
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !st2.Cached {
		t.Fatal("resubmission not cached")
	}
	if n2, _ := readMetrics(ts.URL, st2.ID); n2 != 0 {
		t.Errorf("cache-hit job streamed %d rows, want 0", n2)
	}
}

func readMetrics(base, id string) (int, []telemetry.Row) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/metrics")
	if err != nil {
		return -1, nil
	}
	defer resp.Body.Close()
	var rows []telemetry.Row
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r telemetry.Row
		if json.Unmarshal(sc.Bytes(), &r) != nil {
			return -1, nil
		}
		rows = append(rows, r)
	}
	return len(rows), rows
}

// TestDrain: draining cancels queued jobs, lets the running one finish,
// flips /readyz to 503, and refuses new submissions.
func TestDrain(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueCapacity: 8})
	spec := smallSpec(20)
	spec.Options.OpsPerCore = 20000
	running, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	// Make sure the worker picked it up before queueing the second job:
	// drain must distinguish running (finish) from queued (cancel).
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().BusyWorkers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	queued, err := s.Submit(smallSpec(21))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	s.Drain(30 * time.Second)

	if st, _ := s.Status(running.ID); st.State != StateDone {
		t.Errorf("running job after drain = %q, want done (graceful finish)", st.State)
	}
	if st, _ := s.Status(queued.ID); st.State != StateCanceled {
		t.Errorf("queued job after drain = %q, want canceled", st.State)
	}
	if _, err := s.Submit(smallSpec(22)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining = %v, want ErrDraining", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestBadSpecsRejected: malformed specs come back as 400s with the
// sentinel-typed errors, not as queued jobs.
func TestBadSpecsRejected(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Close()

	cases := []struct {
		name string
		spec JobSpec
		want error
	}{
		{"bad algorithm", JobSpec{Algorithm: "nope", Workload: "fft"}, flexsnoop.ErrUnknownAlgorithm},
		{"bad workload", JobSpec{Algorithm: "Subset", Workload: "nope"}, flexsnoop.ErrUnknownWorkload},
		{"bad predictor", JobSpec{Algorithm: "Subset", Workload: "fft",
			Options: SpecOptions{Predictor: "nope"}}, flexsnoop.ErrBadConfig},
		{"bad faults", JobSpec{Algorithm: "Subset", Workload: "fft",
			Options: SpecOptions{Faults: "kind=banana"}}, flexsnoop.ErrFaultPlan},
		{"retries without plan", JobSpec{Algorithm: "Subset", Workload: "fft",
			Options: SpecOptions{FaultMaxRetries: 5}}, flexsnoop.ErrBadConfig},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.spec); !errors.Is(err, tc.want) {
			t.Errorf("%s: Submit err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if got := s.Stats().JobsSubmitted; got != 0 {
		t.Errorf("rejected specs counted as submitted: %d", got)
	}
}

// TestConcurrentMatrix is the acceptance scenario: 64 concurrent clients
// submit a 16-config matrix against a small queue. Every submission
// completes (backpressure is retried, duplicates dedup or hit cache),
// results are bit-identical to in-process runs, and the server's worker
// pool and hubs leak no goroutines.
func TestConcurrentMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent matrix is not short")
	}

	configs := make([]JobSpec, 16)
	baseline := make([]flexsnoop.Result, 16)
	algs := []string{"Eager", "Lazy", "Subset", "SupersetCon", "SupersetAgg", "Exact"}
	for i := range configs {
		configs[i] = JobSpec{
			Algorithm: algs[i%len(algs)],
			Workload:  "fft",
			Options:   SpecOptions{OpsPerCore: 200, Seed: int64(1000 + i/len(algs))},
		}
		fj, err := configs[i].Job()
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		res, err := flexsnoop.RunJob(fj)
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		baseline[i] = res
	}

	before := runtime.NumGoroutine()

	s := mustNew(t, Config{Workers: 4, QueueCapacity: 8})
	ts := httptest.NewServer(s.Handler())
	c := &Client{BaseURL: ts.URL, PollInterval: 2 * time.Millisecond}

	const clients = 64
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := g % len(configs)
			got, err := c.Run(context.Background(), configs[cfg])
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(got, baseline[cfg]) {
				errs[g] = fmt.Errorf("config %d: remote result differs from in-process baseline", cfg)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", g, err)
		}
	}

	stats := s.Stats()
	if stats.RunsCompleted != uint64(len(configs)) {
		t.Errorf("RunsCompleted = %d, want %d (dedup+cache must collapse 64 submissions)",
			stats.RunsCompleted, len(configs))
	}
	if stats.CacheHits+stats.JobsDeduped == 0 {
		t.Error("64 submissions of 16 configs produced no cache hits or dedups")
	}

	ts.Close()
	s.Close()

	// Goroutine-leak check: workers, hubs and handlers must all unwind.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
