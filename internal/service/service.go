// Package service turns the simulator into an embeddable
// simulation-as-a-service job server: a JSON job API backed by a bounded
// priority queue with backpressure, a worker pool, a content-addressed
// result cache with in-flight deduplication, streaming interval
// telemetry, and graceful drain.
//
// The design leans on two properties the engine already guarantees.
// Determinism (reruns of one configuration are bit-identical) makes the
// content-addressed cache exactly correct: a Result served from cache is
// indistinguishable from a fresh simulation, so identical submissions —
// concurrent or not — collapse into one run. Cancellation (RunContext
// stops between events) makes DELETE and graceful drain cheap: a
// cancelled job never corrupts shared state because every run builds its
// own machine.
//
// cmd/ringsimd wraps the package in a daemon; sweep -remote and the
// Client type consume it.
package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"flexsnoop"
	"flexsnoop/internal/journal"
)

// Job lifecycle states, as reported by the API.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull: the bounded queue refused the job (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining: the server is shutting down (HTTP 503).
	ErrDraining = errors.New("service: server draining")
	// ErrUnknownJob: no job with that ID (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrDurability: the write-ahead journal refused an append, so the
	// state transition cannot be acknowledged (HTTP 500). The job state
	// is unchanged.
	ErrDurability = errors.New("service: write-ahead journal append failed")
)

// Config sizes a Server. The zero value gets sensible defaults.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	// Each simulation is an independent single-threaded event kernel, so
	// workers scale linearly until cores saturate. A negative value
	// disables local execution entirely — meaningful only for a
	// coordinator, which then purely dispatches to its backends.
	Workers int
	// QueueCapacity bounds the pending-job queue (default 64). Beyond
	// it, submissions fail with ErrQueueFull — backpressure, not OOM.
	QueueCapacity int
	// CacheEntries bounds the content-addressed result cache (default
	// 256, LRU eviction). Zero disables caching entirely.
	CacheEntries int
	// FinishedJobRetention bounds how many finished (done, failed,
	// canceled) job records remain queryable (default 1024). Older
	// finished jobs are forgotten oldest-first.
	FinishedJobRetention int

	// Backends lists remote ringsimd base URLs to federate with. A
	// non-empty list (or Coordinator) turns this server into a
	// coordinator: queued jobs are dispatched least-loaded-first across
	// the local pool and every healthy backend, and the result cache
	// fronts the whole fleet.
	Backends []string
	// Coordinator enables federation even with no static Backends:
	// workers announce themselves via POST /v1/backends (see
	// RegisterLoop and ringsimd -register).
	Coordinator bool
	// HealthInterval paces the /readyz + /statsz probes of remote
	// backends (default 2s).
	HealthInterval time.Duration
	// DispatchRetries bounds how many times a job that failed on a dying
	// backend is re-queued and retried on another one (default 3).
	// Beyond it the job fails with the last backend error.
	DispatchRetries int
	// RemotePoll paces the status polls of jobs dispatched to remote
	// backends (default 20ms).
	RemotePoll time.Duration

	// SojournTarget enables CoDel-style queue aging: when the oldest
	// queued job's sojourn stays above this target for a full target
	// interval, one low-priority execution is shed (failed with a
	// shed error) per interval until sojourn recovers. Zero disables
	// aging (the queue only sheds by rejecting new work).
	SojournTarget time.Duration
	// BrownoutSojourn enables brownout mode: when queue sojourn exceeds
	// it, hedged dispatch is suspended and optional work (negative
	// priority) is shed at admission, until sojourn falls below half the
	// threshold. Zero disables brownout.
	BrownoutSojourn time.Duration
	// RateLimit enables per-client admission control: each distinct
	// JobSpec.ClientID may be admitted at most this many jobs per second
	// (token bucket, burst RateBurst). Submissions without a client_id
	// are not limited. Zero disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket burst for RateLimit (default:
	// ceil(RateLimit), at least 1).
	RateBurst int
	// BreakerFailures enables per-backend circuit breakers: this many
	// consecutive failed dispatches open a remote backend's breaker for
	// BreakerCooldown, after which a single half-open probe dispatch
	// decides between closing it and re-opening it. Zero disables
	// breakers (the pre-breaker binary healthy flag governs alone).
	BreakerFailures int
	// BreakerCooldown is the open → half-open wait (default 5s).
	BreakerCooldown time.Duration
	// BreakerLatency, when set, counts a successful dispatch slower than
	// this as a breaker failure: a backend that answers, but too late to
	// be useful, is quarantined like one that does not answer.
	BreakerLatency time.Duration

	// HedgeDelay enables hedged dispatch on a coordinator: an execution
	// still running on one backend this long after dispatch is
	// speculatively re-dispatched to a second healthy backend. The first
	// result wins; because the simulator is deterministic the two results
	// must be bit-identical, so a disagreement is surfaced as a hard
	// integrity error in /statsz (HedgeMismatches) and the log. Zero
	// disables hedging.
	HedgeDelay time.Duration

	// WALDir enables the crash journal: every job state transition is
	// appended (and, under WALSync "always", fsynced) before it is
	// acknowledged, and on startup the journal is replayed — completed
	// jobs resolve from the disk cache, incomplete jobs are requeued with
	// their original priority and admission sequence. Empty disables
	// journaling (the pre-durability volatile behavior).
	WALDir string
	// WALSync is the journal fsync policy: "always" (default; survives
	// power loss) or "none" (survives kill -9 but defers flushing to the
	// OS). See journal.SyncPolicy.
	WALSync string
	// WALSegmentBytes overrides the journal segment rotation size
	// (default 4 MiB; tests shrink it).
	WALSegmentBytes int64
	// CacheDir enables the disk tier of the result cache:
	// content-addressed files keyed by fingerprint with an embedded
	// sha256 verified on every read. A corrupt or truncated entry is a
	// miss (and is deleted), never served. Empty keeps the cache
	// memory-only.
	CacheDir string

	// MaxRequestBytes bounds HTTP request bodies (job specs, backend
	// registrations); beyond it submission fails with 413 (default 1 MiB).
	MaxRequestBytes int64

	// Logf, when non-nil, receives one line per job state change.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 || (c.Workers < 0 && !c.federated()) {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 0 {
		c.Workers = -1 // canonical "no local pool"
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.DispatchRetries <= 0 {
		c.DispatchRetries = 3
	}
	if c.RemotePoll <= 0 {
		c.RemotePoll = 20 * time.Millisecond
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	} else if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.FinishedJobRetention <= 0 {
		c.FinishedJobRetention = 1024
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 1 << 20
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(c.RateLimit)
		if float64(c.RateBurst) < c.RateLimit {
			c.RateBurst++
		}
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	if c.BreakerFailures > 0 && c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	return c
}

// overloadConfigured reports whether any opt-in overload feature needs
// the maintenance goroutine from startup (deadline jobs start it lazily).
func (c Config) overloadConfigured() bool {
	return c.SojournTarget > 0 || c.BrownoutSojourn > 0 || c.BreakerFailures > 0
}

// execution is one actual simulation: the unit the queue, the worker
// pool and the in-flight dedup map operate on. Several jobs (identical
// submissions) may be attached to one execution.
type execution struct {
	fp       string
	job      flexsnoop.Job
	spec     JobSpec // original wire spec, re-submittable to a remote backend
	label    string  // "Algorithm/workload" pprof + log label
	interval uint64  // metrics streaming interval

	priority   int
	seq        uint64
	queueIndex int       // heap index; -1 when not queued
	enqueuedAt time.Time // last (re)admission to the queue, for sojourn aging
	// deadline is the end-to-end completion deadline (zero = none): past
	// it the job is shed from the queue, never started by a worker, and
	// interrupted if running. Identical submissions deduped onto this
	// execution extend it (a job with no deadline clears it).
	deadline time.Time

	state    string
	jobs     []*job
	live     int // attached jobs not individually cancelled
	attempts int // failed dispatches so far (federation failover)
	running  int // attempts currently in flight (>1 only while hedged)
	lastErr  error
	ctx      context.Context
	cancel   context.CancelFunc
	hub      *metricsHub
	done     chan struct{}
	result   flexsnoop.Result
	err      error

	hedged bool // a speculative second dispatch was launched
}

// job is one submission. A cache hit produces a job with no execution,
// as does a job recovered from the journal in a terminal state.
type job struct {
	id       string
	seq      uint64
	fp       string
	exec     *execution // nil iff served from cache or recovered terminal
	cached   bool
	canceled bool
	result   flexsnoop.Result // cached result (exec == nil only)
}

// JobStatus is the API's view of one job.
type JobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Fingerprint string `json:"fingerprint"`
	// Cached marks a submission answered from the result cache without
	// simulating.
	Cached bool `json:"cached,omitempty"`
	// Result is present once State is "done". It is the simulator's
	// native Result object, bit-identical to an in-process run of the
	// same configuration.
	Result *flexsnoop.Result `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

func (j *job) statusLocked() JobStatus {
	st := JobStatus{ID: j.id, Fingerprint: j.fp, Cached: j.cached}
	switch {
	case j.cached:
		st.State = StateDone
		res := j.result
		st.Result = &res
	case j.canceled:
		st.State = StateCanceled
	default:
		st.State = j.exec.state
		switch j.exec.state {
		case StateDone:
			res := j.exec.result
			st.Result = &res
		case StateFailed:
			st.Error = j.exec.err.Error()
		}
	}
	return st
}

// Server is the job server. Create it with New, serve its Handler, and
// stop it with Drain (or Close in tests).
type Server struct {
	cfg   Config
	start time.Time

	mu       sync.Mutex
	cond     *sync.Cond // signals the dispatcher: work, slots, or shutdown
	jobs     map[string]*job
	order    []string // job insertion order, for finished-job eviction
	execs    map[string]*execution
	queue    *jobQueue
	cache    *resultCache
	wal      *journal.Journal // nil without Config.WALDir
	backends []*backend       // execution substrates; index 0 is local when present
	wg       sync.WaitGroup
	stop     chan struct{} // closed on the first Drain; stops the prober

	draining bool
	ready    bool // journal replay finished; /readyz gates on this
	seq      uint64
	busy     int // local in-flight simulations (BusyWorkers)

	// Overload-resilience state (admission.go). limiter holds the
	// per-client token buckets; drainPerSec is the EWMA of executions
	// leaving the system, from which Retry-After promises are computed;
	// aboveSince tracks how long queue sojourn has exceeded the CoDel
	// target; brownout suspends hedging and optional work.
	limiter     map[string]*tokenBucket
	lastDrain   time.Time
	drainPerSec float64
	aboveSince  time.Time
	brownout    bool
	maintOn     bool // the maintenance goroutine is running

	// hedgeCancels tracks the private context of every in-flight hedge
	// attempt, so cancellation and drain reach hedges whose execution has
	// already settled.
	hedgeCancels map[*execution]context.CancelFunc
	// verifying tracks executions finalised as Done while another attempt
	// was still in flight: the loser deliberately runs to completion to
	// cross-check the accepted result, but drain must still be able to
	// interrupt it.
	verifying map[*execution]struct{}

	// Cumulative counters (reported by /statsz).
	submitted, rejected, deduped       uint64
	rateLimited, jobsExpired, jobsShed uint64
	brownouts                          uint64
	runsCompleted, runsFailed          uint64
	runsCanceled, failovers            uint64
	hedges, hedgeWins, hedgeMismatches uint64
	walReplayed, walRequeued           uint64
	walErrors                          uint64
	simCycles                          uint64
	faultDrops, faultDups, faultDelays uint64
	faultStalls, snoopTimeouts         uint64
	degradedLines                      uint64
}

// New builds and starts a server: its dispatcher (and, for a
// coordinator, its health checker) is live on return. With WALDir set,
// the journal is replayed first — completed jobs are restored from the
// disk cache and incomplete ones requeued — before the server reports
// ready; an unusable WAL or cache directory is the only error.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:          cfg.withDefaults(),
		start:        time.Now(),
		jobs:         make(map[string]*job),
		execs:        make(map[string]*execution),
		hedgeCancels: make(map[*execution]context.CancelFunc),
		verifying:    make(map[*execution]struct{}),
		stop:         make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.queue = newJobQueue(s.cfg.QueueCapacity)
	var disk *diskCache
	if s.cfg.CacheDir != "" {
		var err error
		if disk, err = newDiskCache(s.cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	s.cache = newResultCache(s.cfg.CacheEntries, disk)
	if s.cfg.Workers > 0 {
		s.backends = append(s.backends, &backend{
			name: "local", slots: s.cfg.Workers, healthy: true,
		})
	}
	for _, url := range s.cfg.Backends {
		s.newRemoteBackendLocked(strings.TrimRight(strings.TrimSpace(url), "/"), 0)
	}

	if s.cfg.WALDir != "" {
		sync, err := journal.ParseSyncPolicy(s.cfg.WALSync)
		if err != nil {
			return nil, err
		}
		wal, records, err := journal.Open(journal.Options{
			Dir: s.cfg.WALDir, Sync: sync, SegmentBytes: s.cfg.WALSegmentBytes,
		})
		if err != nil {
			return nil, err
		}
		s.wal = wal
		s.mu.Lock()
		if err := s.replayLocked(records); err != nil {
			s.mu.Unlock()
			wal.Close()
			return nil, err
		}
		s.ready = true
		s.mu.Unlock()
	} else {
		s.ready = true
	}

	s.wg.Add(1)
	go s.dispatcher()
	if s.cfg.federated() {
		s.wg.Add(1)
		go s.prober()
	}
	if s.cfg.overloadConfigured() {
		s.mu.Lock()
		s.ensureMaintLocked()
		s.mu.Unlock()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit validates a spec and admits it: served from cache, attached to
// an identical in-flight execution, or queued. Errors are either
// validation failures (wrap the flexsnoop sentinels), backpressure
// (ErrQueueFull or ErrRateLimited, carrying an honest Retry-After hint)
// or ErrDraining.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	fj, err := spec.Job()
	if err != nil {
		return JobStatus{}, err
	}
	fp := fj.Fingerprint()
	now := time.Now()
	var deadline time.Time
	if spec.DeadlineMS > 0 {
		deadline = now.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	s.submitted++

	// Per-client admission control precedes everything else: a client
	// over its budget is told exactly when its next token arrives.
	if s.cfg.RateLimit > 0 && spec.ClientID != "" {
		if wait := s.takeTokenLocked(spec.ClientID, now); wait > 0 {
			s.rateLimited++
			return JobStatus{}, &overloadError{
				err:        fmt.Errorf("%w: client %q over %g jobs/s", ErrRateLimited, spec.ClientID, s.cfg.RateLimit),
				retryAfter: wait,
			}
		}
	}

	// Content-addressed cache: a completed identical run answers
	// immediately, without a queue slot. Journaled with the spec so a
	// post-crash poll of this job ID can still be answered (from the disk
	// cache, or by re-running if the cached result did not survive).
	if res, ok := s.cache.Get(fp); ok {
		if err := s.walSubmitLocked(spec, fp); err != nil {
			return JobStatus{}, err
		}
		j := s.newJobLocked(fp, nil)
		j.cached = true
		j.result = res
		s.logf("job %s %s cache-hit (%s)", j.id, fj.Algorithm.String()+"/"+fj.Workload, shortFP(fp))
		return j.statusLocked(), nil
	}

	// In-flight dedup (singleflight): identical concurrent submissions
	// share one execution and therefore one simulation.
	if ex, ok := s.execs[fp]; ok {
		// The journal entry precedes the acknowledgment; the record
		// carries no spec (the execution's first record has it).
		if err := s.walAppendLocked(journal.Record{
			Kind: journal.KindSubmitted, JobID: s.nextJobID(), Seq: s.seq + 1, Fingerprint: fp,
		}); err != nil {
			return JobStatus{}, err
		}
		j := s.newJobLocked(fp, ex)
		ex.jobs = append(ex.jobs, j)
		ex.live++
		s.deduped++
		// A deduped submission extends a queued execution's deadline to the
		// most generous of its attached jobs; one without a deadline clears
		// it. A running execution keeps its budget — its context deadline is
		// already armed.
		if ex.state == StateQueued {
			if deadline.IsZero() {
				ex.deadline = time.Time{}
			} else if !ex.deadline.IsZero() && deadline.After(ex.deadline) {
				ex.deadline = deadline
			}
		}
		s.logf("job %s %s deduped onto %s", j.id, ex.label, shortFP(fp))
		return j.statusLocked(), nil
	}

	// Brownout sheds optional work at admission: capacity spent on
	// negative-priority jobs now would push required work past its
	// deadlines.
	if s.brownout && spec.Priority < 0 {
		s.rejected++
		return JobStatus{}, &overloadError{
			err:        fmt.Errorf("%w: brownout sheds optional (negative-priority) work", ErrQueueFull),
			retryAfter: s.retryAfterLocked(),
		}
	}

	// Backpressure precedes the journal append: once a submitted record
	// is durable, admission must not fail, or replay would resurrect a
	// job the client was told to retry.
	if s.queue.Len() >= s.cfg.QueueCapacity {
		s.rejected++
		return JobStatus{}, &overloadError{err: ErrQueueFull, retryAfter: s.retryAfterLocked()}
	}
	if err := s.walSubmitLocked(spec, fp); err != nil {
		return JobStatus{}, err
	}

	interval := spec.Options.IntervalCycles
	ctx, cancel := context.WithCancel(context.Background())
	ex := &execution{
		fp:       fp,
		job:      fj,
		spec:     spec,
		label:    fj.Algorithm.String() + "/" + fj.Workload,
		interval: interval,
		priority: spec.Priority,
		seq:      s.seq + 1, // the admission sequence of the job minted below
		deadline: deadline,
		state:    StateQueued,
		ctx:      ctx,
		cancel:   cancel,
		hub:      newMetricsHub(),
		done:     make(chan struct{}),
	}
	if !s.queue.Push(ex) {
		cancel()
		s.rejected++
		return JobStatus{}, &overloadError{err: ErrQueueFull, retryAfter: s.retryAfterLocked()}
	}
	j := s.newJobLocked(fp, ex)
	ex.jobs = []*job{j}
	ex.live = 1
	s.execs[fp] = ex
	if !deadline.IsZero() {
		// The maintenance goroutine is what sheds this job if its budget
		// runs out in the queue.
		s.ensureMaintLocked()
	}
	s.cond.Signal()
	s.logf("job %s %s queued (%s, priority %d)", j.id, ex.label, shortFP(fp), spec.Priority)
	return j.statusLocked(), nil
}

// nextJobID previews the ID newJobLocked will mint, so the journal
// record written before the acknowledgment names the job it admits.
func (s *Server) nextJobID() string { return fmt.Sprintf("j-%06d", s.seq+1) }

// newJobLocked allocates a job record and evicts over-retention finished
// jobs oldest-first.
func (s *Server) newJobLocked(fp string, ex *execution) *job {
	s.seq++
	j := &job{id: fmt.Sprintf("j-%06d", s.seq), seq: s.seq, fp: fp, exec: ex}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictFinishedLocked()
	return j
}

// Status reports one job.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.statusLocked(), nil
}

// Cancel cancels one job. Cancelling the last live job of an execution
// cancels the simulation itself: dequeued if still queued, interrupted
// via its context if running. Finished jobs are unaffected (idempotent).
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	st := j.statusLocked()
	if st.State == StateDone || st.State == StateFailed || st.State == StateCanceled {
		return st, nil
	}
	// Journal the cancellation before acknowledging it: a cancel the
	// client saw succeed must not come back from the dead on replay.
	if err := s.walAppendLocked(journal.Record{
		Kind: journal.KindCancelled, JobID: j.id, Seq: j.seq, Fingerprint: j.fp,
	}); err != nil {
		return JobStatus{}, err
	}
	j.canceled = true
	ex := j.exec
	ex.live--
	if ex.live == 0 {
		if s.queue.Remove(ex) {
			// Still queued: no worker will ever see it; finalise here.
			s.finalizeLocked(ex, flexsnoop.Result{}, context.Canceled)
		} else {
			// Running: interrupt the simulation; the worker finalises.
			ex.cancel()
		}
	}
	s.logf("job %s %s canceled", j.id, ex.label)
	return j.statusLocked(), nil
}

// Stream returns the metrics hub for a job's execution. A cache-hit job
// has no execution and streams nothing: ok is true with a nil hub.
func (s *Server) Stream(id string) (hub *metricsHub, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.exec == nil {
		return nil, nil
	}
	return j.exec.hub, nil
}

// dispatcher is the single scheduling goroutine: it waits until a queued
// execution and a backend with a free slot coexist, assigns the
// execution to the least-loaded healthy backend, and spawns a run
// goroutine for it. With only the local backend this degenerates to the
// classic bounded worker pool (at most Workers concurrent simulations);
// with remote backends it is the federation dispatch loop.
func (s *Server) dispatcher() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.draining && (s.queue.Len() == 0 || s.pickLocked() == nil) {
			s.cond.Wait()
		}
		if s.draining {
			return // Drain has already cancelled everything still queued
		}
		ex := s.queue.Pop()
		if ex.live == 0 {
			// Every attached job was cancelled while queued.
			s.finalizeLocked(ex, flexsnoop.Result{}, context.Canceled)
			continue
		}
		// Pop-time expiry check: between maintenance scans a deadline can
		// pass; a worker must never start a job its caller has given up on.
		if now := time.Now(); !ex.deadline.IsZero() && !now.Before(ex.deadline) {
			s.finalizeLocked(ex, flexsnoop.Result{}, fmt.Errorf(
				"%w: expired at dispatch after %s queued", ErrExpired,
				now.Sub(ex.enqueuedAt).Round(time.Millisecond)))
			continue
		}
		b := s.pickLocked()
		s.dispatchLocked(b, ex, ex.ctx, false)
		if s.cfg.HedgeDelay > 0 && s.cfg.federated() {
			s.wg.Add(1)
			go s.hedgeTimer(b, ex)
		}
	}
}

// dispatchLocked assigns one attempt of an execution to a backend and
// spawns its run goroutine. The primary attempt runs under the
// execution's own context; a hedge brings its private one.
func (s *Server) dispatchLocked(b *backend, ex *execution, ctx context.Context, hedge bool) {
	// An open breaker whose cooldown has elapsed admits exactly one probe
	// dispatch (half-open); its outcome decides between closing the
	// breaker and re-opening it (backendObserveLocked).
	if s.cfg.BreakerFailures > 0 && b.client != nil && b.breaker == breakerOpen {
		b.breaker = breakerHalfOpen
		b.halfOpenProbe = true
		s.logf("backend %s breaker half-open: probing with %s", b.name, ex.label)
	}
	b.inflight++
	b.dispatched++
	if b.client == nil {
		s.busy++
	}
	ex.running++
	ex.state = StateRunning
	if !hedge {
		// Informational: replay requeues a started-but-not-done job
		// either way, but the record dates the dispatch for operators.
		if err := s.walAppendLocked(journal.Record{
			Kind: journal.KindStarted, Seq: ex.seq, Fingerprint: ex.fp,
		}); err != nil {
			s.logf("wal: %v (job %s keeps running)", err, ex.label)
		}
	}
	s.wg.Add(1)
	go s.runOn(b, ex, ctx, hedge)
}

// hedgeTimer waits out the hedge delay and, if the execution is still
// running, re-dispatches it to a second healthy backend. First result
// wins; the loser's result is compared bit-for-bit against the winner's
// (see runOn), because a deterministic simulator makes any divergence a
// hard integrity error.
func (s *Server) hedgeTimer(primary *backend, ex *execution) {
	defer s.wg.Done()
	t := time.NewTimer(s.cfg.HedgeDelay)
	defer t.Stop()
	select {
	case <-ex.done:
		return
	case <-s.stop:
		return
	case <-t.C:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ex.state != StateRunning || ex.hedged || s.draining || ex.ctx.Err() != nil {
		return
	}
	if s.brownout {
		return // brownout: speculative re-execution is the first luxury cut
	}
	b := s.pickHedgeLocked(primary)
	if b == nil {
		return // no second healthy backend with a free slot
	}
	hctx, hcancel := context.WithCancel(context.Background())
	s.hedgeCancels[ex] = hcancel
	ex.hedged = true
	s.hedges++
	s.logf("job %s hedged onto %s after %s (%s)", ex.label, b.name, s.cfg.HedgeDelay, shortFP(ex.fp))
	s.dispatchLocked(b, ex, hctx, true)
}

// runOn executes one attempt of a dispatched execution on its assigned
// backend and settles it: finalised on success, deterministic failure or
// cancellation; re-queued for failover when a remote backend died under
// it (bounded by DispatchRetries, then failed with the last backend
// error). When hedging is on, two attempts of one execution can be in
// flight: the first to settle finalises the execution, and the other —
// which deliberately runs to completion when the winner succeeded —
// only verifies that its result is bit-identical, counting any
// divergence as a hard integrity error.
func (s *Server) runOn(b *backend, ex *execution, ctx context.Context, hedge bool) {
	defer s.wg.Done()
	s.logf("job run %s on %s (%s)", ex.label, b.name, shortFP(ex.fp))

	started := time.Now()
	var res flexsnoop.Result
	var err error
	ran := true
	switch {
	case !ex.deadline.IsZero() && !started.Before(ex.deadline):
		// Last line of defence for "a worker never starts an expired job":
		// the budget ran out between dispatch and here.
		err = fmt.Errorf("%w: expired before starting on %s", ErrExpired, b.name)
		ran = false
	case b.client == nil:
		res, err = s.runExecution(ctx, ex)
	default:
		res, err = s.runRemote(b, ex, ctx)
	}
	latency := time.Since(started)

	s.mu.Lock()
	defer s.mu.Unlock()
	b.inflight--
	ex.running--
	if b.client == nil {
		s.busy--
	}
	if ran {
		// Feed the breaker before anything decides on failover: eligibility
		// for the retry below must see this attempt's outcome.
		s.backendObserveLocked(b, err, latency)
	}
	defer s.cond.Broadcast() // a slot freed (or a requeue): wake the dispatcher
	if hedge {
		if cancel, ok := s.hedgeCancels[ex]; ok {
			cancel()
			delete(s.hedgeCancels, ex)
		}
	}

	// Another attempt already settled the execution: this one is only a
	// cross-check. Deterministic simulations make the comparison exact.
	if ex.state == StateDone || ex.state == StateFailed || ex.state == StateCanceled {
		if err == nil && ex.state == StateDone {
			b.completed++
			if !reflect.DeepEqual(res, ex.result) {
				s.hedgeMismatches++
				s.logf("INTEGRITY ERROR: hedged re-execution of %s on %s diverged from the accepted result (%s)",
					ex.label, b.name, shortFP(ex.fp))
			}
		}
		if ex.running == 0 {
			// Last attempt settled: the deferred context release finalize
			// skipped (to let this verification finish) happens now.
			delete(s.verifying, ex)
			ex.cancel()
		}
		return
	}

	// A hedge that failed does not touch the execution: the primary
	// attempt is still in flight. Backend-side failures still mark the
	// backend unhealthy so the prober re-examines it (with breakers on,
	// backendObserveLocked above already recorded the failure instead).
	if hedge && err != nil {
		if b.client != nil && transient(err) && s.cfg.BreakerFailures <= 0 {
			b.healthy = false
			b.lastErr = err.Error()
		}
		return
	}
	if hedge && err == nil {
		s.hedgeWins++
	}

	// Failover: a remote backend failing for backend-side reasons while
	// the job itself is still wanted does not fail the job — it goes back
	// to the queue for another backend (bounded).
	if b.client != nil && err != nil && transient(err) && ex.ctx.Err() == nil && !s.draining {
		if s.cfg.BreakerFailures <= 0 {
			// Pre-breaker behavior: one failure quarantines the backend
			// until the prober re-admits it. With breakers on, the breaker
			// state machine (fed above) decides instead.
			b.healthy = false
			b.lastErr = err.Error()
		}
		b.failovers++
		s.failovers++
		ex.attempts++
		ex.lastErr = err
		// Retry on another backend — unless the retries are spent, or no
		// healthy backend is left to retry on (failing fast beats parking
		// the job until an operator notices the whole fleet is down).
		if ex.attempts <= s.cfg.DispatchRetries && s.anyAvailableLocked() {
			ex.state = StateQueued
			s.queue.Requeue(ex)
			s.logf("job %s failing over from %s (attempt %d/%d): %v",
				ex.label, b.name, ex.attempts, s.cfg.DispatchRetries, err)
			return
		}
		err = fmt.Errorf("service: job gave up after %d backend failures, last on %s: %w",
			ex.attempts, b.name, err)
	}
	if err == nil {
		b.completed++
	} else if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrExpired) {
		// Expired work is the caller's budget running out, not the
		// backend failing; it does not count against the backend.
		b.failed++
		b.lastErr = err.Error()
	}
	s.finalizeLocked(ex, res, err)
}

// runExecution performs the simulation outside the server lock, labelled
// for pprof so a CPU profile of the daemon attributes time per job, and
// with the streaming telemetry tap installed.
func (s *Server) runExecution(ctx context.Context, ex *execution) (res flexsnoop.Result, err error) {
	if !ex.deadline.IsZero() {
		// The end-to-end deadline bounds the run itself: RunJobContext
		// stops between simulated events, so expiry interrupts promptly.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, ex.deadline)
		defer cancel()
	}
	opts := ex.job.Options
	opts.Telemetry = &flexsnoop.TelemetryOptions{
		OnRow:          ex.hub.publish,
		IntervalCycles: ex.interval,
	}
	pprof.Do(ctx, pprof.Labels("job", ex.label), func(ctx context.Context) {
		res, err = flexsnoop.RunJobContext(ctx, flexsnoop.Job{
			Algorithm: ex.job.Algorithm,
			Workload:  ex.job.Workload,
			Options:   opts,
		})
	})
	return res, err
}

// finalizeLocked moves an execution to its terminal state, feeds the
// cache and counters, journals the completion, and releases waiters.
func (s *Server) finalizeLocked(ex *execution, res flexsnoop.Result, err error) {
	delete(s.execs, ex.fp)
	s.queue.Remove(ex) // no-op unless a hedge settled it while still queued for failover
	s.observeDrainLocked(time.Now())
	switch {
	case err == nil:
		ex.state = StateDone
		ex.result = res
		// The disk-cache write precedes the done record: replay resolves a
		// done record through the cache, so the order must never leave a
		// durable "done" pointing at a missing result. (Replay tolerates it
		// anyway — the job is re-run — but the common case should not.)
		if cerr := s.cache.Put(ex.fp, res); cerr != nil {
			s.walErrors++
			s.logf("wal: persisting result of %s: %v (job completes; replay would re-run it)", ex.label, cerr)
		}
		if werr := s.walAppendLocked(journal.Record{
			Kind: journal.KindDone, Seq: ex.seq, Fingerprint: ex.fp,
		}); werr != nil {
			s.logf("wal: %v (completion of %s not journaled)", werr, ex.label)
		}
		s.runsCompleted++
		s.simCycles += uint64(res.Cycles)
		s.faultDrops += res.Stats.FaultDrops
		s.faultDups += res.Stats.FaultDups
		s.faultDelays += res.Stats.FaultDelays
		s.faultStalls += res.Stats.FaultStalls
		s.snoopTimeouts += res.Stats.SnoopTimeouts
		s.degradedLines += res.Stats.DegradedLines
		s.logf("job done %s (%d cycles)", ex.label, res.Cycles)
	case errors.Is(err, context.Canceled):
		ex.state = StateCanceled
		ex.err = err
		s.runsCanceled++
		s.logf("job canceled %s", ex.label)
	case errors.Is(err, ErrExpired), errors.Is(err, errShed),
		errors.Is(err, context.DeadlineExceeded):
		// Deadline expiry and overload shedding fail the job for its
		// caller, but are journaled as cancellations, not as a
		// deterministic failure: replay must not poison the fingerprint —
		// the same spec resubmitted under normal load is expected to run.
		ex.state = StateFailed
		if !errors.Is(err, ErrExpired) && !errors.Is(err, errShed) {
			err = fmt.Errorf("%w: %v", ErrExpired, err)
		}
		ex.err = err
		for _, j := range ex.jobs {
			if j.canceled {
				continue
			}
			if werr := s.walAppendLocked(journal.Record{
				Kind: journal.KindCancelled, JobID: j.id, Seq: j.seq, Fingerprint: j.fp,
			}); werr != nil {
				s.logf("wal: %v (shedding of %s not journaled)", werr, j.id)
			}
		}
		if errors.Is(err, errShed) {
			s.jobsShed++
		} else {
			s.jobsExpired++
		}
		s.logf("job shed %s: %v", ex.label, err)
	default:
		ex.state = StateFailed
		ex.err = err
		// A deterministic failure would recur on replay: journal it as done
		// with the error so restart does not loop on a poisoned spec.
		if werr := s.walAppendLocked(journal.Record{
			Kind: journal.KindDone, Seq: ex.seq, Fingerprint: ex.fp, Error: err.Error(),
		}); werr != nil {
			s.logf("wal: %v (failure of %s not journaled)", werr, ex.label)
		}
		s.runsFailed++
		s.logf("job failed %s: %v", ex.label, err)
	}
	if ex.state == StateDone && ex.running > 0 {
		// The winner of a hedged race settled; the loser keeps running so
		// its result can be cross-checked (runOn cancels the context once
		// the last attempt is in). Drain can still interrupt it.
		s.verifying[ex] = struct{}{}
	} else {
		// A hedge still in flight has nothing left to verify against a
		// failed or cancelled execution.
		if cancel, ok := s.hedgeCancels[ex]; ok {
			cancel()
			delete(s.hedgeCancels, ex)
		}
		ex.cancel() // release the context's resources
	}
	ex.hub.close()
	close(ex.done)
}

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: new submissions are refused,
// queued jobs are cancelled, and running simulations get until timeout
// to finish before their contexts are cancelled. Drain returns once
// every worker has exited; it is safe to call more than once.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.stop) // stops the prober
	}
	for {
		ex := s.queue.Pop()
		if ex == nil {
			break
		}
		for _, j := range ex.jobs {
			j.canceled = true
			// Graceful shutdown journals the cancellations it implies, so a
			// restart does not resurrect jobs the operator chose to drop —
			// the journal distinguishes drain from a crash.
			if err := s.walAppendLocked(journal.Record{
				Kind: journal.KindCancelled, JobID: j.id, Seq: j.seq, Fingerprint: j.fp,
			}); err != nil {
				s.logf("wal: %v (drain cancellation of %s not journaled)", err, j.id)
			}
		}
		s.finalizeLocked(ex, flexsnoop.Result{}, context.Canceled)
	}
	// Hedges whose winner already settled have nothing left to prove.
	for ex, cancel := range s.hedgeCancels {
		cancel()
		delete(s.hedgeCancels, ex)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if already {
		s.wg.Wait()
		return
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		// Deadline passed: interrupt the runs still in flight. RunContext
		// stops between simulated events, so this converges promptly.
		s.mu.Lock()
		for _, ex := range s.execs {
			ex.cancel()
		}
		for ex := range s.verifying {
			ex.cancel() // hedge losers mid-verification
		}
		s.mu.Unlock()
		<-done
	}
	s.mu.Lock()
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			s.logf("wal: close: %v", err)
		}
		s.wal = nil
	}
	s.mu.Unlock()
	s.logf("drained")
}

// Close shuts down immediately: running jobs are cancelled. For tests.
func (s *Server) Close() { s.Drain(0) }

// Ready reports whether startup (journal replay included) has finished;
// /readyz gates on it so load balancers do not route to a server still
// reconstructing its queue.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ready && !s.draining
}

// Stats is the /statsz snapshot.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Ready         bool    `json:"ready"`

	Workers       int `json:"workers"`
	BusyWorkers   int `json:"busy_workers"`
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`

	JobsSubmitted uint64         `json:"jobs_submitted"`
	JobsRejected  uint64         `json:"jobs_rejected"`
	JobsDeduped   uint64         `json:"jobs_deduped"`
	JobStates     map[string]int `json:"job_states"`

	// Overload resilience (DESIGN.md §12). QueueOldestAgeSeconds is the
	// head-of-line sojourn — the age of the oldest queued job — the signal
	// aging and brownout act on. JobsExpired counts jobs shed (queued) or
	// interrupted (running) past their deadline; JobsShed counts CoDel
	// sojourn sheds; JobsRateLimited counts 429s from per-client admission
	// control. Goroutines is runtime.NumGoroutine, for leak checks under
	// flood.
	QueueOldestAgeSeconds float64 `json:"queue_oldest_age_seconds"`
	JobsExpired           uint64  `json:"jobs_expired,omitempty"`
	JobsShed              uint64  `json:"jobs_shed,omitempty"`
	JobsRateLimited       uint64  `json:"jobs_rate_limited,omitempty"`
	Brownouts             uint64  `json:"brownouts,omitempty"`
	BrownoutActive        bool    `json:"brownout_active,omitempty"`
	Goroutines            int     `json:"goroutines"`

	CacheEntries  int     `json:"cache_entries"`
	CacheCapacity int     `json:"cache_capacity"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`

	RunsCompleted  uint64 `json:"runs_completed"`
	RunsFailed     uint64 `json:"runs_failed"`
	RunsCanceled   uint64 `json:"runs_canceled"`
	SimCyclesTotal uint64 `json:"sim_cycles_total"`

	// Federation (coordinator mode only). Failovers counts executions
	// re-queued off a failing backend; Backends is the per-backend view:
	// health, load, dispatch counters, and each remote's own queue depth
	// and cache hit rate as of the last probe.
	Failovers uint64         `json:"failovers,omitempty"`
	Backends  []BackendStats `json:"backends,omitempty"`

	// Hedged dispatch (coordinator mode with HedgeDelay). HedgeMismatches
	// counts hard integrity errors: a hedge pair whose deterministic
	// results were not bit-identical.
	Hedges          uint64 `json:"hedges,omitempty"`
	HedgeWins       uint64 `json:"hedge_wins,omitempty"`
	HedgeMismatches uint64 `json:"hedge_mismatches,omitempty"`

	// Durability (WALDir / CacheDir only).
	WALRecords       uint64 `json:"wal_records,omitempty"`
	WALReplayed      uint64 `json:"wal_replayed,omitempty"`
	WALRequeued      uint64 `json:"wal_requeued,omitempty"`
	WALErrors        uint64 `json:"wal_errors,omitempty"`
	DiskCacheEntries int    `json:"disk_cache_entries,omitempty"`
	DiskCacheHits    uint64 `json:"disk_cache_hits,omitempty"`
	DiskCacheCorrupt uint64 `json:"disk_cache_corrupt,omitempty"`

	// Robustness counters aggregated over completed runs.
	FaultDrops    uint64 `json:"fault_drops"`
	FaultDups     uint64 `json:"fault_dups"`
	FaultDelays   uint64 `json:"fault_delays"`
	FaultStalls   uint64 `json:"fault_stalls"`
	SnoopTimeouts uint64 `json:"snoop_timeouts"`
	DegradedLines uint64 `json:"degraded_lines"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	workers := s.cfg.Workers
	if workers < 0 {
		workers = 0 // coordinator without local execution
	}
	st := Stats{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Draining:       s.draining,
		Ready:          s.ready && !s.draining,
		Workers:        workers,
		BusyWorkers:    s.busy,
		QueueDepth:     s.queue.Len(),
		QueueCapacity:  s.cfg.QueueCapacity,
		JobsSubmitted:  s.submitted,
		JobsRejected:   s.rejected,
		JobsDeduped:    s.deduped,
		JobStates:      map[string]int{},
		CacheEntries:   s.cache.Len(),
		CacheCapacity:  s.cfg.CacheEntries,
		CacheHits:      s.cache.hits,
		CacheMisses:    s.cache.misses,
		RunsCompleted:  s.runsCompleted,
		RunsFailed:     s.runsFailed,
		RunsCanceled:   s.runsCanceled,
		SimCyclesTotal: s.simCycles,
		FaultDrops:     s.faultDrops,
		FaultDups:      s.faultDups,
		FaultDelays:    s.faultDelays,
		FaultStalls:    s.faultStalls,
		SnoopTimeouts:  s.snoopTimeouts,
		DegradedLines:  s.degradedLines,

		JobsExpired:     s.jobsExpired,
		JobsShed:        s.jobsShed,
		JobsRateLimited: s.rateLimited,
		Brownouts:       s.brownouts,
		BrownoutActive:  s.brownout,
		Goroutines:      runtime.NumGoroutine(),
	}
	if oldest := s.queue.OldestEnqueue(); !oldest.IsZero() {
		st.QueueOldestAgeSeconds = time.Since(oldest).Seconds()
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	for _, j := range s.jobs {
		st.JobStates[j.statusLocked().State]++
	}
	if s.cfg.federated() {
		st.Failovers = s.failovers
		for _, b := range s.backends {
			st.Backends = append(st.Backends, b.statsLocked(s.cfg.BreakerFailures > 0))
		}
		st.Hedges = s.hedges
		st.HedgeWins = s.hedgeWins
		st.HedgeMismatches = s.hedgeMismatches
	}
	if s.wal != nil {
		st.WALRecords = s.wal.Appended()
		st.WALReplayed = s.walReplayed
		st.WALRequeued = s.walRequeued
	}
	st.WALErrors = s.walErrors
	if s.cache.disk != nil {
		st.DiskCacheEntries = s.cache.disk.Len()
		st.DiskCacheHits = s.cache.disk.hits
		st.DiskCacheCorrupt = s.cache.disk.corrupt
	}
	return st
}

// shortFP abbreviates a fingerprint for logs.
func shortFP(fp string) string {
	if len(fp) > 17 {
		return fp[:17]
	}
	return fp
}
