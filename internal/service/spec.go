package service

import (
	"errors"
	"fmt"

	"flexsnoop"
)

// SpecVersion is the JobSpec wire version this build speaks. The
// compatibility rule (DESIGN.md §9): within one version, changes are
// strictly additive (new optional fields with zero-value defaults); any
// change that alters the meaning of an existing field bumps SpecVersion.
// Servers accept every version up to their own and reject newer ones
// with ErrSpecVersion (HTTP 400), so an old coordinator never silently
// misinterprets a spec from a newer client.
//
// Version 2 added deadline_ms and client_id. They are zero-default
// additive fields, but a v1 server that ran a job whose caller declared
// it dead — or admitted work a client had rate-budgeted — would violate
// the submitter's intent rather than merely ignore an optimisation, so
// the version was bumped (DESIGN.md §12).
const SpecVersion = 2

// ErrSpecVersion: the spec declares a wire version this server does not
// speak (HTTP 400).
var ErrSpecVersion = errors.New("service: unsupported job spec version")

// JobSpec is the wire shape of one job submission (POST /v1/jobs). It is
// deliberately a flat, JSON-friendly projection of flexsnoop.Options:
// everything result-affecting is expressible, nothing else is — in
// particular there is no way to smuggle a Tweak hook in, which keeps
// every spec canonically fingerprintable and therefore cacheable.
type JobSpec struct {
	// Version is the wire version of the spec (see SpecVersion). Zero
	// means "version 1": the field was introduced with version 1, so
	// specs that predate it are by definition v1.
	Version int `json:"version,omitempty"`
	// Algorithm and Workload name the run (required).
	Algorithm string `json:"algorithm"`
	Workload  string `json:"workload"`
	// Priority orders the queue: higher runs sooner (default 0). Jobs of
	// equal priority run in submission order. Under brownout (see
	// Config.BrownoutSojourn) negative-priority jobs are treated as
	// optional and shed first.
	Priority int `json:"priority,omitempty"`

	// DeadlineMS is the end-to-end deadline in milliseconds from
	// admission: past it the server sheds the job from the queue (before
	// it ever reaches a worker) or interrupts the running simulation.
	// Zero means no deadline. A coordinator rewrites the field to the
	// remaining budget when it re-dispatches the job to a worker, so the
	// deadline is end-to-end across the fleet. Like IntervalCycles it is
	// result-neutral and excluded from the fingerprint: it changes
	// whether a job runs, never what it computes.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// ClientID optionally names the submitting client for per-client
	// admission control (Config.RateLimit). Empty opts out. Excluded
	// from the fingerprint.
	ClientID string `json:"client_id,omitempty"`

	Options SpecOptions `json:"options"`
}

// SpecOptions carries the result-affecting run options. Field semantics
// match flexsnoop.Options; the predictor override and fault plan use
// their command-line spellings (preset name, plan grammar).
type SpecOptions struct {
	OpsPerCore                uint64   `json:"ops_per_core,omitempty"`
	Seed                      int64    `json:"seed,omitempty"`
	Predictor                 string   `json:"predictor,omitempty"` // preset name, e.g. "Sub2k"
	CheckInvariants           bool     `json:"check_invariants,omitempty"`
	DisablePrefetch           bool     `json:"disable_prefetch,omitempty"`
	NumRings                  int      `json:"num_rings,omitempty"`
	GovernorBudgetNJPerKCycle float64  `json:"governor_budget_nj_per_kcycle,omitempty"`
	WarmupCycles              uint64   `json:"warmup_cycles,omitempty"`
	AlgorithmsPerNode         []string `json:"algorithms_per_node,omitempty"`
	Faults                    string   `json:"faults,omitempty"` // ParseFaultPlan grammar
	CheckEvery                uint64   `json:"check_every,omitempty"`
	WatchdogWindow            uint64   `json:"watchdog_window,omitempty"`
	WatchdogDegrade           bool     `json:"watchdog_degrade,omitempty"`
	ShardRings                bool     `json:"shard_rings,omitempty"`
	// FaultMaxRetries bounds timeout retransmits per access when Faults
	// is set (the plan grammar has no spelling for it; 0 = default 100).
	FaultMaxRetries int `json:"fault_max_retries,omitempty"`

	// IntervalCycles sets the metrics streaming interval for this run
	// (default 5000). It does not affect the simulation or the cache key.
	IntervalCycles uint64 `json:"interval_cycles,omitempty"`
}

// Job resolves the spec into a runnable flexsnoop.Job, validating every
// field. Errors wrap the root package's sentinels (ErrUnknownAlgorithm,
// ErrUnknownWorkload via the later run, ErrFaultPlan, ...), so callers
// can classify them.
func (s JobSpec) Job() (flexsnoop.Job, error) {
	if s.Version < 0 || s.Version > SpecVersion {
		return flexsnoop.Job{}, fmt.Errorf("%w: %d (this server speaks versions 1..%d)",
			ErrSpecVersion, s.Version, SpecVersion)
	}
	if s.DeadlineMS < 0 {
		return flexsnoop.Job{}, fmt.Errorf("%w: negative deadline_ms %d",
			flexsnoop.ErrBadConfig, s.DeadlineMS)
	}
	if len(s.ClientID) > 256 {
		return flexsnoop.Job{}, fmt.Errorf("%w: client_id longer than 256 bytes",
			flexsnoop.ErrBadConfig)
	}
	alg, err := flexsnoop.ParseAlgorithm(s.Algorithm)
	if err != nil {
		return flexsnoop.Job{}, err
	}
	if s.Workload == "" {
		return flexsnoop.Job{}, fmt.Errorf("%w: empty workload", flexsnoop.ErrUnknownWorkload)
	}
	if _, err := flexsnoop.WorkloadByName(s.Workload); err != nil {
		return flexsnoop.Job{}, err
	}
	o := flexsnoop.Options{
		OpsPerCore:                s.Options.OpsPerCore,
		Seed:                      s.Options.Seed,
		CheckInvariants:           s.Options.CheckInvariants,
		DisablePrefetch:           s.Options.DisablePrefetch,
		NumRings:                  s.Options.NumRings,
		GovernorBudgetNJPerKCycle: s.Options.GovernorBudgetNJPerKCycle,
		WarmupCycles:              s.Options.WarmupCycles,
		CheckEvery:                s.Options.CheckEvery,
		WatchdogWindow:            s.Options.WatchdogWindow,
		WatchdogDegrade:           s.Options.WatchdogDegrade,
		ShardRings:                s.Options.ShardRings,
	}
	if s.Options.Predictor != "" {
		p, ok := flexsnoop.Predictors()[s.Options.Predictor]
		if !ok {
			return flexsnoop.Job{}, fmt.Errorf("%w: unknown predictor preset %q",
				flexsnoop.ErrBadConfig, s.Options.Predictor)
		}
		o.Predictor = &p
	}
	if len(s.Options.AlgorithmsPerNode) > 0 {
		algs := make([]flexsnoop.Algorithm, len(s.Options.AlgorithmsPerNode))
		for i, name := range s.Options.AlgorithmsPerNode {
			a, err := flexsnoop.ParseAlgorithm(name)
			if err != nil {
				return flexsnoop.Job{}, err
			}
			algs[i] = a
		}
		o.AlgorithmsPerNode = algs
	}
	if s.Options.Faults != "" {
		plan, err := flexsnoop.ParseFaultPlan(s.Options.Faults)
		if err != nil {
			return flexsnoop.Job{}, err
		}
		plan.MaxRetries = s.Options.FaultMaxRetries
		o.Faults = plan
	} else if s.Options.FaultMaxRetries != 0 {
		return flexsnoop.Job{}, fmt.Errorf("%w: fault_max_retries without a fault plan",
			flexsnoop.ErrBadConfig)
	}
	if err := o.Validate(); err != nil {
		return flexsnoop.Job{}, err
	}
	return flexsnoop.Job{Algorithm: alg, Workload: s.Workload, Options: o}, nil
}

// SpecFor builds the wire spec for an (algorithm, workload, options)
// triple — the inverse of JobSpec.Job, used by remote drivers such as
// `sweep -remote`. It fails for options the wire shape cannot express: a
// Tweak hook, a Telemetry config, or a predictor override that is not a
// named preset. Transport attributes that are not part of the
// result-defining triple — Priority, DeadlineMS, ClientID — are left
// zero; callers set them on the returned spec.
func SpecFor(alg flexsnoop.Algorithm, workload string, o flexsnoop.Options) (JobSpec, error) {
	if o.Tweak != nil {
		return JobSpec{}, fmt.Errorf("%w: Options.Tweak cannot be submitted remotely",
			flexsnoop.ErrBadConfig)
	}
	if o.Telemetry != nil {
		return JobSpec{}, fmt.Errorf("%w: Options.Telemetry cannot be submitted remotely "+
			"(stream /v1/jobs/{id}/metrics instead)", flexsnoop.ErrBadConfig)
	}
	spec := JobSpec{
		Version:   SpecVersion,
		Algorithm: alg.String(),
		Workload:  workload,
		Options: SpecOptions{
			OpsPerCore:                o.OpsPerCore,
			Seed:                      o.Seed,
			CheckInvariants:           o.CheckInvariants,
			DisablePrefetch:           o.DisablePrefetch,
			NumRings:                  o.NumRings,
			GovernorBudgetNJPerKCycle: o.GovernorBudgetNJPerKCycle,
			WarmupCycles:              o.WarmupCycles,
			CheckEvery:                o.CheckEvery,
			WatchdogWindow:            o.WatchdogWindow,
			WatchdogDegrade:           o.WatchdogDegrade,
			ShardRings:                o.ShardRings,
		},
	}
	if o.Predictor != nil {
		preset, ok := flexsnoop.Predictors()[o.Predictor.Name]
		if !ok || !samePredictor(preset, *o.Predictor) {
			return JobSpec{}, fmt.Errorf("%w: predictor %q is not a named preset",
				flexsnoop.ErrBadConfig, o.Predictor.Name)
		}
		spec.Options.Predictor = o.Predictor.Name
	}
	for _, a := range o.AlgorithmsPerNode {
		spec.Options.AlgorithmsPerNode = append(spec.Options.AlgorithmsPerNode, a.String())
	}
	if o.Faults != nil {
		plan, err := faultPlanSpec(o.Faults)
		if err != nil {
			return JobSpec{}, err
		}
		spec.Options.Faults = plan
		spec.Options.FaultMaxRetries = o.Faults.MaxRetries
	}
	return spec, nil
}

// samePredictor compares predictor configurations by value
// (PredictorConfig carries a slice, so == does not apply).
func samePredictor(a, b flexsnoop.PredictorConfig) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Entries != b.Entries ||
		a.Assoc != b.Assoc || a.ExcludeCache != b.ExcludeCache ||
		a.AccessCycles != b.AccessCycles || len(a.BloomFieldBits) != len(b.BloomFieldBits) {
		return false
	}
	for i := range a.BloomFieldBits {
		if a.BloomFieldBits[i] != b.BloomFieldBits[i] {
			return false
		}
	}
	return true
}

// faultPlanSpec renders a fault plan back into the ParsePlan grammar.
func faultPlanSpec(p *flexsnoop.FaultPlan) (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	var out string
	for i, r := range p.Rules {
		if i > 0 {
			out += ";"
		}
		out += fmt.Sprintf("kind=%s,rate=%g,ring=%d,node=%d,from=%d,until=%d,seed=%d",
			r.Kind, r.Rate, r.Ring, r.Node, r.From, r.Until, r.Seed)
		if r.Delay > 0 {
			out += fmt.Sprintf(",delay=%d", r.Delay)
		}
	}
	return out, nil
}
