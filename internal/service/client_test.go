package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// backpressureServer answers POST /v1/jobs with 429 for the first
// `rejects` attempts — sending Retry-After: retryAfter when non-empty —
// then admits the job as done (terminal, so the client never needs to
// poll).
func backpressureServer(rejects int32, retryAfter string) (*httptest.Server, *atomic.Int32) {
	var attempts atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= rejects {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			writeError(w, http.StatusTooManyRequests, ErrQueueFull)
			return
		}
		writeJSON(w, http.StatusAccepted, JobStatus{ID: "j-000001", State: StateFailed, Error: "stub"})
	})
	return httptest.NewServer(mux), &attempts
}

// TestClientBackoffSchedule: with no Retry-After from the server,
// submitBackoff retries only 429s, with exponential backoff starting at
// the poll interval — so three rejections cost at least poll + 2*poll +
// 4*poll of waiting before the fourth attempt is admitted.
func TestClientBackoffSchedule(t *testing.T) {
	ts, attempts := backpressureServer(3, "")
	defer ts.Close()
	const poll = 10 * time.Millisecond
	c := &Client{BaseURL: ts.URL, PollInterval: poll}

	start := time.Now()
	st, err := c.SubmitWait(context.Background(), smallSpec(1))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if st.State != StateFailed {
		t.Fatalf("state = %q, want the stub terminal state", st.State)
	}
	if got := attempts.Load(); got != 4 {
		t.Errorf("attempts = %d, want 4 (three 429s, then admitted)", got)
	}
	// Lower bound only: wall-clock upper bounds are flaky under load.
	if min := 7 * poll; elapsed < min {
		t.Errorf("elapsed = %s, want >= %s (backoff %s+%s+%s)", elapsed, min, poll, 2*poll, 4*poll)
	}
}

// TestClientHonorsRetryAfter: when the 429 carries Retry-After, the
// client waits what the server asked — the server computes the hint from
// its measured drain rate, so it overrides the client-side guess in both
// directions.
func TestClientHonorsRetryAfter(t *testing.T) {
	ts, attempts := backpressureServer(1, "1")
	defer ts.Close()
	// A 300ms client backoff would beat the server's 1s ask; honoring the
	// header means the retry waits the full second anyway.
	c := &Client{BaseURL: ts.URL, PollInterval: 300 * time.Millisecond}

	start := time.Now()
	st, err := c.SubmitWait(context.Background(), smallSpec(1))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if st.State != StateFailed {
		t.Fatalf("state = %q, want the stub terminal state", st.State)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2 (one 429, then admitted)", got)
	}
	if elapsed < time.Second {
		t.Errorf("elapsed = %s, want >= 1s (the server's Retry-After)", elapsed)
	}
}

// TestClientBackoffCancel: a context cancelled mid-backoff aborts the
// retry loop promptly instead of sleeping out the full wait.
func TestClientBackoffCancel(t *testing.T) {
	ts, attempts := backpressureServer(1<<30, "") // never admits
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, PollInterval: 500 * time.Millisecond}

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err := c.SubmitWait(ctx, smallSpec(2))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitWait after cancel = %v, want context.Canceled", err)
	}
	if elapsed >= 450*time.Millisecond {
		t.Errorf("cancellation took %s: the backoff sleep was not interrupted", elapsed)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (no retry after cancellation)", got)
	}
}

// TestClientBackoffOnlyRetries429: any other error — here a 400 from a
// bad spec — returns immediately, with no retry.
func TestClientBackoffOnlyRetries429(t *testing.T) {
	var attempts atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		writeError(w, http.StatusBadRequest, errors.New("bad spec"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, PollInterval: time.Millisecond}

	_, err := c.SubmitWait(context.Background(), smallSpec(3))
	var re *remoteError
	if !errors.As(err, &re) || re.StatusCode != http.StatusBadRequest {
		t.Fatalf("SubmitWait = %v, want the 400 remoteError", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (400 must not be retried)", got)
	}
}
