package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flexsnoop"
)

// diskCache is the persistent tier of the result cache: one file per
// fingerprint under dir, written atomically (temp file + rename) with an
// embedded sha256 of the payload. A read whose checksum does not match —
// bit rot, a torn write that somehow survived the rename discipline, or
// an operator truncating files — is treated as a miss and the file is
// deleted: a corrupt result is never served, it is re-simulated (cheap,
// because the simulator is deterministic and the fingerprint is a sound
// content address).
//
// The store is content-addressed and unbounded: entries are only removed
// when they fail verification. Operators cap it by pointing -cachedir at
// a dedicated directory and clearing it at will — any deletion is just a
// future cache miss.
//
// Like the in-memory tier, it is not self-synchronising; the Server's
// mutex guards it.
type diskCache struct {
	dir string

	hits, misses uint64
	corrupt      uint64 // checksum/decode failures detected (and deleted)
}

func newDiskCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: result cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

// path maps a fingerprint ("fsn1:hex...") to its file. The colon is
// replaced so the name is portable.
func (d *diskCache) path(fp string) string {
	return filepath.Join(d.dir, strings.ReplaceAll(fp, ":", "-")+".json")
}

// diskHeader prefixes every cache file: "sha256 <hex>\n" followed by the
// JSON-encoded Result the hash covers.
const diskHeader = "sha256 "

// Get loads and verifies one entry. ok is false on absence, on a
// checksum mismatch, or on undecodable JSON — and in the latter two
// cases the entry is deleted so it can never be served later.
func (d *diskCache) Get(fp string) (flexsnoop.Result, bool) {
	b, err := os.ReadFile(d.path(fp))
	if err != nil {
		d.misses++
		return flexsnoop.Result{}, false
	}
	res, ok := decodeDiskEntry(b)
	if !ok {
		d.corrupt++
		d.misses++
		_ = os.Remove(d.path(fp))
		return flexsnoop.Result{}, false
	}
	d.hits++
	return res, true
}

// decodeDiskEntry verifies and decodes one cache file.
func decodeDiskEntry(b []byte) (flexsnoop.Result, bool) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 || !bytes.HasPrefix(b, []byte(diskHeader)) {
		return flexsnoop.Result{}, false
	}
	wantHex := string(b[len(diskHeader):nl])
	payload := b[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantHex {
		return flexsnoop.Result{}, false
	}
	var res flexsnoop.Result
	if json.Unmarshal(payload, &res) != nil {
		return flexsnoop.Result{}, false
	}
	return res, true
}

// Put atomically persists one result: the payload and its hash go to a
// temp file in the same directory, fsynced, then renamed over the final
// name — a reader (or a crash) never observes a half-written entry.
func (d *diskCache) Put(fp string, res flexsnoop.Result) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("service: encoding cached result: %w", err)
	}
	sum := sha256.Sum256(payload)
	tmp, err := os.CreateTemp(d.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("service: result cache: %w", err)
	}
	_, werr := fmt.Fprintf(tmp, "%s%s\n%s", diskHeader, hex.EncodeToString(sum[:]), payload)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("service: result cache: %w", werr)
	}
	if err := os.Rename(tmp.Name(), d.path(fp)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("service: result cache: %w", err)
	}
	return nil
}

// Len counts the entries on disk (stats only; O(dir)).
func (d *diskCache) Len() int {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}
