package service

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzSpecRoundTrip checks the wire-spec inverse pair on arbitrary
// inputs: any JSON body the server would accept (strict decoding, valid
// per Job()) must survive Job → SpecFor → Job with an identical
// fingerprint, and the regenerated spec must itself re-encode stably.
// This is the property the disk cache and the WAL replay lean on — a
// fingerprint computed from a replayed spec must match the one computed
// at submission time.
func FuzzSpecRoundTrip(f *testing.F) {
	seeds := []string{
		`{"algorithm":"Subset","workload":"fft"}`,
		`{"version":1,"algorithm":"Lazy","workload":"barnes","priority":7,` +
			`"options":{"ops_per_core":500,"seed":-3,"predictor":"Sub2k"}}`,
		`{"algorithm":"Eager","workload":"fft","options":{` +
			`"num_rings":2,"warmup_cycles":100,"check_invariants":true,` +
			`"disable_prefetch":true,"shard_rings":true}}`,
		`{"algorithm":"Exact","workload":"barnes","options":{` +
			`"governor_budget_nj_per_kcycle":1.5,"watchdog_window":4096,` +
			`"watchdog_degrade":true,"check_every":128}}`,
		`{"algorithm":"SupersetAgg","workload":"fft","options":{` +
			`"algorithms_per_node":["Lazy","Eager","Oracle","Subset"]}}`,
		// Fault-plan grammar, with and without the retry budget.
		`{"algorithm":"Oracle","workload":"fft","options":{"ops_per_core":200,` +
			`"faults":"kind=drop,rate=0.01,ring=0,node=2,from=100,until=2000,seed=7"}}`,
		`{"algorithm":"SupersetCon","workload":"barnes","options":{` +
			`"faults":"kind=delay,rate=0.5,delay=3;kind=dup,rate=0.125,node=1",` +
			`"fault_max_retries":5}}`,
		// IntervalCycles is result-neutral: dropped by SpecFor, must not
		// perturb the fingerprint.
		`{"algorithm":"Subset","workload":"fft","options":{"interval_cycles":250}}`,
		// Version-2 transport attributes (deadline_ms, client_id) are
		// result-neutral too: dropped by SpecFor, excluded from the
		// fingerprint (the round-trip assertion below enforces both).
		`{"version":2,"algorithm":"Subset","workload":"fft","deadline_ms":1500}`,
		`{"version":2,"algorithm":"Lazy","workload":"barnes","client_id":"sweep-7",` +
			`"options":{"ops_per_core":500}}`,
		`{"version":2,"algorithm":"Eager","workload":"fft","priority":-1,` +
			`"deadline_ms":86400000,"client_id":"batch","options":{"seed":9}}`,
		// Rejected shapes, as skip-path seeds: future version, unknown
		// names, retries without a plan, negative deadline.
		`{"version":99,"algorithm":"Subset","workload":"fft"}`,
		`{"algorithm":"Bogus","workload":"fft"}`,
		`{"algorithm":"Subset","workload":"fft","options":{"fault_max_retries":3}}`,
		`{"version":2,"algorithm":"Subset","workload":"fft","deadline_ms":-1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var spec JobSpec
		if err := dec.Decode(&spec); err != nil {
			t.Skip()
		}
		job, err := spec.Job()
		if err != nil {
			t.Skip() // invalid specs are rejected at the door, not round-tripped
		}
		spec2, err := SpecFor(job.Algorithm, job.Workload, job.Options)
		if err != nil {
			t.Fatalf("SpecFor failed on options Job() accepted: %v\nspec: %s", err, data)
		}
		job2, err := spec2.Job()
		if err != nil {
			t.Fatalf("regenerated spec rejected by Job(): %v\nspec: %+v", err, spec2)
		}
		if a, b := job.Fingerprint(), job2.Fingerprint(); a != b {
			t.Fatalf("fingerprint changed across round-trip: %s != %s\nin:  %s\nout: %+v",
				a, b, data, spec2)
		}
		// The regenerated spec is a fixed point of the wire encoding.
		wire, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("marshal regenerated spec: %v", err)
		}
		var spec3 JobSpec
		if err := json.Unmarshal(wire, &spec3); err != nil {
			t.Fatalf("regenerated spec does not decode: %v", err)
		}
		if !reflect.DeepEqual(spec2, spec3) {
			t.Fatalf("regenerated spec not JSON-stable:\n%+v\n%+v", spec2, spec3)
		}
	})
}
