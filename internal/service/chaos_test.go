package service

import (
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexsnoop"
)

// flakyProxy is a TCP proxy that abuses the connections through it:
// every killNth connection is torn down mid-response (the client sees a
// truncated reply — the nastiest transient: the request may or may not
// have been applied), and every forwarded chunk is delayed. It stands
// between the coordinator and a worker to prove the federation survives
// a hostile network.
type flakyProxy struct {
	ln      net.Listener
	target  string
	killNth int64
	delay   time.Duration

	conns  atomic.Int64
	killed atomic.Int64
	wg     sync.WaitGroup
	closed chan struct{}

	mu     sync.Mutex
	active map[net.Conn]struct{}
}

func newFlakyProxy(t *testing.T, target string, killNth int64, delay time.Duration) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &flakyProxy{
		ln: ln, target: target, killNth: killNth, delay: delay,
		closed: make(chan struct{}), active: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.accept()
	t.Cleanup(p.Close)
	return p
}

func (p *flakyProxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *flakyProxy) Close() {
	select {
	case <-p.closed:
		return
	default:
	}
	close(p.closed)
	p.ln.Close()
	// Idle keep-alive connections block their pipe goroutines in Read
	// forever; tear them down so Close terminates.
	p.mu.Lock()
	for c := range p.active {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *flakyProxy) track(c net.Conn) {
	p.mu.Lock()
	p.active[c] = struct{}{}
	p.mu.Unlock()
}

func (p *flakyProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.active, c)
	p.mu.Unlock()
	c.Close()
}

func (p *flakyProxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.conns.Add(1)
		p.wg.Add(1)
		go p.pipe(c, n%p.killNth == 0)
	}
}

// pipe forwards one connection with per-chunk latency. A doomed
// connection forwards the request intact but truncates the first
// response chunk and then resets — the worker has acted on the request,
// the coordinator never learns the outcome.
func (p *flakyProxy) pipe(client net.Conn, doomed bool) {
	defer p.wg.Done()
	p.track(client)
	defer p.untrack(client)
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	p.track(server)
	defer p.untrack(server)

	copyDir := func(dst, src net.Conn, truncate bool) {
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				select {
				case <-time.After(p.delay):
				case <-p.closed:
					return
				}
				if truncate {
					p.killed.Add(1)
					dst.Write(buf[:n/2])
					client.Close()
					server.Close()
					return
				}
				if _, err := dst.Write(buf[:n]); err != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	done := make(chan struct{})
	go func() { copyDir(server, client, false); close(done) }() // request path
	copyDir(client, server, doomed)                             // response path
	client.Close()
	server.Close()
	<-done
}

// TestFederationThroughFlakyProxy: a coordinator dispatching to a worker
// through a proxy that injects latency and resets still completes every
// job with bit-identical results. The coordinator's failover requeues
// jobs killed mid-flight (transport errors surface immediately:
// per-backend clients run with retries disabled) and the local pool
// absorbs what the flaky path drops, so progress is guaranteed.
func TestFederationThroughFlakyProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos proxy run takes a few seconds")
	}
	specs := make([]JobSpec, 8)
	want := make([]flexsnoop.Result, len(specs))
	for i := range specs {
		specs[i] = smallSpec(int64(100 + i))
		fj, err := specs[i].Job()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		want[i], err = flexsnoop.RunJob(fj)
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
	}

	_, workerURL := newWorker(t, 2)
	proxy := newFlakyProxy(t, workerURL[len("http://"):], 3, time.Millisecond)

	cfg := Config{
		Workers:         1, // the guaranteed-progress fallback
		Backends:        []string{proxy.URL()},
		RemotePoll:      2 * time.Millisecond,
		HealthInterval:  25 * time.Millisecond,
		DispatchRetries: 8,
	}
	coord := mustNew(t, cfg)
	defer coord.Close()

	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := coord.Submit(spec)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		st := waitState(t, coord, id, StateDone)
		if !reflect.DeepEqual(*st.Result, want[i]) {
			t.Errorf("job %d: result through flaky proxy is not bit-identical", i)
		}
	}
	t.Logf("proxy: %d connections, %d killed; coordinator failovers: %d",
		proxy.conns.Load(), proxy.killed.Load(), coord.Stats().Failovers)
}
