package service

import (
	"encoding/json"
	"flexsnoop"
	"flexsnoop/internal/journal"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// This file tests crash recovery at the package level: journals are
// crafted (or left behind by a real server) and a fresh Server is opened
// on them. The process-level kill -9 path is covered by the chaos smoke
// test in cmd/ringsimd.

// durableCfg is a single-worker server with both durability tiers on.
func durableCfg(t *testing.T) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		Workers:  1,
		WALDir:   filepath.Join(dir, "wal"),
		CacheDir: filepath.Join(dir, "cache"),
	}
}

// TestRecoveryRestoresDoneJobs: jobs completed before a restart are
// still queryable after it, answered from the disk cache with
// bit-identical results.
func TestRecoveryRestoresDoneJobs(t *testing.T) {
	cfg := durableCfg(t)
	s1 := mustNew(t, cfg)
	var ids []string
	var want []flexsnoop.Result
	for seed := int64(1); seed <= 3; seed++ {
		st, err := s1.Submit(smallSpec(seed))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		want = append(want, *waitState(t, s1, id, StateDone).Result)
	}
	s1.Close()

	s2 := mustNew(t, cfg)
	defer s2.Close()
	if !s2.Ready() {
		t.Fatal("server not ready after replay")
	}
	for i, id := range ids {
		st, err := s2.Status(id)
		if err != nil {
			t.Fatalf("Status(%s) after restart: %v", id, err)
		}
		if st.State != StateDone || st.Result == nil {
			t.Fatalf("job %s after restart: state %q, result %v", id, st.State, st.Result)
		}
		if !reflect.DeepEqual(*st.Result, want[i]) {
			t.Errorf("job %s result changed across restart", id)
		}
	}
	stats := s2.Stats()
	if stats.WALReplayed != 3 {
		t.Errorf("WALReplayed = %d, want 3", stats.WALReplayed)
	}
	if stats.WALRequeued != 0 {
		t.Errorf("WALRequeued = %d, want 0 (all jobs were done)", stats.WALRequeued)
	}
	// A new submission must not collide with replayed IDs.
	st, err := s2.Submit(smallSpec(99))
	if err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
	if st.ID != "j-000004" {
		t.Errorf("post-restart job ID = %s, want j-000004", st.ID)
	}
}

// TestRecoveryRequeuesIncomplete simulates a kill -9: a journal with
// submitted (and one started) records but no completions. The restarted
// server requeues everything, preserving priority order and the
// original job IDs, and runs the jobs to completion.
func TestRecoveryRequeuesIncomplete(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	j, _, err := journal.Open(journal.Options{Dir: walDir})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	specs := map[uint64]JobSpec{1: smallSpec(10), 2: smallSpec(20), 3: smallSpec(30)}
	prios := map[uint64]int{1: 5, 2: 0, 3: 9}
	fps := map[uint64]string{}
	for seq := uint64(1); seq <= 3; seq++ {
		spec := specs[seq]
		spec.Priority = prios[seq]
		fj, err := spec.Job()
		if err != nil {
			t.Fatalf("spec.Job: %v", err)
		}
		fps[seq] = fj.Fingerprint()
		raw, _ := json.Marshal(spec)
		if err := j.Append(journal.Record{
			Kind: journal.KindSubmitted, JobID: jobID(seq), Seq: seq,
			Fingerprint: fps[seq], Priority: spec.Priority, Spec: raw,
		}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// One was mid-run when the "crash" hit: requeued all the same.
	if err := j.Append(journal.Record{Kind: journal.KindStarted, Seq: 1, Fingerprint: fps[1]}); err != nil {
		t.Fatalf("Append started: %v", err)
	}
	j.Close()

	var mu sync.Mutex
	var dispatched []string
	s := mustNew(t, Config{Workers: 1, WALDir: walDir, Logf: func(format string, args ...any) {
		if strings.HasPrefix(format, "job run ") {
			mu.Lock()
			dispatched = append(dispatched, args[2].(string)) // shortFP
			mu.Unlock()
		}
	}})
	defer s.Close()
	if got := s.Stats().WALRequeued; got != 3 {
		t.Fatalf("WALRequeued = %d, want 3", got)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		st := waitState(t, s, jobID(seq), StateDone)
		if st.Fingerprint != fps[seq] {
			t.Errorf("job %s fingerprint changed across recovery", jobID(seq))
		}
	}
	// A single worker dispatches strictly in priority order: 9, 5, 0.
	wantOrder := []string{shortFP(fps[3]), shortFP(fps[1]), shortFP(fps[2])}
	mu.Lock()
	got := append([]string(nil), dispatched...)
	mu.Unlock()
	if !reflect.DeepEqual(got, wantOrder) {
		t.Errorf("dispatch order %v, want %v (priority then seq)", got, wantOrder)
	}
}

func jobID(seq uint64) string { return fmt.Sprintf("j-%06d", seq) }

// TestRecoveryCancelledStaysCancelled: a journaled cancellation is not
// resurrected — the job replays as canceled and nothing is queued, even
// though its submitted record carries a runnable spec.
func TestRecoveryCancelledStaysCancelled(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	j, _, err := journal.Open(journal.Options{Dir: walDir})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	spec := smallSpec(42)
	fj, _ := spec.Job()
	raw, _ := json.Marshal(spec)
	must := func(rec journal.Record) {
		t.Helper()
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	must(journal.Record{Kind: journal.KindSubmitted, JobID: "j-000001", Seq: 1,
		Fingerprint: fj.Fingerprint(), Spec: raw})
	must(journal.Record{Kind: journal.KindCancelled, JobID: "j-000001", Seq: 1,
		Fingerprint: fj.Fingerprint()})
	j.Close()

	s := mustNew(t, Config{Workers: 1, WALDir: walDir})
	defer s.Close()
	st, err := s.Status("j-000001")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.State != StateCanceled {
		t.Errorf("replayed state = %q, want canceled", st.State)
	}
	if depth := s.Stats().QueueDepth; depth != 0 {
		t.Errorf("queue depth %d after replaying a cancelled job, want 0", depth)
	}
	if got := s.Stats().RunsCompleted; got != 0 {
		t.Errorf("cancelled job ran anyway (%d completions)", got)
	}
}

// TestRecoveryTornTailAndDoubleRestart: a torn final record (the one
// write that can legitimately be lost) does not poison recovery, and a
// second restart replays the same state as the first — replay and
// post-replay compaction are idempotent.
func TestRecoveryTornTailAndDoubleRestart(t *testing.T) {
	cfg := durableCfg(t)
	s1 := mustNew(t, cfg)
	st, err := s1.Submit(smallSpec(5))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	want := *waitState(t, s1, st.ID, StateDone).Result
	s1.Close()

	// Tear the journal tail: a half-written record from the "crash".
	segs, err := filepath.Glob(filepath.Join(cfg.WALDir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("000000a0 deadbeef {\"kind\":\"subm"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for restart := 1; restart <= 2; restart++ {
		s := mustNew(t, cfg)
		got, err := s.Status(st.ID)
		if err != nil {
			t.Fatalf("restart %d: Status: %v", restart, err)
		}
		if got.State != StateDone || got.Result == nil || !reflect.DeepEqual(*got.Result, want) {
			t.Fatalf("restart %d: job not restored intact (state %q)", restart, got.State)
		}
		s.Close()
	}
}

// TestRecoveryDiskCacheFlippedByte: a done job whose cached result file
// was corrupted (one flipped payload byte) is never served corrupt — the
// entry fails its checksum, is deleted, and the job is deterministically
// re-run to the identical result.
func TestRecoveryDiskCacheFlippedByte(t *testing.T) {
	cfg := durableCfg(t)
	s1 := mustNew(t, cfg)
	spec := smallSpec(8)
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	want := *waitState(t, s1, st.ID, StateDone).Result
	s1.Close()

	entries, err := filepath.Glob(filepath.Join(cfg.CacheDir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries: %v, %v", entries, err)
	}
	b, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x01 // flip one payload byte; the header stays intact
	if err := os.WriteFile(entries[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, cfg)
	defer s2.Close()
	// Replay found the done record but the cached result failed its
	// checksum: the job must have been requeued, not served corrupt.
	got := waitState(t, s2, st.ID, StateDone)
	if !reflect.DeepEqual(*got.Result, want) {
		t.Errorf("re-run after corruption is not bit-identical")
	}
	stats := s2.Stats()
	if stats.DiskCacheCorrupt != 1 {
		t.Errorf("DiskCacheCorrupt = %d, want 1", stats.DiskCacheCorrupt)
	}
	if stats.WALRequeued != 1 {
		t.Errorf("WALRequeued = %d, want 1 (corrupt cache forces a re-run)", stats.WALRequeued)
	}
}

// TestRecoveryEmptyWAL: a fresh (or empty) journal directory is a clean
// cold start.
func TestRecoveryEmptyWAL(t *testing.T) {
	cfg := durableCfg(t)
	s := mustNew(t, cfg)
	if !s.Ready() {
		t.Fatal("not ready on an empty journal")
	}
	st, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, st.ID, StateDone)
	s.Close()

	// And reopening the now non-empty dir with zero live jobs works too.
	s2 := mustNew(t, cfg)
	defer s2.Close()
	if got := s2.Stats().WALReplayed; got != 1 {
		t.Errorf("WALReplayed = %d, want 1", got)
	}
}
