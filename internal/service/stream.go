package service

import (
	"context"
	"sync"

	"flexsnoop/internal/telemetry"
)

// metricsHub fans one running simulation's interval telemetry out to any
// number of HTTP subscribers. The publisher is the simulation goroutine
// (via telemetry.Config.OnRow); subscribers are request handlers. Rows
// are retained for the execution's lifetime, so a subscriber that
// attaches late — or after the run completed — replays the full series
// before tailing live rows. publish only appends under a short critical
// section, keeping the simulation's wait bounded.
type metricsHub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rows   []telemetry.Row
	closed bool
}

func newMetricsHub() *metricsHub {
	h := &metricsHub{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// publish appends a row and wakes subscribers. Safe to call from exactly
// one goroutine at a time (the collector is single-goroutine).
func (h *metricsHub) publish(r telemetry.Row) {
	h.mu.Lock()
	h.rows = append(h.rows, r)
	h.mu.Unlock()
	h.cond.Broadcast()
}

// close marks the stream complete and releases all subscribers.
func (h *metricsHub) close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// next blocks until rows beyond index from exist, the hub closes, or ctx
// is done. It returns the new rows (shared backing array; rows are
// value-typed and append-only, so readers never see mutation) and whether
// the stream is finished.
func (h *metricsHub) next(ctx context.Context, from int) (rows []telemetry.Row, done bool) {
	stop := context.AfterFunc(ctx, func() { h.cond.Broadcast() })
	defer stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.rows) <= from && !h.closed && ctx.Err() == nil {
		h.cond.Wait()
	}
	if len(h.rows) > from {
		rows = h.rows[from:]
	}
	return rows, h.closed || ctx.Err() != nil
}
