package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flexsnoop"
)

// These tests cover the overload-resilience layer (DESIGN.md §12):
// end-to-end deadlines, CoDel-style queue aging, per-client rate
// limiting, honest Retry-After, brownout mode, and per-backend circuit
// breakers. The invariant every test leans on: overload controls change
// WHICH jobs run, never what an admitted job computes.

// longSpec is a job that will not finish on its own within a test: it
// occupies a worker until cancelled.
func longSpec(seed int64) JobSpec {
	sp := smallSpec(seed)
	sp.Options.OpsPerCore = 500000
	return sp
}

// waitBusy blocks until the local pool has n busy workers.
func waitBusy(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().BusyWorkers < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d busy workers", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryAfterMonotone: the Retry-After estimate is always at least
// one second and never decreases as the queue deepens — a deeper queue
// must not promise an earlier retry — with or without a measured drain
// rate.
func TestRetryAfterMonotone(t *testing.T) {
	for _, perSec := range []float64{0, 0.01, 0.5, 2, 100, 1e6} {
		prev := 0
		for depth := 0; depth <= 512; depth++ {
			got := retryAfterSeconds(depth, perSec)
			if got < 1 {
				t.Fatalf("retryAfterSeconds(%d, %g) = %d, want >= 1", depth, perSec, got)
			}
			if got > 60 {
				t.Fatalf("retryAfterSeconds(%d, %g) = %d, want <= 60", depth, perSec, got)
			}
			if got < prev {
				t.Fatalf("retryAfterSeconds(%d, %g) = %d < %d at depth-1: not monotone",
					depth, perSec, got, prev)
			}
			prev = got
		}
	}
	if got := retryAfterSeconds(-5, 0); got != 1 {
		t.Errorf("retryAfterSeconds(-5, 0) = %d, want 1", got)
	}
}

// TestDeadlineExpiredInQueue: a job whose deadline passes while it waits
// behind a busy worker is shed by the maintenance scan — it fails with
// the expiry error without a worker ever starting it.
func TestDeadlineExpiredInQueue(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueCapacity: 8})
	defer s.Close()

	blocker, err := s.Submit(longSpec(400))
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	waitBusy(t, s, 1)

	spec := smallSpec(401)
	spec.DeadlineMS = 50
	doomed, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit doomed: %v", err)
	}
	st := waitTerminal(t, s, doomed.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, ErrExpired.Error()) {
		t.Fatalf("doomed job: state=%q error=%q, want failed with the expiry error", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "queued") {
		t.Errorf("expiry error %q does not say the job died in the queue", st.Error)
	}
	stats := s.Stats()
	if stats.JobsExpired == 0 {
		t.Error("JobsExpired = 0 after an in-queue expiry")
	}
	// The worker never ran it: the only completed/failed run accounting
	// belongs to the still-running blocker.
	if stats.RunsCompleted != 0 || stats.RunsFailed != 0 {
		t.Errorf("runs completed=%d failed=%d, want 0/0 (expiry is not a run)",
			stats.RunsCompleted, stats.RunsFailed)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancel blocker: %v", err)
	}
}

// TestDeadlineInterruptsRunningJob: a deadline that fires mid-simulation
// interrupts the run via its context; the job fails with the expiry
// error rather than running to completion.
func TestDeadlineInterruptsRunningJob(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	defer s.Close()

	spec := longSpec(410)
	spec.DeadlineMS = 100
	start := time.Now()
	st0, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st := waitTerminal(t, s, st0.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, ErrExpired.Error()) {
		t.Fatalf("state=%q error=%q, want failed with the expiry error", st.State, st.Error)
	}
	// 500k ops would run far longer than the deadline; the interrupt must
	// land promptly (generous bound: the run dies well under the time the
	// full simulation would take).
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("expiry took %s, deadline was 100ms", elapsed)
	}
	if got := s.Stats().JobsExpired; got != 1 {
		t.Errorf("JobsExpired = %d, want 1", got)
	}
}

// TestRateLimitPerClient: per-client token buckets admit the burst, then
// reject with ErrRateLimited and a positive wait; other clients and
// anonymous submissions are unaffected.
func TestRateLimitPerClient(t *testing.T) {
	s := mustNew(t, Config{Workers: 2, RateLimit: 1, RateBurst: 2})
	defer s.Close()

	submit := func(seed int64, client string) error {
		sp := smallSpec(seed)
		sp.ClientID = client
		_, err := s.Submit(sp)
		return err
	}
	if err := submit(420, "alice"); err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := submit(421, "alice"); err != nil {
		t.Fatalf("second (burst): %v", err)
	}
	err := submit(422, "alice")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("third rapid submit = %v, want ErrRateLimited", err)
	}
	var oe *overloadError
	if !errors.As(err, &oe) || oe.retryAfter <= 0 {
		t.Fatalf("rate-limit error carries no positive retry hint: %v", err)
	}
	// The limit is per client: bob and anonymous submissions still pass.
	if err := submit(423, "bob"); err != nil {
		t.Errorf("bob's first submit: %v", err)
	}
	if err := submit(424, ""); err != nil {
		t.Errorf("anonymous submit: %v", err)
	}
	if got := s.Stats().JobsRateLimited; got != 1 {
		t.Errorf("JobsRateLimited = %d, want 1", got)
	}
}

// TestCoDelShedsLowestPriority: with a sojourn target set, a queue stuck
// behind a busy worker sheds its lowest-priority job first; the
// high-priority one survives to run.
func TestCoDelShedsLowestPriority(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueCapacity: 8, SojournTarget: 100 * time.Millisecond})
	defer s.Close()

	blocker, err := s.Submit(longSpec(430))
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	waitBusy(t, s, 1)

	lowSpec := smallSpec(431)
	lowSpec.Priority = -1
	low, err := s.Submit(lowSpec)
	if err != nil {
		t.Fatalf("submit low: %v", err)
	}
	highSpec := smallSpec(432)
	highSpec.Priority = 1
	high, err := s.Submit(highSpec)
	if err != nil {
		t.Fatalf("submit high: %v", err)
	}

	st := waitTerminal(t, s, low.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "shed") {
		t.Fatalf("low-priority job: state=%q error=%q, want failed/shed", st.State, st.Error)
	}
	if hs, err := s.Status(high.ID); err != nil || hs.State == StateFailed {
		t.Fatalf("high-priority job was shed before the low one: %+v err=%v", hs, err)
	}
	// Free the worker promptly so the next aging interval cannot reach the
	// high-priority job; it must now run to completion.
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancel blocker: %v", err)
	}
	if st := waitTerminal(t, s, high.ID); st.State != StateDone {
		t.Fatalf("high-priority job: state=%q error=%q, want done", st.State, st.Error)
	}
	if got := s.Stats().JobsShed; got == 0 {
		t.Error("JobsShed = 0 after a CoDel shed")
	}
}

// TestBrownoutShedsOptionalWork: sustained sojourn past the brownout
// threshold flips the server into brownout — optional (negative
// priority) submissions are refused while required work is still
// admitted — and draining the queue ends it (hysteresis at half the
// threshold).
func TestBrownoutShedsOptionalWork(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueCapacity: 16, BrownoutSojourn: 50 * time.Millisecond})
	defer s.Close()

	blocker, err := s.Submit(longSpec(440))
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	waitBusy(t, s, 1)
	queued, err := s.Submit(smallSpec(441)) // ages in the queue behind the blocker
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for !s.Stats().BrownoutActive {
		if time.Now().After(deadline) {
			t.Fatal("brownout never engaged")
		}
		time.Sleep(5 * time.Millisecond)
	}

	optional := smallSpec(442)
	optional.Priority = -1
	_, err = s.Submit(optional)
	if !errors.Is(err, ErrQueueFull) || !strings.Contains(err.Error(), "brownout") {
		t.Fatalf("optional submit under brownout = %v, want a brownout rejection", err)
	}
	required, err := s.Submit(smallSpec(443))
	if err != nil {
		t.Fatalf("required submit under brownout: %v", err)
	}

	// Drain the queue: brownout must clear once sojourn recovers.
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancel blocker: %v", err)
	}
	waitTerminal(t, s, queued.ID)
	waitTerminal(t, s, required.ID)
	for s.Stats().BrownoutActive {
		if time.Now().After(deadline) {
			t.Fatal("brownout never cleared after the queue drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Stats().Brownouts; got == 0 {
		t.Error("Brownouts = 0 after a brownout episode")
	}
}

// breakerBackend is a real worker behind a fault-injection proxy: while
// failing, job submissions get a 500 (a backend-side, failover-worthy
// error) but health probes still pass — so the binary healthy flag stays
// up and only the circuit breaker can quarantine it.
func breakerBackend(t *testing.T) (proxy *httptest.Server, failing *atomic.Bool) {
	t.Helper()
	worker := mustNew(t, Config{Workers: 2})
	t.Cleanup(worker.Close)
	wts := httptest.NewServer(worker.Handler())
	t.Cleanup(wts.Close)
	target, err := url.Parse(wts.URL)
	if err != nil {
		t.Fatalf("parse worker URL: %v", err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	failing = new(atomic.Bool)
	proxy = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() && r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			writeError(w, http.StatusInternalServerError, errors.New("injected backend fault"))
			return
		}
		rp.ServeHTTP(w, r)
	}))
	t.Cleanup(proxy.Close)
	return proxy, failing
}

// TestBreakerOpensAndRecovers walks the breaker state machine end to
// end on a coordinator with one remote backend: consecutive dispatch
// failures open the breaker (and the job fails fast instead of parking),
// the cooldown admits a half-open probe once the backend heals, and the
// probe's success closes the breaker with a bit-identical result.
func TestBreakerOpensAndRecovers(t *testing.T) {
	proxy, failing := breakerBackend(t)
	failing.Store(true)

	const cooldown = 300 * time.Millisecond
	s := mustNew(t, Config{
		Workers:         -1, // pure coordinator: every dispatch goes remote
		Backends:        []string{proxy.URL},
		BreakerFailures: 2,
		BreakerCooldown: cooldown,
		HealthInterval:  time.Hour, // probes out of the picture: the breaker alone governs
	})
	defer s.Close()

	// Job A: two failover attempts fail on the only backend, opening the
	// breaker; with every backend quarantined the job fails fast.
	a, err := s.Submit(smallSpec(450))
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	if st := waitTerminal(t, s, a.ID); st.State != StateFailed || !strings.Contains(st.Error, "gave up") {
		t.Fatalf("job A: state=%q error=%q, want fail-fast after the breaker opened", st.State, st.Error)
	}
	stats := s.Stats()
	if len(stats.Backends) != 1 {
		t.Fatalf("backends = %d, want 1", len(stats.Backends))
	}
	if got := stats.Backends[0].BreakerState; got != "open" {
		t.Fatalf("breaker state after failures = %q, want open", got)
	}
	if got := stats.Backends[0].BreakerOpens; got != 1 {
		t.Errorf("BreakerOpens = %d, want 1", got)
	}
	opened := time.Now()

	// Heal the backend and wait out the cooldown: the next job is the
	// half-open probe, and its success closes the breaker.
	failing.Store(false)
	time.Sleep(cooldown - time.Since(opened) + 50*time.Millisecond)
	spec := smallSpec(451)
	b, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	st := waitTerminal(t, s, b.ID)
	if st.State != StateDone {
		t.Fatalf("job B: state=%q error=%q, want done via the half-open probe", st.State, st.Error)
	}
	job, err := spec.Job()
	if err != nil {
		t.Fatalf("spec.Job: %v", err)
	}
	baseline, err := flexsnoop.RunJob(job)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if !reflect.DeepEqual(*st.Result, baseline) {
		t.Error("probe result diverges from the serial baseline")
	}
	if got := s.Stats().Backends[0].BreakerState; got != "closed" {
		t.Errorf("breaker state after the probe = %q, want closed", got)
	}
}

// TestObeyingClientEventuallyAdmitted: a full queue answers 429 with a
// positive integer Retry-After, and a client that obeys it is admitted
// once the queue drains — the header is a promise, not a brush-off.
func TestObeyingClientEventuallyAdmitted(t *testing.T) {
	s := mustNew(t, Config{Workers: 2, QueueCapacity: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	medium := func(seed int64) JobSpec {
		sp := smallSpec(seed)
		sp.Options.OpsPerCore = 10000
		return sp
	}
	// Flood over HTTP until a 429 lands, then check its header.
	var retryAfter string
	seed := int64(460)
	deadline := time.Now().Add(30 * time.Second)
	for retryAfter == "" {
		if time.Now().After(deadline) {
			t.Fatal("never got a 429")
		}
		body, _ := json.Marshal(medium(seed))
		seed++
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retryAfter = resp.Header.Get("Retry-After")
		}
		resp.Body.Close()
	}
	secs, err := strconv.Atoi(retryAfter)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", retryAfter)
	}

	// The obeying client: SubmitWait honors Retry-After, and the queue is
	// draining (2 workers chewing through it), so admission must come.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c := &Client{BaseURL: ts.URL, PollInterval: 5 * time.Millisecond}
	st, err := c.SubmitWait(ctx, medium(seed))
	if err != nil {
		t.Fatalf("obeying client was never admitted: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("obeying client's job: state=%q error=%q, want done", st.State, st.Error)
	}
}

// TestChaosOverloadFlood is the acceptance chaos test: flood a small
// server with 8x its queue capacity in mixed priorities and deadlines,
// with aging and brownout armed. Required: expired jobs die with the
// expiry error (never a worker result), rejected jobs see backpressure
// errors only, every high-priority generous-deadline job that was
// admitted completes, every completed result is bit-identical to a
// serial in-process run, and nothing leaks a goroutine.
func TestChaosOverloadFlood(t *testing.T) {
	before := runtime.NumGoroutine()
	const capacity = 8
	s := mustNew(t, Config{
		Workers:         2,
		QueueCapacity:   capacity,
		SojournTarget:   50 * time.Millisecond,
		BrownoutSojourn: 150 * time.Millisecond,
	})

	type flooded struct {
		spec JobSpec
		id   string // admitted job ID ("" = rejected at admission)
	}
	var jobs []flooded
	var rejected int
	for i := 0; i < 8*capacity; i++ {
		sp := smallSpec(int64(3000 + i))
		switch i % 3 {
		case 0:
			sp.Priority = 2
		case 2:
			sp.Priority = -1
		}
		switch i % 4 {
		case 1:
			sp.DeadlineMS = 1 // doomed: expires in queue or interrupts the run
		case 3:
			sp.DeadlineMS = 30000 // generous: must not expire
		}
		// A few doomed jobs are long, so even one that reaches a worker
		// before its 1ms budget is interrupted mid-run rather than finishing.
		if i%8 == 1 {
			sp.Options.OpsPerCore = 200000
		}
		st, err := s.Submit(sp)
		switch {
		case err == nil:
			jobs = append(jobs, flooded{spec: sp, id: st.ID})
		case errors.Is(err, ErrQueueFull):
			rejected++ // backpressure (queue full or brownout): the only legal rejection
		default:
			t.Fatalf("flood submit %d: unexpected error %v", i, err)
		}
	}
	if rejected == 0 {
		t.Error("an 8x-capacity flood was fully admitted: backpressure never engaged")
	}

	var completed, expired, shed int
	for _, f := range jobs {
		st := waitTerminal(t, s, f.id)
		switch {
		case st.State == StateDone:
			completed++
			job, err := f.spec.Job()
			if err != nil {
				t.Fatalf("spec.Job: %v", err)
			}
			baseline, err := flexsnoop.RunJob(job)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			if !reflect.DeepEqual(*st.Result, baseline) {
				t.Errorf("job %s (seed %d): result diverges from the serial baseline",
					f.id, f.spec.Options.Seed)
			}
		case strings.Contains(st.Error, ErrExpired.Error()):
			expired++
			if f.spec.DeadlineMS == 0 || f.spec.DeadlineMS >= 30000 {
				t.Errorf("job %s expired without a tight deadline (%dms)", f.id, f.spec.DeadlineMS)
			}
		case strings.Contains(st.Error, "shed"):
			shed++
		default:
			t.Errorf("job %s: state=%q error=%q, want done/expired/shed", f.id, st.State, st.Error)
		}
		if f.spec.Priority == 2 && f.spec.DeadlineMS == 0 && st.State != StateDone {
			t.Errorf("admitted high-priority job %s did not complete: state=%q error=%q",
				f.id, st.State, st.Error)
		}
	}
	if completed == 0 {
		t.Error("no admitted job completed")
	}
	if expired == 0 {
		t.Error("no 1ms-deadline job expired under an 8x flood")
	}
	t.Logf("flood: %d admitted (%d done, %d expired, %d shed), %d rejected",
		len(jobs), completed, expired, shed, rejected)

	stats := s.Stats()
	if stats.JobsExpired == 0 {
		t.Error("JobsExpired = 0")
	}
	if got := int(stats.JobsExpired); got != expired {
		t.Errorf("JobsExpired = %d, observed %d expired jobs", got, expired)
	}

	// Clean shutdown, no goroutine leak: everything the overload layer
	// started (maintenance loop included) must exit with the server.
	s.Close()
	leakDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines: %d before flood, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
