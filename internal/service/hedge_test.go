package service

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"flexsnoop"
)

// hedgeSpec is slow enough that the 1ms hedge timer reliably fires while
// the primary attempt is still running (a run is hundreds of
// milliseconds), yet small enough to finish promptly under -race on a
// loaded host.
func hedgeSpec(seed int64) JobSpec {
	return JobSpec{
		Algorithm: "Subset",
		Workload:  "fft",
		Options:   SpecOptions{OpsPerCore: 5000, Seed: seed, Predictor: "Sub2k"},
	}
}

// TestHedgedDispatch: a coordinator with a tiny hedge delay re-dispatches
// a running job to a second backend; the job completes with the correct
// (bit-identical) result, the hedge is counted, and the two attempts
// agree — zero mismatches.
func TestHedgedDispatch(t *testing.T) {
	spec := hedgeSpec(11)
	fj, err := spec.Job()
	if err != nil {
		t.Fatalf("spec.Job: %v", err)
	}
	want, err := flexsnoop.RunJob(fj)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	_, w1 := newWorker(t, 1)
	_, w2 := newWorker(t, 1)
	cfg := coordCfg(w1, w2)
	cfg.HedgeDelay = time.Millisecond
	coord := mustNew(t, cfg)
	defer coord.Close()

	st, err := coord.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitState(t, coord, st.ID, StateDone)
	if !reflect.DeepEqual(*got.Result, want) {
		t.Errorf("hedged result differs from in-process run")
	}

	// The losing attempt runs to completion for verification; give it a
	// moment to settle before reading the counters.
	deadline := time.Now().Add(60 * time.Second)
	for {
		stats := coord.Stats()
		if stats.Hedges >= 1 && stats.Backends[0].Inflight == 0 && stats.Backends[1].Inflight == 0 {
			if stats.HedgeMismatches != 0 {
				t.Errorf("HedgeMismatches = %d on a deterministic fleet, want 0", stats.HedgeMismatches)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hedge never settled: %+v", stats)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHedgeMismatchDetected: a backend that returns a wrong result is
// caught. A stub "backend" answers every submission instantly with a
// doctored Result; the local pool runs the job for real. The stub's
// hedge settles first and wins, and when the honest local attempt
// completes, the divergence is flagged as an integrity error.
func TestHedgeMismatchDetected(t *testing.T) {
	bogus := flexsnoop.Result{Cycles: 1} // no real run produces this
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/jobs" && r.Method == http.MethodPost:
			res := bogus
			writeJSON(w, http.StatusOK, JobStatus{
				ID: "stub-1", State: StateDone, Result: &res,
			})
		case r.URL.Path == "/readyz":
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		case r.URL.Path == "/statsz":
			writeJSON(w, http.StatusOK, Stats{Workers: 2})
		default:
			http.NotFound(w, r)
		}
	}))
	defer stub.Close()

	cfg := Config{
		Workers:        1, // the honest primary: local, index 0, wins the tie
		Backends:       []string{stub.URL},
		RemotePoll:     2 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
		HedgeDelay:     time.Millisecond,
	}
	coord := mustNew(t, cfg)
	defer coord.Close()

	st, err := coord.Submit(hedgeSpec(12))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// The stub's instant (wrong) answer wins the race...
	got := waitTerminal(t, coord, st.ID)
	if got.State != StateDone || got.Result.Cycles != 1 {
		t.Fatalf("stub result did not win: state %q", got.State)
	}
	// ...and the honest local run exposes it when it completes.
	deadline := time.Now().Add(60 * time.Second)
	for {
		stats := coord.Stats()
		if stats.HedgeMismatches == 1 {
			if stats.Hedges != 1 || stats.HedgeWins != 1 {
				t.Errorf("Hedges/HedgeWins = %d/%d, want 1/1", stats.Hedges, stats.HedgeWins)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("mismatch never detected: %+v", stats)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
