package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetrySchedule pins the transport-retry backoff: base, doubling,
// capped.
func TestRetrySchedule(t *testing.T) {
	base, limit := 10*time.Millisecond, 80*time.Millisecond
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := retrySchedule(i+1, base, limit); got != w {
			t.Errorf("retrySchedule(%d) = %s, want %s", i+1, got, w)
		}
	}
	// Defaults kick in for zero inputs.
	if got := retrySchedule(1, 0, 0); got != 50*time.Millisecond {
		t.Errorf("retrySchedule(1, 0, 0) = %s, want 50ms", got)
	}
	if got := retrySchedule(20, 0, 0); got != time.Second {
		t.Errorf("retrySchedule(20, 0, 0) = %s, want the 1s cap", got)
	}
}

// resettingServer kills the first n connections at the TCP level (the
// client sees a reset or EOF), then serves normally.
func resettingServer(t *testing.T, n int64, h http.Handler) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("ResponseWriter is not a Hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close() // mid-request close: reset/EOF on the client
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestClientRetriesTransientTransport: connection resets are retried on
// the capped exponential schedule and the call eventually succeeds.
func TestClientRetriesTransientTransport(t *testing.T) {
	ts, calls := resettingServer(t, 2, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, JobStatus{ID: "j-000001", State: StateDone})
	}))
	c := &Client{BaseURL: ts.URL, PollInterval: time.Millisecond}
	st, err := c.Status(context.Background(), "j-000001")
	if err != nil {
		t.Fatalf("Status with transient resets: %v", err)
	}
	if st.State != StateDone {
		t.Errorf("state = %q, want done", st.State)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (2 resets + 1 success)", got)
	}

	// Disconnected clients keep their HTTP connections honest too: a
	// submit retried after a lost response lands on the fingerprint-dedup
	// path server-side, so retrying POST is safe.
	ts2, calls2 := resettingServer(t, 1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, JobStatus{ID: "j-000002", State: StateQueued})
	}))
	c2 := &Client{BaseURL: ts2.URL, PollInterval: time.Millisecond}
	if _, err := c2.Submit(context.Background(), smallSpec(1)); err != nil {
		t.Fatalf("Submit with one reset: %v", err)
	}
	if got := calls2.Load(); got != 2 {
		t.Errorf("server saw %d submits, want 2", got)
	}
}

// TestClientTransportRetriesDisabled: -1 surfaces the first transport
// error immediately — the coordinator's per-backend configuration, where
// failover is the retry mechanism.
func TestClientTransportRetriesDisabled(t *testing.T) {
	ts, calls := resettingServer(t, 100, nil)
	c := &Client{BaseURL: ts.URL, PollInterval: time.Millisecond, MaxTransportRetries: -1}
	if _, err := c.Status(context.Background(), "j-000001"); err == nil {
		t.Fatal("Status succeeded through a permanently resetting server")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want exactly 1 with retries disabled", got)
	}
}

// TestClientDoesNotRetryPermanentErrors: HTTP-level failures (4xx, and
// reported simulation failures) are not transport errors — exactly one
// request goes out.
func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, errors.New("bad spec"))
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, PollInterval: time.Millisecond}
	_, err := c.Submit(context.Background(), smallSpec(1))
	var re *remoteError
	if !errors.As(err, &re) || re.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 remoteError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (4xx is permanent)", got)
	}
}

// TestClientRetryRespectsContext: a cancelled context stops the retry
// loop instead of burning the whole budget.
func TestClientRetryRespectsContext(t *testing.T) {
	ts, _ := resettingServer(t, 1000, nil)
	c := &Client{BaseURL: ts.URL, PollInterval: 50 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Status(ctx, "j-000001")
	if err == nil {
		t.Fatal("Status succeeded unexpectedly")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retry loop ignored the context for %s", elapsed)
	}
}

// TestRequestBodyLimits: an oversized spec is refused with 413 before it
// is parsed; an unknown JSON field is refused with 400.
func TestRequestBodyLimits(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, MaxRequestBytes: 512})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"algorithm":"Subset","workload":"fft","options":{"predictor":"` +
		strings.Repeat("a", 4096) + `"}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized spec: HTTP %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"Subset","workload":"fft","bogus_field":1}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}

	// A normal spec still fits comfortably under the cap.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"Subset","workload":"fft","options":{"ops_per_core":200}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("valid spec under the cap: HTTP %d, want 202", resp.StatusCode)
	}
}
