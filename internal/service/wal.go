package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"flexsnoop/internal/journal"
)

// This file is the server side of the write-ahead journal: the append
// helpers that make state transitions durable before they are
// acknowledged, and the replay that reconstructs the server from the
// journal on startup.
//
// The recovery contract leans entirely on determinism and content
// addressing. A "done" record does not carry the result — it promises
// that the result for that fingerprint is either in the disk cache or
// reproducible by re-running the spec, and the two are bit-identical.
// So replay is: restore every journaled job; resolve terminal ones from
// the cache (or re-run them if the cache entry is gone); requeue the
// rest with their original priority and admission sequence, so a
// restarted sweep proceeds in exactly the order the crashed one would
// have.

// walAppendLocked appends one record, or does nothing without a WAL.
// An error wraps ErrDurability: the transition it records was NOT made
// durable and must not be acknowledged.
func (s *Server) walAppendLocked(rec journal.Record) error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Append(rec); err != nil {
		s.walErrors++
		s.logf("wal: append %s: %v", rec.Kind, err)
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// walSubmitLocked journals the admission of the job newJobLocked is
// about to mint, carrying the full wire spec so replay can re-execute
// it from scratch.
func (s *Server) walSubmitLocked(spec JobSpec, fp string) error {
	if s.wal == nil {
		return nil
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("%w: encoding spec: %v", ErrDurability, err)
	}
	return s.walAppendLocked(journal.Record{
		Kind: journal.KindSubmitted, JobID: s.nextJobID(), Seq: s.seq + 1,
		Fingerprint: fp, Priority: spec.Priority, Spec: raw,
	})
}

// replayJob is one job reconstructed from the journal scan.
type replayJob struct {
	id        string
	seq       uint64
	fp        string
	priority  int
	cancelled bool
}

// replayLocked rebuilds the server's job table and queue from the
// journal records Open returned. It must run with s.mu held, before the
// dispatcher starts.
//
// Replay is idempotent by job ID: a crash inside Compact's rename
// window can leave the old segments beside the compacted one, so the
// same record may be read twice — the first occurrence wins. Terminal
// state is tracked per fingerprint, not per record order: determinism
// makes "some execution of this fingerprint completed" a property of
// the fingerprint itself.
func (s *Server) replayLocked(records []journal.Record) error {
	var (
		jobs     []*replayJob
		byID     = make(map[string]*replayJob)
		specByFP = make(map[string]json.RawMessage)
		doneByFP = make(map[string]string) // fp -> error ("" = success)
	)
	var maxSeq uint64
	for i := range records {
		rec := &records[i]
		if rec.Seq > maxSeq {
			maxSeq = rec.Seq
		}
		switch rec.Kind {
		case journal.KindSubmitted:
			if rec.JobID == "" || byID[rec.JobID] != nil {
				continue // malformed, or a compaction-window duplicate
			}
			rj := &replayJob{id: rec.JobID, seq: rec.Seq, fp: rec.Fingerprint, priority: rec.Priority}
			byID[rec.JobID] = rj
			jobs = append(jobs, rj)
			if len(rec.Spec) > 0 {
				if _, ok := specByFP[rec.Fingerprint]; !ok {
					specByFP[rec.Fingerprint] = rec.Spec
				}
			}
		case journal.KindStarted:
			// Informational only: started-but-not-done is requeued anyway.
		case journal.KindDone:
			if _, ok := doneByFP[rec.Fingerprint]; !ok {
				doneByFP[rec.Fingerprint] = rec.Error
			}
		case journal.KindCancelled:
			if rj := byID[rec.JobID]; rj != nil {
				rj.cancelled = true
			}
		}
	}

	// Restore each job in admission order. Incomplete jobs sharing a
	// fingerprint re-collapse onto one execution, exactly as their
	// original submissions were deduped.
	requeued := make(map[string]*execution)
	for _, rj := range jobs {
		j := &job{id: rj.id, seq: rj.seq, fp: rj.fp}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.walReplayed++
		switch {
		case rj.cancelled:
			j.canceled = true
		case hasDone(doneByFP, rj.fp) && doneByFP[rj.fp] != "":
			// A journaled deterministic failure: re-running would only
			// reproduce it, so restore the terminal state directly.
			j.exec = terminalFailedExec(rj.fp, rj.seq, doneByFP[rj.fp])
		case hasDone(doneByFP, rj.fp):
			if res, ok := s.cache.Get(rj.fp); ok {
				j.cached = true
				j.result = res
				continue
			}
			// Completed, but the result did not survive (no disk cache, or
			// the entry failed verification). Determinism makes re-running
			// exactly equivalent — fall through to requeue.
			fallthrough
		default:
			ex, err := s.requeueReplayedLocked(requeued, rj, specByFP[rj.fp])
			if err != nil {
				j.exec = terminalFailedExec(rj.fp, rj.seq, err.Error())
				continue
			}
			j.exec = ex
			ex.jobs = append(ex.jobs, j)
			ex.live++
		}
	}
	s.seq = maxSeq
	if s.seq < uint64(len(jobs)) {
		s.seq = uint64(len(jobs))
	}
	s.walRequeued = uint64(len(requeued))
	if s.walReplayed > 0 {
		s.logf("wal: replayed %d jobs (%d executions requeued, %d torn records dropped)",
			s.walReplayed, len(requeued), s.wal.Dropped())
	}

	// Trim finished jobs beyond retention (newJobLocked was bypassed), so
	// a journal that grew across many restarts does not pin memory.
	s.evictFinishedLocked()

	// Rewrite the journal as exactly the restored state: one submitted
	// record per surviving job plus its terminal record. This bounds
	// journal growth and removes the compaction-window duplicates.
	var live []journal.Record
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		rj := byID[j.id]
		sub := journal.Record{
			Kind: journal.KindSubmitted, JobID: j.id, Seq: j.seq,
			Fingerprint: j.fp, Priority: rj.priority, Spec: specByFP[j.fp],
		}
		live = append(live, sub)
		switch {
		case j.canceled:
			live = append(live, journal.Record{
				Kind: journal.KindCancelled, JobID: j.id, Seq: j.seq, Fingerprint: j.fp,
			})
		case j.cached:
			live = append(live, journal.Record{
				Kind: journal.KindDone, Seq: j.seq, Fingerprint: j.fp,
			})
		case j.exec != nil && j.exec.state == StateFailed:
			live = append(live, journal.Record{
				Kind: journal.KindDone, Seq: j.seq, Fingerprint: j.fp, Error: j.exec.err.Error(),
			})
		}
	}
	return s.wal.Compact(live)
}

func hasDone(doneByFP map[string]string, fp string) bool {
	_, ok := doneByFP[fp]
	return ok
}

// requeueReplayedLocked finds or creates the execution for an
// incomplete replayed job and (on creation) requeues it with its
// original priority and sequence — Requeue bypasses the capacity bound,
// because these jobs were already admitted once.
func (s *Server) requeueReplayedLocked(requeued map[string]*execution, rj *replayJob, raw json.RawMessage) (*execution, error) {
	if ex, ok := requeued[rj.fp]; ok {
		return ex, nil
	}
	if len(raw) == 0 {
		return nil, errors.New("service: recovered job lost both its result and its spec")
	}
	var spec JobSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, fmt.Errorf("service: recovered spec undecodable: %w", err)
	}
	fj, err := spec.Job()
	if err != nil {
		return nil, fmt.Errorf("service: recovered spec invalid: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ex := &execution{
		fp:       rj.fp,
		job:      fj,
		spec:     spec,
		label:    fj.Algorithm.String() + "/" + fj.Workload,
		interval: spec.Options.IntervalCycles,
		priority: rj.priority,
		seq:      rj.seq,
		state:    StateQueued,
		ctx:      ctx,
		cancel:   cancel,
		hub:      newMetricsHub(),
		done:     make(chan struct{}),
	}
	if spec.DeadlineMS > 0 {
		// The original admission time did not survive the crash, so the
		// deadline window restarts at replay: generous to the job, and
		// strictly better than resurrecting it pre-expired.
		ex.deadline = time.Now().Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
		s.ensureMaintLocked()
	}
	s.queue.Requeue(ex)
	s.execs[rj.fp] = ex
	requeued[rj.fp] = ex
	return ex, nil
}

// terminalFailedExec builds an already-settled failed execution, so a
// job recovered in a failed state answers Status/Stream like any other.
func terminalFailedExec(fp string, seq uint64, msg string) *execution {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hub := newMetricsHub()
	hub.close()
	ex := &execution{
		fp: fp, seq: seq, state: StateFailed, err: errors.New(msg),
		ctx: ctx, cancel: cancel, hub: hub, done: make(chan struct{}),
	}
	close(ex.done)
	return ex
}

// evictFinishedLocked applies FinishedJobRetention, oldest-first — the
// same policy newJobLocked applies on admission.
func (s *Server) evictFinishedLocked() {
	for len(s.jobs) > s.cfg.FinishedJobRetention {
		evicted := false
		for i, id := range s.order {
			old, ok := s.jobs[id]
			if !ok {
				continue
			}
			if st := old.statusLocked().State; st == StateDone || st == StateFailed || st == StateCanceled {
				delete(s.jobs, id)
				s.order = append(s.order[:i:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
}
