package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"flexsnoop"
)

// This file is the federation layer: the coordinator's backend registry,
// the health checker, and the remote execution path with failover.
//
// A Server becomes a coordinator when its Config names static backends or
// sets Coordinator (workers then register themselves over HTTP). The
// execution substrate generalises from "the local worker pool" to a set
// of backends — the local pool plus any number of remote ringsimd
// daemons — and the dispatcher assigns each queued execution to the
// least-loaded healthy backend. Everything above the dispatch seam
// (queueing, dedup, the content-addressed cache, cancellation, drain) is
// unchanged: in particular the coordinator's result cache now fronts the
// whole fleet, so a sweep re-run against the coordinator is answered
// without touching any worker.

// backend is one execution substrate: the local worker pool (client ==
// nil) or a remote ringsimd daemon driven through a Client. All mutable
// fields are guarded by the owning Server's mutex; the prober and the
// run goroutines copy what they need out under the lock and do network
// I/O unlocked.
type backend struct {
	name   string  // "local" or the remote base URL
	client *Client // nil for the local pool

	slots    int  // max concurrent dispatches (local: Workers; remote: its worker count)
	inflight int  // executions currently dispatched here
	healthy  bool // eligible for dispatch (remote: last /readyz probe passed)
	dynamic  bool // registered via POST /v1/backends rather than Config.Backends

	lastErr  string    // most recent dispatch or probe failure
	lastSeen time.Time // last successful probe or registration heartbeat

	// Circuit breaker state (meaningful only when Config.BreakerFailures
	// > 0 and the backend is remote; DESIGN.md §12). The breaker refines
	// the binary healthy flag: healthy answers "is it reachable" (the
	// prober's question), the breaker answers "is it worth dispatching
	// to" (consecutive failures or chronic slowness open it, a half-open
	// probe dispatch closes it again).
	breaker       breakerState
	consecFails   int       // consecutive breaker-failure events while closed
	openUntil     time.Time // open → half-open transition time
	halfOpenProbe bool      // the single half-open probe dispatch is in flight
	breakerOpens  uint64    // cumulative closed/half-open → open transitions

	// Cumulative counters (reported per backend by /statsz).
	dispatched, completed, failed, failovers uint64

	// Last probe snapshot of the remote's own /statsz (zero for local).
	remoteQueueDepth int
	remoteHitRate    float64
}

// BackendRegistration is the wire body of POST /v1/backends: a worker
// announcing itself to a coordinator.
type BackendRegistration struct {
	// URL is the worker's base URL as the coordinator should dial it.
	URL string `json:"url"`
	// Workers is the worker's simulation pool size; the coordinator
	// dispatches at most this many concurrent jobs to it (0 = probe it).
	Workers int `json:"workers,omitempty"`
}

// breakerState is the per-backend circuit-breaker state machine:
// closed (dispatch normally) → open (quarantined for a cooldown after
// BreakerFailures consecutive failures) → half-open (one probe dispatch
// allowed; success closes, failure re-opens).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BackendStats is the /statsz view of one backend.
type BackendStats struct {
	Name       string `json:"name"`
	Local      bool   `json:"local,omitempty"`
	Healthy    bool   `json:"healthy"`
	Registered bool   `json:"registered,omitempty"` // via POST /v1/backends
	Slots      int    `json:"slots"`
	Inflight   int    `json:"inflight"`
	Dispatched uint64 `json:"dispatched"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Failovers  uint64 `json:"failovers"`
	// QueueDepth and CacheHitRate mirror the remote backend's own /statsz
	// as of the last health probe (zero for the local pool: its queue is
	// this server's queue).
	QueueDepth   int     `json:"queue_depth,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// BreakerState ("closed", "open", "half-open") and BreakerOpens are
	// present only when Config.BreakerFailures enables circuit breakers.
	BreakerState string `json:"breaker_state,omitempty"`
	BreakerOpens uint64 `json:"breaker_opens,omitempty"`
	LastError    string `json:"last_error,omitempty"`
}

func (b *backend) statsLocked(breakers bool) BackendStats {
	st := BackendStats{
		Name:         b.name,
		Local:        b.client == nil,
		Healthy:      b.healthy,
		Registered:   b.dynamic,
		Slots:        b.slots,
		Inflight:     b.inflight,
		Dispatched:   b.dispatched,
		Completed:    b.completed,
		Failed:       b.failed,
		Failovers:    b.failovers,
		QueueDepth:   b.remoteQueueDepth,
		CacheHitRate: b.remoteHitRate,
		LastError:    b.lastErr,
	}
	if breakers && b.client != nil {
		st.BreakerState = b.breaker.String()
		st.BreakerOpens = b.breakerOpens
	}
	return st
}

// availableLocked reports whether the backend could accept work at all
// (ignoring free slots): reachable, and — with breakers enabled — not
// quarantined by an open breaker still in its cooldown. Failover's
// "fail fast when nobody is left" decision keys off this.
func (b *backend) availableLocked(now time.Time, breakers bool) bool {
	if !b.healthy || b.slots <= 0 {
		return false
	}
	if !breakers || b.client == nil {
		return true
	}
	return b.breaker != breakerOpen || !now.Before(b.openUntil)
}

// eligibleLocked is availableLocked plus a free slot, and — half-open —
// at most one probe dispatch in flight.
func (b *backend) eligibleLocked(now time.Time, breakers bool) bool {
	if !b.availableLocked(now, breakers) || b.inflight >= b.slots {
		return false
	}
	if breakers && b.client != nil && b.breaker == breakerHalfOpen && b.halfOpenProbe {
		return false
	}
	return true
}

// federated reports whether this server is a coordinator.
func (c Config) federated() bool { return c.Coordinator || len(c.Backends) > 0 }

// RegisterBackend adds a remote backend (or refreshes an existing one —
// registration doubles as a heartbeat). Only coordinators accept
// registrations.
func (s *Server) RegisterBackend(reg BackendRegistration) error {
	if !s.cfg.federated() {
		return fmt.Errorf("%w: not a coordinator", ErrNotCoordinator)
	}
	url := strings.TrimRight(strings.TrimSpace(reg.URL), "/")
	if url == "" || !strings.Contains(url, "://") {
		return fmt.Errorf("%w: backend URL %q", flexsnoop.ErrBadConfig, reg.URL)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.backends {
		if b.name == url {
			if reg.Workers > 0 {
				b.slots = reg.Workers
			}
			b.lastSeen = time.Now()
			if !b.healthy {
				b.healthy = true
				b.lastErr = ""
				s.cond.Broadcast() // a waiting dispatcher may now have a slot
			}
			return nil
		}
	}
	b := s.newRemoteBackendLocked(url, reg.Workers)
	b.dynamic = true
	s.logf("backend %s registered (%d slots)", b.name, b.slots)
	s.cond.Broadcast()
	return nil
}

// newRemoteBackendLocked appends a remote backend in the optimistically
// healthy state: the first dispatch or probe corrects it if it is down,
// and a failed dispatch fails over rather than failing the job.
func (s *Server) newRemoteBackendLocked(url string, workers int) *backend {
	if workers <= 0 {
		workers = defaultRemoteSlots
	}
	b := &backend{
		name: url,
		// Transport retries are disabled: the coordinator's failover IS its
		// retry mechanism, and it needs transport errors surfaced promptly
		// to mark the backend unhealthy and requeue elsewhere.
		client:  &Client{BaseURL: url, PollInterval: s.cfg.RemotePoll, MaxTransportRetries: -1},
		slots:   workers,
		healthy: true,
	}
	s.backends = append(s.backends, b)
	return b
}

// defaultRemoteSlots bounds dispatch to a remote backend whose pool size
// is not yet known (static -backends entry before its first /statsz
// probe). The first probe replaces it with the worker's real pool size.
const defaultRemoteSlots = 4

// pickLocked returns the eligible backend (healthy, breaker permitting,
// free capacity) that is least loaded (lowest inflight/slots fraction;
// ties go to the earlier backend, so the local pool — always index 0
// when present — wins a dead heat). Nil when every backend is busy,
// unhealthy, quarantined, or absent.
func (s *Server) pickLocked() *backend { return s.pickExcludingLocked(nil) }

// pickHedgeLocked is pickLocked excluding the primary backend: a hedge
// on the same substrate would only duplicate the same failure domain.
func (s *Server) pickHedgeLocked(primary *backend) *backend {
	return s.pickExcludingLocked(primary)
}

func (s *Server) pickExcludingLocked(skip *backend) *backend {
	now := time.Now()
	breakers := s.cfg.BreakerFailures > 0
	var best *backend
	var bestLoad float64
	for _, b := range s.backends {
		if b == skip || !b.eligibleLocked(now, breakers) {
			continue
		}
		load := float64(b.inflight) / float64(b.slots)
		if best == nil || load < bestLoad {
			best, bestLoad = b, load
		}
	}
	return best
}

// anyAvailableLocked reports whether any backend (local included) could
// currently accept work, busy or not — open breakers mid-cooldown do
// not count, so a job failing over off the last live backend fails fast
// instead of parking forever.
func (s *Server) anyAvailableLocked() bool {
	now := time.Now()
	breakers := s.cfg.BreakerFailures > 0
	for _, b := range s.backends {
		if b.availableLocked(now, breakers) {
			return true
		}
	}
	return false
}

// backendObserveLocked feeds one finished dispatch attempt into the
// backend's circuit breaker: transient failures (and, with
// BreakerLatency set, chronically slow successes) count against it,
// clean successes reset it. No-op with breakers disabled, for the local
// pool (its failures are the job's, not the substrate's), and for
// cancellations.
func (s *Server) backendObserveLocked(b *backend, err error, latency time.Duration) {
	if s.cfg.BreakerFailures <= 0 || b.client == nil {
		return
	}
	b.halfOpenProbe = false
	switch {
	case err == nil:
		if s.cfg.BreakerLatency > 0 && latency > s.cfg.BreakerLatency {
			s.breakerFailureLocked(b, fmt.Errorf("dispatch took %s, over the %s latency bound",
				latency.Round(time.Millisecond), s.cfg.BreakerLatency))
			return
		}
		if b.breaker != breakerClosed {
			s.logf("backend %s breaker closed (probe succeeded)", b.name)
		}
		b.breaker = breakerClosed
		b.consecFails = 0
	case transient(err):
		s.breakerFailureLocked(b, err)
	}
}

// breakerFailureLocked records one breaker-failure event: the threshold
// of consecutive failures — or any failure of a half-open probe — opens
// the breaker for a cooldown.
func (s *Server) breakerFailureLocked(b *backend, err error) {
	b.consecFails++
	b.lastErr = err.Error()
	if b.breaker == breakerHalfOpen || b.consecFails >= s.cfg.BreakerFailures {
		if b.breaker != breakerOpen {
			b.breakerOpens++
			s.logf("backend %s breaker open for %s (%d consecutive failures, last: %v)",
				b.name, s.cfg.BreakerCooldown, b.consecFails, err)
		}
		b.breaker = breakerOpen
		b.openUntil = time.Now().Add(s.cfg.BreakerCooldown)
	}
}

// transientError marks a dispatch failure as the backend's fault rather
// than the job's: the execution is eligible for failover to another
// backend.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// permanentError marks a dispatch failure as the job's own: retrying on
// another backend would deterministically reproduce it.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// transient reports whether a dispatch failure should fail over. A
// deterministic simulator makes the classification crisp: a spec the
// worker rejected (HTTP 400) or a simulation that failed would do exactly
// the same anywhere, so only backend-side conditions — transport errors,
// 5xx, a draining or restarted worker — are worth a retry elsewhere. An
// expired deadline or an admission-control shed is the job's fate, not
// the backend's fault.
func transient(err error) bool {
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	var pe *permanentError
	if errors.As(err, &pe) {
		return false
	}
	if errors.Is(err, ErrExpired) || errors.Is(err, errShed) {
		return false
	}
	var re *remoteError
	if errors.As(err, &re) {
		return re.StatusCode != http.StatusBadRequest
	}
	// Not an API response at all: the backend is unreachable.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// runRemote executes one attempt of ex on a remote backend: submit
// (with backpressure backoff), wait for a terminal state, translate it
// back into the local execution's terms. ctx is the attempt's context —
// the execution's own for the primary, a private one for a hedge — and
// its cancellation is propagated: the poll loop stops immediately and
// the remote job is cancelled best-effort so the worker's slot frees
// promptly.
func (s *Server) runRemote(b *backend, ex *execution, ctx context.Context) (flexsnoop.Result, error) {
	spec := ex.spec
	spec.Version = SpecVersion
	if !ex.deadline.IsZero() {
		// End-to-end deadline: the worker gets only the budget that is
		// left after this job's time in the coordinator's queue, and the
		// coordinator stops polling the moment the deadline passes.
		remaining := time.Until(ex.deadline)
		if remaining <= 0 {
			return flexsnoop.Result{}, fmt.Errorf("%w: before remote dispatch to %s", ErrExpired, b.name)
		}
		if spec.DeadlineMS = int64(remaining / time.Millisecond); spec.DeadlineMS < 1 {
			spec.DeadlineMS = 1
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, ex.deadline)
		defer cancel()
	}
	st, err := b.client.submitBackoff(ctx, spec)
	if err != nil {
		if expired := remoteExpiry(ctx, ex); expired != nil {
			return flexsnoop.Result{}, expired
		}
		return flexsnoop.Result{}, err
	}
	switch st.State {
	case StateQueued, StateRunning:
		st, err = b.client.Wait(ctx, st.ID)
		if err != nil {
			if expired := remoteExpiry(ctx, ex); expired != nil {
				// Release the worker's slot best-effort; the job is dead.
				cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, _ = b.client.Cancel(cancelCtx, st.ID)
				cancel()
				return flexsnoop.Result{}, expired
			}
			if ctx.Err() != nil {
				// Our side cancelled (job cancel or drain): release the
				// worker's slot best-effort, then report the cancellation.
				cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, _ = b.client.Cancel(cancelCtx, st.ID)
				cancel()
				return flexsnoop.Result{}, context.Canceled
			}
			return flexsnoop.Result{}, err
		}
	}
	switch st.State {
	case StateDone:
		if st.Result == nil {
			return flexsnoop.Result{}, &transientError{fmt.Errorf("backend %s: done without a result", b.name)}
		}
		return *st.Result, nil
	case StateCanceled:
		if expired := remoteExpiry(ctx, ex); expired != nil {
			return flexsnoop.Result{}, expired
		}
		if ctx.Err() != nil {
			return flexsnoop.Result{}, context.Canceled
		}
		// The worker cancelled it (drain): not this job's fault.
		return flexsnoop.Result{}, &transientError{fmt.Errorf("backend %s canceled the job (draining?)", b.name)}
	default:
		// The worker enforced the propagated deadline itself: surface it
		// as this job's expiry, not as a backend failure.
		if strings.Contains(st.Error, ErrExpired.Error()) {
			return flexsnoop.Result{}, fmt.Errorf("%w: on %s: %s", ErrExpired, b.name, st.Error)
		}
		// A deterministic simulation failure: retrying elsewhere would
		// reproduce it identically, so surface the worker's error as
		// final — and never as a breaker or failover signal.
		return flexsnoop.Result{}, &permanentError{fmt.Errorf("backend %s: %s", b.name, st.Error)}
	}
}

// remoteExpiry translates an attempt abort into the job's expiry when
// the execution's own deadline — not a cancellation — fired: the
// attempt context carries the deadline (WithDeadline above), and the
// execution context stays live unless the job was cancelled or drained.
func remoteExpiry(ctx context.Context, ex *execution) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) && ex.ctx.Err() == nil {
		return fmt.Errorf("%w: deadline passed mid-dispatch", ErrExpired)
	}
	return nil
}

// prober is the coordinator's health checker: every HealthInterval it
// probes each remote backend's /readyz (health) and /statsz (load and
// pool size), marking backends unhealthy — and therefore ineligible for
// dispatch — the moment they stop answering, and waking the dispatcher
// when one recovers.
func (s *Server) prober() {
	defer s.wg.Done()
	interval := s.cfg.HealthInterval
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.probeBackends(interval)
		}
	}
}

// probeBackends runs one probe round over a snapshot of the remote
// backends.
func (s *Server) probeBackends(timeout time.Duration) {
	s.mu.Lock()
	targets := make([]*backend, 0, len(s.backends))
	for _, b := range s.backends {
		if b.client != nil {
			targets = append(targets, b)
		}
	}
	s.mu.Unlock()

	for _, b := range targets {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err := b.client.Ready(ctx)
		var remote Stats
		if err == nil {
			remote, err = b.client.Stats(ctx)
		}
		cancel()

		s.mu.Lock()
		if err != nil {
			if b.healthy {
				s.logf("backend %s unhealthy: %v", b.name, err)
			}
			b.healthy = false
			b.lastErr = err.Error()
		} else {
			if !b.healthy {
				s.logf("backend %s healthy again (%d workers)", b.name, remote.Workers)
				s.cond.Broadcast() // dispatcher may have been starved of slots
			}
			b.healthy = true
			b.lastErr = ""
			b.lastSeen = time.Now()
			if remote.Workers > 0 {
				b.slots = remote.Workers
			}
			b.remoteQueueDepth = remote.QueueDepth
			b.remoteHitRate = remote.CacheHitRate
		}
		s.mu.Unlock()
	}
}

// ErrNotCoordinator: a backend registration sent to a plain (non
// federated) server.
var ErrNotCoordinator = errors.New("service: server is not a coordinator")
