package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"flexsnoop"
)

// This file is the federation layer: the coordinator's backend registry,
// the health checker, and the remote execution path with failover.
//
// A Server becomes a coordinator when its Config names static backends or
// sets Coordinator (workers then register themselves over HTTP). The
// execution substrate generalises from "the local worker pool" to a set
// of backends — the local pool plus any number of remote ringsimd
// daemons — and the dispatcher assigns each queued execution to the
// least-loaded healthy backend. Everything above the dispatch seam
// (queueing, dedup, the content-addressed cache, cancellation, drain) is
// unchanged: in particular the coordinator's result cache now fronts the
// whole fleet, so a sweep re-run against the coordinator is answered
// without touching any worker.

// backend is one execution substrate: the local worker pool (client ==
// nil) or a remote ringsimd daemon driven through a Client. All mutable
// fields are guarded by the owning Server's mutex; the prober and the
// run goroutines copy what they need out under the lock and do network
// I/O unlocked.
type backend struct {
	name   string  // "local" or the remote base URL
	client *Client // nil for the local pool

	slots    int  // max concurrent dispatches (local: Workers; remote: its worker count)
	inflight int  // executions currently dispatched here
	healthy  bool // eligible for dispatch (remote: last /readyz probe passed)
	dynamic  bool // registered via POST /v1/backends rather than Config.Backends

	lastErr  string    // most recent dispatch or probe failure
	lastSeen time.Time // last successful probe or registration heartbeat

	// Cumulative counters (reported per backend by /statsz).
	dispatched, completed, failed, failovers uint64

	// Last probe snapshot of the remote's own /statsz (zero for local).
	remoteQueueDepth int
	remoteHitRate    float64
}

// BackendRegistration is the wire body of POST /v1/backends: a worker
// announcing itself to a coordinator.
type BackendRegistration struct {
	// URL is the worker's base URL as the coordinator should dial it.
	URL string `json:"url"`
	// Workers is the worker's simulation pool size; the coordinator
	// dispatches at most this many concurrent jobs to it (0 = probe it).
	Workers int `json:"workers,omitempty"`
}

// BackendStats is the /statsz view of one backend.
type BackendStats struct {
	Name       string `json:"name"`
	Local      bool   `json:"local,omitempty"`
	Healthy    bool   `json:"healthy"`
	Registered bool   `json:"registered,omitempty"` // via POST /v1/backends
	Slots      int    `json:"slots"`
	Inflight   int    `json:"inflight"`
	Dispatched uint64 `json:"dispatched"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Failovers  uint64 `json:"failovers"`
	// QueueDepth and CacheHitRate mirror the remote backend's own /statsz
	// as of the last health probe (zero for the local pool: its queue is
	// this server's queue).
	QueueDepth   int     `json:"queue_depth,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	LastError    string  `json:"last_error,omitempty"`
}

func (b *backend) statsLocked() BackendStats {
	return BackendStats{
		Name:         b.name,
		Local:        b.client == nil,
		Healthy:      b.healthy,
		Registered:   b.dynamic,
		Slots:        b.slots,
		Inflight:     b.inflight,
		Dispatched:   b.dispatched,
		Completed:    b.completed,
		Failed:       b.failed,
		Failovers:    b.failovers,
		QueueDepth:   b.remoteQueueDepth,
		CacheHitRate: b.remoteHitRate,
		LastError:    b.lastErr,
	}
}

// federated reports whether this server is a coordinator.
func (c Config) federated() bool { return c.Coordinator || len(c.Backends) > 0 }

// RegisterBackend adds a remote backend (or refreshes an existing one —
// registration doubles as a heartbeat). Only coordinators accept
// registrations.
func (s *Server) RegisterBackend(reg BackendRegistration) error {
	if !s.cfg.federated() {
		return fmt.Errorf("%w: not a coordinator", ErrNotCoordinator)
	}
	url := strings.TrimRight(strings.TrimSpace(reg.URL), "/")
	if url == "" || !strings.Contains(url, "://") {
		return fmt.Errorf("%w: backend URL %q", flexsnoop.ErrBadConfig, reg.URL)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.backends {
		if b.name == url {
			if reg.Workers > 0 {
				b.slots = reg.Workers
			}
			b.lastSeen = time.Now()
			if !b.healthy {
				b.healthy = true
				b.lastErr = ""
				s.cond.Broadcast() // a waiting dispatcher may now have a slot
			}
			return nil
		}
	}
	b := s.newRemoteBackendLocked(url, reg.Workers)
	b.dynamic = true
	s.logf("backend %s registered (%d slots)", b.name, b.slots)
	s.cond.Broadcast()
	return nil
}

// newRemoteBackendLocked appends a remote backend in the optimistically
// healthy state: the first dispatch or probe corrects it if it is down,
// and a failed dispatch fails over rather than failing the job.
func (s *Server) newRemoteBackendLocked(url string, workers int) *backend {
	if workers <= 0 {
		workers = defaultRemoteSlots
	}
	b := &backend{
		name: url,
		// Transport retries are disabled: the coordinator's failover IS its
		// retry mechanism, and it needs transport errors surfaced promptly
		// to mark the backend unhealthy and requeue elsewhere.
		client:  &Client{BaseURL: url, PollInterval: s.cfg.RemotePoll, MaxTransportRetries: -1},
		slots:   workers,
		healthy: true,
	}
	s.backends = append(s.backends, b)
	return b
}

// defaultRemoteSlots bounds dispatch to a remote backend whose pool size
// is not yet known (static -backends entry before its first /statsz
// probe). The first probe replaces it with the worker's real pool size.
const defaultRemoteSlots = 4

// pickLocked returns the healthy backend with free capacity that is
// least loaded (lowest inflight/slots fraction; ties go to the earlier
// backend, so the local pool — always index 0 when present — wins a
// dead heat). Nil when every backend is busy, unhealthy, or absent.
func (s *Server) pickLocked() *backend {
	var best *backend
	var bestLoad float64
	for _, b := range s.backends {
		if !b.healthy || b.slots <= 0 || b.inflight >= b.slots {
			continue
		}
		load := float64(b.inflight) / float64(b.slots)
		if best == nil || load < bestLoad {
			best, bestLoad = b, load
		}
	}
	return best
}

// pickHedgeLocked is pickLocked excluding the primary backend: a hedge
// on the same substrate would only duplicate the same failure domain.
func (s *Server) pickHedgeLocked(primary *backend) *backend {
	var best *backend
	var bestLoad float64
	for _, b := range s.backends {
		if b == primary || !b.healthy || b.slots <= 0 || b.inflight >= b.slots {
			continue
		}
		load := float64(b.inflight) / float64(b.slots)
		if best == nil || load < bestLoad {
			best, bestLoad = b, load
		}
	}
	return best
}

// anyHealthyLocked reports whether any backend (local included) is
// currently eligible for dispatch, busy or not.
func (s *Server) anyHealthyLocked() bool {
	for _, b := range s.backends {
		if b.healthy && b.slots > 0 {
			return true
		}
	}
	return false
}

// transientError marks a dispatch failure as the backend's fault rather
// than the job's: the execution is eligible for failover to another
// backend.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// transient reports whether a dispatch failure should fail over. A
// deterministic simulator makes the classification crisp: a spec the
// worker rejected (HTTP 400) or a simulation that failed would do exactly
// the same anywhere, so only backend-side conditions — transport errors,
// 5xx, a draining or restarted worker — are worth a retry elsewhere.
func transient(err error) bool {
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	var re *remoteError
	if errors.As(err, &re) {
		return re.StatusCode != http.StatusBadRequest
	}
	// Not an API response at all: the backend is unreachable.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// runRemote executes one attempt of ex on a remote backend: submit
// (with backpressure backoff), wait for a terminal state, translate it
// back into the local execution's terms. ctx is the attempt's context —
// the execution's own for the primary, a private one for a hedge — and
// its cancellation is propagated: the poll loop stops immediately and
// the remote job is cancelled best-effort so the worker's slot frees
// promptly.
func (s *Server) runRemote(b *backend, ex *execution, ctx context.Context) (flexsnoop.Result, error) {
	spec := ex.spec
	spec.Version = SpecVersion
	st, err := b.client.submitBackoff(ctx, spec)
	if err != nil {
		return flexsnoop.Result{}, err
	}
	switch st.State {
	case StateQueued, StateRunning:
		st, err = b.client.Wait(ctx, st.ID)
		if err != nil {
			if ctx.Err() != nil {
				// Our side cancelled (job cancel or drain): release the
				// worker's slot best-effort, then report the cancellation.
				cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, _ = b.client.Cancel(cancelCtx, st.ID)
				cancel()
				return flexsnoop.Result{}, context.Canceled
			}
			return flexsnoop.Result{}, err
		}
	}
	switch st.State {
	case StateDone:
		if st.Result == nil {
			return flexsnoop.Result{}, &transientError{fmt.Errorf("backend %s: done without a result", b.name)}
		}
		return *st.Result, nil
	case StateCanceled:
		if ctx.Err() != nil {
			return flexsnoop.Result{}, context.Canceled
		}
		// The worker cancelled it (drain): not this job's fault.
		return flexsnoop.Result{}, &transientError{fmt.Errorf("backend %s canceled the job (draining?)", b.name)}
	default:
		// A deterministic simulation failure: retrying elsewhere would
		// reproduce it, so surface the worker's error as final.
		return flexsnoop.Result{}, fmt.Errorf("backend %s: %s", b.name, st.Error)
	}
}

// prober is the coordinator's health checker: every HealthInterval it
// probes each remote backend's /readyz (health) and /statsz (load and
// pool size), marking backends unhealthy — and therefore ineligible for
// dispatch — the moment they stop answering, and waking the dispatcher
// when one recovers.
func (s *Server) prober() {
	defer s.wg.Done()
	interval := s.cfg.HealthInterval
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.probeBackends(interval)
		}
	}
}

// probeBackends runs one probe round over a snapshot of the remote
// backends.
func (s *Server) probeBackends(timeout time.Duration) {
	s.mu.Lock()
	targets := make([]*backend, 0, len(s.backends))
	for _, b := range s.backends {
		if b.client != nil {
			targets = append(targets, b)
		}
	}
	s.mu.Unlock()

	for _, b := range targets {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		err := b.client.Ready(ctx)
		var remote Stats
		if err == nil {
			remote, err = b.client.Stats(ctx)
		}
		cancel()

		s.mu.Lock()
		if err != nil {
			if b.healthy {
				s.logf("backend %s unhealthy: %v", b.name, err)
			}
			b.healthy = false
			b.lastErr = err.Error()
		} else {
			if !b.healthy {
				s.logf("backend %s healthy again (%d workers)", b.name, remote.Workers)
				s.cond.Broadcast() // dispatcher may have been starved of slots
			}
			b.healthy = true
			b.lastErr = ""
			b.lastSeen = time.Now()
			if remote.Workers > 0 {
				b.slots = remote.Workers
			}
			b.remoteQueueDepth = remote.QueueDepth
			b.remoteHitRate = remote.CacheHitRate
		}
		s.mu.Unlock()
	}
}

// ErrNotCoordinator: a backend registration sent to a plain (non
// federated) server.
var ErrNotCoordinator = errors.New("service: server is not a coordinator")
