package service

import (
	"container/heap"
	"time"
)

// jobQueue is a bounded priority queue of pending executions: higher
// Priority first, FIFO within a priority level (ordered by admission
// sequence). Push refuses work beyond the capacity — the caller turns
// that into HTTP 429 backpressure instead of queueing unboundedly.
//
// The queue is not self-synchronising; the Server's mutex guards it.
type jobQueue struct {
	capacity int
	items    execHeap
}

func newJobQueue(capacity int) *jobQueue {
	return &jobQueue{capacity: capacity}
}

// Len reports the queue depth.
func (q *jobQueue) Len() int { return len(q.items) }

// Push admits an execution, or reports false when the queue is full.
func (q *jobQueue) Push(ex *execution) bool {
	if len(q.items) >= q.capacity {
		return false
	}
	ex.enqueuedAt = time.Now()
	heap.Push(&q.items, ex)
	return true
}

// Requeue re-admits an execution past the capacity check: a job that was
// already admitted once (and is coming back off a dying backend for
// failover) must not be lost to backpressure meant for new submissions.
// It keeps its original admission sequence, so it sorts ahead of
// everything submitted after it.
func (q *jobQueue) Requeue(ex *execution) {
	ex.enqueuedAt = time.Now()
	heap.Push(&q.items, ex)
}

// OldestEnqueue returns the earliest enqueue time of any queued
// execution — the queue's head-of-line sojourn anchor — or the zero time
// when the queue is empty. O(n) over a bounded queue.
func (q *jobQueue) OldestEnqueue() time.Time {
	var oldest time.Time
	for _, ex := range q.items {
		if oldest.IsZero() || ex.enqueuedAt.Before(oldest) {
			oldest = ex.enqueuedAt
		}
	}
	return oldest
}

// ShedLowest removes and returns the execution overload shedding should
// drop first: the lowest priority, and within that the most recently
// admitted (tail drop — the oldest job of a class has waited longest and
// is closest to dispatch). High-priority (positive-priority) work is
// never shed: once only positive-priority jobs remain, aging stops and
// the daemon degrades into a high-priority-only service instead of a
// uniformly lossy one. Nil when the queue is empty or all-high-priority.
func (q *jobQueue) ShedLowest() *execution {
	var victim *execution
	for _, ex := range q.items {
		if ex.priority > 0 {
			continue
		}
		if victim == nil || ex.priority < victim.priority ||
			(ex.priority == victim.priority && ex.seq > victim.seq) {
			victim = ex
		}
	}
	if victim != nil {
		heap.Remove(&q.items, victim.queueIndex)
	}
	return victim
}

// TakeExpired removes and returns every queued execution whose deadline
// has already passed: work whose caller has given up must never consume
// a worker slot.
func (q *jobQueue) TakeExpired(now time.Time) []*execution {
	var expired []*execution
	for _, ex := range q.items {
		if !ex.deadline.IsZero() && !now.Before(ex.deadline) {
			expired = append(expired, ex)
		}
	}
	for _, ex := range expired {
		heap.Remove(&q.items, ex.queueIndex)
	}
	return expired
}

// Pop removes and returns the highest-priority execution, or nil.
func (q *jobQueue) Pop() *execution {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(&q.items).(*execution)
}

// Remove detaches a queued execution (cancellation), reporting whether it
// was actually queued.
func (q *jobQueue) Remove(ex *execution) bool {
	if ex.queueIndex < 0 || ex.queueIndex >= len(q.items) || q.items[ex.queueIndex] != ex {
		return false
	}
	heap.Remove(&q.items, ex.queueIndex)
	return true
}

// execHeap implements container/heap ordering: max priority, then min
// admission sequence.
type execHeap []*execution

func (h execHeap) Len() int { return len(h) }
func (h execHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h execHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].queueIndex = i
	h[j].queueIndex = j
}
func (h *execHeap) Push(x any) {
	ex := x.(*execution)
	ex.queueIndex = len(*h)
	*h = append(*h, ex)
}
func (h *execHeap) Pop() any {
	old := *h
	n := len(old)
	ex := old[n-1]
	old[n-1] = nil
	ex.queueIndex = -1
	*h = old[:n-1]
	return ex
}
