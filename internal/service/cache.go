package service

import (
	"container/list"

	"flexsnoop"
)

// resultCache is the content-addressed result store: completed Results
// keyed by job fingerprint, evicted least-recently-used beyond the
// capacity. Because the simulator is deterministic — a rerun of the same
// fingerprint is bit-identical — serving a cached Result is exactly
// equivalent to running the job again.
//
// With a disk tier (Config.CacheDir), the memory LRU fronts a
// persistent, checksum-verified store: a memory miss falls through to
// disk, a disk hit is promoted back into memory, and every Put is
// written through — so results survive a crash and an LRU eviction is
// only ever a demotion, never a loss.
//
// The cache is not self-synchronising; the Server's mutex guards it.
type resultCache struct {
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	disk     *diskCache // nil without Config.CacheDir
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	fp     string
	result flexsnoop.Result
}

func newResultCache(capacity int, disk *diskCache) *resultCache {
	return &resultCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		disk:     disk,
	}
}

// Get returns the cached result for a fingerprint and counts the lookup.
// A memory miss falls through to the disk tier; a verified disk hit is
// promoted into the memory LRU.
func (c *resultCache) Get(fp string) (flexsnoop.Result, bool) {
	el, ok := c.entries[fp]
	if !ok {
		if c.disk != nil {
			if res, ok := c.disk.Get(fp); ok {
				c.hits++
				c.putMemory(fp, res)
				return res, true
			}
		}
		c.misses++
		return flexsnoop.Result{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a completed result, writing through to the disk tier and
// evicting the memory LRU entry beyond capacity. The disk write error
// (if any) is returned so the caller can log it; the memory tier is
// updated regardless.
func (c *resultCache) Put(fp string, res flexsnoop.Result) error {
	var err error
	if c.disk != nil {
		err = c.disk.Put(fp, res)
	}
	c.putMemory(fp, res)
	return err
}

func (c *resultCache) putMemory(fp string, res flexsnoop.Result) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.entries[fp]; ok {
		el.Value.(*cacheEntry).result = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[fp] = c.order.PushFront(&cacheEntry{fp: fp, result: res})
	for len(c.entries) > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).fp)
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int { return len(c.entries) }
