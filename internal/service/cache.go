package service

import (
	"container/list"

	"flexsnoop"
)

// resultCache is the content-addressed result store: completed Results
// keyed by job fingerprint, evicted least-recently-used beyond the
// capacity. Because the simulator is deterministic — a rerun of the same
// fingerprint is bit-identical — serving a cached Result is exactly
// equivalent to running the job again.
//
// The cache is not self-synchronising; the Server's mutex guards it.
type resultCache struct {
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	fp     string
	result flexsnoop.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Get returns the cached result for a fingerprint and counts the lookup.
func (c *resultCache) Get(fp string) (flexsnoop.Result, bool) {
	el, ok := c.entries[fp]
	if !ok {
		c.misses++
		return flexsnoop.Result{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a completed result, evicting the LRU entry beyond capacity.
func (c *resultCache) Put(fp string, res flexsnoop.Result) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.entries[fp]; ok {
		el.Value.(*cacheEntry).result = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[fp] = c.order.PushFront(&cacheEntry{fp: fp, result: res})
	for len(c.entries) > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).fp)
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int { return len(c.entries) }
