package protocol

import (
	"fmt"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/core"
	"flexsnoop/internal/ring"
	"flexsnoop/internal/sim"
)

const predictorSupersetKind = config.PredictorSuperset

// ringMode is a node's chosen handling for one in-flight transaction.
type ringMode int

const (
	modeNone ringMode = iota
	// modeSquash: the (split) request passed here squashed; mark the
	// trailing reply when it arrives.
	modeSquash
	// modeFTS: ForwardThenSnoop — request forwarded, local snoop pending,
	// reply to be merged.
	modeFTS
	// modeSTF: SnoopThenForward — message held until the snoop completes.
	modeSTF
	// modeBlocked: the request is held behind a local write whose data is
	// in limbo; its trailing reply must queue behind it, not overtake.
	modeBlocked
)

// ringState is a node's per-transaction bookkeeping for split messages
// (Table 2).
type ringState struct {
	mode ringMode

	// debug provenance
	dbgKind      ring.Kind
	dbgRequester int

	// predictedPositive: the predictor said "supplier here" (trains the
	// exclude cache on a miss).
	predictedPositive bool

	// heldMsg (STF) is the message held while snooping.
	heldMsg *ring.Message
	// replyHalf (FTS) is the reply component retained when splitting a
	// combined message.
	replyHalf *ring.Message
	// pendingReply is a trailing reply that arrived before the local
	// snoop completed.
	pendingReply *ring.Message
	// awaitingTrailingReply: the input was request-only; a reply trails.
	awaitingTrailingReply bool

	// blockedOn is the local write transaction holding this message's
	// request (modeBlocked).
	blockedOn *txn

	outcomeReady bool
	localFound   bool
	// localSquash: the supplier squashed this write (in-flight supplied
	// read must serialize first).
	localSquash  bool
	sentOwnReply bool

	localMask   uint64
	localSharer bool
	localInvAck int
}

// forward transmits a message segment from a node to its ring successor
// and schedules delivery, charging link energy.
func (e *Engine) forward(ringIdx, from int, m *ring.Message) {
	e.forwardAt(e.now(), ringIdx, from, m)
}

// forwardAt is forward with an explicit earliest departure time (predictor
// or snoop delays). The transmission is buffered as a txIntent and
// arbitrated when the cycle's events have drained (see shard.go), so the
// link-arbitration order within a cycle is the handler execution order
// regardless of whether ShardRings is enabled.
func (e *Engine) forwardAt(depart sim.Time, ringIdx, from int, m *ring.Message) {
	if debugTxn != 0 && m.Txn == debugTxn {
		fmt.Printf("[%d] fwd from=%d req=%v rep=%v found=%v sq=%v\n", e.now(), from, m.HasRequest, m.HasReply, m.Found, m.Squashed)
	}
	e.meter.AddRingLinks(1)
	e.txq[ringIdx] = append(e.txq[ringIdx], txIntent{depart: depart, from: from, m: m})
	e.txTotal++
}

var debugTxn ring.TxnID
var debugAddr cache.LineAddr
var debugAddrOn bool

// SetDebugAddr enables line-event tracing for one address (tests).
func SetDebugAddr(a cache.LineAddr) { debugAddr, debugAddrOn = a, true }

// lineTrace prints a line-event when tracing is enabled for the address.
func (e *Engine) lineTrace(addr cache.LineAddr, format string, args ...any) {
	if debugAddrOn && addr == debugAddr {
		fmt.Printf("[%d] %s\n", e.now(), fmt.Sprintf(format, args...))
	}
}

// deliver processes a message arriving at a node.
func (e *Engine) deliver(ringIdx, nodeID int, m *ring.Message) {
	if debugTxn != 0 && m.Txn == debugTxn {
		fmt.Printf("[%d] dlv at=%d req=%v rep=%v found=%v sq=%v\n", e.now(), nodeID, m.HasRequest, m.HasReply, m.Found, m.Squashed)
	}
	if m.Dup {
		// A fault-injected duplicate: the receiver's sequence check
		// rejects it on arrival, whatever it carries.
		e.msgPool.Put(m)
		return
	}
	if m.Requester == nodeID {
		e.consumeReturn(ringIdx, m)
		return
	}
	if m.HasRequest {
		e.handleRequest(ringIdx, nodeID, m)
		return
	}
	e.handleReplyOnly(ringIdx, nodeID, m)
}

// handleRequest processes a message carrying a request component
// (combined or request-only).
func (e *Engine) handleRequest(ringIdx, nodeID int, m *ring.Message) {
	n := e.nodes[nodeID]

	// Prefetch heuristic: the gateway sees every passing read request;
	// at the line's home node it may start a DRAM prefetch (Section 2.2).
	if m.Kind == ring.ReadSnoop && !m.Squashed && !m.Found && e.homeOf(m.Addr) == nodeID {
		n.mem.NotifySnoop(e.now(), m.Addr)
	}

	// Squashed transactions perform no further snoops.
	if m.Squashed {
		if !m.HasReply {
			st := n.stateForMsg(m)
			st.mode = modeSquash
		}
		e.forward(ringIdx, nodeID, m)
		return
	}

	// Collision detection (Section 2.1.4): messages may be squashed or
	// briefly held; the node's own transaction may be squashed instead.
	if blocked := e.handleCollision(ringIdx, nodeID, m); blocked {
		return
	}
	if m.Squashed { // lost the collision just now
		if !m.HasReply {
			st := n.stateForMsg(m)
			st.mode = modeSquash
		}
		e.forward(ringIdx, nodeID, m)
		return
	}

	// A read whose supplier is already found needs no more snoops: the
	// message traverses the rest of the ring as a mere reply.
	if m.Kind == ring.ReadSnoop && m.Found {
		e.forward(ringIdx, nodeID, m)
		return
	}

	if m.Kind == ring.ReadSnoop {
		e.handleReadRequest(ringIdx, nodeID, m)
	} else {
		e.handleWriteRequest(ringIdx, nodeID, m)
	}
}

// handleReadRequest applies the node's Flexible Snooping policy.
func (e *Engine) handleReadRequest(ringIdx, nodeID int, m *ring.Message) {
	n := e.nodes[nodeID]
	var decision core.Decision
	if e.forcedEager(m.Addr) {
		// The watchdog degraded this line: forward eagerly and snoop in
		// parallel at every node, bypassing predictor and filtering.
		decision = core.Decision{Primitive: core.ForwardThenSnoop}
	} else if n.pred != nil {
		// predictFn is a persistent per-node closure (built in NewEngine)
		// that reads these scratch fields; rebuilding it per call was the
		// single largest allocation source on the hot path.
		n.predictAddr = m.Addr
		n.predictActual = n.supplierIdx.Has(uint64(m.Addr))
		decision = n.policy.DecideRead(n.predictFn)
	} else {
		decision = n.policy.DecideRead(nil)
	}
	delay := sim.Time(0)
	if decision.CheckedPredictor {
		delay = sim.Time(e.predCfg.AccessCycles)
	}

	switch decision.Primitive {
	case core.Forward:
		// Adaptive filtering: skip the snoop entirely. No per-node state
		// is needed; a trailing reply passes through unchanged.
		e.forwardAt(e.now()+delay, ringIdx, nodeID, m)

	case core.ForwardThenSnoop:
		st := n.stateForMsg(m)
		st.mode = modeFTS
		st.predictedPositive = decision.Predicted
		reqHalf := e.msgPool.CloneFrom(m)
		reqHalf.HasReply = false
		reqHalf.Found = false
		reqHalf.SharerSeen = false
		reqHalf.SnoopedMask = 0
		reqHalf.InvAcks = 0
		e.forwardAt(e.now()+delay, ringIdx, nodeID, reqHalf)
		if m.HasReply {
			replyHalf := e.msgPool.CloneFrom(m)
			replyHalf.HasRequest = false
			st.replyHalf = replyHalf
		} else {
			st.awaitingTrailingReply = true
		}
		e.scheduleSnoop(ringIdx, nodeID, m, st, delay)

	case core.SnoopThenForward:
		st := n.stateForMsg(m)
		st.mode = modeSTF
		st.predictedPositive = decision.Predicted
		st.heldMsg = m
		if !m.HasReply {
			st.awaitingTrailingReply = true
		}
		e.scheduleSnoop(ringIdx, nodeID, m, st, delay)
	}
}

// handleWriteRequest invalidates at every node; the Eager class forwards
// before snooping (parallel invalidation), the Lazy class after (Section
// 5.3). Write snoops cannot use the supplier predictor.
func (e *Engine) handleWriteRequest(ringIdx, nodeID int, m *ring.Message) {
	n := e.nodes[nodeID]
	st := n.stateForMsg(m)
	if n.policy.DecoupleWrites() || e.forcedEager(m.Addr) {
		st.mode = modeFTS
		reqHalf := e.msgPool.CloneFrom(m)
		reqHalf.HasReply = false
		reqHalf.Found = m.Found // writes keep invalidating after a supply
		reqHalf.SharerSeen = false
		reqHalf.SnoopedMask = 0
		reqHalf.InvAcks = 0
		e.forward(ringIdx, nodeID, reqHalf)
		if m.HasReply {
			replyHalf := e.msgPool.CloneFrom(m)
			replyHalf.HasRequest = false
			st.replyHalf = replyHalf
		} else {
			st.awaitingTrailingReply = true
		}
	} else {
		st.mode = modeSTF
		st.heldMsg = m
		if !m.HasReply {
			st.awaitingTrailingReply = true
		}
	}
	e.scheduleSnoop(ringIdx, nodeID, m, st, 0)
}

// scheduleSnoop books the CMP bus for the snoop operation and runs the
// outcome when it completes.
func (e *Engine) scheduleSnoop(ringIdx, nodeID int, m *ring.Message, st *ringState, extraDelay sim.Time) {
	n := e.nodes[nodeID]
	start := n.cmpBus.Reserve(e.now()+extraDelay, sim.Time(e.cfg.BusOccupancyCycles))
	finish := start + sim.Time(e.cfg.CMPSnoopCycles)
	if m.Kind == ring.ReadSnoop {
		e.stats.ReadSnoopOps++
	} else {
		e.stats.WriteSnoopOps++
	}
	e.meter.AddSnoopOp()
	c := e.newCall()
	c.e, c.ringIdx, c.node, c.m, c.st = e, ringIdx, nodeID, m, st
	e.kern.ScheduleArg(finish, snoopCall, c)
}

// snoopComplete applies the snoop outcome and dispatches the reply per
// Table 2.
//
// Serialization at the supplier (Section 2.1.4's "collision detected by
// the processor supplying a response"): if this node supplied a read
// whose data is still in flight to a requester the write has ALREADY
// passed, the write can no longer invalidate that copy — the supplier
// squashes the write, which retries a full circuit. Supplies to
// requesters the write has not yet visited are safe: the write's own
// snoop there will invalidate the fresh copy (or the requester-side
// collision rules resolve it).
func (e *Engine) snoopComplete(ringIdx, nodeID int, m *ring.Message, st *ringState) {
	mode := st.mode
	e.snoopOutcome(ringIdx, nodeID, m, st)
	if mode == modeFTS {
		// In FTS the request half was cloned and forwarded before the
		// snoop; m only carried the snoop context and is now dead. (In
		// STF m is the held message itself and lives on.)
		e.msgPool.Put(m)
	}
}

// snoopOutcome applies the snoop result.
func (e *Engine) snoopOutcome(ringIdx, nodeID int, m *ring.Message, st *ringState) {
	n := e.nodes[nodeID]
	st.outcomeReady = true
	st.localMask = uint64(1) << uint(nodeID)
	if e.tel != nil {
		e.tel.TxnEvent(e.now(), uint64(m.Txn), "snoop", nodeID)
	}

	if m.Kind == ring.ReadSnoop {
		supCore, hasSup := n.supplierIdx.Get(uint64(m.Addr))
		anyCopy := false
		for c := range n.l2 {
			if n.l2[c].Contains(m.Addr) {
				anyCopy = true
				break
			}
		}
		st.localSharer = anyCopy
		if hasSup {
			st.localFound = true
			line := n.l2[supCore].Lookup(m.Addr)
			if debugAddrOn {
				e.lineTrace(m.Addr, "supply n%d c%d %v v%d -> txn %d (req n%d)", nodeID, supCore, line.State, line.Version, m.Txn, m.Requester)
			}
			n.l2[supCore].SetState(m.Addr, cache.SupplyTransition(line.State))
			e.stats.CacheSupplies++
			e.sendData(nodeID, m, line.Version, false)
		} else if st.predictedPositive {
			// The snoop disproved a positive prediction: train the
			// exclude cache (JETTY refinement, Section 4.3.2).
			n.pred.NoteFalsePositive(m.Addr)
		}
	} else {
		sup, hadSup, hadAny := e.invalidateCMP(nodeID, m.Addr)
		if debugAddrOn {
			e.lineTrace(m.Addr, "writeSnoop n%d txn %d (req n%d) hadSup=%v hadAny=%v", nodeID, m.Txn, m.Requester, hadSup, hadAny)
		}
		if hadSup && (sup.State == cache.SharedGlobal || sup.State == cache.Tagged) {
			// If this write is later squashed, its partial sweep may
			// leave plain-S copies with no master; the completing write
			// clears the mark again.
			e.nodes[e.homeOf(m.Addr)].mem.MarkShared(m.Addr)
		}
		st.localSharer = hadAny
		st.localInvAck = 1
		if hadSup && sup.State.DirtyData() {
			// Invalidating a dirty supplier breaks the supplier chain:
			// reflect the data to home memory immediately so a racing
			// read that finds no supplier cannot observe stale memory.
			e.nodes[e.homeOf(m.Addr)].mem.WriteBack(m.Addr, sup.Version)
			e.stats.Writebacks++
		}
		if hadSup && m.NeedsData {
			st.localFound = true
			e.sendData(nodeID, m, sup.Version, true)
		}
	}
	e.dispatchReply(ringIdx, nodeID, m, st)
}

// sendData transfers the line to the requester over the torus.
func (e *Engine) sendData(nodeID int, m *ring.Message, version uint64, ownership bool) {
	if e.tel != nil {
		e.tel.TxnEvent(e.now(), uint64(m.Txn), "supply", nodeID)
	}
	lat := e.torus.Latency(e.now(), nodeID, m.Requester)
	c := e.newCall()
	c.e, c.id, c.ver, c.dirty = e, m.Txn, version, ownership
	e.kern.AfterArg(lat, dataCall, c)
}

// applyLocalOutcome folds the node's snoop outcome into a reply message.
func (st *ringState) applyLocalOutcome(nodeID int, m *ring.Message) {
	m.SnoopedMask |= st.localMask
	m.SharerSeen = m.SharerSeen || st.localSharer
	m.InvAcks += st.localInvAck
	m.Squashed = m.Squashed || st.localSquash
	if st.localFound {
		m.Found = true
		m.Supplier = nodeID
	}
}

// dispatchReply implements the send/wait/merge rules of Table 2 after the
// local snoop outcome is known.
func (e *Engine) dispatchReply(ringIdx, nodeID int, m *ring.Message, st *ringState) {
	n := e.nodes[nodeID]
	// The "send own reply, discard the upstream one" fast path applies
	// only to reads: a write's upstream reply carries invalidation acks
	// that must never be dropped.
	fastFound := st.localFound && m.Kind == ring.ReadSnoop
	switch st.mode {
	case modeFTS:
		if fastFound {
			// Send our own reply now; a later upstream reply carries no
			// new information and is discarded (Table 2).
			out := e.msgPool.Get()
			out.Txn, out.Kind, out.Addr, out.Requester = m.Txn, m.Kind, m.Addr, m.Requester
			out.Age, out.NeedsData, out.HasReply = m.Age, m.NeedsData, true
			if st.replyHalf != nil {
				out.MergeReply(st.replyHalf)
				e.msgPool.Put(st.replyHalf)
				st.replyHalf = nil
			}
			st.applyLocalOutcome(nodeID, out)
			st.sentOwnReply = true
			e.forward(ringIdx, nodeID, out)
			// Drop unless a trailing reply is still due; one that already
			// arrived (pendingReply) counts as absorbed.
			if !st.awaitingTrailingReply || st.pendingReply != nil {
				e.msgPool.Put(st.pendingReply)
				n.dropState(m.Txn)
			}
			return
		}
		if st.replyHalf != nil {
			st.applyLocalOutcome(nodeID, st.replyHalf)
			e.forward(ringIdx, nodeID, st.replyHalf)
			n.dropState(m.Txn)
			return
		}
		if st.pendingReply != nil {
			st.applyLocalOutcome(nodeID, st.pendingReply)
			e.forward(ringIdx, nodeID, st.pendingReply)
			n.dropState(m.Txn)
			return
		}
		// Wait for the trailing reply (Table 2: "else wait for snoop
		// reply"); handleReplyOnly finishes the send.

	case modeSTF:
		held := st.heldMsg
		if fastFound {
			// Send a combined R/R with the positive outcome; downstream
			// nodes of a read forward it without snooping.
			held.HasRequest = true
			held.HasReply = true
			st.applyLocalOutcome(nodeID, held)
			st.sentOwnReply = true
			e.forward(ringIdx, nodeID, held)
			if !st.awaitingTrailingReply || st.pendingReply != nil {
				e.msgPool.Put(st.pendingReply)
				n.dropState(m.Txn)
			}
			return
		}
		if held.HasReply {
			st.applyLocalOutcome(nodeID, held)
			e.forward(ringIdx, nodeID, held)
			n.dropState(m.Txn)
			return
		}
		if st.pendingReply != nil {
			held.HasReply = true
			held.MergeReply(st.pendingReply)
			e.msgPool.Put(st.pendingReply)
			st.applyLocalOutcome(nodeID, held)
			e.forward(ringIdx, nodeID, held)
			n.dropState(m.Txn)
			return
		}
		// Request-only held; wait for the trailing reply.
	}
}

// handleReplyOnly processes a trailing reply component.
func (e *Engine) handleReplyOnly(ringIdx, nodeID int, m *ring.Message) {
	n := e.nodes[nodeID]
	st, _ := n.ringStates.Get(uint64(m.Txn))
	if st == nil {
		// This node filtered (Forward) or never saw the request: pass
		// the reply through.
		e.forward(ringIdx, nodeID, m)
		return
	}
	switch st.mode {
	case modeBlocked:
		// Queue behind the blocked request so it cannot be overtaken.
		st.blockedOn.blockedMsgs = append(st.blockedOn.blockedMsgs, blockedMsg{ringIdx: ringIdx, m: m})
	case modeSquash:
		m.Squashed = true
		n.dropState(m.Txn)
		e.forward(ringIdx, nodeID, m)
	case modeFTS:
		if st.sentOwnReply {
			// Our positive reply already left; this one is stale.
			n.dropState(m.Txn)
			e.msgPool.Put(m)
			return
		}
		if st.outcomeReady {
			st.applyLocalOutcome(nodeID, m)
			n.dropState(m.Txn)
			e.forward(ringIdx, nodeID, m)
			return
		}
		st.pendingReply = m
	case modeSTF:
		if st.sentOwnReply {
			n.dropState(m.Txn)
			e.msgPool.Put(m)
			return
		}
		if st.outcomeReady {
			held := st.heldMsg
			held.HasReply = true
			held.MergeReply(m)
			st.applyLocalOutcome(nodeID, held)
			n.dropState(m.Txn)
			e.forward(ringIdx, nodeID, held)
			e.msgPool.Put(m)
			return
		}
		st.pendingReply = m
	default:
		n.dropState(m.Txn)
		e.forward(ringIdx, nodeID, m)
	}
}

// handleCollision resolves same-line transaction collisions at a
// requester node (Section 2.1.4). Returns true when the message was
// blocked pending the local write's completion.
//
// The scheme: reads are never squashed. A read that overlaps a write
// completes "use-once" — its data is delivered to the core but not
// cached (txn.noInstall), so no copy can go stale behind the write's
// invalidation sweep. Crossing reads demote each other's memory grants
// to plain Shared. Only write-write pairs arbitrate, by age, with
// found-immunity (a write that already claimed the line's data cannot be
// squashed by another write; claimed data is never lost — a squashed
// claimant writes it back to memory while draining).
func (e *Engine) handleCollision(ringIdx, nodeID int, m *ring.Message) (blocked bool) {
	n := e.nodes[nodeID]
	own, ok := n.outstanding.Get(uint64(m.Addr))
	if !ok || own.squashed || own.id == m.Txn {
		return false
	}

	if own.kind == ring.ReadSnoop {
		if m.Kind == ring.ReadSnoop {
			// Concurrent reads both proceed, but neither may claim a
			// master state (E/S_G) from memory — two masters would
			// break supplier uniqueness.
			if !own.installed && !own.dataArrived {
				own.sharedGrant = true
			}
			if !m.Found {
				m.SharedGrant = true
			}
			return false
		}
		// A write is sweeping past while our read is in flight: the
		// read may still complete, but must not cache a copy this
		// write can no longer see.
		if !own.installed {
			own.noInstall = true
		}
		return false
	}

	// own is a write.
	if m.Kind == ring.ReadSnoop {
		// The read completes use-once (it was marked at launch, or the
		// write's own circuit marks it at its requester); nothing to
		// arbitrate here.
		return false
	}

	// Write-write arbitration.
	if m.Found {
		// The incoming write already claimed the line's data; ours
		// loses unless effectively complete.
		if !own.installed && !own.dataArrived {
			e.squashLocal(own)
		}
		return false
	}
	if own.dataArrived && !own.installed {
		// Our write holds the line's only copy in flight; hold the
		// colliding write until ours performs. A trailing reply of a
		// held split request must queue behind it (modeBlocked), or it
		// would overtake its own request on the ring.
		if !m.HasReply {
			st := n.stateForMsg(m)
			st.mode = modeBlocked
			st.blockedOn = own
		}
		own.blockedMsgs = append(own.blockedMsgs, blockedMsg{ringIdx: ringIdx, m: m})
		return true
	}
	if own.installed {
		return false
	}
	if older(m.Age, m.Requester, own.age, own.node) {
		e.squashLocal(own)
		return false
	}
	m.Squashed = true
	e.stats.Squashes++
	if e.tel != nil {
		e.tel.TxnEvent(e.now(), uint64(m.Txn), "squash", nodeID)
	}
	return false
}

// stateFor returns (creating if needed) the node's bookkeeping for a
// transaction.
func (n *node) stateFor(id ring.TxnID) *ringState {
	p := n.ringStates.Upsert(uint64(id))
	if *p == nil {
		*p = n.e.newRingState()
	}
	return *p
}

// stateForMsg is stateFor plus debug provenance.
func (n *node) stateForMsg(m *ring.Message) *ringState {
	st := n.stateFor(m.Txn)
	st.dbgKind = m.Kind
	st.dbgRequester = m.Requester
	return st
}

// dropState releases a transaction's bookkeeping back to the free list.
// Callers must be done with the record and any messages it still holds.
func (n *node) dropState(id ring.TxnID) {
	if st, ok := n.ringStates.Get(uint64(id)); ok {
		n.ringStates.Delete(uint64(id))
		n.e.rsPool = append(n.e.rsPool, st)
	}
}

// SetDebugTxn enables message-flow tracing for one transaction id (tests).
func SetDebugTxn(id ring.TxnID) { debugTxn = id }

// SetDebugAddrOff disables line-event tracing.
func SetDebugAddrOff() { debugAddrOn = false }
