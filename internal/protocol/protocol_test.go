package protocol_test

import (
	"math/rand"
	"testing"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/checker"
	"flexsnoop/internal/config"
	"flexsnoop/internal/core"
	"flexsnoop/internal/energy"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/ring"
	"flexsnoop/internal/sim"
)

// testEngine builds an engine with the Section 6.1 predictor for the
// algorithm and the invariant checker armed on every completion.
func testEngine(t *testing.T, alg config.Algorithm) (*sim.Kernel, *protocol.Engine) {
	t.Helper()
	kern := sim.NewKernel()
	pol := core.NewPolicy(alg)
	e, err := protocol.NewEngine(kern, protocol.Options{
		Machine:   config.DefaultMachine(),
		Predictor: config.DefaultPredictorFor(alg),
		PolicyFor: func(int) core.Policy { return pol },
		Energy:    energy.DefaultParams(),
	})
	if err != nil {
		t.Fatalf("NewEngine(%v): %v", alg, err)
	}
	e.SetInvariantChecker(1, func() error { return checker.Check(e) })
	return kern, e
}

// run drives the kernel dry and verifies the machine drained cleanly.
func run(t *testing.T, kern *sim.Kernel, e *protocol.Engine) {
	t.Helper()
	kern.RunAll()
	if err := checker.CheckDrained(e); err != nil {
		t.Fatalf("drain check: %v", err)
	}
}

func TestReadFromMemoryInstallsExclusive(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	done := false
	e.Access(0, 0, protocol.Load, 0x100, func() { done = true })
	run(t, kern, e)
	if !done {
		t.Fatal("load never completed")
	}
	if st := e.LineState(0, 0, 0x100); st != cache.Exclusive {
		t.Errorf("state = %v, want E (all nodes snooped, no sharer)", st)
	}
	s := e.Stats()
	if s.ReadRequests != 1 {
		t.Errorf("ReadRequests = %d, want 1", s.ReadRequests)
	}
	if s.ReadSnoopOps != 7 {
		t.Errorf("Lazy snoops = %d, want 7 (all other nodes, no supplier)", s.ReadSnoopOps)
	}
	if s.MemorySupplies != 1 {
		t.Errorf("MemorySupplies = %d, want 1", s.MemorySupplies)
	}
}

func TestCacheToCacheTransfer(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	done := false
	e.Access(4, 0, protocol.Load, 0x100, func() { done = true })
	run(t, kern, e)
	if !done {
		t.Fatal("second load never completed")
	}
	if st := e.LineState(0, 0, 0x100); st != cache.SharedGlobal {
		t.Errorf("supplier state = %v, want SG (E downgrades on supply)", st)
	}
	if st := e.LineState(4, 0, 0x100); st != cache.SharedLocal {
		t.Errorf("reader state = %v, want SL", st)
	}
	s := e.Stats()
	if s.CacheSupplies != 1 {
		t.Errorf("CacheSupplies = %d, want 1", s.CacheSupplies)
	}
	if s.MemorySupplies != 1 {
		t.Errorf("MemorySupplies = %d, want 1 (only the first read)", s.MemorySupplies)
	}
	// Lazy snoops until the supplier: node 0 is 4 hops from node 4's
	// request (4->5->6->7->0), so 4 snoops for the second read.
	if s.ReadSnoopOps != 7+4 {
		t.Errorf("ReadSnoopOps = %d, want 11", s.ReadSnoopOps)
	}
}

func TestLocalSupplyWithinCMP(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(2, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	done := false
	e.Access(2, 1, protocol.Load, 0x100, func() { done = true })
	run(t, kern, e)
	if !done {
		t.Fatal("local load never completed")
	}
	s := e.Stats()
	if s.LocalSupplies != 1 {
		t.Errorf("LocalSupplies = %d, want 1", s.LocalSupplies)
	}
	if s.ReadRequests != 1 {
		t.Errorf("ReadRequests = %d, want 1 (second read stays on-chip)", s.ReadRequests)
	}
	// Supplier keeps master roles: E -> SG; the reader gets plain S.
	if st := e.LineState(2, 0, 0x100); st != cache.SharedGlobal {
		t.Errorf("supplier state = %v, want SG", st)
	}
	if st := e.LineState(2, 1, 0x100); st != cache.Shared {
		t.Errorf("reader state = %v, want S", st)
	}
}

func TestWriteInvalidatesRemoteSharers(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	e.Access(3, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	done := false
	e.Access(3, 0, protocol.Store, 0x100, func() { done = true })
	run(t, kern, e)
	if !done {
		t.Fatal("store never completed")
	}
	if st := e.LineState(3, 0, 0x100); st != cache.Dirty {
		t.Errorf("writer state = %v, want D", st)
	}
	if st := e.LineState(0, 0, 0x100); st != cache.Invalid {
		t.Errorf("old supplier state = %v, want I", st)
	}
	if v := e.LatestVersion(0x100); v != 1 {
		t.Errorf("version = %d, want 1", v)
	}
}

func TestWriteMissClaimsDirtyData(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	e.Access(0, 0, protocol.Store, 0x100, nil) // silent E->D upgrade
	kern.RunAll()
	if st := e.LineState(0, 0, 0x100); st != cache.Dirty {
		t.Fatalf("precondition: state = %v, want D", st)
	}
	done := false
	e.Access(5, 0, protocol.Store, 0x100, func() { done = true })
	run(t, kern, e)
	if !done {
		t.Fatal("write miss never completed")
	}
	if st := e.LineState(5, 0, 0x100); st != cache.Dirty {
		t.Errorf("new owner state = %v, want D", st)
	}
	if st := e.LineState(0, 0, 0x100); st != cache.Invalid {
		t.Errorf("old owner state = %v, want I", st)
	}
	if v := e.LatestVersion(0x100); v != 2 {
		t.Errorf("version = %d, want 2", v)
	}
}

func TestSilentUpgradeOnExclusive(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	before := e.Stats().WriteRequests
	e.Access(0, 0, protocol.Store, 0x100, nil)
	run(t, kern, e)
	if after := e.Stats().WriteRequests; after != before {
		t.Errorf("silent E->D upgrade issued a ring transaction")
	}
	if st := e.LineState(0, 0, 0x100); st != cache.Dirty {
		t.Errorf("state = %v, want D", st)
	}
}

func TestDirtySharingUsesTaggedState(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	e.Access(0, 0, protocol.Store, 0x100, nil)
	kern.RunAll()
	// A remote read of a dirty line: supplier D -> T, reader SL.
	e.Access(6, 0, protocol.Load, 0x100, nil)
	run(t, kern, e)
	if st := e.LineState(0, 0, 0x100); st != cache.Tagged {
		t.Errorf("dirty supplier state = %v, want T", st)
	}
	if st := e.LineState(6, 0, 0x100); st != cache.SharedLocal {
		t.Errorf("reader state = %v, want SL", st)
	}
}

func TestUpgradeRaceSquashesOne(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	// Share the line at two nodes.
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	e.Access(4, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	// Both write concurrently.
	done0, done4 := false, false
	e.Access(0, 0, protocol.Store, 0x100, func() { done0 = true })
	e.Access(4, 0, protocol.Store, 0x100, func() { done4 = true })
	run(t, kern, e)
	if !done0 || !done4 {
		t.Fatalf("stores incomplete: node0=%v node4=%v", done0, done4)
	}
	if v := e.LatestVersion(0x100); v != 2 {
		t.Errorf("version = %d, want 2 (both writes serialized)", v)
	}
	// Exactly one node may end with the dirty line.
	d0 := e.LineState(0, 0, 0x100) == cache.Dirty
	d4 := e.LineState(4, 0, 0x100) == cache.Dirty
	if d0 == d4 {
		t.Errorf("dirty ownership: node0=%v node4=%v, want exactly one", d0, d4)
	}
}

func TestConcurrentReadsSingleSupplier(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	var completed int
	for n := 0; n < 8; n++ {
		e.Access(n, 0, protocol.Load, 0x200, func() { completed++ })
	}
	run(t, kern, e)
	if completed != 8 {
		t.Fatalf("completed %d/8 loads", completed)
	}
	suppliers, copies := 0, 0
	for n := 0; n < 8; n++ {
		st := e.LineState(n, 0, 0x200)
		if st.GlobalSupplier() {
			suppliers++
		}
		if st.Valid() {
			copies++
		}
	}
	// Crossing reads demote their memory grants to plain Shared, so at
	// most one master may remain — never two.
	if suppliers > 1 {
		t.Errorf("global suppliers = %d, want at most 1", suppliers)
	}
	if copies != 8 {
		t.Errorf("copies = %d, want 8 (every reader keeps the line)", copies)
	}
}

func TestReadWriteRace(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	ok := 0
	e.Access(2, 0, protocol.Load, 0x100, func() { ok++ })
	e.Access(6, 0, protocol.Store, 0x100, func() { ok++ })
	run(t, kern, e)
	if ok != 2 {
		t.Fatalf("completed %d/2 accesses", ok)
	}
	if v := e.LatestVersion(0x100); v != 1 {
		t.Errorf("version = %d, want 1", v)
	}
}

func TestEagerSnoopsEveryNode(t *testing.T) {
	kern, e := testEngine(t, config.Eager)
	e.Access(0, 0, protocol.Load, 0x108, nil) // home node 0: local memory
	run(t, kern, e)
	s := e.Stats()
	if s.ReadSnoopOps != 7 {
		t.Errorf("Eager snoops = %d, want 7", s.ReadSnoopOps)
	}
	// Eager splits at the first node: 2N-1 = 15 read segments.
	if s.ReadRingSegments != 15 {
		t.Errorf("Eager read segments = %d, want 15", s.ReadRingSegments)
	}
}

func TestLazySegments(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(0, 0, protocol.Load, 0x108, nil)
	run(t, kern, e)
	if s := e.Stats(); s.ReadRingSegments != 8 {
		t.Errorf("Lazy read segments = %d, want 8 (one combined circuit)", s.ReadRingSegments)
	}
}

func TestOracleSnoopsOnlySupplier(t *testing.T) {
	kern, e := testEngine(t, config.Oracle)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	s0 := e.Stats()
	if s0.ReadSnoopOps != 0 {
		t.Errorf("Oracle snoops with no supplier = %d, want 0", s0.ReadSnoopOps)
	}
	e.Access(4, 0, protocol.Load, 0x100, nil)
	run(t, kern, e)
	s := e.Stats()
	if s.ReadSnoopOps != 1 {
		t.Errorf("Oracle snoops = %d, want 1 (supplier only)", s.ReadSnoopOps)
	}
	if s.ReadRingSegments != 16 {
		t.Errorf("Oracle segments = %d, want 16 (two combined circuits)", s.ReadRingSegments)
	}
}

func TestSupersetConCombinedMessages(t *testing.T) {
	kern, e := testEngine(t, config.SupersetCon)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	e.Access(4, 0, protocol.Load, 0x100, nil)
	run(t, kern, e)
	s := e.Stats()
	// SupersetCon never splits: exactly one circuit per request.
	if s.ReadRingSegments != 16 {
		t.Errorf("SupersetCon segments = %d, want 16", s.ReadRingSegments)
	}
	// Second request snooped exactly at the supplier (no aliasing in a
	// near-empty Bloom filter).
	if s.ReadSnoopOps != 1 {
		t.Errorf("SupersetCon snoops = %d, want 1", s.ReadSnoopOps)
	}
}

func TestSupersetAggFindsSupplier(t *testing.T) {
	kern, e := testEngine(t, config.SupersetAgg)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	done := false
	e.Access(4, 0, protocol.Load, 0x100, func() { done = true })
	run(t, kern, e)
	if !done {
		t.Fatal("read never completed")
	}
	s := e.Stats()
	if s.CacheSupplies != 1 {
		t.Errorf("CacheSupplies = %d, want 1", s.CacheSupplies)
	}
	if s.ReadSnoopOps != 1 {
		t.Errorf("SupersetAgg snoops = %d, want 1", s.ReadSnoopOps)
	}
}

func TestSubsetSnoopsUntilSupplier(t *testing.T) {
	kern, e := testEngine(t, config.Subset)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	e.Access(4, 0, protocol.Load, 0x100, nil)
	run(t, kern, e)
	s := e.Stats()
	// Subset snoops every node up to the supplier (4 hops from node 4),
	// plus the first request's 7.
	if s.ReadSnoopOps != 7+4 {
		t.Errorf("Subset snoops = %d, want 11", s.ReadSnoopOps)
	}
}

func TestExactDowngradesUnderPressure(t *testing.T) {
	kern := sim.NewKernel()
	pol := core.NewPolicy(config.Exact)
	cfg := config.DefaultMachine()
	pred := config.PredictorConfig{Kind: config.PredictorExact, Name: "tiny", Entries: 16, Assoc: 2, AccessCycles: 2}
	e, err := protocol.NewEngine(kern, protocol.Options{
		Machine: cfg, Predictor: pred,
		PolicyFor: func(int) core.Policy { return pol },
		Energy:    energy.DefaultParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInvariantChecker(1, func() error { return checker.Check(e) })
	// Node 0 accumulates far more supplier lines than predictor entries.
	for i := 0; i < 200; i++ {
		addr := cache.LineAddr(0x1000 + i*8)
		e.Access(0, i%4, protocol.Load, addr, nil)
		kern.RunAll()
		if i%3 == 0 {
			e.Access(0, i%4, protocol.Store, addr, nil)
			kern.RunAll()
		}
	}
	if err := checker.CheckDrained(e); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Downgrades == 0 {
		t.Error("overfull Exact predictor forced no downgrades")
	}
	if s.DowngradeWritebacks == 0 {
		t.Error("no dirty downgrades wrote back")
	}
}

func TestMSHRMergesSameLineRequests(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	completed := 0
	// Two cores of the same CMP miss on the same line concurrently.
	e.Access(1, 0, protocol.Load, 0x300, func() { completed++ })
	e.Access(1, 1, protocol.Load, 0x300, func() { completed++ })
	run(t, kern, e)
	if completed != 2 {
		t.Fatalf("completed %d/2", completed)
	}
	if s := e.Stats(); s.ReadRequests != 1 {
		t.Errorf("ReadRequests = %d, want 1 (second core piggybacks)", s.ReadRequests)
	}
}

func TestPerCoreL2sArePrivate(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	run(t, kern, e)
	if st := e.LineState(0, 1, 0x100); st != cache.Invalid {
		t.Errorf("core 1 state = %v, want I (caches are private)", st)
	}
}

func TestWriteToSharedDirtyLine(t *testing.T) {
	// T-state writer upgrade: writer holds S, supplier holds T. The
	// upgrade invalidates the T copy without losing data (coherent copy).
	kern, e := testEngine(t, config.Lazy)
	e.Access(0, 0, protocol.Load, 0x100, nil)
	kern.RunAll()
	e.Access(0, 0, protocol.Store, 0x100, nil)
	kern.RunAll()
	e.Access(4, 0, protocol.Load, 0x100, nil) // D->T at node 0, SL at node 4
	kern.RunAll()
	e.Access(4, 0, protocol.Store, 0x100, nil) // upgrade from SL
	run(t, kern, e)
	if st := e.LineState(4, 0, 0x100); st != cache.Dirty {
		t.Errorf("writer state = %v, want D", st)
	}
	if st := e.LineState(0, 0, 0x100); st != cache.Invalid {
		t.Errorf("old T holder = %v, want I", st)
	}
	if v := e.LatestVersion(0x100); v != 2 {
		t.Errorf("version = %d, want 2", v)
	}
}

// TestRandomStressAllAlgorithms hammers every algorithm with a seeded
// random access mix while checking every invariant after every
// transaction completion.
func TestRandomStressAllAlgorithms(t *testing.T) {
	algs := append(config.Algorithms(), config.DynamicSuperset)
	for _, alg := range algs {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			kern, e := testEngine(t, alg)
			rng := rand.New(rand.NewSource(7))
			issued, completed := 0, 0
			for i := 0; i < 600; i++ {
				node := rng.Intn(8)
				c := rng.Intn(4)
				addr := cache.LineAddr(rng.Intn(48)) // hot: force races
				kind := protocol.Load
				if rng.Intn(3) == 0 {
					kind = protocol.Store
				}
				issued++
				e.Access(node, c, kind, addr, func() { completed++ })
				// Burst in small groups to create real concurrency.
				if rng.Intn(4) == 0 {
					kern.RunAll()
				}
			}
			run(t, kern, e)
			if completed != issued {
				t.Fatalf("completed %d/%d accesses", completed, issued)
			}
		})
	}
}

// TestStressWiderAddressSpace exercises evictions and write-backs.
func TestStressWiderAddressSpace(t *testing.T) {
	kern, e := testEngine(t, config.SupersetAgg)
	rng := rand.New(rand.NewSource(11))
	issued, completed := 0, 0
	for i := 0; i < 800; i++ {
		node := rng.Intn(8)
		c := rng.Intn(4)
		addr := cache.LineAddr(rng.Intn(1 << 14))
		kind := protocol.Load
		if rng.Intn(4) == 0 {
			kind = protocol.Store
		}
		issued++
		e.Access(node, c, kind, addr, func() { completed++ })
		if rng.Intn(8) == 0 {
			kern.RunAll()
		}
	}
	run(t, kern, e)
	if completed != issued {
		t.Fatalf("completed %d/%d", completed, issued)
	}
}

func TestWriteDecouplingSegments(t *testing.T) {
	// Eager-class algorithms split write snoops (request + reply); the
	// Lazy class sends one combined circuit (Section 5.3).
	segs := func(alg config.Algorithm) uint64 {
		kern, e := testEngine(t, alg)
		e.Access(0, 0, protocol.Store, 0x108, nil) // miss: full write circuit
		run(t, kern, e)
		s := e.Stats()
		return s.RingSegments - s.ReadRingSegments
	}
	if got := segs(config.Lazy); got != 8 {
		t.Errorf("Lazy write segments = %d, want 8", got)
	}
	if got := segs(config.Eager); got != 15 {
		t.Errorf("Eager write segments = %d, want 15", got)
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := protocol.Stats{ReadRequests: 4, ReadSnoopOps: 14, ReadRingSegments: 32,
		ReadMissCycles: 1000, ReadMissCount: 4}
	if got := s.SnoopsPerReadRequest(); got != 3.5 {
		t.Errorf("SnoopsPerReadRequest = %v, want 3.5", got)
	}
	if got := s.ReadSegmentsPerRequest(); got != 8 {
		t.Errorf("ReadSegmentsPerRequest = %v, want 8", got)
	}
	if got := s.AvgReadMissLatency(); got != 250 {
		t.Errorf("AvgReadMissLatency = %v, want 250", got)
	}
	var zero protocol.Stats
	if zero.SnoopsPerReadRequest() != 0 || zero.ReadSegmentsPerRequest() != 0 || zero.AvgReadMissLatency() != 0 {
		t.Error("zero stats should produce zero metrics")
	}
}

var _ = ring.ReadSnoop // keep the import for documentation-value constants

func TestHistBuckets(t *testing.T) {
	cases := map[uint64]int{0: 0, 63: 0, 64: 1, 127: 1, 128: 2, 1023: 4, 1024: 5, 65535: 10, 65536: 11, 1 << 30: 11}
	for lat, want := range cases {
		if got := protocol.HistBucket(lat); got != want {
			t.Errorf("HistBucket(%d) = %d, want %d", lat, got, want)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 12; i++ {
		l := protocol.HistBucketLabel(i)
		if l == "" || seen[l] {
			t.Errorf("bucket %d label %q empty/duplicate", i, l)
		}
		seen[l] = true
	}
}

func TestStatsSub(t *testing.T) {
	var a, b protocol.Stats
	a.ReadRequests, b.ReadRequests = 10, 4
	a.Accuracy.TruePos, b.Accuracy.TruePos = 7, 2
	a.ReadMissHist[3], b.ReadMissHist[3] = 9, 5
	d := a.Sub(b)
	if d.ReadRequests != 6 || d.Accuracy.TruePos != 5 || d.ReadMissHist[3] != 4 {
		t.Errorf("Sub = %+v", d)
	}
}
