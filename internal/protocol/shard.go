package protocol

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"flexsnoop/internal/ring"
	"flexsnoop/internal/sim"
)

// This file implements the engine's cycle-batched transmit stage.
//
// Ring handlers never call ring.Send directly: forwardAt buffers a
// txIntent per segment, and flushTransmits — installed as the kernel's
// EndCycle hook — drains the buffers once every event at the current
// cycle has run. The flush has two stages with a barrier between them:
//
//  1. Link arbitration, per ring. Arbitration touches only that ring's
//     links and counters (genuinely ring-private state, the paper's
//     address-interleaved rings of Section 2.2), so with ShardRings
//     enabled the per-ring batches run on worker goroutines.
//  2. Merge, serial, in fixed ring-index order: telemetry OnSend probes
//     fire and delivery events are scheduled. Kernel event sequence
//     numbers — the same-cycle tie-break — are therefore assigned in an
//     order independent of worker timing, which keeps sharded runs
//     cycle-identical to serial ones (the shard-merge determinism rule;
//     see DESIGN.md).
//
// Deferral is unconditional: serial mode runs the same two stages inline,
// so turning ShardRings on or off cannot move a single event.

// txIntent is one buffered message-segment transmission.
type txIntent struct {
	depart sim.Time
	from   int
	m      *ring.Message
	start  sim.Time // filled by arbitration
	arrive sim.Time
}

// PendingTransmits reports buffered transmit intents not yet flushed.
// Outside an executing cycle it is zero; the machine's governor checks it
// so a mid-cycle "no kernel events" observation is not mistaken for a
// drained simulation.
func (e *Engine) PendingTransmits() int { return e.txTotal }

// flushTransmits arbitrates and schedules every buffered transmit. It is
// the kernel's EndCycle hook.
func (e *Engine) flushTransmits(now sim.Time) {
	if e.txTotal == 0 {
		return
	}
	// Stage 1: per-ring link arbitration (parallel when sharded).
	if e.shard != nil {
		e.shard.run(e)
	} else {
		for ri := range e.txq {
			e.arbitrateRing(ri)
		}
	}
	// Stage 2: serial merge in fixed ring-index order. Fault injection
	// happens here and only here: the stage is serial and its order is
	// independent of ShardRings, so the injector's sequential decisions
	// are identical for serial and sharded runs.
	for ri := range e.txq {
		r := e.rings[ri]
		q := e.txq[ri]
		for i := range q {
			in := &q[i]
			if e.inj != nil && e.injectFaults(ri, r, in) {
				continue // segment dropped
			}
			if r.OnSend != nil {
				r.OnSend(in.start, in.arrive, in.from, in.m)
			}
			c := e.newCall()
			c.e, c.ringIdx, c.node, c.m = e, ri, r.Next(in.from), in.m
			e.kern.ScheduleArg(in.arrive, deliverCall, c)
			in.m = nil
		}
		e.txq[ri] = q[:0]
	}
	e.txTotal = 0
}

// arbitrateRing runs stage 1 for one ring's batch. With ShardRings this
// executes on a worker goroutine; it must touch nothing beyond the ring
// and its own intent slice.
func (e *Engine) arbitrateRing(ri int) {
	r := e.rings[ri]
	q := e.txq[ri]
	for i := range q {
		q[i].start, q[i].arrive = r.Arbitrate(q[i].depart, q[i].from, q[i].m)
	}
}

// shardPool runs per-ring arbitration batches on persistent worker
// goroutines (Options.ShardRings).
type shardPool struct {
	work      chan int
	wg        sync.WaitGroup
	labels    []pprof.LabelSet
	closeOnce sync.Once
}

// newShardPool starts min(rings, GOMAXPROCS) workers for an engine.
func newShardPool(e *Engine, rings int) *shardPool {
	p := &shardPool{
		work:   make(chan int, rings),
		labels: make([]pprof.LabelSet, rings),
	}
	for ri := range p.labels {
		p.labels[ri] = pprof.Labels("shard-ring", strconv.Itoa(ri))
	}
	workers := rings
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	for w := 0; w < workers; w++ {
		go func() {
			ctx := context.Background()
			for ri := range p.work {
				pprof.Do(ctx, p.labels[ri], func(context.Context) {
					e.arbitrateRing(ri)
				})
				p.wg.Done()
			}
		}()
	}
	return p
}

// run dispatches every non-empty ring batch and waits for all of them.
// Single-batch cycles skip the handoff: there is nothing to overlap.
func (p *shardPool) run(e *Engine) {
	busy := 0
	last := -1
	for ri := range e.txq {
		if len(e.txq[ri]) > 0 {
			busy++
			last = ri
		}
	}
	if busy <= 1 {
		if last >= 0 {
			e.arbitrateRing(last)
		}
		return
	}
	p.wg.Add(busy)
	for ri := range e.txq {
		if len(e.txq[ri]) > 0 {
			p.work <- ri
		}
	}
	p.wg.Wait()
}

// close shuts the workers down; safe to call more than once.
func (p *shardPool) close() {
	p.closeOnce.Do(func() { close(p.work) })
}

// Close releases the engine's shard workers, if any. It is safe to call
// on a serial engine and safe to call twice.
func (e *Engine) Close() {
	if e.shard != nil {
		e.shard.close()
	}
}
