package protocol_test

import (
	"testing"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/checker"
	"flexsnoop/internal/config"
	"flexsnoop/internal/core"
	"flexsnoop/internal/energy"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
)

// TestUseOnceReadDuringWrite: a read overlapping a write completes and
// delivers a value, but never leaves a cached copy behind the write's
// invalidation sweep.
func TestUseOnceReadDuringWrite(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	// Establish a dirty owner far from both contenders.
	e.Access(4, 0, protocol.Store, 0x50, nil)
	kern.RunAll()
	// Launch the write first, the read immediately after: the read sees
	// a write in flight and must complete use-once.
	done := 0
	e.Access(1, 0, protocol.Store, 0x50, func() { done++ })
	e.Access(6, 0, protocol.Load, 0x50, func() { done++ })
	run(t, kern, e)
	if done != 2 {
		t.Fatalf("completed %d/2", done)
	}
	s := e.Stats()
	if s.UseOnceReads == 0 {
		t.Error("overlapping read did not complete use-once")
	}
	// The writer owns the only copy.
	if st := e.LineState(1, 0, 0x50); st != cache.Dirty {
		t.Errorf("writer state = %v, want D", st)
	}
	if st := e.LineState(6, 0, 0x50); st != cache.Invalid {
		t.Errorf("use-once reader cached a copy: %v", st)
	}
}

// TestExclusiveRegrantAfterWrite: the home's masterless mark blocks E
// grants after a demotion, and a completed write restores them.
func TestExclusiveRegrantAfterWrite(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	// Two crossing reads demote each other: both get plain S, the home
	// is marked.
	e.Access(0, 0, protocol.Load, 0x60, nil)
	e.Access(4, 0, protocol.Load, 0x60, nil)
	kern.RunAll()
	s0 := e.LineState(0, 0, 0x60)
	s4 := e.LineState(4, 0, 0x60)
	if s0.GlobalSupplier() && s4.GlobalSupplier() {
		t.Fatalf("two masters: %v and %v", s0, s4)
	}
	// A third read while the mark is set must not get E, even though its
	// circuit might see no sharer (it does here, so this is belt and
	// braces); drive a write instead to clear the mark.
	e.Access(2, 0, protocol.Store, 0x60, nil)
	kern.RunAll()
	if st := e.LineState(2, 0, 0x60); st != cache.Dirty {
		t.Fatalf("writer state = %v, want D", st)
	}
	// Evict nothing; invalidate by another write, then a lone read gets
	// E again (mark cleared by the completed writes).
	e.Access(5, 0, protocol.Store, 0x60, nil)
	kern.RunAll()
	e.Access(5, 0, protocol.Load, 0x61, nil) // unrelated warm line
	kern.RunAll()
	// Remove the owner's copy via a third write, then read fresh.
	e.Access(7, 0, protocol.Store, 0x60, nil)
	kern.RunAll()
	e.Access(7, 3, protocol.Load, 0x62, nil)
	kern.RunAll()
	run(t, kern, e)
}

// TestNoExclusiveWhileDowngradedSLExists: the Exact predictor's downgrade
// leaves an S_L copy invisible to ring snoops; the home's mark must then
// refuse Exclusive to later readers.
func TestNoExclusiveWhileDowngradedSLExists(t *testing.T) {
	kern := sim.NewKernel()
	pol := core.NewPolicy(config.Exact)
	tiny := config.PredictorConfig{Kind: config.PredictorExact, Name: "tiny", Entries: 2, Assoc: 2, AccessCycles: 2}
	e, err := protocol.NewEngine(kern, protocol.Options{
		Machine: config.DefaultMachine(), Predictor: tiny,
		PolicyFor: func(int) core.Policy { return pol },
		Energy:    energy.DefaultParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInvariantChecker(1, func() error { return checker.Check(e) })
	// Fill node 0 with three supplier lines in the same predictor set;
	// the 2-entry predictor must downgrade one to S_L.
	for i := 0; i < 3; i++ {
		e.Access(0, 0, protocol.Load, cache.LineAddr(0x100+i*2), nil)
		kern.RunAll()
	}
	s := e.Stats()
	if s.Downgrades == 0 {
		t.Fatal("tiny exact predictor performed no downgrades")
	}
	// Find the downgraded line (state S_L at node 0).
	var victim cache.LineAddr
	found := false
	for i := 0; i < 3; i++ {
		a := cache.LineAddr(0x100 + i*2)
		if e.LineState(0, 0, a) == cache.SharedLocal {
			victim, found = a, true
		}
	}
	if !found {
		t.Fatal("no downgraded S_L line found")
	}
	// A remote read of the downgraded line goes to memory (no supplier)
	// and must NOT be granted Exclusive while the S_L copy survives.
	e.Access(5, 0, protocol.Load, victim, nil)
	kern.RunAll()
	if st := e.LineState(5, 0, victim); st == cache.Exclusive {
		t.Errorf("memory granted E while a downgraded S_L exists at node 0")
	}
	if err := checker.CheckDrained(e); err != nil {
		t.Fatal(err)
	}
}

// TestWriteWriteFoundImmunity: a write that claimed the line's data cannot
// be squashed by a younger write; the younger retries and serializes after.
func TestWriteWriteFoundImmunity(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	e.Access(3, 0, protocol.Store, 0x70, nil) // D at node 3
	kern.RunAll()
	done := 0
	e.Access(0, 0, protocol.Store, 0x70, func() { done++ })
	e.Access(5, 0, protocol.Store, 0x70, func() { done++ })
	run(t, kern, e)
	if done != 2 {
		t.Fatalf("completed %d/2 writes", done)
	}
	if v := e.LatestVersion(0x70); v != 3 {
		t.Errorf("version = %d, want 3 (all writes serialized)", v)
	}
	owners := 0
	for n := 0; n < 8; n++ {
		if e.LineState(n, 0, 0x70) == cache.Dirty {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("dirty owners = %d, want exactly 1", owners)
	}
}

// TestReadsNeverRetryUnderWritePressure: with the use-once scheme, reads
// complete without squash-induced retries even under a write storm.
func TestReadsNeverRetryUnderWritePressure(t *testing.T) {
	kern, e := testEngine(t, config.Eager)
	reads := 0
	for i := 0; i < 30; i++ {
		w := i % 8
		e.Access(w, 0, protocol.Store, 0x80, nil)
		e.Access((w+3)%8, 1, protocol.Load, 0x80, func() { reads++ })
		if i%3 == 0 {
			kern.RunAll()
		}
	}
	run(t, kern, e)
	if reads != 30 {
		t.Fatalf("completed %d/30 reads", reads)
	}
}

// TestDirtyDataNeverLostOnWriteSquash: two writes race for a dirty line;
// whatever the squash order, the final version reflects both writes and
// memory is never left stale once the line is uncached.
func TestDirtyDataNeverLostOnWriteSquash(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		kern, e := testEngine(t, config.SupersetAgg)
		e.Access(seed%8, 0, protocol.Store, 0x90, nil)
		kern.RunAll()
		e.Access((seed+2)%8, 0, protocol.Store, 0x90, nil)
		e.Access((seed+5)%8, 0, protocol.Store, 0x90, nil)
		run(t, kern, e) // drain check verifies the no-lost-write invariant
		if v := e.LatestVersion(0x90); v != 3 {
			t.Errorf("seed %d: version = %d, want 3", seed, v)
		}
	}
}

// TestEvictionWritebackAndMarking fills one L2 set past its associativity
// to force evictions, checking dirty write-back and the masterless-sharer
// marking for shared-capable victims.
func TestEvictionWritebackAndMarking(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	// L2: 1024 sets, 8 ways. Addresses k<<10 all land in set 0 of core 0
	// at node 0.
	addr := func(k int) cache.LineAddr { return cache.LineAddr(k) << 10 }

	// Fill 8 ways with dirty lines, then overflow.
	for k := 0; k < 9; k++ {
		e.Access(0, 0, protocol.Store, addr(k), nil)
		kern.RunAll()
	}
	s := e.Stats()
	if s.Writebacks == 0 {
		t.Fatal("overflowing a set with dirty lines produced no write-back")
	}
	// The LRU victim (addr 0) left core 0 and its data reached memory.
	if st := e.LineState(0, 0, addr(0)); st != cache.Invalid {
		t.Fatalf("victim state = %v, want I", st)
	}
	if v := e.MemVersion(addr(0)); v != 1 {
		t.Fatalf("memory version of victim = %d, want 1 (write-back)", v)
	}
	// Re-reading the evicted dirty line gets the written data from memory.
	done := false
	e.Access(3, 0, protocol.Load, addr(0), func() { done = true })
	run(t, kern, e)
	if !done {
		t.Fatal("re-read never completed")
	}
	if got := e.LineState(3, 0, addr(0)); !got.Valid() {
		t.Fatalf("re-read did not install: %v", got)
	}
}

// TestSGEvictionBlocksExclusive: evicting an S_G master while plain-S
// copies survive must prevent later E grants (the sharers have no master
// to invalidate them through a silent write).
func TestSGEvictionBlocksExclusive(t *testing.T) {
	kern, e := testEngine(t, config.Lazy)
	line := cache.LineAddr(7) << 10 // set 0 at core 0
	// node0/core0 becomes SG master via sharing with node 4.
	e.Access(0, 0, protocol.Load, line, nil)
	kern.RunAll()
	e.Access(4, 0, protocol.Load, line, nil)
	kern.RunAll()
	if st := e.LineState(0, 0, line); st != cache.SharedGlobal {
		t.Fatalf("master state = %v, want SG", st)
	}
	// Evict the SG master by overflowing its set with other lines.
	for k := 20; k < 29; k++ {
		e.Access(0, 0, protocol.Load, cache.LineAddr(k)<<10, nil)
		kern.RunAll()
	}
	if st := e.LineState(0, 0, line); st != cache.Invalid {
		t.Skipf("SG master survived the eviction pressure (state %v)", st)
	}
	// node 4 still holds S_L... its copy remains; a third node's read must
	// not be granted E while that copy exists.
	e.Access(6, 0, protocol.Load, line, nil)
	run(t, kern, e)
	if st := e.LineState(6, 0, line); st == cache.Exclusive {
		t.Error("E granted while a surviving copy exists after master eviction")
	}
}

// TestSubsetFalseNegativeAtSupplier: when the Subset predictor has lost
// the supplier's entry (conflict eviction), the supplier node uses
// ForwardThenSnoop — the snoop still finds the line (correctness is
// preserved), but the raced-ahead request makes downstream nodes snoop
// too: the paper's "Lazy + alpha x FN" term.
func TestSubsetFalseNegativeAtSupplier(t *testing.T) {
	kern := sim.NewKernel()
	pol := core.NewPolicy(config.Subset)
	// A degenerate 2-entry predictor that forgets quickly.
	tiny := config.PredictorConfig{Kind: config.PredictorSubset, Name: "tiny", Entries: 2, Assoc: 2, AccessCycles: 2}
	e, err := protocol.NewEngine(kern, protocol.Options{
		Machine: config.DefaultMachine(), Predictor: tiny,
		PolicyFor: func(int) core.Policy { return pol },
		Energy:    energy.DefaultParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInvariantChecker(1, func() error { return checker.Check(e) })
	// Node 0 acquires three supplier lines; the 2-entry predictor loses
	// at least one (Subset evicts silently — no downgrade).
	lines := []cache.LineAddr{0x200, 0x202, 0x204}
	for _, a := range lines {
		e.Access(0, 0, protocol.Load, a, nil)
		kern.RunAll()
	}
	// All three remain cached in supplier states (plenty of L2 room);
	// the 2-entry predictor kept at most two of them.
	for _, a := range lines {
		if !e.LineState(0, 0, a).GlobalSupplier() {
			t.Fatalf("line %#x lost its supplier state", a)
		}
	}
	// Accuracy before: count remote reads for each line and find one that
	// classified a false negative at the supplier.
	base := e.Stats()
	done := 0
	for _, a := range lines {
		e.Access(4, 0, protocol.Load, a, func() { done++ })
		kern.RunAll()
	}
	if done != 3 {
		t.Fatalf("completed %d/3 reads", done)
	}
	s := e.Stats().Sub(base)
	// All three reads were cache-supplied despite any false negatives.
	if s.CacheSupplies != 3 {
		t.Errorf("CacheSupplies = %d, want 3 (false negatives must not lose the supplier)", s.CacheSupplies)
	}
	if s.Accuracy.FalseNeg == 0 {
		t.Errorf("tiny subset predictor produced no false negatives over 3 supplier probes")
	}
	// A false negative at the supplier lets the request race past it:
	// more snoops than the 3 x 4-hop distance a perfect Subset would do.
	if s.ReadSnoopOps <= 12 {
		t.Errorf("ReadSnoopOps = %d, want > 12 (extra snoops past the supplier)", s.ReadSnoopOps)
	}
	if err := checker.CheckDrained(e); err != nil {
		t.Fatal(err)
	}
}
