// Package protocol implements the embedded-ring snoopy coherence engine:
// CMP nodes with private per-core L2 caches, ring gateways running the
// Flexible Snooping primitives, collision detection with squash-and-retry,
// the distributed memory path, and the MESI + S_L/S_G/T state machine of
// Section 2.2.
package protocol

import (
	"fmt"

	"flexsnoop/internal/bus"
	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/core"
	"flexsnoop/internal/energy"
	"flexsnoop/internal/fault"
	"flexsnoop/internal/hotmap"
	"flexsnoop/internal/interconnect"
	"flexsnoop/internal/memory"
	"flexsnoop/internal/predictor"
	"flexsnoop/internal/ring"
	"flexsnoop/internal/sim"
	"flexsnoop/internal/telemetry"
)

// AccessKind is a processor-side memory reference type.
type AccessKind int

const (
	// Load is a read reference.
	Load AccessKind = iota
	// Store is a write reference.
	Store
)

// Engine is the machine-wide coherence engine.
type Engine struct {
	cfg     config.MachineConfig
	predCfg config.PredictorConfig
	kern    *sim.Kernel

	nodes []*node
	rings []*ring.Ring
	torus *interconnect.Torus
	meter *energy.Meter

	// lines holds the machine-global per-line metadata — write
	// generations, live-write counts, and the downgraded/eager flag
	// bits — in one struct-of-arrays table (see linetab.go).
	lines *lineTab

	txnSeq ring.TxnID
	byID   hotmap.Table[*txn]

	// Cycle-batched transmit stage (see shard.go): per-ring buffered
	// transmit intents, their total, and the optional worker pool.
	txq     [][]txIntent
	txTotal int
	shard   *shardPool

	stats Stats

	// checkEvery runs the invariant checker after every N transaction
	// completions when non-zero (tests enable it).
	invariantCheck func() error
	checkEvery     uint64
	completions    uint64

	// observer, when set, receives every performed reference with the
	// data generation it bound (tests use it to verify per-core
	// monotonicity of observed versions).
	observer func(node, core int, write bool, addr cache.LineAddr, version uint64)

	// tel, when non-nil, receives transaction lifecycle events and
	// serves interval samples (the telemetry layer). Every emit site
	// guards with a nil check, so the disabled cost is one comparison.
	tel *telemetry.Collector

	// Fault-injection and hardening state (see fault.go). inj is nil on
	// fault-free runs; every hot-path hook guards on that, so a disabled
	// run stays cycle-identical. deadlineCycles is the per-attempt snoop
	// response deadline; eagerCount counts lines the watchdog degraded
	// to Eager forwarding (their lineEager flag lives in e.lines, and a
	// zero count keeps the fault-free fast path to one comparison);
	// failErr latches the first unrecoverable failure.
	inj               *fault.Injector
	deadlineCycles    sim.Time
	maxTimeoutRetries int
	eagerCount        int
	failErr           error
	// linkFloor[ring][from] is the latest arrival already scheduled on a
	// link: injected delays and stalls push subsequent traffic on the
	// same link behind them, so the ring's per-link FIFO order survives
	// injection (reordering within a link would let a reply overtake its
	// own request — a network no ring can produce).
	linkFloor [][]sim.Time
	// retryLines counts parked timeout retransmits per line, so the
	// watchdog's degradation pass can see work hiding in backoff timers.
	// Nil on fault-free runs (it doubles as the "fault run" marker in
	// retryAfter).
	retryLines *hotmap.Table[int32]

	// Free lists (see pool.go). Single-threaded, so plain slices suffice.
	msgPool ring.Pool
	txnPool []*txn
	rsPool  []*ringState
	ccPool  []*callCtx
	pcPool  []*pathCtx
}

// SetTelemetry installs the run's telemetry collector and, when link-hop
// tracing is requested, the per-ring send probes.
func (e *Engine) SetTelemetry(c *telemetry.Collector) {
	e.tel = c
	if c == nil || !c.TraceHops() {
		return
	}
	for ri, r := range e.rings {
		ri, r := ri, r
		r.OnSend = func(depart, arrive sim.Time, from int, m *ring.Message) {
			c.RingHop(depart, ri, from, r.Next(from), uint64(m.Txn))
		}
	}
}

// TelemetrySample snapshots the cumulative counters the interval sampler
// differences: ring/bus/DRAM busy cycles, request and squash counts,
// outstanding transactions, predictor accuracy and energy.
func (e *Engine) TelemetrySample() telemetry.Sample {
	s := telemetry.Sample{
		OutstandingTxns: e.byID.Len(),
		ReadRequests:    e.stats.ReadRequests,
		WriteRequests:   e.stats.WriteRequests,
		SnoopOps:        e.stats.ReadSnoopOps + e.stats.WriteSnoopOps,
		Squashes:        e.stats.Squashes,
		Retries:         e.stats.Retries,
		PredTP:          e.stats.Accuracy.TruePos,
		PredTN:          e.stats.Accuracy.TrueNeg,
		PredFP:          e.stats.Accuracy.FalsePos,
		PredFN:          e.stats.Accuracy.FalseNeg,
		EnergyNJ:        e.meter.TotalNJ(),
	}
	for _, r := range e.rings {
		s.RingBusyCycles += r.BusyCycles()
		s.RingLinks += r.Nodes()
	}
	for _, n := range e.nodes {
		s.BusBusyCycles += n.cmpBus.BusyCycles
		s.Buses++
		s.DRAMBusyCycles += n.mem.BusyCycles()
		s.DRAMChannels++
	}
	return s
}

// SetObserver installs a reference observer (testing hook).
func (e *Engine) SetObserver(fn func(node, core int, write bool, addr cache.LineAddr, version uint64)) {
	e.observer = fn
}

// observe reports one performed reference to the observer.
func (e *Engine) observe(node, core int, write bool, addr cache.LineAddr, version uint64) {
	if e.observer != nil {
		e.observer(node, core, write, addr, version)
	}
}

// Options configures engine construction.
type Options struct {
	Machine   config.MachineConfig
	Predictor config.PredictorConfig
	// PolicyFor supplies the snooping policy for each node. Nodes may
	// share one policy value when it is stateless.
	PolicyFor func(node int) core.Policy
	Energy    energy.Params

	// ShardRings runs the per-ring link-arbitration batches of the
	// cycle-batched transmit stage on worker goroutines. Results are
	// cycle-identical to a serial run: side effects merge in fixed
	// ring-index order (see shard.go). It only helps when the machine
	// embeds more than one ring; callers should Close the engine to
	// release the workers.
	ShardRings bool

	// Faults, when it carries rules, injects deterministic link faults
	// into the transmit stage and arms the engine's recovery machinery:
	// per-transaction response deadlines with bounded exponential-backoff
	// retransmit (see fault.go). Nil or empty leaves the engine
	// cycle-identical to a build without the fault layer.
	Faults *fault.Plan
}

// NewEngine builds the coherence engine on a simulation kernel.
func NewEngine(kern *sim.Kernel, opts Options) (*Engine, error) {
	if err := opts.Machine.Validate(); err != nil {
		return nil, err
	}
	if opts.PolicyFor == nil {
		return nil, fmt.Errorf("protocol: Options.PolicyFor is required")
	}
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	m := opts.Machine
	e := &Engine{
		cfg:     m,
		predCfg: opts.Predictor,
		kern:    kern,
		torus:   interconnect.NewTorus(m.TorusWidth, m.TorusHeight, m.TorusHopCycles, m.DataSerializationCycles, m.NumCMPs),
		meter:   energy.NewMeter(opts.Energy),
		// Pre-sized for steady-state footprints: tables that rehash
		// mid-run both allocate and perturb wall time, so start them
		// near their working-set sizes.
		lines: newLineTab(4096),
		byID:  *hotmap.New[*txn](256),
	}
	for i := 0; i < m.NumRings; i++ {
		e.rings = append(e.rings, ring.NewRing(m.NumCMPs, m.RingLinkCycles, ringLinkOccupancyCycles))
	}
	e.txq = make([][]txIntent, m.NumRings)
	kern.EndCycle = e.flushTransmits
	if opts.ShardRings && m.NumRings > 1 {
		e.shard = newShardPool(e, m.NumRings)
	}
	e.deadlineCycles = timeoutDeadline(m, opts.Predictor)
	if opts.Faults.Enabled() {
		e.inj = fault.NewInjector(opts.Faults)
		e.maxTimeoutRetries = opts.Faults.RetryLimit()
		e.linkFloor = make([][]sim.Time, m.NumRings)
		for i := range e.linkFloor {
			e.linkFloor[i] = make([]sim.Time, m.NumCMPs)
		}
		e.retryLines = hotmap.New[int32](64)
	}
	for i := 0; i < m.NumCMPs; i++ {
		n := &node{
			id:          i,
			e:           e,
			mem:         memory.NewController(i, m),
			supplierIdx: *hotmap.New[int32](1024),
			outstanding: *hotmap.New[*txn](64),
			ringStates:  *hotmap.New[*ringState](64),
		}
		for c := 0; c < m.CoresPerCMP; c++ {
			n.l1 = append(n.l1, cache.NewArray(m.L1))
			n.l2 = append(n.l2, cache.NewArray(m.L2))
		}
		pol := opts.PolicyFor(i)
		if pol == nil {
			return nil, fmt.Errorf("protocol: nil policy for node %d", i)
		}
		n.policy = pol
		nodeID := i
		n.pred = predictor.New(opts.Predictor, func(a cache.LineAddr) bool {
			return e.nodes[nodeID].supplierIdx.Has(uint64(a))
		})
		if pol.Algorithm().UsesPredictor() && n.pred == nil {
			return nil, fmt.Errorf("protocol: algorithm %v needs a predictor, got none", pol.Algorithm())
		}
		if n.pred != nil {
			// One persistent prediction thunk per node: the per-request
			// inputs ride in scratch fields (see handleReadRequest), so
			// the hot path passes DecideRead an already-allocated
			// closure instead of heap-allocating one per snoop.
			nn := n
			superset := n.pred.Kind() == predictorSupersetKind
			n.predictFn = func() bool {
				predicted := nn.pred.Predict(nn.predictAddr)
				e.meter.AddPredictorLookup(superset)
				e.stats.Accuracy.Classify(predicted, nn.predictActual)
				return predicted
			}
		}
		e.nodes = append(e.nodes, n)
	}
	return e, nil
}

// ringLinkOccupancyCycles is the serialization time of one snoop message
// on an 8 GB/s ring link at 6 GHz (about 8 bytes).
const ringLinkOccupancyCycles = 3

// node is one CMP: cores' private caches, the shared intra-CMP bus, the
// ring gateway with its supplier predictor, and the home-memory slice.
type node struct {
	id int
	e  *Engine

	l1, l2 []*cache.Array
	cmpBus bus.Bus
	policy core.Policy
	pred   predictor.Predictor
	mem    *memory.Controller

	// supplierIdx maps lines held in a global supplier state in this CMP
	// to the core holding them. It is the gateway's ground truth for
	// predictor training and accuracy classification.
	supplierIdx hotmap.Table[int32]

	// outstanding holds the active (non-squashed) transaction per line.
	outstanding hotmap.Table[*txn]
	activeTxns  int
	issueQueue  []*txn

	// ringStates tracks per-foreign-transaction message state (split
	// request/reply bookkeeping, Table 2).
	ringStates hotmap.Table[*ringState]

	// predictFn is the node's persistent prediction thunk for
	// Policy.DecideRead; predictAddr/predictActual are its per-request
	// scratch inputs, written by handleReadRequest just before the call.
	predictFn     func() bool
	predictAddr   cache.LineAddr
	predictActual bool
}

// Meter exposes the energy meter.
func (e *Engine) Meter() *energy.Meter { return e.meter }

// Stats returns a snapshot of the engine statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	for _, r := range e.rings {
		s.RingSegments += r.Transmitted
		s.ReadRingSegments += r.ReadSegments
		s.RingLinkWaitCycles += r.LinkWaits()
	}
	for _, n := range e.nodes {
		s.MemReads += n.mem.Reads
		s.MemWrites += n.mem.Writes
		s.Prefetches += n.mem.Prefetches
		s.PrefetchHits += n.mem.PrefetchHits
		s.MemQueueCycles += n.mem.QueueCycles()
		if n.pred != nil {
			ps := n.pred.Stats()
			s.PredictorLookups += ps.Lookups
			s.PredictorInserts += ps.Inserts
			s.ExcludeHits += ps.ExcludeHits
		}
		for c := range n.l1 {
			s.L1Hits += n.l1[c].Hits
			s.L1Misses += n.l1[c].Misses
			s.L2Hits += n.l2[c].Hits
			s.L2Misses += n.l2[c].Misses
		}
		s.BusWaitCycles += n.cmpBus.WaitCycles
	}
	return s
}

// SetInvariantChecker installs a coherence checker run after every
// transaction completion (tests) or every N completions.
func (e *Engine) SetInvariantChecker(every uint64, check func() error) {
	e.checkEvery = every
	e.invariantCheck = check
}

// Nodes returns the node count.
func (e *Engine) Nodes() int { return len(e.nodes) }

// NodePolicy returns the snooping policy of a node (used by the dynamic
// adaptive governor).
func (e *Engine) NodePolicy(i int) core.Policy { return e.nodes[i].policy }

// LineState returns core c of node n's state for a line (testing and the
// invariant checker).
func (e *Engine) LineState(n, c int, addr cache.LineAddr) cache.State {
	if l := e.nodes[n].l2[c].Lookup(addr); l != nil {
		return l.State
	}
	return cache.Invalid
}

// ForEachLine visits every valid L2 line in the machine.
func (e *Engine) ForEachLine(visit func(node, core int, l cache.Line)) {
	for ni, n := range e.nodes {
		for ci := range n.l2 {
			n.l2[ci].ForEach(func(l cache.Line) { visit(ni, ci, l) })
		}
	}
}

// SupplierIndexed reports whether node n's gateway index lists the line as
// held in a supplier state (checker cross-validation).
func (e *Engine) SupplierIndexed(n int, addr cache.LineAddr) bool {
	return e.nodes[n].supplierIdx.Has(uint64(addr))
}

// ForEachSupplierIndex visits every (node, line) gateway supplier-index
// entry (checker cross-validation).
func (e *Engine) ForEachSupplierIndex(visit func(node int, addr cache.LineAddr)) {
	for ni, n := range e.nodes {
		ni := ni
		n.supplierIdx.ForEach(func(addr uint64, _ int32) {
			visit(ni, cache.LineAddr(addr))
		})
	}
}

// OutstandingTxns reports the number of live transactions (drain checks).
func (e *Engine) OutstandingTxns() int { return e.byID.Len() }

// RingStateCount reports per-node split-message bookkeeping entries still
// held (leak checks: must be zero once the machine drains).
func (e *Engine) RingStateCount() int {
	n := 0
	for _, nd := range e.nodes {
		n += nd.ringStates.Len()
	}
	return n
}

// DebugRingStates describes leaked per-node message states (diagnostics).
func (e *Engine) DebugRingStates() []string {
	var out []string
	for ni, nd := range e.nodes {
		ni := ni
		nd.ringStates.ForEach(func(id uint64, st *ringState) {
			out = append(out, fmt.Sprintf("node=%d txn=%d kind=%v req=%d mode=%d outcome=%v sent=%v awaitTrail=%v pend=%v",
				ni, id, st.dbgKind, st.dbgRequester, st.mode, st.outcomeReady, st.sentOwnReply, st.awaitingTrailingReply, st.pendingReply != nil))
		})
	}
	return out
}

// DebugTxns describes every live transaction (diagnostics).
func (e *Engine) DebugTxns() []string {
	var out []string
	e.byID.ForEach(func(id uint64, t *txn) {
		out = append(out, fmt.Sprintf(
			"txn=%d kind=%v addr=%#x node=%d core=%d age=%d needData=%v upgrade=%v found=%v dataArr=%v replyRet=%v installed=%v squashed=%v memPhase=%v retries=%d waiters=%d blocked=%d",
			id, t.kind, t.addr, t.node, t.core, t.age, t.needData, t.upgrade,
			t.found, t.dataArrived, t.replyReturned, t.installed, t.squashed,
			t.memPhase, t.retries, len(t.waiters), len(t.blockedMsgs)))
	})
	for ni, n := range e.nodes {
		if len(n.issueQueue) > 0 {
			out = append(out, fmt.Sprintf("node %d issueQueue=%d activeTxns=%d", ni, len(n.issueQueue), n.activeTxns))
		}
	}
	if e.retryLines != nil {
		e.retryLines.ForEach(func(addr uint64, c int32) {
			out = append(out, fmt.Sprintf("line %#x: %d retries parked in backoff", addr, c))
		})
	}
	return out
}

// HasActiveTxn reports whether any transaction for the line is in flight
// anywhere in the machine (the line may legitimately be "in limbo").
func (e *Engine) HasActiveTxn(addr cache.LineAddr) bool {
	found := false
	e.byID.ForEach(func(_ uint64, t *txn) {
		if t.addr == addr {
			found = true
		}
	})
	return found
}

// Cores returns the per-CMP core count.
func (e *Engine) Cores() int { return e.cfg.CoresPerCMP }

func (e *Engine) now() sim.Time { return e.kern.Now() }

func (e *Engine) maybeCheck() {
	e.completions++
	if e.invariantCheck != nil && e.checkEvery > 0 && e.completions%e.checkEvery == 0 {
		if err := e.invariantCheck(); err != nil {
			panic(fmt.Sprintf("protocol: coherence invariant violated at cycle %d: %v", e.now(), err))
		}
	}
}

// homeOf returns the home node of a line.
func (e *Engine) homeOf(addr cache.LineAddr) int {
	return memory.HomeNode(addr, e.cfg.NumCMPs)
}

// MemVersion returns the memory image version of a line (checker).
func (e *Engine) MemVersion(addr cache.LineAddr) uint64 {
	return e.nodes[e.homeOf(addr)].mem.Version(addr)
}

// LatestVersion returns the newest committed write generation of a line.
func (e *Engine) LatestVersion(addr cache.LineAddr) uint64 { return e.lines.latestVersion(addr) }
