package protocol

import (
	"reflect"

	"flexsnoop/internal/predictor"
)

// Stats aggregates the engine's counters. The Figure 6-9 metrics derive
// directly from these fields.
type Stats struct {
	// Processor-side accesses.
	Loads  uint64
	Stores uint64

	// Cache hit/miss counts, summed over all cores.
	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64

	// Supply sources for read misses that left the core's own L2.
	LocalSupplies  uint64 // another cache in the same CMP
	CacheSupplies  uint64 // a cache in another CMP, over the ring
	MemorySupplies uint64 // main memory

	// Ring transactions issued (including retries).
	ReadRequests  uint64
	WriteRequests uint64
	Retries       uint64
	Squashes      uint64
	// UseOnceReads completed during an overlapping write and delivered
	// their data without caching a copy.
	UseOnceReads uint64

	// Snoop operations performed at nodes other than the requester.
	ReadSnoopOps  uint64
	WriteSnoopOps uint64

	// Ring message-segment transmissions (the Figure 7 metric), total
	// and for read transactions only.
	RingSegments       uint64
	ReadRingSegments   uint64
	RingLinkWaitCycles uint64

	// Memory system.
	MemReads     uint64
	MemWrites    uint64
	Prefetches   uint64
	PrefetchHits uint64
	Writebacks   uint64

	// Exact-algorithm downgrade activity (Section 4.3.3).
	Downgrades          uint64
	DowngradeWritebacks uint64
	DowngradeRereads    uint64

	// Predictor activity and accuracy (Figure 11).
	PredictorLookups uint64
	PredictorInserts uint64
	ExcludeHits      uint64
	Accuracy         predictor.Accuracy
	// PerfectAccuracy is the conceptual perfect predictor checked at
	// every node until the supplier is found (Figure 11's leftmost bars).
	PerfectAccuracy predictor.Accuracy

	// Read-miss service latency (cycles) for misses that left the CMP.
	ReadMissCycles uint64
	ReadMissCount  uint64
	// ReadMissHist buckets those latencies by power of two: bucket i
	// holds misses with latency in [2^(i+5), 2^(i+6)) cycles (bucket 0
	// is <64, the last bucket is everything >= 2^16).
	ReadMissHist [12]uint64

	// Contention diagnostics.
	BusWaitCycles  uint64
	MemQueueCycles uint64

	// Fault injection and recovery (zero on fault-free runs).
	FaultDrops  uint64
	FaultDups   uint64
	FaultDelays uint64
	FaultStalls uint64
	// SnoopTimeouts counts expired response deadlines that took action
	// (waiting-on-unfaulted-path re-arms are not counted).
	SnoopTimeouts uint64
	// ScavengedStates counts per-node message records reclaimed after
	// timeouts retired their transactions.
	ScavengedStates uint64
	// DegradedLines counts lines the watchdog switched to forced Eager
	// forwarding.
	DegradedLines uint64
}

// HistBucket returns the ReadMissHist bucket index for a latency.
func HistBucket(cycles uint64) int {
	b := 0
	for v := cycles >> 6; v > 0 && b < 11; v >>= 1 {
		b++
	}
	return b
}

// HistBucketLabel names a ReadMissHist bucket.
func HistBucketLabel(i int) string {
	switch {
	case i <= 0:
		return "<64"
	case i >= 11:
		return ">=64k"
	default:
		return bucketLabels[i]
	}
}

var bucketLabels = [...]string{"", "64-127", "128-255", "256-511", "512-1023",
	"1k-2k", "2k-4k", "4k-8k", "8k-16k", "16k-32k", "32k-64k"}

// Sub returns s minus base, field-wise — the statistics accumulated after
// a measurement-warmup snapshot. Every numeric field subtracts; nested
// accuracy records subtract element-wise.
func (s Stats) Sub(base Stats) Stats {
	out := s
	ov := reflect.ValueOf(&out).Elem()
	bv := reflect.ValueOf(base)
	subInto(ov, bv)
	return out
}

func subInto(dst, base reflect.Value) {
	for i := 0; i < dst.NumField(); i++ {
		d, b := dst.Field(i), base.Field(i)
		switch d.Kind() {
		case reflect.Uint64:
			d.SetUint(d.Uint() - b.Uint())
		case reflect.Struct:
			subInto(d, b)
		case reflect.Array:
			for j := 0; j < d.Len(); j++ {
				d.Index(j).SetUint(d.Index(j).Uint() - b.Index(j).Uint())
			}
		}
	}
}

// SnoopsPerReadRequest returns the Figure 6 metric.
func (s Stats) SnoopsPerReadRequest() float64 {
	if s.ReadRequests == 0 {
		return 0
	}
	return float64(s.ReadSnoopOps) / float64(s.ReadRequests)
}

// ReadSegmentsPerRequest returns ring segment transmissions per read
// request (the Figure 7 quantity before normalisation).
func (s Stats) ReadSegmentsPerRequest() float64 {
	if s.ReadRequests == 0 {
		return 0
	}
	return float64(s.ReadRingSegments) / float64(s.ReadRequests)
}

// AvgReadMissLatency returns the mean off-CMP read-miss latency in cycles.
func (s Stats) AvgReadMissLatency() float64 {
	if s.ReadMissCount == 0 {
		return 0
	}
	return float64(s.ReadMissCycles) / float64(s.ReadMissCount)
}
