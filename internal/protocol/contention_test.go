package protocol_test

import (
	"math/rand"
	"testing"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/protocol"
)

// TestSingleLineHammer drives every core in the machine at a single line
// with a read/write mix — the worst case for collision handling,
// supplier-side serialization and squash/retry fairness. The invariant
// checker runs after every transaction completion.
func TestSingleLineHammer(t *testing.T) {
	for _, alg := range []config.Algorithm{config.Lazy, config.Eager, config.SupersetAgg, config.Exact} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			kern, e := testEngine(t, alg)
			rng := rand.New(rand.NewSource(13))
			issued, completed := 0, 0
			const line = cache.LineAddr(0x77)
			for i := 0; i < 400; i++ {
				node, c := rng.Intn(8), rng.Intn(4)
				kind := protocol.Load
				if rng.Intn(2) == 0 {
					kind = protocol.Store
				}
				issued++
				e.Access(node, c, kind, line, func() { completed++ })
				if rng.Intn(6) == 0 {
					kern.RunAll()
				}
			}
			run(t, kern, e)
			if completed != issued {
				t.Fatalf("completed %d/%d accesses", completed, issued)
			}
			// Writes all serialized: the final version equals the store
			// count only if every store produced a distinct generation.
			if v := e.LatestVersion(line); v == 0 {
				t.Error("no writes committed")
			}
		})
	}
}

// TestProducerConsumerChain bounces ownership of a few lines around the
// ring in a fixed pattern: node i writes, node i+1 reads then writes, ...
// — the migratory pattern that exercises supply-then-invalidate ordering.
func TestProducerConsumerChain(t *testing.T) {
	kern, e := testEngine(t, config.SupersetAgg)
	const line = cache.LineAddr(0x99)
	for round := 0; round < 10; round++ {
		for n := 0; n < 8; n++ {
			done := 0
			e.Access(n, 0, protocol.Load, line, func() { done++ })
			e.Access(n, 0, protocol.Store, line, func() { done++ })
			kern.RunAll()
			if done != 2 {
				t.Fatalf("round %d node %d: %d/2 accesses completed", round, n, done)
			}
		}
	}
	run(t, kern, e)
	if v := e.LatestVersion(line); v != 80 {
		t.Errorf("version = %d, want 80 (one per store)", v)
	}
	// Ownership ended at node 7.
	if st := e.LineState(7, 0, line); st != cache.Dirty {
		t.Errorf("final owner state = %v, want D", st)
	}
}

// TestOverlappingReadersAndOneWriter: many concurrent readers racing a
// single writer — the exact shape of the supplier-serialization bug this
// protocol fixes with pending-supply holds.
func TestOverlappingReadersAndOneWriter(t *testing.T) {
	kern, e := testEngine(t, config.Eager)
	const line = cache.LineAddr(0x44)
	// Seed a dirty supplier.
	e.Access(2, 0, protocol.Store, line, nil)
	kern.RunAll()
	completed := 0
	for n := 0; n < 8; n++ {
		if n == 2 {
			continue
		}
		e.Access(n, 0, protocol.Load, line, func() { completed++ })
	}
	e.Access(5, 1, protocol.Store, line, func() { completed++ })
	run(t, kern, e)
	if completed != 8 {
		t.Fatalf("completed %d/8", completed)
	}
	if v := e.LatestVersion(line); v != 2 {
		t.Errorf("version = %d, want 2", v)
	}
}

// TestManyLinesManyCores is a broader soak across both rings with the
// checker armed, catching cross-line interference bugs.
func TestManyLinesManyCores(t *testing.T) {
	kern, e := testEngine(t, config.Subset)
	rng := rand.New(rand.NewSource(29))
	issued, completed := 0, 0
	for i := 0; i < 1500; i++ {
		node, c := rng.Intn(8), rng.Intn(4)
		addr := cache.LineAddr(rng.Intn(16)) // very hot, both rings
		kind := protocol.Load
		if rng.Intn(3) == 0 {
			kind = protocol.Store
		}
		issued++
		e.Access(node, c, kind, addr, func() { completed++ })
		if rng.Intn(10) == 0 {
			kern.RunAll()
		}
	}
	run(t, kern, e)
	if completed != issued {
		t.Fatalf("completed %d/%d", completed, issued)
	}
}

// TestSoak is a long randomized soak across all algorithms with the
// invariant checker armed: tens of thousands of references over a mix of
// hot and cold lines, bursts of concurrency, and every message path.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test runs tens of thousands of references")
	}
	for _, alg := range append(config.Algorithms(), config.DynamicSuperset) {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			kern, e := testEngine(t, alg)
			rng := rand.New(rand.NewSource(101))
			issued, completed := 0, 0
			for i := 0; i < 8000; i++ {
				node, c := rng.Intn(8), rng.Intn(4)
				var addr cache.LineAddr
				switch rng.Intn(3) {
				case 0:
					addr = cache.LineAddr(rng.Intn(8)) // scorching
				case 1:
					addr = cache.LineAddr(0x100 + rng.Intn(256)) // warm
				default:
					addr = cache.LineAddr(0x10000 + rng.Intn(1<<13)) // cold, evicting
				}
				kind := protocol.Load
				if rng.Intn(3) == 0 {
					kind = protocol.Store
				}
				issued++
				e.Access(node, c, kind, addr, func() { completed++ })
				if rng.Intn(12) == 0 {
					kern.RunAll()
				}
			}
			run(t, kern, e)
			if completed != issued {
				t.Fatalf("completed %d/%d", completed, issued)
			}
		})
	}
}

// TestEvictionStorm hammers a single L2 set from every node with a
// read/write mix, so lines are constantly evicted mid-transaction: the
// upgrade-retry, write-back and masterless-marking paths all fire under
// concurrency, with the invariant checker armed.
func TestEvictionStorm(t *testing.T) {
	for _, alg := range []config.Algorithm{config.Lazy, config.SupersetAgg, config.Exact} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			kern, e := testEngine(t, alg)
			rng := rand.New(rand.NewSource(77))
			issued, completed := 0, 0
			for i := 0; i < 1200; i++ {
				node, c := rng.Intn(8), rng.Intn(4)
				// 24 distinct tags, all mapping to L2 set 0: constant
				// conflict evictions (8-way sets).
				addr := cache.LineAddr(rng.Intn(24)) << 10
				kind := protocol.Load
				if rng.Intn(3) == 0 {
					kind = protocol.Store
				}
				issued++
				e.Access(node, c, kind, addr, func() { completed++ })
				if rng.Intn(6) == 0 {
					kern.RunAll()
				}
			}
			run(t, kern, e)
			if completed != issued {
				t.Fatalf("completed %d/%d", completed, issued)
			}
			if e.Stats().Writebacks == 0 {
				t.Error("eviction storm produced no write-backs")
			}
		})
	}
}
