package protocol

import (
	"fmt"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/ring"
	"flexsnoop/internal/sim"
)

// txn is one outstanding ring coherence transaction at its requester node.
type txn struct {
	id   ring.TxnID
	kind ring.Kind
	addr cache.LineAddr
	node int
	core int
	// age is the original issue cycle; retries keep it, so the oldest
	// transaction eventually wins every collision (livelock freedom).
	age sim.Time
	// issued is when this attempt started (for latency accounting).
	issued sim.Time

	// needData: read, or write miss. False for upgrades.
	needData bool
	// upgrade: write with a valid local copy.
	upgrade bool

	// Aggregate reply state collected from returning message halves.
	found       bool
	supplier    int
	sharerSeen  bool
	snoopedMask uint64

	requestReturned bool
	replyReturned   bool

	dataArrived bool
	dataVersion uint64
	// dataDirty: ownership transferred with the data (write supply); a
	// squashed transaction must write the data back rather than drop it.
	dataDirty bool

	installed bool
	squashed  bool
	// memPhase: negative reply received, memory read in flight.
	memPhase bool
	retired  bool
	// sharedGrant demotes this read's memory grant to plain Shared (it
	// crossed another in-flight read of the line).
	sharedGrant bool
	// noInstall makes a read deliver its data to the core without caching
	// a copy: the read overlapped an in-flight write, which may already
	// have passed this node and could never invalidate a late install.
	// The one-time use is legal (the read serializes before that write);
	// caching would create a stale copy.
	noInstall bool

	done func()
	// waiters are transactions parked behind this one (same line, same
	// node); each is restarted when this transaction retires. Storing the
	// records directly (rather than restart closures) keeps the wait path
	// allocation-free.
	waiters []*txn

	// blockedMsgs holds colliding ring messages delayed until this
	// write's in-limbo data is installed (see handleCollision).
	blockedMsgs []blockedMsg

	retries int
	// timeoutRetries counts only deadline-driven retransmits (fault
	// runs). Collision squashes stay unbounded — age arbitration makes
	// them livelock-free — but timeout retransmits are budgeted, widen
	// the next attempt's deadline and back off exponentially.
	timeoutRetries int
}

type blockedMsg struct {
	ringIdx int
	m       *ring.Message
}

// older reports whether transaction (age, node) a is older than b in the
// global priority order used for collision resolution.
func older(ageA sim.Time, nodeA int, ageB sim.Time, nodeB int) bool {
	if ageA != ageB {
		return ageA < ageB
	}
	return nodeA < nodeB
}

// issueTxn creates and launches a ring transaction from a node, or queues
// it behind an existing transaction / a free MSHR slot.
func (e *Engine) issueTxn(t *txn) {
	n := e.nodes[t.node]
	if own, _ := n.outstanding.Get(uint64(t.addr)); own != nil {
		// One outstanding transaction per line per node: wait for it.
		own.waiters = append(own.waiters, t)
		return
	}
	if n.activeTxns >= e.cfg.MaxTransactionsPerNode {
		n.issueQueue = append(n.issueQueue, t)
		return
	}
	e.launch(t)
}

// restart re-executes the full access path for a waiter or retried
// transaction: the local cache state may have changed while it waited.
func (e *Engine) restart(t *txn) {
	e.access(t.node, t.core, t.kind, t.addr, t.age, t.done, t.waiters, t.retries, t.timeoutRetries)
}

// launch puts the transaction on the ring.
func (e *Engine) launch(t *txn) {
	n := e.nodes[t.node]
	e.txnSeq++
	t.id = e.txnSeq
	t.issued = e.now()
	e.byID.Put(uint64(t.id), t)
	n.outstanding.Put(uint64(t.addr), t)
	n.activeTxns++
	if e.tel != nil {
		e.tel.TxnIssue(e.now(), uint64(t.id), t.kind.String(), uint64(t.addr), t.node, t.core, t.retries)
	}

	if t.kind == ring.ReadSnoop {
		e.stats.ReadRequests++
		e.recordPerfectPrediction(t)
		// A write already in flight for the line may have passed this
		// node: any data this read obtains is usable once but must not
		// be cached (see noInstall). The line table's liveWrites column
		// indexes exactly the non-retired write transactions in byID.
		if s, ok := e.lines.find(t.addr); ok && e.lines.liveWrites[s] > 0 {
			t.noInstall = true
		}
	} else {
		e.stats.WriteRequests++
		e.lines.liveWrites[e.lines.slot(t.addr)]++
	}

	m := e.msgPool.Get()
	m.Txn, m.Kind, m.Addr, m.Requester, m.Age = t.id, t.kind, t.addr, t.node, t.age
	// The request and reply travel together on the first segment
	// (Figure 3(b)).
	m.HasRequest, m.HasReply = true, true
	m.NeedsData = t.kind == ring.WriteSnoop && t.needData
	e.forward(ringFor(t.addr, e.cfg.NumRings), t.node, m)
	e.armDeadline(t)
}

// recordPerfectPrediction models Figure 11's perfect predictor: checked at
// every node, in ring order, until the request finds the supplier.
func (e *Engine) recordPerfectPrediction(t *txn) {
	nodeID := t.node
	for i := 0; i < e.cfg.NumCMPs-1; i++ {
		nodeID = (nodeID + 1) % e.cfg.NumCMPs
		if e.nodes[nodeID].supplierIdx.Has(uint64(t.addr)) {
			e.stats.PerfectAccuracy.Classify(true, true)
			return
		}
		e.stats.PerfectAccuracy.Classify(false, false)
	}
}

// ringFor maps an address to its embedded ring (Section 2.2).
func ringFor(addr cache.LineAddr, nrings int) int { return ring.Select(addr, nrings) }

// squashLocal marks the node's own outstanding transaction squashed after
// losing a collision. Its in-flight messages keep circulating; the retry
// happens when they drain back.
func (e *Engine) squashLocal(t *txn) {
	if t.squashed {
		return
	}
	if debugAddrOn {
		e.lineTrace(t.addr, "squashLocal txn %d (n%d %v)", t.id, t.node, t.kind)
	}
	t.squashed = true
	e.stats.Squashes++
	if e.tel != nil {
		e.tel.TxnEvent(e.now(), uint64(t.id), "squash", t.node)
	}
}

// consumeReturn processes a message that has circled back to its
// requester.
func (e *Engine) consumeReturn(ringIdx int, m *ring.Message) {
	// The requester is the message's last stop either way: recycle it once
	// its contents are folded into the transaction.
	defer e.msgPool.Put(m)
	t, ok := e.byID.Get(uint64(m.Txn))
	if !ok {
		return // straggler for an already-retired transaction
	}
	if m.HasReply {
		t.replyReturned = true
		t.found = t.found || m.Found
		if m.Found {
			t.supplier = m.Supplier
		}
		t.sharerSeen = t.sharerSeen || m.SharerSeen
		t.snoopedMask |= m.SnoopedMask
		t.squashed = t.squashed || m.Squashed
		t.sharedGrant = t.sharedGrant || m.SharedGrant
	}
	if m.HasRequest {
		t.requestReturned = true
		// A split request-half carries collision verdicts picked up after
		// the split point; it precedes the reply around the ring.
		t.sharedGrant = t.sharedGrant || m.SharedGrant
	}
	if t.replyReturned {
		e.onReplyComplete(t)
	}
}

// onReplyComplete advances a transaction whose ring circuit finished.
func (e *Engine) onReplyComplete(t *txn) {
	if t.retired || t.memPhase {
		return
	}
	if t.squashed {
		e.finishSquashed(t)
		return
	}
	if t.kind == ring.ReadSnoop {
		if t.found {
			// Data arrives (or arrived) via the torus; install happens
			// at data arrival. Retire once both are in.
			e.maybeRetire(t)
			return
		}
		e.startMemoryRead(t)
		return
	}
	// Write transaction: every node has invalidated. A reply returning
	// without every node's snoop is a protocol bug, not a tolerable
	// outcome: it would let stale copies survive the write.
	if !msgAllSnooped(t.snoopedMask, t.node, e.cfg.NumCMPs) {
		if e.inj != nil {
			// Under injected faults a delayed reply half can overtake its
			// own request around the ring and return with a partial sweep.
			// The sweep is unusable: squash and retransmit.
			e.squashLocal(t)
			e.finishSquashed(t)
			return
		}
		panic(fmt.Sprintf("protocol: write txn %d completed with partial invalidation mask %b", t.id, t.snoopedMask))
	}
	if t.needData {
		if t.found {
			if t.dataArrived {
				e.installWrite(t)
				e.retire(t)
			}
			// Otherwise the data-arrival event completes the write.
			return
		}
		e.startMemoryRead(t)
		return
	}
	// Upgrade: perform the write now if a CMP-local copy survived the
	// races (the data may live in another local core's cache).
	if !e.completeUpgrade(t.node, t.core, t.addr) {
		// Every local copy was invalidated by a racing winner: retry as
		// a miss.
		e.scheduleRetry(t)
		return
	}
	t.installed = true
	if t.done != nil {
		t.done()
	}
	e.retire(t)
}

// completeUpgrade performs an upgrade write using any surviving CMP-local
// copy as the data source, reporting false when none remains.
func (e *Engine) completeUpgrade(nodeID, coreID int, addr cache.LineAddr) bool {
	n := e.nodes[nodeID]
	hasAny := false
	for c := range n.l2 {
		if n.l2[c].Contains(addr) {
			hasAny = true
			break
		}
	}
	if !hasAny {
		return false
	}
	// Invalidate every other local copy first (one may be the local or
	// global master).
	for c := range n.l2 {
		if c != coreID && n.l2[c].Contains(addr) {
			e.invalidateCoreLine(nodeID, c, addr)
		}
	}
	if n.l2[coreID].Contains(addr) {
		e.performWrite(nodeID, coreID, addr)
	} else {
		v := e.nextVersion(addr)
		e.observe(nodeID, coreID, true, addr, v)
		e.installLine(nodeID, coreID, addr, cache.Dirty, v)
	}
	return true
}

// finishSquashed drains a squashed transaction and schedules its retry.
func (e *Engine) finishSquashed(t *txn) {
	if t.found && !t.dataArrived {
		return // keep draining: supplied data is still in flight
	}
	if t.installed {
		// The line was supplied and installed before the squash caught
		// up: the access already completed (the supplier serialized us
		// first), so there is nothing to retry.
		e.retire(t)
		return
	}
	if t.dataArrived && t.dataDirty {
		// The supplier invalidated itself for us; preserve the data.
		e.nodes[e.homeOf(t.addr)].mem.WriteBack(t.addr, t.dataVersion)
		e.stats.Writebacks++
	}
	e.scheduleRetry(t)
}

// scheduleRetry retires this attempt and reissues it after a backoff that
// grows with the retry count (breaking pathological phase-locks between
// repeatedly colliding transactions), preserving age, waiters and the
// completion callback.
func (e *Engine) scheduleRetry(t *txn) {
	mult := t.retries + 1
	if mult > 16 {
		mult = 16
	}
	e.retryAfter(t, sim.Time(e.cfg.RetryBackoffCycles*mult))
}

// retryAfter retires this attempt and reissues it after an explicit
// backoff, preserving age, waiters and the completion callback. Collision
// squashes back off linearly (scheduleRetry); timeout retransmits back
// off exponentially (onTxnDeadline).
func (e *Engine) retryAfter(t *txn, backoff sim.Time) {
	retry := &txn{
		kind: t.kind, addr: t.addr, node: t.node, core: t.core,
		age: t.age, done: t.done, waiters: t.waiters, retries: t.retries + 1,
		timeoutRetries: t.timeoutRetries,
	}
	t.waiters = nil
	if e.tel != nil {
		e.tel.TxnEvent(e.now(), uint64(t.id), "retry", t.node)
	}
	e.retire(t)
	e.stats.Retries++
	if e.retryLines == nil {
		c := e.newCall()
		c.e, c.t = e, retry
		e.kern.AfterArg(backoff, restartCall, c)
		return
	}
	// Fault runs track parked retries per line so the watchdog's
	// degradation pass sees work hiding in backoff timers.
	*e.retryLines.Upsert(uint64(retry.addr))++
	e.kern.After(backoff, func() {
		if c, _ := e.retryLines.Get(uint64(retry.addr)); c > 1 {
			e.retryLines.Put(uint64(retry.addr), c-1)
		} else {
			e.retryLines.Delete(uint64(retry.addr))
		}
		e.restart(retry)
	})
}

// deliverData handles a data-transfer message (torus) arriving at the
// requester.
func (e *Engine) deliverData(txnID ring.TxnID, version uint64, dirty bool) {
	t, ok := e.byID.Get(uint64(txnID))
	if !ok {
		return
	}
	if t.memPhase {
		// Only possible under injected faults: a delayed request half was
		// re-snooped after a reordered negative reply already sent us to
		// memory. memReadDone owns completion now, and the supplier kept
		// (read) or wrote back (write) its copy, so dropping this late
		// transfer loses nothing.
		return
	}
	t.dataArrived = true
	t.dataVersion = version
	t.dataDirty = dirty
	if debugAddrOn {
		e.lineTrace(t.addr, "dataArrive txn %d (n%d %v) v%d dirty=%v squashed=%v", t.id, t.node, t.kind, version, dirty, t.squashed)
	}
	if e.tel != nil {
		e.tel.TxnEvent(e.now(), uint64(t.id), "data", t.node)
	}
	if t.squashed {
		if t.replyReturned {
			e.finishSquashed(t)
		}
		return
	}
	if t.kind == ring.ReadSnoop {
		// A read's line is usable as soon as the data arrives (Section
		// 2.2): install immediately, as the CMP's local master unless
		// the S_L ablation is on.
		st := cache.SharedLocal
		if e.cfg.DisableLocalMaster {
			st = cache.Shared
		}
		e.installRead(t, st, version)
		e.maybeRetire(t)
		return
	}
	// A write may not be performed until every node has invalidated: the
	// data stays buffered in the transaction until the reply returns.
	// Colliding snoops for the line are held off meanwhile (the line is
	// in limbo between the old supplier and us).
	if t.replyReturned {
		e.installWrite(t)
		e.retire(t)
	}
}

// installRead places a read transaction's line in the requesting core.
func (e *Engine) installRead(t *txn, st cache.State, version uint64) {
	if t.installed {
		return
	}
	t.installed = true
	e.observe(t.node, t.core, false, t.addr, version)
	if t.noInstall {
		// Deliver the value once without caching: an overlapping write
		// may already be past this node and could never invalidate a
		// late install.
		if debugAddrOn {
			e.lineTrace(t.addr, "useOnce txn %d (n%d) v%d", t.id, t.node, version)
		}
		e.stats.UseOnceReads++
	} else {
		e.installLine(t.node, t.core, t.addr, st, version)
	}
	lat := uint64(e.now() - t.issued)
	e.stats.ReadMissCycles += lat
	e.stats.ReadMissCount++
	e.stats.ReadMissHist[HistBucket(lat)]++
	if t.done != nil {
		t.done()
	}
}

// installWrite performs a data-carrying write: install dirty, stamp a new
// write generation.
func (e *Engine) installWrite(t *txn) {
	if t.installed {
		return
	}
	t.installed = true
	v := e.nextVersion(t.addr)
	e.observe(t.node, t.core, true, t.addr, v)
	e.installLine(t.node, t.core, t.addr, cache.Dirty, v)
	// The completed invalidation sweep made us the only holder.
	e.nodes[e.homeOf(t.addr)].mem.ClearShared(t.addr)
	if t.done != nil {
		t.done()
	}
}

// startMemoryRead begins the memory phase after a negative ring reply.
func (e *Engine) startMemoryRead(t *txn) {
	t.memPhase = true
	if e.tel != nil {
		e.tel.TxnEvent(e.now(), uint64(t.id), "memread", e.homeOf(t.addr))
	}
	home := e.nodes[e.homeOf(t.addr)]
	rt := home.mem.ReadLatency(e.now(), t.addr, t.node)
	if s, ok := e.lines.find(t.addr); ok && e.lines.flags[s]&lineDowngraded != 0 {
		// Re-read of a line the Exact predictor downgraded: charged to
		// the algorithm (Section 6.1.4).
		e.lines.flags[s] &^= lineDowngraded
		e.meter.AddExtraMemAccess()
		e.stats.DowngradeRereads++
	}
	c := e.newCall()
	c.e, c.t = e, t
	e.kern.AfterArg(rt, memReadCall, c)
}

// memReadDone completes a transaction's memory phase. While a transaction
// is in memPhase every other completion path is gated off (onReplyComplete
// returns early; no data transfer is in flight), so only this callback can
// retire it — which is what makes recycling retired transactions safe.
func (e *Engine) memReadDone(t *txn) {
	home := e.nodes[e.homeOf(t.addr)]
	version := home.mem.Version(t.addr)
	if debugAddrOn {
		e.lineTrace(t.addr, "memData txn %d (n%d) v%d squashed=%v sharedGrant=%v", t.id, t.node, version, t.squashed, t.sharedGrant)
	}
	if t.retired {
		return
	}
	if t.squashed {
		t.dataArrived = true
		t.dataVersion = version
		e.finishSquashed(t)
		return
	}
	t.dataArrived = true
	t.dataVersion = version
	e.stats.MemorySupplies++
	if t.kind == ring.ReadSnoop {
		// The ring circuit never snoops the requester's own CMP: a
		// sibling core may hold a plain-S copy only it knows about.
		localSharer := false
		for c := range e.nodes[t.node].l2 {
			if c != t.core && e.nodes[t.node].l2[c].Contains(t.addr) {
				localSharer = true
				break
			}
		}
		st := cache.SharedGlobal
		switch {
		case t.sharedGrant:
			// A concurrent read crossed us: neither may become a
			// master; memory keeps supplying this line, and the
			// home remembers the masterless copies.
			st = cache.Shared
			home.mem.MarkShared(t.addr)
		case !t.sharerSeen && !localSharer && !home.mem.SharedMarked(t.addr):
			// No sharer among the snooped nodes, none in our own
			// CMP, and the home guarantees no masterless sharers
			// hide at filtered nodes (every plain-S-without-master
			// path sets the home's mark): Exclusive is safe even
			// though filtering algorithms snooped only a subset.
			st = cache.Exclusive
		}
		e.installRead(t, st, version)
	} else {
		e.installWrite(t)
	}
	e.retire(t)
}

// msgAllSnooped reports whether every node except the requester snooped.
func msgAllSnooped(mask uint64, requester, numNodes int) bool {
	want := uint64(1)<<uint(numNodes) - 1
	want &^= uint64(1) << uint(requester)
	return mask&want == want
}

// maybeRetire retires a found transaction once both the data and the ring
// reply are in.
func (e *Engine) maybeRetire(t *txn) {
	if t.replyReturned && (!t.found || t.dataArrived) && t.installed {
		e.retire(t)
	}
}

// retire releases the transaction's MSHR slot, wakes waiters and blocked
// messages, and pops the issue queue.
func (e *Engine) retire(t *txn) {
	if t.retired {
		return
	}
	t.retired = true
	if e.tel != nil {
		e.tel.TxnComplete(e.now(), uint64(t.id))
	}
	n := e.nodes[t.node]
	e.byID.Delete(uint64(t.id))
	if t.kind == ring.WriteSnoop {
		if s, ok := e.lines.find(t.addr); ok && e.lines.liveWrites[s] > 0 {
			e.lines.liveWrites[s]--
		}
	}
	if own, _ := n.outstanding.Get(uint64(t.addr)); own == t {
		n.outstanding.Delete(uint64(t.addr))
	}
	n.activeTxns--
	for _, w := range t.waiters {
		c := e.newCall()
		c.e, c.t = e, w
		e.kern.AfterArg(1, restartCall, c)
	}
	t.waiters = nil
	// Re-deliver blocked messages synchronously and in order: the request
	// must be re-processed before its trailing reply can arrive, and the
	// modeBlocked bookkeeping must be cleared first so each message is
	// handled afresh.
	blocked := t.blockedMsgs
	t.blockedMsgs = nil
	for _, bm := range blocked {
		if st, _ := n.ringStates.Get(uint64(bm.m.Txn)); st != nil && st.mode == modeBlocked {
			n.dropState(bm.m.Txn)
		}
	}
	for _, bm := range blocked {
		e.deliver(bm.ringIdx, t.node, bm.m)
	}
	if len(n.issueQueue) > 0 && n.activeTxns < e.cfg.MaxTransactionsPerNode {
		next := n.issueQueue[0]
		n.issueQueue = n.issueQueue[1:]
		e.kern.After(1, func() { e.restart(next) })
	}
	e.maybeCheck()
	// All references are gone: byID/outstanding entries deleted, waiters
	// drained, blocked messages redelivered. Recycle the record.
	e.freeTxn(t)
}

// nextVersion stamps a new global write generation for the line.
func (e *Engine) nextVersion(addr cache.LineAddr) uint64 {
	return e.lines.nextVersion(addr)
}
