package protocol

import (
	"fmt"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/ring"
	"flexsnoop/internal/sim"
)

// Access performs one data reference from a core. done fires when the
// reference is performed: data bound for loads, write globally performed
// for stores. done may be nil.
func (e *Engine) Access(nodeID, coreID int, kind AccessKind, addr cache.LineAddr, done func()) {
	if nodeID < 0 || nodeID >= len(e.nodes) {
		panic(fmt.Sprintf("protocol: node %d out of range", nodeID))
	}
	if coreID < 0 || coreID >= e.cfg.CoresPerCMP {
		panic(fmt.Sprintf("protocol: core %d out of range", coreID))
	}
	if kind == Load {
		e.stats.Loads++
	} else {
		e.stats.Stores++
	}
	rk := ring.ReadSnoop
	if kind == Store {
		rk = ring.WriteSnoop
	}
	e.access(nodeID, coreID, rk, addr, e.now(), done, nil, 0, 0)
}

// access is the full reference path; it is re-entered by retries and
// waiters (which carry their original age).
func (e *Engine) access(nodeID, coreID int, kind ring.Kind, addr cache.LineAddr, age sim.Time, done func(), waiters []*txn, retries, timeoutRetries int) {
	n := e.nodes[nodeID]
	if kind == ring.ReadSnoop {
		// L1 filter: loads complete from L1.
		if l := n.l1[coreID].Access(addr); l != nil {
			e.observe(nodeID, coreID, false, addr, l.Version)
			e.completeAfter(sim.Time(e.cfg.L1.RoundTripCycles), done, waiters)
			return
		}
	} else {
		n.l1[coreID].Access(addr) // stats only; stores always check L2 state
	}

	l2RT := sim.Time(e.cfg.L2.RoundTripCycles)
	line := n.l2[coreID].Access(addr)

	if kind == ring.ReadSnoop {
		if line != nil {
			e.observe(nodeID, coreID, false, addr, line.Version)
			n.l1[coreID].Insert(addr, cache.Shared, line.Version)
			e.completeAfter(l2RT, done, waiters)
			return
		}
		// Miss in own L2: snoop the local CMP before going to the ring
		// (Section 2.2).
		e.kern.AfterArg(l2RT, localPathCall, e.pathCtxFor(nodeID, coreID, ring.ReadSnoop, addr, age, done, waiters, retries, timeoutRetries))
		return
	}

	// Store path.
	if line != nil && (line.State == cache.Exclusive || line.State == cache.Dirty) {
		// Silent upgrade: the only copy in the machine.
		e.performWrite(nodeID, coreID, addr)
		e.completeAfter(l2RT, done, waiters)
		return
	}
	e.kern.AfterArg(l2RT, localPathCall, e.pathCtxFor(nodeID, coreID, ring.WriteSnoop, addr, age, done, waiters, retries, timeoutRetries))
}

// pathCtxFor fills a pooled access-path context.
func (e *Engine) pathCtxFor(nodeID, coreID int, kind ring.Kind, addr cache.LineAddr, age sim.Time, done func(), waiters []*txn, retries, timeoutRetries int) *pathCtx {
	p := e.newPath()
	p.e, p.node, p.core, p.kind = e, nodeID, coreID, kind
	p.addr, p.age, p.done, p.waiters, p.retries = addr, age, done, waiters, retries
	p.timeoutRetries = timeoutRetries
	return p
}

// completeAfter finishes a reference after a fixed latency, waking any
// piggy-backed waiters.
func (e *Engine) completeAfter(delay sim.Time, done func(), waiters []*txn) {
	p := e.newPath()
	p.e, p.done, p.waiters = e, done, waiters
	e.kern.AfterArg(delay, doneCall, p)
}

// localReadBody snoops the CMP-local caches once the intra-CMP bus grants
// (see localPathCall) and falls back to the ring.
func (e *Engine) localReadBody(nodeID, coreID int, addr cache.LineAddr, age sim.Time, done func(), waiters []*txn, retries, timeoutRetries int) {
	n := e.nodes[nodeID]
	// Re-check own L2: a waiter's earlier fill may have landed.
	if l := n.l2[coreID].Access(addr); l != nil {
		e.observe(nodeID, coreID, false, addr, l.Version)
		n.l1[coreID].Insert(addr, cache.Shared, l.Version)
		if done != nil {
			done()
		}
		for _, w := range waiters {
			e.restart(w)
		}
		return
	}
	if sup, ok := e.localSupplier(nodeID, coreID, addr); ok {
		e.supplyLocal(nodeID, sup, coreID, addr)
		e.stats.LocalSupplies++
		if done != nil {
			done()
		}
		for _, w := range waiters {
			e.restart(w)
		}
		return
	}
	t := e.newTxn()
	t.kind, t.addr, t.node, t.core = ring.ReadSnoop, addr, nodeID, coreID
	t.age, t.needData, t.done, t.waiters, t.retries = age, true, done, waiters, retries
	t.timeoutRetries = timeoutRetries
	e.issueTxn(t)
}

// localWriteBody resolves store misses and upgrades once the intra-CMP
// bus grants (see localPathCall).
func (e *Engine) localWriteBody(nodeID, coreID int, addr cache.LineAddr, age sim.Time, done func(), waiters []*txn, retries, timeoutRetries int) {
	n := e.nodes[nodeID]
	// Re-check own L2 after the bus wait.
	if l := n.l2[coreID].Lookup(addr); l != nil && (l.State == cache.Exclusive || l.State == cache.Dirty) {
		e.performWrite(nodeID, coreID, addr)
		if done != nil {
			done()
		}
		for _, w := range waiters {
			e.restart(w)
		}
		return
	}
	// Local ownership transfer: another core in this CMP holds the
	// machine's only copy (E or D) — no ring transaction needed.
	if owner, ok := n.supplierIdx.Get(uint64(addr)); ok && int(owner) != coreID {
		st := n.l2[owner].Lookup(addr)
		if st != nil && (st.State == cache.Exclusive || st.State == cache.Dirty) {
			e.invalidateCoreLine(nodeID, int(owner), addr)
			v := e.nextVersion(addr)
			e.observe(nodeID, coreID, true, addr, v)
			e.installLine(nodeID, coreID, addr, cache.Dirty, v)
			if done != nil {
				done()
			}
			for _, w := range waiters {
				e.restart(w)
			}
			return
		}
	}
	// Ring write: upgrade when any CMP-local copy exists, else miss.
	hasCopy := false
	for c := range n.l2 {
		if n.l2[c].Contains(addr) {
			hasCopy = true
			break
		}
	}
	t := e.newTxn()
	t.kind, t.addr, t.node, t.core = ring.WriteSnoop, addr, nodeID, coreID
	t.age, t.needData, t.upgrade = age, !hasCopy, hasCopy
	t.done, t.waiters, t.retries = done, waiters, retries
	t.timeoutRetries = timeoutRetries
	e.issueTxn(t)
}

// localSupplier finds a CMP-local cache able to supply a read (S_L or any
// global supplier state).
func (e *Engine) localSupplier(nodeID, exceptCore int, addr cache.LineAddr) (coreID int, ok bool) {
	n := e.nodes[nodeID]
	for c := range n.l2 {
		if c == exceptCore {
			continue
		}
		if l := n.l2[c].Lookup(addr); l != nil && l.State.LocalSupplier() {
			return c, true
		}
	}
	return 0, false
}

// supplyLocal transfers a line between two caches of the same CMP:
// supplier E->S_G and D->T (it keeps its master roles), reader installs S.
func (e *Engine) supplyLocal(nodeID, supCore, dstCore int, addr cache.LineAddr) {
	n := e.nodes[nodeID]
	l := n.l2[supCore].Lookup(addr)
	if l == nil || !l.State.LocalSupplier() {
		panic("protocol: local supply from a non-supplier")
	}
	switch l.State {
	case cache.Exclusive:
		n.l2[supCore].SetState(addr, cache.SharedGlobal)
	case cache.Dirty:
		n.l2[supCore].SetState(addr, cache.Tagged)
	}
	version := l.Version
	if debugAddrOn {
		e.lineTrace(addr, "supplyLocal n%d c%d->c%d v%d", nodeID, supCore, dstCore, version)
	}
	e.observe(nodeID, dstCore, false, addr, version)
	e.installLine(nodeID, dstCore, addr, cache.Shared, version)
}

// installLine inserts a line into a core's L2 (and L1), maintaining the
// supplier index, predictor training and eviction side effects.
func (e *Engine) installLine(nodeID, coreID int, addr cache.LineAddr, st cache.State, version uint64) {
	n := e.nodes[nodeID]
	if st.GlobalSupplier() {
		if prev, ok := n.supplierIdx.Get(uint64(addr)); ok && int(prev) != coreID {
			panic(fmt.Sprintf("protocol: node %d would hold two supplier copies of %#x", nodeID, addr))
		}
		n.supplierIdx.Put(uint64(addr), int32(coreID))
		e.trainInsert(n, addr)
		e.lines.clearFlag(addr, lineDowngraded)
	}
	if debugAddrOn {
		e.lineTrace(addr, "install n%d c%d %v v%d", nodeID, coreID, st, version)
	}
	victim, evicted := n.l2[coreID].Insert(addr, st, version)
	if evicted {
		e.handleEviction(nodeID, coreID, victim)
	}
	n.l1[coreID].Insert(addr, cache.Shared, version)
}

// performWrite stamps a new write generation on a line the core already
// owns exclusively (E or D) or has just won an upgrade for.
func (e *Engine) performWrite(nodeID, coreID int, addr cache.LineAddr) {
	n := e.nodes[nodeID]
	line := n.l2[coreID].Lookup(addr)
	if line == nil {
		panic("protocol: performWrite on an absent line")
	}
	wasSupplier := line.State.GlobalSupplier()
	line.State = cache.Dirty
	line.Version = e.nextVersion(addr)
	if debugAddrOn {
		e.lineTrace(addr, "performWrite n%d c%d v%d", nodeID, coreID, line.Version)
	}
	e.observe(nodeID, coreID, true, addr, line.Version)
	n.l2[coreID].Touch(addr)
	n.l1[coreID].Insert(addr, cache.Shared, line.Version)
	// Invalidate every other CMP-local copy (the ring message does not
	// visit the requester's own CMP).
	for c := range n.l2 {
		if c != coreID && n.l2[c].Contains(addr) {
			e.invalidateCoreLine(nodeID, c, addr)
		}
	}
	if !wasSupplier {
		if prev, ok := n.supplierIdx.Get(uint64(addr)); ok && int(prev) != coreID {
			panic(fmt.Sprintf("protocol: write upgrade with foreign local supplier of %#x", addr))
		}
		n.supplierIdx.Put(uint64(addr), int32(coreID))
		e.trainInsert(n, addr)
		e.lines.clearFlag(addr, lineDowngraded)
	}
	e.nodes[e.homeOf(addr)].mem.ClearShared(addr)
}

// invalidateCoreLine removes one core's copy, maintaining L1 inclusion,
// the supplier index and predictor training.
func (e *Engine) invalidateCoreLine(nodeID, coreID int, addr cache.LineAddr) {
	n := e.nodes[nodeID]
	if _, ok := n.l2[coreID].Invalidate(addr); !ok {
		return
	}
	if debugAddrOn {
		e.lineTrace(addr, "invalidateCore n%d c%d", nodeID, coreID)
	}
	n.l1[coreID].Invalidate(addr)
	if owner, ok := n.supplierIdx.Get(uint64(addr)); ok && int(owner) == coreID {
		n.supplierIdx.Delete(uint64(addr))
		e.trainRemove(n, addr)
	}
}

// invalidateCMP removes every copy of a line from a node, returning the
// invalidated supplier line (if one was held) and whether any copy
// existed.
func (e *Engine) invalidateCMP(nodeID int, addr cache.LineAddr) (sup cache.Line, hadSupplier, hadAny bool) {
	n := e.nodes[nodeID]
	supCore, wasSup := n.supplierIdx.Get(uint64(addr))
	for c := range n.l2 {
		if l, ok := n.l2[c].Invalidate(addr); ok {
			hadAny = true
			n.l1[c].Invalidate(addr)
			if wasSup && c == int(supCore) {
				sup = l
				hadSupplier = true
			}
		}
	}
	if wasSup {
		n.supplierIdx.Delete(uint64(addr))
		e.trainRemove(n, addr)
	}
	return sup, hadSupplier, hadAny
}

// handleEviction processes an L2 victim: dirty lines write back to the
// home memory; supplier lines leave the predictor set.
func (e *Engine) handleEviction(nodeID, coreID int, victim cache.Line) {
	n := e.nodes[nodeID]
	n.l1[coreID].Invalidate(victim.Addr)
	if owner, ok := n.supplierIdx.Get(uint64(victim.Addr)); ok && int(owner) == coreID {
		n.supplierIdx.Delete(uint64(victim.Addr))
		e.trainRemove(n, victim.Addr)
	}
	if victim.State == cache.SharedGlobal || victim.State == cache.Tagged {
		// Evicting a shared-capable master may leave plain-S copies with
		// no supplier anywhere; remember at the home that Exclusive
		// grants are unsafe until the next write sweeps them.
		e.nodes[e.homeOf(victim.Addr)].mem.MarkShared(victim.Addr)
	}
	if victim.State.DirtyData() {
		e.nodes[e.homeOf(victim.Addr)].mem.WriteBack(victim.Addr, victim.Version)
		e.stats.Writebacks++
	}
}

// trainInsert updates the supplier predictor when a line enters the CMP's
// supplier set, applying Exact-predictor downgrades (Section 4.3.3).
func (e *Engine) trainInsert(n *node, addr cache.LineAddr) {
	if n.pred == nil {
		return
	}
	superset := n.pred.Kind() == predictorSupersetKind
	victim, mustDowngrade := n.pred.Insert(addr)
	e.meter.AddPredictorUpdate(superset)
	if mustDowngrade {
		e.downgradeLine(n, victim)
	}
}

// trainRemove updates the predictor when a line leaves the supplier set.
func (e *Engine) trainRemove(n *node, addr cache.LineAddr) {
	if n.pred == nil {
		return
	}
	n.pred.Remove(addr)
	e.meter.AddPredictorUpdate(n.pred.Kind() == predictorSupersetKind)
}

// downgradeLine demotes a supplier line to S_L because the Exact predictor
// evicted its entry: S_G/E silently, D/T with a write-back (Section 4.3.3).
func (e *Engine) downgradeLine(n *node, addr cache.LineAddr) {
	coreID, ok := n.supplierIdx.Get(uint64(addr))
	if !ok {
		return // already gone (invalidated between predictor ops)
	}
	line := n.l2[coreID].Lookup(addr)
	if line == nil || !line.State.GlobalSupplier() {
		return
	}
	e.stats.Downgrades++
	if debugAddrOn {
		e.lineTrace(addr, "downgrade n%d c%d %v v%d", n.id, coreID, line.State, line.Version)
	}
	e.meter.AddDowngradeOp()
	if line.State.DirtyData() {
		e.nodes[e.homeOf(addr)].mem.WriteBack(addr, line.Version)
		e.stats.Writebacks++
		e.stats.DowngradeWritebacks++
		e.meter.AddExtraMemAccess()
	}
	// The downgraded line itself survives as S_L — a sharer no ring snoop
	// can see under exact/superset filtering — and an SG/T master may
	// additionally leave remote plain-S copies masterless. Either way the
	// home must refuse Exclusive grants until the next write sweeps.
	e.nodes[e.homeOf(addr)].mem.MarkShared(addr)
	n.l2[coreID].SetState(addr, cache.DowngradeTransition(line.State))
	n.supplierIdx.Delete(uint64(addr))
	e.lines.setFlag(addr, lineDowngraded)
	// The predictor entry is already evicted; no Remove needed.
}
