package protocol

import (
	"fmt"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/ring"
	"flexsnoop/internal/sim"
)

// This file holds the engine's fault-injection hooks and the hardening
// machinery that makes injected faults survivable:
//
//   - injectFaults consults the fault.Injector from the serial merge
//     stage of flushTransmits (shard.go), so fault decisions land in the
//     same deterministic order whether or not ShardRings is enabled.
//   - Dropped segments squash the requester immediately — the model is a
//     link-level CRC that NACKs the sender — reusing the Section 2.1.4
//     squash-and-retry machinery, so coherence invariants hold exactly as
//     they do for collision squashes.
//   - Every launched transaction arms a response deadline sized from the
//     full ring circuit plus the memory round trip (timeoutDeadline). A
//     transaction whose messages were lost times out, squashes, scavenges
//     its per-node message state, and retransmits with exponential
//     backoff, bounded by the plan's retry limit.
//   - Fail/Failure latch the first unrecoverable error (retry exhaustion,
//     a watchdog verdict, or a continuous-checker violation) and stop the
//     kernel, so machine.Run can report it instead of hanging.
//
// Every hook guards on e.inj (or a nil map), so a fault-free run executes
// the exact same event sequence as a build without this file.

// FaultsEnabled reports whether this engine injects faults.
func (e *Engine) FaultsEnabled() bool { return e.inj != nil }

// TimeoutDeadline returns the first-attempt snoop-response deadline.
func (e *Engine) TimeoutDeadline() sim.Time { return e.deadlineCycles }

// timeoutDeadline sizes the per-transaction response deadline from the
// machine: one full ring circuit — every hop paying link latency, link
// occupancy, a predictor access, bus arbitration and the CMP snoop — plus
// the worst-case memory round trip, with a 4x contention margin. See
// DESIGN.md §8 for the derivation.
func timeoutDeadline(m config.MachineConfig, pred config.PredictorConfig) sim.Time {
	perHop := m.RingLinkCycles + ringLinkOccupancyCycles + m.CMPSnoopCycles +
		m.BusOccupancyCycles + pred.AccessCycles
	circuit := m.NumCMPs * perHop
	memRT := m.MemRemoteRTNoPrefetchCycle + m.DRAMAccessCycles + m.DRAMOccupancyCycles
	return sim.Time(4 * (circuit + memRT))
}

// Fail latches the run's first unrecoverable error and stops the kernel.
func (e *Engine) Fail(err error) {
	if e.failErr != nil {
		return
	}
	e.failErr = err
	e.kern.Stop()
}

// Failure returns the latched unrecoverable error, if any.
func (e *Engine) Failure() error { return e.failErr }

// Completions reports genuinely completed accesses (watchdog progress
// signal). Every retire is either a completed access or a squash/timeout
// retry handoff (retryAfter retires the old attempt before reissuing), so
// subtracting the retry count leaves real completions: a machine spinning
// through squash-retry cycles shows flat Completions and advancing
// RetryChurn, which is exactly the livelock signature.
func (e *Engine) Completions() uint64 { return e.completions - e.stats.Retries }

// RetryChurn reports squash/retry/timeout activity: advancing churn with
// no completions is the watchdog's livelock signature.
func (e *Engine) RetryChurn() uint64 {
	return e.stats.Squashes + e.stats.Retries + e.stats.SnoopTimeouts
}

// QueuedTxns reports accesses waiting for an MSHR slot across all nodes.
func (e *Engine) QueuedTxns() int {
	n := 0
	for _, nd := range e.nodes {
		n += len(nd.issueQueue)
	}
	return n
}

// injectFaults applies the fault plan to one arbitrated segment during
// the serial merge stage. It returns true when the segment was dropped
// (the caller skips delivery); otherwise it may stretch in.arrive or
// schedule a duplicate delivery.
func (e *Engine) injectFaults(ri int, r *ring.Ring, in *txIntent) (dropped bool) {
	act := e.inj.Inspect(uint64(in.start), uint64(in.arrive), ri, in.from, r.Next(in.from))
	if act.Drop {
		e.stats.FaultDrops++
		if debugAddrOn {
			e.lineTrace(in.m.Addr, "faultDrop txn %d seg from n%d", in.m.Txn, in.from)
		}
		if t, ok := e.byID.Get(uint64(in.m.Txn)); ok && !in.m.Dup {
			// The link-level CRC detects the loss and NACKs the
			// requester, which squashes and retries (Section 2.1.4
			// machinery). The observed loss also arms a short grace
			// deadline — one ring circuit, not the full blind deadline —
			// so recovery from a detected drop is fast; the per-attempt
			// deadline stays as the backstop for losses nothing observed.
			e.squashLocal(t)
			e.armDeadlineIn(t, e.deadlineCycles/4)
		}
		e.msgPool.Put(in.m)
		in.m = nil
		return true
	}
	if act.Delay > 0 {
		e.stats.FaultDelays++
		in.arrive += sim.Time(act.Delay)
	}
	if act.Stall > 0 {
		e.stats.FaultStalls++
		in.arrive += sim.Time(act.Stall)
	}
	// Per-link FIFO: a segment may arrive late, but never before one that
	// departed ahead of it on the same link. Delays and stalls therefore
	// also push back the traffic behind them (head-of-line blocking),
	// which is what a congested or retrying physical link does.
	if f := e.linkFloor[ri][in.from]; in.arrive < f {
		in.arrive = f
	}
	e.linkFloor[ri][in.from] = in.arrive
	if act.Dup && !in.m.Dup {
		e.stats.FaultDups++
		dup := e.msgPool.CloneFrom(in.m)
		dup.Dup = true
		c := e.newCall()
		c.e, c.ringIdx, c.node, c.m = e, ri, r.Next(in.from), dup
		e.kern.ScheduleArg(in.arrive+ringLinkOccupancyCycles, deliverCall, c)
	}
	return false
}

// armDeadline schedules the transaction's response deadline. Only called
// on fault runs: the deadline event is ID-addressed (never cancelled), so
// a stale firing after retire is a cheap byID miss, and per-attempt
// deadlines widen with the retry count so heavy fault windows do not
// starve their own recovery.
func (e *Engine) armDeadline(t *txn) {
	d := e.deadlineCycles
	if shift := t.timeoutRetries; shift > 0 {
		if shift > 6 {
			shift = 6
		}
		d <<= uint(shift)
	}
	e.armDeadlineIn(t, d)
}

// armDeadlineIn schedules a deadline with an explicit width. Extra
// deadlines for one transaction are harmless: whichever fires after the
// transaction resolved is a byID miss.
func (e *Engine) armDeadlineIn(t *txn, d sim.Time) {
	if e.inj == nil {
		return
	}
	c := e.newCall()
	c.e, c.id = e, t.id
	e.kern.AfterArg(d, deadlineCall, c)
}

// deadlineCall fires a transaction's response deadline.
func deadlineCall(a any) {
	c := a.(*callCtx)
	e, id := c.e, c.id
	c.release()
	e.onTxnDeadline(id)
}

// onTxnDeadline handles an expired response deadline: classify what the
// transaction is still waiting for, and either keep waiting (paths that
// are never faulted), release a completed access, or squash, scavenge and
// retransmit with exponential backoff.
func (e *Engine) onTxnDeadline(id ring.TxnID) {
	t, ok := e.byID.Get(uint64(id))
	if !ok || t.retired {
		return // completed since; the deadline is stale
	}
	if t.memPhase {
		// The memory path is not faulted; its callback always arrives.
		e.armDeadline(t)
		return
	}
	if t.found && !t.dataArrived {
		// Claimed data is still crossing the torus (also unfaulted):
		// retiring now would lose the line's only copy. Squash so the
		// arrival drains into writeback-and-retry, and keep watching.
		e.squashLocal(t)
		e.armDeadline(t)
		return
	}
	e.stats.SnoopTimeouts++
	if debugAddrOn {
		e.lineTrace(t.addr, "timeout txn %d (n%d %v) retries=%d", t.id, t.node, t.kind, t.retries)
	}
	if e.tel != nil {
		e.tel.TxnEvent(e.now(), uint64(t.id), "timeout", t.node)
	}
	if t.installed {
		// The access itself completed — only the trailing reply was
		// lost. Nothing to retransmit; release the MSHR slot.
		e.retire(t)
		return
	}
	if t.timeoutRetries >= e.maxTimeoutRetries {
		// Collision squashes retry without bound (livelock-free by age);
		// only timeout-driven retransmits count against the budget — a
		// line that keeps timing out is genuinely unreachable.
		e.Fail(fmt.Errorf("protocol: txn %d (%v %#x, node %d core %d) unrecoverable after %d retransmits at cycle %d",
			t.id, t.kind, t.addr, t.node, t.core, t.timeoutRetries, e.now()))
		return
	}
	e.squashLocal(t)
	e.scavengeTxn(t.id)
	if t.dataArrived && t.dataDirty {
		// Claimed dirty data would be lost by the retry: reflect it to
		// home memory first (mirrors finishSquashed).
		e.nodes[e.homeOf(t.addr)].mem.WriteBack(t.addr, t.dataVersion)
		e.stats.Writebacks++
	}
	// Cap the backoff well below the watchdog window: with the cap at 6
	// (64-cycle default backoff tops out at 4096) an unlucky line still
	// fits tens of attempts into one window, so a recoverable fault plan
	// cannot masquerade as a livelock just by backing off too far.
	t.timeoutRetries++
	shift := t.timeoutRetries
	if shift > 6 {
		shift = 6
	}
	e.retryAfter(t, sim.Time(e.cfg.RetryBackoffCycles)<<uint(shift))
}

// scavengeTxn reclaims per-node message bookkeeping for one transaction.
// A state whose snoop operation is still pending must survive — the
// scheduled snoopCall holds references into it — but any state past its
// snoop (or one that never snoops) can be dropped and its parked
// messages recycled. Stragglers that later reach such a node pass
// through statelessly and drain at the requester as byID misses.
func (e *Engine) scavengeTxn(id ring.TxnID) {
	for _, n := range e.nodes {
		st, ok := n.ringStates.Get(uint64(id))
		if !ok {
			continue
		}
		if (st.mode == modeFTS || st.mode == modeSTF) && !st.outcomeReady {
			continue // snoopCall still references this record
		}
		if st.mode == modeBlocked {
			continue // its message is parked in another txn's blocked queue
		}
		e.msgPool.Put(st.heldMsg)
		e.msgPool.Put(st.replyHalf)
		e.msgPool.Put(st.pendingReply)
		st.heldMsg, st.replyHalf, st.pendingReply = nil, nil, nil
		n.dropState(id)
		e.stats.ScavengedStates++
	}
}

// ScavengeOrphanStates reclaims message bookkeeping whose transaction no
// longer exists — stragglers re-snooped after a timeout retired their
// transaction. Transaction IDs are never reused, so an orphan can never
// be claimed again. machine.Run calls this after the event queue drains
// on fault runs (nothing is pending then, so every orphan is
// reclaimable); the mid-run population is bounded by the live window.
func (e *Engine) ScavengeOrphanStates() int {
	before := e.stats.ScavengedStates
	var orphans []ring.TxnID
	for _, n := range e.nodes {
		orphans = orphans[:0]
		n.ringStates.ForEach(func(id uint64, _ *ringState) {
			if !e.byID.Has(id) {
				orphans = append(orphans, ring.TxnID(id))
			}
		})
		for _, id := range orphans {
			st, _ := n.ringStates.Get(uint64(id))
			if (st.mode == modeFTS || st.mode == modeSTF) && !st.outcomeReady {
				continue
			}
			e.msgPool.Put(st.heldMsg)
			e.msgPool.Put(st.replyHalf)
			e.msgPool.Put(st.pendingReply)
			st.heldMsg, st.replyHalf, st.pendingReply = nil, nil, nil
			n.dropState(id)
			e.stats.ScavengedStates++
		}
	}
	return int(e.stats.ScavengedStates - before)
}

// DegradeLiveLines switches every line with a live or queued transaction
// to forced Eager forwarding (the watchdog's graceful-degradation
// action): requests for those lines snoop at every node with no
// predictor and no filtering, removing the filter layer from the
// suspected-livelocked lines while the rest of the machine keeps its
// algorithm. Returns how many lines were newly degraded.
func (e *Engine) DegradeLiveLines() int {
	added := 0
	mark := func(addr cache.LineAddr) {
		if e.lines.setFlag(addr, lineEager) {
			added++
		}
	}
	e.byID.ForEach(func(_ uint64, t *txn) { mark(t.addr) })
	if e.retryLines != nil {
		e.retryLines.ForEach(func(addr uint64, _ int32) { mark(cache.LineAddr(addr)) })
	}
	for _, n := range e.nodes {
		for _, t := range n.issueQueue {
			mark(t.addr)
		}
	}
	e.eagerCount += added
	e.stats.DegradedLines += uint64(added)
	return added
}

// forcedEager reports whether the watchdog degraded this line to Eager
// forwarding. The count guard keeps fault-free runs branch-cheap.
func (e *Engine) forcedEager(addr cache.LineAddr) bool {
	return e.eagerCount > 0 && e.lines.hasFlag(addr, lineEager)
}

// CorruptLineState forcibly sets a cached line's coherence state without
// going through the protocol. Checker negative tests only: it creates
// exactly the inconsistencies the invariant checker must detect.
func (e *Engine) CorruptLineState(node, core int, addr cache.LineAddr, st cache.State) {
	e.nodes[node].l2[core].SetState(addr, st)
}

// CorruptSupplierIndex forcibly adds or removes a gateway supplier-index
// entry (checker negative tests for the index cross-validation rules).
func (e *Engine) CorruptSupplierIndex(node int, addr cache.LineAddr, core int, present bool) {
	if present {
		e.nodes[node].supplierIdx.Put(uint64(addr), int32(core))
	} else {
		e.nodes[node].supplierIdx.Delete(uint64(addr))
	}
}
