package protocol_test

import (
	"fmt"
	"math/rand"
	"testing"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/config"
	"flexsnoop/internal/protocol"
)

// TestPerCoreVersionMonotonicity verifies coherence's program-order
// guarantee: the data generations a single core observes for one line
// never go backwards — a read can never return older data than an earlier
// read or write by the same core.
func TestPerCoreVersionMonotonicity(t *testing.T) {
	for _, alg := range []config.Algorithm{config.Lazy, config.Eager, config.SupersetAgg, config.Exact} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			kern, e := testEngine(t, alg)
			type key struct {
				node, core int
				addr       cache.LineAddr
			}
			last := map[key]uint64{}
			violation := ""
			e.SetObserver(func(node, core int, write bool, addr cache.LineAddr, version uint64) {
				k := key{node, core, addr}
				if version < last[k] && violation == "" {
					violation = fmt.Sprintf("core (n%d,c%d) observed line %#x go back from v%d to v%d (write=%v)",
						node, core, addr, last[k], version, write)
				}
				if version > last[k] {
					last[k] = version
				}
			})
			rng := rand.New(rand.NewSource(31))
			issued, completed := 0, 0
			for i := 0; i < 1200; i++ {
				node, c := rng.Intn(8), rng.Intn(4)
				addr := cache.LineAddr(rng.Intn(24))
				kind := protocol.Load
				if rng.Intn(3) == 0 {
					kind = protocol.Store
				}
				issued++
				e.Access(node, c, kind, addr, func() { completed++ })
				if rng.Intn(5) == 0 {
					kern.RunAll()
				}
			}
			run(t, kern, e)
			if completed != issued {
				t.Fatalf("completed %d/%d", completed, issued)
			}
			if violation != "" {
				t.Fatal(violation)
			}
		})
	}
}

// TestWritesObserveStrictlyIncreasingVersions: every write a core performs
// produces a strictly newer generation than anything it saw before.
func TestWritesObserveStrictlyIncreasingVersions(t *testing.T) {
	kern, e := testEngine(t, config.SupersetCon)
	const line = cache.LineAddr(0x5)
	var writes []uint64
	e.SetObserver(func(node, core int, write bool, addr cache.LineAddr, version uint64) {
		if write && addr == line {
			writes = append(writes, version)
		}
	})
	for i := 0; i < 16; i++ {
		e.Access(i%8, i%4, protocol.Store, line, nil)
		if i%4 == 3 {
			kern.RunAll()
		}
	}
	run(t, kern, e)
	if len(writes) != 16 {
		t.Fatalf("observed %d writes, want 16", len(writes))
	}
	seen := map[uint64]bool{}
	for _, v := range writes {
		if seen[v] {
			t.Fatalf("write generation %d produced twice", v)
		}
		seen[v] = true
	}
	if e.LatestVersion(line) != 16 {
		t.Errorf("latest = %d, want 16", e.LatestVersion(line))
	}
}
