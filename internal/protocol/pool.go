package protocol

import (
	"flexsnoop/internal/cache"
	"flexsnoop/internal/ring"
	"flexsnoop/internal/sim"
)

// This file holds the engine's free lists. The simulation is
// single-threaded, so plain slices beat sync.Pool: no locking, no
// per-GC flushing, and the steady state allocates nothing.
//
// Ownership discipline (see also ring.Pool): a pooled object is recycled
// by the last party to hold it, exactly once. Events pass pooled call
// contexts through sim.ScheduleArg with package-level functions, which
// avoids the per-event closure allocation; each call function returns its
// context to the pool before running the handler, so a handler that
// schedules further events reuses the same record.

// callCtx is the argument record for ring-side deferred calls: message
// delivery, snoop completion, data transfer and the memory-read callback.
type callCtx struct {
	e       *Engine
	ringIdx int
	node    int
	m       *ring.Message
	st      *ringState
	t       *txn
	id      ring.TxnID
	ver     uint64
	dirty   bool
}

func (e *Engine) newCall() *callCtx {
	if n := len(e.ccPool); n > 0 {
		c := e.ccPool[n-1]
		e.ccPool = e.ccPool[:n-1]
		return c
	}
	return &callCtx{}
}

// release zeroes the context's pointers and returns it to the pool.
func (c *callCtx) release() {
	e := c.e
	*c = callCtx{}
	e.ccPool = append(e.ccPool, c)
}

// deliverCall runs e.deliver for a message arriving off a ring link.
func deliverCall(a any) {
	c := a.(*callCtx)
	e, ringIdx, node, m := c.e, c.ringIdx, c.node, c.m
	c.release()
	e.deliver(ringIdx, node, m)
}

// snoopCall runs e.snoopComplete when a node's snoop operation finishes.
func snoopCall(a any) {
	c := a.(*callCtx)
	e, ringIdx, node, m, st := c.e, c.ringIdx, c.node, c.m, c.st
	c.release()
	e.snoopComplete(ringIdx, node, m, st)
}

// dataCall delivers a torus data transfer to the requester.
func dataCall(a any) {
	c := a.(*callCtx)
	e, id, ver, dirty := c.e, c.id, c.ver, c.dirty
	c.release()
	e.deliverData(id, ver, dirty)
}

// memReadCall completes a transaction's memory phase.
func memReadCall(a any) {
	c := a.(*callCtx)
	e, t := c.e, c.t
	c.release()
	e.memReadDone(t)
}

// restartCall re-enters the access path for a woken waiter or a retried
// transaction.
func restartCall(a any) {
	c := a.(*callCtx)
	e, t := c.e, c.t
	c.release()
	e.restart(t)
}

// pathCtx is the argument record for the processor-side access path: the
// L2-miss deferral, the intra-CMP bus grant, and plain completion
// callbacks.
type pathCtx struct {
	e       *Engine
	node    int
	core    int
	kind    ring.Kind
	addr    cache.LineAddr
	age     sim.Time
	done    func()
	waiters []*txn
	retries int
	// timeoutRetries rides along so a timeout-driven retransmit keeps its
	// budget across the re-entered access path (fault runs only).
	timeoutRetries int
}

func (e *Engine) newPath() *pathCtx {
	if n := len(e.pcPool); n > 0 {
		p := e.pcPool[n-1]
		e.pcPool = e.pcPool[:n-1]
		return p
	}
	return &pathCtx{}
}

func (p *pathCtx) release() {
	e := p.e
	*p = pathCtx{}
	e.pcPool = append(e.pcPool, p)
}

// doneCall fires a reference's completion callback and wakes piggy-backed
// waiters (completeAfter's event body).
func doneCall(a any) {
	p := a.(*pathCtx)
	e, done, waiters := p.e, p.done, p.waiters
	p.release()
	if done != nil {
		done()
	}
	for _, w := range waiters {
		e.restart(w)
	}
}

// localPathCall reserves the intra-CMP bus after the L2 round trip and
// re-schedules the same context for the bus grant.
func localPathCall(a any) {
	p := a.(*pathCtx)
	e := p.e
	n := e.nodes[p.node]
	start := n.cmpBus.Reserve(e.now(), sim.Time(e.cfg.BusOccupancyCycles))
	finish := start + sim.Time(e.cfg.IntraCMPBusCycles)
	e.kern.ScheduleArg(finish, localPathGrantCall, p)
}

// localPathGrantCall runs the local snoop body once the bus grants.
func localPathGrantCall(a any) {
	p := a.(*pathCtx)
	e, node, core, kind := p.e, p.node, p.core, p.kind
	addr, age, done, waiters, retries := p.addr, p.age, p.done, p.waiters, p.retries
	timeoutRetries := p.timeoutRetries
	p.release()
	if kind == ring.ReadSnoop {
		e.localReadBody(node, core, addr, age, done, waiters, retries, timeoutRetries)
	} else {
		e.localWriteBody(node, core, addr, age, done, waiters, retries, timeoutRetries)
	}
}

// newTxn takes a transaction record from the free list. Only launched
// transactions return to the pool (at retire); waiter and queued records
// abandoned by a restart are left to the garbage collector.
func (e *Engine) newTxn() *txn {
	if n := len(e.txnPool); n > 0 {
		t := e.txnPool[n-1]
		e.txnPool = e.txnPool[:n-1]
		*t = txn{}
		return t
	}
	return &txn{}
}

// freeTxn recycles a retired transaction. The caller must guarantee no
// live references remain (retire removes the byID/outstanding entries and
// drains waiters and blocked messages first).
func (e *Engine) freeTxn(t *txn) {
	e.txnPool = append(e.txnPool, t)
}

// newRingState takes per-transaction message bookkeeping from the free
// list; dropState returns it.
func (e *Engine) newRingState() *ringState {
	if n := len(e.rsPool); n > 0 {
		st := e.rsPool[n-1]
		e.rsPool = e.rsPool[:n-1]
		*st = ringState{}
		return st
	}
	return &ringState{}
}
