package protocol

import (
	"flexsnoop/internal/cache"
	"flexsnoop/internal/hotmap"
)

// lineTab holds the engine's machine-global per-line metadata in a
// struct-of-arrays layout: one open-addressed index from line address to
// a stable slot, and parallel arrays for the fields the hot path touches
// together (DESIGN.md §10). Slots are allocated on first touch and live
// for the run — the population is bounded by the workload footprint — so
// the write-generation counter, the live-write count and the per-line
// flag bits of one line share one slot index and never rehash once the
// working set is resident.
type lineTab struct {
	idx hotmap.Table[int32] // LineAddr -> slot+1 (0 = the Upsert zero value, "new")

	version    []uint64 // last committed write generation
	liveWrites []int32  // in-flight (non-retired) write transactions
	flags      []uint8  // lineDowngraded | lineEager
}

const (
	// lineDowngraded marks a line whose supplier copy the Exact
	// predictor downgraded; the next memory read is charged as a
	// "re-read" (Section 6.1.4).
	lineDowngraded uint8 = 1 << iota
	// lineEager marks a line the watchdog degraded to forced Eager
	// forwarding.
	lineEager
)

// newLineTab pre-sizes the table near the steady-state footprint so the
// warm path neither rehashes nor re-appends.
func newLineTab(hint int) *lineTab {
	return &lineTab{
		idx:        *hotmap.New[int32](hint),
		version:    make([]uint64, 0, hint),
		liveWrites: make([]int32, 0, hint),
		flags:      make([]uint8, 0, hint),
	}
}

// slot returns the line's slot, allocating one on first touch.
func (lt *lineTab) slot(addr cache.LineAddr) int {
	p := lt.idx.Upsert(uint64(addr))
	if *p == 0 {
		lt.version = append(lt.version, 0)
		lt.liveWrites = append(lt.liveWrites, 0)
		lt.flags = append(lt.flags, 0)
		*p = int32(len(lt.version))
	}
	return int(*p) - 1
}

// find returns the line's slot without allocating one.
func (lt *lineTab) find(addr cache.LineAddr) (int, bool) {
	s, ok := lt.idx.Get(uint64(addr))
	return int(s) - 1, ok
}

// nextVersion stamps and returns a new write generation for the line.
func (lt *lineTab) nextVersion(addr cache.LineAddr) uint64 {
	s := lt.slot(addr)
	lt.version[s]++
	return lt.version[s]
}

// latestVersion returns the newest committed write generation (0 when
// the line was never written).
func (lt *lineTab) latestVersion(addr cache.LineAddr) uint64 {
	if s, ok := lt.find(addr); ok {
		return lt.version[s]
	}
	return 0
}

// setFlag sets a per-line flag bit, reporting whether it was newly set.
func (lt *lineTab) setFlag(addr cache.LineAddr, bit uint8) bool {
	s := lt.slot(addr)
	if lt.flags[s]&bit != 0 {
		return false
	}
	lt.flags[s] |= bit
	return true
}

// clearFlag clears a per-line flag bit without allocating a slot.
func (lt *lineTab) clearFlag(addr cache.LineAddr, bit uint8) {
	if s, ok := lt.find(addr); ok {
		lt.flags[s] &^= bit
	}
}

// hasFlag reports a per-line flag bit without allocating a slot.
func (lt *lineTab) hasFlag(addr cache.LineAddr, bit uint8) bool {
	s, ok := lt.find(addr)
	return ok && lt.flags[s]&bit != 0
}
