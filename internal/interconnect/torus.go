// Package interconnect models the 2-D torus that carries data-transfer
// messages between CMPs (Table 4). Snoop messages never use it; they are
// confined to the embedded ring (package ring).
//
// Routing is dimension-order (X then Y) with minimal wraparound. Each
// directed link is modelled as a serially-occupied resource, so data
// messages contend for bandwidth: a 64-byte line occupies each link it
// crosses for the serialization time (Table 4: 32 GB/s links).
package interconnect

import (
	"fmt"

	"flexsnoop/internal/bus"
	"flexsnoop/internal/sim"
)

// Torus is a width x height bidirectional 2-D torus with per-hop latency
// and per-link occupancy. Node i sits at (i % width, i / width).
type Torus struct {
	width, height int
	hopCycles     int
	serialization int

	// links[from*slots+to] models each directed physical channel between
	// neighbouring slots, stored flat: the slot count is small and fixed,
	// so a dense array replaces two chained map lookups per hop.
	links []bus.Bus

	// Messages counts data messages routed; HopsTotal the hops they took.
	Messages  uint64
	HopsTotal uint64
	// ContentionCycles accumulates cycles messages waited for busy links.
	ContentionCycles uint64
}

// NewTorus builds a torus for n nodes. The torus may have more slots than
// nodes; extra slots are simply unused.
func NewTorus(width, height, hopCycles, serializationCycles, nodes int) *Torus {
	if width < 1 || height < 1 || width*height < nodes {
		panic(fmt.Sprintf("interconnect: %dx%d torus cannot hold %d nodes", width, height, nodes))
	}
	return &Torus{
		width: width, height: height,
		hopCycles: hopCycles, serialization: serializationCycles,
		links: make([]bus.Bus, width*height*width*height),
	}
}

func (t *Torus) slot(x, y int) int { return y*t.width + x }

// step returns the next slot from (x,y) moving one minimal hop toward
// (tx,ty), X dimension first (dimension-order routing).
func (t *Torus) step(x, y, tx, ty int) (int, int) {
	if x != tx {
		return x + dirTo(x, tx, t.width), y
	}
	return x, y + dirTo(y, ty, t.height)
}

// dirTo returns -1 or +1: the minimal wraparound direction from a to b in
// a dimension of the given size. Ties go positive.
func dirTo(a, b, size int) int {
	fwd := ((b-a)%size + size) % size
	if fwd <= size-fwd {
		return 1
	}
	return -1
}

// Route returns the dimension-order path between two nodes, excluding the
// source slot and including the destination.
func (t *Torus) Route(from, to int) []int {
	var path []int
	x, y := from%t.width, from/t.width
	tx, ty := to%t.width, to/t.width
	for x != tx || y != ty {
		nx, ny := t.step(x, y, tx, ty)
		// Wraparound steps.
		nx = ((nx % t.width) + t.width) % t.width
		ny = ((ny % t.height) + t.height) % t.height
		path = append(path, t.slot(nx, ny))
		x, y = nx, ny
	}
	return path
}

// Hops returns the minimal hop count between two nodes with wraparound in
// both dimensions.
func (t *Torus) Hops(from, to int) int {
	fx, fy := from%t.width, from/t.width
	tx, ty := to%t.width, to/t.width
	dx := abs(fx - tx)
	if w := t.width - dx; w < dx {
		dx = w
	}
	dy := abs(fy - ty)
	if h := t.height - dy; h < dy {
		dy = h
	}
	return dx + dy
}

func (t *Torus) link(from, to int) *bus.Bus {
	return &t.links[from*t.width*t.height+to]
}

// Latency returns the delivery latency of one data message sent now from
// one node to another, reserving every link on its dimension-order path
// (messages contend for link bandwidth). Same-node messages cost only the
// serialization time (on-chip delivery).
func (t *Torus) Latency(now sim.Time, from, to int) sim.Time {
	t.Messages++
	if from == to {
		return sim.Time(t.serialization)
	}
	// Walk the dimension-order path inline (same steps Route materializes)
	// so the hot path allocates no path slice.
	cur := from
	depart := now
	x, y := from%t.width, from/t.width
	tx, ty := to%t.width, to/t.width
	for x != tx || y != ty {
		nx, ny := t.step(x, y, tx, ty)
		nx = ((nx % t.width) + t.width) % t.width
		ny = ((ny % t.height) + t.height) % t.height
		next := t.slot(nx, ny)
		x, y = nx, ny
		t.HopsTotal++
		l := t.link(cur, next)
		start := l.Reserve(depart, sim.Time(t.serialization))
		t.ContentionCycles += uint64(start - depart)
		depart = start + sim.Time(t.hopCycles)
		cur = next
	}
	return depart + sim.Time(t.serialization) - now
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
