package interconnect

import (
	"testing"
	"testing/quick"

	"flexsnoop/internal/sim"
)

func TestHopsOn4x2(t *testing.T) {
	// Node layout: 0 1 2 3 / 4 5 6 7.
	tor := NewTorus(4, 2, 25, 12, 8)
	cases := []struct {
		from, to, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1}, // wraparound in x
		{0, 2, 2},
		{0, 4, 1},
		{0, 5, 2},
		{0, 7, 2}, // wrap x + down
		{1, 6, 2},
		{3, 4, 2},
	}
	for _, tc := range cases {
		if got := tor.Hops(tc.from, tc.to); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestLatencyUncontended(t *testing.T) {
	tor := NewTorus(4, 2, 25, 12, 8)
	// Uncontended: hops x hopCycles + one ejection serialization.
	if got := tor.Latency(0, 0, 2); got != 2*25+12 {
		t.Errorf("Latency(0,2) = %d, want 62", got)
	}
	if got := tor.Latency(0, 3, 3); got != 12 {
		t.Errorf("same-node latency = %d, want serialization only (12)", got)
	}
	if tor.Messages != 2 || tor.HopsTotal != 2 {
		t.Errorf("stats = %d msgs / %d hops, want 2/2", tor.Messages, tor.HopsTotal)
	}
}

func TestLinkContention(t *testing.T) {
	tor := NewTorus(4, 2, 25, 12, 8)
	// Two messages over the same first link at the same instant: the
	// second waits the 12-cycle serialization of the first.
	a := tor.Latency(0, 0, 1)
	bLat := tor.Latency(0, 0, 1)
	if a != 25+12 {
		t.Errorf("first message latency = %d, want 37", a)
	}
	if bLat != 25+12+12 {
		t.Errorf("second message latency = %d, want 49 (12 cycles of contention)", bLat)
	}
	if tor.ContentionCycles != 12 {
		t.Errorf("ContentionCycles = %d, want 12", tor.ContentionCycles)
	}
	// Disjoint links don't contend.
	if got := tor.Latency(0, 2, 3); got != 25+12 {
		t.Errorf("disjoint-link latency = %d, want 37", got)
	}
}

func TestRouteDimensionOrder(t *testing.T) {
	tor := NewTorus(4, 2, 25, 12, 8)
	// 1 -> 7: X first with wraparound (1 -> 0 -> ... shortest X from 1 to
	// 3 is backward: 1 -> 0 -> 3? dist(1->3) fwd=2 back=2: tie goes
	// positive: 1 -> 2 -> 3), then Y (3 -> 7).
	path := tor.Route(1, 7)
	want := []int{2, 3, 7}
	if len(path) != len(want) {
		t.Fatalf("Route(1,7) = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("Route(1,7) = %v, want %v", path, want)
		}
	}
	// Wraparound in X: 0 -> 3 is one backward hop.
	path = tor.Route(0, 3)
	if len(path) != 1 || path[0] != 3 {
		t.Errorf("Route(0,3) = %v, want [3]", path)
	}
	if got := tor.Route(5, 5); len(got) != 0 {
		t.Errorf("Route(5,5) = %v, want empty", got)
	}
}

// Property: route length always equals the minimal hop count, and every
// consecutive pair of slots is a neighbouring pair.
func TestRouteMatchesHops(t *testing.T) {
	tor := NewTorus(4, 4, 1, 1, 16)
	f := func(a, b uint8) bool {
		from, to := int(a%16), int(b%16)
		path := tor.Route(from, to)
		if len(path) != tor.Hops(from, to) {
			return false
		}
		cur := from
		for _, next := range path {
			if tor.Hops(cur, next) != 1 {
				return false
			}
			cur = next
		}
		return cur == to
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopsSymmetricAndBounded(t *testing.T) {
	tor := NewTorus(4, 2, 25, 12, 8)
	f := func(a, b uint8) bool {
		from, to := int(a%8), int(b%8)
		h := tor.Hops(from, to)
		return h == tor.Hops(to, from) && h >= 0 && h <= 2+1 // max 2 in x + 1 in y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	tor := NewTorus(4, 4, 1, 0, 16)
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			for c := 0; c < 16; c++ {
				if tor.Hops(a, c) > tor.Hops(a, b)+tor.Hops(b, c) {
					t.Fatalf("triangle inequality violated for %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestLatencyMonotoneInTime(t *testing.T) {
	// Sending later never makes a message arrive earlier.
	tor := NewTorus(4, 2, 25, 12, 8)
	early := sim.Time(0) + tor.Latency(0, 0, 2)
	late := sim.Time(100) + tor.Latency(100, 0, 2)
	if late < early {
		t.Errorf("later send arrived earlier: %d < %d", late, early)
	}
}

func TestBadTorusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undersized torus did not panic")
		}
	}()
	NewTorus(2, 2, 1, 0, 8)
}
