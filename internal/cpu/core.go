// Package cpu models the timing cores that drive the coherence engine.
//
// Substitution note (DESIGN.md Section 4): the paper simulates out-of-order
// 6 GHz cores in SESC. The evaluation's metrics are driven by read-miss
// latency and snoop counts, so this model keeps exactly the behaviour that
// matters: one instruction per cycle of compute between references,
// blocking loads, and stores retired through a finite write buffer that
// only stalls the core when full.
package cpu

import (
	"flexsnoop/internal/cache"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
	"flexsnoop/internal/workload"
)

// Memory is the coherence engine interface a core drives.
type Memory interface {
	Access(node, core int, kind protocol.AccessKind, addr cache.LineAddr, done func())
}

// Core executes one reference stream.
type Core struct {
	kern *sim.Kernel
	mem  Memory
	node int
	core int
	src  workload.Source

	wbCap  int
	wbUsed int
	// stalled holds a store waiting for a write-buffer slot.
	stalled    workload.Op
	hasStalled bool
	draining   bool
	finished   bool
	onFinish   func()

	// Memory-level parallelism: with loadCap > 1 the core keeps issuing
	// past load misses until loadCap loads are outstanding (an
	// out-of-order window approximation); loadCap == 1 models an
	// in-order core with blocking loads.
	loadCap        int
	loadsOut       int
	stalledLoad    workload.Op
	hasStalledLoad bool
	ldStallFrom    sim.Time

	// pendingOp carries the operation between step and issue; reusing
	// one slot (plus the per-core callbacks below) keeps the per-op hot
	// path allocation-free.
	pendingOp workload.Op
	// blockStart/blockCompute carry the in-flight blocking load's issue
	// cycle and compute count (loadCap == 1 permits only one).
	blockStart   sim.Time
	blockCompute uint32

	// Per-core reusable callbacks (allocated once in NewMLP).
	stepFn      func()
	issueFn     func()
	loadDoneFn  func()
	blockDoneFn func()
	storeDoneFn func()

	// Stats.
	Instructions uint64
	Loads        uint64
	Stores       uint64
	LoadStall    uint64 // cycles blocked on loads
	WBStall      uint64 // cycles blocked on a full write buffer
	FinishedAt   sim.Time

	wbStallFrom sim.Time
}

// New builds a core with blocking loads. onFinish fires once when the
// stream ends and the write buffer drains; it may be nil.
func New(kern *sim.Kernel, mem Memory, node, core, writeBufferEntries int, src workload.Source, onFinish func()) *Core {
	return NewMLP(kern, mem, node, core, writeBufferEntries, 1, src, onFinish)
}

// NewMLP builds a core with up to maxOutstandingLoads loads in flight.
func NewMLP(kern *sim.Kernel, mem Memory, node, core, writeBufferEntries, maxOutstandingLoads int, src workload.Source, onFinish func()) *Core {
	if writeBufferEntries < 1 {
		panic("cpu: write buffer needs at least one entry")
	}
	if maxOutstandingLoads < 1 {
		panic("cpu: need at least one outstanding load")
	}
	c := &Core{
		kern: kern, mem: mem, node: node, core: core,
		wbCap: writeBufferEntries, loadCap: maxOutstandingLoads,
		src: src, onFinish: onFinish,
	}
	c.stepFn = c.step
	c.issueFn = func() { c.issue(c.pendingOp) }
	c.loadDoneFn = func() {
		c.loadsOut--
		c.loadRetired()
	}
	c.blockDoneFn = func() {
		c.LoadStall += uint64(c.kern.Now() - c.blockStart)
		c.Instructions += uint64(c.blockCompute) + 1
		c.step()
	}
	c.storeDoneFn = func() {
		c.wbUsed--
		c.storeRetired()
	}
	return c
}

// Start schedules the core's first instruction at the current cycle.
func (c *Core) Start() {
	c.kern.After(0, c.stepFn)
}

// Finished reports whether the core retired its whole stream.
func (c *Core) Finished() bool { return c.finished }

// step fetches and executes the next operation.
func (c *Core) step() {
	op, ok := c.src.Next()
	if !ok {
		c.drain()
		return
	}
	// At most one operation is between fetch and issue at a time, so the
	// pendingOp slot plus the prebuilt issueFn replace a per-op closure.
	c.pendingOp = op
	if op.Compute > 0 {
		c.kern.After(sim.Time(op.Compute), c.issueFn)
	} else {
		c.issue(op)
	}
}

// issue performs the memory reference of an operation.
func (c *Core) issue(op workload.Op) {
	if op.Store {
		c.issueStore(op)
		return
	}
	if c.loadCap > 1 {
		c.issueLoadMLP(op)
		return
	}
	c.Loads++
	c.blockStart = c.kern.Now()
	c.blockCompute = op.Compute
	c.mem.Access(c.node, c.core, protocol.Load, op.Addr, c.blockDoneFn)
}

// issueLoadMLP issues a load without blocking unless the outstanding-load
// window is full.
func (c *Core) issueLoadMLP(op workload.Op) {
	if c.loadsOut >= c.loadCap {
		c.stalledLoad = op
		c.hasStalledLoad = true
		c.ldStallFrom = c.kern.Now()
		return // a load completion resumes us
	}
	c.loadsOut++
	c.Loads++
	c.Instructions += uint64(op.Compute) + 1
	c.mem.Access(c.node, c.core, protocol.Load, op.Addr, c.loadDoneFn)
	c.kern.After(1, c.stepFn)
}

// loadRetired frees a load-window slot, resuming a stalled core or
// completing a drain.
func (c *Core) loadRetired() {
	if c.hasStalledLoad {
		op := c.stalledLoad
		c.hasStalledLoad = false
		c.LoadStall += uint64(c.kern.Now() - c.ldStallFrom)
		c.issueLoadMLP(op)
		return
	}
	if c.draining && c.wbUsed == 0 && c.loadsOut == 0 {
		c.finish()
	}
}

// issueStore retires a store through the write buffer; the core continues
// immediately unless the buffer is full.
func (c *Core) issueStore(op workload.Op) {
	if c.wbUsed >= c.wbCap {
		c.stalled = op
		c.hasStalled = true
		c.wbStallFrom = c.kern.Now()
		return // a store completion resumes us
	}
	c.wbUsed++
	c.Stores++
	c.Instructions += uint64(op.Compute) + 1
	c.mem.Access(c.node, c.core, protocol.Store, op.Addr, c.storeDoneFn)
	// The store is buffered; the core moves on next cycle.
	c.kern.After(1, c.stepFn)
}

// storeRetired frees a write-buffer slot and resumes a stalled core or
// completes a drain.
func (c *Core) storeRetired() {
	if c.hasStalled {
		op := c.stalled
		c.hasStalled = false
		c.WBStall += uint64(c.kern.Now() - c.wbStallFrom)
		c.issueStore(op)
		return
	}
	if c.draining && c.wbUsed == 0 && c.loadsOut == 0 {
		c.finish()
	}
}

// drain waits for outstanding buffered stores and loads before finishing.
func (c *Core) drain() {
	c.draining = true
	if c.wbUsed == 0 && c.loadsOut == 0 {
		c.finish()
	}
}

func (c *Core) finish() {
	if c.finished {
		return
	}
	c.finished = true
	c.FinishedAt = c.kern.Now()
	if c.onFinish != nil {
		c.onFinish()
	}
}
