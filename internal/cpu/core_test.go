package cpu

import (
	"testing"

	"flexsnoop/internal/cache"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
	"flexsnoop/internal/workload"
)

// fakeMem completes loads after loadLat cycles and stores after storeLat.
type fakeMem struct {
	kern     *sim.Kernel
	loadLat  sim.Time
	storeLat sim.Time
	loads    int
	stores   int
	inFlight int
	maxInFly int
}

func (f *fakeMem) Access(node, core int, kind protocol.AccessKind, addr cache.LineAddr, done func()) {
	lat := f.loadLat
	if kind == protocol.Store {
		f.stores++
		lat = f.storeLat
		f.inFlight++
		if f.inFlight > f.maxInFly {
			f.maxInFly = f.inFlight
		}
		f.kern.After(lat, func() {
			f.inFlight--
			done()
		})
		return
	}
	f.loads++
	f.kern.After(lat, done)
}

func ops(n int, compute uint32, store bool) []workload.Op {
	var out []workload.Op
	for i := 0; i < n; i++ {
		out = append(out, workload.Op{Compute: compute, Addr: cache.LineAddr(i), Store: store})
	}
	return out
}

func TestBlockingLoads(t *testing.T) {
	kern := sim.NewKernel()
	mem := &fakeMem{kern: kern, loadLat: 100}
	finished := false
	c := New(kern, mem, 0, 0, 8, workload.NewSliceSource(ops(5, 10, false)), func() { finished = true })
	c.Start()
	kern.RunAll()
	if !finished || !c.Finished() {
		t.Fatal("core never finished")
	}
	// Each op: 10 compute cycles + 100-cycle blocking load = 110.
	if c.FinishedAt != 5*110 {
		t.Errorf("FinishedAt = %d, want 550", c.FinishedAt)
	}
	if c.Instructions != 5*11 {
		t.Errorf("Instructions = %d, want 55", c.Instructions)
	}
	if c.Loads != 5 || mem.loads != 5 {
		t.Errorf("loads = %d/%d, want 5/5", c.Loads, mem.loads)
	}
	if c.LoadStall != 5*100 {
		t.Errorf("LoadStall = %d, want 500", c.LoadStall)
	}
}

func TestStoresDoNotBlock(t *testing.T) {
	kern := sim.NewKernel()
	mem := &fakeMem{kern: kern, storeLat: 1000}
	c := New(kern, mem, 0, 0, 8, workload.NewSliceSource(ops(4, 0, true)), nil)
	c.Start()
	kern.RunAll()
	// 4 stores fit the buffer: the core advances one cycle per store and
	// finishes when the last store drains (issued at cycle 3 -> 1003).
	if c.FinishedAt != 1003 {
		t.Errorf("FinishedAt = %d, want 1003 (drain of last store)", c.FinishedAt)
	}
	if c.WBStall != 0 {
		t.Errorf("WBStall = %d, want 0", c.WBStall)
	}
	if mem.maxInFly != 4 {
		t.Errorf("max in-flight stores = %d, want 4 (buffered)", mem.maxInFly)
	}
}

func TestWriteBufferStalls(t *testing.T) {
	kern := sim.NewKernel()
	mem := &fakeMem{kern: kern, storeLat: 1000}
	c := New(kern, mem, 0, 0, 2, workload.NewSliceSource(ops(4, 0, true)), nil)
	c.Start()
	kern.RunAll()
	if c.WBStall == 0 {
		t.Error("full write buffer never stalled the core")
	}
	if mem.maxInFly > 2 {
		t.Errorf("in-flight stores = %d exceeds buffer capacity 2", mem.maxInFly)
	}
	if c.Stores != 4 {
		t.Errorf("Stores = %d, want 4", c.Stores)
	}
}

func TestMixedStream(t *testing.T) {
	kern := sim.NewKernel()
	mem := &fakeMem{kern: kern, loadLat: 50, storeLat: 200}
	stream := []workload.Op{
		{Compute: 5, Addr: 1},
		{Compute: 2, Addr: 2, Store: true},
		{Compute: 3, Addr: 3},
	}
	c := New(kern, mem, 0, 0, 4, workload.NewSliceSource(stream), nil)
	c.Start()
	kern.RunAll()
	if c.Loads != 2 || c.Stores != 1 {
		t.Errorf("loads/stores = %d/%d, want 2/1", c.Loads, c.Stores)
	}
	if c.Instructions != 6+3+4 {
		t.Errorf("Instructions = %d, want 13", c.Instructions)
	}
	if !c.Finished() {
		t.Error("core did not finish")
	}
}

func TestEmptyStreamFinishesImmediately(t *testing.T) {
	kern := sim.NewKernel()
	mem := &fakeMem{kern: kern}
	done := false
	c := New(kern, mem, 0, 0, 1, workload.NewSliceSource(nil), func() { done = true })
	c.Start()
	kern.RunAll()
	if !done || c.FinishedAt != 0 || c.Instructions != 0 {
		t.Errorf("empty stream: done=%v at=%d instr=%d", done, c.FinishedAt, c.Instructions)
	}
}

func TestBadWriteBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero write buffer accepted")
		}
	}()
	New(sim.NewKernel(), &fakeMem{}, 0, 0, 0, workload.NewSliceSource(nil), nil)
}

func TestMLPOverlapsLoads(t *testing.T) {
	// With 4-deep MLP, 4 independent 1000-cycle loads overlap almost
	// completely; with blocking loads they serialize.
	mk := func(mlp int) sim.Time {
		kern := sim.NewKernel()
		mem := &fakeMem{kern: kern, loadLat: 1000}
		c := NewMLP(kern, mem, 0, 0, 8, mlp, workload.NewSliceSource(ops(4, 0, false)), nil)
		c.Start()
		kern.RunAll()
		if !c.Finished() {
			t.Fatal("core never finished")
		}
		return c.FinishedAt
	}
	blocking := mk(1)
	overlapped := mk(4)
	if blocking != 4000 {
		t.Errorf("blocking finish = %d, want 4000", blocking)
	}
	// Loads issued one cycle apart: last completes at 3+1000.
	if overlapped != 1003 {
		t.Errorf("MLP-4 finish = %d, want 1003", overlapped)
	}
}

func TestMLPWindowLimit(t *testing.T) {
	kern := sim.NewKernel()
	mem := &fakeMem{kern: kern, loadLat: 500}
	c := NewMLP(kern, mem, 0, 0, 8, 2, workload.NewSliceSource(ops(6, 0, false)), nil)
	c.Start()
	kern.RunAll()
	if c.LoadStall == 0 {
		t.Error("full load window never stalled the core")
	}
	if c.Loads != 6 {
		t.Errorf("Loads = %d, want 6", c.Loads)
	}
	// Three waves of two loads: finish around 3*500.
	if c.FinishedAt < 1500 || c.FinishedAt > 1600 {
		t.Errorf("finish = %d, want ~1500", c.FinishedAt)
	}
}

func TestMLPDrainWaitsForLoads(t *testing.T) {
	kern := sim.NewKernel()
	mem := &fakeMem{kern: kern, loadLat: 700}
	done := false
	c := NewMLP(kern, mem, 0, 0, 8, 4, workload.NewSliceSource(ops(2, 0, false)), func() { done = true })
	c.Start()
	kern.RunAll()
	if !done {
		t.Fatal("never finished")
	}
	if c.FinishedAt < 700 {
		t.Errorf("finished at %d before loads returned", c.FinishedAt)
	}
}

func TestBadMLPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero MLP accepted")
		}
	}()
	NewMLP(sim.NewKernel(), &fakeMem{}, 0, 0, 1, 0, workload.NewSliceSource(nil), nil)
}
