package config

import "testing"

func TestDefaultMachineValid(t *testing.T) {
	if err := DefaultMachine().Validate(); err != nil {
		t.Fatalf("default machine invalid: %v", err)
	}
}

func TestDefaultMachineMatchesTable4(t *testing.T) {
	m := DefaultMachine()
	if m.NumCMPs != 8 {
		t.Errorf("NumCMPs = %d, want 8", m.NumCMPs)
	}
	if m.CoresPerCMP != 4 {
		t.Errorf("CoresPerCMP = %d, want 4", m.CoresPerCMP)
	}
	if m.RingLinkCycles != 39 {
		t.Errorf("RingLinkCycles = %d, want 39", m.RingLinkCycles)
	}
	if m.CMPSnoopCycles != 55 {
		t.Errorf("CMPSnoopCycles = %d, want 55", m.CMPSnoopCycles)
	}
	if m.L1.SizeBytes != 32<<10 || m.L1.Assoc != 4 || m.L1.LineBytes != 64 {
		t.Errorf("L1 geometry = %+v, want 32KB/4-way/64B", m.L1)
	}
	if m.L2.SizeBytes != 512<<10 || m.L2.Assoc != 8 || m.L2.LineBytes != 64 {
		t.Errorf("L2 geometry = %+v, want 512KB/8-way/64B", m.L2)
	}
	if m.NumRings != 2 {
		t.Errorf("NumRings = %d, want 2", m.NumRings)
	}
	if m.MemLocalRTCycles != 350 || m.MemRemoteRTPrefetchCycles != 312 || m.MemRemoteRTNoPrefetchCycle != 710 {
		t.Errorf("memory round trips = %d/%d/%d, want 350/312/710",
			m.MemLocalRTCycles, m.MemRemoteRTPrefetchCycles, m.MemRemoteRTNoPrefetchCycle)
	}
}

func TestCacheSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 512 << 10, Assoc: 8, LineBytes: 64}
	if got := c.Sets(); got != 1024 {
		t.Errorf("Sets = %d, want 1024", got)
	}
	c = CacheConfig{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64}
	if got := c.Sets(); got != 128 {
		t.Errorf("Sets = %d, want 128", got)
	}
	if (CacheConfig{}).Sets() != 0 {
		t.Error("zero config should report 0 sets")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*MachineConfig)
	}{
		{"one CMP", func(m *MachineConfig) { m.NumCMPs = 1 }},
		{"zero cores", func(m *MachineConfig) { m.CoresPerCMP = 0 }},
		{"zero rings", func(m *MachineConfig) { m.NumRings = 0 }},
		{"odd line size", func(m *MachineConfig) { m.L2.LineBytes = 48; m.L1.LineBytes = 48 }},
		{"mismatched lines", func(m *MachineConfig) { m.L1.LineBytes = 32 }},
		{"torus too small", func(m *MachineConfig) { m.TorusWidth = 2; m.TorusHeight = 2 }},
		{"zero link latency", func(m *MachineConfig) { m.RingLinkCycles = 0 }},
		{"zero write buffer", func(m *MachineConfig) { m.WriteBufferEntries = 0 }},
		{"zero txn limit", func(m *MachineConfig) { m.MaxTransactionsPerNode = 0 }},
		{"zero retry backoff", func(m *MachineConfig) { m.RetryBackoffCycles = 0 }},
	}
	for _, tc := range mutations {
		m := DefaultMachine()
		tc.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
		}
	}
}

func TestLineShift(t *testing.T) {
	m := DefaultMachine()
	if got := m.LineShift(); got != 6 {
		t.Errorf("LineShift = %d, want 6 (64B lines)", got)
	}
}

func TestAlgorithmNamesRoundTrip(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", a.String(), err)
		}
		if got != a {
			t.Errorf("round trip of %v gave %v", a, got)
		}
	}
	if _, err := ParseAlgorithm("Bogus"); err == nil {
		t.Error("ParseAlgorithm accepted a bogus name")
	}
}

func TestAlgorithmClasses(t *testing.T) {
	// Section 5.3: Eager class decouples writes, Lazy class does not.
	decoupling := map[Algorithm]bool{
		Lazy: false, Eager: true, Oracle: true,
		Subset: true, SupersetCon: false, SupersetAgg: true, Exact: false,
	}
	for a, want := range decoupling {
		if got := a.DecouplesWrites(); got != want {
			t.Errorf("%v.DecouplesWrites = %v, want %v", a, got, want)
		}
	}
	predicts := map[Algorithm]bool{
		Lazy: false, Eager: false, Oracle: false,
		Subset: true, SupersetCon: true, SupersetAgg: true, Exact: true,
	}
	for a, want := range predicts {
		if got := a.UsesPredictor(); got != want {
			t.Errorf("%v.UsesPredictor = %v, want %v", a, got, want)
		}
	}
}

func TestDefaultPredictors(t *testing.T) {
	cases := []struct {
		alg  Algorithm
		kind PredictorKind
		name string
	}{
		{Lazy, PredictorNone, "None"},
		{Eager, PredictorNone, "None"},
		{Oracle, PredictorPerfect, "Perfect"},
		{Subset, PredictorSubset, "Sub2k"},
		{SupersetCon, PredictorSuperset, "Supy2k"},
		{SupersetAgg, PredictorSuperset, "Supy2k"},
		{Exact, PredictorExact, "Exa2k"},
	}
	for _, tc := range cases {
		p := DefaultPredictorFor(tc.alg)
		if p.Kind != tc.kind || p.Name != tc.name {
			t.Errorf("DefaultPredictorFor(%v) = %s/%s, want %s/%s",
				tc.alg, p.Kind, p.Name, tc.kind, tc.name)
		}
	}
}

func TestPredictorPresets(t *testing.T) {
	if p := Sub2k(); p.Entries != 2048 || p.Assoc != 8 {
		t.Errorf("Sub2k = %+v", p)
	}
	if p := SupY2k(); len(p.BloomFieldBits) != 3 || !p.ExcludeCache {
		t.Errorf("SupY2k = %+v", p)
	}
	// Table 4: "y" filter fields 10,4,7; "n" filter fields 9,9,6.
	y, n := SupY2k(), SupN2k()
	if y.BloomFieldBits[0] != 10 || y.BloomFieldBits[1] != 4 || y.BloomFieldBits[2] != 7 {
		t.Errorf("y filter fields = %v", y.BloomFieldBits)
	}
	if n.BloomFieldBits[0] != 9 || n.BloomFieldBits[1] != 9 || n.BloomFieldBits[2] != 6 {
		t.Errorf("n filter fields = %v", n.BloomFieldBits)
	}
	if p := Exa8k(); p.Entries != 8192 || p.AccessCycles != 3 {
		t.Errorf("Exa8k = %+v", p)
	}
}

func TestPredictorKindString(t *testing.T) {
	kinds := []PredictorKind{PredictorNone, PredictorSubset, PredictorSuperset, PredictorExact, PredictorPerfect}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("PredictorKind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
}
