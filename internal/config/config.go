// Package config defines the architectural and experimental configuration
// for the flexible-snooping simulator. Defaults reproduce Table 4 of the
// paper (8 CMPs of 4 cores at 6 GHz, embedded ring with 39-cycle links,
// 55-cycle CMP bus access + L2 snoop, 2-D torus data network).
package config

import (
	"errors"
	"fmt"
)

// Sentinel errors for the package's two failure classes; match with
// errors.Is. Every ParseAlgorithm and Validate failure wraps one of them.
var (
	// ErrUnknownAlgorithm is returned (wrapped) for unrecognized
	// algorithm names.
	ErrUnknownAlgorithm = errors.New("config: unknown algorithm")
	// ErrBadConfig is returned (wrapped) for invalid machine
	// configurations.
	ErrBadConfig = errors.New("config: invalid configuration")
)

// Algorithm identifies one of the snooping algorithms studied in the paper.
type Algorithm int

// The seven algorithms of Sections 3-4, plus the dynamic extension the
// paper envisions in Section 6.1.5.
const (
	// Lazy snoops at every node before forwarding, until the supplier is
	// found (Section 3.1; the baseline the figures normalise to).
	Lazy Algorithm = iota
	// Eager forwards immediately at every node and snoops in parallel
	// (Barroso & Dubois; Section 3.1).
	Eager
	// Oracle snoops only at the supplier node (Section 3.1).
	Oracle
	// Subset uses a no-false-positive predictor: SnoopThenForward on a
	// positive prediction, ForwardThenSnoop on a negative one (Table 3).
	Subset
	// SupersetCon uses a no-false-negative predictor conservatively:
	// SnoopThenForward on positive, Forward on negative (Table 3).
	SupersetCon
	// SupersetAgg uses a no-false-negative predictor aggressively:
	// ForwardThenSnoop on positive, Forward on negative (Table 3).
	SupersetAgg
	// Exact uses a predictor with neither false positives nor false
	// negatives, maintained by downgrading lines evicted from the
	// predictor (Section 4.3.3).
	Exact
	// DynamicSuperset switches between the SupersetAgg and SupersetCon
	// positive-prediction actions at run time under an energy budget.
	// This is the adaptive system the paper envisions in Section 6.1.5.
	DynamicSuperset

	numAlgorithms
)

// Algorithms lists every static algorithm in paper order (excludes the
// DynamicSuperset extension).
func Algorithms() []Algorithm {
	return []Algorithm{Lazy, Eager, Oracle, Subset, SupersetCon, SupersetAgg, Exact}
}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Lazy:
		return "Lazy"
	case Eager:
		return "Eager"
	case Oracle:
		return "Oracle"
	case Subset:
		return "Subset"
	case SupersetCon:
		return "SupersetCon"
	case SupersetAgg:
		return "SupersetAgg"
	case Exact:
		return "Exact"
	case DynamicSuperset:
		return "DynamicSuperset"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm maps a (case-sensitive) algorithm name to its identifier.
func ParseAlgorithm(name string) (Algorithm, error) {
	for a := Algorithm(0); a < numAlgorithms; a++ {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%w %q", ErrUnknownAlgorithm, name)
}

// DecouplesWrites reports whether the algorithm splits write snoops into a
// request and a reply so nodes invalidate in parallel (Section 5.3: the
// Eager class decouples, the Lazy class does not).
func (a Algorithm) DecouplesWrites() bool {
	switch a {
	case Eager, Subset, SupersetAgg, Oracle, DynamicSuperset:
		return true
	default:
		return false
	}
}

// UsesPredictor reports whether the algorithm consults a supplier predictor.
func (a Algorithm) UsesPredictor() bool {
	switch a {
	case Subset, SupersetCon, SupersetAgg, Exact, DynamicSuperset:
		return true
	default:
		return false
	}
}

// PredictorKind selects a supplier-predictor implementation (Section 4.3).
type PredictorKind int

const (
	// PredictorNone is used by Lazy and Eager, which never predict.
	PredictorNone PredictorKind = iota
	// PredictorSubset is a set-associative cache of supplier-line
	// addresses: no false positives, possible false negatives.
	PredictorSubset
	// PredictorSuperset is a counting Bloom filter plus an optional
	// JETTY-style exclude cache: no false negatives, possible false
	// positives.
	PredictorSuperset
	// PredictorExact is the Subset structure made exact by downgrading
	// lines whose predictor entries are evicted.
	PredictorExact
	// PredictorPerfect peeks at the actual cache state (Oracle).
	PredictorPerfect
)

func (k PredictorKind) String() string {
	switch k {
	case PredictorNone:
		return "none"
	case PredictorSubset:
		return "subset"
	case PredictorSuperset:
		return "superset"
	case PredictorExact:
		return "exact"
	case PredictorPerfect:
		return "perfect"
	default:
		return fmt.Sprintf("PredictorKind(%d)", int(k))
	}
}

// PredictorConfig sizes a supplier predictor. The named presets in this
// package reproduce the configurations in Table 4 and Section 5.2.
type PredictorConfig struct {
	Kind PredictorKind

	// Name is the Section 5.2 label (Sub2k, SupCy2k, ...). Informational.
	Name string

	// Entries and Assoc size the subset/exact predictor cache, or the
	// exclude cache for superset predictors.
	Entries int
	Assoc   int

	// BloomFieldBits gives the bit width of each Bloom-filter index field
	// (superset predictors only). Table 4: the "y" filter is 10,4,7 and
	// the "n" filter is 9,9,6.
	BloomFieldBits []uint

	// ExcludeCache enables the JETTY-style exclude cache that suppresses
	// repeated false positives (superset predictors only).
	ExcludeCache bool

	// AccessCycles is the predictor lookup latency in processor cycles.
	AccessCycles int
}

// Predictor presets from Section 5.2 / Table 4.
func Sub512() PredictorConfig {
	return PredictorConfig{Kind: PredictorSubset, Name: "Sub512", Entries: 512, Assoc: 8, AccessCycles: 2}
}
func Sub2k() PredictorConfig {
	return PredictorConfig{Kind: PredictorSubset, Name: "Sub2k", Entries: 2048, Assoc: 8, AccessCycles: 2}
}
func Sub8k() PredictorConfig {
	return PredictorConfig{Kind: PredictorSubset, Name: "Sub8k", Entries: 8192, Assoc: 8, AccessCycles: 3}
}

// SupY512 is the "y" Bloom filter (fields 10,4,7 bits) with a 512-entry
// exclude cache.
func SupY512() PredictorConfig {
	return PredictorConfig{Kind: PredictorSuperset, Name: "Supy512", Entries: 512, Assoc: 8,
		BloomFieldBits: []uint{10, 4, 7}, ExcludeCache: true, AccessCycles: 2}
}

// SupY2k is the "y" Bloom filter with a 2K-entry exclude cache (the main
// configuration used in Section 6.1).
func SupY2k() PredictorConfig {
	return PredictorConfig{Kind: PredictorSuperset, Name: "Supy2k", Entries: 2048, Assoc: 8,
		BloomFieldBits: []uint{10, 4, 7}, ExcludeCache: true, AccessCycles: 2}
}

// SupN2k is the "n" Bloom filter (fields 9,9,6 bits) with a 2K-entry
// exclude cache.
func SupN2k() PredictorConfig {
	return PredictorConfig{Kind: PredictorSuperset, Name: "Supn2k", Entries: 2048, Assoc: 8,
		BloomFieldBits: []uint{9, 9, 6}, ExcludeCache: true, AccessCycles: 2}
}

func Exa512() PredictorConfig {
	return PredictorConfig{Kind: PredictorExact, Name: "Exa512", Entries: 512, Assoc: 8, AccessCycles: 2}
}
func Exa2k() PredictorConfig {
	return PredictorConfig{Kind: PredictorExact, Name: "Exa2k", Entries: 2048, Assoc: 8, AccessCycles: 2}
}
func Exa8k() PredictorConfig {
	return PredictorConfig{Kind: PredictorExact, Name: "Exa8k", Entries: 8192, Assoc: 8, AccessCycles: 3}
}

// Perfect returns the oracle predictor configuration.
func Perfect() PredictorConfig {
	return PredictorConfig{Kind: PredictorPerfect, Name: "Perfect"}
}

// NoPredictor returns the empty predictor configuration for Lazy/Eager.
func NoPredictor() PredictorConfig {
	return PredictorConfig{Kind: PredictorNone, Name: "None"}
}

// DefaultPredictorFor returns the Section 6.1 predictor for an algorithm:
// Sub2k, SupCy2k/SupAy2k, Exa2k, Perfect for Oracle, none for Lazy/Eager.
func DefaultPredictorFor(a Algorithm) PredictorConfig {
	switch a {
	case Subset:
		return Sub2k()
	case SupersetCon, SupersetAgg, DynamicSuperset:
		return SupY2k()
	case Exact:
		return Exa2k()
	case Oracle:
		return Perfect()
	default:
		return NoPredictor()
	}
}

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes int
	Assoc     int
	LineBytes int
	// RoundTripCycles is the hit round-trip latency seen by the core.
	RoundTripCycles int
}

// Sets returns the number of sets implied by the geometry, or 0 for a
// degenerate configuration.
func (c CacheConfig) Sets() int {
	if c.LineBytes <= 0 || c.Assoc <= 0 {
		return 0
	}
	return c.SizeBytes / c.LineBytes / c.Assoc
}

// MachineConfig holds every architectural parameter of Table 4.
type MachineConfig struct {
	NumCMPs     int // chips on the ring (Table 4: 8)
	CoresPerCMP int // 4 for SPLASH-2 runs, 1 for the SPEC runs

	L1 CacheConfig
	L2 CacheConfig

	// NumRings is how many unidirectional rings are embedded in the
	// network; snoop messages are mapped to rings by line address
	// (Section 2.2; the evaluation embeds two).
	NumRings int

	// RingLinkCycles is the CMP-to-CMP snoop-message latency (39 cycles).
	RingLinkCycles int

	// CMPSnoopCycles is the ring-message cost of accessing the CMP bus
	// and snooping all on-chip L2s (55 cycles, Section 5.1).
	CMPSnoopCycles int

	// IntraCMPBusCycles is the round trip to another L2 on the same chip
	// (55 cycles).
	IntraCMPBusCycles int

	// BusOccupancyCycles is how long one operation occupies the shared
	// intra-CMP bus before the next may start. The bus is pipelined
	// (Table 4: 64 GB/s), so occupancy is much shorter than the 55-cycle
	// latency.
	BusOccupancyCycles int

	// TorusWidth x TorusHeight is the 2-D torus carrying data messages.
	TorusWidth  int
	TorusHeight int
	// TorusHopCycles is the per-hop latency of a data message.
	TorusHopCycles int
	// DataSerializationCycles is the occupancy added by a 64-byte line
	// transfer on a torus link.
	DataSerializationCycles int

	// Memory round trips (Table 4): local, and remote with/without the
	// prefetch-on-snoop heuristic.
	MemLocalRTCycles           int
	MemRemoteRTPrefetchCycles  int
	MemRemoteRTNoPrefetchCycle int
	// DRAMAccessCycles is the raw DRAM array access time (50 ns at 6 GHz).
	DRAMAccessCycles int
	// DRAMOccupancyCycles is how long one line transfer occupies the
	// DRAM channel (64 B at 10.7 GB/s is ~6 ns = 36 cycles at 6 GHz);
	// back-to-back accesses to one controller queue behind it.
	DRAMOccupancyCycles int
	// PrefetchOnSnoop enables the heuristic that starts a DRAM prefetch
	// when a read snoop passes its home node (Section 2.2).
	PrefetchOnSnoop bool

	// DisableLocalMaster removes the S_L (Local Master) qualifier from
	// the protocol: ring-supplied reads install plain S and cannot later
	// supply CMP-local readers, so those reads go to the ring instead.
	// The paper introduces S_L precisely to avoid this (Section 2.2);
	// the ablation quantifies its benefit.
	DisableLocalMaster bool
	// PrefetchBufferEntries bounds the per-node prefetch buffer.
	PrefetchBufferEntries int

	// WriteBufferEntries is the per-core store buffer depth; the core
	// stalls on a write only when the buffer is full.
	WriteBufferEntries int

	// MaxOutstandingLoads is the per-core memory-level parallelism: the
	// number of load misses the core keeps issuing past, approximating
	// the paper's out-of-order cores (Table 4: 176-entry ROB, 64-entry
	// load queue). 1 degrades to an in-order core with blocking loads.
	MaxOutstandingLoads int

	// MaxTransactionsPerNode bounds concurrently outstanding ring
	// transactions issued by one CMP gateway.
	MaxTransactionsPerNode int

	// RetryBackoffCycles delays reissue of a squashed transaction.
	RetryBackoffCycles int
}

// DefaultMachine returns the Table 4 machine: 8 CMPs x 4 cores at 6 GHz.
func DefaultMachine() MachineConfig {
	return MachineConfig{
		NumCMPs:     8,
		CoresPerCMP: 4,
		L1: CacheConfig{
			SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, RoundTripCycles: 2,
		},
		L2: CacheConfig{
			SizeBytes: 512 << 10, Assoc: 8, LineBytes: 64, RoundTripCycles: 11,
		},
		NumRings:                   2,
		RingLinkCycles:             39,
		CMPSnoopCycles:             55,
		IntraCMPBusCycles:          55,
		BusOccupancyCycles:         4,
		TorusWidth:                 4,
		TorusHeight:                2,
		TorusHopCycles:             25,
		DataSerializationCycles:    12,
		MemLocalRTCycles:           350,
		MemRemoteRTPrefetchCycles:  312,
		MemRemoteRTNoPrefetchCycle: 710,
		DRAMAccessCycles:           300,
		DRAMOccupancyCycles:        36,
		PrefetchOnSnoop:            true,
		PrefetchBufferEntries:      16,
		WriteBufferEntries:         8,
		MaxOutstandingLoads:        2,
		MaxTransactionsPerNode:     16,
		RetryBackoffCycles:         64,
	}
}

// Validate reports the first configuration error found.
func (m MachineConfig) Validate() error {
	switch {
	case m.NumCMPs < 2:
		return fmt.Errorf("%w: need at least 2 CMPs for a ring", ErrBadConfig)
	case m.CoresPerCMP < 1:
		return fmt.Errorf("%w: need at least 1 core per CMP", ErrBadConfig)
	case m.NumRings < 1:
		return fmt.Errorf("%w: need at least 1 embedded ring", ErrBadConfig)
	case m.L2.LineBytes == 0 || m.L2.LineBytes&(m.L2.LineBytes-1) != 0:
		return fmt.Errorf("%w: L2 line size %d is not a power of two", ErrBadConfig, m.L2.LineBytes)
	case m.L1.LineBytes != m.L2.LineBytes:
		return fmt.Errorf("%w: L1 and L2 line sizes must match", ErrBadConfig)
	case m.L2.Sets() == 0 || m.L2.Sets()&(m.L2.Sets()-1) != 0:
		return fmt.Errorf("%w: L2 set count %d is not a power of two", ErrBadConfig, m.L2.Sets())
	case m.L1.Sets() == 0 || m.L1.Sets()&(m.L1.Sets()-1) != 0:
		return fmt.Errorf("%w: L1 set count %d is not a power of two", ErrBadConfig, m.L1.Sets())
	case m.TorusWidth*m.TorusHeight < m.NumCMPs:
		return fmt.Errorf("%w: %dx%d torus cannot place %d CMPs", ErrBadConfig,
			m.TorusWidth, m.TorusHeight, m.NumCMPs)
	case m.RingLinkCycles <= 0 || m.CMPSnoopCycles <= 0:
		return fmt.Errorf("%w: ring latencies must be positive", ErrBadConfig)
	case m.BusOccupancyCycles <= 0:
		return fmt.Errorf("%w: bus occupancy must be positive", ErrBadConfig)
	case m.WriteBufferEntries < 1:
		return fmt.Errorf("%w: write buffer needs at least 1 entry", ErrBadConfig)
	case m.MaxOutstandingLoads < 1:
		return fmt.Errorf("%w: need at least 1 outstanding load", ErrBadConfig)
	case m.MaxTransactionsPerNode < 1:
		return fmt.Errorf("%w: need at least 1 outstanding transaction per node", ErrBadConfig)
	case m.RetryBackoffCycles < 1:
		// The squash/retry and timeout/retransmit paths both scale this
		// value; zero would make every retry re-collide in the same cycle.
		return fmt.Errorf("%w: retry backoff must be positive", ErrBadConfig)
	}
	return nil
}

// LineShift returns log2 of the coherence line size.
func (m MachineConfig) LineShift() uint {
	s := uint(0)
	for v := m.L2.LineBytes; v > 1; v >>= 1 {
		s++
	}
	return s
}

// TotalCores returns NumCMPs * CoresPerCMP.
func (m MachineConfig) TotalCores() int { return m.NumCMPs * m.CoresPerCMP }
