package energy

import (
	"math"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.RingLinkMsgNJ != 3.17 {
		t.Errorf("ring link = %v nJ, want 3.17 (Section 6.1.4)", p.RingLinkMsgNJ)
	}
	if p.SnoopOpNJ != 0.69 {
		t.Errorf("snoop op = %v nJ, want 0.69", p.SnoopOpNJ)
	}
	if p.MemAccessNJ != 24.0 {
		t.Errorf("memory access = %v nJ, want 24", p.MemAccessNJ)
	}
	// The paper notes ring links dominate snoops by a wide margin.
	if p.RingLinkMsgNJ <= p.SnoopOpNJ {
		t.Error("ring link energy should exceed snoop energy")
	}
}

func TestMeterAccumulation(t *testing.T) {
	m := NewMeter(DefaultParams())
	m.AddRingLinks(7)
	m.AddSnoopOp()
	m.AddSnoopOp()
	m.AddExtraMemAccess()
	if m.Count(RingLink) != 7 {
		t.Errorf("ring link count = %d, want 7", m.Count(RingLink))
	}
	if !almostEqual(m.NJ(RingLink), 7*3.17) {
		t.Errorf("ring link nJ = %v, want %v", m.NJ(RingLink), 7*3.17)
	}
	if !almostEqual(m.NJ(SnoopOp), 2*0.69) {
		t.Errorf("snoop nJ = %v", m.NJ(SnoopOp))
	}
	want := 7*3.17 + 2*0.69 + 24.0
	if !almostEqual(m.TotalNJ(), want) {
		t.Errorf("total = %v, want %v", m.TotalNJ(), want)
	}
}

func TestPredictorEnergy(t *testing.T) {
	p := DefaultParams()
	m := NewMeter(p)
	m.AddPredictorLookup(false)
	m.AddPredictorLookup(true)
	m.AddPredictorUpdate(false)
	m.AddPredictorUpdate(true)
	want := p.SubsetLookupNJ + p.SupersetLookupNJ + p.SubsetUpdateNJ + p.SupersetUpdateNJ
	if !almostEqual(m.NJ(Predictor), want) {
		t.Errorf("predictor nJ = %v, want %v", m.NJ(Predictor), want)
	}
	if m.Count(Predictor) != 4 {
		t.Errorf("predictor count = %d, want 4", m.Count(Predictor))
	}
	// Superset structures must cost more than subset ones (the paper's
	// explanation of why SupersetCon lands only slightly below Lazy).
	if p.SupersetLookupNJ <= p.SubsetLookupNJ {
		t.Error("superset lookup should cost more than subset lookup")
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	m := NewMeter(DefaultParams())
	m.AddRingLinks(3)
	m.AddSnoopOp()
	m.AddDowngradeOp()
	m.AddExtraMemAccess()
	m.AddPredictorLookup(true)
	sum := 0.0
	for _, v := range m.Breakdown() {
		sum += v
	}
	if !almostEqual(sum, m.TotalNJ()) {
		t.Errorf("breakdown sum %v != total %v", sum, m.TotalNJ())
	}
}

func TestCategoryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Categories() {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("category %d has empty/duplicate name %q", c, s)
		}
		seen[s] = true
	}
}

func TestZeroMeterIsFree(t *testing.T) {
	var m Meter
	m.AddRingLinks(10)
	m.AddSnoopOp()
	if m.TotalNJ() != 0 {
		t.Errorf("zero-params meter accumulated %v nJ", m.TotalNJ())
	}
	if m.Count(RingLink) != 10 {
		t.Errorf("zero meter lost counts: %d", m.Count(RingLink))
	}
}
