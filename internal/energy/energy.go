// Package energy accounts for the energy consumed servicing snoop requests
// and replies, reproducing the accounting of Section 6.1.4: snooping nodes
// other than the requester, accessing and updating the supplier predictors,
// transmitting messages on ring links, and — for the Exact algorithm — the
// line downgrades with their induced memory write-backs and re-reads.
//
// The per-operation constants are the published outputs of the tools the
// paper used (CACTI, Orion, the HyperTransport I/O Link Specification and
// Micron's System-Power Calculator): 3.17 nJ per snoop message per ring
// link, 0.69 nJ per CMP snoop, 24 nJ per main-memory access.
package energy

import "fmt"

// Category labels one source of snoop-servicing energy.
type Category int

const (
	// RingLink: transmission of a snoop request/reply over one ring link.
	RingLink Category = iota
	// SnoopOp: one CMP bus access + L2 tag snoop.
	SnoopOp
	// Predictor: supplier-predictor lookups and training updates.
	Predictor
	// MemoryExtra: main-memory accesses attributable to the snooping
	// algorithm itself (Exact's downgrade write-backs and the re-reads
	// of downgraded lines).
	MemoryExtra
	// DowngradeOp: the cache access that downgrades a line when the
	// Exact predictor evicts its entry.
	DowngradeOp

	numCategories
)

func (c Category) String() string {
	switch c {
	case RingLink:
		return "ring-link"
	case SnoopOp:
		return "snoop-op"
	case Predictor:
		return "predictor"
	case MemoryExtra:
		return "memory-extra"
	case DowngradeOp:
		return "downgrade-op"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all accounting categories.
func Categories() []Category {
	return []Category{RingLink, SnoopOp, Predictor, MemoryExtra, DowngradeOp}
}

// Params holds the per-operation energies in nanojoules.
type Params struct {
	RingLinkMsgNJ float64 // one snoop message over one ring link
	SnoopOpNJ     float64 // one CMP snoop (bus + all L2 tag arrays)
	// Subset/exact predictor cache access (CACTI-class small SRAM).
	SubsetLookupNJ float64
	// Superset predictor access: Bloom filter banks + exclude cache.
	SupersetLookupNJ float64
	// Training updates (insert/remove/counter update).
	SubsetUpdateNJ   float64
	SupersetUpdateNJ float64
	MemAccessNJ      float64 // one DRAM line read or write
	DowngradeNJ      float64 // cache access performing a downgrade
}

// DefaultParams returns the paper's published constants, with CACTI-class
// estimates for the small predictor structures (the paper reports these
// are substantial for the superset predictors — enough that SupersetCon
// lands only slightly below Lazy).
func DefaultParams() Params {
	return Params{
		RingLinkMsgNJ:    3.17,
		SnoopOpNJ:        0.69,
		SubsetLookupNJ:   0.05,
		SupersetLookupNJ: 0.18,
		SubsetUpdateNJ:   0.05,
		SupersetUpdateNJ: 0.22,
		MemAccessNJ:      24.0,
		DowngradeNJ:      0.69,
	}
}

// Meter accumulates energy by category. The zero value uses zero-cost
// params; build with NewMeter.
type Meter struct {
	p      Params
	counts [numCategories]uint64
	nj     [numCategories]float64
}

// NewMeter returns a meter using the given parameters.
func NewMeter(p Params) *Meter { return &Meter{p: p} }

func (m *Meter) add(c Category, n uint64, njEach float64) {
	m.counts[c] += n
	m.nj[c] += float64(n) * njEach
}

// AddRingLinks records a snoop message crossing n ring links.
func (m *Meter) AddRingLinks(n int) { m.add(RingLink, uint64(n), m.p.RingLinkMsgNJ) }

// AddSnoopOp records one CMP snoop operation.
func (m *Meter) AddSnoopOp() { m.add(SnoopOp, 1, m.p.SnoopOpNJ) }

// AddPredictorLookup records one supplier-predictor check.
func (m *Meter) AddPredictorLookup(superset bool) {
	if superset {
		m.add(Predictor, 1, m.p.SupersetLookupNJ)
	} else {
		m.add(Predictor, 1, m.p.SubsetLookupNJ)
	}
}

// AddPredictorUpdate records one training update.
func (m *Meter) AddPredictorUpdate(superset bool) {
	if superset {
		m.add(Predictor, 1, m.p.SupersetUpdateNJ)
	} else {
		m.add(Predictor, 1, m.p.SubsetUpdateNJ)
	}
}

// AddExtraMemAccess records a main-memory access attributable to the
// snooping algorithm (downgrade write-back or re-read).
func (m *Meter) AddExtraMemAccess() { m.add(MemoryExtra, 1, m.p.MemAccessNJ) }

// AddDowngradeOp records the cache operation performing a downgrade.
func (m *Meter) AddDowngradeOp() { m.add(DowngradeOp, 1, m.p.DowngradeNJ) }

// Count returns the number of operations recorded in a category.
func (m *Meter) Count(c Category) uint64 { return m.counts[c] }

// NJ returns the accumulated nanojoules of a category.
func (m *Meter) NJ(c Category) float64 { return m.nj[c] }

// TotalNJ returns total accumulated nanojoules across categories.
func (m *Meter) TotalNJ() float64 {
	t := 0.0
	for _, v := range m.nj {
		t += v
	}
	return t
}

// Breakdown returns a copy of the per-category totals in nanojoules.
func (m *Meter) Breakdown() map[Category]float64 {
	out := make(map[Category]float64, numCategories)
	for c := Category(0); c < numCategories; c++ {
		out[c] = m.nj[c]
	}
	return out
}
