package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestArithMean(t *testing.T) {
	if got := ArithMean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("ArithMean = %v, want 2", got)
	}
	if got := ArithMean(nil); got != 0 {
		t.Errorf("empty ArithMean = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{8}); math.Abs(got-8) > 1e-12 {
		t.Errorf("GeoMean(8) = %v, want 8", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("empty GeoMean = %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean of non-positive value did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

// Property: arith mean >= geo mean for positive inputs (AM-GM).
func TestAMGMInequality(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r%1000)+1)
		}
		if len(xs) == 0 {
			return true
		}
		return ArithMean(xs)+1e-9 >= GeoMean(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	vals := map[string]float64{"Lazy": 4, "Eager": 8, "Oracle": 2}
	norm, err := Normalize(vals, "Lazy")
	if err != nil {
		t.Fatal(err)
	}
	if norm["Lazy"] != 1 || norm["Eager"] != 2 || norm["Oracle"] != 0.5 {
		t.Errorf("Normalize = %v", norm)
	}
	if _, err := Normalize(vals, "Missing"); err == nil {
		t.Error("missing baseline accepted")
	}
	if _, err := Normalize(map[string]float64{"Lazy": 0}, "Lazy"); err == nil {
		t.Error("zero baseline accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Figure X", "Algorithm", "Value")
	tab.AddRowf("Lazy", 1.0)
	tab.AddRowf("Eager", 1.805)
	out := tab.String()
	for _, want := range []string{"Figure X", "Algorithm", "Lazy", "1.000", "Eager", "1.805"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Short rows are padded, not dropped.
	tab.AddRow("OnlyOne")
	if !strings.Contains(tab.String(), "OnlyOne") {
		t.Error("short row dropped")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Figure 6")
	c.Add("Lazy", 5)
	c.Add("Eager", 7)
	c.Add("Oracle", 0.7)
	out := c.String()
	for _, want := range []string{"Figure 6", "Lazy", "Eager", "5.000", "7.000", "0.700"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The largest value gets the longest bar.
	lines := strings.Split(out, "\n")
	var lazyBar, eagerBar int
	for _, l := range lines {
		if strings.Contains(l, "Lazy") {
			lazyBar = strings.Count(l, "#")
		}
		if strings.Contains(l, "Eager") {
			eagerBar = strings.Count(l, "#")
		}
	}
	if eagerBar <= lazyBar {
		t.Errorf("Eager bar (%d) not longer than Lazy bar (%d)", eagerBar, lazyBar)
	}
}

func TestBarChartGroups(t *testing.T) {
	c := NewBarChart("")
	c.AddGroup("SPLASH-2", map[string]float64{"b": 2, "a": 1})
	out := c.String()
	if !strings.Contains(out, "— SPLASH-2") {
		t.Errorf("missing group heading:\n%s", out)
	}
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Error("group keys not sorted")
	}
}

func TestCSV(t *testing.T) {
	rows := map[string]map[string]float64{
		"Lazy":  {"SPLASH-2": 1, "SPECjbb": 1},
		"Eager": {"SPLASH-2": 1.9},
	}
	out := CSV("algorithm", rows)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "algorithm,SPECjbb,SPLASH-2" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "Eager,,1.9" {
		t.Errorf("Eager row = %q (missing cells must stay empty)", lines[1])
	}
	if lines[2] != "Lazy,1,1" {
		t.Errorf("Lazy row = %q", lines[2])
	}
}

func TestSVGBarChart(t *testing.T) {
	c := NewSVGBarChart("Figure 9", "energy (normalised to Lazy)")
	c.Set("SPLASH-2", "Lazy", 1.0)
	c.Set("SPLASH-2", "Eager", 1.78)
	c.Set("SPECjbb", "Lazy", 1.0)
	c.Set("SPECjbb", "Eager", 1.74)
	out := c.String()
	for _, want := range []string{"<svg", "</svg>", "Figure 9", "SPLASH-2", "SPECjbb",
		"Lazy", "Eager", "Eager: 1.780"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 4 bars -> 4 data rects (plus the background rect and legend swatches).
	if n := strings.Count(out, "<title>"); n != 4 {
		t.Errorf("SVG has %d bars, want 4", n)
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	c := NewSVGBarChart(`<b>&"title"`, "")
	c.Set("g<1>", "s&2", 1)
	out := c.String()
	if strings.Contains(out, "<b>") || strings.Contains(out, "g<1>") {
		t.Error("SVG did not escape markup in labels")
	}
	if !strings.Contains(out, "&lt;b&gt;") {
		t.Error("escaped title missing")
	}
}

func TestSVGSetGroupSorted(t *testing.T) {
	c := NewSVGBarChart("", "")
	c.SetGroup("G", map[string]float64{"b": 2, "a": 1, "c": 3})
	if len(c.series) != 3 || c.series[0] != "a" || c.series[2] != "c" {
		t.Errorf("series order = %v", c.series)
	}
}

func TestSVGEmptyChartValid(t *testing.T) {
	out := NewSVGBarChart("empty", "").String()
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("empty chart is not a valid SVG skeleton")
	}
}
