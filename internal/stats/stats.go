// Package stats provides the aggregation and table-rendering helpers used
// to report experiment results the way the paper does: arithmetic means
// for absolute counts (Figure 6), geometric means for quantities
// normalised to a baseline (Figures 7-9), and fixed-width ASCII tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ArithMean returns the arithmetic mean, or 0 for an empty input.
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean, or 0 for an empty input. All inputs
// must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geometric mean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Normalize divides every value by the baseline key's value, reproducing
// the paper's "normalised to Lazy" bars.
func Normalize(values map[string]float64, baseline string) (map[string]float64, error) {
	base, ok := values[baseline]
	if !ok {
		return nil, fmt.Errorf("stats: baseline %q missing", baseline)
	}
	if base == 0 {
		return nil, fmt.Errorf("stats: baseline %q is zero", baseline)
	}
	out := make(map[string]float64, len(values))
	for k, v := range values {
		out[k] = v / base
	}
	return out, nil
}

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted cells: each value is rendered with
// %v, floats with 3 decimals.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprint(c))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	sep := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		sep[i] = strings.Repeat("-", widths[i])
	}
	b.WriteString("\n")
	for i := range sep {
		fmt.Fprintf(&b, "%s  ", sep[i])
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SortedKeys returns a map's keys in sorted order (stable table output).
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
