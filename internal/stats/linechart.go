package stats

import (
	"fmt"
	"strings"
)

// SVGLineChart renders one or more (x, y) series as a standalone SVG
// line chart — the time-series companion to SVGBarChart, used by the
// telemetry layer's interval metrics.
type SVGLineChart struct {
	Title  string
	XLabel string
	YLabel string

	// Width and Height of the drawing in pixels (defaults 720x360).
	Width, Height int

	series []string
	points map[string][][2]float64 // series -> ordered (x, y)
}

// NewSVGLineChart creates an empty chart.
func NewSVGLineChart(title, xlabel, ylabel string) *SVGLineChart {
	return &SVGLineChart{
		Title: title, XLabel: xlabel, YLabel: ylabel,
		Width: 720, Height: 360,
		points: map[string][][2]float64{},
	}
}

// Add appends one point to a series. Series appear in first-Add order;
// points are drawn in insertion order.
func (c *SVGLineChart) Add(series string, x, y float64) {
	if _, ok := c.points[series]; !ok {
		c.series = append(c.series, series)
	}
	c.points[series] = append(c.points[series], [2]float64{x, y})
}

// String renders the SVG document.
func (c *SVGLineChart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 360
	}
	const (
		marginL = 56
		marginR = 16
		marginT = 40
		marginB = 64
	)
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB

	xMin, xMax, yMax := 0.0, 0.0, 0.0
	firstPt := true
	for _, s := range c.series {
		for _, p := range c.points[s] {
			if firstPt || p[0] < xMin {
				xMin = p[0]
			}
			if firstPt || p[0] > xMax {
				xMax = p[0]
			}
			if p[1] > yMax {
				yMax = p[1]
			}
			firstPt = false
		}
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax == 0 {
		yMax = 1
	}
	yMax *= 1.1

	px := func(x float64) float64 {
		return float64(marginL) + (x-xMin)/(xMax-xMin)*float64(plotW)
	}
	py := func(y float64) float64 {
		return float64(marginT+plotH) - y/yMax*float64(plotH)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, svgEscape(c.Title))
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" font-size="11" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, svgEscape(c.YLabel))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, marginT+plotH+32, svgEscape(c.XLabel))
	}

	// Gridlines with y ticks and x-range ticks.
	for i := 0; i <= 5; i++ {
		v := yMax * float64(i) / 5
		y := marginT + plotH - int(float64(plotH)*float64(i)/5)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%.2f</text>`+"\n", marginL-6, y+3, v)
	}
	for i := 0; i <= 4; i++ {
		v := xMin + (xMax-xMin)*float64(i)/4
		x := marginL + int(float64(plotW)*float64(i)/4)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="middle">%.4g</text>`+"\n", x, marginT+plotH+16, v)
	}

	// Series polylines.
	for si, s := range c.series {
		pts := c.points[s]
		if len(pts) == 0 {
			continue
		}
		var pb strings.Builder
		for _, p := range pts {
			fmt.Fprintf(&pb, "%.1f,%.1f ", px(p[0]), py(p[1]))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			svgPalette[si%len(svgPalette)], strings.TrimSpace(pb.String()))
	}

	// Legend along the bottom.
	lx := marginL
	ly := h - 8
	for si, s := range c.series {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="3" fill="%s"/>`+"\n", lx, ly-6, svgPalette[si%len(svgPalette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%s</text>`+"\n", lx+14, ly, svgEscape(s))
		lx += 14 + 7*len(s) + 16
	}

	b.WriteString("</svg>\n")
	return b.String()
}
