package stats

import (
	"fmt"
	"sort"
	"strings"
)

// SVGBarChart renders grouped vertical bars as a standalone SVG document —
// the visual form of the paper's Figures 6-9. Groups are workload classes;
// series are algorithms.
type SVGBarChart struct {
	Title  string
	YLabel string

	// Width and Height of the drawing in pixels (defaults 720x360).
	Width, Height int

	groups []string
	series []string
	values map[string]map[string]float64 // group -> series -> value
}

// NewSVGBarChart creates an empty chart.
func NewSVGBarChart(title, ylabel string) *SVGBarChart {
	return &SVGBarChart{
		Title: title, YLabel: ylabel,
		Width: 720, Height: 360,
		values: map[string]map[string]float64{},
	}
}

// Set records one bar. Groups and series appear in first-Set order.
func (c *SVGBarChart) Set(group, series string, value float64) {
	if c.values[group] == nil {
		c.values[group] = map[string]float64{}
		c.groups = append(c.groups, group)
	}
	if _, ok := c.values[group][series]; !ok {
		found := false
		for _, s := range c.series {
			if s == series {
				found = true
				break
			}
		}
		if !found {
			c.series = append(c.series, series)
		}
	}
	c.values[group][series] = value
}

// SetGroup records a whole group's bars in sorted series order.
func (c *SVGBarChart) SetGroup(group string, vals map[string]float64) {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.Set(group, k, vals[k])
	}
}

// A brand-neutral categorical palette (dark-on-light friendly).
var svgPalette = []string{
	"#4269d0", "#efb118", "#ff725c", "#6cc5b0",
	"#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// String renders the SVG document.
func (c *SVGBarChart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 360
	}
	const (
		marginL = 56
		marginR = 16
		marginT = 40
		marginB = 64
	)
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB

	max := 0.0
	for _, g := range c.groups {
		for _, s := range c.series {
			if v := c.values[g][s]; v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	// Headroom and a round-ish tick step.
	yMax := max * 1.1

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, svgEscape(c.Title))
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" font-size="11" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, svgEscape(c.YLabel))
	}

	// Y axis with 5 gridlines.
	for i := 0; i <= 5; i++ {
		v := yMax * float64(i) / 5
		y := marginT + plotH - int(float64(plotH)*float64(i)/5)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%.2f</text>`+"\n", marginL-6, y+3, v)
	}

	// Bars.
	ng, ns := len(c.groups), len(c.series)
	if ng > 0 && ns > 0 {
		groupW := float64(plotW) / float64(ng)
		barW := groupW * 0.8 / float64(ns)
		for gi, g := range c.groups {
			for si, s := range c.series {
				v, ok := c.values[g][s]
				if !ok {
					continue
				}
				bh := int(float64(plotH) * v / yMax)
				x := float64(marginL) + groupW*float64(gi) + groupW*0.1 + barW*float64(si)
				y := marginT + plotH - bh
				fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s / %s: %.3f</title></rect>`+"\n",
					x, y, barW*0.92, bh, svgPalette[si%len(svgPalette)], svgEscape(g), svgEscape(s), v)
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
				float64(marginL)+groupW*(float64(gi)+0.5), marginT+plotH+16, svgEscape(g))
		}
	}

	// Legend along the bottom.
	lx := marginL
	ly := h - 18
	for si, s := range c.series {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", lx, ly-9, svgPalette[si%len(svgPalette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%s</text>`+"\n", lx+14, ly, svgEscape(s))
		lx += 14 + 7*len(s) + 16
	}

	b.WriteString("</svg>\n")
	return b.String()
}
