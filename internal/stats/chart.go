package stats

import (
	"fmt"
	"sort"
	"strings"
)

// BarChart renders grouped horizontal bars as ASCII — the shape of the
// paper's Figures 6-9 without leaving the terminal.
type BarChart struct {
	Title string
	// MaxWidth is the widest bar in characters (default 50).
	MaxWidth int

	labels []string
	values []float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title, MaxWidth: 50}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// AddGroup appends a group of bars under a heading, in sorted key order.
func (c *BarChart) AddGroup(heading string, values map[string]float64) {
	c.Add("— "+heading, -1) // sentinel rendered as a heading
	for _, k := range SortedKeys(values) {
		c.Add(k, values[k])
	}
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.MaxWidth
	if width <= 0 {
		width = 50
	}
	max := 0.0
	labelW := 0
	for i, v := range c.values {
		if v > max {
			max = v
		}
		if len(c.labels[i]) > labelW {
			labelW = len(c.labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, v := range c.values {
		if v < 0 { // heading sentinel
			fmt.Fprintf(&b, "%s\n", c.labels[i])
			continue
		}
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "  %-*s %7.3f %s\n", labelW, c.labels[i], v, strings.Repeat("#", n))
	}
	return b.String()
}

// CSV renders rows of labelled values as comma-separated text with a
// header, for spreadsheet or gnuplot consumption. Maps are emitted in
// sorted key order; every row must share the baseline header's keys.
func CSV(header string, rows map[string]map[string]float64) string {
	// Collect the union of columns.
	colSet := map[string]bool{}
	for _, row := range rows {
		for k := range row {
			colSet[k] = true
		}
	}
	cols := make([]string, 0, len(colSet))
	for k := range colSet {
		cols = append(cols, k)
	}
	sort.Strings(cols)

	var b strings.Builder
	b.WriteString(header)
	for _, c := range cols {
		b.WriteString("," + c)
	}
	b.WriteString("\n")
	rowKeys := make([]string, 0, len(rows))
	for k := range rows {
		rowKeys = append(rowKeys, k)
	}
	sort.Strings(rowKeys)
	for _, rk := range rowKeys {
		b.WriteString(rk)
		for _, c := range cols {
			if v, ok := rows[rk][c]; ok {
				fmt.Fprintf(&b, ",%.6g", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
