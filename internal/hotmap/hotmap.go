// Package hotmap provides purpose-built open-addressing hash tables for
// the simulator's per-cycle hot path, replacing Go maps keyed by
// cache.LineAddr and ring.TxnID in the protocol engine, the memory
// controllers and the supplier predictors.
//
// Design (DESIGN.md §10):
//
//   - Linear probing over a power-of-two slot array. Keys are mixed with
//     the splitmix64 finalizer, so sequential line addresses and
//     transaction IDs spread evenly.
//   - Tombstone-free deletion by backward shift: Delete re-packs the
//     cluster that follows the hole, so load factor never degrades over a
//     long run and lookups stay one short linear scan.
//   - Keys and values live in separate parallel slices (struct-of-arrays):
//     a probe touches only the key array until it hits, so misses stay in
//     one or two cache lines regardless of the value size.
//   - Zero is a valid key: slots store key+1, and 0 marks an empty slot.
//   - Reset clears in place without releasing the backing arrays, so a
//     table reused across runs reaches a steady state where it allocates
//     nothing.
//
// Tables are NOT safe for concurrent use and iteration must not mutate;
// both match the engine's single-threaded event loop. Use a Go map
// instead when keys are not integers, when the table is cold, or when
// entries must survive arbitrary concurrent access.
package hotmap

// maxKey is the one unrepresentable key (stored keys are key+1 and 0
// marks an empty slot).
const maxKey = ^uint64(0)

// minSlots keeps tiny tables a single cache line of keys.
const minSlots = 8

// Table is an open-addressed hash table from uint64 keys to values of
// type V. The zero Table is ready to use.
type Table[V any] struct {
	keys []uint64 // stored key+1; 0 = empty
	vals []V
	mask uint64
	n    int
}

// New returns a table pre-sized so sizeHint entries fit without growing.
func New[V any](sizeHint int) *Table[V] {
	t := &Table[V]{}
	if sizeHint > 0 {
		t.init(slotsFor(sizeHint))
	}
	return t
}

// slotsFor returns the power-of-two slot count that holds n entries
// within the 3/4 maximum load factor.
func slotsFor(n int) int {
	slots := minSlots
	for n*4 > slots*3 {
		slots <<= 1
	}
	return slots
}

func (t *Table[V]) init(slots int) {
	t.keys = make([]uint64, slots)
	t.vals = make([]V, slots)
	t.mask = uint64(slots - 1)
}

// mix is the splitmix64 finalizer: a cheap bijective scrambler that
// spreads the simulator's small, mostly-sequential keys across the slot
// space.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// Len reports the number of entries.
func (t *Table[V]) Len() int { return t.n }

// Get returns the value stored under k.
func (t *Table[V]) Get(k uint64) (V, bool) {
	var zero V
	if t.n == 0 {
		return zero, false
	}
	// Deriving the mask from len(keys) (a power of two) lets the
	// compiler prove i in range and drop the bounds checks on the probe
	// loop; vals is re-sliced to the same length for the same reason.
	keys := t.keys
	vals := t.vals[:len(keys)]
	mask := uint64(len(keys) - 1)
	kk := k + 1
	i := mix(k) & mask
	for {
		sk := keys[i]
		if sk == kk {
			return vals[i], true
		}
		if sk == 0 {
			return zero, false
		}
		i = (i + 1) & mask
	}
}

// Has reports whether k is present.
func (t *Table[V]) Has(k uint64) bool {
	_, ok := t.Get(k)
	return ok
}

// Put stores v under k, replacing any existing entry.
func (t *Table[V]) Put(k uint64, v V) { *t.Upsert(k) = v }

// Upsert returns a pointer to the value stored under k, inserting a
// zero value first when the key is absent. The pointer is valid only
// until the next Put/Upsert/Delete/Reset (growth and backward-shift
// deletion both move entries).
func (t *Table[V]) Upsert(k uint64) *V {
	if k == maxKey {
		panic("hotmap: key 2^64-1 is reserved")
	}
	if t.keys == nil {
		t.init(minSlots)
	}
	kk := k + 1
	keys := t.keys
	vals := t.vals[:len(keys)]
	mask := uint64(len(keys) - 1)
	i := mix(k) & mask
	for {
		sk := keys[i]
		if sk == kk {
			return &vals[i]
		}
		if sk == 0 {
			break
		}
		i = (i + 1) & mask
	}
	if (t.n+1)*4 > len(t.keys)*3 {
		t.grow()
		i = mix(k) & t.mask
		for t.keys[i] != 0 {
			i = (i + 1) & t.mask
		}
	}
	t.keys[i] = kk
	t.n++
	var zero V
	t.vals[i] = zero
	return &t.vals[i]
}

// grow doubles the slot array and reinserts every entry.
func (t *Table[V]) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(len(oldKeys) * 2)
	for i, sk := range oldKeys {
		if sk == 0 {
			continue
		}
		j := mix(sk-1) & t.mask
		for t.keys[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = sk
		t.vals[j] = oldVals[i]
	}
}

// Delete removes k, reporting whether it was present. Deletion is
// tombstone-free: the probe cluster after the hole is shifted back, so
// the table never accumulates dead slots.
func (t *Table[V]) Delete(k uint64) bool {
	if t.n == 0 {
		return false
	}
	kk := k + 1
	keys := t.keys
	vals := t.vals[:len(keys)]
	mask := uint64(len(keys) - 1)
	i := mix(k) & mask
	for {
		sk := keys[i]
		if sk == kk {
			break
		}
		if sk == 0 {
			return false
		}
		i = (i + 1) & mask
	}
	t.n--
	// Backward-shift: walk the cluster after the hole; any entry whose
	// home slot lies cyclically outside (hole, entry] can legally move
	// into the hole, re-opening the hole at its old position.
	var zero V
	j := i
	for {
		j = (j + 1) & mask
		sk := keys[j]
		if sk == 0 {
			break
		}
		home := mix(sk-1) & mask
		// home in cyclic interval (i, j] means the entry is already at
		// or after its home within the cluster remainder; it must stay.
		if ((j - home) & mask) < ((j - i) & mask) {
			continue
		}
		keys[i] = sk
		vals[i] = vals[j]
		i = j
	}
	keys[i] = 0
	vals[i] = zero
	return true
}

// ForEach visits every entry in slot order. The table must not be
// mutated during iteration. Slot order is a pure function of the
// operation history, so deterministic simulations iterate
// deterministically (unlike Go's randomized map order).
func (t *Table[V]) ForEach(fn func(k uint64, v V)) {
	if t.n == 0 {
		return
	}
	for i, sk := range t.keys {
		if sk != 0 {
			fn(sk-1, t.vals[i])
		}
	}
}

// Reset clears the table in place, keeping the backing arrays, so a
// pooled table's steady state allocates nothing.
func (t *Table[V]) Reset() {
	if t.n == 0 {
		return
	}
	clear(t.keys)
	clear(t.vals) // release pointers for the GC
	t.n = 0
}
