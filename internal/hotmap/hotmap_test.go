package hotmap

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	tb := New[int](0)
	if tb.Len() != 0 {
		t.Fatalf("new table Len = %d", tb.Len())
	}
	if _, ok := tb.Get(0); ok {
		t.Fatal("Get on empty table reported a hit")
	}
	tb.Put(0, 10) // zero is a valid key
	tb.Put(7, 70)
	tb.Put(7, 71) // replace
	if v, ok := tb.Get(0); !ok || v != 10 {
		t.Fatalf("Get(0) = %d, %v", v, ok)
	}
	if v, ok := tb.Get(7); !ok || v != 71 {
		t.Fatalf("Get(7) = %d, %v", v, ok)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if !tb.Delete(0) || tb.Delete(0) {
		t.Fatal("Delete(0) did not report present-then-absent")
	}
	if tb.Has(0) || !tb.Has(7) {
		t.Fatal("membership wrong after delete")
	}
	tb.Reset()
	if tb.Len() != 0 || tb.Has(7) {
		t.Fatal("Reset did not clear the table")
	}
}

func TestUpsertPointer(t *testing.T) {
	tb := New[int32](0)
	p := tb.Upsert(42)
	if *p != 0 {
		t.Fatalf("fresh Upsert value = %d, want 0", *p)
	}
	*p = 5
	*tb.Upsert(42)++
	if v, _ := tb.Get(42); v != 6 {
		t.Fatalf("Get after Upsert increments = %d, want 6", v)
	}
}

func TestReservedKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Upsert(2^64-1) did not panic")
		}
	}()
	New[int](0).Put(^uint64(0), 1)
}

// TestGrowthKeepsEntries drives the table through several doublings.
func TestGrowthKeepsEntries(t *testing.T) {
	tb := New[uint64](0)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		tb.Put(i, i*3)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tb.Get(i); !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
}

// TestForEachDeterministic checks that two tables built by the same
// operation history iterate in the same order — the property the
// simulator's determinism contract relies on.
func TestForEachDeterministic(t *testing.T) {
	build := func() []uint64 {
		tb := New[int](4)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(500))
			switch rng.Intn(3) {
			case 0, 1:
				tb.Put(k, i)
			case 2:
				tb.Delete(k)
			}
		}
		var order []uint64
		tb.ForEach(func(k uint64, _ int) { order = append(order, k) })
		return order
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("iteration lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// checkAgainstMap replays one operation sequence against both the table
// and a plain Go map and fails on any observable divergence.
func checkAgainstMap(t *testing.T, keys []uint64, ops []byte) {
	t.Helper()
	tb := New[uint64](0)
	ref := map[uint64]uint64{}
	for i, op := range ops {
		k := keys[i%len(keys)]
		v := uint64(i)
		switch op % 4 {
		case 0, 1:
			tb.Put(k, v)
			ref[k] = v
		case 2:
			got := tb.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%#x) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		case 3:
			gv, gok := tb.Get(k)
			wv, wok := ref[k]
			if gok != wok || gv != wv {
				t.Fatalf("op %d: Get(%#x) = %d,%v want %d,%v", i, k, gv, gok, wv, wok)
			}
		}
		if tb.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", i, tb.Len(), len(ref))
		}
	}
	// Full sweep: every entry present exactly once, nothing extra.
	seen := map[uint64]uint64{}
	tb.ForEach(func(k, v uint64) {
		if _, dup := seen[k]; dup {
			t.Fatalf("ForEach visited %#x twice", k)
		}
		seen[k] = v
	})
	if len(seen) != len(ref) {
		t.Fatalf("ForEach count %d, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if sv, ok := seen[k]; !ok || sv != v {
			t.Fatalf("ForEach missing or wrong for %#x: %d,%v want %d", k, sv, ok, v)
		}
	}
}

// collisionKeys builds key sets engineered to pile into the same probe
// clusters: sequential runs, keys differing only above bit 32, and keys
// equal modulo a small power of two.
func collisionKeys(rng *rand.Rand) []uint64 {
	var keys []uint64
	base := rng.Uint64() >> 1
	for i := uint64(0); i < 32; i++ {
		keys = append(keys, base+i)       // sequential
		keys = append(keys, base|(i<<32)) // high-bits-only variation
		keys = append(keys, base+(i<<4))  // stride 16: same low bits mod 16
		keys = append(keys, i)            // tiny keys incl. zero
	}
	return keys
}

func TestAgainstMapCollisionHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		keys := collisionKeys(rng)
		ops := make([]byte, 4000)
		rng.Read(ops)
		checkAgainstMap(t, keys, ops)
	}
}

// FuzzAgainstMap feeds arbitrary op streams through checkAgainstMap. The
// first 8 bytes pick the key-set seed, the rest drive insert/delete/get.
func FuzzAgainstMap(f *testing.F) {
	f.Add([]byte("seed0000insert-delete-iterate"))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 2, 3, 0, 1, 2, 3, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			return
		}
		var seed int64
		for _, b := range data[:8] {
			seed = seed<<8 | int64(b)
		}
		keys := collisionKeys(rand.New(rand.NewSource(seed)))
		checkAgainstMap(t, keys, data[8:])
	})
}

func BenchmarkPutGetDelete(b *testing.B) {
	tb := New[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i) & 1023
		tb.Put(k, uint64(i))
		tb.Get(k ^ 511)
		if i&7 == 7 {
			tb.Delete(k)
		}
	}
}
