package machine

import (
	"reflect"
	"testing"

	"flexsnoop/internal/config"
)

// These tests pin the ShardRings contract: arbitrating the per-ring
// transmit batches on worker goroutines must leave every observable
// result — cycles, stats, energy, governor behaviour — bit-identical to
// the serial engine. ci.sh re-runs them under -race to catch data races
// between shard workers.

// runPair runs the same experiment serially and sharded.
func runPair(t *testing.T, exp Experiment) (serial, sharded Result) {
	t.Helper()
	exp.ShardRings = false
	serial, err := Run(exp)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	exp.ShardRings = true
	sharded, err = Run(exp)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	return serial, sharded
}

func TestShardRingsCycleIdentical(t *testing.T) {
	algs := []config.Algorithm{config.Lazy, config.Eager, config.SupersetAgg}
	apps := []string{"fft", "specjbb"}
	if testing.Short() {
		algs = algs[:2]
		apps = apps[:1]
	}
	for _, alg := range algs {
		for _, app := range apps {
			alg, app := alg, app
			t.Run(alg.String()+"/"+app, func(t *testing.T) {
				exp := smallExp(t, alg, app, 300)
				serial, sharded := runPair(t, exp)
				if !reflect.DeepEqual(serial, sharded) {
					t.Errorf("sharded result diverges from serial:\nserial:  %+v\nsharded: %+v", serial, sharded)
				}
			})
		}
	}
}

// TestShardRingsFourRings exercises more shard workers than the default
// two-ring machine provides.
func TestShardRingsFourRings(t *testing.T) {
	exp := smallExp(t, config.SupersetAgg, "barnes", 300)
	exp.Machine.NumRings = 4
	serial, sharded := runPair(t, exp)
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("4-ring sharded result diverges from serial:\nserial:  %+v\nsharded: %+v", serial, sharded)
	}
}

// TestShardRingsGovernor checks the dynamic adaptive system (which polls
// PendingTransmits in its stop condition) under sharding.
func TestShardRingsGovernor(t *testing.T) {
	if testing.Short() {
		t.Skip("governor pair run is slow")
	}
	exp := smallExp(t, config.DynamicSuperset, "fft", 400)
	exp.Governor = DefaultGovernor(2.0)
	serial, sharded := runPair(t, exp)
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("governor sharded result diverges from serial:\nserial:  %+v\nsharded: %+v", serial, sharded)
	}
	if serial.GovernorAggFrac == 0 && serial.Stats.ReadRequests > 0 {
		t.Log("governor never ran aggressive — still a valid determinism check")
	}
}

// TestShardRingsSingleRing checks the degenerate case: with one ring the
// engine must not spin up a pool, and results still match.
func TestShardRingsSingleRing(t *testing.T) {
	exp := smallExp(t, config.Eager, "fft", 200)
	exp.Machine.NumRings = 1
	serial, sharded := runPair(t, exp)
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("1-ring sharded result diverges from serial:\nserial:  %+v\nsharded: %+v", serial, sharded)
	}
}
