// Package machine assembles the full simulated multiprocessor — kernel,
// coherence engine, timing cores and workload sources — and runs complete
// experiments, producing the per-run metrics behind every figure of the
// evaluation.
package machine

import (
	"context"
	"fmt"

	"flexsnoop/internal/checker"
	"flexsnoop/internal/config"
	"flexsnoop/internal/core"
	"flexsnoop/internal/cpu"
	"flexsnoop/internal/energy"
	"flexsnoop/internal/fault"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
	"flexsnoop/internal/telemetry"
	"flexsnoop/internal/workload"
)

// GovernorConfig tunes the dynamic SupersetAgg/SupersetCon switcher — the
// adaptive system the paper envisions in Section 6.1.5.
type GovernorConfig struct {
	// BudgetNJPerKCycle is the snoop-energy budget; above it the system
	// switches to the SupersetCon action, below it back to SupersetAgg.
	BudgetNJPerKCycle float64
	// IntervalCycles is how often the governor re-evaluates.
	IntervalCycles sim.Time
}

// DefaultGovernor returns a governor that re-evaluates every 20k cycles.
func DefaultGovernor(budgetNJPerKCycle float64) *GovernorConfig {
	return &GovernorConfig{BudgetNJPerKCycle: budgetNJPerKCycle, IntervalCycles: 20000}
}

// Experiment describes one simulation run.
type Experiment struct {
	Machine   config.MachineConfig
	Algorithm config.Algorithm
	// AlgorithmPerNode, when non-empty, gives each CMP node its own
	// snooping policy (the paper notes a message may be split and
	// recombined multiple times when nodes choose different primitives).
	// Length must equal Machine.NumCMPs; Algorithm then only labels the
	// result.
	AlgorithmPerNode []config.Algorithm
	Predictor        config.PredictorConfig
	Energy           energy.Params
	Workload         workload.Profile

	// OpsPerCore bounds each core's reference stream (generator mode).
	OpsPerCore uint64
	Seed       int64

	// Traces, when non-nil, replaces the generators: stream i drives
	// global core i (trace-driven mode, as the paper's SPEC runs).
	Traces [][]workload.Op

	// CheckInvariants arms the coherence checker (every 64 completions).
	CheckInvariants bool

	// Governor enables the dynamic adaptive system; only meaningful with
	// Algorithm == config.DynamicSuperset.
	Governor *GovernorConfig

	// MaxCycles aborts runaway simulations.
	MaxCycles sim.Time

	// WarmupCycles discards all statistics and energy accumulated before
	// this cycle: the reported Result covers only the steady-state
	// measurement window (caches and predictors stay warm).
	WarmupCycles sim.Time

	// Telemetry, when enabled, records transaction traces and interval
	// metrics for the run. Telemetry never perturbs simulated timing:
	// results are identical with it on or off.
	Telemetry *telemetry.Config

	// Context, when non-nil, allows cancelling the run between simulated
	// events. A nil or never-cancellable context (Background) costs
	// nothing: the kernel's interrupt hook is installed only when the
	// context can actually be cancelled, and an installed-but-quiet hook
	// leaves the simulation cycle-identical.
	Context context.Context

	// ShardRings arbitrates the per-ring transmit batches on worker
	// goroutines each cycle (see protocol.Options.ShardRings). Results
	// are cycle-identical with it on or off.
	ShardRings bool

	// Faults, when it carries rules, injects deterministic link faults
	// and arms the engine's timeout/retransmit recovery plus the
	// no-progress watchdog (see protocol.Options.Faults). Nil leaves the
	// run cycle-identical to a fault-free build.
	Faults *fault.Plan

	// CheckEveryCycles runs the full coherence invariant checker every N
	// cycles during the run, failing at the violating cycle instead of at
	// end of run. Zero disables the continuous mode.
	CheckEveryCycles sim.Time

	// WatchdogWindow overrides the no-forward-progress window (cycles).
	// Zero picks a default sized from the engine's response deadline. The
	// watchdog arms whenever faults are enabled or a window is set.
	WatchdogWindow sim.Time

	// WatchdogDegrade makes the watchdog degrade gracefully — force
	// Eager forwarding on stalled lines — before failing fast.
	WatchdogDegrade bool
}

// New returns an experiment with Table 4 defaults for an algorithm and
// workload: the Section 6.1 predictor, the paper's per-class core count,
// and the published energy constants.
func New(alg config.Algorithm, prof workload.Profile) Experiment {
	m := config.DefaultMachine()
	m.CoresPerCMP = prof.Class.CoresPerCMP()
	return Experiment{
		Machine:    m,
		Algorithm:  alg,
		Predictor:  config.DefaultPredictorFor(alg),
		Energy:     energy.DefaultParams(),
		Workload:   prof,
		OpsPerCore: 3000,
		Seed:       1,
		MaxCycles:  2_000_000_000,
	}
}

// Result is the outcome of one run.
type Result struct {
	Algorithm config.Algorithm
	Workload  string
	Predictor string

	// Cycles is the execution time: the cycle the last core retired.
	Cycles       sim.Time
	Instructions uint64
	IPC          float64

	Stats protocol.Stats

	// EnergyNJ is the snoop-servicing energy of Section 6.1.4.
	EnergyNJ        float64
	EnergyBreakdown map[energy.Category]float64

	// GovernorAggFrac is the fraction of predictor decisions taken in
	// aggressive mode (dynamic runs only).
	GovernorAggFrac float64

	// WarmupCycles echoes the experiment's measurement-window start.
	WarmupCycles sim.Time
}

// Run executes the experiment.
func Run(exp Experiment) (Result, error) {
	if err := exp.Workload.Validate(); err != nil {
		return Result{}, err
	}
	if exp.OpsPerCore == 0 && exp.Traces == nil {
		return Result{}, fmt.Errorf("machine: experiment has no work")
	}

	if len(exp.AlgorithmPerNode) != 0 && len(exp.AlgorithmPerNode) != exp.Machine.NumCMPs {
		return Result{}, fmt.Errorf("machine: %d per-node algorithms for %d CMPs",
			len(exp.AlgorithmPerNode), exp.Machine.NumCMPs)
	}
	kern := sim.NewKernel()
	dynamics := make([]*core.DynamicSuperset, 0)
	policies := make([]core.Policy, exp.Machine.NumCMPs)
	for i := range policies {
		alg := exp.Algorithm
		if len(exp.AlgorithmPerNode) > 0 {
			alg = exp.AlgorithmPerNode[i]
		}
		p := core.NewPolicy(alg)
		if d, ok := p.(*core.DynamicSuperset); ok {
			dynamics = append(dynamics, d)
		}
		policies[i] = p
	}

	eng, err := protocol.NewEngine(kern, protocol.Options{
		Machine:    exp.Machine,
		Predictor:  exp.Predictor,
		PolicyFor:  func(i int) core.Policy { return policies[i] },
		Energy:     exp.Energy,
		ShardRings: exp.ShardRings,
		Faults:     exp.Faults,
	})
	if err != nil {
		return Result{}, err
	}
	defer eng.Close()
	if exp.CheckInvariants {
		eng.SetInvariantChecker(64, func() error { return checker.Check(eng) })
	}

	var col *telemetry.Collector
	if exp.Telemetry.Enabled() {
		col = telemetry.New(*exp.Telemetry)
		eng.SetTelemetry(col)
		col.InstallKernelProbe(kern, func() telemetry.Sample {
			s := eng.TelemetrySample()
			s.EventsExecuted = kern.Executed
			s.QueueDepth = kern.Pending()
			return s
		})
	}

	// The robustness layer chains onto the engine's EndCycle hook; both
	// pieces only inspect, so arming them moves no events.
	if exp.CheckEveryCycles > 0 {
		installContinuousChecker(kern, eng, exp.CheckEveryCycles)
	}
	if eng.FaultsEnabled() || exp.WatchdogWindow > 0 {
		installWatchdog(kern, eng, col, exp.WatchdogWindow, exp.WatchdogDegrade)
	}

	totalCores := exp.Machine.TotalCores()
	cores := make([]*cpu.Core, 0, totalCores)
	remaining := totalCores
	for n := 0; n < exp.Machine.NumCMPs; n++ {
		for c := 0; c < exp.Machine.CoresPerCMP; c++ {
			g := n*exp.Machine.CoresPerCMP + c
			var src workload.Source
			if exp.Traces != nil {
				var ops []workload.Op
				if g < len(exp.Traces) {
					ops = exp.Traces[g]
				}
				src = workload.NewSliceSource(ops)
			} else {
				src = workload.NewGenerator(exp.Workload, g, exp.OpsPerCore, exp.Seed)
			}
			cr := cpu.NewMLP(kern, eng, n, c, exp.Machine.WriteBufferEntries, exp.Machine.MaxOutstandingLoads, src, func() {
				remaining--
				if remaining == 0 {
					// Let in-flight protocol events drain naturally.
				}
			})
			cores = append(cores, cr)
		}
	}
	for _, c := range cores {
		c.Start()
	}

	if exp.Governor != nil && len(dynamics) > 0 {
		startGovernor(kern, eng, dynamics, *exp.Governor)
	}

	var warmStats protocol.Stats
	var warmNJ float64
	var warmBreakdown map[energy.Category]float64
	if exp.WarmupCycles > 0 {
		kern.Schedule(exp.WarmupCycles, func() {
			warmStats = eng.Stats()
			warmNJ = eng.Meter().TotalNJ()
			warmBreakdown = eng.Meter().Breakdown()
		})
	}

	max := exp.MaxCycles
	if max == 0 {
		max = 2_000_000_000
	}
	if ctx := exp.Context; ctx != nil && ctx.Done() != nil {
		kern.Interrupt = ctx.Err
	}
	kern.Run(max)
	if cerr := kern.Err(); cerr != nil {
		// Cancelled mid-run: flush whatever telemetry exists, then report
		// the context's error (matchable with errors.Is).
		col.Close(kern.Now())
		return Result{}, fmt.Errorf("machine: run cancelled: %w", cerr)
	}
	if ferr := eng.Failure(); ferr != nil {
		// Watchdog verdict, continuous-check violation or retransmit
		// exhaustion: flush telemetry (it carries the dump) and fail.
		col.Close(kern.Now())
		return Result{}, ferr
	}
	if err := col.Close(kern.Now()); err != nil {
		return Result{}, fmt.Errorf("machine: %w", err)
	}
	if remaining != 0 {
		return Result{}, fmt.Errorf("machine: %d cores unfinished at cycle limit %d", remaining, max)
	}
	if eng.FaultsEnabled() {
		// Timeout-retired transactions leave orphaned per-node message
		// bookkeeping behind; with the queue drained nothing references
		// it, so reclaim before the drain check.
		eng.ScavengeOrphanStates()
	}
	if err := checker.CheckDrained(eng); err != nil {
		return Result{}, fmt.Errorf("machine: post-run check: %w", err)
	}

	res := Result{
		Algorithm:       exp.Algorithm,
		Workload:        exp.Workload.Name,
		Predictor:       exp.Predictor.Name,
		Stats:           eng.Stats(),
		EnergyNJ:        eng.Meter().TotalNJ(),
		EnergyBreakdown: eng.Meter().Breakdown(),
		WarmupCycles:    exp.WarmupCycles,
	}
	for _, c := range cores {
		if c.FinishedAt > res.Cycles {
			res.Cycles = c.FinishedAt
		}
		res.Instructions += c.Instructions
	}
	if exp.WarmupCycles > 0 {
		if res.Cycles <= exp.WarmupCycles {
			return Result{}, fmt.Errorf("machine: run finished at cycle %d, inside the %d-cycle warmup",
				res.Cycles, exp.WarmupCycles)
		}
		res.Stats = res.Stats.Sub(warmStats)
		res.EnergyNJ -= warmNJ
		for c, v := range warmBreakdown {
			res.EnergyBreakdown[c] -= v
		}
		res.Cycles -= exp.WarmupCycles
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	var agg, con uint64
	for _, d := range dynamics {
		agg += d.AggDecisions
		con += d.ConDecisions
	}
	if agg+con > 0 {
		res.GovernorAggFrac = float64(agg) / float64(agg+con)
	}
	return res, nil
}

// startGovernor installs the periodic energy-budget mode switcher. The
// governor's ticker stops once the event queue would otherwise drain — it
// reschedules only while protocol or core work remains pending.
func startGovernor(kern *sim.Kernel, eng *protocol.Engine, ds []*core.DynamicSuperset, g GovernorConfig) {
	lastNJ := 0.0
	lastCycle := sim.Time(0)
	var tick func()
	tick = func() {
		// Stop ticking once the machine has gone idle (the governor
		// must not keep the simulation alive forever). Buffered transmit
		// intents count as pending work: they become kernel events when
		// the cycle's flush runs.
		if kern.Pending() == 0 && eng.PendingTransmits() == 0 {
			return
		}
		nowNJ := eng.Meter().TotalNJ()
		now := kern.Now()
		if now > lastCycle {
			rate := (nowNJ - lastNJ) / float64(now-lastCycle) * 1000
			aggressive := rate <= g.BudgetNJPerKCycle
			for _, d := range ds {
				d.SetAggressive(aggressive)
			}
		}
		lastNJ, lastCycle = nowNJ, now
		kern.After(g.IntervalCycles, tick)
	}
	kern.After(g.IntervalCycles, tick)
}
