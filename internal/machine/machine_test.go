package machine

import (
	"testing"

	"flexsnoop/internal/config"
	"flexsnoop/internal/energy"
	"flexsnoop/internal/trace"
	"flexsnoop/internal/workload"
)

// smallExp returns a quick experiment used across tests.
func smallExp(t *testing.T, alg config.Algorithm, profName string, ops uint64) Experiment {
	t.Helper()
	prof, err := workload.ByName(profName)
	if err != nil {
		t.Fatal(err)
	}
	exp := New(alg, prof)
	exp.OpsPerCore = ops
	exp.CheckInvariants = true
	return exp
}

func TestRunAllAlgorithmsOnSPLASH(t *testing.T) {
	for _, alg := range config.Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			res, err := Run(smallExp(t, alg, "fft", 400))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Cycles == 0 || res.Instructions == 0 {
				t.Fatalf("empty result: %+v", res)
			}
			if res.Stats.ReadRequests == 0 {
				t.Error("no ring read requests issued — workload too private?")
			}
			if res.EnergyNJ <= 0 {
				t.Error("no energy accumulated")
			}
			// All 32 cores retired their streams.
			wantInstr := res.Instructions > 32*400 // compute + refs
			if !wantInstr {
				t.Errorf("instructions = %d, want > 12800", res.Instructions)
			}
		})
	}
}

func TestSPECUsesOneCorePerCMP(t *testing.T) {
	exp := smallExp(t, config.Lazy, "specjbb", 300)
	if exp.Machine.CoresPerCMP != 1 {
		t.Fatalf("SPEC experiment built with %d cores/CMP, want 1 (Section 5.1)", exp.Machine.CoresPerCMP)
	}
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestEagerFasterButHungrierThanLazy(t *testing.T) {
	lazy, err := Run(smallExp(t, config.Lazy, "barnes", 800))
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Run(smallExp(t, config.Eager, "barnes", 800))
	if err != nil {
		t.Fatal(err)
	}
	// Eager snoops more (approaches N-1) and uses more ring segments.
	if eager.Stats.SnoopsPerReadRequest() <= lazy.Stats.SnoopsPerReadRequest() {
		t.Errorf("Eager snoops/request %.2f <= Lazy %.2f",
			eager.Stats.SnoopsPerReadRequest(), lazy.Stats.SnoopsPerReadRequest())
	}
	if eager.Stats.ReadSegmentsPerRequest() <= lazy.Stats.ReadSegmentsPerRequest() {
		t.Errorf("Eager segments/request %.2f <= Lazy %.2f",
			eager.Stats.ReadSegmentsPerRequest(), lazy.Stats.ReadSegmentsPerRequest())
	}
	// Eager is faster (Figure 8) and consumes more energy (Figure 9).
	if eager.Cycles >= lazy.Cycles {
		t.Errorf("Eager cycles %d >= Lazy cycles %d", eager.Cycles, lazy.Cycles)
	}
	if eager.EnergyNJ <= lazy.EnergyNJ {
		t.Errorf("Eager energy %.0f <= Lazy energy %.0f", eager.EnergyNJ, lazy.EnergyNJ)
	}
}

func TestOracleIsLowerBound(t *testing.T) {
	oracle, err := Run(smallExp(t, config.Oracle, "lu", 600))
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Run(smallExp(t, config.Lazy, "lu", 600))
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Cycles >= lazy.Cycles {
		t.Errorf("Oracle cycles %d >= Lazy %d", oracle.Cycles, lazy.Cycles)
	}
	// Oracle snoops at most one node per request.
	if s := oracle.Stats.SnoopsPerReadRequest(); s > 1.01 {
		t.Errorf("Oracle snoops/request = %.3f, want <= 1", s)
	}
}

func TestSupersetConservativeVsAggressive(t *testing.T) {
	con, err := Run(smallExp(t, config.SupersetCon, "radiosity", 600))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Run(smallExp(t, config.SupersetAgg, "radiosity", 600))
	if err != nil {
		t.Fatal(err)
	}
	// Con uses one combined message; Agg splits after positives.
	if con.Stats.ReadSegmentsPerRequest() > agg.Stats.ReadSegmentsPerRequest() {
		t.Errorf("Con segments %.2f > Agg %.2f",
			con.Stats.ReadSegmentsPerRequest(), agg.Stats.ReadSegmentsPerRequest())
	}
	// Con consumes no more energy than Agg (Section 6.1.5).
	if con.EnergyNJ > agg.EnergyNJ {
		t.Errorf("Con energy %.0f > Agg energy %.0f", con.EnergyNJ, agg.EnergyNJ)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(smallExp(t, config.SupersetAgg, "water-ns", 400))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallExp(t, config.SupersetAgg, "water-ns", 400))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.EnergyNJ != b.EnergyNJ || a.Stats != b.Stats {
		t.Error("identical experiments produced different results")
	}
}

func TestSeedChangesResults(t *testing.T) {
	e1 := smallExp(t, config.Lazy, "ocean", 400)
	e2 := smallExp(t, config.Lazy, "ocean", 400)
	e2.Seed = 99
	a, err := Run(e1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(e2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles && a.Stats.ReadRequests == b.Stats.ReadRequests {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestTraceDrivenMatchesGenerator(t *testing.T) {
	prof, _ := workload.ByName("specweb")
	gen := smallExp(t, config.SupersetCon, "specweb", 400)
	fromGen, err := Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	// Record the same streams and replay them trace-driven.
	cores := gen.Machine.TotalCores()
	traces := make([][]workload.Op, cores)
	for g := 0; g < cores; g++ {
		traces[g] = trace.Record(workload.NewGenerator(prof, g, 400, gen.Seed))
	}
	tr := gen
	tr.Traces = traces
	fromTrace, err := Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if fromGen.Cycles != fromTrace.Cycles || fromGen.Stats.ReadRequests != fromTrace.Stats.ReadRequests {
		t.Errorf("trace-driven run diverged: %d vs %d cycles", fromGen.Cycles, fromTrace.Cycles)
	}
}

func TestDynamicGovernorSwitchesModes(t *testing.T) {
	prof, _ := workload.ByName("barnes")
	exp := New(config.DynamicSuperset, prof)
	exp.OpsPerCore = 800
	exp.CheckInvariants = true
	// A budget low enough that aggressive mode overshoots it.
	exp.Governor = DefaultGovernor(0.5)
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if res.GovernorAggFrac >= 1 {
		t.Errorf("governor never left aggressive mode (agg frac %.2f)", res.GovernorAggFrac)
	}
	// A huge budget keeps it aggressive.
	exp.Governor = DefaultGovernor(1e12)
	res2, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if res2.GovernorAggFrac != 1 {
		t.Errorf("unbounded budget should stay aggressive, got agg frac %.2f", res2.GovernorAggFrac)
	}
}

func TestPrefetchAblation(t *testing.T) {
	on := smallExp(t, config.SupersetAgg, "specjbb", 500)
	off := smallExp(t, config.SupersetAgg, "specjbb", 500)
	off.Machine.PrefetchOnSnoop = false
	ron, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if ron.Stats.PrefetchHits == 0 {
		t.Error("prefetch-on run recorded no prefetch hits on a memory-bound workload")
	}
	if roff.Stats.PrefetchHits != 0 {
		t.Error("prefetch-off run recorded prefetch hits")
	}
	// Prefetch should speed up the memory-bound workload.
	if ron.Cycles >= roff.Cycles {
		t.Errorf("prefetch on (%d cycles) not faster than off (%d)", ron.Cycles, roff.Cycles)
	}
}

func TestExactSeesDowngradesOnSharingWorkload(t *testing.T) {
	exp := smallExp(t, config.Exact, "fft", 800)
	// Shrink the predictor to force conflict evictions.
	exp.Predictor = config.Exa512()
	res, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Downgrades == 0 {
		t.Error("Exact with a small predictor performed no downgrades")
	}
}

func TestRejectsEmptyExperiment(t *testing.T) {
	prof, _ := workload.ByName("fft")
	exp := New(config.Lazy, prof)
	exp.OpsPerCore = 0
	if _, err := Run(exp); err == nil {
		t.Error("empty experiment accepted")
	}
}

func TestRejectsInvalidWorkload(t *testing.T) {
	exp := New(config.Lazy, workload.Profile{Name: "bad"})
	exp.OpsPerCore = 10
	if _, err := Run(exp); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestEnergyBreakdownConsistent(t *testing.T) {
	res, err := Run(smallExp(t, config.SupersetCon, "cholesky", 400))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.EnergyBreakdown {
		sum += v
	}
	if diff := sum - res.EnergyNJ; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("breakdown sum %.3f != total %.3f", sum, res.EnergyNJ)
	}
	if res.EnergyBreakdown[energy.RingLink] == 0 {
		t.Error("no ring-link energy recorded")
	}
	if res.EnergyBreakdown[energy.Predictor] == 0 {
		t.Error("no predictor energy recorded for a superset algorithm")
	}
}

func TestLocalMasterAblation(t *testing.T) {
	with := smallExp(t, config.SupersetAgg, "barnes", 600)
	without := smallExp(t, config.SupersetAgg, "barnes", 600)
	without.Machine.DisableLocalMaster = true
	rw, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	rwo, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	// Without S_L, CMP-local supply of ring-fetched lines disappears, so
	// more reads go to the ring.
	if rwo.Stats.LocalSupplies >= rw.Stats.LocalSupplies {
		t.Errorf("local supplies without SL (%d) >= with SL (%d)",
			rwo.Stats.LocalSupplies, rw.Stats.LocalSupplies)
	}
	if rwo.Stats.ReadRequests <= rw.Stats.ReadRequests {
		t.Errorf("ring reads without SL (%d) <= with SL (%d)",
			rwo.Stats.ReadRequests, rw.Stats.ReadRequests)
	}
}

func TestWarmupWindow(t *testing.T) {
	full := smallExp(t, config.Lazy, "barnes", 800)
	warm := smallExp(t, config.Lazy, "barnes", 800)
	warm.WarmupCycles = 50_000
	rf, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	// The measurement window excludes warmup work.
	if rw.Cycles != rf.Cycles-50_000 {
		t.Errorf("warmup cycles = %d, want %d", rw.Cycles, rf.Cycles-50_000)
	}
	if rw.Stats.ReadRequests >= rf.Stats.ReadRequests {
		t.Errorf("warmed ReadRequests %d >= full %d", rw.Stats.ReadRequests, rf.Stats.ReadRequests)
	}
	if rw.EnergyNJ >= rf.EnergyNJ {
		t.Errorf("warmed energy %.0f >= full %.0f", rw.EnergyNJ, rf.EnergyNJ)
	}
	// Cold misses concentrate in warmup: the steady-state memory-supply
	// share drops.
	coldShare := float64(rf.Stats.MemorySupplies) / float64(rf.Stats.ReadRequests)
	warmShare := float64(rw.Stats.MemorySupplies) / float64(rw.Stats.ReadRequests)
	if warmShare >= coldShare {
		t.Errorf("steady-state memory share %.3f >= full-run share %.3f", warmShare, coldShare)
	}
}

func TestWarmupLongerThanRunRejected(t *testing.T) {
	exp := smallExp(t, config.Lazy, "fft", 50)
	exp.WarmupCycles = 1 << 40
	if _, err := Run(exp); err == nil {
		t.Error("warmup longer than the run accepted")
	}
}

func TestReadMissHistogramPopulated(t *testing.T) {
	res, err := Run(smallExp(t, config.Lazy, "barnes", 500))
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range res.Stats.ReadMissHist {
		total += n
	}
	if total != res.Stats.ReadMissCount {
		t.Errorf("histogram total %d != miss count %d", total, res.Stats.ReadMissCount)
	}
	if total == 0 {
		t.Error("no read misses recorded")
	}
}
