package machine

import (
	"fmt"
	"strings"

	"flexsnoop/internal/checker"
	"flexsnoop/internal/protocol"
	"flexsnoop/internal/sim"
	"flexsnoop/internal/telemetry"
)

// This file holds the run-robustness layer wired in by Run: the
// no-forward-progress watchdog and the continuous invariant checker.
// Both piggyback on the kernel's EndCycle hook — they fire after every
// executed cycle's events have drained and schedule no events of their
// own, so an armed-but-quiet watchdog or checker leaves the simulation
// cycle-identical (only inspection happens).

// watchdogDegradeAttempts bounds graceful-degradation rounds before the
// watchdog fails fast anyway: if forcing Eager forwarding twice did not
// restore progress, the stall is not a filtering pathology.
const watchdogDegradeAttempts = 2

// watchdogWindowDeadlines sizes the default watchdog window in units of
// the engine's first-attempt response deadline: generous enough that
// bounded-backoff retransmit storms resolve before the watchdog rules.
const watchdogWindowDeadlines = 32

// watchdogDumpLines caps the transaction-graph dump attached to a
// watchdog failure.
const watchdogDumpLines = 24

// watchdog detects windows with outstanding work but no completions and
// classifies them: advancing squash/retry/timeout churn means livelock
// (transactions cycle without winning); frozen churn means starvation
// (something is stuck and not even retrying).
type watchdog struct {
	eng    *protocol.Engine
	col    *telemetry.Collector
	window sim.Time
	// degrade selects graceful degradation (force Eager forwarding on
	// live lines) before failing fast.
	degrade      bool
	degradeLeft  int
	next         sim.Time
	lastComplete uint64
	lastChurn    uint64
}

// installWatchdog chains the watchdog onto the kernel's EndCycle hook,
// after the engine's transmit flush.
func installWatchdog(kern *sim.Kernel, eng *protocol.Engine, col *telemetry.Collector, window sim.Time, degrade bool) {
	if window <= 0 {
		window = watchdogWindowDeadlines * eng.TimeoutDeadline()
	}
	w := &watchdog{
		eng: eng, col: col, window: window,
		degrade: degrade, degradeLeft: watchdogDegradeAttempts,
		next: window,
	}
	prev := kern.EndCycle
	kern.EndCycle = func(now sim.Time) {
		if prev != nil {
			prev(now)
		}
		w.tick(now)
	}
}

// tick evaluates one watchdog window. EndCycle can fire repeatedly for
// the same cycle (same-cycle event additions re-run the hook), so the
// window guard comes first.
func (w *watchdog) tick(now sim.Time) {
	if now < w.next {
		return
	}
	w.next = now + w.window
	complete, churn := w.eng.Completions(), w.eng.RetryChurn()
	progressed := complete != w.lastComplete
	churned := churn != w.lastChurn
	w.lastComplete, w.lastChurn = complete, churn
	if progressed {
		w.degradeLeft = watchdogDegradeAttempts
		return
	}
	outstanding, queued := w.eng.OutstandingTxns(), w.eng.QueuedTxns()
	if outstanding == 0 && queued == 0 && !churned {
		// Truly idle. Churn without outstanding work is NOT idle: a
		// livelocked machine can have every transaction parked in a
		// retry-backoff timer at the instant the window closes.
		return
	}
	verdict := "starvation"
	if churned {
		verdict = "livelock"
	}
	if w.degrade && w.degradeLeft > 0 {
		w.degradeLeft--
		n := w.eng.DegradeLiveLines()
		w.col.WatchdogEvent(now, "watchdog-degrade",
			fmt.Sprintf("%s suspected at cycle %d: forced %d lines to Eager forwarding", verdict, now, n))
		return
	}
	dump := w.eng.DebugTxns()
	dump = append(dump, w.eng.DebugRingStates()...)
	if len(dump) > watchdogDumpLines {
		dump = append(dump[:watchdogDumpLines], fmt.Sprintf("... %d more", len(dump)-watchdogDumpLines))
	}
	w.col.WatchdogDump(now, verdict, dump)
	w.eng.Fail(fmt.Errorf(
		"machine: watchdog: %s: no transaction completed in the %d-cycle window ending at cycle %d (outstanding=%d queued=%d churn=%d):\n  %s",
		verdict, w.window, now, outstanding, queued, churn, strings.Join(dump, "\n  ")))
}

// installContinuousChecker runs the full coherence invariant checker
// every `every` cycles, on the EndCycle hook (a clean cycle boundary:
// the cycle's events have all executed). A violation fails the run at
// the cycle it is detected, not at end of run.
func installContinuousChecker(kern *sim.Kernel, eng *protocol.Engine, every sim.Time) {
	next := every
	prev := kern.EndCycle
	kern.EndCycle = func(now sim.Time) {
		if prev != nil {
			prev(now)
		}
		if now < next {
			return
		}
		next = now + every
		if err := checker.Check(eng); err != nil {
			eng.Fail(fmt.Errorf("machine: continuous check at cycle %d: %w", now, err))
		}
	}
}
