package flexsnoop

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// fingerprintVersion prefixes every fingerprint so a future change to the
// canonical encoding invalidates old cache keys instead of colliding with
// them.
const fingerprintVersion = "fsn1"

// Fingerprint returns a canonical content hash of the options: two Options
// values produce the same fingerprint exactly when they request the same
// simulation. The encoding is field-order independent (fields are hashed
// as sorted key=value lines, so reordering struct fields or building the
// value differently cannot change the hash) and covers the full
// result-affecting configuration: workload sizing, seed, predictor
// override, per-node algorithms, the complete fault plan, the robustness
// knobs and the ShardRings flag.
//
// Two fields are deliberately excluded. Telemetry never perturbs a
// simulation (results are cycle-identical with it on or off), so runs
// differing only in observability share a fingerprint and may share a
// cached result. Tweak is an arbitrary function with no canonical
// representation: a non-nil hook is folded in as an opaque marker, so
// tweaked options never collide with untweaked ones, but two different
// hooks do collide — callers keying a cache on Fingerprint must not use
// Tweak (the job API cannot express it).
//
// Because the simulator is deterministic — reruns of one configuration
// are bit-identical — the fingerprint is a sound content address for
// completed results.
func (o Options) Fingerprint() string {
	h := sha256.New()
	for _, line := range o.canonicalLines() {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return fingerprintVersion + ":" + hex.EncodeToString(h.Sum(nil))
}

// canonicalLines renders every hashed field as a "key=value" line, sorted
// by key. Zero-valued fields are rendered too: omitting them would make
// "explicitly default" and "unset" hash differently from a future version
// that changes a default.
func (o Options) canonicalLines() []string {
	lines := []string{
		"ops_per_core=" + strconv.FormatUint(o.OpsPerCore, 10),
		"seed=" + strconv.FormatInt(o.Seed, 10),
		"check_invariants=" + strconv.FormatBool(o.CheckInvariants),
		"disable_prefetch=" + strconv.FormatBool(o.DisablePrefetch),
		"num_rings=" + strconv.Itoa(o.NumRings),
		"governor_budget=" + canonFloat(o.GovernorBudgetNJPerKCycle),
		"warmup_cycles=" + strconv.FormatUint(o.WarmupCycles, 10),
		"check_every=" + strconv.FormatUint(o.CheckEvery, 10),
		"watchdog_window=" + strconv.FormatUint(o.WatchdogWindow, 10),
		"watchdog_degrade=" + strconv.FormatBool(o.WatchdogDegrade),
		"shard_rings=" + strconv.FormatBool(o.ShardRings),
		"tweak=" + strconv.FormatBool(o.Tweak != nil),
	}
	if o.Predictor == nil {
		lines = append(lines, "predictor=nil")
	} else {
		p := o.Predictor
		bits := make([]string, len(p.BloomFieldBits))
		for i, b := range p.BloomFieldBits {
			bits[i] = strconv.FormatUint(uint64(b), 10)
		}
		lines = append(lines,
			"predictor.kind="+strconv.Itoa(int(p.Kind)),
			"predictor.name="+p.Name,
			"predictor.entries="+strconv.Itoa(p.Entries),
			"predictor.assoc="+strconv.Itoa(p.Assoc),
			"predictor.bloom_bits="+strings.Join(bits, ","),
			"predictor.exclude_cache="+strconv.FormatBool(p.ExcludeCache),
			"predictor.access_cycles="+strconv.Itoa(p.AccessCycles),
		)
	}
	if len(o.AlgorithmsPerNode) == 0 {
		lines = append(lines, "algorithms_per_node=")
	} else {
		names := make([]string, len(o.AlgorithmsPerNode))
		for i, a := range o.AlgorithmsPerNode {
			// Node order is semantic: do not sort.
			names[i] = strconv.Itoa(int(a))
		}
		lines = append(lines, "algorithms_per_node="+strings.Join(names, ","))
	}
	if o.Faults == nil {
		lines = append(lines, "faults=nil")
	} else {
		lines = append(lines, "faults.max_retries="+strconv.Itoa(o.Faults.MaxRetries))
		for i, r := range o.Faults.Rules {
			// Rule order is semantic (rules stack): key by index.
			k := "faults.rule." + strconv.Itoa(i) + "."
			lines = append(lines,
				k+"kind="+strconv.Itoa(int(r.Kind)),
				k+"ring="+strconv.Itoa(r.Ring),
				k+"node="+strconv.Itoa(r.Node),
				k+"rate="+canonFloat(r.Rate),
				k+"from="+strconv.FormatUint(r.From, 10),
				k+"until="+strconv.FormatUint(r.Until, 10),
				k+"seed="+strconv.FormatUint(r.Seed, 10),
				k+"delay="+strconv.FormatUint(r.Delay, 10),
			)
		}
	}
	sort.Strings(lines)
	return lines
}

// canonFloat renders a float with the shortest representation that
// round-trips, so numerically equal values always hash identically.
func canonFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Job is one simulation unit of work in the shape a job server submits:
// an algorithm, a named workload, and the run options. It is the
// content-addressable counterpart of a Run call.
type Job struct {
	Algorithm Algorithm
	Workload  string
	Options   Options
}

// Fingerprint extends Options.Fingerprint with the algorithm and
// workload, giving the canonical cache key for the job's Result.
func (j Job) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "algorithm=%d\nworkload=%s\noptions=%s\n",
		int(j.Algorithm), j.Workload, j.Options.Fingerprint())
	return fingerprintVersion + ":" + hex.EncodeToString(h.Sum(nil))
}

// RunJob executes the job (see Simulate for the semantics).
func RunJob(j Job) (Result, error) { return RunJobContext(nil, j) }

// RunJobContext executes the job with cancellation. A nil ctx behaves
// like context.Background.
func RunJobContext(ctx context.Context, j Job) (Result, error) {
	return Simulate(ctx, j.Algorithm, FromWorkload(j.Workload), j.Options)
}
