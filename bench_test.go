package flexsnoop_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark both measures the simulator's own
// throughput and reports the reproduced experimental quantities via
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates (a scaled-down version of) every result. cmd/paperfigs runs
// the full-size versions.

import (
	"fmt"
	"testing"

	"flexsnoop"
)

// benchFigOpts keeps benchmark iterations tractable: two SPLASH-2 apps
// stand in for the suite; cmd/paperfigs runs all 11.
func benchFigOpts() flexsnoop.FigureOptions {
	return flexsnoop.FigureOptions{
		OpsPerCore: 800,
		Seed:       1,
		Apps:       []string{"barnes", "fft"},
	}
}

func BenchmarkTable1(b *testing.B) {
	var lazySnoops float64
	for i := 0; i < b.N; i++ {
		rows := flexsnoop.Table1()
		if len(rows) != 3 {
			b.Fatalf("Table 1 has %d rows, want 3", len(rows))
		}
		lazySnoops = rows[0].SnoopOps
	}
	b.ReportMetric(lazySnoops, "lazy-snoops/req")
}

func BenchmarkTable3(b *testing.B) {
	var conSnoops float64
	for i := 0; i < b.N; i++ {
		rows := flexsnoop.Table3(0.3, 0.02)
		if len(rows) != 4 {
			b.Fatalf("Table 3 has %d rows, want 4", len(rows))
		}
		for _, r := range rows {
			if r.Algorithm == flexsnoop.SupersetCon {
				conSnoops = r.SnoopOps
			}
		}
	}
	b.ReportMetric(conSnoops, "supersetcon-snoops/req")
}

func BenchmarkFig4DesignSpace(b *testing.B) {
	var pts int
	for i := 0; i < b.N; i++ {
		pts = len(flexsnoop.DesignSpace(0.3, 0.02))
	}
	b.ReportMetric(float64(pts), "algorithms")
}

// benchMatrix runs the shared algorithm x workload matrix behind Figures
// 6-9 once per iteration and returns the last one.
func benchMatrix(b *testing.B) *flexsnoop.Matrix {
	b.Helper()
	var m *flexsnoop.Matrix
	for i := 0; i < b.N; i++ {
		var err error
		m, err = flexsnoop.RunMatrix(benchFigOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	return m
}

func BenchmarkFig6SnoopsPerRequest(b *testing.B) {
	m := benchMatrix(b)
	fig := m.Figure6()
	for _, cv := range fig {
		b.ReportMetric(cv.Values[flexsnoop.Lazy.String()], "lazy-"+cv.Class)
		b.ReportMetric(cv.Values[flexsnoop.Eager.String()], "eager-"+cv.Class)
	}
}

func BenchmarkFig7RingMessages(b *testing.B) {
	m := benchMatrix(b)
	fig, err := m.Figure7()
	if err != nil {
		b.Fatal(err)
	}
	for _, cv := range fig {
		b.ReportMetric(cv.Values[flexsnoop.Eager.String()], "eager-norm-"+cv.Class)
	}
}

func BenchmarkFig8ExecutionTime(b *testing.B) {
	m := benchMatrix(b)
	fig, err := m.Figure8()
	if err != nil {
		b.Fatal(err)
	}
	for _, cv := range fig {
		b.ReportMetric(cv.Values[flexsnoop.SupersetAgg.String()], "supersetagg-norm-"+cv.Class)
	}
}

func BenchmarkFig9Energy(b *testing.B) {
	m := benchMatrix(b)
	fig, err := m.Figure9()
	if err != nil {
		b.Fatal(err)
	}
	for _, cv := range fig {
		b.ReportMetric(cv.Values[flexsnoop.Eager.String()], "eager-norm-"+cv.Class)
		b.ReportMetric(cv.Values[flexsnoop.SupersetCon.String()], "supersetcon-norm-"+cv.Class)
	}
}

func BenchmarkFig10Sensitivity(b *testing.B) {
	opts := benchFigOpts()
	opts.Apps = []string{"barnes"}
	var s *flexsnoop.Sensitivity
	for i := 0; i < b.N; i++ {
		var err error
		s, err = flexsnoop.RunSensitivity(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range s.Cells {
		if c.Algorithm == flexsnoop.Exact && c.Class == "SPLASH-2" && c.Predictor == "Exa512" {
			b.ReportMetric(c.CyclesNorm, "exact-exa512-norm")
		}
	}
}

func BenchmarkFig11Accuracy(b *testing.B) {
	opts := benchFigOpts()
	opts.Apps = []string{"barnes"}
	var s *flexsnoop.Sensitivity
	for i := 0; i < b.N; i++ {
		var err error
		s, err = flexsnoop.RunSensitivity(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if p, ok := s.Perfect["SPLASH-2"]; ok {
		b.ReportMetric(p[0], "perfect-tp")
		b.ReportMetric(p[1], "perfect-tn")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// memory references per wall-clock second under the densest algorithm.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var refs uint64
	for i := 0; i < b.N; i++ {
		res, err := flexsnoop.Run(flexsnoop.Eager, "fft", flexsnoop.Options{OpsPerCore: 1000})
		if err != nil {
			b.Fatal(err)
		}
		refs = res.Stats.Loads + res.Stats.Stores
	}
	b.ReportMetric(float64(refs), "refs/iter")
}

// --- Ablation benches (design choices from DESIGN.md Section 6) ---

// BenchmarkAblationRings compares one vs two embedded rings (the paper
// embeds two, mapped by address, to balance load).
func BenchmarkAblationRings(b *testing.B) {
	for _, rings := range []int{1, 2} {
		rings := rings
		name := map[int]string{1: "one-ring", 2: "two-rings"}[rings]
		b.Run(name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				res, err := flexsnoop.Run(flexsnoop.Eager, "radix", flexsnoop.Options{
					OpsPerCore: 1200, NumRings: rings,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkAblationPrefetch quantifies the prefetch-on-snoop heuristic on
// a memory-bound workload (312 vs 710-cycle remote round trips).
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, off := range []bool{false, true} {
		off := off
		name := map[bool]string{false: "prefetch-on", true: "prefetch-off"}[off]
		b.Run(name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "specjbb", flexsnoop.Options{
					OpsPerCore: 1500, DisablePrefetch: off,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkAblationExcludeCache isolates the JETTY-style exclude cache's
// contribution to the superset predictor (Section 4.3.2).
func BenchmarkAblationExcludeCache(b *testing.B) {
	preds := flexsnoop.Predictors()
	with := preds["Supy2k"]
	without := with
	without.ExcludeCache = false
	without.Name = "Supy2k-noexclude"
	for _, pc := range []flexsnoop.PredictorConfig{with, without} {
		pc := pc
		b.Run(pc.Name, func(b *testing.B) {
			var fp float64
			for i := 0; i < b.N; i++ {
				res, err := flexsnoop.Run(flexsnoop.SupersetCon, "barnes", flexsnoop.Options{
					OpsPerCore: 1200, Predictor: &pc,
				})
				if err != nil {
					b.Fatal(err)
				}
				_, _, fpf, _ := res.Stats.Accuracy.Fractions()
				fp = fpf
			}
			b.ReportMetric(fp, "false-positive-frac")
		})
	}
}

// BenchmarkAblationDynamicGovernor sweeps the Section 6.1.5 adaptive
// system's energy budget.
func BenchmarkAblationDynamicGovernor(b *testing.B) {
	for _, budget := range []float64{1e9, 10, 0.5} {
		budget := budget
		b.Run(map[float64]string{1e9: "budget-unbounded", 10: "budget-10", 0.5: "budget-tight"}[budget], func(b *testing.B) {
			var aggFrac float64
			for i := 0; i < b.N; i++ {
				res, err := flexsnoop.Run(flexsnoop.DynamicSuperset, "barnes", flexsnoop.Options{
					OpsPerCore: 1200, GovernorBudgetNJPerKCycle: budget,
				})
				if err != nil {
					b.Fatal(err)
				}
				aggFrac = res.GovernorAggFrac
			}
			b.ReportMetric(aggFrac, "aggressive-frac")
		})
	}
}

// BenchmarkAblationMLP compares in-order blocking loads against an
// out-of-order-style 4-deep load window (DESIGN.md substitution: the
// paper's cores are out of order; this quantifies how much the timing
// simplification matters for the algorithm ordering).
func BenchmarkAblationMLP(b *testing.B) {
	for _, mlp := range []int{1, 4} {
		mlp := mlp
		b.Run(map[int]string{1: "blocking-loads", 4: "mlp-4"}[mlp], func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "ocean", flexsnoop.Options{
					OpsPerCore: 1200,
					Tweak:      func(m *flexsnoop.MachineConfig) { m.MaxOutstandingLoads = mlp },
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles = float64(res.Cycles)
			}
			b.ReportMetric(cycles, "cycles")
		})
	}
}

// BenchmarkAblationLocalMaster quantifies the S_L (Local Master) state:
// without it, a line brought into a CMP by one core cannot supply its
// siblings, so their reads pay full ring transactions (Section 2.2's
// motivation for S_L).
func BenchmarkAblationLocalMaster(b *testing.B) {
	for _, off := range []bool{false, true} {
		off := off
		b.Run(map[bool]string{false: "with-SL", true: "without-SL"}[off], func(b *testing.B) {
			var ringReads float64
			for i := 0; i < b.N; i++ {
				res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "barnes", flexsnoop.Options{
					OpsPerCore: 1200,
					Tweak:      func(m *flexsnoop.MachineConfig) { m.DisableLocalMaster = off },
				})
				if err != nil {
					b.Fatal(err)
				}
				ringReads = float64(res.Stats.ReadRequests)
			}
			b.ReportMetric(ringReads, "ring-reads")
		})
	}
}

// BenchmarkScalingStudy sweeps ring sizes 4/8/16 (the paper's "appropriate
// for medium-range machines" positioning), reporting how Lazy's miss
// latency grows with every hop-plus-snoop added to the ring.
func BenchmarkScalingStudy(b *testing.B) {
	var pts []flexsnoop.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = flexsnoop.ScalingStudy(flexsnoop.Lazy, "barnes", flexsnoop.FigureOptions{OpsPerCore: 800})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.AvgReadMissLatency, fmt.Sprintf("lazy-miss-latency-%dcmp", p.NumCMPs))
	}
}

// BenchmarkAlternativeProtocols compares the embedded ring against the
// Section 2.1 alternatives (directory indirection, broadcast-bus
// saturation) implemented in internal/altproto; see examples/alternatives
// for the full comparison.
func BenchmarkAlternativeProtocols(b *testing.B) {
	var cycles float64
	for i := 0; i < b.N; i++ {
		res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "barnes", flexsnoop.Options{OpsPerCore: 1200})
		if err != nil {
			b.Fatal(err)
		}
		cycles = float64(res.Cycles)
	}
	b.ReportMetric(cycles, "ring-supersetagg-cycles")
}
