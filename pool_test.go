package flexsnoop

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunPoolReportsEveryFailure(t *testing.T) {
	errA := errors.New("job A failed")
	errB := errors.New("job B failed")
	// Two concurrent failures: both must surface in the joined error.
	var gate sync.WaitGroup
	gate.Add(2)
	fail := func(e error) func() error {
		return func() error {
			gate.Done()
			gate.Wait() // both failures in flight together
			return e
		}
	}
	err := runPool(2, []func() error{fail(errA), fail(errB)})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error lost a failure: %v", err)
	}
}

func TestRunPoolStopsLaunchingAfterFailure(t *testing.T) {
	// Sequential pool: the first job fails, so later jobs never start.
	var started atomic.Int32
	jobs := make([]func() error, 10)
	jobs[0] = func() error {
		started.Add(1)
		return fmt.Errorf("boom")
	}
	for i := 1; i < len(jobs); i++ {
		jobs[i] = func() error {
			started.Add(1)
			return nil
		}
	}
	err := runPool(1, jobs)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want the failure, got %v", err)
	}
	if n := started.Load(); n != 1 {
		t.Errorf("%d jobs ran after the failure; want the pool to stop at 1", n)
	}
}

func TestRunPoolContextCancelWinsRaceWithJobError(t *testing.T) {
	// A job fails only after the context is already cancelled; the launch
	// loop has no further jobs, so only the post-drain check can see the
	// cancellation. Callers must still observe context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	jobErr := errors.New("job failed during cancellation")
	jobs := []poolJob{{run: func() error {
		cancel() // cancellation and the job error race; both in flight
		return jobErr
	}}}
	err := runPoolContext(ctx, 2, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pool did not report context.Canceled: %v", err)
	}
	if !errors.Is(err, jobErr) {
		t.Fatalf("joined error lost the job failure: %v", err)
	}
}

func TestRunPoolContextCancelNotDoubleJoined(t *testing.T) {
	// When the launch loop itself observes the cancellation, the context
	// error must appear exactly once in the joined result.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runPoolContext(ctx, 1, plainJobs([]func() error{
		func() error { return nil },
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pool did not report context.Canceled: %v", err)
	}
	if n := strings.Count(err.Error(), context.Canceled.Error()); n != 1 {
		t.Fatalf("context error joined %d times, want once: %v", n, err)
	}
}

func TestRunPoolRunsEverythingOnSuccess(t *testing.T) {
	var ran atomic.Int32
	jobs := make([]func() error, 23)
	for i := range jobs {
		jobs[i] = func() error {
			ran.Add(1)
			return nil
		}
	}
	if err := runPool(4, jobs); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 23 {
		t.Errorf("ran %d of 23 jobs", n)
	}
}
