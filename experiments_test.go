package flexsnoop_test

import (
	"math"
	"strings"
	"testing"

	"flexsnoop"
)

// smallMatrix runs a reduced matrix shared by the figure tests.
func smallMatrix(t *testing.T) *flexsnoop.Matrix {
	t.Helper()
	m, err := flexsnoop.RunMatrix(flexsnoop.FigureOptions{
		OpsPerCore: 700,
		Apps:       []string{"barnes", "fft"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func value(t *testing.T, cvs []flexsnoop.ClassValues, class string, alg flexsnoop.Algorithm) float64 {
	t.Helper()
	for _, cv := range cvs {
		if cv.Class == class {
			v, ok := cv.Values[alg.String()]
			if !ok {
				t.Fatalf("%s missing %v", class, alg)
			}
			return v
		}
	}
	t.Fatalf("class %s missing", class)
	return 0
}

func TestMatrixFigureShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is seconds-long")
	}
	m := smallMatrix(t)

	// Figure 6: Eager snoops all 7 remote CMPs on every request; Lazy
	// sits in between; Oracle and Exact snoop at most once; SPECjbb's
	// Lazy approaches 7 (few suppliers).
	fig6 := m.Figure6()
	for _, class := range m.Classes() {
		eager := value(t, fig6, class, flexsnoop.Eager)
		if math.Abs(eager-7) > 0.05 {
			t.Errorf("%s: Eager snoops %.2f, want ~7", class, eager)
		}
		lazy := value(t, fig6, class, flexsnoop.Lazy)
		if lazy >= eager+0.01 {
			t.Errorf("%s: Lazy %.2f >= Eager %.2f", class, lazy, eager)
		}
		for _, a := range []flexsnoop.Algorithm{flexsnoop.Oracle, flexsnoop.Exact} {
			if v := value(t, fig6, class, a); v > 1.05 {
				t.Errorf("%s: %v snoops %.2f, want <= ~1", class, a, v)
			}
		}
		for _, a := range []flexsnoop.Algorithm{flexsnoop.SupersetCon, flexsnoop.SupersetAgg} {
			if v := value(t, fig6, class, a); v >= lazy {
				t.Errorf("%s: %v snoops %.2f not below Lazy %.2f", class, a, v, lazy)
			}
		}
	}
	if jbbLazy := value(t, fig6, "SPECjbb", flexsnoop.Lazy); jbbLazy < 6 {
		t.Errorf("SPECjbb Lazy snoops %.2f, want close to 7 (paper)", jbbLazy)
	}

	// Figure 7: Eager approaches 2x Lazy's ring messages; SupersetCon
	// and Exact match Lazy (single combined message).
	fig7, err := m.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range m.Classes() {
		eager := value(t, fig7, class, flexsnoop.Eager)
		if eager < 1.5 || eager > 2.0 {
			t.Errorf("%s: Eager messages %.2f x Lazy, want ~1.9", class, eager)
		}
		for _, a := range []flexsnoop.Algorithm{flexsnoop.SupersetCon, flexsnoop.Exact, flexsnoop.Oracle} {
			if v := value(t, fig7, class, a); math.Abs(v-1) > 0.12 {
				t.Errorf("%s: %v messages %.2f x Lazy, want ~1", class, a, v)
			}
		}
	}

	// Figure 8: Lazy is the slowest; SupersetAgg tracks Oracle within a
	// few percent and beats Lazy.
	fig8, err := m.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range m.Classes() {
		agg := value(t, fig8, class, flexsnoop.SupersetAgg)
		oracle := value(t, fig8, class, flexsnoop.Oracle)
		if agg >= 1 {
			t.Errorf("%s: SupersetAgg %.3f not faster than Lazy", class, agg)
		}
		if agg < oracle-0.02 {
			t.Errorf("%s: SupersetAgg %.3f beats the Oracle bound %.3f", class, agg, oracle)
		}
	}

	// Figure 9: Eager costs far more energy than Lazy; SupersetCon is
	// the cheapest of the practical algorithms and well below Eager.
	fig9, err := m.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range m.Classes() {
		eager := value(t, fig9, class, flexsnoop.Eager)
		con := value(t, fig9, class, flexsnoop.SupersetCon)
		agg := value(t, fig9, class, flexsnoop.SupersetAgg)
		if eager < 1.4 {
			t.Errorf("%s: Eager energy %.2f x Lazy, want >> 1 (paper ~1.8)", class, eager)
		}
		if con >= agg {
			t.Errorf("%s: SupersetCon energy %.2f >= SupersetAgg %.2f", class, con, agg)
		}
		if agg >= eager {
			t.Errorf("%s: SupersetAgg energy %.2f >= Eager %.2f (paper: 9-17%% less)", class, agg, eager)
		}
	}

	// Headline helper.
	savings, err := m.EnergySavingsVsEager(flexsnoop.SupersetCon)
	if err != nil {
		t.Fatal(err)
	}
	for class, s := range savings {
		if s < 0.2 {
			t.Errorf("%s: SupersetCon saves only %.1f%% vs Eager (paper ~47%%)", class, s*100)
		}
	}
}

func TestMeasuredRates(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is seconds-long")
	}
	m, err := flexsnoop.RunMatrix(flexsnoop.FigureOptions{
		OpsPerCore: 500,
		Apps:       []string{"barnes"},
		Algorithms: []flexsnoop.Algorithm{flexsnoop.Lazy, flexsnoop.SupersetCon},
	})
	if err != nil {
		t.Fatal(err)
	}
	fp, fn := m.MeasuredRates()
	if fp <= 0 {
		t.Error("superset predictor produced no false positives (suspicious)")
	}
	if fn != 0 {
		t.Errorf("superset predictor produced false negatives (%.4f): incorrect execution", fn)
	}
}

func TestTable1Exported(t *testing.T) {
	rows := flexsnoop.Table1()
	if len(rows) != 3 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	if rows[0].Algorithm != flexsnoop.Lazy || rows[0].SnoopOps != 3.5 {
		t.Errorf("row 0 = %+v, want Lazy with (N-1)/2 snoops", rows[0])
	}
}

func TestTable3Exported(t *testing.T) {
	rows := flexsnoop.Table3(0.3, 0.05)
	if len(rows) != 4 {
		t.Fatalf("Table3 rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Algorithm.String()] = true
	}
	for _, want := range []string{"Subset", "SupersetCon", "SupersetAgg", "Exact"} {
		if !names[want] {
			t.Errorf("Table3 missing %s", want)
		}
	}
}

func TestDesignSpaceExported(t *testing.T) {
	pts := flexsnoop.DesignSpace(0.3, 0.05)
	if len(pts) != 7 {
		t.Fatalf("DesignSpace points = %d, want 7", len(pts))
	}
}

func TestFigureOptionsValidation(t *testing.T) {
	_, err := flexsnoop.RunMatrix(flexsnoop.FigureOptions{
		OpsPerCore: 100, Apps: []string{"specjbb"}, // not a SPLASH-2 app
	})
	if err == nil || !strings.Contains(err.Error(), "SPLASH-2") {
		t.Errorf("non-SPLASH app accepted into Apps: %v", err)
	}
	_, err = flexsnoop.RunMatrix(flexsnoop.FigureOptions{
		OpsPerCore: 100, Apps: []string{"unknown-app"},
	})
	if err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSensitivitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep is seconds-long")
	}
	s, err := flexsnoop.RunSensitivity(flexsnoop.FigureOptions{
		OpsPerCore: 500,
		Apps:       []string{"barnes"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 algorithms x 3 predictors x 3 classes.
	if len(s.Cells) != 36 {
		t.Fatalf("sensitivity cells = %d, want 36", len(s.Cells))
	}
	for _, c := range s.Cells {
		if c.CyclesNorm <= 0 {
			t.Errorf("%v/%s/%s: non-positive normalised time", c.Algorithm, c.Predictor, c.Class)
		}
		sum := c.TruePos + c.TrueNeg + c.FalsePos + c.FalseNeg
		if c.Algorithm != flexsnoop.Oracle && math.Abs(sum-1) > 1e-9 && sum != 0 {
			t.Errorf("%v/%s/%s: accuracy fractions sum to %v", c.Algorithm, c.Predictor, c.Class, sum)
		}
		// The defining predictor properties must hold in vivo too:
		switch c.Algorithm {
		case flexsnoop.Subset:
			if c.FalsePos > 0 {
				t.Errorf("Subset produced false positives (%v)", c.FalsePos)
			}
		case flexsnoop.SupersetCon, flexsnoop.SupersetAgg:
			if c.FalseNeg > 0 {
				t.Errorf("%v produced false negatives (%v)", c.Algorithm, c.FalseNeg)
			}
		case flexsnoop.Exact:
			if c.FalsePos > 0 || c.FalseNeg > 0 {
				t.Errorf("Exact mispredicted (FP %v, FN %v)", c.FalsePos, c.FalseNeg)
			}
		}
	}
	// Perfect predictor recorded for every class.
	for _, cl := range []string{"SPLASH-2", "SPECjbb", "SPECweb"} {
		p, ok := s.Perfect[cl]
		if !ok {
			t.Errorf("perfect predictor missing for %s", cl)
			continue
		}
		if p[2] != 0 || p[3] != 0 {
			t.Errorf("%s: perfect predictor has FP/FN %v/%v", cl, p[2], p[3])
		}
	}
	// SPECjbb rarely has a supplier: its perfect-TP fraction is far below
	// the sharing-heavy SPLASH-2 one (Figure 11's key contrast).
	if s.Perfect["SPECjbb"][0] >= s.Perfect["SPLASH-2"][0] {
		t.Errorf("SPECjbb perfect TP %.3f >= SPLASH-2 %.3f",
			s.Perfect["SPECjbb"][0], s.Perfect["SPLASH-2"][0])
	}
}

func TestScalingStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("three machine sizes take seconds")
	}
	pts, err := flexsnoop.ScalingStudy(flexsnoop.Lazy, "barnes", flexsnoop.FigureOptions{OpsPerCore: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].NumCMPs != 4 || pts[2].NumCMPs != 16 {
		t.Fatalf("scaling points = %+v", pts)
	}
	// Lazy's snoops per request and miss latency grow with ring size.
	if !(pts[0].SnoopsPerRequest < pts[1].SnoopsPerRequest && pts[1].SnoopsPerRequest < pts[2].SnoopsPerRequest) {
		t.Errorf("snoops not monotone in ring size: %+v", pts)
	}
	if !(pts[0].AvgReadMissLatency < pts[2].AvgReadMissLatency) {
		t.Errorf("miss latency did not grow from 4 to 16 CMPs: %+v", pts)
	}
	// The 8-CMP point is the normalisation baseline.
	if pts[1].CyclesNorm != 1 {
		t.Errorf("8-CMP point not normalised to 1: %v", pts[1].CyclesNorm)
	}
	// Adaptive forwarding suffers less added miss latency per node than
	// Lazy (its per-hop cost omits the snoop).
	agg, err := flexsnoop.ScalingStudy(flexsnoop.SupersetAgg, "barnes", flexsnoop.FigureOptions{OpsPerCore: 600})
	if err != nil {
		t.Fatal(err)
	}
	lazyGrowth := pts[2].AvgReadMissLatency - pts[0].AvgReadMissLatency
	aggGrowth := agg[2].AvgReadMissLatency - agg[0].AvgReadMissLatency
	if aggGrowth >= lazyGrowth {
		t.Errorf("SupersetAgg latency growth (%.0f) >= Lazy's (%.0f)", aggGrowth, lazyGrowth)
	}
}
