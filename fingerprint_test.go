package flexsnoop

import (
	"reflect"
	"strings"
	"testing"
)

// fullOptions returns an Options value with every hashed field set to a
// non-default value, so the golden hash below covers the whole schema.
func fullOptions(t *testing.T) Options {
	t.Helper()
	p := Predictors()["Supy2k"]
	faults, err := ParseFaultPlan("kind=drop,rate=0.05,seed=1;kind=delay,rate=0.1,delay=80,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		OpsPerCore: 3000, Seed: 7, Predictor: &p, CheckInvariants: true,
		DisablePrefetch: true, NumRings: 4, GovernorBudgetNJPerKCycle: 2.5,
		WarmupCycles: 1000,
		AlgorithmsPerNode: []Algorithm{
			Lazy, Eager, Oracle, Subset, SupersetCon, SupersetAgg, Exact, Lazy},
		Faults: faults, CheckEvery: 5000, WatchdogWindow: 100000,
		WatchdogDegrade: true, ShardRings: true,
	}
}

// TestFingerprintGolden pins the canonical hashes. A failure here means
// the Options schema or its canonical encoding drifted: if that was
// intentional, bump fingerprintVersion (old cached results must not be
// served for a differently-interpreted configuration) and update the
// constants; if not, the fingerprint just silently changed meaning and
// every persistent cache keyed on it would go stale — fix the encoding.
func TestFingerprintGolden(t *testing.T) {
	const (
		wantZero = "fsn1:e2d75e83e58c39d1319eeefc44b9a7df493d159ac8562a1cc0e097460dab701f"
		wantFull = "fsn1:f357a8f06fe16c872bb75c0cab8e1ccf138815ce94f3921b367345fc9e348a1d"
		wantJob  = "fsn1:95984fdbda2f6180bab74ecb74e919713480b6cf969aa8c4f2422bfa0d2bcfee"
	)
	if got := (Options{}).Fingerprint(); got != wantZero {
		t.Errorf("zero Options fingerprint drifted:\n got %s\nwant %s", got, wantZero)
	}
	if got := fullOptions(t).Fingerprint(); got != wantFull {
		t.Errorf("full Options fingerprint drifted:\n got %s\nwant %s", got, wantFull)
	}
	j := Job{Algorithm: SupersetAgg, Workload: "fft", Options: Options{OpsPerCore: 300, Seed: 1}}
	if got := j.Fingerprint(); got != wantJob {
		t.Errorf("Job fingerprint drifted:\n got %s\nwant %s", got, wantJob)
	}
}

// TestFingerprintSchemaComplete walks Options with reflection and fails
// when a field is neither hashed nor on the documented exclusion list —
// the guard that catches a new Options field being added without a
// Fingerprint (and fingerprintVersion) update.
func TestFingerprintSchemaComplete(t *testing.T) {
	hashed := map[string]bool{
		"OpsPerCore": true, "Seed": true, "Predictor": true,
		"CheckInvariants": true, "DisablePrefetch": true, "NumRings": true,
		"GovernorBudgetNJPerKCycle": true, "WarmupCycles": true,
		"AlgorithmsPerNode": true, "Faults": true, "CheckEvery": true,
		"WatchdogWindow": true, "WatchdogDegrade": true, "ShardRings": true,
		"Tweak": true, // opaque marker only; see Fingerprint docs
	}
	excluded := map[string]bool{
		"Telemetry": true, // zero-perturbation: results identical with it on or off
	}
	typ := reflect.TypeOf(Options{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if !hashed[name] && !excluded[name] {
			t.Errorf("Options.%s is neither hashed by Fingerprint nor on its exclusion list; "+
				"extend canonicalLines (and bump fingerprintVersion) or document the exclusion", name)
		}
	}
	for name := range hashed {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("Fingerprint hashes Options.%s, which no longer exists", name)
		}
	}
}

// TestFingerprintDistinguishes checks that each result-affecting knob
// moves the hash, and that equal configurations built differently agree.
func TestFingerprintDistinguishes(t *testing.T) {
	base := Options{OpsPerCore: 300, Seed: 1}
	if base.Fingerprint() != (Options{OpsPerCore: 300, Seed: 1}).Fingerprint() {
		t.Fatal("identical options disagree")
	}
	variants := map[string]Options{
		"ops":      {OpsPerCore: 301, Seed: 1},
		"seed":     {OpsPerCore: 300, Seed: 2},
		"shard":    {OpsPerCore: 300, Seed: 1, ShardRings: true},
		"rings":    {OpsPerCore: 300, Seed: 1, NumRings: 3},
		"warmup":   {OpsPerCore: 300, Seed: 1, WarmupCycles: 10},
		"watchdog": {OpsPerCore: 300, Seed: 1, WatchdogWindow: 5},
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, o := range variants {
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[fp] = name
	}
	// Fault plans: rule content and order are semantic.
	p1, err := ParseFaultPlan("kind=drop,rate=0.05;kind=delay,delay=10")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseFaultPlan("kind=delay,delay=10;kind=drop,rate=0.05")
	if err != nil {
		t.Fatal(err)
	}
	a := Options{Faults: p1}
	b := Options{Faults: p2}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("reordered fault rules should hash differently (rules stack in order)")
	}
	// Telemetry is excluded: observability must not split the cache key.
	tel := Options{OpsPerCore: 300, Seed: 1, Telemetry: &TelemetryOptions{IntervalCycles: 100}}
	if tel.Fingerprint() != base.Fingerprint() {
		t.Error("telemetry-only difference changed the fingerprint")
	}
	// A Tweak hook marks the options as non-canonical but must not
	// collide with the untweaked configuration.
	tw := Options{OpsPerCore: 300, Seed: 1, Tweak: func(*MachineConfig) {}}
	if tw.Fingerprint() == base.Fingerprint() {
		t.Error("Tweak-bearing options collide with untweaked ones")
	}
	if !strings.HasPrefix(base.Fingerprint(), "fsn1:") {
		t.Errorf("fingerprint missing version prefix: %s", base.Fingerprint())
	}
}

// TestJobFingerprint covers the job-level key: algorithm and workload
// must separate jobs that share options.
func TestJobFingerprint(t *testing.T) {
	o := Options{OpsPerCore: 300, Seed: 1}
	a := Job{Algorithm: Lazy, Workload: "fft", Options: o}
	b := Job{Algorithm: Eager, Workload: "fft", Options: o}
	c := Job{Algorithm: Lazy, Workload: "lu", Options: o}
	if a.Fingerprint() == b.Fingerprint() || a.Fingerprint() == c.Fingerprint() {
		t.Error("jobs differing in algorithm or workload share a fingerprint")
	}
	if a.Fingerprint() != (Job{Algorithm: Lazy, Workload: "fft", Options: o}).Fingerprint() {
		t.Error("identical jobs disagree")
	}
}
